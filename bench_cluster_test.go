// Cluster-lane benchmarks: the distributed submit path at 1, 3 and 8
// shards, plus the hedged-read race against a deliberately straggling
// primary. These are the benchmarks behind bench/BENCH_cluster.json.
// Every iteration scatters the E-benchmark selection over the shard
// fleet and merges 530 rows back, so ns/op is the coordinator overhead
// (fan-out, per-shard wire hop, merge) on top of the single-node server
// lane; hits/op confirms each shard compiled the α-same term once and
// served the rest from its shared cache.
package tycoon

import (
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"tycoon/internal/cluster"
	"tycoon/internal/netfault"
	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// benchPTML encodes the benchmark selection once per benchmark.
func benchPTML(b *testing.B) []byte {
	b.Helper()
	app, err := tml.ParseApp(benchSelectSrc, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		b.Fatal(err)
	}
	data, err := ptml.EncodeApp(app)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// startBenchShard boots one tycd replica over an in-memory store loaded
// with the given slice of the benchmark relation.
func startBenchShard(b *testing.B, ids []int) string {
	b.Helper()
	st, err := store.Open("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	srv, err := server.New(st, server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	mg := srv.Manager()
	oid, err := mg.CreateRelation("t", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "val", Type: store.ColInt},
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, id := range ids {
		if err := mg.InsertRow(oid, []store.Val{store.IntVal(int64(id)), store.IntVal(int64(id % 97))}); err != nil {
			b.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// benchTopology partitions the 1000 benchmark rows by the topology's own
// placement and boots one replica per shard.
func benchTopology(b *testing.B, nShards int) cluster.Topology {
	b.Helper()
	topo := cluster.Topology{Shards: make([]cluster.Shard, nShards)}
	parts := make([][]int, nShards)
	for id := 0; id < 1000; id++ {
		s := topo.ShardFor(fmt.Sprintf("row:%d", id))
		parts[s] = append(parts[s], id)
	}
	for s := 0; s < nShards; s++ {
		topo.Shards[s].Replicas = []string{startBenchShard(b, parts[s])}
	}
	return topo
}

func benchCoordinator(b *testing.B, topo cluster.Topology, mod func(*cluster.Config)) *cluster.Coordinator {
	b.Helper()
	cfg := cluster.Config{
		Topology:      topo,
		Timeout:       2 * time.Minute,
		Retries:       2,
		ProbeInterval: -1,
		Seed:          1,
	}
	if mod != nil {
		mod(&cfg)
	}
	co, err := cluster.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(co.Close)
	return co
}

// benchClusterShards measures the scatter submit at a given shard count:
// one coordinator fanning the selection out to nShards single-replica
// shards and concatenating the partial relations back to 530 rows.
func benchClusterShards(b *testing.B, nShards int) {
	co := benchCoordinator(b, benchTopology(b, nShards), nil)
	ptmlBytes := benchPTML(b)
	submit := func() *ship.Result {
		res, err := co.Submit(&ship.Submit{
			Name: "sel", PTML: ptmlBytes,
			Binds:    []ship.WBind{{Name: "r", Val: ship.WVal{Kind: ship.WRoot, Str: "rel:t"}}},
			Optimize: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	// Warm every shard's pipeline cache: the steady state is what the
	// lane measures, and the oracle check pins correctness once.
	if res := submit(); len(res.Val.Rel.Rows) != 530 {
		b.Fatalf("scatter selection returned %d rows, want 530", len(res.Val.Rel.Rows))
	}

	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := submit()
		if res.Info.CacheHit { // AND across shards: every shard hit its cache
			hits++
		}
		if len(res.Val.Rel.Rows) != 530 {
			b.Fatalf("iteration %d returned %d rows", i, len(res.Val.Rel.Rows))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
}

func BenchmarkCluster_Shards1(b *testing.B) { benchClusterShards(b, 1) }
func BenchmarkCluster_Shards3(b *testing.B) { benchClusterShards(b, 3) }
func BenchmarkCluster_Shards8(b *testing.B) { benchClusterShards(b, 8) }

// benchHedged measures tail latency against a straggling primary: one
// shard with two replicas where the preferred one sits behind a proxy
// that delays every relayed segment. Unhedged, every read eats the
// primary's delay; hedged, the race promotes the clean standby after
// HedgeAfter. The p99-ms metric is reported, not asserted — wall-clock
// tails are machine-dependent, and the lane exists to compare the two
// variants in one artifact.
func benchHedged(b *testing.B, hedgeAfter time.Duration) {
	ids := make([]int, 1000)
	for i := range ids {
		ids[i] = i
	}
	primary := startBenchShard(b, ids)
	standby := startBenchShard(b, ids)
	slow, err := netfault.NewProxy(primary, netfault.Config{
		Seed:      1,
		DelayProb: 1.0,
		MaxDelay:  20 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { slow.Close() })

	topo := cluster.Topology{Shards: []cluster.Shard{{Replicas: []string{slow.Addr(), standby}}}}
	co := benchCoordinator(b, topo, func(cfg *cluster.Config) {
		cfg.HedgeAfter = hedgeAfter
	})
	ptmlBytes := benchPTML(b)
	submit := func() *ship.Result {
		res, err := co.Submit(&ship.Submit{
			Name: "sel", PTML: ptmlBytes,
			Binds:    []ship.WBind{{Name: "r", Val: ship.WVal{Kind: ship.WRoot, Str: "rel:t"}}},
			Optimize: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	if res := submit(); len(res.Val.Rel.Rows) != 530 {
		b.Fatalf("selection returned %d rows, want 530", len(res.Val.Rel.Rows))
	}

	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		submit()
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if len(lat)*99/100 >= len(lat) {
		p99 = lat[len(lat)-1]
	}
	b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-ms")
}

// BenchmarkCluster_Unhedged eats the straggler's delay on every read.
func BenchmarkCluster_Unhedged(b *testing.B) { benchHedged(b, 0) }

// BenchmarkCluster_Hedged races a second attempt after 5ms; p99-ms
// should land near the hedge threshold instead of the straggler delay.
func BenchmarkCluster_Hedged(b *testing.B) { benchHedged(b, 5*time.Millisecond) }
