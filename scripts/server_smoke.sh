#!/bin/sh
# server_smoke.sh — end-to-end smoke test of the tycd server and the
# tycsh client: build both, start tycd on an ephemeral port against a
# fresh file store, drive an install/call/submit/save/stats session
# through tycsh, shut the server down with SIGTERM, and verify the
# drained store passes tycfsck.
#
#   scripts/server_smoke.sh
#
# Exits non-zero if any step fails: a build error, a request error, a
# wrong answer, an unclean shutdown, or fsck findings.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
tycd_pid=""
cleanup() {
	[ -n "$tycd_pid" ] && kill "$tycd_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/tycd" ./cmd/tycd
go build -o "$work/tycsh" ./cmd/tycsh
go build -o "$work/tycfsck" ./cmd/tycfsck

store="$work/smoke.tyst"
"$work/tycd" -store "$store" -addr 127.0.0.1:0 -portfile "$work/port" \
	2>"$work/tycd.log" &
tycd_pid=$!

# Wait for the server to publish its bound address.
for _ in $(seq 1 100); do
	[ -s "$work/port" ] && break
	kill -0 "$tycd_pid" 2>/dev/null || { cat "$work/tycd.log" >&2; exit 1; }
	sleep 0.1
done
addr="$(cat "$work/port")"
echo "smoke: tycd on $addr"

cat >"$work/script" <<'EOF'
ping
install <<
module demo export double let double(a : Int) : Int = a * 2 end
.
call demo.double 21
optimize demo.double
call demo.double 21
submit name=answer (+ 40 2 e cont(n) (k n))
submit name=again (+ 40 2 e cont(m) (k m))
submit save=ans (+ 40 2 e cont(p) (k p))
call @ans
stats
quit
EOF

"$work/tycsh" -addr "$addr" "$work/script" >"$work/out" 2>"$work/err"
cat "$work/out"

# The two calls, the three submits and the saved-closure call answer 42.
if [ "$(grep -c '^42$' "$work/out")" != 6 ]; then
	echo "smoke: expected six 42s in the output" >&2
	cat "$work/err" >&2
	exit 1
fi
# Two pipeline compilations total — the optimize and the first submit;
# the two α-equivalent resubmissions (including the saving one) hit the
# shared cache. The save itself then invalidates the cache (it moves a
# root, which is a binding change), but that happens after its hit.
grep -q 'hits 2 misses 2 ' "$work/out" || {
	echo "smoke: stats do not show 2 hits / 2 misses" >&2
	exit 1
}

# Graceful drain on SIGTERM.
kill -TERM "$tycd_pid"
wait "$tycd_pid" || { echo "smoke: tycd exited non-zero" >&2; cat "$work/tycd.log" >&2; exit 1; }
tycd_pid=""
grep -q "draining" "$work/tycd.log" || { echo "smoke: no drain log line" >&2; exit 1; }

# The drained store is sound and still carries the saved closure.
"$work/tycfsck" -store "$store" -v
echo "smoke: OK"
