#!/bin/sh
# gateway_smoke.sh — end-to-end smoke test of the HTTP/JSON gateway:
# build tycd and tycgw; boot both; drive install, call and a keyed
# submit through curl; open an SSE watch, commit a root change and
# assert the push event arrives with the root name and a CSN; check the
# stats and error mapping; SIGTERM-drain the gateway then the server
# and audit the store with tycfsck.
#
#   scripts/gateway_smoke.sh
#
# Exits non-zero on any failed request, missing SSE event, unclean
# shutdown, or fsck findings.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/tycd" ./cmd/tycd
go build -o "$work/tycgw" ./cmd/tycgw
go build -o "$work/tycfsck" ./cmd/tycfsck

wait_addr() {
	for _ in $(seq 1 100); do
		[ -s "$1" ] && break
		kill -0 "$2" 2>/dev/null || { echo "gwsmoke: process died before listening" >&2; exit 1; }
		sleep 0.1
	done
	cat "$1"
}

"$work/tycd" -store "$work/gw.tyst" -addr 127.0.0.1:0 \
	-portfile "$work/portd" 2>"$work/tycd.log" &
tycd_pid=$!
pids="$pids $tycd_pid"
backend="$(wait_addr "$work/portd" "$tycd_pid")"

"$work/tycgw" -backend "$backend" -addr 127.0.0.1:0 \
	-portfile "$work/portg" 2>"$work/tycgw.log" &
tycgw_pid=$!
pids="$pids $tycgw_pid"
gw="http://$(wait_addr "$work/portg" "$tycgw_pid")"
echo "gwsmoke: tycgw on $gw -> tycd on $backend"

# jget file key: extract a scalar JSON field without jq.
jget() {
	sed -n 's/.*"'"$2"'":\([^,}]*\).*/\1/p' "$1" | head -1
}

# Install a module, call it, and check the answer comes back as JSON.
curl -sS -o "$work/r1" -w '%{http_code}' "$gw/v1/install" \
	-d '{"source":"module demo export double let double(a : Int) : Int = a * 2 end"}' \
	>"$work/c1"
[ "$(cat "$work/c1")" = 200 ] || { echo "gwsmoke: install failed"; cat "$work/r1"; exit 1; }
curl -sS -o "$work/r2" -w '%{http_code}' "$gw/v1/call" \
	-d '{"module":"demo","fn":"double","args":[21]}' >"$work/c2"
[ "$(cat "$work/c2")" = 200 ] || { echo "gwsmoke: call failed"; cat "$work/r2"; exit 1; }
[ "$(jget "$work/r2" value)" = 42 ] || { echo "gwsmoke: call answered $(cat "$work/r2")"; exit 1; }

# Keyed submit with binds: retried deliveries under one key apply once.
submit='{"tml":"(+ a b e cont(n) (k n))","binds":{"a":40,"b":2},"save":"ans"}'
curl -sS -o "$work/r3" -w '%{http_code}' "$gw/v1/submit" \
	-H 'Idempotency-Key: smoke-1' -d "$submit" >"$work/c3"
[ "$(cat "$work/c3")" = 200 ] || { echo "gwsmoke: submit failed"; cat "$work/r3"; exit 1; }
[ "$(jget "$work/r3" value)" = 42 ] || { echo "gwsmoke: submit answered $(cat "$work/r3")"; exit 1; }
curl -sS -o "$work/r3b" -w '%{http_code}' "$gw/v1/submit" \
	-H 'Idempotency-Key: smoke-1' -d "$submit" >/dev/null
[ "$(jget "$work/r3b" value)" = 42 ] || { echo "gwsmoke: replayed submit answered $(cat "$work/r3b")"; exit 1; }

# A saved closure is callable with an empty module.
curl -sS -o "$work/r4" "$gw/v1/call" -d '{"fn":"ans"}'
[ "$(jget "$work/r4" value)" = 42 ] || { echo "gwsmoke: saved call answered $(cat "$work/r4")"; exit 1; }

# Error mapping: bad JSON is the gateway's 400, a missing module the
# server's 404 — and neither disturbs the session pool.
[ "$(curl -sS -o /dev/null -w '%{http_code}' "$gw/v1/submit" -d '{')" = 400 ] || {
	echo "gwsmoke: malformed body was not a 400"; exit 1; }
[ "$(curl -sS -o /dev/null -w '%{http_code}' "$gw/v1/call" -d '{"module":"nope","fn":"f"}')" = 404 ] || {
	echo "gwsmoke: unknown module was not a 404"; exit 1; }

# Open an SSE watch, then commit a matching root: the push must carry
# the root name and a CSN. curl -N streams; we stop it once the event
# file shows the change.
curl -sSN "$gw/v1/watch?pattern=srv:smoke-*" >"$work/sse" 2>/dev/null &
sse_pid=$!
pids="$pids $sse_pid"
for _ in $(seq 1 50); do
	grep -q '^event: ready' "$work/sse" && break
	sleep 0.1
done
grep -q '^event: ready' "$work/sse" || { echo "gwsmoke: watch never became ready"; exit 1; }
curl -sS -o "$work/r5" "$gw/v1/submit" \
	-d '{"tml":"(+ 6 7 e cont(n) (k n))","save":"smoke-w"}'
ok=""
for _ in $(seq 1 50); do
	if grep -q '"root":"srv:smoke-w"' "$work/sse"; then ok=1; break; fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "gwsmoke: committed change never arrived on the SSE stream"; cat "$work/sse"; exit 1; }
grep -q '^id: ' "$work/sse" || { echo "gwsmoke: SSE events carry no CSN ids"; exit 1; }
kill "$sse_pid" 2>/dev/null || true
wait "$sse_pid" 2>/dev/null || true

# Stats must show gateway traffic and the backend's watch counters.
curl -sS -o "$work/r6" "$gw/v1/stats"
[ "$(jget "$work/r6" installs)" = 1 ] || { echo "gwsmoke: stats installs != 1"; cat "$work/r6"; exit 1; }
grep -q '"watch"' "$work/r6" || { echo "gwsmoke: stats missing backend watch block"; cat "$work/r6"; exit 1; }

# Graceful drain: gateway first (in-flight requests finish, watchers
# close), then the server; the store must audit clean.
kill -TERM "$tycgw_pid"
wait "$tycgw_pid" || { echo "gwsmoke: tycgw exited non-zero" >&2; cat "$work/tycgw.log" >&2; exit 1; }
kill -TERM "$tycd_pid"
wait "$tycd_pid" || { echo "gwsmoke: tycd exited non-zero" >&2; cat "$work/tycd.log" >&2; exit 1; }
pids=""
"$work/tycfsck" -store "$work/gw.tyst" -v
echo "gwsmoke: OK"
