#!/bin/sh
# cluster_smoke.sh — end-to-end smoke test of the sharded cluster: build
# tycd, tycc, tycsh and tycfsck; boot three tycd shards over file stores
# plus a tycc coordinator with partial results enabled; drive an
# install, a routed save, a saved-closure call and a scattered submit
# through tycsh; kill one shard and verify the scatter degrades to a
# partial answer naming the missing range; restart the shard and verify
# the answer is whole again; drain everything with SIGTERM and audit all
# three shard stores with one tycfsck run.
#
#   scripts/cluster_smoke.sh
#
# Exits non-zero if any step fails: a build error, a request error, a
# wrong or non-degrading answer, an unclean shutdown, or fsck findings.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/tycd" ./cmd/tycd
go build -o "$work/tycc" ./cmd/tycc
go build -o "$work/tycsh" ./cmd/tycsh
go build -o "$work/tycfsck" ./cmd/tycfsck

# wait_addr portfile pid: block until the process publishes its address.
wait_addr() {
	for _ in $(seq 1 100); do
		[ -s "$1" ] && break
		kill -0 "$2" 2>/dev/null || { echo "smoke: process died before listening" >&2; exit 1; }
		sleep 0.1
	done
	cat "$1"
}

# Three shards over their own file stores.
shard_addrs=""
for i in 0 1 2; do
	"$work/tycd" -store "$work/shard$i.tyst" -addr 127.0.0.1:0 \
		-portfile "$work/port$i" 2>"$work/shard$i.log" &
	eval "shard${i}_pid=$!"
	pids="$pids $!"
	addr="$(wait_addr "$work/port$i" "$!")"
	eval "shard${i}_addr=$addr"
	shard_addrs="$shard_addrs -shard $addr"
done

# The coordinator, fronting the shards with partial degradation on.
# shellcheck disable=SC2086
"$work/tycc" $shard_addrs -addr 127.0.0.1:0 -portfile "$work/portc" \
	-partial -hedge 100ms 2>"$work/tycc.log" &
tycc_pid=$!
pids="$pids $tycc_pid"
coord="$(wait_addr "$work/portc" "$tycc_pid")"
echo "smoke: 3 shards behind tycc on $coord"

# Install everywhere, save through the router, call it back, scatter a
# pure term (every shard answers 42; auto-merge requires agreement).
cat >"$work/script1" <<'EOF'
ping
install <<
module demo export double let double(a : Int) : Int = a * 2 end
.
call demo.double 21
submit save=ans (+ 40 2 e cont(n) (k n))
call @ans
submit name=scatter (+ 40 2 e cont(m) (k m))
stats
quit
EOF
"$work/tycsh" -addr "$coord" "$work/script1" >"$work/out1" 2>"$work/err1"
cat "$work/out1"
if [ "$(grep -c '^42$' "$work/out1")" != 4 ]; then
	echo "smoke: expected four 42s through the coordinator" >&2
	cat "$work/err1" >&2
	exit 1
fi
grep -q 'cluster: 3 shards' "$work/out1" || {
	echo "smoke: stats do not show the cluster block" >&2
	exit 1
}
if grep -q '^(partial:' "$work/out1"; then
	echo "smoke: healthy cluster answered partially" >&2
	exit 1
fi

# Kill shard 1: the scatter must degrade to a partial answer that names
# the missing shard's hash range instead of failing.
kill -TERM "$shard1_pid"
wait "$shard1_pid" || true
echo "submit name=scatter (+ 40 2 e cont(m) (k m))" | \
	"$work/tycsh" -addr "$coord" >"$work/out2" 2>"$work/err2" || {
	echo "smoke: degraded scatter failed outright" >&2
	cat "$work/err2" >&2
	exit 1
}
cat "$work/out2"
grep -q '^42$' "$work/out2" || { echo "smoke: degraded scatter lost the answer" >&2; exit 1; }
grep -q 'partial: missing shard1:' "$work/out2" || {
	echo "smoke: degraded scatter did not name the missing shard" >&2
	exit 1
}

# Restart shard 1 over the same store and port: once the coordinator's
# probe revives it, the scatter is whole again.
"$work/tycd" -store "$work/shard1.tyst" -addr "$shard1_addr" \
	2>"$work/shard1b.log" &
shard1_pid=$!
pids="$pids $shard1_pid"
ok=""
for _ in $(seq 1 50); do
	sleep 0.2
	echo "submit name=scatter (+ 40 2 e cont(m) (k m))" | \
		"$work/tycsh" -addr "$coord" >"$work/out3" 2>/dev/null || continue
	if grep -q '^42$' "$work/out3" && ! grep -q '^(partial:' "$work/out3"; then
		ok=1
		break
	fi
done
[ -n "$ok" ] || { echo "smoke: scatter never became whole after restart" >&2; cat "$work/out3" >&2; exit 1; }
echo "smoke: degraded and recovered"

# Graceful drain: coordinator first, then the shards.
kill -TERM "$tycc_pid"
wait "$tycc_pid" || { echo "smoke: tycc exited non-zero" >&2; cat "$work/tycc.log" >&2; exit 1; }
for p in "$shard0_pid" "$shard1_pid" "$shard2_pid"; do
	kill -TERM "$p"
	wait "$p" || { echo "smoke: a shard exited non-zero" >&2; exit 1; }
done
pids=""

# One fsck run audits every shard store.
"$work/tycfsck" -store "$work/shard0.tyst" -store "$work/shard1.tyst" -store "$work/shard2.tyst" -v

# --- Replica repair phase: one shard with TWO replicas behind a tycc
# with the write-ahead handoff enabled. Kill a replica, write through
# the outage (the coordinator must ack and park the dead replica's copy
# in its handoff log), revive it, and poll tycfsck -cluster until the
# backlog is replayed and the digest audit re-admits the replica; the
# write must then be callable directly on the revived replica.
echo "smoke: replica repair phase"
for r in 0 1; do
	"$work/tycd" -store "$work/rep$r.tyst" -addr 127.0.0.1:0 \
		-portfile "$work/rport$r" 2>"$work/rep$r.log" &
	eval "rep${r}_pid=$!"
	pids="$pids $!"
	addr="$(wait_addr "$work/rport$r" "$!")"
	eval "rep${r}_addr=$addr"
done
mkdir "$work/handoff"
"$work/tycc" -shard "$rep0_addr,$rep1_addr" -addr 127.0.0.1:0 \
	-portfile "$work/portc2" -handoff-dir "$work/handoff" \
	-repair-interval 50ms 2>"$work/tycc2.log" &
tycc2_pid=$!
pids="$pids $tycc2_pid"
coord2="$(wait_addr "$work/portc2" "$tycc2_pid")"

# A save while both replicas are up applies to both.
echo "submit save=pre (+ 1 2 e cont(n) (k n))" | \
	"$work/tycsh" -addr "$coord2" >"$work/rout1" 2>&1
grep -q '^3$' "$work/rout1" || {
	echo "smoke: pre-outage save failed" >&2
	cat "$work/rout1" >&2
	exit 1
}

# Kill replica 1. The next save must still be acked: replica 0 applies
# it and the handoff log stands in for replica 1's ack.
kill -TERM "$rep1_pid"
wait "$rep1_pid" || true
echo "submit save=during (+ 20 22 e cont(n) (k n))" | \
	"$work/tycsh" -addr "$coord2" >"$work/rout2" 2>&1
grep -q '^42$' "$work/rout2" || {
	echo "smoke: write during replica outage was not acked" >&2
	cat "$work/rout2" >&2
	exit 1
}

# health and tycfsck -cluster both surface the lag honestly.
echo health | "$work/tycsh" -addr "$coord2" >"$work/rhealth" 2>&1
grep -q 'lagging' "$work/rhealth" || {
	echo "smoke: health does not show the lagging replica" >&2
	cat "$work/rhealth" >&2
	exit 1
}
"$work/tycfsck" -cluster "$coord2" >"$work/rfsck1" 2>&1 || {
	echo "smoke: tycfsck -cluster failed on an honestly lagging replica" >&2
	cat "$work/rfsck1" >&2
	exit 1
}
grep -q 'pending replay' "$work/rfsck1" || {
	echo "smoke: tycfsck -cluster does not report the backlog" >&2
	cat "$work/rfsck1" >&2
	exit 1
}

# Revive replica 1 over its surviving store and port; the probe clears
# the down latch, the repair loop drains the backlog, and the digest
# audit gates re-admission — poll until tycfsck says the state is clean.
"$work/tycd" -store "$work/rep1.tyst" -addr "$rep1_addr" \
	2>"$work/rep1b.log" &
rep1_pid=$!
pids="$pids $rep1_pid"
ok=""
for _ in $(seq 1 50); do
	sleep 0.2
	"$work/tycfsck" -cluster "$coord2" >"$work/rfsck2" 2>/dev/null || continue
	if grep -q 'repair state clean' "$work/rfsck2"; then
		ok=1
		break
	fi
done
[ -n "$ok" ] || {
	echo "smoke: repair never converged" >&2
	cat "$work/rfsck2" >&2
	cat "$work/tycc2.log" >&2
	exit 1
}

# The replayed write must be callable directly on the revived replica,
# not just through the coordinator.
echo "call @during" | "$work/tycsh" -addr "$rep1_addr" >"$work/rout3" 2>&1
grep -q '^42$' "$work/rout3" || {
	echo "smoke: replayed write not callable on the revived replica" >&2
	cat "$work/rout3" >&2
	exit 1
}
echo "smoke: replica outage absorbed and repaired"

# Drain the repair-phase fleet and audit its stores and handoff logs.
kill -TERM "$tycc2_pid"
wait "$tycc2_pid" || { echo "smoke: tycc (repair phase) exited non-zero" >&2; cat "$work/tycc2.log" >&2; exit 1; }
for p in "$rep0_pid" "$rep1_pid"; do
	kill -TERM "$p"
	wait "$p" || { echo "smoke: a replica exited non-zero" >&2; exit 1; }
done
pids=""
"$work/tycfsck" -store "$work/rep0.tyst" -store "$work/rep1.tyst" \
	-handoff "$work/handoff/shard0-r0.hlog" -handoff "$work/handoff/shard0-r1.hlog" -v
echo "smoke: OK"
