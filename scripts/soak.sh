#!/bin/sh
# soak.sh — the soak lane: drive a seeded macro workload (Stanford-shape
# calls, arithmetic submits, keyed writes, optimizations, WATCH round
# trips) through a tycd server and a 3-shard tycc cluster, then gate the
# per-verb latency percentiles and throughput against the committed
# baseline with benchjson. Every answer is self-checked; any error or
# wrong answer fails the run before the baseline gate even looks.
#
#   SOAK_REQUESTS=20000 scripts/soak.sh            # CI-sized run
#   SOAK_REQUESTS=1000000 scripts/soak.sh          # full soak
#   SOAK_BASELINE= scripts/soak.sh                 # skip the gate
#
# The artifact lands in bench/BENCH_soak.new.json; promote it with
#   cp bench/BENCH_soak.new.json bench/BENCH_soak.json
# Latency/rps gating only applies when the baseline was recorded on the
# same CPU model — foreign machines gate errors and wrong counts alone.
set -eu
cd "$(dirname "$0")/.."

requests="${SOAK_REQUESTS:-20000}"
baseline="${SOAK_BASELINE-bench/BENCH_soak.json}"
workers="${SOAK_WORKERS:-8}"

work="$(mktemp -d)"
pids=""
cleanup() {
	for p in $pids; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/tycd" ./cmd/tycd
go build -o "$work/tycc" ./cmd/tycc
go build -o "$work/tycload" ./cmd/tycload
go build -o "$work/tycfsck" ./cmd/tycfsck
go build -o "$work/benchjson" ./cmd/benchjson

wait_addr() {
	for _ in $(seq 1 100); do
		[ -s "$1" ] && break
		kill -0 "$2" 2>/dev/null || { echo "soak: process died before listening" >&2; exit 1; }
		sleep 0.1
	done
	cat "$1"
}

# Lane 1: a single tycd, full mix including WATCH.
"$work/tycd" -store "$work/solo.tyst" -addr 127.0.0.1:0 \
	-portfile "$work/portd" 2>"$work/tycd.log" &
tycd_pid=$!
pids="$pids $tycd_pid"
solo="$(wait_addr "$work/portd" "$tycd_pid")"
echo "soak: $requests requests against tycd on $solo" >&2
"$work/tycload" -addr "$solo" -label tycd -requests "$requests" \
	-workers "$workers" -seed 1 >"$work/bench.txt"

kill -TERM "$tycd_pid"
wait "$tycd_pid" || { echo "soak: tycd exited non-zero" >&2; cat "$work/tycd.log" >&2; exit 1; }
pids=""
"$work/tycfsck" -store "$work/solo.tyst"

# Lane 2: three shards behind tycc. Coordinators do not speak WATCH, so
# that weight moves to zero and the rest of the mix stands.
shard_addrs=""
shard_pids=""
for i in 0 1 2; do
	"$work/tycd" -store "$work/shard$i.tyst" -addr 127.0.0.1:0 \
		-portfile "$work/port$i" 2>"$work/shard$i.log" &
	pids="$pids $!"
	shard_pids="$shard_pids $!"
	addr="$(wait_addr "$work/port$i" "$!")"
	shard_addrs="$shard_addrs -shard $addr"
done
# shellcheck disable=SC2086
"$work/tycc" $shard_addrs -addr 127.0.0.1:0 -portfile "$work/portc" \
	2>"$work/tycc.log" &
tycc_pid=$!
pids="$pids $tycc_pid"
coord="$(wait_addr "$work/portc" "$tycc_pid")"
echo "soak: $requests requests against 3-shard tycc on $coord" >&2
"$work/tycload" -addr "$coord" -label tycc -requests "$requests" \
	-workers "$workers" -seed 2 -mix call=8,submit=4,write=4,optimize=1,watch=0 \
	>>"$work/bench.txt"

kill -TERM "$tycc_pid"
wait "$tycc_pid" || { echo "soak: tycc exited non-zero" >&2; cat "$work/tycc.log" >&2; exit 1; }
for p in $shard_pids; do
	kill -TERM "$p"
	wait "$p" || { echo "soak: a shard exited non-zero" >&2; exit 1; }
done
pids=""
"$work/tycfsck" -store "$work/shard0.tyst" -store "$work/shard1.tyst" -store "$work/shard2.tyst"

# Duplicate headers from the second run confuse nobody: benchjson keeps
# the last value and both runs share one host. Gate if a baseline is
# committed, emit the fresh artifact either way.
mkdir -p bench
if [ -n "$baseline" ] && [ -f "$baseline" ]; then
	"$work/benchjson" -lane soak -baseline "$baseline" \
		<"$work/bench.txt" >bench/BENCH_soak.new.json
else
	"$work/benchjson" -lane soak <"$work/bench.txt" >bench/BENCH_soak.new.json
	echo "soak: no baseline at '$baseline'; gate skipped" >&2
fi
echo "soak: OK"
