#!/bin/sh
# bench_pipeline.sh — run one benchmark lane and write a
# benchstat-friendly JSON artifact.
#
#   scripts/bench_pipeline.sh [out.json]
#
# Environment:
#   BENCH_LANE   pipeline (default): E1 static regimes, E2 dynamic
#                regimes, F3 optimize/compile round trip — compares
#                optimizer plans.
#                exec: the physical execution kernels (BenchmarkExec_*)
#                — wall clock, allocs/op and steps/call of select, join,
#                exists and indexscan on one fixed plan, where
#                engine-level changes show up while steps/call must not
#                move.
#                server: loopback tycd throughput (BenchmarkServer_*) at
#                1/8/64 concurrent sessions submitting the same PTML
#                selection — per-request wire + shared-cache overhead;
#                hits/op must stay 1.0 (one compilation total).
#                cluster: distributed submit (BenchmarkCluster_*) at
#                1/3/8 shards plus hedged-vs-unhedged tail latency
#                against a straggling replica — coordinator fan-out and
#                merge overhead; hits/op must stay 1.0 per shard, and
#                the hedged p99-ms should sit near the hedge threshold
#                instead of the straggler delay.
#                store: MVCC commit throughput (BenchmarkStore_*) at
#                1/8/64 concurrent transactions against a file-backed
#                store — the group-commit fsync amortization; ns/op at
#                64 sessions must land well under the single-session
#                line and txns/batch shows how many transactions each
#                flush carried.
#   BENCH_TIME   -benchtime value (default 1x: one measured iteration —
#                the suite reports deterministic steps/call, so a single
#                iteration is meaningful; raise for stable ns/op)
#   BENCH_COUNT  -count value (default 1; raise for benchstat variance)
#   BENCH_BASELINE  committed artifact to gate against: the run fails if
#                a machine-independent metric (allocs/op, steps/call —
#                plus ns/op and B/op when the cpu matches) regresses by
#                more than BENCH_MAXREGRESS (default 0.2) vs the
#                baseline.
set -eu
cd "$(dirname "$0")/.."

lane="${BENCH_LANE:-pipeline}"
case "$lane" in
pipeline) pattern='BenchmarkE1|BenchmarkE2|BenchmarkF3' ;;
exec) pattern='BenchmarkExec' ;;
server) pattern='BenchmarkServer' ;;
cluster) pattern='BenchmarkCluster' ;;
store) pattern='BenchmarkStore' ;;
*) echo "bench_pipeline.sh: unknown BENCH_LANE '$lane'" >&2; exit 2 ;;
esac

out="${1:-BENCH_${lane}.json}"
benchtime="${BENCH_TIME:-1x}"
count="${BENCH_COUNT:-1}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT

go test -run '^$' -bench "$pattern" \
  -benchtime "$benchtime" -count "$count" . | tee "$txt"
if [ -n "${BENCH_BASELINE:-}" ]; then
  go run ./cmd/benchjson -lane "$lane" \
    -baseline "$BENCH_BASELINE" -maxregress "${BENCH_MAXREGRESS:-0.2}" \
    <"$txt" >"$out"
else
  go run ./cmd/benchjson -lane "$lane" <"$txt" >"$out"
fi
echo "wrote $out"
