#!/bin/sh
# bench_pipeline.sh — run the pipeline-relevant benchmark set (E1 static
# regimes, E2 dynamic regimes, F3 optimize/compile round trip) and write
# a benchstat-friendly JSON artifact.
#
#   scripts/bench_pipeline.sh [out.json]
#
# Environment:
#   BENCH_TIME   -benchtime value (default 1x: one measured iteration —
#                the suite reports deterministic steps/call, so a single
#                iteration is meaningful; raise for stable ns/op)
#   BENCH_COUNT  -count value (default 1; raise for benchstat variance)
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_pipeline.json}"
benchtime="${BENCH_TIME:-1x}"
count="${BENCH_COUNT:-1}"

txt="$(mktemp)"
trap 'rm -f "$txt"' EXIT

go test -run '^$' -bench 'BenchmarkE1|BenchmarkE2|BenchmarkF3' \
  -benchtime "$benchtime" -count "$count" . | tee "$txt"
go run ./cmd/benchjson <"$txt" >"$out"
echo "wrote $out"
