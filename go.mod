module tycoon

go 1.22
