// Package tycoon is the public facade of this reproduction of
// Gawecki & Matthes, "Exploiting Persistent Intermediate Code
// Representations in Open Database Environments" (EDBT 1996): the Tycoon
// system built around TML, a persistent continuation-passing-style
// intermediate code representation shared by programs and queries.
//
// A System bundles the persistent object store, the TL compiler, the
// module linker (which attaches PTML — the compact persistent TML
// encoding — to every installed function), the execution machine with
// the relational substrate, and the reflective runtime optimizer that
// re-optimizes functions across module abstraction barriers (paper §4.1).
//
// Quick start:
//
//	sys, _ := tycoon.Open("")            // in-memory; a path persists
//	defer sys.Close()
//	sys.Install(`module m export f
//	             let f(n : Int) : Int = n * n end`)
//	v, _ := sys.Call("m", "f", tycoon.Int(9)) // Int(81)
//	sys.OptimizeFunction("m", "f")            // reflect.optimize (§4.1)
package tycoon

import (
	"fmt"
	"io"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/pipeline"
	"tycoon/internal/reflectopt"
	"tycoon/internal/relalg"
	"tycoon/internal/store"
	"tycoon/internal/tl"
	"tycoon/internal/tyclib"
)

// Value is a runtime value of the Tycoon machine.
type Value = machine.Value

// Scalar constructors re-exported for callers of Call.
type (
	// Int is a 64-bit integer value.
	Int = machine.Int
	// Real is a floating point value.
	Real = machine.Real
	// Bool is a boolean value.
	Bool = machine.Bool
	// Str is a string value.
	Str = machine.Str
	// Char is a character value.
	Char = machine.Char
)

// OID identifies a persistent object.
type OID = store.OID

// Column describes one relation attribute.
type Column = store.Column

// Column types for CreateRelation.
const (
	ColInt  = store.ColInt
	ColReal = store.ColReal
	ColBool = store.ColBool
	ColStr  = store.ColStr
)

// Val is a relation field value.
type Val = store.Val

// Field constructors for InsertRow.
var (
	// IntVal builds an integer field.
	IntVal = store.IntVal
	// RealVal builds a real field.
	RealVal = store.RealVal
	// BoolVal builds a boolean field.
	BoolVal = store.BoolVal
	// StrVal builds a string field.
	StrVal = store.StrVal
)

// Config tunes Open.
type Config struct {
	// LocalOpt applies compile-time (local) optimization at installation.
	LocalOpt bool
	// DirectPrims compiles scalar operations straight to primitives
	// instead of through the dynamically bound library modules — the
	// ablation of the paper's compilation strategy.
	DirectPrims bool
	// StripPTML installs code without the persistent TML trees; halves
	// code size (paper §6) but disables reflective optimization.
	StripPTML bool
	// Out receives the output of TL's print; nil discards it.
	Out io.Writer
}

// System is an open Tycoon environment.
type System struct {
	// Store is the persistent object store.
	Store *store.Store
	// Machine executes compiled and interpreted code.
	Machine *machine.Machine
	// Compiler compiles TL modules (the standard library is preloaded).
	Compiler *tl.Compiler
	// Linker installs compiled modules into the store.
	Linker *linker.Linker
	// Rel is the relational substrate manager.
	Rel *relalg.Manager
	// Reflect is the runtime reflective optimizer.
	Reflect *reflectopt.Optimizer

	modules map[string]store.OID
}

// Open creates (or reopens) a Tycoon system at path; an empty path is an
// in-memory system. The TL standard library is compiled and installed.
func Open(path string, cfgs ...Config) (*System, error) {
	var cfg Config
	if len(cfgs) > 0 {
		cfg = cfgs[0]
	}
	st, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	level := linker.OptNone
	if cfg.LocalOpt {
		level = linker.OptLocal
	}
	lk := linker.New(st, linker.Config{Level: level, StripPTML: cfg.StripPTML})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		st.Close()
		return nil, err
	}
	if cfg.DirectPrims {
		comp.Mode = tl.DirectPrims
	}
	m := machine.New(st)
	m.Out = cfg.Out
	mg := relalg.NewManager(st)
	mg.Register(m)
	sys := &System{
		Store:    st,
		Machine:  m,
		Compiler: comp,
		Linker:   lk,
		Rel:      mg,
		Reflect:  reflectopt.New(st, reflectopt.Options{}),
		modules:  make(map[string]store.OID),
	}
	// Recover module roots from a reopened store.
	for _, root := range st.Roots() {
		if len(root) > len(linker.ModuleRoot) && root[:len(linker.ModuleRoot)] == linker.ModuleRoot {
			if oid, ok := st.Root(root); ok {
				sys.modules[root[len(linker.ModuleRoot):]] = oid
			}
		}
	}
	return sys, nil
}

// Close commits and closes the store.
func (s *System) Close() error { return s.Store.Close() }

// Commit flushes pending store changes.
func (s *System) Commit() error { return s.Store.Commit() }

// Install compiles and installs a TL module, returning its OID.
func (s *System) Install(src string) (OID, error) {
	unit, err := s.Compiler.Compile(src)
	if err != nil {
		return store.Nil, err
	}
	oid, err := s.Linker.InstallModule(unit)
	if err != nil {
		return store.Nil, err
	}
	s.modules[unit.Name] = oid
	return oid, nil
}

// Module resolves an installed module by name.
func (s *System) Module(name string) (OID, bool) {
	oid, ok := s.modules[name]
	return oid, ok
}

// Call applies an exported function of an installed module.
func (s *System) Call(module, fn string, args ...Value) (Value, error) {
	oid, ok := s.modules[module]
	if !ok {
		return nil, fmt.Errorf("tycoon: module %s not installed", module)
	}
	return s.Machine.CallExport(oid, fn, args)
}

// FunctionOID resolves the persistent closure of an exported function.
func (s *System) FunctionOID(module, fn string) (OID, error) {
	modOID, ok := s.modules[module]
	if !ok {
		return store.Nil, fmt.Errorf("tycoon: module %s not installed", module)
	}
	obj, err := s.Store.Get(modOID)
	if err != nil {
		return store.Nil, err
	}
	mod, ok := obj.(*store.Module)
	if !ok {
		return store.Nil, fmt.Errorf("tycoon: %s is not a module", module)
	}
	v, ok := mod.Lookup(fn)
	if !ok || v.Kind != store.ValRef {
		return store.Nil, fmt.Errorf("tycoon: %s.%s is not an exported function", module, fn)
	}
	return v.Ref, nil
}

// OptimizeFunction reflectively optimizes an exported function across its
// module abstraction barriers (paper §4.1) and installs the new code for
// all subsequent calls through this system. Repeat optimization of an
// unchanged function is served from the pipeline's content-addressed
// cache (Result.CacheHit), and concurrent calls deduplicate the work.
func (s *System) OptimizeFunction(module, fn string) (*reflectopt.Result, error) {
	oid, err := s.FunctionOID(module, fn)
	if err != nil {
		return nil, err
	}
	return s.Reflect.OptimizeAndInstall(s.Machine, oid)
}

// OptCacheStats is the optimized-code cache counters of the reflective
// optimizer's compilation pipeline.
type OptCacheStats = pipeline.CacheStats

// OptCacheStats reports cache hit/miss/dedup counters of the reflective
// optimizer.
func (s *System) OptCacheStats() OptCacheStats {
	return s.Reflect.CacheStats()
}

// CreateRelation creates a persistent relation (with optional hash
// indexes on the given column positions) that TL rel declarations can
// bind against.
func (s *System) CreateRelation(name string, schema []Column, indexCols ...int) (OID, error) {
	return s.Rel.CreateRelation(name, schema, indexCols...)
}

// InsertRow appends a row to a persistent relation.
func (s *System) InsertRow(rel OID, row ...Val) error {
	return s.Rel.InsertRow(rel, row)
}

// Steps reports the machine's step counter — the machine-independent
// work measure the benchmarks report.
func (s *System) Steps() int64 { return s.Machine.Steps() }

// ResetSteps clears the step counter.
func (s *System) ResetSteps() { s.Machine.ResetSteps() }
