// Server-lane benchmarks: loopback throughput of the tycd wire path at
// 1, 8 and 64 concurrent sessions submitting the E-benchmark selection
// as PTML. These are the benchmarks behind bench/BENCH_server.json.
// Every session submits the α-same term against the same binding, so
// after the first request the pipeline serves cached code and the lane
// measures the per-request server overhead — framing, PTML decode,
// cache lookup, execution, result encoding — rather than compilation;
// the hits/op metric confirms the shared cache carried the load.
package tycoon

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
)

// startBenchServer serves an in-process tycd over a loopback listener
// with relation t(id, val), val = i % 97, 1000 rows, indexed on id.
func startBenchServer(b *testing.B) (*server.Server, string) {
	b.Helper()
	st, err := store.Open("")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	srv, err := server.New(st, server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	mg := srv.Manager()
	oid, err := mg.CreateRelation("t", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "val", Type: store.ColInt},
	}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := mg.InsertRow(oid, []store.Val{store.IntVal(int64(i)), store.IntVal(int64(i % 97))}); err != nil {
			b.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

const benchSelectSrc = `(select proc(x !ce !cc)
  ([] x 1 cont(a) (< a 50 cont() (cc true) cont() (cc false)))
  r e k)`

func benchSubmit(c *client.Client) (*ship.Result, error) {
	return c.SubmitTML("sel", benchSelectSrc,
		[]ship.WBind{{Name: "r", Val: ship.WVal{Kind: ship.WRoot, Str: "rel:t"}}},
		true, "")
}

// benchServerSessions measures end-to-end submit latency with nSess
// concurrent sessions sharing one server: b.N requests are spread
// round-robin-ish over the sessions, so ns/op is the aggregate
// wall-clock cost per request at that concurrency. retries > 0 enables
// client retries, which makes every submit carry an idempotency key and
// flow through the server's dedup table (where, being an effect-free
// read, it is executed but not retained) — the variant that pins the
// fault-tolerance machinery to zero happy-path overhead.
func benchServerSessions(b *testing.B, nSess, retries int) {
	srv, addr := startBenchServer(b)
	clients := make([]*client.Client, nSess)
	for i := range clients {
		c, err := client.Dial(addr, client.Options{
			Timeout: 2 * time.Minute,
			Client:  fmt.Sprintf("bench-%d", i),
			Retries: retries,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	// Warm the shared cache so the timed region measures the steady
	// state, not the single compilation.
	if res, err := benchSubmit(clients[0]); err != nil {
		b.Fatal(err)
	} else if got := len(res.Val.Rel.Rows); got != 530 {
		b.Fatalf("selection returned %d rows, want 530", got)
	}

	var pending int64 = int64(b.N)
	var hits int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client.Client) {
			defer wg.Done()
			for atomic.AddInt64(&pending, -1) >= 0 {
				res, err := benchSubmit(c)
				if err != nil {
					b.Error(err)
					return
				}
				if res.Info.CacheHit {
					atomic.AddInt64(&hits, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
	p := srv.Stats().Pipeline
	if p.Misses != 1 {
		b.Fatalf("pipeline compiled %d times, want 1 (hits %d, shared %d)", p.Misses, p.Hits, p.Shared)
	}
	for _, c := range clients {
		if n := c.Retries(); n != 0 {
			b.Fatalf("a client retried %d times on a healthy loopback", n)
		}
	}
}

func BenchmarkServer_Sessions1(b *testing.B)  { benchServerSessions(b, 1, 0) }
func BenchmarkServer_Sessions8(b *testing.B)  { benchServerSessions(b, 8, 0) }
func BenchmarkServer_Sessions64(b *testing.B) { benchServerSessions(b, 64, 0) }

// BenchmarkServer_Sessions8Retry is Sessions8 with the retry machinery
// armed: idempotency keys on every request, dedup recording server-side.
// Comparing it against Sessions8 bounds the fault-tolerance overhead on
// the happy path; hits/op must stay 1.0 either way.
func BenchmarkServer_Sessions8Retry(b *testing.B) { benchServerSessions(b, 8, 5) }
