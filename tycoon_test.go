package tycoon

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "facade.tyst")
	sys, err := Open(path, Config{LocalOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Install(`module m export sq let sq(n : Int) : Int = n * n end`); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Call("m", "sq", Int(12))
	if err != nil || v != Value(Int(144)) {
		t.Fatalf("sq = %v, %v", v, err)
	}
	if _, ok := sys.Module("m"); !ok {
		t.Error("Module lookup failed")
	}
	if _, ok := sys.Module("zzz"); ok {
		t.Error("phantom module resolved")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: module roots are recovered.
	sys2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	v, err = sys2.Call("m", "sq", Int(5))
	if err != nil || v != Value(Int(25)) {
		t.Fatalf("after reopen sq = %v, %v", v, err)
	}
}

func TestFacadeOptimizeFunction(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Install(`module m export g
	  let g(n : Int) : Int = begin var s := 0; for i = 1 upto n do s := s + i end; s end
	  end`); err != nil {
		t.Fatal(err)
	}
	sys.ResetSteps()
	if _, err := sys.Call("m", "g", Int(500)); err != nil {
		t.Fatal(err)
	}
	before := sys.Steps()
	res, err := sys.OptimizeFunction("m", "g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Inlined == 0 {
		t.Error("no cross-barrier inlining recorded")
	}
	sys.ResetSteps()
	v, err := sys.Call("m", "g", Int(500))
	if err != nil || v != Value(Int(125250)) {
		t.Fatalf("optimized g = %v, %v", v, err)
	}
	if after := sys.Steps(); after*2 > before {
		t.Errorf("optimization did not double speed: %d → %d", before, after)
	}
}

func TestFacadeRelations(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	rel, err := sys.CreateRelation("points", []Column{
		{Name: "x", Type: ColInt},
		{Name: "tag", Type: ColStr},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := sys.InsertRow(rel, IntVal(i), StrVal("p")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sys.Install(`module q export n
	  rel points : Rel(x : Int, tag : String)
	  let n() : Int = count(points)
	  end`); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Call("q", "n")
	if err != nil || v != Value(Int(10)) {
		t.Fatalf("count = %v, %v", v, err)
	}
}

func TestFacadePrintOutput(t *testing.T) {
	var buf bytes.Buffer
	sys, err := Open("", Config{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Install(`module m export hello
	  let hello() : Ok = begin print("hello tycoon"); print(42) end
	  end`); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Call("m", "hello"); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "hello tycoon\n42\n" {
		t.Errorf("output %q", got)
	}
}

func TestFacadeErrors(t *testing.T) {
	sys, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Call("nope", "f"); err == nil {
		t.Error("call into missing module succeeded")
	}
	if _, err := sys.Install("module broken let = end"); err == nil {
		t.Error("broken module installed")
	}
	if _, err := sys.FunctionOID("nope", "f"); err == nil {
		t.Error("FunctionOID on missing module succeeded")
	}
	if _, err := sys.OptimizeFunction("nope", "f"); err == nil {
		t.Error("OptimizeFunction on missing module succeeded")
	}
}

func TestFacadeStripPTML(t *testing.T) {
	sys, err := Open("", Config{StripPTML: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Install(`module m export f let f(n : Int) : Int = n end`); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Call("m", "f", Int(3))
	if err != nil || v != Value(Int(3)) {
		t.Fatalf("f = %v, %v", v, err)
	}
	if _, err := sys.OptimizeFunction("m", "f"); err == nil {
		t.Error("reflective optimization succeeded without PTML")
	} else if !strings.Contains(err.Error(), "PTML") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestFacadeDirectPrims(t *testing.T) {
	sys, err := Open("", Config{DirectPrims: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Install(`module m export f let f(a, b : Int) : Int = a * b + 1 end`); err != nil {
		t.Fatal(err)
	}
	sys.ResetSteps()
	v, err := sys.Call("m", "f", Int(6), Int(7))
	if err != nil || v != Value(Int(43)) {
		t.Fatalf("f = %v, %v", v, err)
	}
	if sys.Steps() > 5 {
		t.Errorf("direct mode took %d steps for two primitives", sys.Steps())
	}
}
