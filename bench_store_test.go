// Store-lane benchmarks: MVCC transaction commit throughput against a
// file-backed store at 1, 8 and 64 concurrent sessions. These are the
// benchmarks behind bench/BENCH_store.json.
//
// Every session updates its own object, so there are no conflicts and
// ns/op isolates the durable-commit path: snapshot open, write
// buffering, first-committer validation, and the group-committed fsync.
// At 1 session every commit pays a full fsync; at higher concurrency
// the group committer amortizes one fsync over the whole backlog, so
// aggregate throughput must scale well past the single-session line —
// the txns/batch metric shows how many transactions each disk flush
// carried.
package tycoon

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"tycoon/internal/store"
)

// startBenchStore opens a file-backed store with one blob object per
// session for the writers to update.
func startBenchStore(b *testing.B, nSess int) (*store.Store, []store.OID) {
	b.Helper()
	st, err := store.Open(filepath.Join(b.TempDir(), "bench.tyst"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	oids := make([]store.OID, nSess)
	for i := range oids {
		oids[i] = st.Alloc(&store.Blob{Bytes: []byte(fmt.Sprintf("session-%d", i))})
		st.SetRoot(fmt.Sprintf("bench:%d", i), oids[i])
	}
	if err := st.Commit(); err != nil {
		b.Fatal(err)
	}
	return st, oids
}

// benchStoreSessions measures durable commit cost with nSess concurrent
// writers sharing one store: b.N transactions are spread over the
// sessions, so ns/op is the aggregate wall-clock cost per committed
// transaction at that concurrency.
func benchStoreSessions(b *testing.B, nSess int) {
	st, oids := startBenchStore(b, nSess)
	st0 := st.TxStats()

	var pending int64 = int64(b.N)
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < nSess; s++ {
		wg.Add(1)
		go func(oid store.OID) {
			defer wg.Done()
			n := 0
			for atomic.AddInt64(&pending, -1) >= 0 {
				n++
				tx := st.Begin()
				if err := tx.Update(oid, &store.Blob{Bytes: []byte(fmt.Sprintf("v%d", n))}); err != nil {
					b.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					b.Error(err)
					return
				}
			}
		}(oids[s])
	}
	wg.Wait()
	b.StopTimer()

	stats := st.TxStats()
	committed := stats.Committed - st0.Committed
	if committed != uint64(b.N) {
		b.Fatalf("committed %d transactions, want %d", committed, b.N)
	}
	if conflicts := stats.Conflicts - st0.Conflicts; conflicts != 0 {
		b.Fatalf("%d conflicts on disjoint write sets", conflicts)
	}
	if batches := stats.Batches - st0.Batches; batches > 0 {
		b.ReportMetric(float64(stats.BatchTxns-st0.BatchTxns)/float64(batches), "txns/batch")
	}
}

func BenchmarkStore_Sessions1(b *testing.B)  { benchStoreSessions(b, 1) }
func BenchmarkStore_Sessions8(b *testing.B)  { benchStoreSessions(b, 8) }
func BenchmarkStore_Sessions64(b *testing.B) { benchStoreSessions(b, 64) }
