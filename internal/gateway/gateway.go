package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"tycoon/internal/client"
	"tycoon/internal/ship"
)

// Defaults for Config zero values.
const (
	// DefaultSessions is the wire-session pool size: HTTP requests beyond
	// it queue for a session instead of opening unbounded connections.
	DefaultSessions = 4
	// DefaultMaxBody bounds an HTTP request body. A larger body is
	// answered 400 without being read further — the limit exists so a
	// hostile payload cannot balloon gateway memory, and it is pinned by
	// a bounds test.
	DefaultMaxBody = 1 << 20
)

// Config parameterises a Gateway.
type Config struct {
	// Backend is the tycd (or tycc) wire address.
	Backend string
	// Sessions is the wire-session pool size (0: DefaultSessions).
	Sessions int
	// Client configures the pooled wire sessions (timeout, retries,
	// backoff). Retries should be on: the gateway leans on the wire
	// client for reconnects and idempotent retry.
	Client client.Options
	// MaxBody bounds a request body in bytes (0: DefaultMaxBody).
	MaxBody int64
}

// Stats are the gateway-side counters, served under "gateway" by
// GET /v1/stats next to the backend's ServerStats.
type Stats struct {
	Sessions      int   `json:"sessions"` // pool capacity
	Requests      int64 `json:"requests"` // HTTP requests handled
	Failures      int64 `json:"failures"` // requests answered with an error status
	Submits       int64 `json:"submits"`
	Calls         int64 `json:"calls"`
	Installs      int64 `json:"installs"`
	Watches       int64 `json:"watches"`        // SSE subscriptions ever opened
	ActiveWatches int   `json:"active_watches"` // SSE subscriptions streaming now
	WatchEvents   int64 `json:"watch_events"`   // notifications pushed over SSE
}

// Gateway serves the HTTP/JSON front end over a pool of wire sessions.
type Gateway struct {
	cfg  Config
	pool chan *client.Client // nil slot: session not yet dialled

	mu       sync.Mutex
	watchers map[*client.Watcher]struct{}
	draining bool

	requests, failures                atomic.Int64
	submits, calls, installs, watches atomic.Int64
	watchEvents                       atomic.Int64
}

// New builds a Gateway. Sessions are dialled lazily, so a gateway can
// boot before (or survive a restart of) its backend.
func New(cfg Config) *Gateway {
	if cfg.Sessions <= 0 {
		cfg.Sessions = DefaultSessions
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Client.Client == "" {
		cfg.Client.Client = "tycgw"
	}
	g := &Gateway{
		cfg:      cfg,
		pool:     make(chan *client.Client, cfg.Sessions),
		watchers: make(map[*client.Watcher]struct{}),
	}
	for i := 0; i < cfg.Sessions; i++ {
		g.pool <- nil
	}
	return g
}

// Handler routes the /v1 API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/submit", g.handleSubmit)
	mux.HandleFunc("POST /v1/call", g.handleCall)
	mux.HandleFunc("POST /v1/install", g.handleInstall)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("GET /v1/healthz", g.handleHealthz)
	mux.HandleFunc("GET /v1/watch", g.handleWatch)
	return mux
}

// Drain refuses new work and terminates the SSE streams (which would
// otherwise hold http.Server.Shutdown open forever). Call it before
// shutting the HTTP server down.
func (g *Gateway) Drain() {
	g.mu.Lock()
	g.draining = true
	ws := make([]*client.Watcher, 0, len(g.watchers))
	for w := range g.watchers {
		ws = append(ws, w)
	}
	g.mu.Unlock()
	for _, w := range ws {
		w.Close()
	}
}

// Close releases the pooled wire sessions. Call after the HTTP server
// has shut down.
func (g *Gateway) Close() {
	for i := 0; i < cap(g.pool); i++ {
		if c := <-g.pool; c != nil {
			c.Close()
		}
	}
}

// Stats snapshots the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	active := len(g.watchers)
	g.mu.Unlock()
	return Stats{
		Sessions:      cap(g.pool),
		Requests:      g.requests.Load(),
		Failures:      g.failures.Load(),
		Submits:       g.submits.Load(),
		Calls:         g.calls.Load(),
		Installs:      g.installs.Load(),
		Watches:       g.watches.Load(),
		ActiveWatches: active,
		WatchEvents:   g.watchEvents.Load(),
	}
}

// acquire leases a wire session from the pool, dialling the slot on
// first use. release returns it — also after request errors, because
// the wire client re-dials internally and never reuses a connection
// whose stream position is in doubt.
func (g *Gateway) acquire(ctx context.Context) (*client.Client, error) {
	select {
	case c := <-g.pool:
		if c != nil {
			return c, nil
		}
		c, err := client.Dial(g.cfg.Backend, g.cfg.Client)
		if err != nil {
			g.pool <- nil
			return nil, err
		}
		return c, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gateway) release(c *client.Client) { g.pool <- c }

// readBody slurps a bounded request body; a body over the limit is a
// 400, not a 413 — the request never reached the server and the
// decoder contract is "every unacceptable body maps to 400".
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			g.writeError(w, badRequestf("request body exceeds %d bytes", g.cfg.MaxBody))
		} else {
			g.writeError(w, badRequestf("read body: %v", err))
		}
		return nil, false
	}
	return data, true
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	data, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req, err := decodeSubmitRequest(data)
	if err != nil {
		g.writeError(w, badRequestf("%v", err))
		return
	}
	// The client-supplied key makes HTTP-level retries exactly-once:
	// both attempts reach the server under one key and the second is
	// answered from the idempotency record. Without the header the wire
	// client still keys its own wire-level retries.
	req.IdemKey = r.Header.Get("Idempotency-Key")
	c, err := g.acquire(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	res, err := c.Submit(req)
	g.release(c)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.submits.Add(1)
	g.writeResult(w, res)
}

func (g *Gateway) handleCall(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	data, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req, err := decodeCallRequest(data)
	if err != nil {
		g.writeError(w, badRequestf("%v", err))
		return
	}
	c, err := g.acquire(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	res, err := c.Call(req.Module, req.Fn, req.Args...)
	g.release(c)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.calls.Add(1)
	g.writeResult(w, res)
}

func (g *Gateway) handleInstall(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	data, ok := g.readBody(w, r)
	if !ok {
		return
	}
	req, err := decodeInstallRequest(data)
	if err != nil {
		g.writeError(w, badRequestf("%v", err))
		return
	}
	req.IdemKey = r.Header.Get("Idempotency-Key")
	c, err := g.acquire(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	res, err := c.InstallReq(req)
	g.release(c)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.installs.Add(1)
	g.writeResult(w, res)
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	c, err := g.acquire(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	ss, err := c.Stats()
	g.release(c)
	if err != nil {
		g.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"server": ss, "gateway": g.Stats()})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	g.mu.Lock()
	draining := g.draining
	g.mu.Unlock()
	if draining {
		g.failures.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	c, err := g.acquire(r.Context())
	if err != nil {
		g.writeError(w, err)
		return
	}
	h, err := c.Health()
	g.release(c)
	if err != nil {
		g.writeError(w, err)
		return
	}
	status := http.StatusOK
	if h.Status == "draining" {
		status = http.StatusServiceUnavailable
		g.failures.Add(1)
	}
	writeJSON(w, status, h)
}

// handleWatch serves one WATCH subscription as a server-sent event
// stream. Patterns come from repeated ?pattern= parameters; the resume
// position from ?since= or — the SSE-native way, sent automatically by
// EventSource on reconnect — the Last-Event-ID header, since every
// event's id is its CSN.
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	patterns := r.URL.Query()["pattern"]
	if len(patterns) == 0 {
		g.writeError(w, badRequestf("missing ?pattern= (use pattern=* for everything)"))
		return
	}
	var since uint64
	if s := r.Header.Get("Last-Event-ID"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			g.writeError(w, badRequestf("bad Last-Event-ID %q", s))
			return
		}
		since = v
	} else if s := r.URL.Query().Get("since"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			g.writeError(w, badRequestf("bad ?since= %q", s))
			return
		}
		since = v
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		g.writeError(w, fmt.Errorf("response writer cannot stream"))
		return
	}

	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		g.writeError(w, &ship.WireError{Code: ship.CodeShutdown, Msg: "gateway is draining"})
		return
	}
	g.mu.Unlock()

	wt, err := client.NewWatcher(g.cfg.Backend, patterns, since, g.cfg.Client)
	if err != nil {
		g.writeError(w, err)
		return
	}
	g.mu.Lock()
	if g.draining {
		// Drain raced the subscribe; do not leak a stream it cannot see.
		g.mu.Unlock()
		wt.Close()
		g.writeError(w, &ship.WireError{Code: ship.CodeShutdown, Msg: "gateway is draining"})
		return
	}
	g.watchers[wt] = struct{}{}
	g.mu.Unlock()
	g.watches.Add(1)
	defer func() {
		g.mu.Lock()
		delete(g.watchers, wt)
		g.mu.Unlock()
		wt.Close()
	}()
	// A vanished HTTP client unblocks Next via Close.
	stop := context.AfterFunc(r.Context(), func() { wt.Close() })
	defer stop()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "event: ready\nid: %d\ndata: {\"csn\":%d}\n\n", wt.Pos(), wt.Pos())
	fl.Flush()

	for {
		ev, err := wt.Next()
		if err != nil {
			if errors.Is(err, client.ErrWatcherClosed) || r.Context().Err() != nil {
				return // drained, or the peer went away
			}
			data, _ := json.Marshal(errBody(err).Err)
			fmt.Fprintf(w, "event: error\ndata: %s\n\n", data)
			fl.Flush()
			return
		}
		g.watchEvents.Add(1)
		data, _ := json.Marshal(map[string]any{
			"root": ev.Root, "oid": ev.OID, "csn": ev.CSN, "more": ev.More,
		})
		fmt.Fprintf(w, "event: change\nid: %d\ndata: %s\n\n", ev.CSN, data)
		if !ev.More {
			fl.Flush() // flush whole commits, never a torn prefix
		}
	}
}

// --- responses --------------------------------------------------------------

type resultJSON struct {
	Value   any      `json:"value"`
	Info    infoJSON `json:"info"`
	Partial bool     `json:"partial,omitempty"`
	Missing []string `json:"missing,omitempty"`
	Explain string   `json:"explain,omitempty"`
}

type infoJSON struct {
	Steps    int64 `json:"steps"`
	Micros   int64 `json:"micros"`
	CacheHit bool  `json:"cache_hit,omitempty"`
	Shared   bool  `json:"shared,omitempty"`
	Rewrites int64 `json:"rewrites,omitempty"`
	Inlined  int64 `json:"inlined,omitempty"`
}

func (g *Gateway) writeResult(w http.ResponseWriter, res *ship.Result) {
	v, err := encodeValue(res.Val)
	if err != nil {
		g.writeError(w, fmt.Errorf("encode result: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, resultJSON{
		Value: v,
		Info: infoJSON{
			Steps: res.Info.Steps, Micros: res.Info.Micros,
			CacheHit: res.Info.CacheHit, Shared: res.Info.Shared,
			Rewrites: res.Info.Rewrites, Inlined: res.Info.Inlined,
		},
		Partial: res.Partial,
		Missing: res.Missing,
		Explain: res.Explain,
	})
}

// --- error mapping ----------------------------------------------------------

// badRequest marks a failure that never left the gateway: malformed
// JSON, TML syntax, a body over the limit. Always HTTP 400.
type badRequest struct{ msg string }

func (e *badRequest) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequest{fmt.Sprintf(format, args...)}
}

type errJSON struct {
	Err struct {
		Code         string `json:"code"`
		Message      string `json:"message"`
		Retryable    bool   `json:"retryable"`
		RetryAfterMs uint32 `json:"retry_after_ms,omitempty"`
	} `json:"error"`
}

func errBody(err error) errJSON {
	var body errJSON
	_, code, retryable, retryAfter := httpStatus(err)
	body.Err.Code = code
	body.Err.Message = err.Error()
	body.Err.Retryable = retryable
	body.Err.RetryAfterMs = retryAfter
	return body
}

// httpStatus maps a failure onto the HTTP surface: status, stable code
// string, whether a retry can succeed, and the backoff hint.
func httpStatus(err error) (status int, code string, retryable bool, retryAfterMs uint32) {
	var br *badRequest
	if errors.As(err, &br) {
		return http.StatusBadRequest, "bad-request", false, 0
	}
	var we *ship.WireError
	if errors.As(err, &we) {
		switch we.Code {
		case ship.CodeProto, ship.CodeBadRequest:
			return http.StatusBadRequest, we.Code.String(), false, 0
		case ship.CodeNotFound:
			return http.StatusNotFound, we.Code.String(), false, 0
		case ship.CodeCompile, ship.CodeExec:
			return http.StatusUnprocessableEntity, we.Code.String(), false, 0
		case ship.CodeBudget:
			return http.StatusRequestTimeout, we.Code.String(), false, 0
		case ship.CodeConflict:
			// Nothing was applied; re-execution against a fresh snapshot is
			// always safe, so 409 is explicitly retryable.
			return http.StatusConflict, we.Code.String(), true, we.RetryAfterMs
		case ship.CodeOverloaded:
			return http.StatusTooManyRequests, we.Code.String(), true, we.RetryAfterMs
		case ship.CodeShutdown, ship.CodeDegraded:
			return http.StatusServiceUnavailable, we.Code.String(), true, we.RetryAfterMs
		default:
			return http.StatusInternalServerError, we.Code.String(), false, 0
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return 499, "canceled", false, 0 // nginx's client-closed-request
	}
	// Transport-level: the backend is unreachable (dial failed, or the
	// retries ran out). The gateway is up; the backend may come back.
	return http.StatusBadGateway, "unreachable", true, 1000
}

func (g *Gateway) writeError(w http.ResponseWriter, err error) {
	g.failures.Add(1)
	status, _, _, retryAfterMs := httpStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// 429/503 always carry Retry-After, defaulting to one second when
		// the server gave no hint.
		secs := (int64(retryAfterMs) + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, errBody(err))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
