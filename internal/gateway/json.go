// Package gateway maps the TYWR01 wire protocol onto HTTP/JSON: an
// open-environment front end (paper §1: persistence services usable
// from tools that were never linked against them) for clients that
// speak neither the frame protocol nor PTML. The gateway parses TML
// source, encodes values, pools wire sessions and translates the
// server's structured errors into HTTP statuses; the wire client
// underneath supplies retries, backoff and idempotency keys.
package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/ship"
	"tycoon/internal/tml"
)

// decodeJSON parses data into v strictly: numbers stay json.Number,
// unknown fields and trailing garbage are errors. Every failure maps
// to HTTP 400 — the body never reached the server.
func decodeJSON(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// decodeValue maps a JSON value onto a wire value:
//
//	null → nil, bool → Bool, string → Str,
//	integral number → Int, fractional number → Real,
//	{"real": n} → Real   (for integral reals like 2.0)
//	{"char": "c"} → Char
//	{"root": "name"} → Root reference by name
//	{"ref": oid} → Ref (an OID from an earlier response)
//	{"rel": {"cols": [...], "rows": [[...], ...]}} → relation
func decodeValue(raw json.RawMessage) (ship.WVal, error) {
	var v any
	if err := decodeJSON(raw, &v); err != nil {
		return ship.WVal{}, err
	}
	return valueOf(v, true)
}

func valueOf(v any, allowRel bool) (ship.WVal, error) {
	switch x := v.(type) {
	case nil:
		return ship.WVal{Kind: ship.WNil}, nil
	case bool:
		return ship.WVal{Kind: ship.WBool, Bool: x}, nil
	case string:
		return ship.WVal{Kind: ship.WStr, Str: x}, nil
	case json.Number:
		if i, err := x.Int64(); err == nil && !strings.ContainsAny(x.String(), ".eE") {
			return ship.WVal{Kind: ship.WInt, Int: i}, nil
		}
		f, err := x.Float64()
		if err != nil {
			return ship.WVal{}, fmt.Errorf("bad number %q", x.String())
		}
		return ship.WVal{Kind: ship.WReal, Real: f}, nil
	case map[string]any:
		if len(x) != 1 {
			return ship.WVal{}, fmt.Errorf("value object must have exactly one of real/char/root/ref/rel")
		}
		for k, inner := range x {
			switch k {
			case "real":
				n, ok := inner.(json.Number)
				if !ok {
					return ship.WVal{}, fmt.Errorf("real wants a number")
				}
				f, err := n.Float64()
				if err != nil {
					return ship.WVal{}, fmt.Errorf("bad real %q", n.String())
				}
				return ship.WVal{Kind: ship.WReal, Real: f}, nil
			case "char":
				s, ok := inner.(string)
				if !ok || len(s) != 1 {
					return ship.WVal{}, fmt.Errorf("char wants a one-byte string")
				}
				return ship.WVal{Kind: ship.WChar, Ch: s[0]}, nil
			case "root":
				s, ok := inner.(string)
				if !ok || s == "" {
					return ship.WVal{}, fmt.Errorf("root wants a nonempty name")
				}
				return ship.WVal{Kind: ship.WRoot, Str: s}, nil
			case "ref":
				n, ok := inner.(json.Number)
				if !ok {
					return ship.WVal{}, fmt.Errorf("ref wants an OID number")
				}
				oid, err := n.Int64()
				if err != nil || oid < 0 {
					return ship.WVal{}, fmt.Errorf("bad ref %q", n.String())
				}
				return ship.WVal{Kind: ship.WRef, Ref: uint64(oid)}, nil
			case "rel":
				if !allowRel {
					return ship.WVal{}, fmt.Errorf("nested relation")
				}
				return relOf(inner)
			default:
				return ship.WVal{}, fmt.Errorf("unknown value kind %q", k)
			}
		}
		panic("unreachable")
	default:
		return ship.WVal{}, fmt.Errorf("unsupported JSON value (arrays are not wire values; wrap relations as {\"rel\": ...})")
	}
}

func relOf(v any) (ship.WVal, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return ship.WVal{}, fmt.Errorf("rel wants {\"cols\": [...], \"rows\": [[...]]}")
	}
	tbl := &ship.WTable{}
	for k, inner := range m {
		switch k {
		case "cols":
			cols, ok := inner.([]any)
			if !ok {
				return ship.WVal{}, fmt.Errorf("rel cols must be an array")
			}
			for _, c := range cols {
				s, ok := c.(string)
				if !ok {
					return ship.WVal{}, fmt.Errorf("rel column names must be strings")
				}
				tbl.Cols = append(tbl.Cols, s)
			}
		case "rows":
			rows, ok := inner.([]any)
			if !ok {
				return ship.WVal{}, fmt.Errorf("rel rows must be an array")
			}
			for _, rv := range rows {
				row, ok := rv.([]any)
				if !ok {
					return ship.WVal{}, fmt.Errorf("rel rows must be arrays of values")
				}
				var out []ship.WVal
				for _, f := range row {
					fv, err := valueOf(f, false)
					if err != nil {
						return ship.WVal{}, err
					}
					out = append(out, fv)
				}
				tbl.Rows = append(tbl.Rows, out)
			}
		default:
			return ship.WVal{}, fmt.Errorf("unknown rel field %q", k)
		}
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Cols) {
			return ship.WVal{}, fmt.Errorf("rel row %d has %d fields, want %d", i, len(row), len(tbl.Cols))
		}
	}
	return ship.WVal{Kind: ship.WRel, Rel: tbl}, nil
}

// encodeValue maps a wire value back onto JSON, the inverse of
// decodeValue up to numeric representation (an integral Real encodes
// as a plain number and would decode as Int; response consumers read
// JSON numbers either way).
func encodeValue(v ship.WVal) (any, error) {
	switch v.Kind {
	case ship.WNil:
		return nil, nil
	case ship.WInt:
		return v.Int, nil
	case ship.WReal:
		return v.Real, nil
	case ship.WBool:
		return v.Bool, nil
	case ship.WChar:
		return map[string]any{"char": string(v.Ch)}, nil
	case ship.WStr:
		return v.Str, nil
	case ship.WRef:
		return map[string]any{"ref": v.Ref}, nil
	case ship.WRoot:
		return map[string]any{"root": v.Str}, nil
	case ship.WRel:
		if v.Rel == nil {
			return nil, fmt.Errorf("relation without table")
		}
		rows := make([][]any, len(v.Rel.Rows))
		for i, row := range v.Rel.Rows {
			rows[i] = make([]any, len(row))
			for j, f := range row {
				fv, err := encodeValue(f)
				if err != nil {
					return nil, err
				}
				rows[i][j] = fv
			}
		}
		cols := v.Rel.Cols
		if cols == nil {
			cols = []string{}
		}
		return map[string]any{"rel": map[string]any{"cols": cols, "rows": rows}}, nil
	default:
		return nil, fmt.Errorf("unencodable value kind %d", byte(v.Kind))
	}
}

// submitRequest is the POST /v1/submit body.
type submitRequest struct {
	Name     string                     `json:"name"`
	TML      string                     `json:"tml"`
	Binds    map[string]json.RawMessage `json:"binds"`
	Optimize bool                       `json:"optimize"`
	Save     string                     `json:"save"`
	Merge    string                     `json:"merge"`
	Explain  bool                       `json:"explain"`
}

// decodeSubmitRequest turns a JSON body into a wire Submit: the TML
// source is parsed and PTML-encoded here, at the boundary, so a syntax
// error is a 400 — it never costs a wire round trip. The idempotency
// key is the caller's to fill in from the HTTP header.
func decodeSubmitRequest(data []byte) (*ship.Submit, error) {
	var req submitRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.TML == "" {
		return nil, fmt.Errorf("missing tml source")
	}
	app, err := tml.ParseApp(req.TML, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		return nil, err
	}
	ptmlData, err := ptml.EncodeApp(app)
	if err != nil {
		return nil, err
	}
	merge, err := ship.ParseMerge(req.Merge)
	if err != nil {
		return nil, err
	}
	// Bind order is irrelevant to the server (it binds by name) but a
	// deterministic encoding keeps idempotency keys content-stable.
	names := make([]string, 0, len(req.Binds))
	for name := range req.Binds {
		names = append(names, name)
	}
	sort.Strings(names)
	var binds []ship.WBind
	for _, name := range names {
		v, err := decodeValue(req.Binds[name])
		if err != nil {
			return nil, fmt.Errorf("bind %s: %w", name, err)
		}
		binds = append(binds, ship.WBind{Name: name, Val: v})
	}
	return &ship.Submit{
		Name:     req.Name,
		PTML:     ptmlData,
		Binds:    binds,
		Optimize: req.Optimize,
		Save:     req.Save,
		Merge:    merge,
		Explain:  req.Explain,
	}, nil
}

// callRequest is the POST /v1/call body. An empty module calls a
// closure saved under srv:<fn>.
type callRequest struct {
	Module string            `json:"module"`
	Fn     string            `json:"fn"`
	Args   []json.RawMessage `json:"args"`
}

func decodeCallRequest(data []byte) (*ship.Call, error) {
	var req callRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.Fn == "" {
		return nil, fmt.Errorf("missing fn")
	}
	call := &ship.Call{Module: req.Module, Fn: req.Fn}
	for i, raw := range req.Args {
		v, err := decodeValue(raw)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i, err)
		}
		call.Args = append(call.Args, v)
	}
	return call, nil
}

// installRequest is the POST /v1/install body.
type installRequest struct {
	Source string `json:"source"`
}

func decodeInstallRequest(data []byte) (*ship.Install, error) {
	var req installRequest
	if err := decodeJSON(data, &req); err != nil {
		return nil, err
	}
	if req.Source == "" {
		return nil, fmt.Errorf("missing source")
	}
	return &ship.Install{Source: req.Source}, nil
}
