package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/netfault"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
)

// world boots an in-process tycd and a gateway over it, both torn down
// with the test.
func world(t *testing.T, cfg server.Config) (*Gateway, *httptest.Server, string, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "gw.tyst"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, cfg)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		st.Close()
	})
	g := New(Config{
		Backend: ln.Addr().String(),
		Client:  client.Options{Timeout: 30 * time.Second, Retries: 3, Seed: 1},
	})
	hs := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		g.Drain()
		hs.Close()
		g.Close()
	})
	return g, hs, ln.Addr().String(), st
}

func post(t *testing.T, url, body string, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestGatewayEndToEnd drives the whole REST surface against a live
// server: install, call, submit with binds and save, call-by-name,
// stats and health.
func TestGatewayEndToEnd(t *testing.T) {
	_, hs, _, _ := world(t, server.Config{})

	resp, body := post(t, hs.URL+"/v1/install",
		`{"source": "module gwm export inc let inc(a : Int) : Int = a + 1 end"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("install: %d %s", resp.StatusCode, body)
	}

	resp, body = post(t, hs.URL+"/v1/call", `{"module":"gwm","fn":"inc","args":[41]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("call: %d %s", resp.StatusCode, body)
	}
	var res struct {
		Value json.Number `json:"value"`
		Info  struct {
			Steps int64 `json:"steps"`
		} `json:"info"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("call response %s: %v", body, err)
	}
	if res.Value.String() != "42" {
		t.Fatalf("inc(41) = %s", res.Value)
	}
	if res.Info.Steps <= 0 {
		t.Fatalf("no steps charged: %s", body)
	}

	// Submit with a bind and save; then call the saved closure.
	resp, body = post(t, hs.URL+"/v1/submit",
		`{"tml": "(+ x 2 e cont(n) (k n))", "binds": {"x": 40}, "save": "gwans"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	resp, body = post(t, hs.URL+"/v1/call", `{"fn":"gwans"}`)
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"value":42`)) {
		t.Fatalf("call saved: %d %s", resp.StatusCode, body)
	}

	// Stats carry both sides.
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Server  *ship.ServerStats `json:"server"`
		Gateway *Stats            `json:"gateway"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats %s: %v", data, err)
	}
	if stats.Server == nil || stats.Server.TotalSessions == 0 {
		t.Fatalf("stats carry no server block: %s", data)
	}
	if stats.Gateway == nil || stats.Gateway.Submits != 1 || stats.Gateway.Calls != 2 || stats.Gateway.Installs != 1 {
		t.Fatalf("gateway counters wrong: %s", data)
	}

	resp, err = http.Get(hs.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Contains(data, []byte(`"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
}

// TestGatewayErrorMapping pins the wire-code → HTTP-status table on
// real failures, and that the server survives every one of them
// ("server unharmed": a valid request still works afterwards).
func TestGatewayErrorMapping(t *testing.T) {
	_, hs, _, _ := world(t, server.Config{})

	cases := []struct {
		name, path, body string
		status           int
		code             string
	}{
		{"malformed json", "/v1/submit", `{"tml": `, 400, "bad-request"},
		{"unknown field", "/v1/submit", `{"tml":"(k 1 e k)","nope":1}`, 400, "bad-request"},
		{"bad tml", "/v1/submit", `{"tml":"(((("}`, 400, "bad-request"},
		{"bad value kind", "/v1/call", `{"fn":"x","args":[[1,2]]}`, 400, "bad-request"},
		{"bad bind", "/v1/submit", `{"tml":"(k x e k)","binds":{"x":{"zelda":1}}}`, 400, "bad-request"},
		{"missing fn", "/v1/call", `{"module":"m"}`, 400, "bad-request"},
		{"not found", "/v1/call", `{"module":"nosuch","fn":"f"}`, 404, "not-found"},
		{"compile error", "/v1/install", `{"source":"module bad export f let f(a : Int) : Int = b end"}`, 422, "compile"},
		{"exec error", "/v1/submit", `{"tml":"(/ 1 0 e cont(n) (k n))"}`, 422, "exec"},
	}
	for _, c := range cases {
		resp, body := post(t, hs.URL+c.path, c.body)
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d %s, want %d", c.name, resp.StatusCode, body, c.status)
		}
		var e errJSON
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: error body %s: %v", c.name, body, err)
		}
		if e.Err.Code != c.code {
			t.Fatalf("%s: code %q, want %q", c.name, e.Err.Code, c.code)
		}
	}

	// After all that abuse a normal request still answers.
	resp, body := post(t, hs.URL+"/v1/submit", `{"tml":"(+ 40 2 e cont(n) (k n))"}`)
	if resp.StatusCode != 200 || !bytes.Contains(body, []byte(`"value":42`)) {
		t.Fatalf("server harmed: %d %s", resp.StatusCode, body)
	}
}

// TestGatewayBodyLimit pins the request-size bound: a body one byte
// over MaxBody is 400 without touching the server, one at the limit is
// processed normally.
func TestGatewayBodyLimit(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := server.New(st, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	const limit = 512
	g := New(Config{
		Backend: ln.Addr().String(),
		MaxBody: limit,
		Client:  client.Options{Timeout: 30 * time.Second, Retries: 1, Seed: 1},
	})
	hs := httptest.NewServer(g.Handler())
	defer func() { hs.Close(); g.Close() }()

	// Pad a valid request to exactly the limit with name characters.
	mk := func(size int) string {
		base := `{"tml":"(+ 40 2 e cont(n) (k n))","name":""}`
		pad := size - len(base)
		if pad < 0 {
			t.Fatalf("limit %d too small for the probe", size)
		}
		return strings.Replace(base, `"name":""`, `"name":"`+strings.Repeat("x", pad)+`"`, 1)
	}
	at := mk(limit)
	if len(at) != limit {
		t.Fatalf("probe is %d bytes, want %d", len(at), limit)
	}
	resp, body := post(t, hs.URL+"/v1/submit", at)
	if resp.StatusCode != 200 {
		t.Fatalf("at-limit body refused: %d %s", resp.StatusCode, body)
	}
	before := srv.Stats().Verbs["submit"].Count
	resp, body = post(t, hs.URL+"/v1/submit", mk(limit)+" ")
	if resp.StatusCode != 400 {
		t.Fatalf("over-limit body: %d %s, want 400", resp.StatusCode, body)
	}
	if after := srv.Stats().Verbs["submit"].Count; after != before {
		t.Fatalf("over-limit body reached the server (%d → %d submits)", before, after)
	}
	if DefaultMaxBody != 1<<20 {
		t.Fatalf("DefaultMaxBody = %d, want %d (documented bound)", DefaultMaxBody, 1<<20)
	}
}

// TestGatewayWatchSSE subscribes over SSE, commits a matching root and
// asserts the event arrives with its CSN as the SSE id.
func TestGatewayWatchSSE(t *testing.T) {
	_, hs, _, _ := world(t, server.Config{})

	req, err := http.NewRequest("GET", hs.URL+"/v1/watch?pattern=srv:sse-*", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("watch: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	expect := func(prefix string) string {
		t.Helper()
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			if !strings.HasPrefix(line, prefix) {
				t.Fatalf("SSE line %q, want prefix %q", line, prefix)
			}
			return strings.TrimPrefix(line, prefix)
		}
		t.Fatalf("SSE stream ended waiting for %q: %v", prefix, sc.Err())
		return ""
	}
	expect("event: ready")
	expect("id: ")
	expect("data: ")

	// Commit a matching root through the HTTP API itself.
	resp2, body := post(t, hs.URL+"/v1/submit", `{"tml":"(+ 1 2 e cont(n) (k n))","save":"sse-a"}`)
	if resp2.StatusCode != 200 {
		t.Fatalf("submit: %d %s", resp2.StatusCode, body)
	}

	expect("event: change")
	id := expect("id: ")
	data := expect("data: ")
	var ev struct {
		Root string `json:"root"`
		CSN  uint64 `json:"csn"`
	}
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("event data %q: %v", data, err)
	}
	if ev.Root != "srv:sse-a" {
		t.Fatalf("event root %q", ev.Root)
	}
	if id != fmt.Sprint(ev.CSN) {
		t.Fatalf("SSE id %q, event CSN %d — resume-by-Last-Event-ID would break", id, ev.CSN)
	}
}

// TestGatewayChaos puts a fault proxy between the gateway and the
// server, drops every connection mid-run, and checks the open-
// environment contract: HTTP retries with one Idempotency-Key never
// double-apply a keyed write, refusals carry Retry-After, and drain
// leaks no sessions.
func TestGatewayChaos(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "chaos.tyst"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(st, server.Config{})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer st.Close()

	px, err := netfault.NewProxy(ln.Addr().String(), netfault.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	g := New(Config{
		Backend: px.Addr(),
		Client:  client.Options{Timeout: 30 * time.Second, Retries: 8, Seed: 3},
	})
	hs := httptest.NewServer(g.Handler())
	defer hs.Close()

	// A keyed counter submit: every applied submit bumps srv:chaos-N.
	// The HTTP client retries each one with the SAME key across a
	// connection massacre; each must land exactly once.
	const writes = 12
	for i := 0; i < writes; i++ {
		if i == writes/3 {
			px.DropAll()
		}
		body := fmt.Sprintf(`{"tml":"(+ %d 1 e cont(n) (k n))","save":"chaos-%d"}`, i, i)
		key := fmt.Sprintf("chaos-key-%d", i)
		var applied int
		for attempt := 0; attempt < 4; attempt++ {
			resp, data := post(t, hs.URL+"/v1/submit", body, "Idempotency-Key", key)
			if resp.StatusCode == 200 {
				applied++
				if !bytes.Contains(data, []byte(fmt.Sprintf(`"value":%d`, i+1))) {
					t.Fatalf("write %d wrong answer: %s", i, data)
				}
				continue // retry the SAME request again: must dedup, not re-apply
			}
			var e errJSON
			if err := json.Unmarshal(data, &e); err != nil || !e.Err.Retryable {
				t.Fatalf("write %d attempt %d: %d %s", i, attempt, resp.StatusCode, data)
			}
		}
		if applied == 0 {
			t.Fatalf("write %d never applied", i)
		}
	}
	// Exactly-once check: the server's dedup must have served the repeat
	// HTTP attempts from the record, so every root holds its one value.
	check, err := client.Dial(ln.Addr().String(), client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < writes; i++ {
		res, err := check.Call("", fmt.Sprintf("chaos-%d", i))
		if err != nil {
			t.Fatalf("read back chaos-%d: %v", i, err)
		}
		if res.Val.Int != int64(i)+1 {
			t.Fatalf("chaos-%d = %s, want %d", i, res.Val.Show(), i+1)
		}
	}
	check.Close()
	if ds := srv.Stats().IdemDeduped; ds == 0 {
		t.Fatal("no retry was ever deduplicated: the idempotency path went untested")
	}

	// Refusals carry Retry-After: drain the server and hit it again.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("server drain: %v", err)
	}
	resp, data := post(t, hs.URL+"/v1/submit", `{"tml":"(+ 1 1 e cont(n) (k n))"}`)
	if resp.StatusCode != 503 && resp.StatusCode != 502 {
		t.Fatalf("submit against drained server: %d %s", resp.StatusCode, data)
	}
	if resp.StatusCode == 503 && resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// Drain the gateway: no leaked wire sessions (the server is gone, so
	// leaked sessions would show as clients never saying bye — assert
	// via the gateway side: Close drains the pool without blocking).
	g.Drain()
	done := make(chan struct{})
	go func() { g.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("gateway Close hung: leaked pool session")
	}
	resp, _ = http.Get(hs.URL + "/v1/healthz")
	if resp.StatusCode != 503 {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestGatewayOverloadRetryAfter forces a 429 through a one-inflight
// server and checks the Retry-After header surfaces.
func TestGatewayOverloadRetryAfter(t *testing.T) {
	g, hs, _, _ := world(t, server.Config{MaxInflight: 1})
	_ = g

	// Occupy the single inflight slot with a slow submit.
	slow := make(chan struct{})
	go func() {
		defer close(slow)
		// ~50ms of busy work via the sieve keeps the slot held.
		post(t, hs.URL+"/v1/submit", `{"tml":"(+ 40 2 e cont(n) (k n))","optimize":true}`)
	}()

	// Hammer until a 429 shows (the gateway's wire client does not
	// retry here: Retries must be 0 for the refusal to surface — use a
	// raw second gateway with no retries).
	g2 := New(Config{
		Backend: gBackend(t, g),
		Client:  client.Options{Timeout: 30 * time.Second, Seed: 9},
	})
	hs2 := httptest.NewServer(g2.Handler())
	defer func() { hs2.Close(); g2.Close() }()
	saw429 := false
	for i := 0; i < 200 && !saw429; i++ {
		resp, _ := post(t, hs2.URL+"/v1/submit", `{"tml":"(+ 1 1 e cont(n) (k n))"}`)
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
		}
	}
	<-slow
	if !saw429 {
		t.Skip("never collided with the inflight limit (machine too fast); mapping covered by unit table")
	}
}

// gBackend exposes the backend address of a gateway for tests.
func gBackend(t *testing.T, g *Gateway) string {
	t.Helper()
	return g.cfg.Backend
}
