package gateway

import (
	"encoding/json"
	"testing"

	"tycoon/internal/ship"
)

// FuzzSubmitDecode hammers the gateway's request decoders with
// arbitrary bodies. The contract under fuzz: never panic, and either
// return a well-formed wire message or an error — the dividing line
// between 200 and 400, with nothing reaching the server on the error
// side.
func FuzzSubmitDecode(f *testing.F) {
	f.Add([]byte(`{"tml":"(+ 40 2 e cont(n) (k n))"}`))
	f.Add([]byte(`{"tml":"(+ x 2 e cont(n) (k n))","binds":{"x":40},"save":"a","optimize":true}`))
	f.Add([]byte(`{"tml":"(k r e k)","binds":{"r":{"rel":{"cols":["a"],"rows":[[1],[2]]}}}}`))
	f.Add([]byte(`{"binds":{"x":{"real":2.5}}}`))
	f.Add([]byte(`{"tml":"((("}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"tml":"(k x e k)","binds":{"x":{"zzz":1}}}`))
	f.Add([]byte(`{"tml":"(k x e k)","binds":{"x":[1,2,3]}}`))
	f.Add([]byte(`{"tml":"(k x e k)","binds":{"x":1e999}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeSubmitRequest(data); err == nil {
			// A decoded submit must round-trip the wire codec: the gateway
			// never hands the server an unencodable message.
			if _, eerr := req.Encode(); eerr != nil {
				t.Fatalf("decoded submit does not encode: %v", eerr)
			}
		}
	})
}

// FuzzCallDecode covers the call decoder's value codec the same way.
func FuzzCallDecode(f *testing.F) {
	f.Add([]byte(`{"fn":"run","args":[1,2.5,true,null,"s",{"char":"c"},{"root":"srv:x"},{"ref":7}]}`))
	f.Add([]byte(`{"module":"m","fn":"f","args":[{"rel":{"cols":[],"rows":[]}}]}`))
	f.Add([]byte(`{"fn":"f","args":[{"rel":{"cols":["a"],"rows":[[{"rel":{"cols":[],"rows":[]}}]]}}]}`))
	f.Add([]byte(`{"args":[{}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeCallRequest(data); err == nil {
			if _, eerr := req.Encode(); eerr != nil {
				t.Fatalf("decoded call does not encode: %v", eerr)
			}
		}
	})
}

// TestValueCodecRoundTrip pins decode∘encode as the identity on the
// values the gateway can produce (up to integral reals, which encode
// as plain numbers by design).
func TestValueCodecRoundTrip(t *testing.T) {
	vals := []ship.WVal{
		{Kind: ship.WNil},
		{Kind: ship.WInt, Int: -42},
		{Kind: ship.WReal, Real: 2.5},
		{Kind: ship.WBool, Bool: true},
		{Kind: ship.WChar, Ch: 'q'},
		{Kind: ship.WStr, Str: "hello"},
		{Kind: ship.WRef, Ref: 0x1234},
		{Kind: ship.WRoot, Str: "srv:ans"},
		{Kind: ship.WRel, Rel: &ship.WTable{
			Cols: []string{"a", "b"},
			Rows: [][]ship.WVal{
				{{Kind: ship.WInt, Int: 1}, {Kind: ship.WStr, Str: "x"}},
				{{Kind: ship.WInt, Int: 2}, {Kind: ship.WStr, Str: "y"}},
			},
		}},
	}
	for _, v := range vals {
		j, err := encodeValue(v)
		if err != nil {
			t.Fatalf("%s: encode: %v", v.Show(), err)
		}
		raw, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("%s: marshal: %v", v.Show(), err)
		}
		got, err := decodeValue(raw)
		if err != nil {
			t.Fatalf("%s: decode %s: %v", v.Show(), raw, err)
		}
		if !valEqual(got, v) {
			t.Fatalf("round-trip %s → %s → %s", v.Show(), raw, got.Show())
		}
	}
}

func valEqual(a, b ship.WVal) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case ship.WRel:
		if len(a.Rel.Cols) != len(b.Rel.Cols) || len(a.Rel.Rows) != len(b.Rel.Rows) {
			return false
		}
		for i := range a.Rel.Cols {
			if a.Rel.Cols[i] != b.Rel.Cols[i] {
				return false
			}
		}
		for i := range a.Rel.Rows {
			if len(a.Rel.Rows[i]) != len(b.Rel.Rows[i]) {
				return false
			}
			for j := range a.Rel.Rows[i] {
				if !valEqual(a.Rel.Rows[i][j], b.Rel.Rows[i][j]) {
					return false
				}
			}
		}
		return true
	default:
		a.Rel, b.Rel = nil, nil
		return a == b
	}
}
