package opt

import (
	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// Cost estimates the runtime cost of a TML term in instructions of the
// idealized abstract machine (paper §2.3 item 3). Primitive applications
// cost their registered estimate; calls of unknown procedures cost the
// call overhead; abstraction bodies contribute the code they will execute.
// Argument passing costs one instruction per argument.
//
// The estimate deliberately counts each abstraction body once, regardless
// of how often it may run — it is a code-size-flavoured proxy that the
// inlining heuristic (paper: "estimate the possible savings resulting from
// the inlining of a TML procedure") weighs against thresholds, not a
// execution-time prediction.
func Cost(n tml.Node, reg *prim.Registry) int {
	if reg == nil {
		reg = prim.Default
	}
	switch n := n.(type) {
	case *tml.Lit, *tml.Oid, *tml.Var, *tml.Prim:
		return 0
	case *tml.Abs:
		return Cost(n.Body, reg)
	case *tml.App:
		c := len(n.Args)
		switch fn := n.Fn.(type) {
		case *tml.Prim:
			if d, ok := reg.Lookup(fn.Name); ok {
				c += d.Cost
			} else {
				c += callOverhead
			}
		case *tml.Var:
			c += callOverhead
		case *tml.Abs:
			c += Cost(fn, reg) // β-redex: the body runs inline
		}
		for _, a := range n.Args {
			c += Cost(a, reg)
		}
		return c
	default:
		return 0
	}
}
