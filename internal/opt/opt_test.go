package opt

import (
	"regexp"
	"strings"
	"testing"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

var popts = tml.ParseOpts{IsPrim: prim.IsPrim}

// noIDs strips the _N α-conversion suffixes so tests can compare term
// structure without depending on variable numbering.
func noIDs(s string) string {
	return idSuffix.ReplaceAllString(s, "")
}

var idSuffix = regexp.MustCompile(`_[0-9]+`)

func parse(t *testing.T, src string) *tml.App {
	t.Helper()
	app, err := tml.ParseApp(src, popts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return app
}

func optimize(t *testing.T, src string, opts Options) (*tml.App, *Stats) {
	t.Helper()
	opts.CheckInvariants = true
	app := parse(t, src)
	out, stats, err := Optimize(app, opts)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", src, err)
	}
	return out, stats
}

func TestSubstAndFold(t *testing.T) {
	// (cont(x)(+ x 1 e k) 5): substituting 5 for x exposes (+ 5 1 e k),
	// which folds to (k 6) — constant propagation plus constant folding.
	out, stats := optimize(t, "(cont(x) (+ x 1 e k) 5)", Options{})
	if got := noIDs(out.String()); got != "(k 6)" {
		t.Errorf("optimized to %s, want (k 6)", got)
	}
	if stats.Rules["subst"] == 0 || stats.Rules["fold"] == 0 {
		t.Errorf("expected subst and fold applications, got %v", stats.Rules)
	}
}

func TestRemoveDeadBinding(t *testing.T) {
	// y is never used; its binding is struck out by the remove rule and
	// the now-empty abstraction is removed by reduce.
	out, stats := optimize(t, "(cont(y) (k 1) 42)", Options{})
	if got := noIDs(out.String()); got != "(k 1)" {
		t.Errorf("optimized to %s, want (k 1)", got)
	}
	if stats.Rules["remove"] == 0 || stats.Rules["reduce"] == 0 {
		t.Errorf("expected remove and reduce, got %v", stats.Rules)
	}
}

func TestSubstPreconditionAbsUsedOnce(t *testing.T) {
	// An abstraction bound to f and used exactly once is substituted by
	// the reduction pass itself (the paper's subst precondition).
	src := "(cont(f) (f 1 e k) cont(x !e2 !k2) (+ x 1 e2 k2))"
	out, _ := optimize(t, src, Options{NoExpansion: true})
	if got := noIDs(out.String()); got != "(k 2)" {
		t.Errorf("optimized to %s, want (k 2)", got)
	}
}

func TestSubstPreconditionAbsUsedTwice(t *testing.T) {
	// With expansion disabled, an abstraction used twice must NOT be
	// substituted (precondition val ∉ Abs ∨ |app|_v = 1); the binding
	// structure survives reduction.
	src := `(cont(f) (f 1 e cont(a) (f a e k))
	          cont(x !e2 !k2) (+ x 1 e2 k2))`
	out, stats := optimize(t, src, Options{NoExpansion: true})
	if _, isAbs := out.Fn.(*tml.Abs); !isAbs {
		t.Fatalf("binding dissolved: %s", out)
	}
	if stats.Rules["subst"] != 0 {
		t.Errorf("multi-use abstraction was substituted: %v", stats.Rules)
	}
	// With expansion enabled the calls are inlined and everything folds.
	out2, stats2 := optimize(t, src, Options{})
	if got := noIDs(out2.String()); got != "(k 3)" {
		t.Errorf("expansion+reduction gives %s, want (k 3)", got)
	}
	if stats2.Rules["expand"] == 0 {
		t.Errorf("no expansions recorded: %v", stats2.Rules)
	}
}

func TestSubstUnrestrictedAblation(t *testing.T) {
	src := `(cont(f) (f 1 e cont(a) (f a e k))
	          cont(x !e2 !k2) (+ x 1 e2 k2))`
	out, _ := optimize(t, src, Options{NoExpansion: true, SubstUnrestricted: true})
	if got := noIDs(out.String()); got != "(k 3)" {
		t.Errorf("unrestricted subst gives %s, want (k 3)", got)
	}
}

func TestEtaReduce(t *testing.T) {
	// cont(t)(k t) η-reduces to k, turning (+ 1 2 e cont(t)(k t)) into
	// (+ 1 2 e k), which then folds to (k 3).
	out, stats := optimize(t, "(+ 1 2 e cont(t) (k t))", Options{})
	if got := noIDs(out.String()); got != "(k 3)" {
		t.Errorf("optimized to %s, want (k 3)", got)
	}
	if stats.Rules["eta-reduce"] == 0 {
		t.Errorf("eta-reduce did not fire: %v", stats.Rules)
	}
}

func TestEtaReduceRejectsSelfReference(t *testing.T) {
	// λ(x)(x x) must not η-reduce (precondition |val|_v = 0).
	g := tml.NewVarGen()
	x := g.Fresh("x")
	abs := &tml.Abs{Params: []*tml.Var{x}, Body: tml.NewApp(x, x)}
	if _, ok := etaReduce(abs); ok {
		t.Error("η-reduce fired on self-referential abstraction")
	}
}

func TestCaseSubst(t *testing.T) {
	// Inside branch i the scrutinee is identical to the tag, so the body
	// (+ v 1 …) becomes (+ 1 1 …) / (+ 2 1 …), which folds.
	src := `(cont(v) (== v 1 2 cont() (+ v 1 e k) cont() (+ v 2 e k)) w)`
	out, stats := optimize(t, src, Options{NoExpansion: true})
	if stats.Rules["case-subst"] == 0 {
		t.Fatalf("case-subst did not fire: %v\n%s", stats.Rules, out)
	}
	s := noIDs(out.String())
	if !strings.Contains(s, "(k 2)") || !strings.Contains(s, "(k 4)") {
		t.Errorf("branches not folded after case-subst:\n%s", tml.Print(out))
	}
}

func TestFoldCasePicksBranch(t *testing.T) {
	out, _ := optimize(t, "(== 2 1 2 3 cont()(k 1) cont()(k 2) cont()(k 3))", Options{})
	if got := noIDs(out.String()); got != "(k 2)" {
		t.Errorf("optimized to %s, want (k 2)", got)
	}
}

func TestYRemove(t *testing.T) {
	// The recursive binding g is never referenced: Y-remove strikes it out.
	src := `(Y proc(!c0 f g !c)
	          (c cont() (f 1)
	             cont(i) (k i)
	             cont(j) (g j)))`
	out, stats := optimize(t, src, Options{NoExpansion: true})
	if stats.Rules["Y-remove"] == 0 {
		t.Fatalf("Y-remove did not fire: %v\n%s", stats.Rules, tml.Print(out))
	}
	if strings.Contains(out.String(), "g_") {
		t.Errorf("dead recursive binding survived:\n%s", tml.Print(out))
	}
}

func TestYReduce(t *testing.T) {
	// An empty Y application reduces to the body of its entry continuation.
	src := `(Y proc(!c0 !c) (c cont() (k 7)))`
	out, stats := optimize(t, src, Options{NoExpansion: true})
	if got := noIDs(out.String()); got != "(k 7)" {
		t.Errorf("optimized to %s, want (k 7)", got)
	}
	if stats.Rules["Y-reduce"] == 0 {
		t.Errorf("Y-reduce did not fire: %v", stats.Rules)
	}
}

func TestYRemoveKeepsMutualRecursion(t *testing.T) {
	// f and g reference each other; neither may be removed even though g
	// is not referenced from the entry body.
	src := `(Y proc(!c0 f g !c)
	          (c cont() (f 1)
	             cont(i) (g i)
	             cont(j) (f j)))`
	out, _ := optimize(t, src, Options{NoExpansion: true, MaxRounds: 1})
	s := out.String()
	if !strings.Contains(s, "f_") || !strings.Contains(s, "g_") {
		t.Errorf("mutually recursive bindings removed:\n%s", tml.Print(out))
	}
}

func TestDeadCallElimination(t *testing.T) {
	// The pure allocation (vector 1 2 …) whose result is unused is dead.
	out, stats := optimize(t, "(vector 1 2 cont(v) (k 9))", Options{})
	if got := noIDs(out.String()); got != "(k 9)" {
		t.Errorf("optimized to %s, want (k 9)", got)
	}
	if stats.Rules["dead-call"] == 0 {
		t.Errorf("dead-call did not fire: %v", stats.Rules)
	}
	// A writer primitive must survive even if its result is ignored.
	out2, _ := optimize(t, "([:=] a 0 5 cont(u) (k 9))", Options{})
	if !strings.Contains(out2.String(), "[:=]") {
		t.Errorf("side-effecting call eliminated:\n%s", out2)
	}
}

func TestLoopUnrolling(t *testing.T) {
	// A complete constant loop: for i = 1 upto 3 accumulate i. Repeated
	// expansion of the Y-bound loop continuation plus folding evaluates
	// the whole loop at compile time. This is the paper's claim that loop
	// unrolling is a special case of the general transformations.
	src := `(Y proc(!c0 !loop !c)
	          (c cont() (loop 1 0)
	             cont(i acc)
	               (> i 3
	                  cont() (k acc)
	                  cont() (+ acc i e cont(a2)
	                           (+ i 1 e cont(i2) (loop i2 a2))))))`
	out, stats := optimize(t, src, Options{MaxRounds: 12, PenaltyLimit: 64})
	if got := noIDs(out.String()); got != "(k 6)" {
		t.Errorf("loop not fully unrolled: %s (stats %v)", got, stats)
	}
}

func TestPenaltyBoundsExpansion(t *testing.T) {
	// An infinite loop can be unrolled forever; the penalty must stop it.
	src := `(Y proc(!c0 !loop !c)
	          (c cont() (loop 1)
	             cont(i) (+ i 1 e cont(j) (loop j))))`
	out, stats := optimize(t, src, Options{MaxRounds: 6, PenaltyLimit: 10})
	if stats.Penalty > 10+1 {
		t.Errorf("penalty %d exceeded limit", stats.Penalty)
	}
	if out == nil {
		t.Fatal("optimizer returned nil")
	}
}

func TestExtraRules(t *testing.T) {
	// A custom rewrite rule (standing in for the query rules of §4.2)
	// rewrites (ccall "answer" e k) to (k 42).
	rule := Rule{
		Name: "answer",
		Apply: func(ctx *Ctx, app *tml.App) (*tml.App, bool) {
			p, ok := app.Fn.(*tml.Prim)
			if !ok || p.Name != "ccall" || len(app.Args) != 3 {
				return nil, false
			}
			lit, ok := app.Args[0].(*tml.Lit)
			if !ok || lit.Str != "answer" {
				return nil, false
			}
			return tml.NewApp(app.Args[2], tml.Int(42)), true
		},
	}
	out, stats := optimize(t, `(ccall "answer" e k)`, Options{Extra: []Rule{rule}})
	if got := noIDs(out.String()); got != "(k 42)" {
		t.Errorf("optimized to %s, want (k 42)", got)
	}
	if stats.Rules["answer"] != 1 {
		t.Errorf("extra rule count = %v", stats.Rules)
	}
}

func TestNoFoldAblation(t *testing.T) {
	out, stats := optimize(t, "(+ 1 2 e k)", Options{NoFold: true})
	if got := noIDs(out.String()); got != "(+ 1 2 e k)" {
		t.Errorf("NoFold still folded: %s", out)
	}
	if stats.Rules["fold"] != 0 {
		t.Errorf("fold fired under NoFold: %v", stats.Rules)
	}
}

func TestStatsString(t *testing.T) {
	_, stats := optimize(t, "(cont(x) (+ x 1 e k) 5)", Options{})
	s := stats.String()
	for _, want := range []string{"rounds=", "size", "cost", "subst=", "fold="} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String() = %q missing %q", s, want)
		}
	}
}

func TestCost(t *testing.T) {
	plus := parse(t, "(+ 1 2 e k)")
	if c := Cost(plus, nil); c != 1+4 { // prim cost 1 + 4 args
		t.Errorf("Cost(+ app) = %d, want 5", c)
	}
	call := parse(t, "(f 1 e k)")
	if c := Cost(call, nil); c != callOverhead+3 {
		t.Errorf("Cost(call) = %d, want %d", c, callOverhead+3)
	}
	if c := Cost(tml.Int(1), nil); c != 0 {
		t.Errorf("Cost(lit) = %d, want 0", c)
	}
	// Abstraction arguments contribute their body cost.
	nested := parse(t, "(f 1 e cont(t) (+ t 1 e2 k))")
	if c := Cost(nested, nil); c <= callOverhead+3 {
		t.Errorf("Cost(nested) = %d, should include continuation body", c)
	}
}

func TestOptimizeIsPure(t *testing.T) {
	app := parse(t, "(cont(x) (+ x 1 e k) 5)")
	before := tml.Print(app)
	if _, _, err := Optimize(app, Options{}); err != nil {
		t.Fatal(err)
	}
	if tml.Print(app) != before {
		t.Error("Optimize mutated its input tree")
	}
}

func TestOptimizePreservesWellFormedness(t *testing.T) {
	srcs := []string{
		"(cont(x) (+ x 1 e k) 5)",
		`(cont(f) (f 1 e cont(a) (f a e k)) cont(x !e2 !k2) (+ x 1 e2 k2))`,
		`(Y proc(!c0 !loop !c)
		   (c cont() (loop 1 0)
		      cont(i acc)
		        (> i 3
		           cont() (k acc)
		           cont() (+ acc i e cont(a2)
		                    (+ i 1 e cont(i2) (loop i2 a2))))))`,
		"(== x 1 2 cont()(k 1) cont()(k 2) cont()(k 0))",
	}
	for _, src := range srcs {
		app := parse(t, src)
		out, _, err := Optimize(app, Options{CheckInvariants: true})
		if err != nil {
			t.Errorf("Optimize(%q): %v", src, err)
			continue
		}
		free := tml.FreeVars(out)
		if err := tml.Check(out, tml.CheckOpts{Signatures: prim.Signatures, AllowFree: free}); err != nil {
			t.Errorf("output of Optimize(%q) ill-formed: %v", src, err)
		}
	}
}
