// Package opt implements the TML optimizer of paper §3: a reduction pass
// applying the eight core rewrite rules (subst, remove, reduce, η-reduce,
// fold, case-subst, Y-remove, Y-reduce) until no more rules apply,
// alternating with an expansion pass that inlines bound abstractions under
// an Appel-style heuristic cost model. The two passes repeat until the
// tree is stable or an accumulated penalty reaches its limit, which
// guarantees termination even in obscure cases (paper §3).
//
// Many classical optimizations fall out of these few rules: constant and
// copy propagation (subst + fold), dead code elimination (remove, plus a
// dead-call rule justified by primitive effect classes), procedure
// inlining and view expansion (expansion + subst), and loop unrolling
// (expansion applied to Y-bound abstractions).
//
// The same code paths serve the static compile-time optimizer and the
// reflective runtime optimizer (paper §4.1); extra rewrite rules — notably
// the algebraic query rules of paper §4.2 — plug in through Options.Extra.
package opt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// Rule is an extra rewrite rule applied during the reduction pass at every
// application node, after the core rules. Returning ok=false means the
// rule does not apply; a returned tree must be strictly simpler or the
// driver's change detection will loop (rules are trusted, like the paper's
// primitive-supplied meta-evaluation functions).
type Rule struct {
	Name  string
	Apply func(ctx *Ctx, app *tml.App) (*tml.App, bool)
}

// Ctx gives rewrite rules access to the variable generator (for fresh
// binders) and the primitive registry.
type Ctx struct {
	Gen *tml.VarGen
	Reg *prim.Registry
}

// Options configures an optimization run.
type Options struct {
	// Reg is the primitive registry; nil means prim.Default.
	Reg *prim.Registry
	// Gen supplies fresh variables for α-conversion during expansion.
	// nil allocates a generator seeded past the tree's maximum ID.
	Gen *tml.VarGen
	// MaxRounds bounds the number of reduction/expansion rounds; it is
	// the penalty limit of paper §3. Zero means DefaultMaxRounds.
	MaxRounds int
	// InlineBudget is the base cost threshold of the expansion pass in
	// abstract machine instructions; the effective threshold shrinks as
	// penalty accumulates. Zero means DefaultInlineBudget.
	InlineBudget int
	// PenaltyLimit stops the driver once this many expansions have been
	// performed in total. Zero means DefaultPenaltyLimit.
	PenaltyLimit int
	// NoExpansion disables the expansion pass (reduction only); used for
	// ablation and for cheap re-optimization of shared functions.
	NoExpansion bool
	// NoFold disables the fold rule globally (ablation).
	NoFold bool
	// SubstUnrestricted drops the "abstractions only when referenced
	// once" precondition of the subst rule (ablation; may grow code).
	SubstUnrestricted bool
	// Extra rules run during the reduction pass (e.g. the query rewrite
	// rules of package qopt).
	Extra []Rule
	// CheckInvariants re-verifies well-formedness after every pass; for
	// tests and debugging. A violation is reported against the pass that
	// introduced it (e.g. "reduce#3"), not at codegen.
	CheckInvariants bool
	// OnPass, when non-nil, receives one record per optimizer pass —
	// each reduction fixpoint and each expansion sweep — as the pass
	// completes. The compilation pipeline (package pipeline) uses it for
	// per-pass instrumentation; per-pass node counts are only computed
	// when the hook is set.
	OnPass func(PassInfo)
}

// PassInfo describes one completed optimizer pass for Options.OnPass.
type PassInfo struct {
	// Name is "reduce" or "expand".
	Name string
	// Round is the 1-based reduction/expansion round the pass belongs to.
	Round int
	// Rewrites is the number of rule applications the pass performed.
	Rewrites int
	// Rules holds the per-rule application counts of this pass alone.
	Rules map[string]int
	// NodesBefore and NodesAfter are tree node counts around the pass.
	NodesBefore, NodesAfter int
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
}

// Defaults for Options.
const (
	DefaultMaxRounds    = 8
	DefaultInlineBudget = 40
	DefaultPenaltyLimit = 256
)

// Stats records what an optimization run did.
type Stats struct {
	// Rules counts rule applications by rule name.
	Rules map[string]int
	// Rounds is the number of reduction/expansion rounds executed.
	Rounds int
	// Penalty is the accumulated expansion penalty (paper §3).
	Penalty int
	// SizeBefore and SizeAfter are tree node counts.
	SizeBefore, SizeAfter int
	// CostBefore and CostAfter are estimated runtime costs.
	CostBefore, CostAfter int
}

func (s *Stats) bump(rule string) {
	if s.Rules == nil {
		s.Rules = make(map[string]int)
	}
	s.Rules[rule]++
}

// String formats the statistics for the tmlopt tool.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d penalty=%d size %d→%d cost %d→%d",
		s.Rounds, s.Penalty, s.SizeBefore, s.SizeAfter, s.CostBefore, s.CostAfter)
	names := make([]string, 0, len(s.Rules))
	for n := range s.Rules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, " %s=%d", n, s.Rules[n])
	}
	return b.String()
}

// Optimize rewrites app to a fixpoint of the reduction rules, interleaved
// with expansion rounds, and returns the optimized tree with statistics.
// The input tree is not mutated.
func Optimize(app *tml.App, opts Options) (*tml.App, *Stats, error) {
	o := newOptimizer(opts, app)
	out, err := o.run(app)
	return out, o.stats, err
}

type optimizer struct {
	opts    Options
	reg     *prim.Registry
	gen     *tml.VarGen
	ctx     *Ctx
	stats   *Stats
	changed bool
	penalty int
	// perBinder limits how often one binder is inlined per expansion pass
	// (recursion through Y would otherwise unroll without bound inside a
	// single pass).
	perBinder map[*tml.Var]int
}

func newOptimizer(opts Options, root *tml.App) *optimizer {
	if opts.Reg == nil {
		opts.Reg = prim.Default
	}
	if opts.Gen == nil {
		opts.Gen = tml.NewVarGenAt(tml.MaxVarID(root) + 1)
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultMaxRounds
	}
	if opts.InlineBudget == 0 {
		opts.InlineBudget = DefaultInlineBudget
	}
	if opts.PenaltyLimit == 0 {
		opts.PenaltyLimit = DefaultPenaltyLimit
	}
	return &optimizer{
		opts:  opts,
		reg:   opts.Reg,
		gen:   opts.Gen,
		ctx:   &Ctx{Gen: opts.Gen, Reg: opts.Reg},
		stats: &Stats{},
	}
}

func (o *optimizer) run(app *tml.App) (*tml.App, error) {
	o.stats.SizeBefore = tml.Size(app)
	o.stats.CostBefore = Cost(app, o.reg)
	for round := 0; ; round++ {
		o.stats.Rounds = round + 1
		app = o.pass("reduce", round+1, app, o.reduceFixpoint)
		if err := o.check(app, fmt.Sprintf("reduce#%d", round+1)); err != nil {
			return nil, err
		}
		if o.opts.NoExpansion || round+1 >= o.opts.MaxRounds || o.penalty >= o.opts.PenaltyLimit {
			break
		}
		o.changed = false
		o.perBinder = make(map[*tml.Var]int)
		app = o.pass("expand", round+1, app, func(a *tml.App) *tml.App {
			return o.expandApp(a, make(map[*tml.Var]*tml.Abs), round)
		})
		if err := o.check(app, fmt.Sprintf("expand#%d", round+1)); err != nil {
			return nil, err
		}
		if !o.changed {
			break
		}
	}
	o.stats.Penalty = o.penalty
	o.stats.SizeAfter = tml.Size(app)
	o.stats.CostAfter = Cost(app, o.reg)
	return app, nil
}

func (o *optimizer) check(app *tml.App, pass string) error {
	if !o.opts.CheckInvariants {
		return nil
	}
	free := tml.FreeVars(app)
	err := tml.Check(app, tml.CheckOpts{Signatures: o.reg.Signatures, AllowFree: free})
	if err != nil {
		return fmt.Errorf("opt: invariant broken after pass %s: %w", pass, err)
	}
	return nil
}

// pass runs one optimizer pass, reporting per-pass instrumentation to
// Options.OnPass when set.
func (o *optimizer) pass(name string, round int, app *tml.App, run func(*tml.App) *tml.App) *tml.App {
	if o.opts.OnPass == nil {
		return run(app)
	}
	before := tml.Size(app)
	snap := copyRules(o.stats.Rules)
	start := time.Now()
	out := run(app)
	elapsed := time.Since(start)
	delta := diffRules(o.stats.Rules, snap)
	total := 0
	for _, c := range delta {
		total += c
	}
	o.opts.OnPass(PassInfo{
		Name:        name,
		Round:       round,
		Rewrites:    total,
		Rules:       delta,
		NodesBefore: before,
		NodesAfter:  tml.Size(out),
		Duration:    elapsed,
	})
	return out
}

func copyRules(m map[string]int) map[string]int {
	if len(m) == 0 {
		return nil
	}
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// diffRules reports the counts accumulated since snap.
func diffRules(now, snap map[string]int) map[string]int {
	var d map[string]int
	for k, v := range now {
		if delta := v - snap[k]; delta > 0 {
			if d == nil {
				d = make(map[string]int)
			}
			d[k] = delta
		}
	}
	return d
}

// reduceFixpoint runs reduction sweeps until no rule fires.
func (o *optimizer) reduceFixpoint(app *tml.App) *tml.App {
	for {
		o.changed = false
		app = o.reduceApp(app)
		if !o.changed {
			return app
		}
	}
}
