package opt

import "tycoon/internal/tml"

// This file implements the expansion pass of paper §3: substituting bound
// λ-abstractions at their application sites — procedure inlining in
// compiler terms, view expansion in database terms. The decision whether
// to substitute a given use is based on a heuristic cost model similar to
// Appel's: the estimated body cost, discounted by savings expected from
// manifest arguments, must stay under a threshold that shrinks as the
// accumulated penalty grows.
//
// Unlike the reduction pass, expansion can grow the tree, so every inline
// adds to the penalty that eventually stops the reduction/expansion loop.

// callOverhead is the assumed cost of a closure call on the idealized
// abstract machine; it is credited as savings when a call is inlined.
const callOverhead = 4

// manifestArgBonus is the per-argument savings assumed when an argument is
// a constant or an abstraction, since such arguments typically enable
// folds and further reductions after inlining.
const manifestArgBonus = 3

// expandApp walks the tree collecting λ-bindings (β-redexes and Y knots)
// and replaces calls of bound variables with α-converted copies of the
// bound abstraction when the cost model approves. The reduction pass that
// follows turns the introduced β-redexes into actual substitutions.
func (o *optimizer) expandApp(app *tml.App, env map[*tml.Var]*tml.Abs, round int) *tml.App {
	// Collect bindings visible at this node.
	switch fn := app.Fn.(type) {
	case *tml.Abs:
		if len(fn.Params) == len(app.Args) {
			for i, p := range fn.Params {
				if abs, ok := app.Args[i].(*tml.Abs); ok {
					env[p] = abs
				}
			}
		}
	case *tml.Prim:
		if fn.Name == "Y" && len(app.Args) == 1 {
			if yAbs, ok := app.Args[0].(*tml.Abs); ok && len(yAbs.Params) >= 2 {
				c := yAbs.Params[len(yAbs.Params)-1]
				if fnVar, ok := yAbs.Body.Fn.(*tml.Var); ok && fnVar == c &&
					len(yAbs.Body.Args) == len(yAbs.Params)-1 {
					if cont0, ok := yAbs.Body.Args[0].(*tml.Abs); ok {
						env[yAbs.Params[0]] = cont0
					}
					for i, v := range yAbs.Params[1 : len(yAbs.Params)-1] {
						if abs, ok := yAbs.Body.Args[i+1].(*tml.Abs); ok {
							env[v] = abs
						}
					}
				}
			}
		}
	}

	// Inline at the root if the callee is a bound variable.
	if v, ok := app.Fn.(*tml.Var); ok {
		if abs, bound := env[v]; bound && len(abs.Params) == len(app.Args) {
			if o.shouldInline(v, abs, app.Args, round) {
				o.stats.bump("expand")
				o.changed = true
				o.penalty++
				o.perBinder[v]++
				inlined := tml.FreshenAbs(abs, o.gen)
				// The copy becomes a β-redex; recurse into the arguments
				// only — recursing into the freshly inlined body could
				// re-inline recursive binders without bound within this
				// pass.
				args := make([]tml.Value, len(app.Args))
				for i, a := range app.Args {
					args[i] = o.expandVal(a, env, round)
				}
				return tml.NewApp(inlined, args...)
			}
		}
	}

	fn := o.expandVal(app.Fn, env, round)
	args := make([]tml.Value, len(app.Args))
	for i, a := range app.Args {
		args[i] = o.expandVal(a, env, round)
	}
	return tml.NewApp(fn, args...)
}

func (o *optimizer) expandVal(v tml.Value, env map[*tml.Var]*tml.Abs, round int) tml.Value {
	abs, ok := v.(*tml.Abs)
	if !ok {
		return v
	}
	body := o.expandApp(abs.Body, env, round)
	if body == abs.Body {
		return abs
	}
	return &tml.Abs{Params: abs.Params, Body: body}
}

// shouldInline is the heuristic cost model. It approves an inline when the
// estimated body cost, net of call overhead and manifest-argument savings,
// stays below a threshold that shrinks with accumulated penalty, and the
// per-pass and global penalty limits are not exhausted.
func (o *optimizer) shouldInline(v *tml.Var, abs *tml.Abs, args []tml.Value, round int) bool {
	if o.penalty >= o.opts.PenaltyLimit {
		return false
	}
	// One unroll of a given binder per pass keeps recursive procedures
	// (loop unrolling) bounded per round; across rounds, the accumulated
	// penalty is the stop condition (paper §3).
	if o.perBinder[v] >= 1 {
		return false
	}
	bodyCost := Cost(abs.Body, o.reg)
	savings := callOverhead
	for _, a := range args {
		switch a.(type) {
		case *tml.Lit, *tml.Oid, *tml.Abs, *tml.Prim:
			savings += manifestArgBonus
		}
	}
	// The effective threshold shrinks as penalty accumulates, so early
	// rounds inline aggressively and later rounds only accept very small
	// bodies — the accumulated-penalty regime of paper §3.
	threshold := o.opts.InlineBudget * (o.opts.PenaltyLimit - o.penalty) / o.opts.PenaltyLimit
	return bodyCost-savings <= threshold
}
