package opt

import (
	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// This file implements the reduction pass: the core rewrite rules of
// paper §3 applied bottom-up over the tree until a fixpoint is reached.
// Every rule strictly decreases tree size (subst and remove are fused in
// the β-redex handler so their combination decreases size), which is the
// paper's termination argument.

// reduceApp rewrites one application bottom-up, then applies the rules at
// the root until none fires.
func (o *optimizer) reduceApp(app *tml.App) *tml.App {
	fn := o.reduceVal(app.Fn)
	var args []tml.Value
	for i, a := range app.Args {
		b := o.reduceVal(a)
		if b != a && args == nil {
			args = append([]tml.Value(nil), app.Args...)
		}
		if args != nil {
			args[i] = b
		}
	}
	if fn != app.Fn || args != nil {
		if args == nil {
			args = app.Args
		}
		app = &tml.App{Fn: fn, Args: args}
	}
	for {
		next, ok := o.applyRules(app)
		if !ok {
			return app
		}
		o.changed = true
		app = next
	}
}

// reduceVal rewrites a value; only abstractions have structure to reduce.
func (o *optimizer) reduceVal(v tml.Value) tml.Value {
	abs, ok := v.(*tml.Abs)
	if !ok {
		return v
	}
	body := o.reduceApp(abs.Body)
	if body != abs.Body {
		abs = &tml.Abs{Params: abs.Params, Body: body}
	}
	// η-reduce: λ(v₁…vₙ)(val v₁…vₙ) → val  when no vᵢ occurs in val.
	if val, ok := etaReduce(abs); ok {
		o.stats.bump("eta-reduce")
		o.changed = true
		return val
	}
	return abs
}

// etaReduce applies the η-reduce rule of paper §3.
func etaReduce(abs *tml.Abs) (tml.Value, bool) {
	body := abs.Body
	if len(body.Args) != len(abs.Params) {
		return nil, false
	}
	for i, p := range abs.Params {
		if body.Args[i] != tml.Value(p) {
			return nil, false
		}
	}
	// Precondition: ∀i |val|_{vᵢ} = 0.
	for _, p := range abs.Params {
		if tml.Count(body.Fn, p) != 0 {
			return nil, false
		}
	}
	// The η-contracted value must not change the proc/cont shape in a way
	// that breaks the escape rule: a proc abstraction may only contract to
	// a value that is itself proc-like. Contracting to a variable or
	// abstraction of identical parameter shape is always safe because the
	// application supplied exactly the same arguments.
	return body.Fn, true
}

// applyRules tries each root-level rule once; ok reports whether any fired.
func (o *optimizer) applyRules(app *tml.App) (*tml.App, bool) {
	switch fn := app.Fn.(type) {
	case *tml.Abs:
		if next, ok := o.betaRedex(app, fn); ok {
			return next, true
		}
	case *tml.Prim:
		if next, ok := o.primRules(app, fn); ok {
			return next, true
		}
	}
	for _, r := range o.opts.Extra {
		if next, ok := r.Apply(o.ctx, app); ok {
			o.stats.bump(r.Name)
			return next, true
		}
	}
	return nil, false
}

// betaRedex fuses the subst, remove and reduce rules of paper §3 on a
// direct application of an abstraction:
//
//	subst:  a bound value is substituted when it is not an abstraction, or
//	        when the variable is referenced exactly once (the precondition
//	        that keeps TML code from growing);
//	remove: a binding whose variable has no occurrences is struck out
//	        together with its value (sound because argument values cannot
//	        contain side-effecting calls);
//	reduce: an application that binds no variables is replaced by the
//	        abstraction body.
func (o *optimizer) betaRedex(app *tml.App, fn *tml.Abs) (*tml.App, bool) {
	if len(fn.Params) != len(app.Args) {
		return nil, false // ill-formed; leave for the checker
	}
	census := tml.NewCensus(fn.Body)
	subst := make(map[*tml.Var]tml.Value)
	var keepParams []*tml.Var
	var keepArgs []tml.Value
	removed, substituted := 0, 0
	for i, p := range fn.Params {
		arg := app.Args[i]
		uses := census.Uses(p)
		switch {
		case uses == 0:
			removed++
		case substitutable(arg, uses, o.opts.SubstUnrestricted):
			subst[p] = arg
			substituted++
		default:
			keepParams = append(keepParams, p)
			keepArgs = append(keepArgs, arg)
		}
	}
	if removed == 0 && substituted == 0 && len(keepParams) > 0 {
		return nil, false
	}
	body := fn.Body
	if len(subst) > 0 {
		body = tml.SubstMany(body, subst).(*tml.App)
		o.stats.Rules = ensure(o.stats.Rules)
		o.stats.Rules["subst"] += substituted
	}
	if removed > 0 {
		o.stats.Rules = ensure(o.stats.Rules)
		o.stats.Rules["remove"] += removed
	}
	if len(keepParams) == 0 {
		o.stats.bump("reduce")
		return body, true
	}
	return tml.NewApp(&tml.Abs{Params: keepParams, Body: body}, keepArgs...), true
}

func ensure(m map[string]int) map[string]int {
	if m == nil {
		return make(map[string]int)
	}
	return m
}

// substitutable implements the subst precondition
// (val ∉ Abs ∨ |app|_v = 1).
func substitutable(val tml.Value, uses int, unrestricted bool) bool {
	if _, isAbs := val.(*tml.Abs); isAbs {
		return uses == 1 || unrestricted
	}
	return true
}

// primRules applies fold, the dead-call rule, case-subst and the two Y
// rules to an application of a primitive.
func (o *optimizer) primRules(app *tml.App, fn *tml.Prim) (*tml.App, bool) {
	desc, ok := o.reg.Lookup(fn.Name)
	if !ok {
		return nil, false
	}

	// fold: per-primitive meta-evaluation (paper §2.3 item 2, rule fold).
	if desc.Fold != nil && !desc.NoFold && !o.opts.NoFold {
		if next, ok := desc.Fold(app.Args); ok {
			o.stats.bump("fold")
			return next, true
		}
	}

	// Dead-call elimination: (p vals… cont(t₁…tₙ) body) → body when the
	// primitive is pure (cannot fail, observe or alter the store) and the
	// continuation ignores every result. This is the dead code elimination
	// the paper attributes to the meta-evaluation machinery; effect
	// classes (paper §2.3 item 4) justify it generically.
	if desc.Effect == prim.Pure && desc.NConts == 1 {
		if cont, ok := app.Args[len(app.Args)-1].(*tml.Abs); ok {
			dead := true
			for _, p := range cont.Params {
				if tml.Count(cont.Body, p) != 0 {
					dead = false
					break
				}
			}
			if dead {
				o.stats.bump("dead-call")
				return cont.Body, true
			}
		}
	}

	switch fn.Name {
	case "==":
		if next, ok := o.caseSubst(app); ok {
			return next, true
		}
	case "Y":
		if next, ok := o.yRules(app); ok {
			return next, true
		}
	}
	return nil, false
}

// caseSubst implements the case-subst rule of paper §3: inside the branch
// continuation selected by tag valᵢ, the scrutinee variable is known to be
// identical to valᵢ and may be replaced by it.
func (o *optimizer) caseSubst(app *tml.App) (*tml.App, bool) {
	vals, conts := tml.SplitArgs(app.Args)
	if len(vals) < 2 || len(conts) < len(vals)-1 {
		return nil, false
	}
	v, ok := vals[0].(*tml.Var)
	if !ok {
		return nil, false
	}
	tags := vals[1:]
	changed := false
	newConts := append([]tml.Value(nil), conts...)
	for i, tag := range tags {
		branch, ok := conts[i].(*tml.Abs)
		if !ok {
			continue
		}
		if tml.Count(branch.Body, v) == 0 {
			continue
		}
		// Replacing v by an abstraction tag would duplicate binders; tags
		// are constants or variables in practice.
		if _, isAbs := tag.(*tml.Abs); isAbs {
			continue
		}
		body := tml.SubstApp(branch.Body, v, tag)
		newConts[i] = &tml.Abs{Params: branch.Params, Body: body}
		changed = true
	}
	if !changed {
		return nil, false
	}
	o.stats.bump("case-subst")
	args := append(append([]tml.Value(nil), vals...), newConts...)
	return tml.NewApp(app.Fn, args...), true
}

// yRules implements Y-remove and Y-reduce (paper §3) on
// (Y λ(c₀ v₁…vₙ c)(c cont()app abs₁…absₙ)).
func (o *optimizer) yRules(app *tml.App) (*tml.App, bool) {
	if len(app.Args) != 1 {
		return nil, false
	}
	yAbs, ok := app.Args[0].(*tml.Abs)
	if !ok || len(yAbs.Params) < 2 {
		return nil, false
	}
	c0 := yAbs.Params[0]
	c := yAbs.Params[len(yAbs.Params)-1]
	vs := yAbs.Params[1 : len(yAbs.Params)-1]
	knot := yAbs.Body
	// The knot-tying call must be (c cont₀ abs₁…absₙ).
	fnVar, ok := knot.Fn.(*tml.Var)
	if !ok || fnVar != c || len(knot.Args) != 1+len(vs) {
		return nil, false
	}
	cont0, ok := knot.Args[0].(*tml.Abs)
	if !ok {
		return nil, false
	}
	recs := knot.Args[1:]

	// Y-reduce: no recursive bindings and c₀ unreferenced → the entry
	// continuation's body replaces the whole Y application.
	if len(vs) == 0 && tml.Count(cont0.Body, c0) == 0 && len(cont0.Params) == 0 {
		o.stats.bump("Y-reduce")
		return cont0.Body, true
	}

	// Y-remove: strike out any recursive binding vᵢ not referenced from
	// the entry body nor from the other recursive abstractions
	// (|app|_{vᵢ} = 0 ∧ ∀ j≠i |absⱼ|_{vᵢ} = 0).
	keepParams := []*tml.Var{c0}
	keepRecs := []tml.Value{}
	removed := 0
	for i, v := range vs {
		dead := tml.Count(cont0.Body, v) == 0
		if dead {
			for j, r := range recs {
				if j != i && tml.Count(r, v) != 0 {
					dead = false
					break
				}
			}
		}
		if dead {
			removed++
			continue
		}
		keepParams = append(keepParams, v)
		keepRecs = append(keepRecs, recs[i])
	}
	if removed == 0 {
		return nil, false
	}
	o.stats.Rules = ensure(o.stats.Rules)
	o.stats.Rules["Y-remove"] += removed
	keepParams = append(keepParams, c)
	newKnot := tml.NewApp(c, append([]tml.Value{cont0}, keepRecs...)...)
	newY := &tml.Abs{Params: keepParams, Body: newKnot}
	return tml.NewApp(app.Fn, newY), true
}
