package tl

// This file implements the recursive descent parser for TL.
//
// Grammar sketch (see the test suite for worked examples):
//
//	module  := 'module' ID ['export' ID {',' ID}] {decl} 'end'
//	decl    := 'let' ID '(' params ')' [':' type] '=' expr
//	         | 'let' ID [':' type] '=' expr
//	         | 'type' ID '=' type
//	         | 'rel' ID ':' 'Rel' '(' fields ')'
//	seq     := item {';' item} [';']
//	item    := 'let' … | 'var' ID [':' type] ':=' expr
//	         | expr [':=' expr]
//	expr    := precedence climbing over or/and, comparisons, +- */%,
//	           unary - and not, postfix call/index/field
//	primary := literal | ID | '(' expr ')' | 'if' | 'while' | 'for'
//	         | 'case' | 'try' | 'begin' | 'raise' | 'tuple' | 'fun'
//	         | 'select' | 'exists' | 'foreach' | 'insert' | '__prim'

type parser struct {
	toks []token
	pos  int
}

// ParseModule parses one TL compilation unit.
func ParseModule(src string) (*Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.module()
	if err != nil {
		return nil, err
	}
	if !p.at(tEOF, "") {
		return nil, errf(p.peek().line, "trailing input after module: %q", p.peek().text)
	}
	return m, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tEOF {
		p.pos++
	}
	return t
}
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.peek()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokKind]string{tIdent: "identifier", tInt: "integer", tStr: "string"}[kind]
		}
		return t, errf(t.line, "expected %q, got %q", want, t.text)
	}
	return p.next(), nil
}

func (p *parser) kw(word string) bool { return p.accept(tKeyword, word) }

func (p *parser) expectKw(word string) error {
	_, err := p.expect(tKeyword, word)
	return err
}

func (p *parser) module() (*Module, error) {
	if err := p.expectKw("module"); err != nil {
		return nil, err
	}
	name, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name.text, Line: name.line}
	if p.kw("export") {
		for {
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			m.Exports = append(m.Exports, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
	}
	for !p.at(tKeyword, "end") {
		if p.at(tEOF, "") {
			return nil, errf(p.peek().line, "unexpected end of input in module %s", m.Name)
		}
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		m.Decls = append(m.Decls, d)
	}
	p.next() // end
	return m, nil
}

func (p *parser) decl() (Decl, error) {
	t := p.peek()
	switch {
	case p.kw("let"):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if p.accept(tPunct, "(") {
			params, err := p.params()
			if err != nil {
				return nil, err
			}
			ret := Type(OkT)
			if p.accept(tPunct, ":") {
				ret, err = p.typ()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tPunct, "="); err != nil {
				return nil, err
			}
			body, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &FunDecl{declBase: declBase{Line: name.line}, Name: name.text,
				Params: params, Ret: ret, Body: []Expr{body}}, nil
		}
		var typ Type
		if p.accept(tPunct, ":") {
			typ, err = p.typ()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ConstDecl{declBase: declBase{Line: name.line}, Name: name.text, Type: typ, Init: init}, nil
	case p.kw("type"):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
		typ, err := p.typ()
		if err != nil {
			return nil, err
		}
		return &TypeDecl{declBase: declBase{Line: name.line}, Name: name.text, Type: typ}, nil
	case p.kw("rel"):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		typ, err := p.typ()
		if err != nil {
			return nil, err
		}
		rt, ok := typ.(*RelT)
		if !ok {
			return nil, errf(name.line, "rel declaration %s needs a Rel(...) type", name.text)
		}
		return &RelDecl{declBase: declBase{Line: name.line}, Name: name.text, Type: rt}, nil
	default:
		return nil, errf(t.line, "expected declaration, got %q", t.text)
	}
}

func (p *parser) params() ([]Param, error) {
	var params []Param
	if p.accept(tPunct, ")") {
		return params, nil
	}
	for {
		// Grouped form: a, b : Int
		var names []string
		for {
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			names = append(names, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		typ, err := p.typ()
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			params = append(params, Param{Name: n, Type: typ})
		}
		if p.accept(tPunct, ")") {
			return params, nil
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) fields(terminator string, termKind tokKind) ([]Field, error) {
	var fields []Field
	for {
		var names []string
		for {
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			names = append(names, id.text)
			if !p.accept(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, ":"); err != nil {
			return nil, err
		}
		typ, err := p.typ()
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			fields = append(fields, Field{Name: n, Type: typ})
		}
		if p.at(termKind, terminator) {
			p.next()
			return fields, nil
		}
		if _, err := p.expect(tPunct, ","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) typ() (Type, error) {
	t := p.peek()
	if t.kind == tIdent {
		p.next()
		switch t.text {
		case "Int":
			return IntT, nil
		case "Real":
			return RealT, nil
		case "Bool":
			return BoolT, nil
		case "Char":
			return CharT, nil
		case "String":
			return StrT, nil
		case "Ok":
			return OkT, nil
		case "Array":
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			elem, err := p.typ()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return &ArrayT{Elem: elem}, nil
		case "Tuple":
			fields, err := p.fields("end", tKeyword)
			if err != nil {
				return nil, err
			}
			return &TupleT{Fields: fields}, nil
		case "Rel":
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			fields, err := p.fields(")", tPunct)
			if err != nil {
				return nil, err
			}
			return &RelT{Fields: fields}, nil
		case "Fun":
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			var params []Type
			if !p.accept(tPunct, ")") {
				for {
					pt, err := p.typ()
					if err != nil {
						return nil, err
					}
					params = append(params, pt)
					if p.accept(tPunct, ")") {
						break
					}
					if _, err := p.expect(tPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(tPunct, ":"); err != nil {
				return nil, err
			}
			ret, err := p.typ()
			if err != nil {
				return nil, err
			}
			return &FunT{Params: params, Ret: ret}, nil
		default:
			if p.accept(tPunct, ".") {
				inner, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				return &NamedT{Mod: t.text, Name: inner.text}, nil
			}
			return &NamedT{Name: t.text}, nil
		}
	}
	return nil, errf(t.line, "expected type, got %q", t.text)
}

// seq parses an expression sequence until (not consuming) one of the
// given stop keywords.
func (p *parser) seq(stops ...string) ([]Expr, error) {
	isStop := func() bool {
		t := p.peek()
		if t.kind == tEOF {
			return true
		}
		for _, s := range stops {
			if (t.kind == tKeyword && t.text == s) || (t.kind == tPunct && t.text == s) {
				return true
			}
		}
		return false
	}
	var body []Expr
	for {
		if isStop() {
			if len(body) == 0 {
				return nil, errf(p.peek().line, "empty expression sequence")
			}
			return body, nil
		}
		item, err := p.seqItem()
		if err != nil {
			return nil, err
		}
		body = append(body, item)
		if !p.accept(tPunct, ";") {
			if isStop() {
				return body, nil
			}
			return nil, errf(p.peek().line, "expected ';' or end of sequence, got %q", p.peek().text)
		}
	}
}

// seqItem parses one sequence element: a local let, a var declaration, an
// assignment or a plain expression.
func (p *parser) seqItem() (Expr, error) {
	t := p.peek()
	switch {
	case p.kw("let"):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		if p.accept(tPunct, "(") {
			params, err := p.params()
			if err != nil {
				return nil, err
			}
			ret := Type(OkT)
			if p.accept(tPunct, ":") {
				ret, err = p.typ()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tPunct, "="); err != nil {
				return nil, err
			}
			body, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Let{exprBase: exprBase{Line: name.line}, Name: name.text,
				IsFun: true, Params: params, Ret: ret, Body: []Expr{body}}, nil
		}
		var typ Type
		if p.accept(tPunct, ":") {
			typ, err = p.typ()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tPunct, "="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Let{exprBase: exprBase{Line: name.line}, Name: name.text, Type: typ, Init: init}, nil
	case p.kw("var"):
		name, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		var typ Type
		if p.accept(tPunct, ":") {
			typ, err = p.typ()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tPunct, ":="); err != nil {
			return nil, err
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &VarDecl{exprBase: exprBase{Line: name.line}, Name: name.text, Type: typ, Init: init}, nil
	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.accept(tPunct, ":=") {
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			switch e.(type) {
			case *Ident, *Index:
				return &Assign{exprBase: exprBase{Line: t.line}, Target: e, Val: val}, nil
			default:
				return nil, errf(t.line, "assignment target must be a variable or array element")
			}
		}
		return e, nil
	}
}

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	e, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tKeyword, "or") {
		line := p.next().line
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		e = &Binary{exprBase: exprBase{Line: line}, Op: "or", L: e, R: r}
	}
	return e, nil
}

func (p *parser) andExpr() (Expr, error) {
	e, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tKeyword, "and") {
		line := p.next().line
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		e = &Binary{exprBase: exprBase{Line: line}, Op: "and", L: e, R: r}
	}
	return e, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	e, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tPunct {
		switch t.text {
		case "<", "<=", ">", ">=", "=", "<>":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &Binary{exprBase: exprBase{Line: t.line}, Op: t.text, L: e, R: r}, nil
		}
	}
	return e, nil
}

func (p *parser) addExpr() (Expr, error) {
	e, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tPunct && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			e = &Binary{exprBase: exprBase{Line: t.line}, Op: t.text, L: e, R: r}
			continue
		}
		return e, nil
	}
}

func (p *parser) mulExpr() (Expr, error) {
	e, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tPunct && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.next()
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			e = &Binary{exprBase: exprBase{Line: t.line}, Op: t.text, L: e, R: r}
			continue
		}
		return e, nil
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.peek()
	if t.kind == tPunct && t.text == "-" {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line}, Op: "-", E: e}, nil
	}
	if t.kind == tKeyword && t.text == "not" {
		p.next()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Line: t.line}, Op: "not", E: e}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case p.accept(tPunct, "("):
			var args []Expr
			if !p.accept(tPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(tPunct, ")") {
						break
					}
					if _, err := p.expect(tPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			e = &Call{exprBase: exprBase{Line: t.line}, Fn: e, Args: args}
		case p.accept(tPunct, "["):
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			e = &Index{exprBase: exprBase{Line: t.line}, Arr: e, I: i}
		case p.accept(tPunct, "."):
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			e = &FieldAccess{exprBase: exprBase{Line: t.line}, E: e, Name: id.text}
		default:
			return e, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tInt:
		p.next()
		return &IntLit{exprBase{t.line}, t.ival}, nil
	case tReal:
		p.next()
		return &RealLit{exprBase{t.line}, t.rval}, nil
	case tChar:
		p.next()
		return &CharLit{exprBase{t.line}, byte(t.ival)}, nil
	case tStr:
		p.next()
		return &StrLit{exprBase{t.line}, t.text}, nil
	case tIdent:
		p.next()
		return &Ident{exprBase{t.line}, t.text}, nil
	case tPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tKeyword:
		switch t.text {
		case "true", "false":
			p.next()
			return &BoolLit{exprBase{t.line}, t.text == "true"}, nil
		case "ok":
			p.next()
			return &OkLit{exprBase{t.line}}, nil
		case "if":
			return p.ifExpr()
		case "while":
			return p.whileExpr()
		case "for":
			return p.forExpr()
		case "case":
			return p.caseExpr()
		case "try":
			return p.tryExpr()
		case "begin":
			p.next()
			body, err := p.seq("end")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("end"); err != nil {
				return nil, err
			}
			return &Block{exprBase{t.line}, body}, nil
		case "raise":
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Raise{exprBase{t.line}, e}, nil
		case "tuple":
			p.next()
			var elems []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.kw("end") {
					return &TupleLit{exprBase{t.line}, elems}, nil
				}
				if _, err := p.expect(tPunct, ","); err != nil {
					return nil, err
				}
			}
		case "fun":
			p.next()
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			params, err := p.params()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, ":"); err != nil {
				return nil, err
			}
			ret, err := p.typ()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "=>"); err != nil {
				return nil, err
			}
			body, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &FunLit{exprBase{t.line}, params, ret, []Expr{body}}, nil
		case "select":
			p.next()
			target, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("from"); err != nil {
				return nil, err
			}
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("in"); err != nil {
				return nil, err
			}
			rel, err := p.expr()
			if err != nil {
				return nil, err
			}
			var id2 string
			var rel2 Expr
			if p.accept(tPunct, ",") {
				tok2, err := p.expect(tIdent, "")
				if err != nil {
					return nil, err
				}
				id2 = tok2.text
				if err := p.expectKw("in"); err != nil {
					return nil, err
				}
				rel2, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			var pred Expr
			if p.kw("where") {
				pred, err = p.expr()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectKw("end"); err != nil {
				return nil, err
			}
			return &Select{exprBase{t.line}, target, id.text, rel, id2, rel2, pred}, nil
		case "exists":
			p.next()
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("in"); err != nil {
				return nil, err
			}
			rel, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("where"); err != nil {
				return nil, err
			}
			pred, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("end"); err != nil {
				return nil, err
			}
			return &Exists{exprBase{t.line}, id.text, rel, pred}, nil
		case "foreach":
			p.next()
			id, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("in"); err != nil {
				return nil, err
			}
			rel, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("do"); err != nil {
				return nil, err
			}
			body, err := p.seq("end")
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("end"); err != nil {
				return nil, err
			}
			return &Foreach{exprBase{t.line}, id.text, rel, body}, nil
		case "insert":
			p.next()
			tup, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("into"); err != nil {
				return nil, err
			}
			rel, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &Insert{exprBase{t.line}, tup, rel}, nil
		case "__prim":
			p.next()
			name, err := p.expect(tStr, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "("); err != nil {
				return nil, err
			}
			var args []Expr
			if !p.accept(tPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(tPunct, ")") {
						break
					}
					if _, err := p.expect(tPunct, ","); err != nil {
						return nil, err
					}
				}
			}
			return &PrimCall{exprBase{t.line}, name.text, args}, nil
		}
	}
	return nil, errf(t.line, "unexpected token %q", t.text)
}

func (p *parser) ifExpr() (Expr, error) {
	t := p.next() // if / elsif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	then, err := p.seq("else", "elsif", "end")
	if err != nil {
		return nil, err
	}
	node := &If{exprBase: exprBase{Line: t.line}, Cond: cond, Then: then}
	switch {
	case p.at(tKeyword, "elsif"):
		rest, err := p.ifExpr() // consumes through its own end
		if err != nil {
			return nil, err
		}
		node.Else = []Expr{rest}
		return node, nil
	case p.kw("else"):
		els, err := p.seq("end")
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) whileExpr() (Expr, error) {
	t := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.seq("end")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &While{exprBase{t.line}, cond, body}, nil
}

func (p *parser) forExpr() (Expr, error) {
	t := p.next()
	id, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	down := false
	if !p.kw("upto") {
		if p.kw("downto") {
			down = true
		} else {
			return nil, errf(p.peek().line, "expected 'upto' or 'downto'")
		}
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	body, err := p.seq("end")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &For{exprBase{t.line}, id.text, lo, hi, down, body}, nil
}

func (p *parser) caseExpr() (Expr, error) {
	t := p.next()
	scrut, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("of"); err != nil {
		return nil, err
	}
	node := &Case{exprBase: exprBase{Line: t.line}, Scrut: scrut}
	for {
		tag, err := p.primary() // literals only; checker validates
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, "=>"); err != nil {
			return nil, err
		}
		branch, err := p.seq("|", "else", "end")
		if err != nil {
			return nil, err
		}
		node.Tags = append(node.Tags, tag)
		node.Branches = append(node.Branches, branch)
		if p.accept(tPunct, "|") {
			continue
		}
		break
	}
	if p.kw("else") {
		els, err := p.seq("end")
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) tryExpr() (Expr, error) {
	t := p.next()
	body, err := p.seq("handle")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("handle"); err != nil {
		return nil, err
	}
	id, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "=>"); err != nil {
		return nil, err
	}
	handler, err := p.seq("end")
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return &Try{exprBase{t.line}, body, id.text, handler}, nil
}
