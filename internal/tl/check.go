package tl

import "fmt"

// This file implements the TL type checker. The checker enforces the
// static discipline the TML well-formedness rules presuppose (paper §2.2:
// "this property is statically enforced by the compiler front end") and
// resolves names: locals, module-level declarations (mutually visible),
// imported module members (mod.f) and persistent relation declarations.

// MemberSig describes one exported module member. Its position in the
// Members slice is the export index compiled code uses to fetch the member
// from the module value at runtime — the abstraction barrier of §4.1.
type MemberSig struct {
	Name string
	Type Type
}

// ModuleSig is the statically known interface of a module: member
// signatures and exported named types. The member *values* are bound at
// link time only.
type ModuleSig struct {
	Name    string
	Members []MemberSig
	Types   map[string]Type
}

// MemberIndex returns a member's export index, or -1.
func (s *ModuleSig) MemberIndex(name string) int {
	for i, m := range s.Members {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Member returns a member's signature.
func (s *ModuleSig) Member(name string) (MemberSig, bool) {
	i := s.MemberIndex(name)
	if i < 0 {
		return MemberSig{}, false
	}
	return s.Members[i], true
}

type symKind uint8

const (
	symLocal   symKind = iota // immutable local (let, parameters, loop vars)
	symMutable                // var binding, compiled through a cell
	symFun                    // module-level function of this module
	symConst                  // module-level constant of this module
	symRel                    // persistent relation declaration
	symJoinRow                // join-query row variable: field access only
)

type symbol struct {
	Name string
	Kind symKind
	Type Type
}

// modAccess is a resolved reference to an exported member of another
// module: the member is fetched from the module value by export index at
// runtime.
type modAccess struct {
	Mod    string
	Member string
	Index  int
	Type   Type
}

// checked carries the checker's annotations into code generation.
type checked struct {
	ast        *Module
	sig        *ModuleSig
	types      map[Expr]Type
	idents     map[*Ident]*symbol
	modAccess  map[*FieldAccess]*modAccess
	fieldIdx   map[*FieldAccess]int
	tupleNames map[*TupleLit][]string
	builtins   map[*Call]string
	// binders records the symbol(s) introduced at each binding site, in
	// declaration order, keyed by the AST node (Expr or Decl); code
	// generation keys its environment by these symbol pointers.
	binders  map[any][]*symbol
	decls    map[string]*symbol
	rels     map[string]*RelDecl
	typeDefs map[string]Type
}

// checker performs the pass.
type checker struct {
	out    *checked
	sigs   map[string]*ModuleSig
	scopes []map[string]*symbol
	// allowPrim permits __prim (library modules only).
	allowPrim bool
	// inConst marks checking of a constant initialiser, where sibling
	// function references are forbidden (constants are evaluated at
	// installation time, before function closures exist).
	inConst bool
}

// Check type-checks a module against the signatures of previously
// compiled modules. allowPrim enables the __prim escape hatch used by the
// standard library.
func Check(m *Module, sigs map[string]*ModuleSig, allowPrim bool) (*checked, error) {
	c := &checker{
		out: &checked{
			ast:        m,
			types:      make(map[Expr]Type),
			idents:     make(map[*Ident]*symbol),
			modAccess:  make(map[*FieldAccess]*modAccess),
			fieldIdx:   make(map[*FieldAccess]int),
			tupleNames: make(map[*TupleLit][]string),
			builtins:   make(map[*Call]string),
			binders:    make(map[any][]*symbol),
			decls:      make(map[string]*symbol),
			rels:       make(map[string]*RelDecl),
			typeDefs:   make(map[string]Type),
		},
		sigs:      sigs,
		allowPrim: allowPrim,
	}
	if err := c.module(m); err != nil {
		return nil, err
	}
	return c.out, nil
}

func (c *checker) module(m *Module) error {
	// Pass 1: collect type declarations (so later decls may reference
	// them), then relation and value declarations.
	for _, d := range m.Decls {
		if td, ok := d.(*TypeDecl); ok {
			rt, err := c.resolveType(td.Type, td.declLine())
			if err != nil {
				return err
			}
			if _, dup := c.out.typeDefs[td.Name]; dup {
				return errf(td.declLine(), "type %s declared twice", td.Name)
			}
			c.out.typeDefs[td.Name] = rt
		}
	}
	for _, d := range m.Decls {
		switch d := d.(type) {
		case *FunDecl:
			params := make([]Type, len(d.Params))
			for i := range d.Params {
				rt, err := c.resolveType(d.Params[i].Type, d.declLine())
				if err != nil {
					return err
				}
				d.Params[i].Type = rt
				params[i] = rt
			}
			ret, err := c.resolveType(d.Ret, d.declLine())
			if err != nil {
				return err
			}
			d.Ret = ret
			if _, dup := c.out.decls[d.Name]; dup {
				return errf(d.declLine(), "%s declared twice", d.Name)
			}
			c.out.decls[d.Name] = &symbol{Name: d.Name, Kind: symFun, Type: &FunT{Params: params, Ret: ret}}
		case *ConstDecl:
			if _, dup := c.out.decls[d.Name]; dup {
				return errf(d.declLine(), "%s declared twice", d.Name)
			}
			// Type filled in pass 2 when inferred.
			if d.Type != nil {
				rt, err := c.resolveType(d.Type, d.declLine())
				if err != nil {
					return err
				}
				d.Type = rt
			}
			c.out.decls[d.Name] = &symbol{Name: d.Name, Kind: symConst, Type: d.Type}
		case *RelDecl:
			rt, err := c.resolveType(d.Type, d.declLine())
			if err != nil {
				return err
			}
			d.Type = rt.(*RelT)
			if _, dup := c.out.rels[d.Name]; dup {
				return errf(d.declLine(), "relation %s declared twice", d.Name)
			}
			c.out.rels[d.Name] = d
			c.out.decls[d.Name] = &symbol{Name: d.Name, Kind: symRel, Type: d.Type}
		case *TypeDecl:
			// handled above
		}
	}

	// Pass 2: check bodies. Constants first (their types may be
	// inferred), in declaration order; constants may not reference
	// functions (they are evaluated at installation time).
	for _, d := range m.Decls {
		cd, ok := d.(*ConstDecl)
		if !ok {
			continue
		}
		c.inConst = true
		t, err := c.expr(cd.Init, cd.Type)
		c.inConst = false
		if err != nil {
			return err
		}
		if cd.Type != nil && !cd.Type.equal(t) {
			return errf(cd.declLine(), "constant %s declared %s but initialised with %s", cd.Name, cd.Type, t)
		}
		cd.Type = t
		c.out.decls[cd.Name].Type = t
	}
	for _, d := range m.Decls {
		fd, ok := d.(*FunDecl)
		if !ok {
			continue
		}
		c.push()
		for _, p := range fd.Params {
			sym := &symbol{Name: p.Name, Kind: symLocal, Type: p.Type}
			c.bind(sym)
			c.out.binders[fd] = append(c.out.binders[fd], sym)
		}
		got, err := c.seq(fd.Body, fd.Ret)
		c.pop()
		if err != nil {
			return err
		}
		if !fd.Ret.equal(got) && !fd.Ret.equal(OkT) {
			return errf(fd.declLine(), "function %s declared %s but returns %s", fd.Name, fd.Ret, got)
		}
	}

	// Pass 3: build the module signature from the export list.
	sig := &ModuleSig{Name: m.Name, Types: make(map[string]Type)}
	for _, name := range m.Exports {
		if t, ok := c.out.typeDefs[name]; ok {
			sig.Types[name] = t
			continue
		}
		sym, ok := c.out.decls[name]
		if !ok {
			return errf(m.Line, "module %s exports undeclared %s", m.Name, name)
		}
		if sym.Kind == symRel {
			return errf(m.Line, "relation %s cannot be exported; relations bind by name at link time", name)
		}
		sig.Members = append(sig.Members, MemberSig{Name: name, Type: sym.Type})
	}
	c.out.sig = sig
	return nil
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) bind(s *symbol) { c.scopes[len(c.scopes)-1][s.Name] = s }

func (c *checker) resolve(name string) (*symbol, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s, true
		}
	}
	if s, ok := c.out.decls[name]; ok {
		return s, true
	}
	return nil, false
}

// resolveType replaces named type references by their declarations.
func (c *checker) resolveType(t Type, line int) (Type, error) {
	switch t := t.(type) {
	case nil:
		return nil, errf(line, "missing type")
	case *NamedT:
		if t.Mod == "" {
			if rt, ok := c.out.typeDefs[t.Name]; ok {
				return rt, nil
			}
			return nil, errf(line, "unknown type %s", t.Name)
		}
		sig, ok := c.sigs[t.Mod]
		if !ok {
			return nil, errf(line, "unknown module %s", t.Mod)
		}
		rt, ok := sig.Types[t.Name]
		if !ok {
			return nil, errf(line, "module %s exports no type %s", t.Mod, t.Name)
		}
		return rt, nil
	case *ArrayT:
		elem, err := c.resolveType(t.Elem, line)
		if err != nil {
			return nil, err
		}
		return &ArrayT{Elem: elem}, nil
	case *TupleT:
		fields := make([]Field, len(t.Fields))
		for i, f := range t.Fields {
			ft, err := c.resolveType(f.Type, line)
			if err != nil {
				return nil, err
			}
			fields[i] = Field{Name: f.Name, Type: ft}
		}
		return &TupleT{Fields: fields}, nil
	case *RelT:
		fields := make([]Field, len(t.Fields))
		for i, f := range t.Fields {
			ft, err := c.resolveType(f.Type, line)
			if err != nil {
				return nil, err
			}
			if !isScalar(ft) {
				return nil, errf(line, "relation column %s must be scalar, got %s", f.Name, ft)
			}
			fields[i] = Field{Name: f.Name, Type: ft}
		}
		return &RelT{Fields: fields}, nil
	case *FunT:
		params := make([]Type, len(t.Params))
		for i, pt := range t.Params {
			rt, err := c.resolveType(pt, line)
			if err != nil {
				return nil, err
			}
			params[i] = rt
		}
		ret, err := c.resolveType(t.Ret, line)
		if err != nil {
			return nil, err
		}
		return &FunT{Params: params, Ret: ret}, nil
	default:
		return t, nil
	}
}

func isScalar(t Type) bool {
	switch t {
	case IntT, RealT, BoolT, CharT, StrT:
		return true
	}
	return false
}

// seq checks an expression sequence; its type is the last item's. expect
// is threaded to the final item (for __prim).
func (c *checker) seq(body []Expr, expect Type) (Type, error) {
	c.push()
	defer c.pop()
	var t Type = OkT
	for i, e := range body {
		var exp Type
		if i == len(body)-1 {
			exp = expect
		}
		var err error
		t, err = c.item(e, exp)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// item checks a sequence element, introducing let/var bindings into the
// current scope.
func (c *checker) item(e Expr, expect Type) (Type, error) {
	switch e := e.(type) {
	case *Let:
		if e.IsFun {
			params := make([]Type, len(e.Params))
			for i := range e.Params {
				rt, err := c.resolveType(e.Params[i].Type, e.exprLine())
				if err != nil {
					return nil, err
				}
				e.Params[i].Type = rt
				params[i] = rt
			}
			ret, err := c.resolveType(e.Ret, e.exprLine())
			if err != nil {
				return nil, err
			}
			e.Ret = ret
			fn := &FunT{Params: params, Ret: ret}
			// Bind before checking the body: local functions may recurse.
			self := &symbol{Name: e.Name, Kind: symLocal, Type: fn}
			c.bind(self)
			c.out.binders[e] = append(c.out.binders[e], self)
			c.push()
			for _, p := range e.Params {
				sym := &symbol{Name: p.Name, Kind: symLocal, Type: p.Type}
				c.bind(sym)
				c.out.binders[e] = append(c.out.binders[e], sym)
			}
			got, err := c.seq(e.Body, ret)
			c.pop()
			if err != nil {
				return nil, err
			}
			if !ret.equal(got) && !ret.equal(OkT) {
				return nil, errf(e.exprLine(), "local function %s declared %s but returns %s", e.Name, ret, got)
			}
			c.out.types[e] = OkT
			return OkT, nil
		}
		var declared Type
		if e.Type != nil {
			rt, err := c.resolveType(e.Type, e.exprLine())
			if err != nil {
				return nil, err
			}
			declared = rt
			e.Type = rt
		}
		t, err := c.expr(e.Init, declared)
		if err != nil {
			return nil, err
		}
		if declared != nil && !declared.equal(t) {
			return nil, errf(e.exprLine(), "let %s declared %s but initialised with %s", e.Name, declared, t)
		}
		e.Type = t
		sym := &symbol{Name: e.Name, Kind: symLocal, Type: t}
		c.bind(sym)
		c.out.binders[e] = []*symbol{sym}
		c.out.types[e] = OkT
		return OkT, nil
	case *VarDecl:
		var declared Type
		if e.Type != nil {
			rt, err := c.resolveType(e.Type, e.exprLine())
			if err != nil {
				return nil, err
			}
			declared = rt
			e.Type = rt
		}
		t, err := c.expr(e.Init, declared)
		if err != nil {
			return nil, err
		}
		if declared != nil && !declared.equal(t) {
			return nil, errf(e.exprLine(), "var %s declared %s but initialised with %s", e.Name, declared, t)
		}
		e.Type = t
		sym := &symbol{Name: e.Name, Kind: symMutable, Type: t}
		c.bind(sym)
		c.out.binders[e] = []*symbol{sym}
		c.out.types[e] = OkT
		return OkT, nil
	default:
		return c.expr(e, expect)
	}
}

// expr type-checks an expression. expect is a hint consumed by __prim
// and raise; it never weakens checking elsewhere.
func (c *checker) expr(e Expr, expect Type) (Type, error) {
	t, err := c.exprInner(e, expect)
	if err != nil {
		return nil, err
	}
	c.out.types[e] = t
	return t, nil
}

func (c *checker) exprInner(e Expr, expect Type) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		return IntT, nil
	case *RealLit:
		return RealT, nil
	case *BoolLit:
		return BoolT, nil
	case *CharLit:
		return CharT, nil
	case *StrLit:
		return StrT, nil
	case *OkLit:
		return OkT, nil
	case *Ident:
		sym, ok := c.resolve(e.Name)
		if !ok {
			if _, isMod := c.sigs[e.Name]; isMod {
				return nil, errf(e.exprLine(), "module %s used as a value; select a member with %s.name", e.Name, e.Name)
			}
			return nil, errf(e.exprLine(), "undeclared identifier %s", e.Name)
		}
		if sym.Type == nil {
			return nil, errf(e.exprLine(), "%s used before its type is known", e.Name)
		}
		if c.inConst && sym.Kind == symFun {
			return nil, errf(e.exprLine(), "constant initialiser may not reference function %s", e.Name)
		}
		if sym.Kind == symJoinRow {
			return nil, errf(e.exprLine(), "join row variable %s may only be used through field access", e.Name)
		}
		c.out.idents[e] = sym
		return sym.Type, nil
	case *Binary:
		return c.binary(e)
	case *Unary:
		t, err := c.expr(e.E, nil)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			if t != IntT && t != RealT {
				return nil, errf(e.exprLine(), "unary - on %s", t)
			}
			return t, nil
		case "not":
			if t != BoolT {
				return nil, errf(e.exprLine(), "not on %s", t)
			}
			return BoolT, nil
		}
		return nil, errf(e.exprLine(), "unknown unary %s", e.Op)
	case *If:
		ct, err := c.expr(e.Cond, BoolT)
		if err != nil {
			return nil, err
		}
		if ct != BoolT {
			return nil, errf(e.exprLine(), "if condition is %s, want Bool", ct)
		}
		tt, err := c.seq(e.Then, expect)
		if err != nil {
			return nil, err
		}
		if e.Else == nil {
			return OkT, nil
		}
		et, err := c.seq(e.Else, expect)
		if err != nil {
			return nil, err
		}
		if tt.equal(et) {
			return tt, nil
		}
		return OkT, nil
	case *While:
		ct, err := c.expr(e.Cond, BoolT)
		if err != nil {
			return nil, err
		}
		if ct != BoolT {
			return nil, errf(e.exprLine(), "while condition is %s, want Bool", ct)
		}
		if _, err := c.seq(e.Body, nil); err != nil {
			return nil, err
		}
		return OkT, nil
	case *For:
		lo, err := c.expr(e.Lo, nil)
		if err != nil {
			return nil, err
		}
		hi, err := c.expr(e.Hi, nil)
		if err != nil {
			return nil, err
		}
		if lo != IntT || hi != IntT {
			return nil, errf(e.exprLine(), "for bounds must be Int, got %s and %s", lo, hi)
		}
		c.push()
		loopSym := &symbol{Name: e.Var, Kind: symLocal, Type: IntT}
		c.bind(loopSym)
		c.out.binders[e] = []*symbol{loopSym}
		_, err = c.seq(e.Body, nil)
		c.pop()
		if err != nil {
			return nil, err
		}
		return OkT, nil
	case *Case:
		return c.caseExpr(e, expect)
	case *Try:
		tt, err := c.seq(e.Body, expect)
		if err != nil {
			return nil, err
		}
		c.push()
		excSym := &symbol{Name: e.ExcVar, Kind: symLocal, Type: StrT}
		c.bind(excSym)
		c.out.binders[e] = []*symbol{excSym}
		ht, err := c.seq(e.Handler, expect)
		c.pop()
		if err != nil {
			return nil, err
		}
		if tt.equal(ht) {
			return tt, nil
		}
		return OkT, nil
	case *Raise:
		t, err := c.expr(e.E, nil)
		if err != nil {
			return nil, err
		}
		if !isScalar(t) {
			return nil, errf(e.exprLine(), "raise value must be scalar, got %s", t)
		}
		// raise never returns; it adopts the expected type.
		if expect != nil {
			return expect, nil
		}
		return OkT, nil
	case *Block:
		return c.seq(e.Body, expect)
	case *Assign:
		return c.assign(e)
	case *Index:
		at, err := c.expr(e.Arr, nil)
		if err != nil {
			return nil, err
		}
		it, err := c.expr(e.I, nil)
		if err != nil {
			return nil, err
		}
		if it != IntT {
			return nil, errf(e.exprLine(), "index must be Int, got %s", it)
		}
		switch at := at.(type) {
		case *ArrayT:
			return at.Elem, nil
		default:
			if at == StrT {
				return CharT, nil
			}
			return nil, errf(e.exprLine(), "indexing a %s", at)
		}
	case *FieldAccess:
		return c.fieldAccess(e)
	case *TupleLit:
		// With a contextual tuple type of matching arity (declared return
		// type, insert target, annotated let), the literal adopts its
		// field names — the paper's tuple x y end relies on the variable-
		// name convention, which remains the fallback.
		var expected *TupleT
		if et, ok := expect.(*TupleT); ok && len(et.Fields) == len(e.Elems) {
			expected = et
		}
		var fields []Field
		var names []string
		for i, el := range e.Elems {
			var hint Type
			if expected != nil {
				hint = expected.Fields[i].Type
			}
			t, err := c.expr(el, hint)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("_%d", i)
			switch el := el.(type) {
			case *Ident:
				name = el.Name
			case *FieldAccess:
				// Target lists like tuple e.id, e.sal end adopt the
				// projected column names.
				name = el.Name
			}
			if expected != nil && expected.Fields[i].Type.equal(t) {
				name = expected.Fields[i].Name
			}
			names = append(names, name)
			fields = append(fields, Field{Name: name, Type: t})
		}
		c.out.tupleNames[e] = names
		return &TupleT{Fields: fields}, nil
	case *FunLit:
		params := make([]Type, len(e.Params))
		for i := range e.Params {
			rt, err := c.resolveType(e.Params[i].Type, e.exprLine())
			if err != nil {
				return nil, err
			}
			e.Params[i].Type = rt
			params[i] = rt
		}
		ret, err := c.resolveType(e.Ret, e.exprLine())
		if err != nil {
			return nil, err
		}
		e.Ret = ret
		c.push()
		for _, p := range e.Params {
			sym := &symbol{Name: p.Name, Kind: symLocal, Type: p.Type}
			c.bind(sym)
			c.out.binders[e] = append(c.out.binders[e], sym)
		}
		got, err := c.seq(e.Body, ret)
		c.pop()
		if err != nil {
			return nil, err
		}
		if !ret.equal(got) && !ret.equal(OkT) {
			return nil, errf(e.exprLine(), "fun declared %s but returns %s", ret, got)
		}
		return &FunT{Params: params, Ret: ret}, nil
	case *Call:
		return c.call(e)
	case *Select:
		return c.selectExpr(e)
	case *Exists:
		_, _, err := c.queryScope(e, e.Var, e.Rel, e.Pred, e.exprLine())
		if err != nil {
			return nil, err
		}
		return BoolT, nil
	case *Foreach:
		rt, err := c.relOf(e.Rel, e.exprLine())
		if err != nil {
			return nil, err
		}
		c.push()
		rowSym := &symbol{Name: e.Var, Kind: symLocal, Type: rt.Row()}
		c.bind(rowSym)
		c.out.binders[e] = []*symbol{rowSym}
		_, err = c.seq(e.Body, nil)
		c.pop()
		if err != nil {
			return nil, err
		}
		return OkT, nil
	case *Insert:
		rt, err := c.relOf(e.Rel, e.exprLine())
		if err != nil {
			return nil, err
		}
		tt, err := c.expr(e.Tuple, rt.Row())
		if err != nil {
			return nil, err
		}
		tup, ok := tt.(*TupleT)
		if !ok || len(tup.Fields) != len(rt.Fields) {
			return nil, errf(e.exprLine(), "insert of %s into %s", tt, rt)
		}
		for i := range tup.Fields {
			if !tup.Fields[i].Type.equal(rt.Fields[i].Type) {
				return nil, errf(e.exprLine(), "insert column %d: %s vs %s",
					i, tup.Fields[i].Type, rt.Fields[i].Type)
			}
		}
		return OkT, nil
	case *PrimCall:
		if !c.allowPrim {
			return nil, errf(e.exprLine(), "__prim is reserved for library modules")
		}
		for _, a := range e.Args {
			if _, err := c.expr(a, nil); err != nil {
				return nil, err
			}
		}
		if expect == nil {
			return nil, errf(e.exprLine(), "__prim needs an expected type (annotate the enclosing function)")
		}
		return expect, nil
	default:
		return nil, errf(e.exprLine(), "unexpected expression %T", e)
	}
}

func (c *checker) binary(e *Binary) (Type, error) {
	lt, err := c.expr(e.L, nil)
	if err != nil {
		return nil, err
	}
	rt, err := c.expr(e.R, nil)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "+", "-", "*", "/":
		if lt == IntT && rt == IntT {
			return IntT, nil
		}
		if lt == RealT && rt == RealT {
			return RealT, nil
		}
		if e.Op == "+" && lt == StrT && rt == StrT {
			return StrT, nil
		}
		return nil, errf(e.exprLine(), "%s on %s and %s", e.Op, lt, rt)
	case "%":
		if lt == IntT && rt == IntT {
			return IntT, nil
		}
		return nil, errf(e.exprLine(), "%% on %s and %s", lt, rt)
	case "<", "<=", ">", ">=":
		if lt.equal(rt) && (lt == IntT || lt == RealT || lt == CharT || lt == StrT) {
			return BoolT, nil
		}
		return nil, errf(e.exprLine(), "%s on %s and %s", e.Op, lt, rt)
	case "=", "<>":
		if lt.equal(rt) && isScalar(lt) {
			return BoolT, nil
		}
		return nil, errf(e.exprLine(), "%s on %s and %s", e.Op, lt, rt)
	case "and", "or":
		if lt == BoolT && rt == BoolT {
			return BoolT, nil
		}
		return nil, errf(e.exprLine(), "%s on %s and %s", e.Op, lt, rt)
	}
	return nil, errf(e.exprLine(), "unknown operator %s", e.Op)
}

func (c *checker) assign(e *Assign) (Type, error) {
	vt, err := c.expr(e.Val, nil)
	if err != nil {
		return nil, err
	}
	switch target := e.Target.(type) {
	case *Ident:
		sym, ok := c.resolve(target.Name)
		if !ok {
			return nil, errf(e.exprLine(), "undeclared identifier %s", target.Name)
		}
		if sym.Kind != symMutable {
			return nil, errf(e.exprLine(), "%s is not assignable (declare it with var)", target.Name)
		}
		if !sym.Type.equal(vt) {
			return nil, errf(e.exprLine(), "assigning %s to %s of type %s", vt, target.Name, sym.Type)
		}
		c.out.idents[target] = sym
		c.out.types[target] = sym.Type
		return OkT, nil
	case *Index:
		at, err := c.expr(target.Arr, nil)
		if err != nil {
			return nil, err
		}
		it, err := c.expr(target.I, nil)
		if err != nil {
			return nil, err
		}
		if it != IntT {
			return nil, errf(e.exprLine(), "index must be Int")
		}
		arr, ok := at.(*ArrayT)
		if !ok {
			return nil, errf(e.exprLine(), "assigning into a %s", at)
		}
		if !arr.Elem.equal(vt) {
			return nil, errf(e.exprLine(), "assigning %s into Array(%s)", vt, arr.Elem)
		}
		c.out.types[target] = arr.Elem
		return OkT, nil
	default:
		return nil, errf(e.exprLine(), "bad assignment target %T", e.Target)
	}
}

func (c *checker) caseExpr(e *Case, expect Type) (Type, error) {
	st, err := c.expr(e.Scrut, nil)
	if err != nil {
		return nil, err
	}
	if st != IntT && st != CharT && st != BoolT && st != StrT {
		return nil, errf(e.exprLine(), "case scrutinee must be a discrete scalar, got %s", st)
	}
	var result Type
	for i, tag := range e.Tags {
		switch tag.(type) {
		case *IntLit, *CharLit, *BoolLit, *StrLit:
		default:
			return nil, errf(e.exprLine(), "case tag %d is not a literal", i)
		}
		tt, err := c.expr(tag, nil)
		if err != nil {
			return nil, err
		}
		if !tt.equal(st) {
			return nil, errf(e.exprLine(), "case tag %d has type %s, scrutinee %s", i, tt, st)
		}
		bt, err := c.seq(e.Branches[i], expect)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = bt
		} else if !result.equal(bt) {
			result = OkT
		}
	}
	if e.Else != nil {
		et, err := c.seq(e.Else, expect)
		if err != nil {
			return nil, err
		}
		if result == nil || !result.equal(et) {
			result = OkT
		}
	} else if !boolExhaustive(st, e.Tags) {
		// Without an else the fall-through raises; using the value would
		// be unsound unless the case is exhaustive (only decidable for
		// booleans) — so the case is Ok-typed.
		result = OkT
	}
	if result == nil {
		result = OkT
	}
	return result, nil
}

// boolExhaustive reports whether a case over a Bool scrutinee covers both
// truth values (the only finitely enumerable scrutinee type).
func boolExhaustive(scrut Type, tags []Expr) bool {
	if scrut != BoolT {
		return false
	}
	var sawTrue, sawFalse bool
	for _, tag := range tags {
		if b, ok := tag.(*BoolLit); ok {
			if b.Val {
				sawTrue = true
			} else {
				sawFalse = true
			}
		}
	}
	return sawTrue && sawFalse
}

// fieldAccess distinguishes module member selection (mod.f) from tuple
// field access (t.x).
func (c *checker) fieldAccess(e *FieldAccess) (Type, error) {
	if id, ok := e.E.(*Ident); ok {
		if _, isLocal := c.resolve(id.Name); !isLocal {
			if sig, isMod := c.sigs[id.Name]; isMod {
				idx := sig.MemberIndex(e.Name)
				if idx < 0 {
					return nil, errf(e.exprLine(), "module %s exports no member %s", id.Name, e.Name)
				}
				acc := &modAccess{Mod: id.Name, Member: e.Name, Index: idx, Type: sig.Members[idx].Type}
				c.out.modAccess[e] = acc
				return acc.Type, nil
			}
		}
	}
	var t Type
	if id, ok := e.E.(*Ident); ok {
		if sym, found := c.resolve(id.Name); found && sym.Kind == symJoinRow {
			// Join row variables bypass the bare-use restriction here.
			c.out.idents[id] = sym
			c.out.types[id] = sym.Type
			t = sym.Type
		}
	}
	if t == nil {
		var err error
		t, err = c.expr(e.E, nil)
		if err != nil {
			return nil, err
		}
	}
	tup, ok := t.(*TupleT)
	if !ok {
		return nil, errf(e.exprLine(), "field access .%s on %s", e.Name, t)
	}
	idx := tup.Index(e.Name)
	if idx < 0 {
		return nil, errf(e.exprLine(), "%s has no field %s", t, e.Name)
	}
	c.out.fieldIdx[e] = idx
	return tup.Fields[idx].Type, nil
}

func (c *checker) call(e *Call) (Type, error) {
	// Builtins: print, count, empty.
	if id, ok := e.Fn.(*Ident); ok {
		if _, shadowed := c.resolve(id.Name); !shadowed {
			switch id.Name {
			case "print":
				if len(e.Args) != 1 {
					return nil, errf(e.exprLine(), "print takes one argument")
				}
				t, err := c.expr(e.Args[0], nil)
				if err != nil {
					return nil, err
				}
				if !isScalar(t) && !t.equal(OkT) {
					return nil, errf(e.exprLine(), "print on %s", t)
				}
				c.out.builtins[e] = "print"
				return OkT, nil
			case "count":
				if len(e.Args) != 1 {
					return nil, errf(e.exprLine(), "count takes one relation")
				}
				if _, err := c.relOf(e.Args[0], e.exprLine()); err != nil {
					return nil, err
				}
				c.out.builtins[e] = "count"
				return IntT, nil
			case "empty":
				if len(e.Args) != 1 {
					return nil, errf(e.exprLine(), "empty takes one relation")
				}
				if _, err := c.relOf(e.Args[0], e.exprLine()); err != nil {
					return nil, err
				}
				c.out.builtins[e] = "empty"
				return BoolT, nil
			case "newArray":
				if len(e.Args) != 2 {
					return nil, errf(e.exprLine(), "newArray takes a size and an initial value")
				}
				nt, err := c.expr(e.Args[0], nil)
				if err != nil {
					return nil, err
				}
				if nt != IntT {
					return nil, errf(e.exprLine(), "newArray size is %s, want Int", nt)
				}
				et, err := c.expr(e.Args[1], nil)
				if err != nil {
					return nil, err
				}
				c.out.builtins[e] = "newArray"
				return &ArrayT{Elem: et}, nil
			case "len":
				if len(e.Args) != 1 {
					return nil, errf(e.exprLine(), "len takes one argument")
				}
				at, err := c.expr(e.Args[0], nil)
				if err != nil {
					return nil, err
				}
				switch at.(type) {
				case *ArrayT:
				default:
					if at != StrT {
						return nil, errf(e.exprLine(), "len on %s", at)
					}
				}
				c.out.builtins[e] = "len"
				return IntT, nil
			}
		}
	}
	ft, err := c.expr(e.Fn, nil)
	if err != nil {
		return nil, err
	}
	fun, ok := ft.(*FunT)
	if !ok {
		return nil, errf(e.exprLine(), "calling a %s", ft)
	}
	if len(e.Args) != len(fun.Params) {
		return nil, errf(e.exprLine(), "call with %d arguments, want %d", len(e.Args), len(fun.Params))
	}
	for i, a := range e.Args {
		at, err := c.expr(a, fun.Params[i])
		if err != nil {
			return nil, err
		}
		if !at.equal(fun.Params[i]) {
			return nil, errf(e.exprLine(), "argument %d has type %s, want %s", i+1, at, fun.Params[i])
		}
	}
	return fun.Ret, nil
}

func (c *checker) relOf(e Expr, line int) (*RelT, error) {
	t, err := c.expr(e, nil)
	if err != nil {
		return nil, err
	}
	rt, ok := t.(*RelT)
	if !ok {
		return nil, errf(line, "expected a relation, got %s", t)
	}
	return rt, nil
}

func (c *checker) queryScope(node any, v string, rel, pred Expr, line int) (*RelT, Type, error) {
	rt, err := c.relOf(rel, line)
	if err != nil {
		return nil, nil, err
	}
	c.push()
	defer c.pop()
	rowSym := &symbol{Name: v, Kind: symLocal, Type: rt.Row()}
	c.bind(rowSym)
	c.out.binders[node] = []*symbol{rowSym}
	if pred != nil {
		pt, err := c.expr(pred, BoolT)
		if err != nil {
			return nil, nil, err
		}
		if pt != BoolT {
			return nil, nil, errf(line, "query predicate is %s, want Bool", pt)
		}
	}
	return rt, nil, nil
}

func (c *checker) selectExpr(e *Select) (Type, error) {
	rt, err := c.relOf(e.Rel, e.exprLine())
	if err != nil {
		return nil, err
	}
	c.push()
	defer c.pop()
	kind := symLocal
	if e.Var2 != "" {
		// θ-join: both row variables are restricted to field accesses so
		// that the code generator can address them as offsets into the
		// concatenated row.
		kind = symJoinRow
	}
	rowSym := &symbol{Name: e.Var, Kind: kind, Type: rt.Row()}
	c.bind(rowSym)
	c.out.binders[e] = []*symbol{rowSym}
	if e.Var2 != "" {
		rt2, err := c.relOf(e.Rel2, e.exprLine())
		if err != nil {
			return nil, err
		}
		if e.Var2 == e.Var {
			return nil, errf(e.exprLine(), "join bindings must use distinct names")
		}
		rowSym2 := &symbol{Name: e.Var2, Kind: symJoinRow, Type: rt2.Row()}
		c.bind(rowSym2)
		c.out.binders[e] = append(c.out.binders[e], rowSym2)
	}
	if e.Pred != nil {
		pt, err := c.expr(e.Pred, BoolT)
		if err != nil {
			return nil, err
		}
		if pt != BoolT {
			return nil, errf(e.exprLine(), "where predicate is %s, want Bool", pt)
		}
	}
	tt, err := c.expr(e.Target, nil)
	if err != nil {
		return nil, err
	}
	switch tt := tt.(type) {
	case *TupleT:
		fields := make([]Field, len(tt.Fields))
		for i, f := range tt.Fields {
			if !isScalar(f.Type) {
				return nil, errf(e.exprLine(), "select target field %s must be scalar, got %s", f.Name, f.Type)
			}
			fields[i] = f
		}
		return &RelT{Fields: fields}, nil
	default:
		if isScalar(tt) {
			return &RelT{Fields: []Field{{Name: "it", Type: tt}}}, nil
		}
		return nil, errf(e.exprLine(), "select target must be a tuple or scalar, got %s", tt)
	}
}
