package tl

// This file defines the TL abstract syntax tree and the type
// representation used by the checker.

// Type is a TL type.
type Type interface {
	String() string
	equal(Type) bool
}

// Scalar types are singletons.
type scalarType struct{ name string }

func (t *scalarType) String() string { return t.name }
func (t *scalarType) equal(o Type) bool {
	s, ok := o.(*scalarType)
	return ok && s.name == t.name
}

// The scalar types.
var (
	IntT  Type = &scalarType{"Int"}
	RealT Type = &scalarType{"Real"}
	BoolT Type = &scalarType{"Bool"}
	CharT Type = &scalarType{"Char"}
	StrT  Type = &scalarType{"String"}
	OkT   Type = &scalarType{"Ok"}
)

// ArrayT is Array(Elem).
type ArrayT struct{ Elem Type }

func (t *ArrayT) String() string { return "Array(" + t.Elem.String() + ")" }
func (t *ArrayT) equal(o Type) bool {
	a, ok := o.(*ArrayT)
	return ok && t.Elem.equal(a.Elem)
}

// Field is a named field of a tuple or relation type.
type Field struct {
	Name string
	Type Type
}

// TupleT is Tuple f₁ : T₁, … end.
type TupleT struct{ Fields []Field }

// String renders the tuple type.
func (t *TupleT) String() string {
	s := "Tuple("
	for i, f := range t.Fields {
		if i > 0 {
			s += ", "
		}
		s += f.Name + ": " + f.Type.String()
	}
	return s + ")"
}

func (t *TupleT) equal(o Type) bool {
	u, ok := o.(*TupleT)
	if !ok || len(t.Fields) != len(u.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.equal(u.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Index returns the position of a field, or -1.
func (t *TupleT) Index(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// RelT is Rel(f₁ : T₁, …): a relation whose rows are flat tuples of
// scalar fields.
type RelT struct{ Fields []Field }

// String renders the relation type.
func (t *RelT) String() string {
	s := "Rel("
	for i, f := range t.Fields {
		if i > 0 {
			s += ", "
		}
		s += f.Name + ": " + f.Type.String()
	}
	return s + ")"
}

func (t *RelT) equal(o Type) bool {
	u, ok := o.(*RelT)
	if !ok || len(t.Fields) != len(u.Fields) {
		return false
	}
	for i := range t.Fields {
		if t.Fields[i].Name != u.Fields[i].Name || !t.Fields[i].Type.equal(u.Fields[i].Type) {
			return false
		}
	}
	return true
}

// Row returns the tuple type of one row.
func (t *RelT) Row() *TupleT { return &TupleT{Fields: t.Fields} }

// Index returns the position of a column, or -1.
func (t *RelT) Index(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// NamedT is an unresolved type reference (T or mod.T); the checker
// replaces it with the declared type.
type NamedT struct {
	Mod, Name string
}

// String renders the reference.
func (t *NamedT) String() string {
	if t.Mod != "" {
		return t.Mod + "." + t.Name
	}
	return t.Name
}

func (t *NamedT) equal(o Type) bool {
	u, ok := o.(*NamedT)
	return ok && t.Mod == u.Mod && t.Name == u.Name
}

// FunT is Fun(P₁, …) : R.
type FunT struct {
	Params []Type
	Ret    Type
}

// String renders the function type.
func (t *FunT) String() string {
	s := "Fun("
	for i, p := range t.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + "): " + t.Ret.String()
}

func (t *FunT) equal(o Type) bool {
	u, ok := o.(*FunT)
	if !ok || len(t.Params) != len(u.Params) || !t.Ret.equal(u.Ret) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].equal(u.Params[i]) {
			return false
		}
	}
	return true
}

// Expr is a TL expression.
type Expr interface{ exprLine() int }

type exprBase struct{ Line int }

func (e exprBase) exprLine() int { return e.Line }

// Literal expressions.
type (
	// IntLit is an integer literal.
	IntLit struct {
		exprBase
		Val int64
	}
	// RealLit is a real literal.
	RealLit struct {
		exprBase
		Val float64
	}
	// BoolLit is true or false.
	BoolLit struct {
		exprBase
		Val bool
	}
	// CharLit is a character literal.
	CharLit struct {
		exprBase
		Val byte
	}
	// StrLit is a string literal.
	StrLit struct {
		exprBase
		Val string
	}
	// OkLit is the unit literal ok.
	OkLit struct{ exprBase }
)

// Ident references a local binding, a module-level declaration, or a
// top-level rel declaration.
type Ident struct {
	exprBase
	Name string
}

// ModRef is mod.name — a reference to an exported member of another
// module.
type ModRef struct {
	exprBase
	Mod, Name string
}

// Call applies a function expression to arguments.
type Call struct {
	exprBase
	Fn   Expr
	Args []Expr
}

// Binary is a binary operator expression (arithmetic, comparison,
// logical and/or with short-circuit semantics).
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Unary is -e or not e.
type Unary struct {
	exprBase
	Op string
	E  Expr
}

// If is if C then A [elsif…] [else B] end.
type If struct {
	exprBase
	Cond       Expr
	Then, Else []Expr // Else nil for one-armed if (result Ok)
}

// While is while C do body end.
type While struct {
	exprBase
	Cond Expr
	Body []Expr
}

// For is for i = Lo upto|downto Hi do body end.
type For struct {
	exprBase
	Var    string
	Lo, Hi Expr
	Down   bool
	Body   []Expr
}

// Case is case E of v₁ => … | v₂ => … else … end; tags are literals.
type Case struct {
	exprBase
	Scrut    Expr
	Tags     []Expr // literal expressions
	Branches [][]Expr
	Else     []Expr // nil if absent
}

// Try is try body handle x => handler end.
type Try struct {
	exprBase
	Body    []Expr
	ExcVar  string
	Handler []Expr
}

// Raise is raise E.
type Raise struct {
	exprBase
	E Expr
}

// Block is begin e₁; …; eₙ end; its value is the last expression's.
type Block struct {
	exprBase
	Body []Expr
}

// Let is a local immutable binding (plain or function form).
type Let struct {
	exprBase
	Name   string
	Type   Type // nil: inferred
	Params []Param
	Ret    Type // function form only
	IsFun  bool
	Init   Expr   // plain form
	Body   []Expr // function form
}

// VarDecl is a local mutable binding var x := e.
type VarDecl struct {
	exprBase
	Name string
	Type Type // nil: inferred
	Init Expr
}

// Assign is x := e (x must be a var) or a[i] := e.
type Assign struct {
	exprBase
	Target Expr // Ident or Index
	Val    Expr
}

// Index is a[i].
type Index struct {
	exprBase
	Arr, I Expr
}

// FieldAccess is t.name on a tuple value.
type FieldAccess struct {
	exprBase
	E    Expr
	Name string
}

// TupleLit is tuple e₁, …, eₙ end; fields take the names of variable
// expressions (paper §4.1 example: tuple x y end) and _i otherwise.
type TupleLit struct {
	exprBase
	Elems []Expr
}

// FunLit is fun(params) : T => expr.
type FunLit struct {
	exprBase
	Params []Param
	Ret    Type
	Body   []Expr
}

// Select is select Target from X in Rel [, Y in Rel2] [where Pred] end.
// With a second binding the query is a θ-join; the row variables may then
// only be used through field accesses (x.f), never as whole tuples.
type Select struct {
	exprBase
	Target Expr
	Var    string
	Rel    Expr
	Var2   string // join binding; empty for single-relation selects
	Rel2   Expr
	Pred   Expr // nil if absent
}

// Exists is exists x in Rel where Pred end.
type Exists struct {
	exprBase
	Var  string
	Rel  Expr
	Pred Expr
}

// Foreach is foreach x in Rel do body end.
type Foreach struct {
	exprBase
	Var  string
	Rel  Expr
	Body []Expr
}

// Insert is insert E into Rel.
type Insert struct {
	exprBase
	Tuple Expr
	Rel   Expr
}

// Builtin is one of the built-in pseudo-functions (count, empty).
type Builtin struct {
	exprBase
	Name string
	Args []Expr
}

// PrimCall is __prim "name" (args…), available to library modules only.
type PrimCall struct {
	exprBase
	Prim string
	Args []Expr
}

// Param is one formal parameter.
type Param struct {
	Name string
	Type Type
}

// Decl is a top-level or module-level declaration.
type Decl interface{ declLine() int }

type declBase struct{ Line int }

func (d declBase) declLine() int { return d.Line }

// FunDecl is let f(params) : T = body.
type FunDecl struct {
	declBase
	Name   string
	Params []Param
	Ret    Type
	Body   []Expr
}

// ConstDecl is a module-level let name = expr.
type ConstDecl struct {
	declBase
	Name string
	Type Type // nil: inferred
	Init Expr
}

// TypeDecl is type T = ….
type TypeDecl struct {
	declBase
	Name string
	Type Type
}

// RelDecl is rel name : Rel(...) — a named persistent relation whose
// binding to a store object is established at link time (the runtime
// binding knowledge of paper §4.2).
type RelDecl struct {
	declBase
	Name string
	Type *RelT
}

// Module is one compilation unit.
type Module struct {
	Name    string
	Line    int
	Exports []string
	Decls   []Decl
}
