package tl

import (
	"fmt"

	"tycoon/internal/tml"
)

// This file implements the CPS code generator: checked TL functions
// become TML proc abstractions λ(v₁…vₙ ce cc) app.
//
// Exceptions are expressed purely by continuation passing (paper §2.3):
// every function threads an exception continuation ce, try installs a new
// one, raise invokes the current one, and primitives that can fail (÷0,
// overflow) receive it as their exception continuation.
//
// The crucial policy is ScalarMode. In LibCalls mode (the Tycoon system's
// actual strategy, §6) every source-level integer, real, string and array
// operation compiles into a fetch of the operation from a dynamically
// bound library module followed by an indirect call:
//
//	a + b   ⇒   ([] int_mod ADD cont(f) (f a b ce cont(t) …))
//
// so a local, statically optimized function still pays the abstraction
// barrier on every operation — which is exactly why local optimization
// buys nothing (E1) and runtime re-optimization against the linked module
// values more than doubles performance (E2). DirectPrims mode compiles
// straight to the primitives and serves as the ablation upper bound.
// Compiler-generated control arithmetic (loop counters, cell access,
// tuple field fetch) always uses direct primitives, like the paper's
// Fig. 2 loop example.

// ScalarMode selects the compilation strategy for scalar and array
// operations.
type ScalarMode uint8

// The scalar modes.
const (
	// LibCalls factors operations into dynamically bound library modules.
	LibCalls ScalarMode = iota
	// DirectPrims compiles operations to TML primitives directly.
	DirectPrims
)

// FreeKind classifies the free variables of a compiled function, i.e. the
// entries of its R-value binding table (paper §4.1).
type FreeKind uint8

// The free variable kinds.
const (
	// FreeModule binds a module value (its export vector).
	FreeModule FreeKind = iota
	// FreeDecl binds a sibling declaration of the same module.
	FreeDecl
	// FreeRel binds a named persistent relation.
	FreeRel
)

// FreeRef is one required binding of a compiled function.
type FreeRef struct {
	Var  *tml.Var
	Kind FreeKind
	Name string
}

// FuncUnit is one compiled function: a closed TML proc abstraction plus
// the bindings its free variables require at link time.
type FuncUnit struct {
	Name     string
	Abs      *tml.Abs
	Free     []*FreeRef
	Type     *FunT
	Exported bool
}

// ConstUnit is one module-level constant: a nullary proc evaluated at
// installation time.
type ConstUnit struct {
	Name     string
	Abs      *tml.Abs // proc(ce cc) computing the value
	Free     []*FreeRef
	Type     Type
	Exported bool
}

// ModuleUnit is the output of compiling one module.
type ModuleUnit struct {
	Name   string
	Sig    *ModuleSig
	Funcs  []*FuncUnit
	Consts []*ConstUnit
	Rels   []*RelDecl
}

// Compiler compiles TL modules against previously compiled signatures.
type Compiler struct {
	// Sigs holds the signatures of modules this unit may import.
	Sigs map[string]*ModuleSig
	// Mode selects the scalar compilation strategy (see ScalarMode).
	Mode ScalarMode
	// AllowPrim permits __prim (library modules only).
	AllowPrim bool
}

// NewCompiler returns a compiler in the paper's LibCalls mode with no
// known modules.
func NewCompiler() *Compiler {
	return &Compiler{Sigs: make(map[string]*ModuleSig)}
}

// Compile parses, checks and compiles one module, and registers its
// signature for subsequent units.
func (c *Compiler) Compile(src string) (*ModuleUnit, error) {
	ast, err := ParseModule(src)
	if err != nil {
		return nil, err
	}
	if _, dup := c.Sigs[ast.Name]; dup {
		return nil, errf(ast.Line, "module %s compiled twice", ast.Name)
	}
	chk, err := Check(ast, c.Sigs, c.AllowPrim)
	if err != nil {
		return nil, err
	}
	unit := &ModuleUnit{Name: ast.Name, Sig: chk.sig}
	exported := make(map[string]bool, len(ast.Exports))
	for _, e := range ast.Exports {
		exported[e] = true
	}
	for _, d := range ast.Decls {
		switch d := d.(type) {
		case *FunDecl:
			fu, err := c.compileFun(chk, d)
			if err != nil {
				return nil, err
			}
			fu.Exported = exported[d.Name]
			unit.Funcs = append(unit.Funcs, fu)
		case *ConstDecl:
			cu, err := c.compileConst(chk, d)
			if err != nil {
				return nil, err
			}
			cu.Exported = exported[d.Name]
			unit.Consts = append(unit.Consts, cu)
		case *RelDecl:
			unit.Rels = append(unit.Rels, d)
		}
	}
	c.Sigs[ast.Name] = chk.sig
	return unit, nil
}

// kont receives the TML value of a compiled subexpression and produces
// the application consuming it.
type kont func(tml.Value) (*tml.App, error)

// fnCg is the per-function code generation state.
type fnCg struct {
	c    *Compiler
	chk  *checked
	g    *tml.VarGen
	ce   tml.Value // current exception continuation
	env  map[*symbol]tml.Value
	free map[string]*FreeRef
	// order of first use, so binding tables are deterministic
	freeList []*FreeRef
	// rowOffset addresses join row variables as offsets into the
	// concatenated row the join primitive passes to its predicate.
	rowOffset map[*symbol]int
}

func (c *Compiler) newFnCg(chk *checked) *fnCg {
	return &fnCg{
		c:         c,
		chk:       chk,
		g:         tml.NewVarGen(),
		env:       make(map[*symbol]tml.Value),
		free:      make(map[string]*FreeRef),
		rowOffset: make(map[*symbol]int),
	}
}

func (c *Compiler) compileFun(chk *checked, d *FunDecl) (*FuncUnit, error) {
	f := c.newFnCg(chk)
	params := make([]*tml.Var, 0, len(d.Params)+2)
	for _, p := range d.Params {
		v := f.g.Fresh(p.Name)
		params = append(params, v)
	}
	ce := f.g.FreshCont("ce")
	cc := f.g.FreshCont("cc")
	params = append(params, ce, cc)
	f.ce = ce
	for i, sym := range chk.binders[d] {
		f.env[sym] = params[i]
	}
	body, err := f.seq(d.Body, func(v tml.Value) (*tml.App, error) {
		return tml.NewApp(cc, v), nil
	})
	if err != nil {
		return nil, fmt.Errorf("tl: function %s: %w", d.Name, err)
	}
	return &FuncUnit{
		Name: d.Name,
		Abs:  &tml.Abs{Params: params, Body: body},
		Free: f.freeList,
		Type: &FunT{Params: paramTypes(d.Params), Ret: d.Ret},
	}, nil
}

func (c *Compiler) compileConst(chk *checked, d *ConstDecl) (*ConstUnit, error) {
	f := c.newFnCg(chk)
	ce := f.g.FreshCont("ce")
	cc := f.g.FreshCont("cc")
	f.ce = ce
	body, err := f.expr(d.Init, func(v tml.Value) (*tml.App, error) {
		return tml.NewApp(cc, v), nil
	})
	if err != nil {
		return nil, fmt.Errorf("tl: constant %s: %w", d.Name, err)
	}
	return &ConstUnit{
		Name: d.Name,
		Abs:  &tml.Abs{Params: []*tml.Var{ce, cc}, Body: body},
		Free: f.freeList,
		Type: d.Type,
	}, nil
}

func paramTypes(ps []Param) []Type {
	out := make([]Type, len(ps))
	for i, p := range ps {
		out[i] = p.Type
	}
	return out
}
