package tl

import (
	"fmt"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// This file implements the CPS expression compiler. Every compile method
// takes a continuation function k that receives the TML value of the
// subexpression and produces the application consuming it — the classic
// higher-order one-pass CPS transform.

// unit is the TML unit literal shared by the generator.
func unitVal() tml.Value { return tml.Unit() }

// freeVar interns a required binding and returns its TML variable.
func (f *fnCg) freeVar(kind FreeKind, name string) *tml.Var {
	key := fmt.Sprintf("%d:%s", kind, name)
	if fr, ok := f.free[key]; ok {
		return fr.Var
	}
	fr := &FreeRef{Var: f.g.Fresh(name), Kind: kind, Name: name}
	f.free[key] = fr
	f.freeList = append(f.freeList, fr)
	return fr.Var
}

// join introduces an explicit join continuation so that a value consumer
// k appears exactly once in the output even when control splits
// (conditionals, short-circuit operators, comparisons):
//
//	((λ(j) build(j)) cont(t) k(t))
func (f *fnCg) join(k kont, build func(j tml.Value) (*tml.App, error)) (*tml.App, error) {
	t := f.g.Fresh("t")
	kb, err := k(t)
	if err != nil {
		return nil, err
	}
	jAbs := &tml.Abs{Params: []*tml.Var{t}, Body: kb}
	j := f.g.FreshCont("j")
	body, err := build(j)
	if err != nil {
		return nil, err
	}
	return tml.NewApp(&tml.Abs{Params: []*tml.Var{j}, Body: body}, jAbs), nil
}

// cont1 builds cont(t) k(t).
func (f *fnCg) cont1(name string, k kont) (*tml.Abs, error) {
	t := f.g.Fresh(name)
	kb, err := k(t)
	if err != nil {
		return nil, err
	}
	return &tml.Abs{Params: []*tml.Var{t}, Body: kb}, nil
}

// cont0 builds cont() body.
func cont0(body *tml.App) *tml.Abs { return &tml.Abs{Body: body} }

// seq compiles an expression sequence; intermediate values are discarded
// and k receives the last one.
func (f *fnCg) seq(items []Expr, k kont) (*tml.App, error) {
	if len(items) == 0 {
		return k(unitVal())
	}
	if len(items) == 1 {
		return f.item(items[0], k)
	}
	return f.item(items[0], func(tml.Value) (*tml.App, error) {
		return f.seq(items[1:], k)
	})
}

// item compiles one sequence element, extending the environment for
// binding forms.
func (f *fnCg) item(e Expr, k kont) (*tml.App, error) {
	switch e := e.(type) {
	case *Let:
		if e.IsFun {
			return f.localFun(e, k)
		}
		sym := f.chk.binders[e][0]
		return f.expr(e.Init, func(v tml.Value) (*tml.App, error) {
			if _, isAbs := v.(*tml.Abs); isAbs {
				// An abstraction value needs a real binder: aliasing
				// would duplicate the node at every use, violating the
				// unique binding rule.
				x := f.g.Fresh(e.Name)
				f.env[sym] = x
				rest, err := k(unitVal())
				if err != nil {
					return nil, err
				}
				return tml.NewApp(&tml.Abs{Params: []*tml.Var{x}, Body: rest}, v), nil
			}
			// Atomic values alias for free (constant/copy propagation is
			// built into the encoding).
			f.env[sym] = v
			return k(unitVal())
		})
	case *VarDecl:
		sym := f.chk.binders[e][0]
		return f.expr(e.Init, func(v tml.Value) (*tml.App, error) {
			cell, err := f.cont1("cell", func(cv tml.Value) (*tml.App, error) {
				f.env[sym] = cv
				return k(unitVal())
			})
			if err != nil {
				return nil, err
			}
			// Mutable variables live in a one-slot array (compiler
			// internal: direct primitive).
			return tml.NewApp(tml.NewPrim("array"), v, cell), nil
		})
	default:
		return f.expr(e, k)
	}
}

// localFun compiles a (possibly recursive) local function binding.
func (f *fnCg) localFun(e *Let, k kont) (*tml.App, error) {
	binders := f.chk.binders[e]
	selfSym, paramSyms := binders[0], binders[1:]
	selfVar := f.g.Fresh(e.Name)
	f.env[selfSym] = selfVar
	abs, err := f.procFor(paramSyms, e.Body)
	if err != nil {
		return nil, err
	}
	rest, err := k(unitVal())
	if err != nil {
		return nil, err
	}
	if tml.Count(abs, selfVar) == 0 {
		// Non-recursive: a plain binding the optimizer can inline.
		return tml.NewApp(&tml.Abs{Params: []*tml.Var{selfVar}, Body: rest}, abs), nil
	}
	// Recursive: tie through the Y fixed point combinator (paper §2.3).
	c0 := f.g.FreshCont("c0")
	c := f.g.FreshCont("c")
	knot := tml.NewApp(c, cont0(rest), abs)
	yArg := &tml.Abs{Params: []*tml.Var{c0, selfVar, c}, Body: knot}
	return tml.NewApp(tml.NewPrim("Y"), yArg), nil
}

// procFor compiles a nested procedure with the given parameter symbols.
func (f *fnCg) procFor(paramSyms []*symbol, body []Expr) (*tml.Abs, error) {
	params := make([]*tml.Var, 0, len(paramSyms)+2)
	for _, sym := range paramSyms {
		v := f.g.Fresh(sym.Name)
		f.env[sym] = v
		params = append(params, v)
	}
	ce := f.g.FreshCont("ce")
	cc := f.g.FreshCont("cc")
	params = append(params, ce, cc)
	saved := f.ce
	f.ce = ce
	app, err := f.seq(body, func(v tml.Value) (*tml.App, error) {
		return tml.NewApp(cc, v), nil
	})
	f.ce = saved
	if err != nil {
		return nil, err
	}
	return &tml.Abs{Params: params, Body: app}, nil
}

// exprs compiles a list of expressions left to right.
func (f *fnCg) exprs(es []Expr, k func([]tml.Value) (*tml.App, error)) (*tml.App, error) {
	vals := make([]tml.Value, 0, len(es))
	var step func(i int) (*tml.App, error)
	step = func(i int) (*tml.App, error) {
		if i == len(es) {
			return k(vals)
		}
		return f.expr(es[i], func(v tml.Value) (*tml.App, error) {
			vals = append(vals, v)
			return step(i + 1)
		})
	}
	return step(0)
}

// expr compiles one expression.
func (f *fnCg) expr(e Expr, k kont) (*tml.App, error) {
	switch e := e.(type) {
	case *IntLit:
		return k(tml.Int(e.Val))
	case *RealLit:
		return k(tml.Real(e.Val))
	case *BoolLit:
		return k(tml.Bool(e.Val))
	case *CharLit:
		return k(tml.Char(e.Val))
	case *StrLit:
		return k(tml.Str(e.Val))
	case *OkLit:
		return k(unitVal())
	case *Ident:
		return f.ident(e, k)
	case *Binary:
		return f.binary(e, k)
	case *Unary:
		return f.unary(e, k)
	case *If:
		return f.ifExpr(e, k)
	case *While:
		return f.whileExpr(e, k)
	case *For:
		return f.forExpr(e, k)
	case *Case:
		return f.caseExpr(e, k)
	case *Try:
		return f.tryExpr(e, k)
	case *Raise:
		// Control transfers to the current exception continuation; k is
		// dead code and deliberately dropped.
		return f.expr(e.E, func(v tml.Value) (*tml.App, error) {
			return tml.NewApp(f.ce, v), nil
		})
	case *Block:
		return f.seq(e.Body, k)
	case *Assign:
		return f.assign(e, k)
	case *Index:
		return f.indexRead(e, k)
	case *FieldAccess:
		return f.fieldAccess(e, k)
	case *TupleLit:
		return f.exprs(e.Elems, func(vs []tml.Value) (*tml.App, error) {
			row, err := f.cont1("row", k)
			if err != nil {
				return nil, err
			}
			args := append(append([]tml.Value(nil), vs...), tml.Value(row))
			return tml.NewApp(tml.NewPrim("vector"), args...), nil
		})
	case *FunLit:
		abs, err := f.procFor(f.chk.binders[e], e.Body)
		if err != nil {
			return nil, err
		}
		return k(abs)
	case *Call:
		return f.call(e, k)
	case *Select:
		return f.selectExpr(e, k)
	case *Exists:
		return f.existsExpr(e, k)
	case *Foreach:
		return f.foreachExpr(e, k)
	case *Insert:
		return f.insertExpr(e, k)
	case *PrimCall:
		return f.primCall(e, k)
	default:
		return nil, fmt.Errorf("tl: cannot compile %T", e)
	}
}

func (f *fnCg) ident(e *Ident, k kont) (*tml.App, error) {
	sym, ok := f.chk.idents[e]
	if !ok {
		return nil, fmt.Errorf("tl: unresolved identifier %s", e.Name)
	}
	switch sym.Kind {
	case symLocal:
		v, ok := f.env[sym]
		if !ok {
			return nil, fmt.Errorf("tl: %s has no environment entry", e.Name)
		}
		return k(v)
	case symMutable:
		cell, ok := f.env[sym]
		if !ok {
			return nil, fmt.Errorf("tl: var %s has no cell", e.Name)
		}
		// Mutable variables live in one-slot arrays, and array access is a
		// library operation (paper §6: "even operations on integers and
		// arrays are factored out into dynamically bound libraries").
		if f.c.Mode == LibCalls {
			return f.libCall("array", "get", []tml.Value{cell, tml.Int(0)}, k)
		}
		get, err := f.cont1("t", k)
		if err != nil {
			return nil, err
		}
		return tml.NewApp(tml.NewPrim("[]"), cell, tml.Int(0), get), nil
	case symFun, symConst:
		// Sibling declaration of this module: a free variable bound at
		// link time to the sibling's persistent value.
		return k(f.freeVar(FreeDecl, sym.Name))
	case symRel:
		return k(f.freeVar(FreeRel, sym.Name))
	default:
		return nil, fmt.Errorf("tl: unexpected symbol kind %d for %s", sym.Kind, e.Name)
	}
}

// fieldAccess compiles both module member selection and tuple field
// access.
func (f *fnCg) fieldAccess(e *FieldAccess, k kont) (*tml.App, error) {
	if acc, ok := f.chk.modAccess[e]; ok {
		return f.modMember(acc.Mod, acc.Index, k)
	}
	idx, ok := f.chk.fieldIdx[e]
	if !ok {
		return nil, fmt.Errorf("tl: unresolved field access .%s", e.Name)
	}
	if id, isIdent := e.E.(*Ident); isIdent {
		if sym := f.chk.idents[id]; sym != nil {
			if off, isJoin := f.rowOffset[sym]; isJoin {
				row, ok := f.env[sym]
				if !ok {
					return nil, fmt.Errorf("tl: join row %s has no environment entry", id.Name)
				}
				get, err := f.cont1("t", k)
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("[]"), row, tml.Int(int64(idx+off)), get), nil
			}
		}
	}
	return f.expr(e.E, func(tv tml.Value) (*tml.App, error) {
		get, err := f.cont1("t", k)
		if err != nil {
			return nil, err
		}
		return tml.NewApp(tml.NewPrim("[]"), tv, tml.Int(int64(idx)), get), nil
	})
}

// modMember fetches export #idx from a module value: the abstraction
// barrier of paper §4.1, paid on every access until the reflective
// optimizer folds it away.
func (f *fnCg) modMember(mod string, idx int, k kont) (*tml.App, error) {
	mv := f.freeVar(FreeModule, mod)
	get, err := f.cont1("t", k)
	if err != nil {
		return nil, err
	}
	return tml.NewApp(tml.NewPrim("[]"), mv, tml.Int(int64(idx)), get), nil
}

// libCall fetches a library operation from its module and applies it.
func (f *fnCg) libCall(mod, member string, args []tml.Value, k kont) (*tml.App, error) {
	sig, ok := f.c.Sigs[mod]
	if !ok {
		return nil, fmt.Errorf("tl: library module %s not compiled (compile tyclib first or use DirectPrims)", mod)
	}
	idx := sig.MemberIndex(member)
	if idx < 0 {
		return nil, fmt.Errorf("tl: library module %s has no member %s", mod, member)
	}
	return f.modMember(mod, idx, func(fn tml.Value) (*tml.App, error) {
		ret, err := f.cont1("t", k)
		if err != nil {
			return nil, err
		}
		callArgs := append(append([]tml.Value(nil), args...), f.ce, tml.Value(ret))
		return tml.NewApp(fn, callArgs...), nil
	})
}

// branchBool materialises a boolean from a two-continuation primitive:
// (p args cont()(j true) cont()(j false)).
func (f *fnCg) branchBool(primName string, args []tml.Value, negate bool, k kont) (*tml.App, error) {
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		tBranch := cont0(tml.NewApp(j, tml.Bool(!negate)))
		fBranch := cont0(tml.NewApp(j, tml.Bool(negate)))
		all := append(append([]tml.Value(nil), args...), tml.Value(tBranch), tml.Value(fBranch))
		return tml.NewApp(tml.NewPrim(primName), all...), nil
	})
}

// libOpNames maps TL operators to library member names.
var libOpNames = map[string]string{
	"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
	"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "=": "eq", "<>": "ne",
}

var strLibNames = map[string]string{
	"+": "cat", "=": "eq", "<>": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
}

func (f *fnCg) binary(e *Binary, k kont) (*tml.App, error) {
	switch e.Op {
	case "and":
		// Short-circuit: if L then R else false.
		return f.join(k, func(j tml.Value) (*tml.App, error) {
			return f.expr(e.L, func(lv tml.Value) (*tml.App, error) {
				rApp, err := f.expr(e.R, func(rv tml.Value) (*tml.App, error) {
					return tml.NewApp(j, rv), nil
				})
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("if"), lv,
					cont0(rApp), cont0(tml.NewApp(j, tml.Bool(false)))), nil
			})
		})
	case "or":
		return f.join(k, func(j tml.Value) (*tml.App, error) {
			return f.expr(e.L, func(lv tml.Value) (*tml.App, error) {
				rApp, err := f.expr(e.R, func(rv tml.Value) (*tml.App, error) {
					return tml.NewApp(j, rv), nil
				})
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("if"), lv,
					cont0(tml.NewApp(j, tml.Bool(true))), cont0(rApp)), nil
			})
		})
	}
	lt := f.chk.types[e.L]
	return f.expr(e.L, func(lv tml.Value) (*tml.App, error) {
		return f.expr(e.R, func(rv tml.Value) (*tml.App, error) {
			return f.scalarOp(e.Op, lt, lv, rv, k)
		})
	})
}

// scalarOp compiles one scalar operation according to the ScalarMode.
func (f *fnCg) scalarOp(op string, operand Type, a, b tml.Value, k kont) (*tml.App, error) {
	switch operand {
	case IntT:
		if f.c.Mode == LibCalls {
			return f.libCall("int", libOpNames[op], []tml.Value{a, b}, k)
		}
		switch op {
		case "+", "-", "*", "/", "%":
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim(op), a, b, f.ce, ret), nil
		case "<", "<=", ">", ">=":
			return f.branchBool(op, []tml.Value{a, b}, false, k)
		case "=":
			return f.branchBool("==", []tml.Value{a, b}, false, k)
		case "<>":
			return f.branchBool("==", []tml.Value{a, b}, true, k)
		}
	case RealT:
		if f.c.Mode == LibCalls {
			return f.libCall("real", libOpNames[op], []tml.Value{a, b}, k)
		}
		switch op {
		case "+", "-", "*", "/":
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("r"+op), a, b, f.ce, ret), nil
		case "<", "<=", ">", ">=":
			return f.branchBool("r"+op, []tml.Value{a, b}, false, k)
		case "=":
			return f.branchBool("==", []tml.Value{a, b}, false, k)
		case "<>":
			return f.branchBool("==", []tml.Value{a, b}, true, k)
		}
	case StrT:
		if f.c.Mode == LibCalls {
			if m, ok := strLibNames[op]; ok {
				return f.libCall("str", m, []tml.Value{a, b}, k)
			}
		}
		switch op {
		case "+":
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("s+"), a, b, ret), nil
		case "=":
			return f.branchBool("s=", []tml.Value{a, b}, false, k)
		case "<>":
			return f.branchBool("s=", []tml.Value{a, b}, true, k)
		case "<":
			return f.branchBool("s<", []tml.Value{a, b}, false, k)
		case ">":
			return f.branchBool("s<", []tml.Value{b, a}, false, k)
		case ">=":
			return f.branchBool("s<", []tml.Value{a, b}, true, k)
		case "<=":
			return f.branchBool("s<", []tml.Value{b, a}, true, k)
		}
	case CharT:
		// Character operations are compiler-internal: identity through ==
		// and ordering through char2int + integer comparison.
		switch op {
		case "=":
			return f.branchBool("==", []tml.Value{a, b}, false, k)
		case "<>":
			return f.branchBool("==", []tml.Value{a, b}, true, k)
		case "<", "<=", ">", ">=":
			ai, err := f.cont1("ai", func(av tml.Value) (*tml.App, error) {
				bi, err := f.cont1("bi", func(bv tml.Value) (*tml.App, error) {
					return f.branchBool(op, []tml.Value{av, bv}, false, k)
				})
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("char2int"), b, bi), nil
			})
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("char2int"), a, ai), nil
		}
	case BoolT:
		switch op {
		case "=":
			return f.branchBool("==", []tml.Value{a, b}, false, k)
		case "<>":
			return f.branchBool("==", []tml.Value{a, b}, true, k)
		}
	}
	return nil, fmt.Errorf("tl: no compilation for %s on %s", op, operand)
}

func (f *fnCg) unary(e *Unary, k kont) (*tml.App, error) {
	t := f.chk.types[e.E]
	return f.expr(e.E, func(v tml.Value) (*tml.App, error) {
		switch e.Op {
		case "-":
			if t == IntT {
				if f.c.Mode == LibCalls {
					return f.libCall("int", "neg", []tml.Value{v}, k)
				}
				ret, err := f.cont1("t", k)
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("neg"), v, f.ce, ret), nil
			}
			if f.c.Mode == LibCalls {
				return f.libCall("real", "neg", []tml.Value{v}, k)
			}
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("rneg"), v, ret), nil
		case "not":
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("not"), v, ret), nil
		}
		return nil, fmt.Errorf("tl: unknown unary %s", e.Op)
	})
}

func (f *fnCg) ifExpr(e *If, k kont) (*tml.App, error) {
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		return f.expr(e.Cond, func(cv tml.Value) (*tml.App, error) {
			thenApp, err := f.seq(e.Then, func(v tml.Value) (*tml.App, error) {
				return tml.NewApp(j, v), nil
			})
			if err != nil {
				return nil, err
			}
			var elseApp *tml.App
			if e.Else == nil {
				elseApp = tml.NewApp(j, unitVal())
			} else {
				elseApp, err = f.seq(e.Else, func(v tml.Value) (*tml.App, error) {
					return tml.NewApp(j, v), nil
				})
				if err != nil {
					return nil, err
				}
			}
			return tml.NewApp(tml.NewPrim("if"), cv, cont0(thenApp), cont0(elseApp)), nil
		})
	})
}

func (f *fnCg) whileExpr(e *While, k kont) (*tml.App, error) {
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		c0 := f.g.FreshCont("c0")
		loop := f.g.FreshCont("loop")
		c := f.g.FreshCont("c")
		iter, err := f.expr(e.Cond, func(cv tml.Value) (*tml.App, error) {
			body, err := f.seq(e.Body, func(tml.Value) (*tml.App, error) {
				return tml.NewApp(loop), nil
			})
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("if"), cv,
				cont0(body), cont0(tml.NewApp(j, unitVal()))), nil
		})
		if err != nil {
			return nil, err
		}
		knot := tml.NewApp(c, cont0(tml.NewApp(loop)), cont0(iter))
		yArg := &tml.Abs{Params: []*tml.Var{c0, loop, c}, Body: knot}
		return tml.NewApp(tml.NewPrim("Y"), yArg), nil
	})
}

// forExpr compiles the paper's §2.3 loop shape: the loop head is a
// continuation bound through Y, the counter arithmetic uses direct
// primitives.
func (f *fnCg) forExpr(e *For, k kont) (*tml.App, error) {
	sym := f.chk.binders[e][0]
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		return f.expr(e.Lo, func(lo tml.Value) (*tml.App, error) {
			return f.expr(e.Hi, func(hi tml.Value) (*tml.App, error) {
				c0 := f.g.FreshCont("c0")
				loop := f.g.FreshCont("for")
				c := f.g.FreshCont("c")
				i := f.g.Fresh(e.Var)
				f.env[sym] = i

				cmp, step := ">", "+"
				if e.Down {
					cmp, step = "<", "-"
				}
				body, err := f.seq(e.Body, func(tml.Value) (*tml.App, error) {
					next, err := f.cont1("i", func(iv tml.Value) (*tml.App, error) {
						return tml.NewApp(loop, iv), nil
					})
					if err != nil {
						return nil, err
					}
					return tml.NewApp(tml.NewPrim(step), i, tml.Int(1), f.ce, next), nil
				})
				if err != nil {
					return nil, err
				}
				head := tml.NewApp(tml.NewPrim(cmp), i, hi,
					cont0(tml.NewApp(j, unitVal())), cont0(body))
				loopAbs := &tml.Abs{Params: []*tml.Var{i}, Body: head}
				knot := tml.NewApp(c, cont0(tml.NewApp(loop, lo)), loopAbs)
				yArg := &tml.Abs{Params: []*tml.Var{c0, loop, c}, Body: knot}
				return tml.NewApp(tml.NewPrim("Y"), yArg), nil
			})
		})
	})
}

func (f *fnCg) caseExpr(e *Case, k kont) (*tml.App, error) {
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		return f.expr(e.Scrut, func(sv tml.Value) (*tml.App, error) {
			args := []tml.Value{sv}
			for _, tag := range e.Tags {
				switch tag := tag.(type) {
				case *IntLit:
					args = append(args, tml.Int(tag.Val))
				case *CharLit:
					args = append(args, tml.Char(tag.Val))
				case *BoolLit:
					args = append(args, tml.Bool(tag.Val))
				case *StrLit:
					args = append(args, tml.Str(tag.Val))
				default:
					return nil, fmt.Errorf("tl: case tag %T", tag)
				}
			}
			for _, branch := range e.Branches {
				bApp, err := f.seq(branch, func(v tml.Value) (*tml.App, error) {
					return tml.NewApp(j, v), nil
				})
				if err != nil {
					return nil, err
				}
				args = append(args, cont0(bApp))
			}
			if e.Else != nil {
				eApp, err := f.seq(e.Else, func(v tml.Value) (*tml.App, error) {
					return tml.NewApp(j, v), nil
				})
				if err != nil {
					return nil, err
				}
				args = append(args, cont0(eApp))
			}
			return tml.NewApp(tml.NewPrim("=="), args...), nil
		})
	})
}

// tryExpr installs a handler by rebinding the exception continuation — the
// paper's continuation-passing exception model (§2.3): the old handler is
// stored automatically in the lexical environment.
func (f *fnCg) tryExpr(e *Try, k kont) (*tml.App, error) {
	excSym := f.chk.binders[e][0]
	return f.join(k, func(j tml.Value) (*tml.App, error) {
		x := f.g.Fresh(e.ExcVar)
		f.env[excSym] = x
		hApp, err := f.seq(e.Handler, func(v tml.Value) (*tml.App, error) {
			return tml.NewApp(j, v), nil
		})
		if err != nil {
			return nil, err
		}
		handler := &tml.Abs{Params: []*tml.Var{x}, Body: hApp}

		ce2 := f.g.FreshCont("ce")
		saved := f.ce
		f.ce = ce2
		body, err := f.seq(e.Body, func(v tml.Value) (*tml.App, error) {
			return tml.NewApp(j, v), nil
		})
		f.ce = saved
		if err != nil {
			return nil, err
		}
		return tml.NewApp(&tml.Abs{Params: []*tml.Var{ce2}, Body: body}, handler), nil
	})
}

func (f *fnCg) assign(e *Assign, k kont) (*tml.App, error) {
	switch target := e.Target.(type) {
	case *Ident:
		sym := f.chk.idents[target]
		cell, ok := f.env[sym]
		if !ok {
			return nil, fmt.Errorf("tl: var %s has no cell", target.Name)
		}
		return f.expr(e.Val, func(v tml.Value) (*tml.App, error) {
			if f.c.Mode == LibCalls {
				return f.libCall("array", "set", []tml.Value{cell, tml.Int(0), v},
					func(tml.Value) (*tml.App, error) { return k(unitVal()) })
			}
			done, err := f.cont1("u", func(tml.Value) (*tml.App, error) {
				return k(unitVal())
			})
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("[:=]"), cell, tml.Int(0), v, done), nil
		})
	case *Index:
		return f.expr(target.Arr, func(av tml.Value) (*tml.App, error) {
			return f.expr(target.I, func(iv tml.Value) (*tml.App, error) {
				return f.expr(e.Val, func(v tml.Value) (*tml.App, error) {
					if f.c.Mode == LibCalls {
						return f.libCall("array", "set", []tml.Value{av, iv, v},
							func(tml.Value) (*tml.App, error) { return k(unitVal()) })
					}
					done, err := f.cont1("u", func(tml.Value) (*tml.App, error) {
						return k(unitVal())
					})
					if err != nil {
						return nil, err
					}
					return tml.NewApp(tml.NewPrim("[:=]"), av, iv, v, done), nil
				})
			})
		})
	default:
		return nil, fmt.Errorf("tl: bad assignment target %T", e.Target)
	}
}

func (f *fnCg) indexRead(e *Index, k kont) (*tml.App, error) {
	arrT := f.chk.types[e.Arr]
	return f.expr(e.Arr, func(av tml.Value) (*tml.App, error) {
		return f.expr(e.I, func(iv tml.Value) (*tml.App, error) {
			if arrT == StrT {
				ret, err := f.cont1("t", k)
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("s[]"), av, iv, f.ce, ret), nil
			}
			if f.c.Mode == LibCalls {
				return f.libCall("array", "get", []tml.Value{av, iv}, k)
			}
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("[]"), av, iv, ret), nil
		})
	})
}

func (f *fnCg) call(e *Call, k kont) (*tml.App, error) {
	if b, ok := f.chk.builtins[e]; ok {
		return f.builtin(b, e, k)
	}
	return f.expr(e.Fn, func(fv tml.Value) (*tml.App, error) {
		return f.exprs(e.Args, func(args []tml.Value) (*tml.App, error) {
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			all := append(append([]tml.Value(nil), args...), f.ce, tml.Value(ret))
			return tml.NewApp(fv, all...), nil
		})
	})
}

func (f *fnCg) builtin(name string, e *Call, k kont) (*tml.App, error) {
	switch name {
	case "print":
		return f.expr(e.Args[0], func(v tml.Value) (*tml.App, error) {
			ret, err := f.cont1("u", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("print"), v, ret), nil
		})
	case "count", "empty":
		return f.expr(e.Args[0], func(rv tml.Value) (*tml.App, error) {
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim(name), rv, f.ce, ret), nil
		})
	case "newArray":
		return f.expr(e.Args[0], func(nv tml.Value) (*tml.App, error) {
			return f.expr(e.Args[1], func(iv tml.Value) (*tml.App, error) {
				if f.c.Mode == LibCalls {
					return f.libCall("array", "new", []tml.Value{nv, iv}, k)
				}
				ret, err := f.cont1("a", k)
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("anew"), nv, iv, ret), nil
			})
		})
	case "len":
		argT := f.chk.types[e.Args[0]]
		return f.expr(e.Args[0], func(av tml.Value) (*tml.App, error) {
			if argT == StrT {
				ret, err := f.cont1("n", k)
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("slen"), av, ret), nil
			}
			if f.c.Mode == LibCalls {
				return f.libCall("array", "size", []tml.Value{av}, k)
			}
			ret, err := f.cont1("n", k)
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("size"), av, ret), nil
		})
	default:
		return nil, fmt.Errorf("tl: unknown builtin %s", name)
	}
}

// selectExpr compiles the embedded query into the paper's §4.2 TML shape:
//
//	(select proc(x ce cc)(Pred…) Rel ce cont(tempRel)
//	  (project proc(x ce cc)(Target…) tempRel ce cc))
func (f *fnCg) selectExpr(e *Select, k kont) (*tml.App, error) {
	if e.Var2 != "" {
		return f.joinExpr(e, k)
	}
	rowSym := f.chk.binders[e][0]
	return f.expr(e.Rel, func(rv tml.Value) (*tml.App, error) {
		targetAbs, err := f.queryProc(rowSym, func(cc tml.Value) (*tml.App, error) {
			return f.expr(e.Target, func(tv tml.Value) (*tml.App, error) {
				if _, isTuple := f.chk.types[e.Target].(*TupleT); isTuple {
					return tml.NewApp(cc, tv), nil
				}
				// Scalar target: wrap into a one-column row.
				row, err := f.cont1("row", func(rowv tml.Value) (*tml.App, error) {
					return tml.NewApp(cc, rowv), nil
				})
				if err != nil {
					return nil, err
				}
				return tml.NewApp(tml.NewPrim("vector"), tv, row), nil
			})
		})
		if err != nil {
			return nil, err
		}
		ret, err := f.cont1("res", k)
		if err != nil {
			return nil, err
		}
		if e.Pred == nil {
			return tml.NewApp(tml.NewPrim("project"), targetAbs, rv, f.ce, ret), nil
		}
		predAbs, err := f.queryProc(rowSym, func(cc tml.Value) (*tml.App, error) {
			return f.expr(e.Pred, func(pv tml.Value) (*tml.App, error) {
				return tml.NewApp(cc, pv), nil
			})
		})
		if err != nil {
			return nil, err
		}
		tmp, err := f.cont1("tempRel", func(tmpv tml.Value) (*tml.App, error) {
			return tml.NewApp(tml.NewPrim("project"), targetAbs, tmpv, f.ce, ret), nil
		})
		if err != nil {
			return nil, err
		}
		return tml.NewApp(tml.NewPrim("select"), predAbs, rv, f.ce, tmp), nil
	})
}

// joinExpr compiles select T from x in R, y in S [where P] end into the
// θ-join primitive: the predicate and target receive the concatenated
// row, with the row variables addressed by field offsets.
func (f *fnCg) joinExpr(e *Select, k kont) (*tml.App, error) {
	symX, symY := f.chk.binders[e][0], f.chk.binders[e][1]
	widthX := len(symX.Type.(*TupleT).Fields)
	return f.expr(e.Rel, func(r1 tml.Value) (*tml.App, error) {
		return f.expr(e.Rel2, func(r2 tml.Value) (*tml.App, error) {
			bindRow := func(row *tml.Var) {
				f.env[symX] = row
				f.env[symY] = row
				f.rowOffset[symX] = 0
				f.rowOffset[symY] = widthX
			}
			predAbs, err := f.joinProc(e.Var+e.Var2, bindRow, func(cc tml.Value) (*tml.App, error) {
				if e.Pred == nil {
					return tml.NewApp(cc, tml.Bool(true)), nil
				}
				return f.expr(e.Pred, func(pv tml.Value) (*tml.App, error) {
					return tml.NewApp(cc, pv), nil
				})
			})
			if err != nil {
				return nil, err
			}
			targetAbs, err := f.joinProc(e.Var+e.Var2, bindRow, func(cc tml.Value) (*tml.App, error) {
				return f.expr(e.Target, func(tv tml.Value) (*tml.App, error) {
					if _, isTuple := f.chk.types[e.Target].(*TupleT); isTuple {
						return tml.NewApp(cc, tv), nil
					}
					row, err := f.cont1("row", func(rowv tml.Value) (*tml.App, error) {
						return tml.NewApp(cc, rowv), nil
					})
					if err != nil {
						return nil, err
					}
					return tml.NewApp(tml.NewPrim("vector"), tv, row), nil
				})
			})
			if err != nil {
				return nil, err
			}
			ret, err := f.cont1("res", k)
			if err != nil {
				return nil, err
			}
			tmp, err := f.cont1("tempRel", func(tmpv tml.Value) (*tml.App, error) {
				return tml.NewApp(tml.NewPrim("project"), targetAbs, tmpv, f.ce, ret), nil
			})
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("join"), predAbs, r1, r2, f.ce, tmp), nil
		})
	})
}

// joinProc builds proc(row ce cc) body with the join row bound by bind.
func (f *fnCg) joinProc(name string, bind func(*tml.Var), gen func(cc tml.Value) (*tml.App, error)) (*tml.Abs, error) {
	row := f.g.Fresh(name)
	bind(row)
	ce := f.g.FreshCont("ce")
	cc := f.g.FreshCont("cc")
	saved := f.ce
	f.ce = ce
	body, err := gen(cc)
	f.ce = saved
	if err != nil {
		return nil, err
	}
	return &tml.Abs{Params: []*tml.Var{row, ce, cc}, Body: body}, nil
}

// queryProc builds proc(x ce cc) body where body is produced by gen given
// the normal continuation.
func (f *fnCg) queryProc(rowSym *symbol, gen func(cc tml.Value) (*tml.App, error)) (*tml.Abs, error) {
	x := f.g.Fresh(rowSym.Name)
	f.env[rowSym] = x
	ce := f.g.FreshCont("ce")
	cc := f.g.FreshCont("cc")
	saved := f.ce
	f.ce = ce
	body, err := gen(cc)
	f.ce = saved
	if err != nil {
		return nil, err
	}
	return &tml.Abs{Params: []*tml.Var{x, ce, cc}, Body: body}, nil
}

func (f *fnCg) existsExpr(e *Exists, k kont) (*tml.App, error) {
	rowSym := f.chk.binders[e][0]
	return f.expr(e.Rel, func(rv tml.Value) (*tml.App, error) {
		predAbs, err := f.queryProc(rowSym, func(cc tml.Value) (*tml.App, error) {
			return f.expr(e.Pred, func(pv tml.Value) (*tml.App, error) {
				return tml.NewApp(cc, pv), nil
			})
		})
		if err != nil {
			return nil, err
		}
		ret, err := f.cont1("b", k)
		if err != nil {
			return nil, err
		}
		return tml.NewApp(tml.NewPrim("exists"), predAbs, rv, f.ce, ret), nil
	})
}

func (f *fnCg) foreachExpr(e *Foreach, k kont) (*tml.App, error) {
	rowSym := f.chk.binders[e][0]
	return f.expr(e.Rel, func(rv tml.Value) (*tml.App, error) {
		bodyAbs, err := f.queryProc(rowSym, func(cc tml.Value) (*tml.App, error) {
			return f.seq(e.Body, func(v tml.Value) (*tml.App, error) {
				return tml.NewApp(cc, v), nil
			})
		})
		if err != nil {
			return nil, err
		}
		ret, err := f.cont1("u", func(tml.Value) (*tml.App, error) {
			return k(unitVal())
		})
		if err != nil {
			return nil, err
		}
		return tml.NewApp(tml.NewPrim("foreach"), bodyAbs, rv, f.ce, ret), nil
	})
}

func (f *fnCg) insertExpr(e *Insert, k kont) (*tml.App, error) {
	return f.expr(e.Rel, func(rv tml.Value) (*tml.App, error) {
		return f.expr(e.Tuple, func(tv tml.Value) (*tml.App, error) {
			ret, err := f.cont1("u", func(tml.Value) (*tml.App, error) {
				return k(unitVal())
			})
			if err != nil {
				return nil, err
			}
			return tml.NewApp(tml.NewPrim("rinsert"), rv, tv, f.ce, ret), nil
		})
	})
}

// primCall compiles the __prim escape hatch used by library modules.
func (f *fnCg) primCall(e *PrimCall, k kont) (*tml.App, error) {
	desc, ok := prim.Lookup(e.Prim)
	if !ok {
		return nil, fmt.Errorf("tl: __prim %q is not a registered primitive", e.Prim)
	}
	return f.exprs(e.Args, func(args []tml.Value) (*tml.App, error) {
		if e.Prim == "==" {
			// (== a b): identity test materialised as a boolean.
			if len(args) != 2 {
				return nil, fmt.Errorf("tl: __prim \"==\" takes two arguments")
			}
			return f.branchBool("==", args, false, k)
		}
		switch desc.NConts {
		case 0:
			// Control transfer (raise); the continuation is dead.
			return tml.NewApp(tml.NewPrim(e.Prim), args...), nil
		case 1:
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			all := append(append([]tml.Value(nil), args...), tml.Value(ret))
			return tml.NewApp(tml.NewPrim(e.Prim), all...), nil
		case 2:
			if isBranchPrim(e.Prim) {
				return f.branchBool(e.Prim, args, false, k)
			}
			ret, err := f.cont1("t", k)
			if err != nil {
				return nil, err
			}
			all := append(append([]tml.Value(nil), args...), f.ce, tml.Value(ret))
			return tml.NewApp(tml.NewPrim(e.Prim), all...), nil
		default:
			return nil, fmt.Errorf("tl: __prim %q has a variadic continuation list", e.Prim)
		}
	})
}

// isBranchPrim reports whether a two-continuation primitive branches
// (true/false) rather than following the (ce, cc) convention.
func isBranchPrim(name string) bool {
	switch name {
	case "<", ">", "<=", ">=", "r<", "r>", "r<=", "r>=", "s=", "s<", "if":
		return true
	}
	return false
}
