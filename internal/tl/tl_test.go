package tl

import (
	"strings"
	"testing"

	"tycoon/internal/prim"
	_ "tycoon/internal/relalg" // registers the query primitives
	"tycoon/internal/tml"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`module m -- comment
	let x = 1 + 2.5 'a' '\n' "str" (* block (* nested *) comment *) :=`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{tKeyword, tIdent, tKeyword, tIdent, tPunct, tInt, tPunct, tReal, tChar, tChar, tStr, tPunct, tEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: kind %d, want %d (%q)", i, kinds[i], want[i], toks[i].text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		`"unterminated`,
		`'ab'`,
		`(* open`,
		`'\q'`,
		"\"newline\nin string\"",
		"€",
	}
	for _, src := range bad {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestParseModuleShape(t *testing.T) {
	src := `
module demo export f, T
type T = Tuple x, y : Real end
rel emp : Rel(id : Int, name : String)
let c = 42
let f(a : Int, b : Int) : Int = a + b
end`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" || len(m.Exports) != 2 || len(m.Decls) != 4 {
		t.Fatalf("module = %+v", m)
	}
	if _, ok := m.Decls[0].(*TypeDecl); !ok {
		t.Error("decl 0 should be a type")
	}
	if rd, ok := m.Decls[1].(*RelDecl); !ok || len(rd.Type.Fields) != 2 {
		t.Error("decl 1 should be a 2-column rel")
	}
	fd, ok := m.Decls[3].(*FunDecl)
	if !ok || len(fd.Params) != 2 {
		t.Fatalf("decl 3 = %+v", m.Decls[3])
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `module m let f(a, b, c : Int) : Bool = a + b * c < a - b or a = c and not (a < b) end`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	body := m.Decls[0].(*FunDecl).Body[0]
	or, ok := body.(*Binary)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %#v, want or", body)
	}
	lt, ok := or.L.(*Binary)
	if !ok || lt.Op != "<" {
		t.Fatalf("or.L = %#v, want <", or.L)
	}
	plus, ok := lt.L.(*Binary)
	if !ok || plus.Op != "+" {
		t.Fatalf("<.L = %#v, want +", lt.L)
	}
	if mul, ok := plus.R.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("+.R = %#v, want *", plus.R)
	}
	if and, ok := or.R.(*Binary); !ok || and.Op != "and" {
		t.Fatalf("or.R = %#v, want and", or.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"let f() : Int = 1",                        // no module
		"module m let = 3 end",                     // missing name
		"module m let f( : Int = 1 end",            // bad params
		"module m let f() : Int = if 1 then 2 end", // missing end for module? actually if ok
		"module m rel r : Int end",                 // rel needs Rel type
		"module m let f() : Int = (1 end",
		"module m let f() : Int = case 1 of end",
	}
	for _, src := range bad {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("ParseModule(%q) succeeded", src)
		}
	}
}

func checkModule(t *testing.T, src string, sigs map[string]*ModuleSig) (*checked, error) {
	t.Helper()
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sigs == nil {
		sigs = map[string]*ModuleSig{}
	}
	return Check(m, sigs, false)
}

func TestCheckAccepts(t *testing.T) {
	good := []string{
		`module m let f(a : Int) : Int = a + 1 end`,
		`module m let f(a : Real) : Real = a * 2.0 end`,
		`module m let f(s : String) : Bool = s = "x" end`,
		`module m let f(a : Int) : Int = begin var x := a; x := x + 1; x end end`,
		`module m let f(n : Int) : Int = begin var s := 0; for i = 1 upto n do s := s + i end; s end end`,
		`module m let f(n : Int) : Int = if n < 0 then 0 elsif n < 10 then 1 else 2 end end`,
		`module m let f(c : Char) : Int = case c of 'a' => 1 | 'b' => 2 else 0 end end`,
		`module m let f(n : Int) : Int = try 10 / n handle e => 0 end end`,
		`module m let f() : Array(Int) = newArray(10, 0) end`,
		`module m let f(a : Array(Int)) : Int = a[0] + len(a) end`,
		`module m
		 type P = Tuple x, y : Real end
		 let mk(x : Real, y : Real) : P = tuple x, y end
		 let getx(p : P) : Real = p.x
		 end`,
		`module m
		 rel emp : Rel(id : Int, sal : Int)
		 let q(k : Int) : Rel(id : Int) = select tuple e.id end from e in emp where e.sal > k end
		 let has(k : Int) : Bool = exists e in emp where e.id = k end
		 let tot() : Int = begin var s := 0; foreach e in emp do s := s + e.sal end; s end
		 let add(i : Int, s : Int) : Ok = insert tuple i, s end into emp
		 let n() : Int = count(emp)
		 end`,
		`module m let ap(f : Fun(Int) : Int, x : Int) : Int = f(f(x)) end`,
		`module m let mk() : Fun(Int) : Int = fun(a : Int) : Int => a * 2 end`,
		`module m let f(a : Int) : Ok = print(a) end`,
	}
	for _, src := range good {
		if _, err := checkModule(t, src, nil); err != nil {
			t.Errorf("Check failed for %q: %v", firstLine(src), err)
		}
	}
}

func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i > 0 {
		return s[:i] + "…"
	}
	return s
}

func TestCheckRejects(t *testing.T) {
	bad := []struct{ name, src string }{
		{"type mismatch", `module m let f(a : Int) : Int = a + 1.5 end`},
		{"undeclared", `module m let f() : Int = nope end`},
		{"assign to let", `module m let f(a : Int) : Ok = begin let x = 1; x := 2; ok end end`},
		{"bad condition", `module m let f(a : Int) : Int = if a then 1 else 2 end end`},
		{"wrong arity", `module m let g(a : Int) : Int = a let f() : Int = g(1, 2) end`},
		{"bad return", `module m let f() : Int = "s" end`},
		{"call non-function", `module m let f(a : Int) : Int = a(1) end`},
		{"prim outside lib", `module m let f(a : Int) : Int = __prim "+" (a, a) end`},
		{"unknown field", `module m type P = Tuple x : Real end let f(p : P) : Real = p.z end`},
		{"case tag type", `module m let f(a : Int) : Int = case a of 'x' => 1 else 0 end end`},
		{"insert width", `module m rel r : Rel(a : Int, b : Int) let f() : Ok = insert tuple 1 end into r end`},
		{"export missing", `module m export nope let f() : Int = 1 end`},
		{"duplicate decl", `module m let f() : Int = 1 let f() : Int = 2 end`},
		{"rel col non-scalar", `module m rel r : Rel(a : Array(Int)) end`},
		{"mod on real", `module m let f(a : Real) : Real = a % a end`},
	}
	for _, tt := range bad {
		if _, err := checkModule(t, tt.src, nil); err == nil {
			t.Errorf("%s: Check(%q) succeeded", tt.name, firstLine(tt.src))
		}
	}
}

func TestCheckModuleImports(t *testing.T) {
	sigs := map[string]*ModuleSig{
		"mathx": {
			Name:    "mathx",
			Members: []MemberSig{{Name: "twice", Type: &FunT{Params: []Type{IntT}, Ret: IntT}}},
			Types:   map[string]Type{"T": &TupleT{Fields: []Field{{Name: "v", Type: IntT}}}},
		},
	}
	src := `module m
	let f(a : Int) : Int = mathx.twice(a)
	let g(x : mathx.T) : Int = x.v
	end`
	if _, err := checkModule(t, src, sigs); err != nil {
		t.Fatalf("import check: %v", err)
	}
	// Unknown member.
	if _, err := checkModule(t, `module m let f(a : Int) : Int = mathx.zzz(a) end`, sigs); err == nil {
		t.Error("unknown member accepted")
	}
}

// compileFor compiles a module in the given mode with the standard
// library signatures stubbed in (enough for codegen of lib calls).
func compileFor(t *testing.T, src string, mode ScalarMode) *ModuleUnit {
	t.Helper()
	c := NewCompiler()
	c.Mode = mode
	c.AllowPrim = true
	// Provide minimal library signatures for LibCalls mode.
	for _, lib := range []string{libIntStub, libRealStub, libArrayStub, libStrStub} {
		if _, err := c.Compile(lib); err != nil {
			t.Fatalf("lib stub: %v", err)
		}
	}
	u, err := c.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return u
}

const libIntStub = `module int export add, sub, mul, div, mod, neg, lt, le, gt, ge, eq, ne
let add(a, b : Int) : Int = __prim "+" (a, b)
let sub(a, b : Int) : Int = __prim "-" (a, b)
let mul(a, b : Int) : Int = __prim "*" (a, b)
let div(a, b : Int) : Int = __prim "/" (a, b)
let mod(a, b : Int) : Int = __prim "%" (a, b)
let neg(a : Int) : Int = __prim "neg" (a)
let lt(a, b : Int) : Bool = __prim "<" (a, b)
let le(a, b : Int) : Bool = __prim "<=" (a, b)
let gt(a, b : Int) : Bool = __prim ">" (a, b)
let ge(a, b : Int) : Bool = __prim ">=" (a, b)
let eq(a, b : Int) : Bool = __prim "==" (a, b)
let ne(a, b : Int) : Bool = if __prim "==" (a, b) then false else true end
end`

const libRealStub = `module real export add, sub, mul, div, neg, lt, le, gt, ge, eq, ne
let add(a, b : Real) : Real = __prim "r+" (a, b)
let sub(a, b : Real) : Real = __prim "r-" (a, b)
let mul(a, b : Real) : Real = __prim "r*" (a, b)
let div(a, b : Real) : Real = __prim "r/" (a, b)
let neg(a : Real) : Real = __prim "rneg" (a)
let lt(a, b : Real) : Bool = __prim "r<" (a, b)
let le(a, b : Real) : Bool = __prim "r<=" (a, b)
let gt(a, b : Real) : Bool = __prim "r>" (a, b)
let ge(a, b : Real) : Bool = __prim "r>=" (a, b)
let eq(a, b : Real) : Bool = __prim "==" (a, b)
let ne(a, b : Real) : Bool = if __prim "==" (a, b) then false else true end
end`

const libArrayStub = `module array export new, get, set, size
let new(n : Int, init : Int) : Array(Int) = __prim "anew" (n, init)
let get(a : Array(Int), i : Int) : Int = __prim "[]" (a, i)
let set(a : Array(Int), i : Int, v : Int) : Ok = __prim "[:=]" (a, i, v)
let size(a : Array(Int)) : Int = __prim "size" (a)
end`

const libStrStub = `module str export cat, eq, ne, lt, le, gt, ge
let cat(a, b : String) : String = __prim "s+" (a, b)
let eq(a, b : String) : Bool = __prim "s=" (a, b)
let ne(a, b : String) : Bool = if __prim "s=" (a, b) then false else true end
let lt(a, b : String) : Bool = __prim "s<" (a, b)
let gt(a, b : String) : Bool = __prim "s<" (b, a)
let ge(a, b : String) : Bool = if __prim "s<" (a, b) then false else true end
let le(a, b : String) : Bool = if __prim "s<" (b, a) then false else true end
end`

func TestCodegenProducesWellFormedTML(t *testing.T) {
	src := `module demo
	rel emp : Rel(id : Int, sal : Int)
	let fact(n : Int) : Int = if n < 2 then 1 else n * fact(n - 1) end
	let sum(n : Int) : Int = begin var s := 0; for i = 1 upto n do s := s + i end; s end
	let sort(a : Array(Int)) : Ok =
	  begin
	    for i = 1 upto len(a) - 1 do
	      var j := i;
	      while j > 0 and a[j - 1] > a[j] do
	        let tmp = a[j];
	        a[j] := a[j - 1];
	        a[j - 1] := tmp;
	        j := j - 1
	      end
	    end
	  end
	let q(k : Int) : Int = count(select tuple e.id end from e in emp where e.sal > k end)
	let guard(n : Int) : Int = try 100 / n handle ex => 0 end
	let pick(c : Char) : Int = case c of 'a' => 1 | 'b' => 2 else 0 end
	let hof(f : Fun(Int) : Int, x : Int) : Int = f(f(x))
	let mk(d : Int) : Fun(Int) : Int = fun(a : Int) : Int => a + d
	end`
	for _, mode := range []ScalarMode{LibCalls, DirectPrims} {
		unit := compileFor(t, src, mode)
		if len(unit.Funcs) != 8 {
			t.Fatalf("mode %d: %d functions", mode, len(unit.Funcs))
		}
		for _, fu := range unit.Funcs {
			var allow []*tml.Var
			for _, fr := range fu.Free {
				allow = append(allow, fr.Var)
			}
			err := tml.Check(fu.Abs, tml.CheckOpts{Signatures: prim.Signatures, AllowFree: allow})
			if err != nil {
				t.Errorf("mode %d: %s ill-formed: %v\n%s", mode, fu.Name, err, tml.Print(fu.Abs))
			}
		}
	}
}

func TestCodegenFreeRefs(t *testing.T) {
	src := `module demo
	rel emp : Rel(id : Int, sal : Int)
	let helper(a : Int) : Int = a
	let f(a : Int) : Int = helper(a) + count(emp)
	end`
	unit := compileFor(t, src, LibCalls)
	var f *FuncUnit
	for _, fu := range unit.Funcs {
		if fu.Name == "f" {
			f = fu
		}
	}
	kinds := map[FreeKind][]string{}
	for _, fr := range f.Free {
		kinds[fr.Kind] = append(kinds[fr.Kind], fr.Name)
	}
	if len(kinds[FreeDecl]) != 1 || kinds[FreeDecl][0] != "helper" {
		t.Errorf("FreeDecl = %v, want [helper]", kinds[FreeDecl])
	}
	if len(kinds[FreeRel]) != 1 || kinds[FreeRel][0] != "emp" {
		t.Errorf("FreeRel = %v, want [emp]", kinds[FreeRel])
	}
	if len(kinds[FreeModule]) == 0 {
		t.Errorf("expected a module binding for the int library, got %v", f.Free)
	}
}

func TestCodegenModesDiffer(t *testing.T) {
	src := `module demo let f(a : Int) : Int = a + a * a end`
	lib := compileFor(t, src, LibCalls)
	direct := compileFor(t, src, DirectPrims)
	libStr := tml.Print(lib.Funcs[0].Abs)
	directStr := tml.Print(direct.Funcs[0].Abs)
	if !strings.Contains(libStr, "[]") {
		t.Errorf("LibCalls mode should fetch operations from modules:\n%s", libStr)
	}
	if strings.Contains(directStr, "[]") {
		t.Errorf("DirectPrims mode should not fetch from modules:\n%s", directStr)
	}
	if !strings.Contains(directStr, "(+") && !strings.Contains(directStr, "(*") {
		t.Errorf("DirectPrims mode should use primitives:\n%s", directStr)
	}
}

func TestCodegenSelectShape(t *testing.T) {
	// The §4.2 shape: (select pred Rel ce cont(tempRel) (project …)).
	src := `module demo
	rel emp : Rel(id : Int, sal : Int)
	let q(k : Int) : Rel(id : Int) = select tuple e.id end from e in emp where e.sal > k end
	end`
	unit := compileFor(t, src, DirectPrims)
	s := tml.Print(unit.Funcs[0].Abs)
	if !strings.Contains(s, "(select") || !strings.Contains(s, "(project") {
		t.Errorf("select/project shape missing:\n%s", s)
	}
	if !strings.Contains(s, "tempRel") {
		t.Errorf("temporary relation continuation missing:\n%s", s)
	}
}

func TestTypeStrings(t *testing.T) {
	types := []Type{
		IntT, RealT, BoolT, CharT, StrT, OkT,
		&ArrayT{Elem: IntT},
		&TupleT{Fields: []Field{{Name: "x", Type: RealT}}},
		&RelT{Fields: []Field{{Name: "id", Type: IntT}}},
		&FunT{Params: []Type{IntT}, Ret: BoolT},
		&NamedT{Mod: "m", Name: "T"},
	}
	seen := map[string]bool{}
	for _, ty := range types {
		s := ty.String()
		if s == "" || seen[s] {
			t.Errorf("bad or duplicate type string %q", s)
		}
		seen[s] = true
		if !ty.equal(ty) {
			t.Errorf("%s not equal to itself", s)
		}
	}
	if IntT.equal(RealT) {
		t.Error("Int = Real")
	}
	if (&ArrayT{Elem: IntT}).equal(&ArrayT{Elem: RealT}) {
		t.Error("Array(Int) = Array(Real)")
	}
}
