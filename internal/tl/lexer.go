// Package tl implements the compiler front end for TL, the Tycoon-style
// database programming language of the paper: lexer, parser, type checker
// and CPS code generator producing TML.
//
// The code generator follows the compilation strategy the paper's
// evaluation depends on (§6): integer, real, boolean, character, string
// and array operations are factored out into dynamically bound library
// modules, so a locally optimized function still performs a module-field
// fetch and an indirect call per scalar operation. Only the reflective
// runtime optimizer (paper §4.1) can see through those bindings.
package tl

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tReal
	tChar
	tStr
	tPunct // operators and delimiters
	tKeyword
)

type token struct {
	kind tokKind
	text string
	ival int64
	rval float64
	line int
}

var keywords = map[string]bool{
	"module": true, "export": true, "import": true, "let": true, "var": true,
	"type": true, "if": true, "then": true, "else": true, "elsif": true,
	"end": true, "while": true, "do": true, "for": true, "upto": true,
	"downto": true, "case": true, "of": true, "try": true, "handle": true,
	"raise": true, "begin": true, "and": true, "or": true, "not": true,
	"true": true, "false": true, "ok": true, "select": true, "from": true,
	"where": true, "exists": true, "foreach": true, "in": true,
	"insert": true, "into": true, "fun": true, "rel": true, "tuple": true,
	"__prim": true,
}

// punctuation, longest first for maximal munch.
var puncts = []string{
	":=", "=>", "<=", ">=", "<>", "(", ")", "[", "]", "{", "}",
	",", ";", ":", ".", "+", "-", "*", "/", "%", "<", ">", "=", "|",
}

// Error is a front-end diagnostic with a source line.
type Error struct {
	Line int
	Msg  string
}

// Error formats the diagnostic.
func (e *Error) Error() string { return fmt.Sprintf("tl: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments run from "--" to end of line and between
// "(*" and "*)".
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(' && i+1 < len(src) && src[i+1] == '*':
			depth := 1
			j := i + 2
			for j < len(src) && depth > 0 {
				switch {
				case src[j] == '\n':
					line++
					j++
				case src[j] == '(' && j+1 < len(src) && src[j+1] == '*':
					depth++
					j += 2
				case src[j] == '*' && j+1 < len(src) && src[j+1] == ')':
					depth--
					j += 2
				default:
					j++
				}
			}
			if depth > 0 {
				return nil, errf(line, "unterminated comment")
			}
			i = j
		case c == '\'':
			if i+2 < len(src) && src[i+1] == '\\' {
				// Escaped character: '\n', '\t', '\\', '\''.
				if i+3 >= len(src) || src[i+3] != '\'' {
					return nil, errf(line, "malformed character literal")
				}
				var ch byte
				switch src[i+2] {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				case '\\':
					ch = '\\'
				case '\'':
					ch = '\''
				case '0':
					ch = 0
				default:
					return nil, errf(line, "unknown escape '\\%c'", src[i+2])
				}
				toks = append(toks, token{kind: tChar, ival: int64(ch), line: line})
				i += 4
			} else if i+2 < len(src) && src[i+2] == '\'' {
				toks = append(toks, token{kind: tChar, ival: int64(src[i+1]), line: line})
				i += 3
			} else {
				return nil, errf(line, "malformed character literal")
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				if src[j] == '\n' {
					return nil, errf(line, "newline in string literal")
				}
				j++
			}
			if j >= len(src) {
				return nil, errf(line, "unterminated string literal")
			}
			s, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, errf(line, "bad string literal: %v", err)
			}
			toks = append(toks, token{kind: tStr, text: s, line: line})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			isReal := false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' && j+1 < len(src) && src[j+1] >= '0' && src[j+1] <= '9' {
					isReal = true
					j++
				} else if (d == 'e' || d == 'E') && isReal {
					j++
					if j < len(src) && (src[j] == '+' || src[j] == '-') {
						j++
					}
				} else {
					break
				}
			}
			text := src[i:j]
			if isReal {
				r, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, errf(line, "bad real literal %q", text)
				}
				toks = append(toks, token{kind: tReal, rval: r, text: text, line: line})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, errf(line, "bad integer literal %q", text)
				}
				toks = append(toks, token{kind: tInt, ival: v, text: text, line: line})
			}
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			word := src[i:j]
			kind := tIdent
			if keywords[word] {
				kind = tKeyword
			}
			toks = append(toks, token{kind: kind, text: word, line: line})
			i = j
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
