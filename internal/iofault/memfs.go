package iofault

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// MemFS is an in-memory filesystem with an explicit durability model, the
// substrate of the store's crash-simulation harness.
//
// Every file has a volatile content (what reads observe) and a durable
// content (what survives a crash): Sync promotes the volatile content to
// durable. Independently, the *name* of a file is durable only once its
// containing directory has been synced — a freshly created or renamed file
// whose directory was never synced vanishes at a crash, exactly like a
// real POSIX filesystem after power loss.
//
// Crash() simulates power loss plus reboot: the namespace reverts to the
// durable one, and each surviving file reverts to its synced content plus
// an arbitrary prefix of its unsynced writes (torn tail) — append-only
// logs see exactly the partial-persistence behaviour they must tolerate.
type MemFS struct {
	mu  sync.Mutex
	inj *Injector
	vol map[string]*inode // volatile namespace
	dur map[string]*inode // durable namespace (dir-synced names)
}

type inode struct {
	data   []byte
	synced []byte
	writes []writeOp // unsynced writes, in order
}

type writeOp struct {
	off int64
	b   []byte
}

// NewMemFS returns an empty in-memory filesystem. A nil injector means no
// faults: all operations succeed (but the durability model still applies).
func NewMemFS(inj *Injector) *MemFS {
	if inj == nil {
		inj = NewInjector(0)
	}
	return &MemFS{
		inj: inj,
		vol: make(map[string]*inode),
		dur: make(map[string]*inode),
	}
}

// Injector returns the fault injector driving this filesystem.
func (fs *MemFS) Injector() *Injector { return fs.inj }

func norm(name string) string { return filepath.Clean(name) }

// OpenFile opens a file with os.OpenFile semantics. Creating or
// truncating counts as one injectable operation; opening an existing file
// for reading is free.
func (fs *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = norm(name)
	ino, ok := fs.vol[name]
	mutates := (!ok && flag&os.O_CREATE != 0) || (ok && flag&os.O_TRUNC != 0)
	if mutates {
		if crash, _ := fs.inj.step(false); crash {
			return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
		}
	} else if fs.inj.Crashed() {
		return nil, fmt.Errorf("open %s: %w", name, ErrCrashed)
	}
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !ok:
		ino = &inode{}
		fs.vol[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.data = nil
		ino.writes = append(ino.writes, writeOp{off: -1}) // truncation marker
	}
	f := &memFile{fs: fs, name: name, ino: ino, flag: flag}
	if flag&os.O_APPEND != 0 {
		f.pos = int64(len(ino.data))
	}
	return f, nil
}

// Rename moves oldpath to newpath in the volatile namespace; the move is
// durable only after SyncDir.
func (fs *MemFS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldpath, newpath = norm(oldpath), norm(newpath)
	if crash, _ := fs.inj.step(false); crash {
		return fmt.Errorf("rename %s: %w", oldpath, ErrCrashed)
	}
	ino, ok := fs.vol[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	fs.vol[newpath] = ino
	delete(fs.vol, oldpath)
	return nil
}

// Remove unlinks a file from the volatile namespace.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name = norm(name)
	if crash, _ := fs.inj.step(false); crash {
		return fmt.Errorf("remove %s: %w", name, ErrCrashed)
	}
	if _, ok := fs.vol[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(fs.vol, name)
	return nil
}

// SyncDir makes the current names under dir durable: creations, renames
// and removals in that directory survive a crash from here on.
func (fs *MemFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if dir == "" {
		dir = "."
	}
	dir = norm(dir)
	if crash, _ := fs.inj.step(false); crash {
		return fmt.Errorf("syncdir %s: %w", dir, ErrCrashed)
	}
	for name := range fs.dur {
		if filepath.Dir(name) == dir {
			if _, ok := fs.vol[name]; !ok {
				delete(fs.dur, name)
			}
		}
	}
	for name, ino := range fs.vol {
		if filepath.Dir(name) == dir {
			fs.dur[name] = ino
		}
	}
	return nil
}

// Crash simulates power loss and reboot. The volatile namespace is
// replaced by the durable one; each surviving file keeps its synced
// content plus an injector-chosen prefix of its unsynced writes, the last
// of which may itself be torn. The injector is disarmed so the filesystem
// can be reopened and inspected.
func (fs *MemFS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.inj.CrashAt(-1)
	vol := make(map[string]*inode, len(fs.dur))
	for name, ino := range fs.dur {
		content := append([]byte(nil), ino.synced...)
		k := fs.inj.pick(len(ino.writes))
		for i := 0; i < k; i++ {
			content = applyWrite(content, ino.writes[i], len(ino.writes[i].b))
		}
		if k < len(ino.writes) {
			w := ino.writes[k]
			content = applyWrite(content, w, fs.inj.pick(len(w.b)))
		}
		next := &inode{data: content, synced: append([]byte(nil), content...)}
		vol[name] = next
		fs.dur[name] = next
	}
	fs.vol = vol
}

// applyWrite replays the first n bytes of one recorded write; the off==-1
// truncation marker empties the file.
func applyWrite(content []byte, w writeOp, n int) []byte {
	if w.off < 0 {
		return nil
	}
	end := w.off + int64(n)
	for int64(len(content)) < end {
		content = append(content, 0)
	}
	copy(content[w.off:end], w.b[:n])
	return content
}

// FlipBit flips one bit of a file in both the volatile and durable image,
// simulating media corruption underneath the store.
func (fs *MemFS) FlipBit(name string, off int64, bit uint) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.vol[norm(name)]
	if !ok {
		return &os.PathError{Op: "flipbit", Path: name, Err: os.ErrNotExist}
	}
	if off < 0 || off >= int64(len(ino.data)) {
		return fmt.Errorf("iofault: flipbit offset %d out of range", off)
	}
	ino.data[off] ^= 1 << (bit % 8)
	if off < int64(len(ino.synced)) {
		ino.synced[off] ^= 1 << (bit % 8)
	}
	return nil
}

// Names lists the volatile namespace, sorted (for tests and diagnostics).
func (fs *MemFS) Names() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.vol))
	for n := range fs.vol {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ReadFile returns a copy of the volatile content of a file.
func (fs *MemFS) ReadFile(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino, ok := fs.vol[norm(name)]
	if !ok {
		return nil, &os.PathError{Op: "read", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// --- file handle -----------------------------------------------------------

type memFile struct {
	fs   *MemFS
	name string
	ino  *inode
	pos  int64
	flag int
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.inj.Crashed() {
		return 0, ErrCrashed
	}
	if f.pos >= int64(len(f.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.data[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.flag&os.O_APPEND != 0 {
		f.pos = int64(len(f.ino.data))
	}
	crashedBefore := f.fs.inj.Crashed()
	if crash, _ := f.fs.inj.step(false); crash {
		if !crashedBefore {
			// Torn write: the write in flight at the crash point gets a
			// prefix of its buffer into the file image. Writes attempted
			// after the crash reach nothing — the machine is down.
			n := f.fs.inj.tear(len(p))
			w := writeOp{off: f.pos, b: append([]byte(nil), p[:n]...)}
			f.ino.writes = append(f.ino.writes, w)
			f.ino.data = applyWrite(f.ino.data, w, n)
		}
		return 0, fmt.Errorf("write %s: %w", f.name, ErrCrashed)
	}
	w := writeOp{off: f.pos, b: append([]byte(nil), p...)}
	f.ino.writes = append(f.ino.writes, w)
	f.ino.data = applyWrite(f.ino.data, w, len(p))
	f.pos += int64(len(p))
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = int64(len(f.ino.data))
	default:
		return 0, fmt.Errorf("iofault: bad whence %d", whence)
	}
	if base+offset < 0 {
		return 0, fmt.Errorf("iofault: negative seek")
	}
	f.pos = base + offset
	return f.pos, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	crash, fail := f.fs.inj.step(true)
	if crash {
		return fmt.Errorf("sync %s: %w", f.name, ErrCrashed)
	}
	if fail {
		return fmt.Errorf("sync %s: %w", f.name, ErrInjected)
	}
	f.ino.synced = append([]byte(nil), f.ino.data...)
	f.ino.writes = nil
	return nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Stat() (os.FileInfo, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return memInfo{name: filepath.Base(f.name), size: int64(len(f.ino.data))}, nil
}

type memInfo struct {
	name string
	size int64
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return i.size }
func (i memInfo) Mode() os.FileMode  { return 0o644 }
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }
