package iofault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func writeAll(t *testing.T, f File, b []byte) {
	t.Helper()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func TestMemFSBasics(t *testing.T) {
	fs := NewMemFS(nil)
	f, err := fs.OpenFile("a/x", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello "))
	writeAll(t, f, []byte("world"))
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("read back %q, %v", got, err)
	}
	info, err := f.Stat()
	if err != nil || info.Size() != 11 {
		t.Fatalf("Stat: %v %v", info, err)
	}
	if _, err := fs.OpenFile("a/missing", os.O_RDONLY, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing = %v", err)
	}
	// O_TRUNC empties, O_APPEND writes at the end.
	f2, _ := fs.OpenFile("a/x", os.O_RDWR|os.O_TRUNC, 0o644)
	writeAll(t, f2, []byte("zz"))
	f3, _ := fs.OpenFile("a/x", os.O_WRONLY|os.O_APPEND, 0o644)
	writeAll(t, f3, []byte("!"))
	if got, _ := fs.ReadFile("a/x"); string(got) != "zz!" {
		t.Fatalf("after trunc+append: %q", got)
	}
}

func TestMemFSDurabilityModel(t *testing.T) {
	fs := NewMemFS(nil)
	// Created, written, synced — but the directory is never synced: the
	// name does not survive a crash.
	f, _ := fs.OpenFile("u/unsynced-name", os.O_RDWR|os.O_CREATE, 0o644)
	writeAll(t, f, []byte("data"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Created, dir synced, content synced, then more unsynced writes.
	g, _ := fs.OpenFile("d/log", os.O_RDWR|os.O_CREATE, 0o644)
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, g, []byte("durable"))
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	writeAll(t, g, []byte("-volatile-tail"))

	fs.Crash()

	if _, err := fs.ReadFile("u/unsynced-name"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("file with unsynced name survived crash: %v", err)
	}
	got, err := fs.ReadFile("d/log")
	if err != nil {
		t.Fatalf("durable file lost: %v", err)
	}
	full := []byte("durable-volatile-tail")
	if len(got) < len("durable") || !bytes.HasPrefix(full, got) {
		t.Errorf("post-crash content %q is not a prefix extension of the synced state", got)
	}
}

func TestMemFSRenameDurability(t *testing.T) {
	// A rename not followed by SyncDir reverts at crash; with SyncDir it
	// survives.
	for _, syncDir := range []bool{false, true} {
		fs := NewMemFS(nil)
		f, _ := fs.OpenFile("d/old", os.O_RDWR|os.O_CREATE, 0o644)
		writeAll(t, f, []byte("v1"))
		f.Sync()
		fs.SyncDir("d")
		g, _ := fs.OpenFile("d/new.tmp", os.O_RDWR|os.O_CREATE, 0o644)
		writeAll(t, g, []byte("v2"))
		g.Sync()
		if err := fs.Rename("d/new.tmp", "d/old"); err != nil {
			t.Fatal(err)
		}
		if syncDir {
			fs.SyncDir("d")
		}
		fs.Crash()
		got, err := fs.ReadFile("d/old")
		if err != nil {
			t.Fatalf("syncDir=%v: %v", syncDir, err)
		}
		want := "v1"
		if syncDir {
			want = "v2"
		}
		if string(got) != want {
			t.Errorf("syncDir=%v: content %q, want %q", syncDir, got, want)
		}
	}
}

func TestInjectorCrashPoint(t *testing.T) {
	inj := NewInjector(1)
	fs := NewMemFS(inj)
	f, _ := fs.OpenFile("d/x", os.O_RDWR|os.O_CREATE, 0o644) // op 0
	fs.SyncDir("d")                                          // op 1
	writeAll(t, f, []byte("aa"))                             // op 2
	f.Sync()                                                 // op 3
	if got := inj.Ops(); got != 4 {
		t.Fatalf("ops = %d, want 4", got)
	}

	// Re-run the same workload crashing at the sync: the write lands
	// volatile, the sync dies, and every later operation dies too.
	inj2 := NewInjector(1)
	fs2 := NewMemFS(inj2)
	inj2.CrashAt(3)
	f2, _ := fs2.OpenFile("d/x", os.O_RDWR|os.O_CREATE, 0o644)
	fs2.SyncDir("d")
	writeAll(t, f2, []byte("aa"))
	if err := f2.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync at crash point = %v", err)
	}
	if _, err := f2.Write([]byte("bb")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash = %v", err)
	}
	if !inj2.Crashed() {
		t.Fatal("injector not crashed")
	}
	fs2.Crash()
	// Name is durable (SyncDir preceded the crash); content is some
	// prefix of the unsynced write.
	got, err := fs2.ReadFile("d/x")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix([]byte("aa"), got) {
		t.Errorf("post-crash content %q not a prefix of the torn write", got)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	// Crashing inside the write itself must persist at most a prefix.
	for seed := int64(0); seed < 8; seed++ {
		inj := NewInjector(seed)
		fs := NewMemFS(inj)
		f, _ := fs.OpenFile("d/x", os.O_RDWR|os.O_CREATE, 0o644)
		fs.SyncDir("d")
		inj.CrashAt(2)
		if _, err := f.Write([]byte("0123456789")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("seed %d: write = %v", seed, err)
		}
		fs.Crash()
		got, err := fs.ReadFile("d/x")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix([]byte("0123456789"), got) {
			t.Errorf("seed %d: torn write produced %q", seed, got)
		}
	}
}

func TestInjectorFailSync(t *testing.T) {
	inj := NewInjector(0)
	fs := NewMemFS(inj)
	f, _ := fs.OpenFile("d/x", os.O_RDWR|os.O_CREATE, 0o644) // op 0
	fs.SyncDir("d")                                          // op 1
	inj.FailSyncAt(3)
	writeAll(t, f, []byte("aa")) // op 2
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync = %v, want ErrInjected", err)
	}
	// Transient: the next sync succeeds and persists.
	if err := f.Sync(); err != nil {
		t.Fatalf("retry sync = %v", err)
	}
	fs.Crash()
	if got, _ := fs.ReadFile("d/x"); string(got) != "aa" {
		t.Errorf("content after retried sync = %q", got)
	}
}

func TestFlipBit(t *testing.T) {
	fs := NewMemFS(nil)
	f, _ := fs.OpenFile("d/x", os.O_RDWR|os.O_CREATE, 0o644)
	writeAll(t, f, []byte{0x00, 0xff})
	f.Sync()
	fs.SyncDir("d")
	if err := fs.FlipBit("d/x", 0, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := fs.ReadFile("d/x")
	if got[0] != 0x08 {
		t.Errorf("flipped byte = %#x", got[0])
	}
	fs.Crash()
	got, _ = fs.ReadFile("d/x")
	if got[0] != 0x08 {
		t.Errorf("flip not durable: %#x", got[0])
	}
	if err := fs.FlipBit("d/x", 99, 0); err == nil {
		t.Error("out-of-range flip accepted")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs := OS()
	path := filepath.Join(dir, "x")
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("abc"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := fs.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(""); err != nil {
		t.Fatal(err)
	}
}
