// Package iofault abstracts the file operations of the persistent store
// behind an interface so that fault injection can be layered underneath.
// The paper's premise — code, not just data, lives in the database — makes
// the store the single point of failure for the whole system, so its
// crash-consistency claims need to be *testable*: torn writes, failed
// syncs, crashes between operations and bit flips are all faults the store
// must survive or at least detect.
//
// Two implementations exist:
//
//   - OS() passes through to the real filesystem (package os);
//   - MemFS simulates a filesystem with an explicit durability model
//     (content survives a crash only once synced; names survive only once
//     their directory is synced) and an Injector that crashes the world at
//     a chosen operation, tearing the write in flight.
package iofault

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"sync"
)

// File is the subset of *os.File the store needs.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync flushes the file content to durable storage.
	Sync() error
	// Stat reports file metadata (the store only uses Size).
	Stat() (os.FileInfo, error)
}

// FS is the subset of filesystem namespace operations the store needs.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove unlinks a file. Removing a missing file is an error.
	Remove(name string) error
	// SyncDir makes the *names* in dir durable: file creations, renames
	// and removals are not crash-safe until the containing directory has
	// been synced (the classic fsync-the-directory rule).
	SyncDir(dir string) error
}

// Injected faults.
var (
	// ErrCrashed is returned by every operation at and after the injected
	// crash point: the simulated machine is down.
	ErrCrashed = errors.New("iofault: simulated crash")
	// ErrInjected is returned by operations selected for a transient
	// failure (a failed sync that does not take the machine down).
	ErrInjected = errors.New("iofault: injected fault")
)

// --- real filesystem -------------------------------------------------------

type osFS struct{}

// OS returns the pass-through implementation backed by package os.
func OS() FS { return osFS{} }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// --- fault injector --------------------------------------------------------

// Injector decides which filesystem operation fails and how. All mutating
// MemFS operations (writes, syncs, opens that create, renames, removals,
// directory syncs) draw an operation number from the injector; reads are
// free. Operation numbering is deterministic for a deterministic workload,
// which lets a test crash a workload at every single point in turn.
type Injector struct {
	mu         sync.Mutex
	ops        int
	crashAt    int // crash when ops reaches this value; <0 = never
	failSyncAt int // sync op index that fails transiently; <0 = never
	crashed    bool
	rng        *rand.Rand
}

// NewInjector returns an injector with no faults armed. The seed drives
// the torn-write choices made at the crash point.
func NewInjector(seed int64) *Injector {
	return &Injector{crashAt: -1, failSyncAt: -1, rng: rand.New(rand.NewSource(seed))}
}

// CrashAt arms a crash at the given operation index (0-based). The
// operation with that index fails with ErrCrashed — a write in flight is
// torn, persisting only a prefix — and every later operation fails too.
func (in *Injector) CrashAt(op int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashAt = op
	in.crashed = false
}

// FailSyncAt arms a single transient sync failure at the given operation
// index: the sync returns ErrInjected without persisting, but the machine
// stays up.
func (in *Injector) FailSyncAt(op int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failSyncAt = op
}

// Ops reports how many operations have been observed so far; running a
// workload once with no faults armed yields the number of crash points.
func (in *Injector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Crashed reports whether the armed crash has fired.
func (in *Injector) Crashed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// step accounts one mutating operation. It reports (crash, fail): crash
// means the operation and all later ones die with ErrCrashed; fail means
// this one operation returns ErrInjected (only ever reported for syncs).
func (in *Injector) step(isSync bool) (crash, fail bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return true, false
	}
	op := in.ops
	in.ops++
	if in.crashAt >= 0 && op >= in.crashAt {
		in.crashed = true
		return true, false
	}
	if isSync && op == in.failSyncAt {
		return false, true
	}
	return false, false
}

// tear picks how many bytes of an n-byte write in flight at the crash
// point actually reach the file image.
func (in *Injector) tear(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng == nil {
		return 0
	}
	return in.rng.Intn(n + 1)
}

// pick returns a deterministic pseudo-random value in [0, n] used when
// deciding how much unsynced data survives a crash.
func (in *Injector) pick(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng == nil {
		return n
	}
	return in.rng.Intn(n + 1)
}
