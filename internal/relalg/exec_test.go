package relalg

import (
	"testing"

	"tycoon/internal/machine"
	"tycoon/internal/prim"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// parseOnce parses a query term and binds its free variables to halt
// continuations, so tests can re-run the same term without paying (or
// measuring) the parser.
func parseOnce(t *testing.T, src string) (*tml.App, *machine.Env) {
	t.Helper()
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	free := tml.FreeVars(app)
	vals := make([]machine.Value, len(free))
	for i, v := range free {
		if v.Name == "k" {
			vals[i] = &machine.Halt{}
		} else {
			vals[i] = &machine.Halt{Err: true}
		}
	}
	return app, (*machine.Env)(nil).Extend(free, vals)
}

// TestIndexCacheReuse is the regression test for the index rebuild bug:
// a second index scan over an unchanged relation must serve the cached
// index, an insert must extend it in place, and an identity change must
// rebuild it exactly once.
func TestIndexCacheReuse(t *testing.T) {
	st, mg, m, oid := world(t, 200)
	scan := "(indexscan " + oidStr(oid) + " 0 123 e k)"

	if _, err := run(t, m, scan); err != nil {
		t.Fatal(err)
	}
	s := mg.IndexStats()
	if s.Builds != 1 || s.Hits != 0 {
		t.Fatalf("first scan: %+v, want exactly one build", s)
	}

	// Second scan over the unchanged relation: cache hit, no rebuild.
	if _, err := run(t, m, scan); err != nil {
		t.Fatal(err)
	}
	s = mg.IndexStats()
	if s.Builds != 1 {
		t.Errorf("second scan rebuilt the index: %+v", s)
	}
	if s.Hits != 1 {
		t.Errorf("second scan missed the cache: %+v", s)
	}

	// Insert through the manager: the index is maintained, and the next
	// scan still hits (neither build nor extension — InsertRow already
	// appended the new posting).
	if err := mg.InsertRow(oid, []store.Val{store.IntVal(123), store.IntVal(7)}); err != nil {
		t.Fatal(err)
	}
	v, err := run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 2 {
		t.Fatalf("scan after insert matched %d rows, want 2", got)
	}
	s = mg.IndexStats()
	if s.Builds != 1 {
		t.Errorf("scan after maintained insert rebuilt: %+v", s)
	}

	// Rows appended behind the manager's back extend the index tail
	// instead of rebuilding it.
	rel := st.MustGet(oid).(*store.Relation)
	rel.Rows = append(rel.Rows, []store.Val{store.IntVal(123), store.IntVal(8)})
	v, err = run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 3 {
		t.Fatalf("scan after raw append matched %d rows, want 3", got)
	}
	s = mg.IndexStats()
	if s.Builds != 1 || s.Extends != 1 {
		t.Errorf("raw append should extend, not rebuild: %+v", s)
	}

	// Truncation: the surviving rows are a pointer-identical prefix of
	// what the index was built over, so the scan serves the cached index
	// bounded to the shorter horizon — no rebuild, no invalidation.
	rel.Rows = rel.Rows[:100]
	v, err = run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 0 {
		t.Fatalf("scan after truncating away id=123 matched %d rows, want 0", got)
	}
	s = mg.IndexStats()
	if s.Builds != 1 || s.Invalidations != 0 || s.HorizonHits != 1 {
		t.Errorf("truncation should serve a horizon-bounded hit: %+v", s)
	}

	// Regrowing with different content at the same length must NOT serve
	// the stale full-length index: prefix identity fails, one rebuild.
	for len(rel.Rows) < 203 {
		rel.Rows = append(rel.Rows, []store.Val{store.IntVal(123), store.IntVal(9)})
	}
	v, err = run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 103 {
		t.Fatalf("scan over regrown rows matched %d rows, want 103", got)
	}
	s = mg.IndexStats()
	if s.Builds != 2 || s.Invalidations != 1 {
		t.Errorf("regrowth with new content should rebuild exactly once: %+v", s)
	}
	if _, err := run(t, m, scan); err != nil {
		t.Fatal(err)
	}
	if got := mg.IndexStats(); got.Builds != 2 {
		t.Errorf("scan after rebuild rebuilt again: %+v", got)
	}
}

// TestIndexSnapshotHorizon is the regression test for the index cache's
// interplay with MVCC snapshot views: a snapshot holding a shorter
// prefix of the relation must never see postings past its horizon, and
// serving it must not thrash (invalidate or rebuild) the cache that the
// latest version keeps hitting.
func TestIndexSnapshotHorizon(t *testing.T) {
	st, mg, m, oid := world(t, 200)
	scan := "(indexscan " + oidStr(oid) + " 0 123 e k)"
	if _, err := run(t, m, scan); err != nil {
		t.Fatal(err)
	}
	rel := st.MustGet(oid).(*store.Relation)
	full := rel.Rows

	// A "snapshot" of the first 150 rows (what an MVCC view with an older
	// horizon exposes): shares backing arrays with the full relation.
	rel.Rows = full[:150:150]
	v, err := run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 1 {
		t.Fatalf("snapshot scan matched %d rows, want 1", got)
	}
	s := mg.IndexStats()
	if s.Builds != 1 || s.Invalidations != 0 || s.HorizonHits != 1 {
		t.Errorf("snapshot scan should serve the shared index bounded to its horizon: %+v", s)
	}

	// Tighten the horizon past the only id=123 posting: zero matches.
	rel.Rows = full[:100:100]
	v, err = run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 0 {
		t.Fatalf("pre-posting snapshot matched %d rows, want 0", got)
	}

	// Back at the latest version the cache is still intact: a plain hit.
	rel.Rows = full
	if _, err := run(t, m, scan); err != nil {
		t.Fatal(err)
	}
	s = mg.IndexStats()
	if s.Builds != 1 || s.Invalidations != 0 {
		t.Errorf("alternating horizons thrashed the cache: %+v", s)
	}
	if s.HorizonHits != 2 {
		t.Errorf("HorizonHits = %d, want 2: %+v", s.HorizonHits, s)
	}

	// Maintenance on insert must not extend an index whose prefix no
	// longer matches the live rows: replace the backing wholesale, then
	// insert through the manager — the next scan must rebuild, not trust
	// a Frankenstein of stale prefix plus fresh posting.
	fresh := make([][]store.Val, len(full))
	for i := range full {
		fresh[i] = []store.Val{store.IntVal(int64(i)), store.IntVal(0)}
	}
	rel.Rows = fresh
	if err := mg.InsertRow(oid, []store.Val{store.IntVal(123), store.IntVal(7)}); err != nil {
		t.Fatal(err)
	}
	v, err = run(t, m, scan)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 2 {
		t.Fatalf("post-swap scan matched %d rows, want 2", got)
	}
	if s = mg.IndexStats(); s.Builds != 2 {
		t.Errorf("swapped backing rows should force a rebuild: %+v", s)
	}
}

// parityQueries are the operator shapes the step-parity guard runs both
// batched and row-at-a-time.
func parityQueries(oid store.OID) map[string]string {
	o := oidStr(oid)
	return map[string]string{
		"select": `(select proc(x !ce !cc)
			([] x 1 cont(a) (< a 5 cont()(cc true) cont()(cc false))) ` + o + ` e k)`,
		"project": `(project proc(x !ce !cc)
			([] x 0 cont(a) (+ a 100 ce cont(b) (vector b cont(row) (cc row))))
			` + o + ` e k)`,
		"join": `(join proc(x !ce !cc)
			([] x 0 cont(a) ([] x 2 cont(b) (== a b cont()(cc true) cont()(cc false))))
			` + o + ` ` + o + ` e k)`,
		"exists": `(exists proc(x !ce !cc)
			([] x 1 cont(a) (> a 100 cont()(cc true) cont()(cc false))) ` + o + ` e k)`,
		"foreach": `(foreach proc(x !ce !cc) (cc unit) ` + o + ` e k)`,
	}
}

// TestBatchStepParity proves that batched execution is a pure
// representation change: for every operator the abstract step count and
// the result are identical whether predicates run on the batched
// compiled kernel or through one machine.Apply per row.
func TestBatchStepParity(t *testing.T) {
	type outcome struct {
		steps int64
		show  string
	}
	measure := func(noBatch bool) map[string]outcome {
		_, mg, m, oid := world(t, 300)
		mg.NoBatch = noBatch
		out := make(map[string]outcome)
		for name, src := range parityQueries(oid) {
			m.ResetSteps()
			v, err := run(t, m, src)
			if err != nil {
				t.Fatalf("%s (noBatch=%v): %v", name, noBatch, err)
			}
			out[name] = outcome{steps: m.Steps(), show: v.Show()}
		}
		return out
	}
	batched, rowAtATime := measure(false), measure(true)
	for name, b := range batched {
		r := rowAtATime[name]
		if b.steps != r.steps {
			t.Errorf("%s: batched %d steps, row-at-a-time %d steps", name, b.steps, r.steps)
		}
		if b.show != r.show {
			t.Errorf("%s: results differ: %s vs %s", name, b.show, r.show)
		}
	}
}

// TestBatchStepParityOnException checks the parity holds on the
// exceptional path too: a predicate that raises mid-scan aborts both
// execution modes at the same abstract step.
func TestBatchStepParityOnException(t *testing.T) {
	src := func(oid store.OID) string {
		return `(select proc(x !ce !cc)
			([] x 0 cont(a) (== a 150 cont()(ce "boom") cont()(cc true)))
			` + oidStr(oid) + ` e k)`
	}
	steps := func(noBatch bool) int64 {
		_, mg, m, oid := world(t, 300)
		mg.NoBatch = noBatch
		m.ResetSteps()
		if _, err := run(t, m, src(oid)); err == nil {
			t.Fatalf("noBatch=%v: expected unhandled exception", noBatch)
		}
		return m.Steps()
	}
	if b, r := steps(false), steps(true); b != r {
		t.Errorf("exception path: batched %d steps, row-at-a-time %d", b, r)
	}
}

// allocsPerQuery reports heap allocations per full execution of src on a
// warm machine (indexes built, kernel compilation exercised once).
func allocsPerQuery(t *testing.T, m *machine.Machine, env *machine.Env, app *tml.App) float64 {
	t.Helper()
	if _, err := m.RunApp(app, env); err != nil { // warm caches
		t.Fatal(err)
	}
	return testing.AllocsPerRun(20, func() {
		if _, err := m.RunApp(app, env); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSelectAllocBudget pins the allocation budget of the select hot
// path: scanning 256 rows of interned scalars must cost well under one
// allocation per row (the pre-batching executor cost ~18 per row).
func TestSelectAllocBudget(t *testing.T) {
	_, _, m, oid := world(t, 256)
	app, env := parseOnce(t, `(select proc(x !ce !cc)
		([] x 1 cont(a) (< a 5 cont()(cc true) cont()(cc false)))
		`+oidStr(oid)+` e k)`)
	if got := allocsPerQuery(t, m, env, app); got > 100 {
		t.Errorf("select over 256 rows: %.0f allocs, budget 100", got)
	}
}

// TestJoinAllocBudget pins the join hot path: a 64×64 nested-loop join
// (4096 predicate calls) must stay under a small constant budget — the
// concatenated probe tuple is reused, and only kept pairs materialise.
func TestJoinAllocBudget(t *testing.T) {
	_, _, m, oid := world(t, 64)
	o := oidStr(oid)
	app, env := parseOnce(t, `(join proc(x !ce !cc)
		([] x 0 cont(a) ([] x 2 cont(b) (== a b cont()(cc true) cont()(cc false))))
		`+o+` `+o+` e k)`)
	if got := allocsPerQuery(t, m, env, app); got > 256 {
		t.Errorf("join 64x64: %.0f allocs, budget 256", got)
	}
}
