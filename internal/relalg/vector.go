// Vectorized predicate evaluation (DESIGN.md §14). A predicate closure
// whose body is built from the recognized CPS shapes — row loads, integer
// comparisons, two-way case analysis, checked arithmetic routed to the
// predicate's own exception continuation, boolean connectives, tuple
// construction and continuation jumps — compiles once per scan into a
// vprog: a tiny branch-structured register program over store.Val
// registers. The fused evaluator then runs it over raw store rows (and,
// for the hot integer-comparison shape, over typed column vectors from
// the columnar cache) without boxing a machine.Vector per row, without a
// TAM frame per call, and without re-entering the interpreter.
//
// Semantics are pinned to the interpreter step-for-step: every executed
// vop charges one abstract step (the interpreter ticks before each
// primitive), procedure entry charges one, continuation jumps are free,
// and error values — type-confusion RuntimeErrors, arithmetic-fault
// exception strings — are reproduced byte-identically. The NoBatch /
// steps-parity guard machinery therefore covers the vectorized kernels
// exactly as it covers the batched ones.
package relalg

import (
	"fmt"
	"sort"

	"tycoon/internal/machine"
	"tycoon/internal/prim"
	"tycoon/internal/qopt"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// vecBatch is the number of rows a vectorized kernel processes per fused
// pass: traversal cost is charged in lumps of this size.
const vecBatch = 1024

// maxVRegs bounds a vprog's register file; predicates larger than this
// fall back to the batched kernels.
const maxVRegs = 24

// maxVBlocks bounds compiled control flow (branch bodies are compiled as
// a DAG of blocks); exceeding it falls back.
const maxVBlocks = 128

// Register sentinels for varg.reg.
const (
	regConst = -1 // varg carries a constant in c
	regRow   = -2 // varg names the tuple built by the last vMkRow
)

// varg is one operand of a vop: a register, an embedded constant, or the
// constructed row tuple.
type varg struct {
	reg int
	c   store.Val
}

type vopKind uint8

const (
	vLoad   vopKind = iota // dst = row[col]
	vCmp                   // integer compare a OP b, branch t/f
	vEqV                   // shallow equality a == b, branch t/f
	vArith                 // dst = a OP b; fault raises to the predicate's ce
	vBoolOp                // dst = a AND/OR b, NOT a
	vIfOp                  // boolean branch on a
	vMkRow                 // row tuple := args (project targets)
)

// vop is one instruction. Branching kinds (vCmp, vEqV, vIfOp) terminate
// their block and continue in t or f; the rest fall through in order.
type vop struct {
	kind vopKind
	op   string // source primitive name, used verbatim in error messages
	col  int
	dst  int
	a, b varg
	t, f *vblock
	args []varg
}

// Block terminal kinds.
const (
	tRet    uint8 = iota // invoke cc with a value
	tRetRow              // invoke cc with the constructed row tuple
	tRaise               // invoke ce with a value
)

type vterm struct {
	kind uint8
	v    varg
}

// vblock is a straight-line run of vops ending in either a branching vop
// (last position) or a terminal.
type vblock struct {
	ops  []vop
	term vterm
}

// vprog is a compiled predicate: a block DAG over a small register file,
// evaluated against one row (select/project/exists) or a concatenated
// pair (join).
type vprog struct {
	width  int
	root   *vblock
	nregs  int
	rowCap int // widest vMkRow tuple
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

type vcompiler struct {
	rowVar *tml.Var
	ceVar  *tml.Var
	ccVar  *tml.Var
	env    *machine.Env
	width  int
	binds  map[*tml.Var]varg
	nregs  int
	rowCap int
	blocks int
}

// compileVProg compiles a predicate value for rows of the given width.
// nil means the predicate is outside the vectorizable fragment and the
// caller must use the batched row path.
func compileVProg(fn machine.Value, width int) *vprog {
	clo, ok := fn.(*machine.Closure)
	if !ok || clo.Abs == nil || len(clo.Abs.Params) != 3 || clo.Abs.IsCont() {
		return nil
	}
	ps := clo.Abs.Params
	c := &vcompiler{
		rowVar: ps[0], ceVar: ps[1], ccVar: ps[2],
		env: clo.Env, width: width,
		binds: make(map[*tml.Var]varg),
	}
	root := c.block(clo.Abs.Body)
	if root == nil {
		return nil
	}
	return &vprog{width: width, root: root, nregs: c.nregs, rowCap: c.rowCap}
}

func (c *vcompiler) newReg() int {
	if c.nregs >= maxVRegs {
		return -1
	}
	r := c.nregs
	c.nregs++
	return r
}

// arg resolves a TML value argument to a varg: literals and OIDs embed as
// constants, bound continuation parameters alias their defining register,
// and free variables resolve through the closure environment when they
// hold storable scalars. Anything else is outside the fragment.
func (c *vcompiler) arg(v tml.Value) (varg, bool) {
	switch v := v.(type) {
	case *tml.Lit, *tml.Oid:
		mv, ok := machine.LitValue(v)
		if !ok {
			return varg{}, false
		}
		sv, err := machine.ToStoreVal(mv)
		if err != nil {
			return varg{}, false
		}
		return varg{reg: regConst, c: sv}, true
	case *tml.Var:
		if v == c.rowVar || v == c.ceVar || v == c.ccVar {
			// The row tuple and the continuations are not first-class in
			// the fragment (a predicate forwarding its whole row falls
			// back to the batched path).
			return varg{}, false
		}
		if a, ok := c.binds[v]; ok {
			return a, true
		}
		if c.env != nil {
			if mv, ok := c.env.Lookup(v); ok {
				if sv, err := machine.ToStoreVal(mv); err == nil {
					return varg{reg: regConst, c: sv}, true
				}
			}
		}
		return varg{}, false
	default:
		return varg{}, false
	}
}

// scalarArg resolves an operand that must be a scalar register or
// constant; the row-tuple register is only legal as a cc argument.
func (c *vcompiler) scalarArg(v tml.Value) (varg, bool) {
	a, ok := c.arg(v)
	if !ok || a.reg == regRow {
		return varg{}, false
	}
	return a, true
}

// cont1 checks that v is a one-parameter continuation abstraction.
func cont1(v tml.Value) (*tml.Abs, bool) {
	a, ok := v.(*tml.Abs)
	if !ok || !a.IsCont() || len(a.Params) != 1 {
		return nil, false
	}
	return a, true
}

// cont0 checks that v is a zero-parameter continuation abstraction.
func cont0(v tml.Value) (*tml.Abs, bool) {
	a, ok := v.(*tml.Abs)
	if !ok || !a.IsCont() || len(a.Params) != 0 {
		return nil, false
	}
	return a, true
}

// block compiles an App spine into a vblock, following sequential
// continuations in place and recursing for branches. nil aborts the
// whole compilation.
func (c *vcompiler) block(app *tml.App) *vblock {
	blk := &vblock{}
	for {
		c.blocks++
		if c.blocks > maxVBlocks {
			return nil
		}
		switch fn := app.Fn.(type) {
		case *tml.Var:
			if len(app.Args) != 1 {
				return nil
			}
			a, ok := c.arg(app.Args[0])
			switch fn {
			case c.ccVar:
				if !ok {
					return nil
				}
				if a.reg == regRow {
					// (cc row) returning the constructed tuple.
					blk.term = vterm{kind: tRetRow}
					return blk
				}
				blk.term = vterm{kind: tRet, v: a}
				return blk
			case c.ceVar:
				if !ok || a.reg == regRow {
					return nil
				}
				blk.term = vterm{kind: tRaise, v: a}
				return blk
			default:
				return nil // call into another closure: not vectorizable
			}
		case *tml.Abs:
			// β-redex continuation: binding is a jump, costs nothing.
			if !fn.IsCont() || len(fn.Params) != len(app.Args) {
				return nil
			}
			for i, p := range fn.Params {
				a, ok := c.arg(app.Args[i])
				if !ok {
					return nil
				}
				// regRow re-binds freely: the tuple register is shared.
				c.binds[p] = a
			}
			app = fn.Body
		case *tml.Prim:
			next := c.prim(blk, fn.Name, app.Args)
			if next == nil {
				return nil
			}
			if next == appDone {
				return blk
			}
			app = next
		default:
			return nil
		}
	}
}

// appDone is the sentinel prim() returns when it closed the block with a
// branching vop (whose t/f children are fully compiled).
var appDone = &tml.App{}

// prim compiles one primitive application. It returns the continuation
// body to keep compiling into the same block, appDone when the primitive
// branched (block complete), or nil on failure.
func (c *vcompiler) prim(blk *vblock, name string, args []tml.Value) *tml.App {
	switch name {
	case "[]":
		if len(args) != 3 {
			return nil
		}
		v, ok := args[0].(*tml.Var)
		if !ok || v != c.rowVar {
			return nil
		}
		idx, ok := c.scalarArg(args[1])
		if !ok || idx.reg != regConst || idx.c.Kind != store.ValInt {
			return nil
		}
		col := int(idx.c.Int)
		if col < 0 || col >= c.width {
			return nil // would throw via the dynamic handler stack
		}
		k, ok := cont1(args[2])
		if !ok {
			return nil
		}
		dst := c.newReg()
		if dst < 0 {
			return nil
		}
		c.binds[k.Params[0]] = varg{reg: dst}
		blk.ops = append(blk.ops, vop{kind: vLoad, op: "[]", col: col, dst: dst})
		return k.Body
	case "<", ">", "<=", ">=":
		if len(args) != 4 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		b, okB := c.scalarArg(args[1])
		kt, okT := cont0(args[2])
		kf, okF := cont0(args[3])
		if !okA || !okB || !okT || !okF {
			return nil
		}
		t := c.block(kt.Body)
		f := c.block(kf.Body)
		if t == nil || f == nil {
			return nil
		}
		blk.ops = append(blk.ops, vop{kind: vCmp, op: name, a: a, b: b, t: t, f: f})
		return appDone
	case "==":
		// Only the one-tag two-branch form (match / else); wider case
		// analyses fall back.
		if len(args) != 4 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		b, okB := c.scalarArg(args[1])
		kt, okT := cont0(args[2])
		kf, okF := cont0(args[3])
		if !okA || !okB || !okT || !okF {
			return nil
		}
		t := c.block(kt.Body)
		f := c.block(kf.Body)
		if t == nil || f == nil {
			return nil
		}
		blk.ops = append(blk.ops, vop{kind: vEqV, op: name, a: a, b: b, t: t, f: f})
		return appDone
	case "+", "-", "*", "/", "%":
		if len(args) != 4 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		b, okB := c.scalarArg(args[1])
		if !okA || !okB {
			return nil
		}
		// The exception continuation must be the predicate's own ce so a
		// fault surfaces exactly as the row path's nested exception does.
		ceArg, ok := args[2].(*tml.Var)
		if !ok || ceArg != c.ceVar {
			return nil
		}
		k, ok := cont1(args[3])
		if !ok {
			return nil
		}
		dst := c.newReg()
		if dst < 0 {
			return nil
		}
		c.binds[k.Params[0]] = varg{reg: dst}
		blk.ops = append(blk.ops, vop{kind: vArith, op: name, a: a, b: b, dst: dst})
		return k.Body
	case "and", "or":
		if len(args) != 3 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		b, okB := c.scalarArg(args[1])
		k, okK := cont1(args[2])
		if !okA || !okB || !okK {
			return nil
		}
		dst := c.newReg()
		if dst < 0 {
			return nil
		}
		c.binds[k.Params[0]] = varg{reg: dst}
		blk.ops = append(blk.ops, vop{kind: vBoolOp, op: name, a: a, b: b, dst: dst})
		return k.Body
	case "not":
		if len(args) != 2 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		k, okK := cont1(args[1])
		if !okA || !okK {
			return nil
		}
		dst := c.newReg()
		if dst < 0 {
			return nil
		}
		c.binds[k.Params[0]] = varg{reg: dst}
		blk.ops = append(blk.ops, vop{kind: vBoolOp, op: name, a: a, dst: dst})
		return k.Body
	case "if":
		if len(args) != 3 {
			return nil
		}
		a, okA := c.scalarArg(args[0])
		kt, okT := cont0(args[1])
		kf, okF := cont0(args[2])
		if !okA || !okT || !okF {
			return nil
		}
		t := c.block(kt.Body)
		f := c.block(kf.Body)
		if t == nil || f == nil {
			return nil
		}
		blk.ops = append(blk.ops, vop{kind: vIfOp, op: name, a: a, t: t, f: f})
		return appDone
	case "vector":
		if len(args) < 1 {
			return nil
		}
		k, ok := cont1(args[len(args)-1])
		if !ok {
			return nil
		}
		elems := make([]varg, 0, len(args)-1)
		for _, ea := range args[:len(args)-1] {
			a, ok := c.scalarArg(ea)
			if !ok {
				return nil
			}
			elems = append(elems, a)
		}
		if len(elems) > c.rowCap {
			c.rowCap = len(elems)
		}
		c.binds[k.Params[0]] = varg{reg: regRow}
		blk.ops = append(blk.ops, vop{kind: vMkRow, op: name, args: elems})
		return k.Body
	default:
		return nil
	}
}

// ---------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------

// vevaler is the mutable state for running one vprog over many rows: the
// register file and the project-row buffer, allocated once per scan.
type vevaler struct {
	p    *vprog
	regs []store.Val
	row  []store.Val
}

func (p *vprog) evaler() *vevaler {
	return &vevaler{
		p:    p,
		regs: make([]store.Val, p.nregs),
		row:  make([]store.Val, 0, p.rowCap),
	}
}

func (e *vevaler) val(a varg) store.Val {
	if a.reg == regConst {
		return a.c
	}
	return e.regs[a.reg]
}

// vres is the outcome of evaluating a vprog on one row: exactly one of
// (ret / retRow / exc / err) describes the result, and steps is the
// abstract step count the interpreter would have charged, including the
// procedure entry and any faulting primitive.
type vres struct {
	ret    store.Val
	retRow bool
	exc    store.Val
	excOK  bool
	steps  int
	err    error
}

func vTypeErr(op, want string, v store.Val) error {
	return &machine.RuntimeError{
		Op:  op,
		Msg: fmt.Sprintf("expected %s, got %s", want, machine.FromStoreVal(v).Show()),
	}
}

func intArith(op string, a, b int64) (int64, bool) {
	switch op {
	case "+":
		return a + b, !prim.AddOverflows(a, b)
	case "-":
		return a - b, !prim.SubOverflows(a, b)
	case "*":
		return a * b, !prim.MulOverflows(a, b)
	case "/":
		if b == 0 || (a == -1<<63 && b == -1) {
			return 0, false
		}
		return a / b, true
	default: // "%"
		if b == 0 {
			return 0, false
		}
		return a % b, true
	}
}

// eval runs the program against the concatenation of r1 and r2 (r2 nil
// for single-relation kernels).
func (e *vevaler) eval(r1, r2 []store.Val) vres {
	blk := e.p.root
	res := vres{steps: 1} // procedure entry
	for {
		branched := false
		for i := range blk.ops {
			op := &blk.ops[i]
			res.steps++ // the interpreter ticks before executing a prim
			switch op.kind {
			case vLoad:
				if op.col < len(r1) {
					e.regs[op.dst] = r1[op.col]
				} else {
					e.regs[op.dst] = r2[op.col-len(r1)]
				}
			case vCmp:
				av := e.val(op.a)
				if av.Kind != store.ValInt {
					res.err = vTypeErr(op.op, "integer", av)
					return res
				}
				bv := e.val(op.b)
				if bv.Kind != store.ValInt {
					res.err = vTypeErr(op.op, "integer", bv)
					return res
				}
				var hold bool
				switch op.op {
				case "<":
					hold = av.Int < bv.Int
				case ">":
					hold = av.Int > bv.Int
				case "<=":
					hold = av.Int <= bv.Int
				default: // ">="
					hold = av.Int >= bv.Int
				}
				if hold {
					blk = op.t
				} else {
					blk = op.f
				}
				branched = true
			case vEqV:
				if e.val(op.a).Eq(e.val(op.b)) {
					blk = op.t
				} else {
					blk = op.f
				}
				branched = true
			case vArith:
				av := e.val(op.a)
				if av.Kind != store.ValInt {
					res.err = vTypeErr(op.op, "integer", av)
					return res
				}
				bv := e.val(op.b)
				if bv.Kind != store.ValInt {
					res.err = vTypeErr(op.op, "integer", bv)
					return res
				}
				r, ok := intArith(op.op, av.Int, bv.Int)
				if !ok {
					res.exc = store.StrVal(fmt.Sprintf("%s: arithmetic fault on %d, %d", op.op, av.Int, bv.Int))
					res.excOK = true
					return res
				}
				e.regs[op.dst] = store.IntVal(r)
			case vBoolOp:
				av := e.val(op.a)
				if av.Kind != store.ValBool {
					res.err = vTypeErr(op.op, "boolean", av)
					return res
				}
				var out bool
				if op.op == "not" {
					out = !av.Bool
				} else {
					bv := e.val(op.b)
					if bv.Kind != store.ValBool {
						res.err = vTypeErr(op.op, "boolean", bv)
						return res
					}
					if op.op == "and" {
						out = av.Bool && bv.Bool
					} else {
						out = av.Bool || bv.Bool
					}
				}
				e.regs[op.dst] = store.BoolVal(out)
			case vIfOp:
				av := e.val(op.a)
				if av.Kind != store.ValBool {
					res.err = vTypeErr(op.op, "boolean", av)
					return res
				}
				if av.Bool {
					blk = op.t
				} else {
					blk = op.f
				}
				branched = true
			case vMkRow:
				e.row = e.row[:0]
				for _, a := range op.args {
					e.row = append(e.row, e.val(a))
				}
			}
			if branched {
				break
			}
		}
		if branched {
			continue
		}
		switch blk.term.kind {
		case tRetRow:
			res.retRow = true
		case tRaise:
			res.exc = e.val(blk.term.v)
			res.excOK = true
		default:
			res.ret = e.val(blk.term.v)
		}
		return res
	}
}

// showRes renders a non-boolean predicate result for the same error
// message the row path produces.
func (e *vevaler) showRes(r vres) string {
	if r.retRow {
		elems := make([]machine.Value, len(e.row))
		for i, v := range e.row {
			elems[i] = machine.FromStoreVal(v)
		}
		return (&machine.Vector{Elems: elems}).Show()
	}
	return machine.FromStoreVal(r.ret).Show()
}

// ---------------------------------------------------------------------
// Shape recognizers feeding the typed fast paths and the join planner
// ---------------------------------------------------------------------

// fastCmp is the hot select shape: load one column, compare against an
// integer constant, return constant booleans. Over a typed null-free int
// column vector this runs as a tight Go loop at 3 steps per row.
type fastCmp struct {
	col     int
	op      string
	k       int64
	tv, fv  bool
	flipped bool // constant on the left: k OP col
}

func constBoolTerm(b *vblock) (bool, bool) {
	if len(b.ops) != 0 || b.term.kind != tRet || b.term.v.reg != regConst || b.term.v.c.Kind != store.ValBool {
		return false, false
	}
	return b.term.v.c.Bool, true
}

func (p *vprog) fastSelCmp() (fastCmp, bool) {
	var fc fastCmp
	if len(p.root.ops) != 2 {
		return fc, false
	}
	ld, cmp := &p.root.ops[0], &p.root.ops[1]
	if ld.kind != vLoad || cmp.kind != vCmp {
		return fc, false
	}
	switch {
	case cmp.a.reg == ld.dst && cmp.b.reg == regConst && cmp.b.c.Kind == store.ValInt:
		fc = fastCmp{col: ld.col, op: cmp.op, k: cmp.b.c.Int}
	case cmp.b.reg == ld.dst && cmp.a.reg == regConst && cmp.a.c.Kind == store.ValInt:
		fc = fastCmp{col: ld.col, op: cmp.op, k: cmp.a.c.Int, flipped: true}
	default:
		return fc, false
	}
	tv, okT := constBoolTerm(cmp.t)
	fv, okF := constBoolTerm(cmp.f)
	if !okT || !okF {
		return fc, false
	}
	fc.tv, fc.fv = tv, fv
	return fc, true
}

// holds evaluates the comparison for one column value.
func (fc *fastCmp) holds(v int64) bool {
	a, b := v, fc.k
	if fc.flipped {
		a, b = b, a
	}
	switch fc.op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default: // ">="
		return a >= b
	}
}

// equiCols recognizes the pure equi-join shape over a concatenated pair:
// load a column from each side, compare for equality, return constant
// true/false. It returns the key columns (left-relative, right-relative)
// and the constant per-pair predicate step count.
func (p *vprog) equiCols(w1 int) (lcol, rcol, steps int, ok bool) {
	if len(p.root.ops) != 3 {
		return 0, 0, 0, false
	}
	l1, l2, eq := &p.root.ops[0], &p.root.ops[1], &p.root.ops[2]
	if l1.kind != vLoad || l2.kind != vLoad || eq.kind != vEqV {
		return 0, 0, 0, false
	}
	regs := map[int]int{l1.dst: l1.col, l2.dst: l2.col}
	ca, haveA := regs[eq.a.reg]
	cb, haveB := regs[eq.b.reg]
	if !haveA || !haveB || eq.a.reg == eq.b.reg {
		return 0, 0, 0, false
	}
	tv, okT := constBoolTerm(eq.t)
	fv, okF := constBoolTerm(eq.f)
	if !okT || !okF || !tv || fv {
		return 0, 0, 0, false // only the plain "equal keeps" form
	}
	switch {
	case ca < w1 && cb >= w1:
		return ca, cb - w1, 4, true // entry + 2 loads + eq
	case cb < w1 && ca >= w1:
		return cb, ca - w1, 4, true
	default:
		return 0, 0, 0, false
	}
}

// ---------------------------------------------------------------------
// vprog cache
// ---------------------------------------------------------------------

type vcacheKey struct {
	clo   *machine.Closure
	width int
}

// vprogFor compiles (with caching, including negative results) a
// predicate for the given row width. Safe for concurrent use.
func (mg *Manager) vprogFor(fn machine.Value, width int) *vprog {
	clo, ok := fn.(*machine.Closure)
	if !ok {
		return nil
	}
	key := vcacheKey{clo: clo, width: width}
	mg.mu.Lock()
	if mg.vprogs == nil {
		mg.vprogs = make(map[vcacheKey]*vprog)
	}
	if p, hit := mg.vprogs[key]; hit {
		mg.mu.Unlock()
		return p
	}
	mg.mu.Unlock()
	p := compileVProg(fn, width) // compile outside the lock; pure function
	mg.mu.Lock()
	if len(mg.vprogs) > 1024 {
		mg.vprogs = make(map[vcacheKey]*vprog) // closures are session-scoped; just reset
	}
	mg.vprogs[key] = p
	mg.mu.Unlock()
	return p
}

// relWidth is the row width a scan of (schema, rows) presents to
// predicates: the actual row width when rows exist (transient relations
// may carry rows without a synthesized schema), the schema width
// otherwise.
func relWidth(schema []store.Column, rows [][]store.Val) int {
	if len(rows) > 0 {
		return len(rows[0])
	}
	return len(schema)
}

// rowsRegular reports every row has exactly width columns; the
// vectorized kernels require it (a ragged row changes `[]` semantics to
// a dynamic throw, which only the row path reproduces).
func rowsRegular(rows [][]store.Val, width int) bool {
	for _, r := range rows {
		if len(r) != width {
			return false
		}
	}
	return true
}

// colStatsFor returns live statistics for one column of a scan, or nil
// for transient relations and unavailable columnar forms. Building the
// statistics warms the relation's columnar cache as a side effect.
func colStatsFor(rel *store.Relation, rows [][]store.Val, col int) *store.ColStats {
	if rel == nil {
		return nil
	}
	blk := rel.ColumnsRows(rows)
	if blk == nil || col < 0 || col >= len(blk.Cols) {
		return nil
	}
	st := blk.Cols[col].Stats
	return &st
}

// ---------------------------------------------------------------------
// Join algorithms (vectorized)
// ---------------------------------------------------------------------

// concatRow materialises one output row of a join.
func concatRow(r1, r2 []store.Val) []store.Val {
	out := make([]store.Val, 0, len(r1)+len(r2))
	out = append(out, r1...)
	return append(out, r2...)
}

// chargeJoin charges the abstract cost of a full equi-join scan — the
// same total the nested-loop row path pays: per pair, one traversal step
// plus the constant predicate cost. Charged in per-outer-row lumps so
// budget enforcement stays responsive.
func chargeJoin(m *machine.Machine, n1, n2, pairSteps int) error {
	per := n2 * (1 + pairSteps)
	for i := 0; i < n1; i++ {
		if err := m.TickN(per); err != nil {
			return err
		}
	}
	return nil
}

// hashJoin probes the left rows in order against postings built on the
// right side, so the output ordering is exactly the nested loop's
// (postings ascend). The build side is always the probe target's
// opposite; the planner's build-side choice only affects the plan
// rendering, not correctness.
func hashJoin(out *Rel, rows1, rows2 [][]store.Val, lc, rc int) {
	// Typed fast path: int keys on both sides.
	allInt := true
	for _, r := range rows2 {
		if r[rc].Kind != store.ValInt {
			allInt = false
			break
		}
	}
	if allInt {
		for _, r := range rows1 {
			if r[lc].Kind != store.ValInt {
				allInt = false
				break
			}
		}
	}
	if allInt {
		ht := make(map[int64][]int32, len(rows2))
		for i, r := range rows2 {
			k := r[rc].Int
			ht[k] = append(ht[k], int32(i))
		}
		for _, r1 := range rows1 {
			for _, i := range ht[r1[lc].Int] {
				out.Rows = append(out.Rows, concatRow(r1, rows2[i]))
			}
		}
		return
	}
	// store.Val is comparable and its == coincides with Val.Eq for values
	// built by the constructors, so the generic map join is exact.
	ht := make(map[store.Val][]int32, len(rows2))
	for i, r := range rows2 {
		ht[r[rc]] = append(ht[r[rc]], int32(i))
	}
	for _, r1 := range rows1 {
		for _, i := range ht[r1[lc]] {
			out.Rows = append(out.Rows, concatRow(r1, rows2[i]))
		}
	}
}

// intKeys extracts an int64 key column, reporting false on any non-int.
func intKeys(rows [][]store.Val, col int) ([]int64, bool) {
	ks := make([]int64, len(rows))
	for i, r := range rows {
		if r[col].Kind != store.ValInt {
			return nil, false
		}
		ks[i] = r[col].Int
	}
	return ks, true
}

// mergeJoinSorted merges two key columns known to be sorted ascending,
// emitting pairs in (left asc, right asc) order per equal run — exactly
// the nested-loop output order for sorted inputs.
func mergeJoinSorted(out *Rel, rows1, rows2 [][]store.Val, k1, k2 []int64) {
	i1, i2 := 0, 0
	for i1 < len(k1) && i2 < len(k2) {
		switch {
		case k1[i1] < k2[i2]:
			i1++
		case k1[i1] > k2[i2]:
			i2++
		default:
			e1 := i1
			for e1 < len(k1) && k1[e1] == k1[i1] {
				e1++
			}
			e2 := i2
			for e2 < len(k2) && k2[e2] == k2[i2] {
				e2++
			}
			for a := i1; a < e1; a++ {
				for b := i2; b < e2; b++ {
					out.Rows = append(out.Rows, concatRow(rows1[a], rows2[b]))
				}
			}
			i1, i2 = e1, e2
		}
	}
}

// mergeJoinForced runs a merge join over unsorted int keys by sorting
// index permutations, then restores nested-loop output order. Used only
// when the ForceJoin knob demands a merge on inputs the planner would
// not have picked it for (the property tests exercising plan-choice
// equivalence).
func mergeJoinForced(out *Rel, rows1, rows2 [][]store.Val, k1, k2 []int64) {
	p1 := sortedPerm(k1)
	p2 := sortedPerm(k2)
	type pair struct{ a, b int32 }
	var pairs []pair
	i1, i2 := 0, 0
	for i1 < len(p1) && i2 < len(p2) {
		switch {
		case k1[p1[i1]] < k2[p2[i2]]:
			i1++
		case k1[p1[i1]] > k2[p2[i2]]:
			i2++
		default:
			e1 := i1
			for e1 < len(p1) && k1[p1[e1]] == k1[p1[i1]] {
				e1++
			}
			e2 := i2
			for e2 < len(p2) && k2[p2[e2]] == k2[p2[i2]] {
				e2++
			}
			for a := i1; a < e1; a++ {
				for b := i2; b < e2; b++ {
					pairs = append(pairs, pair{int32(p1[a]), int32(p2[b])})
				}
			}
			i1, i2 = e1, e2
		}
	}
	sort.Slice(pairs, func(x, y int) bool {
		if pairs[x].a != pairs[y].a {
			return pairs[x].a < pairs[y].a
		}
		return pairs[x].b < pairs[y].b
	})
	for _, p := range pairs {
		out.Rows = append(out.Rows, concatRow(rows1[p.a], rows2[p.b]))
	}
}

func sortedPerm(keys []int64) []int {
	p := make([]int, len(keys))
	for i := range p {
		p[i] = i
	}
	sort.SliceStable(p, func(a, b int) bool { return keys[p[a]] < keys[p[b]] })
	return p
}

// ---------------------------------------------------------------------
// Vectorized kernel drivers
// ---------------------------------------------------------------------

// cmpOpByte maps a comparison primitive (possibly with the constant on
// the left) to the planner's op encoding for col OP k.
func cmpOpByte(op string, flipped bool) byte {
	if flipped {
		switch op {
		case "<":
			return '>'
		case ">":
			return '<'
		case "<=":
			return 'g'
		default: // ">="
			return 'l'
		}
	}
	switch op {
	case "<":
		return '<'
	case ">":
		return '>'
	case "<=":
		return 'l'
	default:
		return 'g'
	}
}

// vecSelect runs a compiled predicate over the scan. The fused path —
// integer comparison against a typed null-free column vector — is a
// tight Go loop; everything else in the fragment runs the general vprog
// evaluator, still without per-row boxing or machine re-entry.
func (mg *Manager) vecSelect(m *machine.Machine, vp *vprog, out *Rel, rows [][]store.Val, rel *store.Relation) (machine.Outcome, error) {
	n := len(rows)
	m.AddVecRows(n)
	if fc, ok := vp.fastSelCmp(); ok && rel != nil {
		if blk := rel.ColumnsRows(rows); blk != nil && fc.col < len(blk.Cols) {
			cv := &blk.Cols[fc.col]
			if cv.Ints != nil && cv.Nulls == nil && cv.Vals == nil {
				// Per row: 1 traversal + entry + load + compare = 4 steps.
				for base := 0; base < n; base += vecBatch {
					c := min(vecBatch, n-base)
					if err := m.TickN(c * 4); err != nil {
						return machine.Outcome{}, err
					}
					for i := base; i < base+c; i++ {
						keep := fc.fv
						if fc.holds(cv.Ints[i]) {
							keep = fc.tv
						}
						if keep {
							out.Rows = append(out.Rows, rows[i])
						}
					}
				}
				if mg.explaining() {
					st := cv.Stats
					mg.plan(m, &qopt.PlanNode{
						Op: "select", Algo: "vector-fused", Table: tableName(rel),
						InRows:  int64(n),
						EstRows: qopt.EstCmpMatches(&st, n, cmpOpByte(fc.op, fc.flipped), fc.k),
						ActRows: int64(len(out.Rows)),
						Detail:  fmt.Sprintf("col=%d %s %d", fc.col, fc.op, fc.k),
					})
				}
				return ok1(out), nil
			}
		}
	}
	ev := vp.evaler()
	// Traversal is charged in batchSize lumps — the same lump positions as
	// the row path, so an exception aborts both modes at the same total.
	for base := 0; base < n; base += batchSize {
		c := min(batchSize, n-base)
		if err := m.TickN(c); err != nil {
			return machine.Outcome{}, err
		}
		acc := 0
		for i := base; i < base+c; i++ {
			r := ev.eval(rows[i], nil)
			acc += r.steps
			if r.err != nil {
				m.TickN(acc)
				return machine.Outcome{}, r.err
			}
			if r.excOK {
				if err := m.TickN(acc); err != nil {
					return machine.Outcome{}, err
				}
				return machine.Outcome{Branch: 0, Results: []machine.Value{machine.FromStoreVal(r.exc)}}, nil
			}
			if r.retRow || r.ret.Kind != store.ValBool {
				m.TickN(acc)
				return machine.Outcome{}, fmt.Errorf("relalg: select predicate returned %s, want boolean", ev.showRes(r))
			}
			if r.ret.Bool {
				out.Rows = append(out.Rows, rows[i])
			}
		}
		if err := m.TickN(acc); err != nil {
			return machine.Outcome{}, err
		}
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "select", Algo: "vector", Table: tableName(rel),
			InRows: int64(n), EstRows: -1, ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}

// vecProject runs a compiled target function over the scan, emitting the
// constructed tuples.
func (mg *Manager) vecProject(m *machine.Machine, vp *vprog, out *Rel, rows [][]store.Val, rel *store.Relation) (machine.Outcome, error) {
	n := len(rows)
	m.AddVecRows(n)
	ev := vp.evaler()
	for base := 0; base < n; base += batchSize {
		c := min(batchSize, n-base)
		if err := m.TickN(c); err != nil {
			return machine.Outcome{}, err
		}
		acc := 0
		for i := base; i < base+c; i++ {
			r := ev.eval(rows[i], nil)
			acc += r.steps
			if r.err != nil {
				m.TickN(acc)
				return machine.Outcome{}, r.err
			}
			if r.excOK {
				if err := m.TickN(acc); err != nil {
					return machine.Outcome{}, err
				}
				return machine.Outcome{Branch: 0, Results: []machine.Value{machine.FromStoreVal(r.exc)}}, nil
			}
			if !r.retRow {
				m.TickN(acc)
				return machine.Outcome{}, fmt.Errorf("relalg: project target returned %s, want tuple", ev.showRes(r))
			}
			out.Rows = append(out.Rows, append([]store.Val(nil), ev.row...))
		}
		if err := m.TickN(acc); err != nil {
			return machine.Outcome{}, err
		}
	}
	synthSchema(out)
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "project", Algo: "vector", Table: tableName(rel),
			InRows: int64(n), EstRows: float64(n), ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}

// vecExists runs a compiled predicate with early exit, charging exactly
// the rows it visits (one traversal step plus the predicate's steps per
// row, like the row path).
func (mg *Manager) vecExists(m *machine.Machine, vp *vprog, rows [][]store.Val, rel *store.Relation) (machine.Outcome, error) {
	ev := vp.evaler()
	acc := 0
	flush := func() error {
		if acc == 0 {
			return nil
		}
		err := m.TickN(acc)
		acc = 0
		return err
	}
	visited := 0
	for _, row := range rows {
		r := ev.eval(row, nil)
		acc += 1 + r.steps
		visited++
		if r.err != nil {
			flush()
			return machine.Outcome{}, r.err
		}
		if r.excOK {
			if err := flush(); err != nil {
				return machine.Outcome{}, err
			}
			return machine.Outcome{Branch: 0, Results: []machine.Value{machine.FromStoreVal(r.exc)}}, nil
		}
		if r.retRow || r.ret.Kind != store.ValBool {
			flush()
			return machine.Outcome{}, fmt.Errorf("relalg: exists predicate returned %s, want boolean", ev.showRes(r))
		}
		if r.ret.Bool {
			if err := flush(); err != nil {
				return machine.Outcome{}, err
			}
			m.AddVecRows(visited)
			if mg.explaining() {
				mg.plan(m, &qopt.PlanNode{
					Op: "exists", Algo: "vector", Table: tableName(rel),
					InRows: int64(len(rows)), EstRows: -1, ActRows: int64(visited),
				})
			}
			return ok1(machine.Bool(true)), nil
		}
		if acc >= 4*vecBatch {
			if err := flush(); err != nil {
				return machine.Outcome{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return machine.Outcome{}, err
	}
	m.AddVecRows(visited)
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "exists", Algo: "vector", Table: tableName(rel),
			InRows: int64(len(rows)), EstRows: -1, ActRows: int64(visited),
		})
	}
	return ok1(machine.Bool(false)), nil
}

// vecJoin plans and runs a join whose predicate compiled to a vprog over
// the concatenated pair. Pure equi-joins go through the cost-based
// planner (hash / merge / nested on live statistics, or the ForceJoin
// knob); every other predicate in the fragment runs a vectorized nested
// loop. All algorithms charge the identical abstract cost of the full
// cross-product scan, so plan choice is invisible to step accounting.
func (mg *Manager) vecJoin(m *machine.Machine, vp *vprog, out *Rel, rows1, rows2 [][]store.Val, w1 int, rel1, rel2 *store.Relation) (machine.Outcome, error) {
	n1, n2 := len(rows1), len(rows2)
	m.AddVecRows(n1 + n2)
	if lc, rc, psteps, isEqui := vp.equiCols(w1); isEqui {
		ls := colStatsFor(rel1, rows1, lc)
		rs := colStatsFor(rel2, rows2, rc)
		algo, buildLeft := qopt.ChooseJoinAlgo(ls, rs, n1, n2)
		if mg.ForceJoin != "" {
			algo = mg.ForceJoin
		}
		ran := false
		if algo == qopt.JoinMerge {
			k1, okL := intKeys(rows1, lc)
			k2, okR := intKeys(rows2, rc)
			if okL && okR {
				if err := chargeJoin(m, n1, n2, psteps); err != nil {
					return machine.Outcome{}, err
				}
				if ls != nil && ls.Sorted && rs != nil && rs.Sorted {
					mergeJoinSorted(out, rows1, rows2, k1, k2)
				} else {
					mergeJoinForced(out, rows1, rows2, k1, k2)
				}
				ran = true
			} else {
				algo = qopt.JoinHash // merge needs integer keys
			}
		}
		if !ran && algo == qopt.JoinHash {
			if err := chargeJoin(m, n1, n2, psteps); err != nil {
				return machine.Outcome{}, err
			}
			hashJoin(out, rows1, rows2, lc, rc)
			ran = true
		}
		if ran {
			if mg.explaining() {
				side := "right"
				if buildLeft {
					side = "left"
				}
				mg.plan(m, &qopt.PlanNode{
					Op: "join", Algo: algo,
					Table:   tableName(rel1) + "," + tableName(rel2),
					InRows:  int64(n1) * int64(n2),
					EstRows: qopt.EstJoinMatches(ls, rs, n1, n2),
					ActRows: int64(len(out.Rows)),
					Detail:  fmt.Sprintf("keys=%d,%d build=%s", lc, rc, side),
				})
			}
			return ok1(out), nil
		}
		// algo == nested: fall through to the vectorized nested loop.
	}
	ev := vp.evaler()
	for _, r1 := range rows1 {
		inner := rows2
		for len(inner) > 0 {
			c := min(batchSize, len(inner))
			if err := m.TickN(c); err != nil {
				return machine.Outcome{}, err
			}
			acc := 0
			for _, r2 := range inner[:c] {
				r := ev.eval(r1, r2)
				acc += r.steps
				if r.err != nil {
					m.TickN(acc)
					return machine.Outcome{}, r.err
				}
				if r.excOK {
					if err := m.TickN(acc); err != nil {
						return machine.Outcome{}, err
					}
					return machine.Outcome{Branch: 0, Results: []machine.Value{machine.FromStoreVal(r.exc)}}, nil
				}
				if r.retRow || r.ret.Kind != store.ValBool {
					m.TickN(acc)
					return machine.Outcome{}, fmt.Errorf("relalg: join predicate returned %s, want boolean", ev.showRes(r))
				}
				if r.ret.Bool {
					out.Rows = append(out.Rows, concatRow(r1, r2))
				}
			}
			if err := m.TickN(acc); err != nil {
				return machine.Outcome{}, err
			}
			inner = inner[c:]
		}
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "join", Algo: qopt.JoinNested,
			Table:  tableName(rel1) + "," + tableName(rel2),
			InRows: int64(n1) * int64(n2), EstRows: -1, ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}
