// EXPLAIN capture: when a caller registers interest for a machine, the
// executing kernels record one qopt.PlanNode per operator — which
// algorithm actually served it, with estimated vs. actual cardinalities.
// Capture is per-machine so concurrent sessions sharing one Manager never
// see each other's plans, and the disabled path costs one atomic load.
package relalg

import (
	"sync/atomic"

	"tycoon/internal/machine"
	"tycoon/internal/qopt"
	"tycoon/internal/store"
)

// CaptureExplain starts recording the physical plan of queries executed
// on m. Call TakeExplain to collect the nodes and stop recording.
func (mg *Manager) CaptureExplain(m *machine.Machine) {
	if m == nil {
		return
	}
	mg.mu.Lock()
	if mg.explains == nil {
		mg.explains = make(map[*machine.Machine]*qopt.PlanSink)
	}
	if _, ok := mg.explains[m]; !ok {
		mg.explains[m] = &qopt.PlanSink{}
		atomic.AddInt32(&mg.explainN, 1)
	}
	mg.mu.Unlock()
}

// TakeExplain stops recording for m and returns the plan nodes collected
// since CaptureExplain, in execution order. nil when capture was never
// enabled for m.
func (mg *Manager) TakeExplain(m *machine.Machine) []*qopt.PlanNode {
	if m == nil {
		return nil
	}
	mg.mu.Lock()
	sink, ok := mg.explains[m]
	if ok {
		delete(mg.explains, m)
		atomic.AddInt32(&mg.explainN, -1)
	}
	mg.mu.Unlock()
	if !ok {
		return nil
	}
	return sink.Nodes()
}

// explaining reports whether any machine has capture enabled; kernels use
// it to skip plan-node construction entirely on the hot path.
func (mg *Manager) explaining() bool {
	return atomic.LoadInt32(&mg.explainN) != 0
}

// plan records a node for m's sink, if capture is enabled for m.
func (mg *Manager) plan(m *machine.Machine, n *qopt.PlanNode) {
	mg.mu.Lock()
	sink := mg.explains[m]
	mg.mu.Unlock()
	sink.Add(n)
}

// fallbackAlgo names the non-vectorized execution path in plan nodes:
// the batched compiled-kernel path, or the pure row-at-a-time path when
// batching is disabled.
func (mg *Manager) fallbackAlgo() string {
	if mg.NoBatch {
		return "row"
	}
	return "batch"
}

// tableName renders a relation's name for plan nodes; transients have
// none.
func tableName(rel *store.Relation) string {
	if rel == nil {
		return ""
	}
	return rel.Name
}
