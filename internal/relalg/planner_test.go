package relalg

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tycoon/internal/machine"
	"tycoon/internal/qopt"
	"tycoon/internal/store"
)

func joinSrc(l, r store.OID) string {
	return `(join proc(x !ce !cc)
	        ([] x 0 cont(a) ([] x 2 cont(b) (== a b cont()(cc true) cont()(cc false))))
	      ` + oidStr(l) + ` ` + oidStr(r) + ` e k)`
}

// fillRel creates a two-column persistent relation whose key column holds
// the given values (second column is the insertion position).
func fillRel(t *testing.T, mg *Manager, name string, keys []store.Val) store.OID {
	t.Helper()
	oid, err := mg.CreateRelation(name, []store.Column{
		{Name: "k", Type: store.ColInt},
		{Name: "pos", Type: store.ColInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if err := mg.InsertRow(oid, []store.Val{k, store.IntVal(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return oid
}

func intKeysOf(vals ...int64) []store.Val {
	ks := make([]store.Val, len(vals))
	for i, v := range vals {
		ks[i] = store.IntVal(v)
	}
	return ks
}

func findNode(plan []*qopt.PlanNode, op string) *qopt.PlanNode {
	for _, n := range plan {
		if n.Op == op {
			return n
		}
	}
	return nil
}

// TestPlannerSwitchesJoinAlgoOnLiveStats is the acceptance test for the
// cost-based planner: the same query over the same schema switches join
// algorithm purely because the live column statistics changed.
func TestPlannerSwitchesJoinAlgoOnLiveStats(t *testing.T) {
	_, mg, m, left := world(t, 64)
	var asc []store.Val
	for i := 0; i < 64; i++ {
		asc = append(asc, store.IntVal(int64(i)))
	}
	right := fillRel(t, mg, "s", asc)
	src := joinSrc(left, right)

	// Both key columns ascending: the planner merges pre-sorted inputs.
	mg.CaptureExplain(m)
	v, err := run(t, m, src)
	if err != nil {
		t.Fatal(err)
	}
	jn := findNode(mg.TakeExplain(m), "join")
	if jn == nil {
		t.Fatal("no join node in plan")
	}
	if jn.Algo != qopt.JoinMerge {
		t.Errorf("sorted inputs: algo = %s, want merge (%s)", jn.Algo, jn)
	}
	if got := int64(len(v.(*Rel).Rows)); got != 64 || jn.ActRows != got {
		t.Errorf("rows=%d, plan act=%d, want 64", got, jn.ActRows)
	}
	if jn.EstRows != 64 {
		t.Errorf("est=%v, want 64 (uniform containment over 64 distinct keys)", jn.EstRows)
	}

	// One out-of-order insert breaks the right key's sortedness: nothing
	// else changes, and the planner flips to a hash join.
	if err := mg.InsertRow(right, []store.Val{store.IntVal(0), store.IntVal(64)}); err != nil {
		t.Fatal(err)
	}
	mg.CaptureExplain(m)
	v, err = run(t, m, src)
	if err != nil {
		t.Fatal(err)
	}
	jn = findNode(mg.TakeExplain(m), "join")
	if jn == nil || jn.Algo != qopt.JoinHash {
		t.Errorf("unsorted input: algo = %v, want hash", jn)
	}
	if got := len(v.(*Rel).Rows); got != 65 {
		t.Errorf("rows after duplicate key = %d, want 65", got)
	}

	// Inputs too small for setup costs: nested loop.
	tinyL := fillRel(t, mg, "tl", intKeysOf(1, 2))
	tinyR := fillRel(t, mg, "tr", intKeysOf(2, 3))
	mg.CaptureExplain(m)
	if _, err := run(t, m, joinSrc(tinyL, tinyR)); err != nil {
		t.Fatal(err)
	}
	jn = findNode(mg.TakeExplain(m), "join")
	if jn == nil || jn.Algo != qopt.JoinNested {
		t.Errorf("tiny inputs: algo = %v, want nested", jn)
	}
}

// TestExplainCapture checks the per-machine plan capture surface: nodes
// arrive only between CaptureExplain and TakeExplain, render as EXPLAIN
// text, and report estimated against actual cardinalities.
func TestExplainCapture(t *testing.T) {
	_, mg, m, oid := world(t, 300)
	src := `(select proc(x !ce !cc)
	          ([] x 1 cont(a) (< a 5 cont()(cc true) cont()(cc false))) ` + oidStr(oid) + ` e k)`

	// No capture: no plan, and TakeExplain on a machine never captured is nil.
	if _, err := run(t, m, src); err != nil {
		t.Fatal(err)
	}
	if p := mg.TakeExplain(m); p != nil {
		t.Fatalf("uncaptured plan = %v", p)
	}

	mg.CaptureExplain(m)
	v, err := run(t, m, src)
	if err != nil {
		t.Fatal(err)
	}
	plan := mg.TakeExplain(m)
	sel := findNode(plan, "select")
	if sel == nil {
		t.Fatalf("no select node: %v", plan)
	}
	if sel.Algo != "vector-fused" {
		t.Errorf("algo = %s, want vector-fused", sel.Algo)
	}
	if sel.ActRows != int64(len(v.(*Rel).Rows)) {
		t.Errorf("act=%d, rows=%d", sel.ActRows, len(v.(*Rel).Rows))
	}
	if sel.EstRows < 0 {
		t.Errorf("fused select should carry a range estimate: %s", sel)
	}
	text := qopt.RenderPlan(plan)
	if !strings.Contains(text, "select algo=vector-fused") || !strings.Contains(text, "act=") {
		t.Errorf("RenderPlan:\n%s", text)
	}
	// Capture is one-shot: a second take returns nil.
	if p := mg.TakeExplain(m); p != nil {
		t.Errorf("second take = %v", p)
	}
}

// TestExplainIndexScan checks the access-path node: a warm index probe
// reports algo=index with the equality estimate, and the fallback scan
// (no index on the column) reports algo=scan.
func TestExplainIndexScan(t *testing.T) {
	_, mg, m, oid := world(t, 200)
	mg.CaptureExplain(m)
	if _, err := run(t, m, "(indexscan "+oidStr(oid)+" 0 123 e k)"); err != nil {
		t.Fatal(err)
	}
	n := findNode(mg.TakeExplain(m), "indexscan")
	if n == nil || n.Algo != "index" {
		t.Fatalf("probe node = %v, want algo=index", n)
	}
	if n.ActRows != 1 {
		t.Errorf("act=%d, want 1", n.ActRows)
	}
	mg.CaptureExplain(m)
	if _, err := run(t, m, "(indexscan "+oidStr(oid)+" 1 3 e k)"); err != nil {
		t.Fatal(err)
	}
	n = findNode(mg.TakeExplain(m), "indexscan")
	if n == nil || n.Algo != "scan" {
		t.Fatalf("fallback node = %v, want algo=scan", n)
	}
}

// joinModes are the execution strategies the property test drives; every
// one must agree with the row-at-a-time oracle on result set AND abstract
// step count.
var joinModes = []struct {
	name string
	set  func(mg *Manager)
}{
	{"oracle", func(mg *Manager) { mg.NoBatch = true }},
	{"batch", func(mg *Manager) { mg.NoVector = true }},
	{"planner", func(mg *Manager) {}},
	{"force-hash", func(mg *Manager) { mg.ForceJoin = qopt.JoinHash }},
	{"force-merge", func(mg *Manager) { mg.ForceJoin = qopt.JoinMerge }},
	{"force-nested", func(mg *Manager) { mg.ForceJoin = qopt.JoinNested }},
}

// canonRows renders a result's rows as a sorted multiset, so plans that
// legitimately reorder output would still be caught — output order is
// part of the contract, so the unsorted rendering is compared too.
func renderRows(v *Rel) (ordered string, canon string) {
	lines := make([]string, len(v.Rows))
	for i, r := range v.Rows {
		lines[i] = fmt.Sprintf("%v", r)
	}
	ordered = strings.Join(lines, "\n")
	sort.Strings(lines)
	return ordered, strings.Join(lines, "\n")
}

// TestJoinPlansMatchOracle is the property test over plan choices: for
// relation shapes covering empty, sorted, unsorted, skewed and all-null
// key columns, every plan the planner can choose (and every forced
// algorithm) must produce exactly the oracle's rows, in the oracle's
// order, for the oracle's step count.
func TestJoinPlansMatchOracle(t *testing.T) {
	shapes := map[string][]store.Val{
		"empty":    nil,
		"sorted":   intKeysOf(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
		"unsorted": intKeysOf(5, 2, 9, 0, 11, 3, 1, 8, 10, 4, 7, 6),
		"skewed":   intKeysOf(7, 7, 7, 7, 7, 7, 7, 7, 1, 7, 7, 2),
		"allnull": {store.NilVal(), store.NilVal(), store.NilVal(),
			store.NilVal(), store.NilVal(), store.NilVal()},
	}
	names := make([]string, 0, len(shapes))
	for name := range shapes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, ln := range names {
		for _, rn := range names {
			t.Run(ln+"/"+rn, func(t *testing.T) {
				type outcome struct {
					ordered, canon string
					steps          int64
				}
				results := make(map[string]outcome)
				for _, mode := range joinModes {
					st, err := store.Open("")
					if err != nil {
						t.Fatal(err)
					}
					mg := NewManager(st)
					mode.set(mg)
					l := fillRel(t, mg, "l", shapes[ln])
					r := fillRel(t, mg, "r", shapes[rn])
					m := machine.New(st)
					mg.Register(m)
					m.ResetSteps()
					v, err := run(t, m, joinSrc(l, r))
					st.Close()
					if err != nil {
						t.Fatalf("%s: %v", mode.name, err)
					}
					ordered, canon := renderRows(v.(*Rel))
					results[mode.name] = outcome{ordered, canon, m.Steps()}
				}
				want := results["oracle"]
				for _, mode := range joinModes {
					got := results[mode.name]
					if got.canon != want.canon {
						t.Errorf("%s: row multiset differs from oracle\ngot:\n%s\nwant:\n%s",
							mode.name, got.canon, want.canon)
					}
					if got.ordered != want.ordered {
						t.Errorf("%s: row order differs from oracle", mode.name)
					}
					if got.steps != want.steps {
						t.Errorf("%s: %d steps, oracle %d", mode.name, got.steps, want.steps)
					}
				}
			})
		}
	}
}

// TestSelectPlansMatchOracle extends the property to the select access
// paths (fused column kernel, general vectorized, batched, row) over the
// same shape zoo, including the type-error behaviour on all-null keys.
func TestSelectPlansMatchOracle(t *testing.T) {
	shapes := map[string][]store.Val{
		"empty":    nil,
		"sorted":   intKeysOf(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11),
		"unsorted": intKeysOf(5, 2, 9, 0, 11, 3, 1, 8, 10, 4, 7, 6),
		"skewed":   intKeysOf(7, 7, 7, 7, 7, 7, 7, 7, 1, 7, 7, 2),
		"allnull":  {store.NilVal(), store.NilVal(), store.NilVal()},
	}
	modes := []struct {
		name string
		set  func(mg *Manager)
	}{
		{"oracle", func(mg *Manager) { mg.NoBatch = true }},
		{"batch", func(mg *Manager) { mg.NoVector = true }},
		{"vector", func(mg *Manager) {}},
	}
	for name, keys := range shapes {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				rows  string
				errS  string
				steps int64
			}
			results := make(map[string]outcome)
			for _, mode := range modes {
				st, err := store.Open("")
				if err != nil {
					t.Fatal(err)
				}
				mg := NewManager(st)
				mode.set(mg)
				oid := fillRel(t, mg, "t", keys)
				m := machine.New(st)
				mg.Register(m)
				m.ResetSteps()
				src := `(select proc(x !ce !cc)
				  ([] x 0 cont(a) (< a 6 cont()(cc true) cont()(cc false))) ` + oidStr(oid) + ` e k)`
				v, err := run(t, m, src)
				st.Close()
				o := outcome{steps: m.Steps()}
				if err != nil {
					o.errS = err.Error()
				} else {
					o.rows, _ = renderRows(v.(*Rel))
				}
				results[mode.name] = o
			}
			want := results["oracle"]
			for _, mode := range modes {
				if got := results[mode.name]; got != want {
					t.Errorf("%s: %+v, oracle %+v", mode.name, got, want)
				}
			}
		})
	}
}
