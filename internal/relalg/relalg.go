// Package relalg implements the relational bulk data substrate: relation
// values, hash indexes, and the query primitive procedures (select,
// project, join, exists, empty, foreach, rinsert, indexscan, count) that
// paper §4.2 compiles embedded queries into.
//
// Query primitives follow the extension recipe of paper §2.3: they are
// registered in the compile-time registry (arity, cost, effects) by this
// package's init, and their executors are attached to a Machine by
// Register. Predicates and target expressions are ordinary TML closures;
// evaluating them re-enters the machine, which is what makes program and
// query execution — and therefore program and query *optimization* —
// mutually recursive (Fig. 4).
package relalg

import (
	"fmt"

	"tycoon/internal/machine"
	"tycoon/internal/prim"
	"tycoon/internal/store"
)

func init() {
	// Compile-time descriptors (paper §2.3: new primitives extend the
	// registry). select/project/join/exists/empty/foreach/count follow
	// the (vals… ce cc) convention; their cost estimates reflect that
	// they traverse bulk data.
	prim.Default.Register(&prim.Desc{Name: "select", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "project", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "join", NVals: 3, NConts: 2, Cost: 128, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "exists", NVals: 2, NConts: 2, Cost: 48, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "empty", NVals: 1, NConts: 2, Cost: 4, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "count", NVals: 1, NConts: 2, Cost: 4, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "foreach", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Writer})
	prim.Default.Register(&prim.Desc{Name: "rinsert", NVals: 2, NConts: 2, Cost: 16, Effect: prim.Writer})
	// (indexscan rel col key ce cc): introduced only by the query
	// optimizer when the runtime binding shows an index (paper §4.2).
	prim.Default.Register(&prim.Desc{Name: "indexscan", NVals: 3, NConts: 2, Cost: 8, Effect: prim.Reader})
}

// Rel is a transient relation value (query intermediate or result).
type Rel struct {
	machine.ExtValue
	Schema []store.Column
	Rows   [][]store.Val
}

// Show renders the relation briefly.
func (r *Rel) Show() string { return fmt.Sprintf("rel(%d rows)", len(r.Rows)) }

// Manager owns the runtime index structures for persistent relations and
// provides the query executors. One Manager serves one store.
type Manager struct {
	st *store.Store
	// indexes caches hash indexes per relation OID and column: the
	// runtime binding knowledge the query optimizer consults.
	indexes map[store.OID]map[int]hashIndex
}

type hashIndex map[store.Val][]int

// NewManager returns a manager over st.
func NewManager(st *store.Store) *Manager {
	return &Manager{st: st, indexes: make(map[store.OID]map[int]hashIndex)}
}

// Register attaches the query executors to a machine.
func (mg *Manager) Register(m *machine.Machine) {
	m.RegisterExec("select", mg.execSelect)
	m.RegisterExec("project", mg.execProject)
	m.RegisterExec("join", mg.execJoin)
	m.RegisterExec("exists", mg.execExists)
	m.RegisterExec("empty", mg.execEmpty)
	m.RegisterExec("count", mg.execCount)
	m.RegisterExec("foreach", mg.execForeach)
	m.RegisterExec("rinsert", mg.execInsert)
	m.RegisterExec("indexscan", mg.execIndexScan)
}

// CreateRelation allocates a persistent relation with the given schema
// and index declarations and registers it as a store root under
// "rel:<name>", the name TL rel declarations bind against.
func (mg *Manager) CreateRelation(name string, schema []store.Column, indexCols ...int) (store.OID, error) {
	rel := &store.Relation{Name: name, Schema: schema}
	for _, c := range indexCols {
		if c < 0 || c >= len(schema) {
			return store.Nil, fmt.Errorf("relalg: index column %d out of range", c)
		}
		rel.Indexes = append(rel.Indexes, store.IndexSpec{Column: c})
	}
	oid := mg.st.Alloc(rel)
	mg.st.SetRoot("rel:"+name, oid)
	return oid, nil
}

// InsertRow appends a row to a persistent relation, maintaining indexes.
func (mg *Manager) InsertRow(oid store.OID, row []store.Val) error {
	obj, err := mg.st.Get(oid)
	if err != nil {
		return err
	}
	rel, ok := obj.(*store.Relation)
	if !ok {
		return fmt.Errorf("relalg: oid 0x%x is a %s, not a relation", uint64(oid), obj.Kind())
	}
	if len(row) != len(rel.Schema) {
		return fmt.Errorf("relalg: row width %d, schema width %d", len(row), len(rel.Schema))
	}
	idx := len(rel.Rows)
	rel.Rows = append(rel.Rows, row)
	mg.st.MarkDirty(oid)
	if cols, ok := mg.indexes[oid]; ok {
		for col, ix := range cols {
			ix[row[col]] = append(ix[row[col]], idx)
		}
	}
	return nil
}

// index returns (building lazily) the hash index on the given column of a
// persistent relation, or nil when none is declared.
func (mg *Manager) index(oid store.OID, rel *store.Relation, col int) hashIndex {
	if !rel.HasIndexOn(col) {
		return nil
	}
	cols, ok := mg.indexes[oid]
	if !ok {
		cols = make(map[int]hashIndex)
		mg.indexes[oid] = cols
	}
	ix, ok := cols[col]
	if !ok {
		ix = make(hashIndex, len(rel.Rows))
		for i, row := range rel.Rows {
			ix[row[col]] = append(ix[row[col]], i)
		}
		cols[col] = ix
	}
	return ix
}

// relOf resolves a relation argument: a transient Rel or a Ref to a
// persistent relation.
func (mg *Manager) relOf(op string, v machine.Value) (schema []store.Column, rows [][]store.Val, oid store.OID, rel *store.Relation, err error) {
	switch v := v.(type) {
	case *Rel:
		return v.Schema, v.Rows, store.Nil, nil, nil
	case machine.Ref:
		obj, gerr := mg.st.Get(v.OID)
		if gerr != nil {
			return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: %w", op, gerr)
		}
		r, ok := obj.(*store.Relation)
		if !ok {
			return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: oid 0x%x is a %s", op, uint64(v.OID), obj.Kind())
		}
		return r.Schema, r.Rows, v.OID, r, nil
	default:
		return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: expected relation, got %s", op, v.Show())
	}
}

// rowValue converts a stored row to the runtime tuple the predicate
// closures receive.
func rowValue(row []store.Val) machine.Value {
	elems := make([]machine.Value, len(row))
	for i, v := range row {
		elems[i] = machine.FromStoreVal(v)
	}
	return &machine.Vector{Elems: elems}
}

// applyPred evaluates a predicate closure on one row; a TML exception
// raised by the predicate propagates as err.
func applyPred(m *machine.Machine, pred machine.Value, row []store.Val) (bool, error) {
	v, err := m.Apply(pred, []machine.Value{rowValue(row)})
	if err != nil {
		return false, err
	}
	b, ok := v.(machine.Bool)
	if !ok {
		return false, fmt.Errorf("relalg: predicate returned %s, want boolean", v.Show())
	}
	return bool(b), nil
}

// outEx converts a nested TML exception into an invocation of the query
// primitive's own exception continuation (exceptions raised inside
// predicates propagate to the enclosing block, paper §4.2).
func outEx(err error) (machine.Outcome, error) {
	if ex, ok := err.(*machine.Exception); ok {
		return machine.Outcome{Branch: 0, Results: []machine.Value{ex.Value}}, nil
	}
	return machine.Outcome{}, err
}

// ok1 invokes the normal continuation (position 1) with results.
func ok1(results ...machine.Value) machine.Outcome {
	return machine.Outcome{Branch: 1, Results: results}
}

// execSelect implements (select pred rel ce cc): σ_pred(rel).
func (mg *Manager) execSelect(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	schema, rows, _, _, err := mg.relOf("select", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{Schema: schema}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		keep, err := applyPred(m, pred, row)
		if err != nil {
			return outEx(err)
		}
		if keep {
			out.Rows = append(out.Rows, row)
		}
	}
	return ok1(out), nil
}

// execProject implements (project fn rel ce cc): π_fn(rel). The target
// function returns the new row as a vector of scalars.
func (mg *Manager) execProject(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	fn := vals[0]
	_, rows, _, _, err := mg.relOf("project", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		v, err := m.Apply(fn, []machine.Value{rowValue(row)})
		if err != nil {
			return outEx(err)
		}
		vec, ok := v.(*machine.Vector)
		if !ok {
			return machine.Outcome{}, fmt.Errorf("relalg: project target returned %s, want tuple", v.Show())
		}
		newRow := make([]store.Val, len(vec.Elems))
		for i, el := range vec.Elems {
			sv, err := machine.ToStoreVal(el)
			if err != nil {
				return machine.Outcome{}, fmt.Errorf("relalg: project: %w", err)
			}
			newRow[i] = sv
		}
		out.Rows = append(out.Rows, newRow)
	}
	// Synthesise a positional schema; the front end's type checker owns
	// the real column names.
	if len(out.Rows) > 0 {
		out.Schema = make([]store.Column, len(out.Rows[0]))
		for i, v := range out.Rows[0] {
			out.Schema[i] = store.Column{Name: fmt.Sprintf("c%d", i), Type: colTypeOf(v)}
		}
	}
	return ok1(out), nil
}

func colTypeOf(v store.Val) store.ColType {
	switch v.Kind {
	case store.ValInt:
		return store.ColInt
	case store.ValReal:
		return store.ColReal
	case store.ValBool:
		return store.ColBool
	default:
		return store.ColStr
	}
}

// execJoin implements (join pred r1 r2 ce cc): nested-loop θ-join; the
// predicate receives the concatenated row.
func (mg *Manager) execJoin(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	s1, rows1, _, _, err := mg.relOf("join", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	s2, rows2, _, _, err := mg.relOf("join", vals[2])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{Schema: append(append([]store.Column(nil), s1...), s2...)}
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if err := m.Tick(); err != nil {
				return machine.Outcome{}, err
			}
			row := append(append([]store.Val(nil), r1...), r2...)
			keep, err := applyPred(m, pred, row)
			if err != nil {
				return outEx(err)
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	return ok1(out), nil
}

// execExists implements (exists pred rel ce cc) with early exit.
func (mg *Manager) execExists(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	_, rows, _, _, err := mg.relOf("exists", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		found, err := applyPred(m, pred, row)
		if err != nil {
			return outEx(err)
		}
		if found {
			return ok1(machine.Bool(true)), nil
		}
	}
	return ok1(machine.Bool(false)), nil
}

// execEmpty implements (empty rel ce cc): R = ∅.
func (mg *Manager) execEmpty(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	_, rows, _, _, err := mg.relOf("empty", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	return ok1(machine.Bool(len(rows) == 0)), nil
}

// execCount implements (count rel ce cc).
func (mg *Manager) execCount(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	_, rows, _, _, err := mg.relOf("count", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	return ok1(machine.Int(int64(len(rows)))), nil
}

// execForeach implements (foreach body rel ce cc): element-at-a-time
// iteration with side effects.
func (mg *Manager) execForeach(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	body := vals[0]
	_, rows, _, _, err := mg.relOf("foreach", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		if _, err := m.Apply(body, []machine.Value{rowValue(row)}); err != nil {
			return outEx(err)
		}
	}
	return ok1(machine.Unit{}), nil
}

// execInsert implements (rinsert rel row ce cc).
func (mg *Manager) execInsert(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	row, ok := vals[1].(*machine.Vector)
	if !ok {
		return machine.Outcome{}, fmt.Errorf("relalg: rinsert row is %s, want tuple", vals[1].Show())
	}
	stRow := make([]store.Val, len(row.Elems))
	for i, el := range row.Elems {
		sv, err := machine.ToStoreVal(el)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("relalg: rinsert: %w", err)
		}
		stRow[i] = sv
	}
	switch rel := vals[0].(type) {
	case *Rel:
		rel.Rows = append(rel.Rows, stRow)
		return ok1(machine.Unit{}), nil
	case machine.Ref:
		if err := mg.InsertRow(rel.OID, stRow); err != nil {
			return machine.Outcome{}, err
		}
		return ok1(machine.Unit{}), nil
	default:
		return machine.Outcome{}, fmt.Errorf("relalg: rinsert into %s", vals[0].Show())
	}
}

// execIndexScan implements (indexscan rel col key ce cc): the physical
// access path the query optimizer substitutes for a selection on an
// indexed column (paper §4.2, "knowledge about index structures").
// Without an index the scan degrades to a sequential filter, so the
// rewrite is always safe.
func (mg *Manager) execIndexScan(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	schema, rows, oid, rel, err := mg.relOf("indexscan", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	col, ok := vals[1].(machine.Int)
	if !ok || int(col) < 0 || int(col) >= len(schema) {
		return machine.Outcome{}, fmt.Errorf("relalg: indexscan column %s", vals[1].Show())
	}
	key, err := machine.ToStoreVal(vals[2])
	if err != nil {
		return machine.Outcome{}, fmt.Errorf("relalg: indexscan key: %w", err)
	}
	out := &Rel{Schema: schema}
	if rel != nil {
		if ix := mg.index(oid, rel, int(col)); ix != nil {
			for _, i := range ix[key] {
				if err := m.Tick(); err != nil {
					return machine.Outcome{}, err
				}
				out.Rows = append(out.Rows, rows[i])
			}
			return ok1(out), nil
		}
	}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		if row[col].Eq(key) {
			out.Rows = append(out.Rows, row)
		}
	}
	return ok1(out), nil
}
