// Package relalg implements the relational bulk data substrate: relation
// values, hash indexes, and the query primitive procedures (select,
// project, join, exists, empty, foreach, rinsert, indexscan, count) that
// paper §4.2 compiles embedded queries into.
//
// Query primitives follow the extension recipe of paper §2.3: they are
// registered in the compile-time registry (arity, cost, effects) by this
// package's init, and their executors are attached to a Machine by
// Register. Predicates and target expressions are ordinary TML closures;
// evaluating them re-enters the machine, which is what makes program and
// query execution — and therefore program and query *optimization* —
// mutually recursive (Fig. 4).
//
// The operators process rows in fixed-size batches (DESIGN.md §9): the
// traversal cost of a batch is charged up front with one TickN, and the
// predicate is driven through a machine.Batch, which reuses one argument
// buffer and — when the predicate compiles step-neutrally to TAM code —
// one recycled frame per call instead of re-entering the tree
// interpreter per row.
package relalg

import (
	"fmt"
	"sync"

	"tycoon/internal/machine"
	"tycoon/internal/prim"
	"tycoon/internal/qopt"
	"tycoon/internal/store"
)

// batchSize is the number of rows whose traversal cost is charged as one
// TickN and processed per batch.
const batchSize = 256

// compileThreshold is the scan size above which compiling a predicate
// closure to TAM code amortises; smaller scans run interpreted.
const compileThreshold = 32

func init() {
	// Compile-time descriptors (paper §2.3: new primitives extend the
	// registry). select/project/join/exists/empty/foreach/count follow
	// the (vals… ce cc) convention; their cost estimates reflect that
	// they traverse bulk data.
	prim.Default.Register(&prim.Desc{Name: "select", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "project", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "join", NVals: 3, NConts: 2, Cost: 128, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "exists", NVals: 2, NConts: 2, Cost: 48, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "empty", NVals: 1, NConts: 2, Cost: 4, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "count", NVals: 1, NConts: 2, Cost: 4, Effect: prim.Reader})
	prim.Default.Register(&prim.Desc{Name: "foreach", NVals: 2, NConts: 2, Cost: 64, Effect: prim.Writer})
	prim.Default.Register(&prim.Desc{Name: "rinsert", NVals: 2, NConts: 2, Cost: 16, Effect: prim.Writer, RetainsVals: true})
	// (indexscan rel col key ce cc): introduced only by the query
	// optimizer when the runtime binding shows an index (paper §4.2).
	prim.Default.Register(&prim.Desc{Name: "indexscan", NVals: 3, NConts: 2, Cost: 8, Effect: prim.Reader})
}

// Rel is a transient relation value (query intermediate or result).
type Rel struct {
	machine.ExtValue
	Schema []store.Column
	Rows   [][]store.Val
}

// Show renders the relation briefly.
func (r *Rel) Show() string { return fmt.Sprintf("rel(%d rows)", len(r.Rows)) }

// Manager owns the runtime index structures for persistent relations and
// provides the query executors. One Manager serves one store.
type Manager struct {
	st *store.Store
	// NoBatch disables the batched kernels: every predicate call goes
	// through machine.Apply on a fresh tuple. The step-parity tests use
	// it to prove that batching is a pure representation change.
	NoBatch bool
	// NoVector disables the vectorized kernels only, leaving batching in
	// place; the parity tests use it to isolate the two layers.
	NoVector bool
	// ForceJoin overrides the cost-based join-algorithm choice for
	// equi-joins ("hash", "merge", "nested"); the plan-equivalence
	// property tests use it to run every algorithm over one input.
	ForceJoin string

	// mu guards indexes, stats, vprogs and explains (machines sharing one
	// store share the manager).
	mu sync.Mutex
	// vprogs caches compiled vectorized predicates per closure identity
	// and row width (nil entries record non-vectorizable predicates).
	vprogs map[vcacheKey]*vprog
	// explains holds per-machine EXPLAIN sinks; explainN mirrors its size
	// for the lock-free fast path.
	explains map[*machine.Machine]*qopt.PlanSink
	explainN int32
	// indexes caches hash indexes per relation OID and column: the
	// runtime binding knowledge the query optimizer consults. Each entry
	// remembers the relation object and row count it was built against,
	// so a reloaded relation or rows inserted behind the manager's back
	// invalidate (or extend) the cache instead of serving stale matches.
	indexes map[store.OID]map[int]*cachedIndex
	stats   IndexStats
}

type hashIndex map[store.Val][]int

// cachedIndex is one hash index together with the validity horizon it
// was built against. Once an index map has been handed to a kernel
// (shared), it is immutable: maintenance and tail extension go through a
// copy-on-write clone so concurrent scans on other sessions never
// observe a map mutation. Untouched buckets are shared between the old
// and new map; only appended buckets are copied. The clone is swapped in
// under mg.mu, after which in-place maintenance is legal again until the
// next scan marks the index shared.
type cachedIndex struct {
	rel  *store.Relation // object identity the index was built on
	rows int             // rows covered
	// builtPtrs snapshots, per covered row, the address of the row's
	// first element at build time. Row slices are immutable after
	// publication, so pointer identity of a prefix's last row certifies
	// that the cached postings still describe exactly that prefix — the
	// validity horizon the columnar MVCC views key off. The pointers are
	// copied out (never an alias of the caller's rows slice), so a
	// truncate-and-regrow that stomps a shared backing array changes the
	// observed addresses and is caught; holding the old pointers also
	// pins the old rows, so the allocator cannot recycle their storage
	// into a false match.
	builtPtrs []*store.Val
	ix        hashIndex
	shared    bool // ix escaped to a reader; mutate via COW only
}

// rowPtr is a row's identity for prefix validation.
func rowPtr(r []store.Val) *store.Val {
	if len(r) == 0 {
		return nil
	}
	return &r[0]
}

func rowPtrs(rows [][]store.Val) []*store.Val {
	ps := make([]*store.Val, len(rows))
	for i, r := range rows {
		ps[i] = rowPtr(r)
	}
	return ps
}

// prefixIntact reports that the first n rows of the caller's snapshot
// are the very rows the index was built from.
func (c *cachedIndex) prefixIntact(rows [][]store.Val, n int) bool {
	if n == 0 {
		return true
	}
	if n > len(rows) || n > len(c.builtPtrs) {
		return false
	}
	p := c.builtPtrs[n-1]
	return p != nil && len(rows[n-1]) > 0 && &rows[n-1][0] == p
}

// IndexStats counts index cache activity; the regression tests assert
// that repeated scans hit instead of rebuilding.
type IndexStats struct {
	Builds        int64 // full builds
	Extends       int64 // incremental tail extensions after appends
	Invalidations int64 // rebuilds forced by object identity or row loss
	Hits          int64 // served unchanged
	HorizonHits   int64 // served filtered to a shorter snapshot horizon
	Copies        int64 // copy-on-write clones protecting concurrent readers
}

// NewManager returns a manager over st.
func NewManager(st *store.Store) *Manager {
	return &Manager{st: st, indexes: make(map[store.OID]map[int]*cachedIndex)}
}

// IndexStats returns a snapshot of the index cache counters.
func (mg *Manager) IndexStats() IndexStats {
	mg.mu.Lock()
	defer mg.mu.Unlock()
	return mg.stats
}

// Register attaches the query executors to a machine.
func (mg *Manager) Register(m *machine.Machine) {
	m.RegisterExec("select", mg.execSelect)
	m.RegisterExec("project", mg.execProject)
	m.RegisterExec("join", mg.execJoin)
	m.RegisterExec("exists", mg.execExists)
	m.RegisterExec("empty", mg.execEmpty)
	m.RegisterExec("count", mg.execCount)
	m.RegisterExec("foreach", mg.execForeach)
	m.RegisterExec("rinsert", mg.execInsert)
	m.RegisterExec("indexscan", mg.execIndexScan)
}

// CreateRelation allocates a persistent relation with the given schema
// and index declarations and registers it as a store root under
// "rel:<name>", the name TL rel declarations bind against.
func (mg *Manager) CreateRelation(name string, schema []store.Column, indexCols ...int) (store.OID, error) {
	rel := &store.Relation{Name: name, Schema: schema}
	for _, c := range indexCols {
		if c < 0 || c >= len(schema) {
			return store.Nil, fmt.Errorf("relalg: index column %d out of range", c)
		}
		rel.Indexes = append(rel.Indexes, store.IndexSpec{Column: c})
	}
	oid := mg.st.Alloc(rel)
	mg.st.SetRoot("rel:"+name, oid)
	return oid, nil
}

// view resolves the store a machine executes against: the machine's own
// view (a transaction or snapshot when the server wrapped the request in
// one) when set, the manager's raw store otherwise.
func (mg *Manager) view(m *machine.Machine) store.View {
	if m != nil && m.Store != nil {
		return m.Store
	}
	return mg.st
}

// InsertRow appends a row to a persistent relation, maintaining indexes.
// It writes through the raw store; rows inserted by programs running
// under a transaction go through the machine's view instead (execInsert).
func (mg *Manager) InsertRow(oid store.OID, row []store.Val) error {
	return mg.insertRow(mg.st, oid, row)
}

// insertRow appends a row through the given store view, maintaining any
// cached index built on the same relation identity. A transaction's
// localised relation view has its own identity, so indexes cached for
// the committed relation are never extended with uncommitted rows.
func (mg *Manager) insertRow(st store.View, oid store.OID, row []store.Val) error {
	obj, err := st.Get(oid)
	if err != nil {
		return err
	}
	rel, ok := obj.(*store.Relation)
	if !ok {
		return fmt.Errorf("relalg: oid 0x%x is a %s, not a relation", uint64(oid), obj.Kind())
	}
	if len(row) != len(rel.Schema) {
		return fmt.Errorf("relalg: row width %d, schema width %d", len(row), len(rel.Schema))
	}
	idx := rel.AppendRow(row)
	st.MarkDirty(oid)
	snap := rel.RowsSnapshot()
	mg.mu.Lock()
	if cols, ok := mg.indexes[oid]; ok {
		for col, c := range cols {
			// Maintain only indexes that are current for this relation
			// object AND still describe its row prefix (a truncate-and-
			// regrow to the same length must not be extended in place);
			// anything else is caught by validation on next use.
			if c.rel == rel && c.rows == idx && len(snap) > idx && c.prefixIntact(snap, idx) {
				mg.cow(c)
				c.ix[row[col]] = appendPosting(c.shared, c.ix[row[col]], idx)
				c.rows = idx + 1
				c.builtPtrs = append(c.builtPtrs, rowPtr(snap[idx]))
				c.shared = false
			}
		}
	}
	mg.mu.Unlock()
	return nil
}

// cow prepares a cached index for mutation: if its map escaped to a
// reader, replace it with a clone that shares the (immutable) buckets.
// Buckets touched afterwards must be copied, not appended in place —
// appendPosting does that while c came out of a COW clone. Must be
// called with mg.mu held.
func (mg *Manager) cow(c *cachedIndex) {
	if !c.shared {
		return
	}
	next := make(hashIndex, len(c.ix))
	for k, v := range c.ix {
		next[k] = v
	}
	c.ix = next
	mg.stats.Copies++
}

// appendPosting appends a row index to a bucket, copying the bucket
// first when it may still be shared with a published map.
func appendPosting(shared bool, bucket []int, idx int) []int {
	if shared {
		out := make([]int, len(bucket), len(bucket)+1)
		copy(out, bucket)
		bucket = out
	}
	return append(bucket, idx)
}

// index returns (building lazily, caching with validation) the hash
// index on the given column of a persistent relation, or nil when none
// is declared. rows is the caller's row snapshot; postings at or past
// the returned limit must be ignored, so the served index can never
// reach past the data the caller scans.
//
// Cache validity keys off the row-prefix identity behind
// Relation.IndexIdentity: a cached index is served unchanged when the
// caller's snapshot is exactly the prefix it was built from, served
// filtered (limit < built rows) when the caller is a snapshot view at an
// older horizon of the same prefix, extended via copy-on-write when rows
// were appended behind the manager's back, and rebuilt when the prefix
// identity broke — a reloaded relation object, or a truncate-and-regrow
// that replaced the rows (even at the same length).
func (mg *Manager) index(oid store.OID, rel *store.Relation, rows [][]store.Val, col int) (hashIndex, int) {
	if !rel.HasIndexOn(col) {
		return nil, 0
	}
	mg.mu.Lock()
	defer mg.mu.Unlock()
	cols, ok := mg.indexes[oid]
	if !ok {
		cols = make(map[int]*cachedIndex)
		mg.indexes[oid] = cols
	}
	if c, ok := cols[col]; ok && c.rel == rel {
		switch {
		case len(rows) == c.rows && c.prefixIntact(rows, c.rows):
			mg.stats.Hits++
			c.shared = true
			return c.ix, c.rows
		case len(rows) < c.rows && c.prefixIntact(rows, len(rows)):
			// Snapshot view at an older horizon of the same prefix: serve
			// the cached postings filtered to the view's rows. The cache
			// itself stays at the longer (live) horizon.
			mg.stats.HorizonHits++
			c.shared = true
			return c.ix, len(rows)
		case len(rows) > c.rows && c.prefixIntact(rows, c.rows):
			wasShared := c.shared
			mg.cow(c)
			var copied map[store.Val]bool
			if wasShared {
				copied = make(map[store.Val]bool)
			}
			for i := c.rows; i < len(rows); i++ {
				key := rows[i][col]
				c.ix[key] = appendPosting(wasShared && !copied[key], c.ix[key], i)
				c.builtPtrs = append(c.builtPtrs, rowPtr(rows[i]))
				if wasShared {
					copied[key] = true
				}
			}
			c.rows = len(rows)
			c.shared = true
			mg.stats.Extends++
			return c.ix, c.rows
		}
	}
	if _, stale := cols[col]; stale {
		mg.stats.Invalidations++
	}
	ix := make(hashIndex, len(rows))
	for i, row := range rows {
		ix[row[col]] = append(ix[row[col]], i)
	}
	cols[col] = &cachedIndex{rel: rel, rows: len(rows), builtPtrs: rowPtrs(rows), ix: ix, shared: true}
	mg.stats.Builds++
	return ix, len(rows)
}

// relOf resolves a relation argument: a transient Rel or a Ref to a
// persistent relation. Persistent refs resolve through the machine's
// store view, so a program running under a transaction scans exactly its
// snapshot (plus its own appends) regardless of concurrent committers.
// The returned rel is the identity the index cache keys on: a clean
// transaction view shares the live relation's identity (and therefore
// its cached indexes); a view carrying uncommitted rows keeps its own.
func (mg *Manager) relOf(m *machine.Machine, op string, v machine.Value) (schema []store.Column, rows [][]store.Val, oid store.OID, rel *store.Relation, err error) {
	switch v := v.(type) {
	case *Rel:
		return v.Schema, v.Rows, store.Nil, nil, nil
	case machine.Ref:
		obj, gerr := mg.view(m).Get(v.OID)
		if gerr != nil {
			return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: %w", op, gerr)
		}
		r, ok := obj.(*store.Relation)
		if !ok {
			return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: oid 0x%x is a %s", op, uint64(v.OID), obj.Kind())
		}
		// Snapshot the row header: appends on other sessions may grow
		// the relation mid-scan, never mutate the snapshotted rows.
		rows := r.RowsSnapshot()
		return r.Schema, rows, v.OID, r.IndexIdentity(len(rows)), nil
	default:
		return nil, nil, store.Nil, nil, fmt.Errorf("relalg: %s: expected relation, got %s", op, v.Show())
	}
}

// rowValue converts a stored row to the runtime tuple the predicate
// closures receive.
func rowValue(row []store.Val) machine.Value {
	elems := make([]machine.Value, len(row))
	for i, v := range row {
		elems[i] = machine.FromStoreVal(v)
	}
	return &machine.Vector{Elems: elems}
}

// kernel drives one predicate or target closure over many rows. It wraps
// a machine.Batch (shared continuations, recycled TAM frames) and, when
// the compiled predicate provably does not retain its row tuple, reuses
// one tuple buffer for every row of the scan.
type kernel struct {
	m     *machine.Machine
	fn    machine.Value
	batch *machine.Batch
	buf   machine.Vector // reused row tuple (reuse only)
	reuse bool
	args  [1]machine.Value
}

// newKernel prepares fn for a scan of nrows rows. With NoBatch set the
// kernel degrades to one machine.Apply per row on a fresh tuple — the
// row-at-a-time semantics the parity tests compare against.
func (mg *Manager) newKernel(m *machine.Machine, fn machine.Value, nrows int) *kernel {
	k := &kernel{m: m, fn: fn}
	if mg.NoBatch {
		return k
	}
	k.batch = m.NewBatch(fn, 1, nrows >= compileThreshold)
	k.reuse = k.batch.RowSafe()
	return k
}

// call applies the kernel closure to one row.
func (k *kernel) call(row []store.Val) (machine.Value, error) {
	if k.batch == nil {
		return k.m.Apply(k.fn, []machine.Value{rowValue(row)})
	}
	if k.reuse {
		elems := k.buf.Elems[:0]
		for _, v := range row {
			elems = append(elems, machine.FromStoreVal(v))
		}
		k.buf.Elems = elems
		k.args[0] = &k.buf
	} else {
		k.args[0] = rowValue(row)
	}
	return k.batch.Call(k.args[:])
}

// callPair applies the kernel closure to the concatenation of two rows
// without materialising the concatenated store row (the join only
// materialises pairs the predicate keeps).
func (k *kernel) callPair(r1, r2 []store.Val) (machine.Value, error) {
	if k.batch == nil {
		row := append(append([]store.Val(nil), r1...), r2...)
		return k.m.Apply(k.fn, []machine.Value{rowValue(row)})
	}
	var elems []machine.Value
	if k.reuse {
		elems = k.buf.Elems[:0]
	} else {
		elems = make([]machine.Value, 0, len(r1)+len(r2))
	}
	for _, v := range r1 {
		elems = append(elems, machine.FromStoreVal(v))
	}
	for _, v := range r2 {
		elems = append(elems, machine.FromStoreVal(v))
	}
	if k.reuse {
		k.buf.Elems = elems
		k.args[0] = &k.buf
	} else {
		k.args[0] = &machine.Vector{Elems: elems}
	}
	return k.batch.Call(k.args[:])
}

// boolResult coerces a predicate result.
func boolResult(op string, v machine.Value) (bool, error) {
	b, ok := v.(machine.Bool)
	if !ok {
		return false, fmt.Errorf("relalg: %s predicate returned %s, want boolean", op, v.Show())
	}
	return bool(b), nil
}

// outEx converts a nested TML exception into an invocation of the query
// primitive's own exception continuation (exceptions raised inside
// predicates propagate to the enclosing block, paper §4.2).
func outEx(err error) (machine.Outcome, error) {
	if ex, ok := err.(*machine.Exception); ok {
		return machine.Outcome{Branch: 0, Results: []machine.Value{ex.Value}}, nil
	}
	return machine.Outcome{}, err
}

// ok1 invokes the normal continuation (position 1) with results.
func ok1(results ...machine.Value) machine.Outcome {
	return machine.Outcome{Branch: 1, Results: results}
}

// execSelect implements (select pred rel ce cc): σ_pred(rel).
func (mg *Manager) execSelect(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	schema, rows, _, rel, err := mg.relOf(m, "select", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{Schema: schema}
	if !mg.NoBatch && !mg.NoVector {
		if w := relWidth(schema, rows); rowsRegular(rows, w) {
			if vp := mg.vprogFor(pred, w); vp != nil {
				return mg.vecSelect(m, vp, out, rows, rel)
			}
		}
	}
	nrows := len(rows)
	k := mg.newKernel(m, pred, nrows)
	for len(rows) > 0 {
		n := min(batchSize, len(rows))
		if err := m.TickN(n); err != nil {
			return machine.Outcome{}, err
		}
		for _, row := range rows[:n] {
			v, err := k.call(row)
			if err != nil {
				return outEx(err)
			}
			keep, err := boolResult("select", v)
			if err != nil {
				return machine.Outcome{}, err
			}
			if keep {
				out.Rows = append(out.Rows, row)
			}
		}
		rows = rows[n:]
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "select", Algo: mg.fallbackAlgo(), Table: tableName(rel),
			InRows: int64(nrows), EstRows: -1, ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}

// execProject implements (project fn rel ce cc): π_fn(rel). The target
// function returns the new row as a vector of scalars.
func (mg *Manager) execProject(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	fn := vals[0]
	schema, rows, _, rel, err := mg.relOf(m, "project", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{}
	if !mg.NoBatch && !mg.NoVector {
		if w := relWidth(schema, rows); rowsRegular(rows, w) {
			if vp := mg.vprogFor(fn, w); vp != nil {
				return mg.vecProject(m, vp, out, rows, rel)
			}
		}
	}
	nrows := len(rows)
	k := mg.newKernel(m, fn, nrows)
	for len(rows) > 0 {
		n := min(batchSize, len(rows))
		if err := m.TickN(n); err != nil {
			return machine.Outcome{}, err
		}
		for _, row := range rows[:n] {
			v, err := k.call(row)
			if err != nil {
				return outEx(err)
			}
			vec, ok := v.(*machine.Vector)
			if !ok {
				return machine.Outcome{}, fmt.Errorf("relalg: project target returned %s, want tuple", v.Show())
			}
			newRow := make([]store.Val, len(vec.Elems))
			for i, el := range vec.Elems {
				sv, err := machine.ToStoreVal(el)
				if err != nil {
					return machine.Outcome{}, fmt.Errorf("relalg: project: %w", err)
				}
				newRow[i] = sv
			}
			out.Rows = append(out.Rows, newRow)
		}
		rows = rows[n:]
	}
	synthSchema(out)
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "project", Algo: mg.fallbackAlgo(), Table: tableName(rel),
			InRows: int64(nrows), EstRows: -1, ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}

// synthSchema synthesises a positional schema for a computed relation;
// the front end's type checker owns the real column names.
func synthSchema(out *Rel) {
	if len(out.Rows) > 0 {
		out.Schema = make([]store.Column, len(out.Rows[0]))
		for i, v := range out.Rows[0] {
			out.Schema[i] = store.Column{Name: fmt.Sprintf("c%d", i), Type: colTypeOf(v)}
		}
	}
}

func colTypeOf(v store.Val) store.ColType {
	switch v.Kind {
	case store.ValInt:
		return store.ColInt
	case store.ValReal:
		return store.ColReal
	case store.ValBool:
		return store.ColBool
	default:
		return store.ColStr
	}
}

// execJoin implements (join pred r1 r2 ce cc): nested-loop θ-join; the
// predicate receives the concatenated row.
func (mg *Manager) execJoin(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	s1, rows1, _, rel1, err := mg.relOf(m, "join", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	s2, rows2, _, rel2, err := mg.relOf(m, "join", vals[2])
	if err != nil {
		return machine.Outcome{}, err
	}
	out := &Rel{Schema: append(append([]store.Column(nil), s1...), s2...)}
	if !mg.NoBatch && !mg.NoVector {
		w1, w2 := relWidth(s1, rows1), relWidth(s2, rows2)
		if rowsRegular(rows1, w1) && rowsRegular(rows2, w2) {
			if vp := mg.vprogFor(pred, w1+w2); vp != nil {
				return mg.vecJoin(m, vp, out, rows1, rows2, w1, rel1, rel2)
			}
		}
	}
	k := mg.newKernel(m, pred, len(rows1)*len(rows2))
	for _, r1 := range rows1 {
		inner := rows2
		for len(inner) > 0 {
			n := min(batchSize, len(inner))
			if err := m.TickN(n); err != nil {
				return machine.Outcome{}, err
			}
			for _, r2 := range inner[:n] {
				v, err := k.callPair(r1, r2)
				if err != nil {
					return outEx(err)
				}
				keep, err := boolResult("join", v)
				if err != nil {
					return machine.Outcome{}, err
				}
				if keep {
					out.Rows = append(out.Rows, append(append([]store.Val(nil), r1...), r2...))
				}
			}
			inner = inner[n:]
		}
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "join", Algo: qopt.JoinNested,
			Table:  tableName(rel1) + "," + tableName(rel2),
			InRows: int64(len(rows1)) * int64(len(rows2)), EstRows: -1, ActRows: int64(len(out.Rows)),
		})
	}
	return ok1(out), nil
}

// execExists implements (exists pred rel ce cc) with early exit; the
// exit keeps ticking per row so partial scans charge exactly the rows
// they visit.
func (mg *Manager) execExists(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	pred := vals[0]
	schema, rows, _, rel, err := mg.relOf(m, "exists", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	if !mg.NoBatch && !mg.NoVector {
		if w := relWidth(schema, rows); rowsRegular(rows, w) {
			if vp := mg.vprogFor(pred, w); vp != nil {
				return mg.vecExists(m, vp, rows, rel)
			}
		}
	}
	k := mg.newKernel(m, pred, len(rows))
	for i, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		v, err := k.call(row)
		if err != nil {
			return outEx(err)
		}
		found, err := boolResult("exists", v)
		if err != nil {
			return machine.Outcome{}, err
		}
		if found {
			if mg.explaining() {
				mg.plan(m, &qopt.PlanNode{
					Op: "exists", Algo: mg.fallbackAlgo(), Table: tableName(rel),
					InRows: int64(len(rows)), EstRows: -1, ActRows: int64(i + 1),
				})
			}
			return ok1(machine.Bool(true)), nil
		}
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "exists", Algo: mg.fallbackAlgo(), Table: tableName(rel),
			InRows: int64(len(rows)), EstRows: -1, ActRows: int64(len(rows)),
		})
	}
	return ok1(machine.Bool(false)), nil
}

// execEmpty implements (empty rel ce cc): R = ∅.
func (mg *Manager) execEmpty(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	_, rows, _, _, err := mg.relOf(m, "empty", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	return ok1(machine.BoolValue(len(rows) == 0)), nil
}

// execCount implements (count rel ce cc).
func (mg *Manager) execCount(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	_, rows, _, _, err := mg.relOf(m, "count", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	return ok1(machine.IntValue(int64(len(rows)))), nil
}

// execForeach implements (foreach body rel ce cc): element-at-a-time
// iteration with side effects. The body may retain its row (it can
// insert it elsewhere), so the kernel's buffer reuse does not apply —
// newKernel still shares the batch continuations and compiled code.
func (mg *Manager) execForeach(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	body := vals[0]
	_, rows, _, _, err := mg.relOf(m, "foreach", vals[1])
	if err != nil {
		return machine.Outcome{}, err
	}
	k := mg.newKernel(m, body, len(rows))
	for len(rows) > 0 {
		n := min(batchSize, len(rows))
		if err := m.TickN(n); err != nil {
			return machine.Outcome{}, err
		}
		for _, row := range rows[:n] {
			if _, err := k.call(row); err != nil {
				return outEx(err)
			}
		}
		rows = rows[n:]
	}
	return ok1(machine.Unit{}), nil
}

// execInsert implements (rinsert rel row ce cc).
func (mg *Manager) execInsert(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	row, ok := vals[1].(*machine.Vector)
	if !ok {
		return machine.Outcome{}, fmt.Errorf("relalg: rinsert row is %s, want tuple", vals[1].Show())
	}
	stRow := make([]store.Val, len(row.Elems))
	for i, el := range row.Elems {
		sv, err := machine.ToStoreVal(el)
		if err != nil {
			return machine.Outcome{}, fmt.Errorf("relalg: rinsert: %w", err)
		}
		stRow[i] = sv
	}
	switch rel := vals[0].(type) {
	case *Rel:
		rel.Rows = append(rel.Rows, stRow)
		return ok1(machine.Unit{}), nil
	case machine.Ref:
		if err := mg.insertRow(mg.view(m), rel.OID, stRow); err != nil {
			return machine.Outcome{}, err
		}
		return ok1(machine.Unit{}), nil
	default:
		return machine.Outcome{}, fmt.Errorf("relalg: rinsert into %s", vals[0].Show())
	}
}

// execIndexScan implements (indexscan rel col key ce cc): the physical
// access path the query optimizer substitutes for a selection on an
// indexed column (paper §4.2, "knowledge about index structures").
// Without an index the scan degrades to a sequential filter, so the
// rewrite is always safe.
func (mg *Manager) execIndexScan(m *machine.Machine, vals, conts []machine.Value) (machine.Outcome, error) {
	schema, rows, oid, rel, err := mg.relOf(m, "indexscan", vals[0])
	if err != nil {
		return machine.Outcome{}, err
	}
	col, ok := vals[1].(machine.Int)
	if !ok || int(col) < 0 || int(col) >= len(schema) {
		return machine.Outcome{}, fmt.Errorf("relalg: indexscan column %s", vals[1].Show())
	}
	key, err := machine.ToStoreVal(vals[2])
	if err != nil {
		return machine.Outcome{}, fmt.Errorf("relalg: indexscan key: %w", err)
	}
	out := &Rel{Schema: schema}
	if rel != nil {
		if ix, limit := mg.index(oid, rel, rows, int(col)); ix != nil {
			// Postings ascend, so a snapshot view served from a longer
			// live index stops at its own horizon.
			for _, i := range ix[key] {
				if i >= limit {
					break
				}
				if err := m.Tick(); err != nil {
					return machine.Outcome{}, err
				}
				out.Rows = append(out.Rows, rows[i])
			}
			if mg.explaining() {
				var est float64 = -1
				if sts := rel.ColumnStats(len(rows)); sts != nil && int(col) < len(sts) {
					est = qopt.EstEqMatches(&sts[col], len(rows))
				}
				mg.plan(m, &qopt.PlanNode{
					Op: "indexscan", Algo: "index", Table: tableName(rel),
					InRows: int64(len(rows)), EstRows: est, ActRows: int64(len(out.Rows)),
					Detail: fmt.Sprintf("col=%d", int(col)),
				})
			}
			return ok1(out), nil
		}
	}
	for _, row := range rows {
		if err := m.Tick(); err != nil {
			return machine.Outcome{}, err
		}
		if row[col].Eq(key) {
			out.Rows = append(out.Rows, row)
		}
	}
	if mg.explaining() {
		mg.plan(m, &qopt.PlanNode{
			Op: "indexscan", Algo: "scan", Table: tableName(rel),
			InRows: int64(len(rows)), EstRows: -1, ActRows: int64(len(out.Rows)),
			Detail: fmt.Sprintf("col=%d", int(col)),
		})
	}
	return ok1(out), nil
}
