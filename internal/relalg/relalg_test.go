package relalg

import (
	"errors"
	"strings"
	"testing"

	"tycoon/internal/machine"
	"tycoon/internal/prim"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// world builds a store with relation r(id, val) of n rows, id indexed.
func world(t *testing.T, n int) (*store.Store, *Manager, *machine.Machine, store.OID) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	mg := NewManager(st)
	oid, err := mg.CreateRelation("r", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "val", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := mg.InsertRow(oid, []store.Val{store.IntVal(int64(i)), store.IntVal(int64(i % 10))}); err != nil {
			t.Fatal(err)
		}
	}
	m := machine.New(st)
	mg.Register(m)
	return st, mg, m, oid
}

// run evaluates a TML query term with e/k bound to halt continuations.
func run(t *testing.T, m *machine.Machine, src string) (machine.Value, error) {
	t.Helper()
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	free := tml.FreeVars(app)
	vals := make([]machine.Value, len(free))
	for i, v := range free {
		if v.Name == "k" {
			vals[i] = &machine.Halt{}
		} else {
			vals[i] = &machine.Halt{Err: true}
		}
	}
	return m.RunApp(app, (*machine.Env)(nil).Extend(free, vals))
}

func oidStr(oid store.OID) string { return tml.NewOid(uint64(oid)).String() }

func TestSelectFilters(t *testing.T) {
	_, _, m, oid := world(t, 100)
	v, err := run(t, m, `
(select proc(x !ce !cc) ([] x 1 cont(a) (== a 3 cont()(cc true) cont()(cc false)))
        `+oidStr(oid)+` e k)`)
	if err != nil {
		t.Fatal(err)
	}
	rel := v.(*Rel)
	if len(rel.Rows) != 10 {
		t.Errorf("select matched %d rows, want 10", len(rel.Rows))
	}
	for _, row := range rel.Rows {
		if row[1].Int != 3 {
			t.Errorf("row %v should have val=3", row)
		}
	}
	// The schema travels with the result.
	if len(rel.Schema) != 2 || rel.Schema[0].Name != "id" {
		t.Errorf("schema lost: %v", rel.Schema)
	}
}

func TestProjectComputes(t *testing.T) {
	_, _, m, oid := world(t, 5)
	v, err := run(t, m, `
(project proc(x !ce !cc)
           ([] x 0 cont(a) (+ a 100 ce cont(b) (vector b cont(row) (cc row))))
         `+oidStr(oid)+` e k)`)
	if err != nil {
		t.Fatal(err)
	}
	rel := v.(*Rel)
	if len(rel.Rows) != 5 || len(rel.Rows[0]) != 1 {
		t.Fatalf("project result %v", rel.Rows)
	}
	for i, row := range rel.Rows {
		if row[0].Int != int64(i+100) {
			t.Errorf("row %d = %v", i, row)
		}
	}
}

func TestJoin(t *testing.T) {
	st, mg, m, left := world(t, 4)
	right, err := mg.CreateRelation("s", []store.Column{{Name: "k", Type: store.ColInt}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := mg.InsertRow(right, []store.Val{store.IntVal(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	_ = st
	// Equi-join on left.id = right.k: concatenated row is (id, val, k).
	v, err := run(t, m, `
(join proc(x !ce !cc)
        ([] x 0 cont(a) ([] x 2 cont(b) (== a b cont()(cc true) cont()(cc false))))
      `+oidStr(left)+` `+oidStr(right)+` e k)`)
	if err != nil {
		t.Fatal(err)
	}
	rel := v.(*Rel)
	if len(rel.Rows) != 3 {
		t.Errorf("join produced %d rows, want 3", len(rel.Rows))
	}
	if len(rel.Schema) != 3 {
		t.Errorf("join schema %v", rel.Schema)
	}
}

func TestExistsEarlyExit(t *testing.T) {
	_, _, m, oid := world(t, 1000)
	m.ResetSteps()
	v, err := run(t, m, `
(exists proc(x !ce !cc) ([] x 0 cont(a) (== a 2 cont()(cc true) cont()(cc false)))
        `+oidStr(oid)+` e k)`)
	if err != nil || v != machine.Value(machine.Bool(true)) {
		t.Fatalf("exists = %v, %v", v, err)
	}
	// Early exit: only the first three rows should have been visited.
	if m.Steps() > 100 {
		t.Errorf("exists visited too much: %d steps", m.Steps())
	}
}

func TestCountAndEmpty(t *testing.T) {
	_, mg, m, oid := world(t, 7)
	v, err := run(t, m, "(count "+oidStr(oid)+" e k)")
	if err != nil || v != machine.Value(machine.Int(7)) {
		t.Fatalf("count = %v, %v", v, err)
	}
	v, err = run(t, m, "(empty "+oidStr(oid)+" e k)")
	if err != nil || v != machine.Value(machine.Bool(false)) {
		t.Fatalf("empty = %v, %v", v, err)
	}
	emptyRel, err := mg.CreateRelation("none", []store.Column{{Name: "x", Type: store.ColInt}})
	if err != nil {
		t.Fatal(err)
	}
	v, err = run(t, m, "(empty "+oidStr(emptyRel)+" e k)")
	if err != nil || v != machine.Value(machine.Bool(true)) {
		t.Fatalf("empty(∅) = %v, %v", v, err)
	}
}

func TestInsertPersistentAndTransient(t *testing.T) {
	st, _, m, oid := world(t, 2)
	_, err := run(t, m, `
(vector 99 5 cont(row) (rinsert `+oidStr(oid)+` row e cont(u) (k u)))`)
	if err != nil {
		t.Fatal(err)
	}
	rel := st.MustGet(oid).(*store.Relation)
	if len(rel.Rows) != 3 || rel.Rows[2][0].Int != 99 {
		t.Errorf("persistent insert failed: %v", rel.Rows)
	}
	// Insert into a transient select result does not touch the source.
	_, err = run(t, m, `
(select proc(x !ce !cc) (cc true) `+oidStr(oid)+` e
  cont(tmp) (vector 1 1 cont(row) (rinsert tmp row e cont(u) (count tmp e k))))`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.MustGet(oid).(*store.Relation).Rows); got != 3 {
		t.Errorf("transient insert leaked into source: %d rows", got)
	}
}

func TestIndexScanUsesAndMaintainsIndex(t *testing.T) {
	_, mg, m, oid := world(t, 500)
	m.ResetSteps()
	v, err := run(t, m, "(indexscan "+oidStr(oid)+" 0 123 e k)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 1 {
		t.Fatalf("indexscan matched %d rows", got)
	}
	probeSteps := m.Steps()
	if probeSteps > 20 {
		t.Errorf("index probe cost %d steps; the scan would cost ~500", probeSteps)
	}
	// Index maintenance on insert (the index was built above).
	if err := mg.InsertRow(oid, []store.Val{store.IntVal(123), store.IntVal(0)}); err != nil {
		t.Fatal(err)
	}
	v, err = run(t, m, "(indexscan "+oidStr(oid)+" 0 123 e k)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 2 {
		t.Errorf("after insert, indexscan matched %d rows, want 2", got)
	}
	// No index on column 1: falls back to a scan with the same answer.
	v, err = run(t, m, "(indexscan "+oidStr(oid)+" 1 3 e k)")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.(*Rel).Rows); got != 50 {
		t.Errorf("fallback scan matched %d rows, want 50", got)
	}
}

func TestPredicateExceptionPropagates(t *testing.T) {
	_, _, m, oid := world(t, 10)
	// The predicate raises on id 5; the select must invoke ITS exception
	// continuation (here the top-level error halt).
	_, err := run(t, m, `
(select proc(x !ce !cc)
          ([] x 0 cont(a) (== a 5 cont()(ce "boom") cont()(cc true)))
        `+oidStr(oid)+` e k)`)
	if !errors.Is(err, machine.ErrUnhandled) {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
	var ex *machine.Exception
	if errors.As(err, &ex) && ex.Value.Show() != "boom" {
		t.Errorf("exception value %s", ex.Value.Show())
	}
}

func TestTypeErrors(t *testing.T) {
	_, _, m, oid := world(t, 3)
	cases := []string{
		"(count 42 e k)", // not a relation
		"(select proc(x !ce !cc) (cc 7) " + oidStr(oid) + " e k)",  // non-bool predicate
		"(project proc(x !ce !cc) (cc 7) " + oidStr(oid) + " e k)", // non-tuple target
		"(rinsert " + oidStr(oid) + " 42 e k)",                     // non-tuple row
		"(indexscan " + oidStr(oid) + ` "x" 1 e k)`,                // bad column
	}
	for _, src := range cases {
		if _, err := run(t, m, src); err == nil {
			t.Errorf("no error for %s", src)
		}
	}
}

func TestInsertRowValidation(t *testing.T) {
	st, mg, _, oid := world(t, 1)
	if err := mg.InsertRow(oid, []store.Val{store.IntVal(1)}); err == nil {
		t.Error("width mismatch accepted")
	}
	blob := st.Alloc(&store.Blob{})
	if err := mg.InsertRow(blob, []store.Val{store.IntVal(1)}); err == nil {
		t.Error("insert into non-relation accepted")
	}
	if _, err := mg.CreateRelation("bad", []store.Column{{Name: "x", Type: store.ColInt}}, 5); err == nil {
		t.Error("out-of-range index column accepted")
	}
}

func TestRelShow(t *testing.T) {
	r := &Rel{Rows: [][]store.Val{{store.IntVal(1)}}}
	if !strings.Contains(r.Show(), "1 row") {
		t.Errorf("Show = %q", r.Show())
	}
}
