package linker_test

import (
	"testing"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/store"
)

// TestLanguageFeatures executes every TL construct end to end under both
// the library-call and local-opt regimes.
func TestLanguageFeatures(t *testing.T) {
	const src = `
module feat export downsum, grade, pick, flag, chars, strops, realops,
                   tuples, nested, logic, unary, shadow, deepTry
let downsum(n : Int) : Int =
  begin var s := 0; for i = n downto 1 do s := s + i end; s end

let grade(n : Int) : Int =
  if n < 10 then 1 elsif n < 20 then 2 elsif n < 30 then 3 else 4 end

let pick(s : String) : Int =
  case s of "alpha" => 1 | "beta" => 2 else 0 end

let flag(b : Bool) : Int =
  case b of true => 1 | false => 0 end

let chars(c : Char) : Int =
  if c < 'm' then 1
  elsif c = 'm' then 2
  elsif c >= 'x' then 3
  else 4 end

let strops(a : String, b : String) : Int =
  begin
    var n := 0;
    if a + b = "foobar" then n := n + 1 end;
    if a < b then n := n + 10 end;
    if a <> b then n := n + 100 end;
    n + len(a + b)
  end

let realops(x : Real) : Int =
  begin
    var n := 0;
    if x > 1.5 then n := n + 1 end;
    if x * 2.0 >= 6.0 then n := n + 10 end;
    if x <> 0.0 then n := n + 100 end;
    n
  end

type Pair = Tuple fst, snd : Int end
let mkPair(a, b : Int) : Pair = tuple a, b end
let tuples(a, b : Int) : Int =
  begin
    let p = mkPair(a, b);
    p.fst * 100 + p.snd
  end

let nested(n : Int) : Int =
  begin
    let outer(a : Int) : Int =
      begin
        let inner(b : Int) : Int = a + b;
        inner(a) + inner(1)
      end;
    outer(n)
  end

let logic(a, b : Bool) : Int =
  begin
    var n := 0;
    if a and b then n := n + 1 end;
    if a or b then n := n + 10 end;
    if not a then n := n + 100 end;
    if a = b then n := n + 1000 end;
    n
  end

let unary(x : Int) : Int = -x + (- -x) * 2

let shadow(x : Int) : Int =
  begin
    let y = x + 1;
    begin
      let y = y * 10;
      y
    end + y
  end

let deepTry(n : Int) : Int =
  try
    try 100 / n handle e1 => raise "rethrown" end
  handle e2 =>
    if e2 = "rethrown" then -1 else -2 end
  end
end`
	for _, level := range []linker.OptLevel{linker.OptNone, linker.OptLocal} {
		_, lk, comp, m, _ := setup(t, level)
		mod := install(t, lk, comp, src)
		cases := []struct {
			fn   string
			args []machine.Value
			want machine.Value
		}{
			{"downsum", []machine.Value{machine.Int(10)}, machine.Int(55)},
			{"grade", []machine.Value{machine.Int(5)}, machine.Int(1)},
			{"grade", []machine.Value{machine.Int(15)}, machine.Int(2)},
			{"grade", []machine.Value{machine.Int(25)}, machine.Int(3)},
			{"grade", []machine.Value{machine.Int(99)}, machine.Int(4)},
			{"pick", []machine.Value{machine.Str("alpha")}, machine.Int(1)},
			{"pick", []machine.Value{machine.Str("beta")}, machine.Int(2)},
			{"pick", []machine.Value{machine.Str("gamma")}, machine.Int(0)},
			{"flag", []machine.Value{machine.Bool(true)}, machine.Int(1)},
			{"flag", []machine.Value{machine.Bool(false)}, machine.Int(0)},
			{"chars", []machine.Value{machine.Char('a')}, machine.Int(1)},
			{"chars", []machine.Value{machine.Char('m')}, machine.Int(2)},
			{"chars", []machine.Value{machine.Char('z')}, machine.Int(3)},
			{"chars", []machine.Value{machine.Char('p')}, machine.Int(4)},
			{"strops", []machine.Value{machine.Str("foo"), machine.Str("bar")}, machine.Int(107)},
			{"realops", []machine.Value{machine.Real(3.0)}, machine.Int(111)},
			{"tuples", []machine.Value{machine.Int(4), machine.Int(2)}, machine.Int(402)},
			{"nested", []machine.Value{machine.Int(20)}, machine.Int(61)},
			{"logic", []machine.Value{machine.Bool(true), machine.Bool(true)}, machine.Int(1011)},
			{"logic", []machine.Value{machine.Bool(false), machine.Bool(false)}, machine.Int(1100)},
			{"logic", []machine.Value{machine.Bool(false), machine.Bool(true)}, machine.Int(110)},
			{"unary", []machine.Value{machine.Int(5)}, machine.Int(5)},
			{"shadow", []machine.Value{machine.Int(1)}, machine.Int(22)},
			{"deepTry", []machine.Value{machine.Int(0)}, machine.Int(-1)},
			{"deepTry", []machine.Value{machine.Int(4)}, machine.Int(25)},
		}
		for _, tt := range cases {
			v, err := m.CallExport(mod, tt.fn, tt.args)
			if err != nil {
				t.Errorf("level %d: %s(%v): %v", level, tt.fn, tt.args, err)
				continue
			}
			if !machine.Eq(v, tt.want) {
				t.Errorf("level %d: %s(%v) = %s, want %s", level, tt.fn, tt.args, v.Show(), tt.want.Show())
			}
		}
	}
}

// TestCaseWithoutElseRaises pins the runtime semantics of a fall-through.
func TestCaseWithoutElseRaises(t *testing.T) {
	_, lk, comp, m, _ := setup(t, linker.OptNone)
	mod := install(t, lk, comp, `
module c export f
let f(n : Int) : Int = begin case n of 1 => print(1) | 2 => print(2) end; n end
end`)
	if _, err := m.CallExport(mod, "f", []machine.Value{machine.Int(9)}); err == nil {
		t.Error("fall-through case did not raise")
	}
	if v, err := m.CallExport(mod, "f", []machine.Value{machine.Int(1)}); err != nil || v != machine.Value(machine.Int(1)) {
		t.Errorf("matching case = %v, %v", v, err)
	}
}

// TestExceptionAcrossCalls checks that the ce chain crosses function
// boundaries: a raise deep in a callee lands in the caller's handler.
func TestExceptionAcrossCalls(t *testing.T) {
	_, lk, comp, m, _ := setup(t, linker.OptNone)
	mod := install(t, lk, comp, `
module x export outer
let inner(n : Int) : Int = if n = 0 then raise "deep" else n end
let middle(n : Int) : Int = inner(n) * 2
let outer(n : Int) : Int = try middle(n) handle e => 777 end
end`)
	v, err := m.CallExport(mod, "outer", []machine.Value{machine.Int(0)})
	if err != nil || v != machine.Value(machine.Int(777)) {
		t.Fatalf("outer(0) = %v, %v", v, err)
	}
	v, err = m.CallExport(mod, "outer", []machine.Value{machine.Int(5)})
	if err != nil || v != machine.Value(machine.Int(10)) {
		t.Fatalf("outer(5) = %v, %v", v, err)
	}
}

// TestJoinQueries executes TL θ-joins end to end.
func TestJoinQueries(t *testing.T) {
	st, lk, comp, m, mg := setup(t, linker.OptNone)
	_ = st
	emp, err := mg.CreateRelation("jemp", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "dept", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	dept, err := mg.CreateRelation("jdept", []store.Column{
		{Name: "dno", Type: store.ColInt},
		{Name: "budget", Type: store.ColInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := mg.InsertRow(emp, []store.Val{store.IntVal(i), store.IntVal(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	for d := int64(0); d < 4; d++ {
		if err := mg.InsertRow(dept, []store.Val{store.IntVal(d), store.IntVal(d * 1000)}); err != nil {
			t.Fatal(err)
		}
	}
	mod := install(t, lk, comp, `
module j export pay, pairs
rel jemp : Rel(id : Int, dept : Int)
rel jdept : Rel(dno : Int, budget : Int)
let pay(k : Int) : Int =
  begin
    var s := 0;
    foreach r in select tuple e.id, d.budget end
                 from e in jemp, d in jdept
                 where e.dept = d.dno and e.id < k end
    do s := s + r.budget end;
    s
  end
let pairs() : Int =
  count(select tuple e.id, d.dno end from e in jemp, d in jdept end)
end`)
	// Employees 0..5: depts 0,1,2,3,0,1 → budgets 0+1000+2000+3000+0+1000 = 7000.
	if got := callInt(t, m, mod, "pay", machine.Int(6)); got != 7000 {
		t.Errorf("pay(6) = %d, want 7000", got)
	}
	// Cross product 20×4 = 80 rows.
	if got := callInt(t, m, mod, "pairs"); got != 80 {
		t.Errorf("pairs() = %d, want 80", got)
	}
}

// TestJoinRowRestriction pins the whole-tuple restriction on join rows.
func TestJoinRowRestriction(t *testing.T) {
	_, _, comp, _, _ := setup(t, linker.OptNone)
	_, err := comp.Compile(`
module bad export f
rel jemp2 : Rel(id : Int)
let f() : Int = count(select e from e in jemp2, d in jemp2 end)
end`)
	if err == nil {
		t.Error("whole-row use of a join variable accepted")
	}
}
