package linker_test

import (
	"errors"
	"path/filepath"
	"testing"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/relalg"
	"tycoon/internal/store"
	"tycoon/internal/tl"
	"tycoon/internal/tyclib"
)

// setup installs tyclib into a fresh in-memory store and returns the
// pieces needed to compile and run user modules.
func setup(t *testing.T, level linker.OptLevel) (*store.Store, *linker.Linker, *tl.Compiler, *machine.Machine, *relalg.Manager) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	lk := linker.New(st, linker.Config{Level: level})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatalf("tyclib install: %v", err)
	}
	m := machine.New(st)
	mg := relalg.NewManager(st)
	mg.Register(m)
	return st, lk, comp, m, mg
}

func install(t *testing.T, lk *linker.Linker, comp *tl.Compiler, src string) store.OID {
	t.Helper()
	unit, err := comp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	oid, err := lk.InstallModule(unit)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	return oid
}

func callInt(t *testing.T, m *machine.Machine, mod store.OID, fn string, args ...machine.Value) int64 {
	t.Helper()
	v, err := m.CallExport(mod, fn, args)
	if err != nil {
		t.Fatalf("%s: %v", fn, err)
	}
	i, ok := v.(machine.Int)
	if !ok {
		t.Fatalf("%s returned %s, want integer", fn, v.Show())
	}
	return int64(i)
}

const demoSrc = `
module demo export fact, fib, sumTo, gauss, bubble, pickCase, safeDiv, stry, reals, hof, closures
let fact(n : Int) : Int = if n < 2 then 1 else n * fact(n - 1) end
let fib(n : Int) : Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
let sumTo(n : Int) : Int =
  begin
    var s := 0;
    var i := 1;
    while i <= n do s := s + i; i := i + 1 end;
    s
  end
let gauss(n : Int) : Int =
  begin var s := 0; for i = 1 upto n do s := s + i end; s end
let bubble(n : Int) : Int =
  begin
    let a = newArray(n, 0);
    for i = 0 upto n - 1 do a[i] := n - i end;
    for i = 1 upto n - 1 do
      var j := i;
      while j > 0 and a[j - 1] > a[j] do
        let tmp = a[j];
        a[j] := a[j - 1];
        a[j - 1] := tmp;
        j := j - 1
      end
    end;
    a[0] * 1000 + a[n - 1]
  end
let pickCase(c : Char) : Int = case c of 'a' => 1 | 'b' => 2 else 99 end
let safeDiv(a, b : Int) : Int = try a / b handle ex => -1 end
let stry(s : String) : Int = if s + "!" = "hi!" then len(s) else 0 end
let reals(x : Real) : Int = real.toInt(real.sqrt(x) * 10.0)
let hof(n : Int) : Int =
  begin
    let double = fun(a : Int) : Int => a * 2;
    double(double(n))
  end
let closures(n : Int) : Int =
  begin
    let adder(d : Int) : Fun(Int) : Int = fun(a : Int) : Int => a + d;
    let add5 = adder(5);
    add5(add5(n))
  end
end
`

func TestEndToEndDemo(t *testing.T) {
	for _, level := range []linker.OptLevel{linker.OptNone, linker.OptLocal} {
		_, lk, comp, m, _ := setup(t, level)
		mod := install(t, lk, comp, demoSrc)

		cases := []struct {
			fn   string
			args []machine.Value
			want int64
		}{
			{"fact", []machine.Value{machine.Int(10)}, 3628800},
			{"fib", []machine.Value{machine.Int(15)}, 610},
			{"sumTo", []machine.Value{machine.Int(100)}, 5050},
			{"gauss", []machine.Value{machine.Int(100)}, 5050},
			{"bubble", []machine.Value{machine.Int(20)}, 1020},
			{"pickCase", []machine.Value{machine.Char('b')}, 2},
			{"pickCase", []machine.Value{machine.Char('z')}, 99},
			{"safeDiv", []machine.Value{machine.Int(10), machine.Int(2)}, 5},
			{"safeDiv", []machine.Value{machine.Int(10), machine.Int(0)}, -1},
			{"stry", []machine.Value{machine.Str("hi")}, 2},
			{"reals", []machine.Value{machine.Real(25.0)}, 50},
			{"hof", []machine.Value{machine.Int(5)}, 20},
			{"closures", []machine.Value{machine.Int(1)}, 11},
		}
		for _, tt := range cases {
			if got := callInt(t, m, mod, tt.fn, tt.args...); got != tt.want {
				t.Errorf("level %d: %s = %d, want %d", level, tt.fn, got, tt.want)
			}
		}
	}
}

func TestEndToEndQueries(t *testing.T) {
	st, lk, comp, m, mg := setup(t, linker.OptNone)
	// Create the relation the module binds against.
	oid, err := mg.CreateRelation("emp", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "sal", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		if err := mg.InsertRow(oid, []store.Val{store.IntVal(i), store.IntVal(i * 100)}); err != nil {
			t.Fatal(err)
		}
	}
	_ = st

	src := `
module q export high, hasId, total, addOne, cnt
rel emp : Rel(id : Int, sal : Int)
let high(k : Int) : Int = count(select tuple e.id end from e in emp where e.sal > k end)
let hasId(k : Int) : Bool = exists e in emp where e.id = k end
let total() : Int = begin var s := 0; foreach e in emp do s := s + e.sal end; s end
let addOne(i : Int, s : Int) : Ok = insert tuple i, s end into emp
let cnt() : Int = count(emp)
end`
	mod := install(t, lk, comp, src)

	if got := callInt(t, m, mod, "high", machine.Int(5000)); got != 50 {
		t.Errorf("high(5000) = %d, want 50", got)
	}
	if got := callInt(t, m, mod, "total"); got != 505000 {
		t.Errorf("total() = %d, want 505000", got)
	}
	v, err := m.CallExport(mod, "hasId", []machine.Value{machine.Int(7)})
	if err != nil || v != machine.Value(machine.Bool(true)) {
		t.Errorf("hasId(7) = %v, %v", v, err)
	}
	v, err = m.CallExport(mod, "hasId", []machine.Value{machine.Int(7777)})
	if err != nil || v != machine.Value(machine.Bool(false)) {
		t.Errorf("hasId(7777) = %v, %v", v, err)
	}
	if _, err := m.CallExport(mod, "addOne", []machine.Value{machine.Int(101), machine.Int(1)}); err != nil {
		t.Fatalf("addOne: %v", err)
	}
	if got := callInt(t, m, mod, "cnt"); got != 101 {
		t.Errorf("cnt() = %d, want 101", got)
	}
}

func TestConstantsAndCrossModule(t *testing.T) {
	_, lk, comp, m, _ := setup(t, linker.OptNone)
	install(t, lk, comp, `
module geom export pi, area
let pi = 3.14159
let area(r : Real) : Real = pi * r * r
end`)
	mod2 := install(t, lk, comp, `
module uses export f
let f(r : Real) : Int = real.toInt(geom.area(r))
end`)
	if got := callInt(t, m, mod2, "f", machine.Real(10.0)); got != 314 {
		t.Errorf("f(10) = %d, want 314", got)
	}
}

func TestPersistAndRerun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.tyst")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	lk := linker.New(st, linker.Config{})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := comp.Compile(`module p export f let f(n : Int) : Int = n * n + 1 end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lk.InstallModule(unit); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: code, PTML and bindings all come back from disk.
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	modOID, ok := st2.Root(linker.ModuleRoot + "p")
	if !ok {
		t.Fatal("module root lost")
	}
	m := machine.New(st2)
	if got := callInt(t, m, modOID, "f", machine.Int(9)); got != 82 {
		t.Errorf("f(9) = %d, want 82", got)
	}
}

func TestUnhandledExceptionPropagates(t *testing.T) {
	_, lk, comp, m, _ := setup(t, linker.OptNone)
	mod := install(t, lk, comp, `
module boom export f
let f(n : Int) : Int = if n = 0 then raise "zero" else n end
end`)
	_, err := m.CallExport(mod, "f", []machine.Value{machine.Int(0)})
	if !errors.Is(err, machine.ErrUnhandled) {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
	if got := callInt(t, m, mod, "f", machine.Int(3)); got != 3 {
		t.Errorf("f(3) = %d", got)
	}
}

func TestStripPTML(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	lk := linker.New(st, linker.Config{StripPTML: true})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := comp.Compile(`module s export f let f(n : Int) : Int = n + 1 end`)
	if err != nil {
		t.Fatal(err)
	}
	modOID, err := lk.InstallModule(unit)
	if err != nil {
		t.Fatal(err)
	}
	mod := st.MustGet(modOID).(*store.Module)
	cloOID := mod.Exports[0].Val.Ref
	clo := st.MustGet(cloOID).(*store.Closure)
	if clo.PTML != store.Nil {
		t.Error("StripPTML left a PTML blob")
	}
	// Stripped code still runs.
	m := machine.New(st)
	if got := callInt(t, m, modOID, "f", machine.Int(41)); got != 42 {
		t.Errorf("f(41) = %d", got)
	}
}

func TestMissingRelationFailsInstall(t *testing.T) {
	_, lk, comp, _, _ := setup(t, linker.OptNone)
	unit, err := comp.Compile(`
module r export f
rel nosuch : Rel(id : Int)
let f() : Int = count(nosuch)
end`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lk.InstallModule(unit); err == nil {
		t.Error("install with missing relation succeeded")
	}
}
