// Package linker installs compiled TL modules into the persistent store:
// for every function it generates TAM code, attaches the compact PTML
// tree, resolves the R-value binding table, and records derived optimizer
// attributes — the compiler back end of paper Fig. 3. Static (local)
// optimization, code generation and the persistent encodings all run as
// one job through the shared compilation pipeline (package pipeline), so
// installation is instrumented pass-by-pass exactly like reflective
// re-optimization.
package linker

import (
	"fmt"

	"tycoon/internal/machine"
	"tycoon/internal/pipeline"
	"tycoon/internal/prim"
	"tycoon/internal/store"
	"tycoon/internal/tl"
	"tycoon/internal/tml"
)

// OptLevel selects the static optimization applied at installation.
type OptLevel uint8

// The optimization levels.
const (
	// OptNone installs code as generated.
	OptNone OptLevel = iota
	// OptLocal runs the TML optimizer on each function in isolation —
	// the compile-time regime of experiment E1.
	OptLocal
)

// Config configures a Linker.
type Config struct {
	// Reg is the primitive registry; nil means prim.Default.
	Reg *prim.Registry
	// Level selects static optimization (E1's regimes).
	Level OptLevel
	// StripPTML omits the persistent TML tree from installed closures;
	// the paper's §6 code-size comparison (E3) measures exactly this
	// difference. Stripped closures cannot be dynamically re-optimized.
	StripPTML bool
	// Machine evaluates module-level constants at installation time; nil
	// builds a plain machine over the target store.
	Machine *machine.Machine
}

// Linker installs modules into one store.
type Linker struct {
	st   *store.Store
	cfg  Config
	pipe *pipeline.Pipeline
}

// New returns a linker over st.
func New(st *store.Store, cfg Config) *Linker {
	if cfg.Reg == nil {
		cfg.Reg = prim.Default
	}
	// Installation jobs carry no cache key (every install persists fresh
	// blobs), so the pipeline is used purely as the instrumented pass
	// sequencer here; caching serves the reflective path.
	pipe := pipeline.New(st, pipeline.Config{Reg: cfg.Reg, CacheEntries: -1})
	return &Linker{st: st, cfg: cfg, pipe: pipe}
}

// ModuleRoot is the store-root prefix for installed modules.
const ModuleRoot = "module:"

// RelRoot is the store-root prefix relation declarations bind against.
const RelRoot = "rel:"

// InstallModule installs one compiled module and returns the module
// object's OID. Imported modules and declared relations must already be
// present in the store.
func (l *Linker) InstallModule(unit *tl.ModuleUnit) (store.OID, error) {
	// Declared relations must resolve (their bindings are baked into the
	// closure records).
	for _, rd := range unit.Rels {
		if _, ok := l.st.Root(RelRoot + rd.Name); !ok {
			return store.Nil, fmt.Errorf("linker: module %s: relation %s not present in store (create it first)", unit.Name, rd.Name)
		}
	}

	// Pre-allocate closure OIDs so sibling bindings can be resolved
	// regardless of declaration order (mutual recursion).
	declOIDs := make(map[string]store.OID, len(unit.Funcs))
	for _, fu := range unit.Funcs {
		declOIDs[fu.Name] = l.st.Alloc(&store.Closure{Name: unit.Name + "." + fu.Name})
	}

	declVals := make(map[string]store.Val, len(unit.Funcs)+len(unit.Consts))
	for name, oid := range declOIDs {
		declVals[name] = store.RefVal(oid)
	}

	// Evaluate module-level constants first: functions may reference
	// them, while the checker forbids constants from calling functions.
	if len(unit.Consts) > 0 {
		m := l.cfg.Machine
		if m == nil {
			m = machine.New(l.st)
		}
		for _, cu := range unit.Consts {
			v, err := l.evalConst(m, cu, declVals)
			if err != nil {
				return store.Nil, fmt.Errorf("linker: constant %s.%s: %w", unit.Name, cu.Name, err)
			}
			declVals[cu.Name] = v
		}
	}

	// Install function bodies.
	for _, fu := range unit.Funcs {
		clo, err := l.buildClosure(unit.Name+"."+fu.Name, fu.Abs, fu.Free, declVals)
		if err != nil {
			return store.Nil, fmt.Errorf("linker: %s.%s: %w", unit.Name, fu.Name, err)
		}
		if err := l.st.Update(declOIDs[fu.Name], clo); err != nil {
			return store.Nil, err
		}
	}

	// Build the module object with exports in signature order — the
	// export indexes compiled against must match.
	mod := &store.Module{Name: unit.Name}
	for _, member := range unit.Sig.Members {
		v, ok := declVals[member.Name]
		if !ok {
			return store.Nil, fmt.Errorf("linker: module %s: export %s has no value", unit.Name, member.Name)
		}
		mod.Exports = append(mod.Exports, store.Export{Name: member.Name, Val: v})
	}
	oid := l.st.Alloc(mod)
	l.st.SetRoot(ModuleRoot+unit.Name, oid)
	return oid, nil
}

// buildClosure optimizes, compiles and persists one function by running
// it as a job through the compilation pipeline: optional local
// optimization (OptLocal), TAM code generation, and both persistent
// encodings in one instrumented sequence.
func (l *Linker) buildClosure(name string, abs *tml.Abs, free []*tl.FreeRef, declVals map[string]store.Val) (*store.Closure, error) {
	res, err := l.pipe.Run(pipeline.Job{
		Name: name,
		Source: func(gen *tml.VarGen) (*tml.Abs, error) {
			gen.Skip(tml.MaxVarID(abs))
			return abs, nil
		},
		SkipOptimize: l.cfg.Level == OptNone,
		Codegen:      true,
		EncodeTAM:    true,
		EncodePTML:   !l.cfg.StripPTML,
	})
	if err != nil {
		return nil, err
	}
	codeOID := l.st.Alloc(&store.Blob{Bytes: res.Code})

	ptmlOID := store.Nil
	if !l.cfg.StripPTML {
		ptmlOID = l.st.Alloc(&store.Blob{Bytes: res.PTML})
	}

	bindings, err := l.resolveBindings(res.Prog.EntryBlock().FreeNames, free, declVals)
	if err != nil {
		return nil, err
	}
	clo := &store.Closure{
		Name:     name,
		Code:     codeOID,
		PTML:     ptmlOID,
		Bindings: bindings,
	}
	if res.Opt != nil {
		// Derived attributes cached for repeated optimization (paper §4.1).
		clo.Cost = int32(res.Opt.CostAfter)
		clo.Savings = int32(res.Opt.CostBefore - res.Opt.CostAfter)
	}
	return clo, nil
}

// resolveBindings produces the closure record's [identifier, value] pairs
// for the free variables the compiled code actually captures.
func (l *Linker) resolveBindings(freeNames []string, free []*tl.FreeRef, declVals map[string]store.Val) ([]store.Binding, error) {
	byName := make(map[string]*tl.FreeRef, len(free))
	for _, fr := range free {
		byName[fr.Var.String()] = fr
	}
	var bindings []store.Binding
	for _, name := range freeNames {
		fr, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("no free-variable metadata for %s", name)
		}
		val, err := l.bindingValue(fr, declVals)
		if err != nil {
			return nil, err
		}
		bindings = append(bindings, store.Binding{Name: name, Val: val})
	}
	return bindings, nil
}

func (l *Linker) bindingValue(fr *tl.FreeRef, declVals map[string]store.Val) (store.Val, error) {
	switch fr.Kind {
	case tl.FreeModule:
		oid, ok := l.st.Root(ModuleRoot + fr.Name)
		if !ok {
			return store.Val{}, fmt.Errorf("imported module %s not installed", fr.Name)
		}
		return store.RefVal(oid), nil
	case tl.FreeDecl:
		v, ok := declVals[fr.Name]
		if !ok {
			return store.Val{}, fmt.Errorf("sibling declaration %s has no value", fr.Name)
		}
		return v, nil
	case tl.FreeRel:
		oid, ok := l.st.Root(RelRoot + fr.Name)
		if !ok {
			return store.Val{}, fmt.Errorf("relation %s not present in store", fr.Name)
		}
		return store.RefVal(oid), nil
	default:
		return store.Val{}, fmt.Errorf("unknown free-variable kind %d", fr.Kind)
	}
}

// evalConst runs a constant initialiser under the installation machine.
func (l *Linker) evalConst(m *machine.Machine, cu *tl.ConstUnit, declVals map[string]store.Val) (store.Val, error) {
	env := (*machine.Env)(nil)
	if len(cu.Free) > 0 {
		vars := make([]*tml.Var, len(cu.Free))
		vals := make([]machine.Value, len(cu.Free))
		for i, fr := range cu.Free {
			sv, err := l.bindingValue(fr, declVals)
			if err != nil {
				return store.Val{}, err
			}
			vars[i] = fr.Var
			vals[i] = machine.FromStoreVal(sv)
		}
		env = env.Extend(vars, vals)
	}
	clo := &machine.Closure{Abs: cu.Abs, Env: env, Name: cu.Name}
	v, err := m.Apply(clo, nil)
	if err != nil {
		return store.Val{}, err
	}
	sv, err := machine.ToStoreVal(v)
	if err != nil {
		return store.Val{}, fmt.Errorf("constant value %s cannot be persisted: %w", v.Show(), err)
	}
	return sv, nil
}
