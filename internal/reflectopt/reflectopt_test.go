package reflectopt_test

import (
	"errors"
	"strings"
	"testing"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/reflectopt"
	"tycoon/internal/relalg"
	"tycoon/internal/store"
	"tycoon/internal/tl"
	"tycoon/internal/tml"
	"tycoon/internal/tyclib"
)

type world struct {
	st   *store.Store
	lk   *linker.Linker
	comp *tl.Compiler
	m    *machine.Machine
	mg   *relalg.Manager
	ro   *reflectopt.Optimizer
}

func setup(t *testing.T) *world {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	lk := linker.New(st, linker.Config{})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(st)
	mg := relalg.NewManager(st)
	mg.Register(m)
	ro := reflectopt.New(st, reflectopt.Options{CheckInvariants: true})
	return &world{st: st, lk: lk, comp: comp, m: m, mg: mg, ro: ro}
}

func (w *world) install(t *testing.T, src string) store.OID {
	t.Helper()
	unit, err := w.comp.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	oid, err := w.lk.InstallModule(unit)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	return oid
}

// exportOID finds the closure OID of an exported function.
func (w *world) exportOID(t *testing.T, modOID store.OID, name string) store.OID {
	t.Helper()
	mod := w.st.MustGet(modOID).(*store.Module)
	v, ok := mod.Lookup(name)
	if !ok || v.Kind != store.ValRef {
		t.Fatalf("export %s not a closure ref", name)
	}
	return v.Ref
}

// TestPaperAbsExample reproduces §4.1: module complex with encapsulated
// accessors, function abs using them through the barrier, and
// reflect.optimize(abs) producing code equivalent to
// sqrt(c.x*c.x + c.y*c.y).
func TestPaperAbsExample(t *testing.T) {
	w := setup(t)
	w.install(t, `
module complex export T, new, x, y
type T = Tuple x, y : Real end
let new(x : Real, y : Real) : T = tuple x, y end
let x(c : T) : Real = c.x
let y(c : T) : Real = c.y
end`)
	geomOID := w.install(t, `
module geom export abs
let abs(c : complex.T) : Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end`)

	point := &machine.Vector{Elems: []machine.Value{machine.Real(3), machine.Real(4)}}

	// Original dynamic-dispatch version.
	v, err := w.m.CallExport(geomOID, "abs", []machine.Value{point})
	if err != nil {
		t.Fatalf("abs: %v", err)
	}
	if r, ok := v.(machine.Real); !ok || r != 5.0 {
		t.Fatalf("abs(3,4) = %s, want 5", v.Show())
	}
	w.m.ResetSteps()
	if _, err := w.m.CallExport(geomOID, "abs", []machine.Value{point}); err != nil {
		t.Fatal(err)
	}
	stepsOriginal := w.m.Steps()

	// optimizedAbs = reflect.optimize(abs).
	absOID := w.exportOID(t, geomOID, "abs")
	res, err := w.ro.Optimize(absOID)
	if err != nil {
		t.Fatalf("reflect optimize: %v", err)
	}
	if res.Inlined == 0 {
		t.Error("no cross-barrier inlining happened")
	}
	optimized := tml.Print(res.Abs)
	// The module fetches are gone: no [] on module values remains
	// (tuple field access on the argument c remains, of course).
	if res.Stats.Rules["fold-field"] == 0 {
		t.Errorf("module member fetches were not folded: %v", res.Stats.Rules)
	}
	// The transcendental call is inlined down to the ccall primitive.
	if !strings.Contains(optimized, "ccall") {
		t.Errorf("sqrt not inlined to its primitive:\n%s", optimized)
	}
	// And the arithmetic is inlined down to real primitives.
	if !strings.Contains(optimized, "r*") || !strings.Contains(optimized, "r+") {
		t.Errorf("real arithmetic not inlined:\n%s", optimized)
	}

	// The optimized function computes the same value…
	w.m.ResetSteps()
	v2, err := w.m.Apply(res.Closure, []machine.Value{point})
	if err != nil {
		t.Fatalf("optimizedAbs: %v", err)
	}
	stepsOptimized := w.m.Steps()
	if r, ok := v2.(machine.Real); !ok || r != 5.0 {
		t.Fatalf("optimizedAbs(3,4) = %s, want 5", v2.Show())
	}
	// …and executes faster than the original (paper: "executes faster
	// than the original").
	if stepsOptimized*2 > stepsOriginal {
		t.Errorf("steps: original %d, optimized %d — expected ≥2× fewer", stepsOriginal, stepsOptimized)
	}
}

func TestOptimizeAndInstallOverridesLink(t *testing.T) {
	w := setup(t)
	modOID := w.install(t, `
module h export gauss
let gauss(n : Int) : Int =
  begin var s := 0; for i = 1 upto n do s := s + i end; s end
end`)
	gaussOID := w.exportOID(t, modOID, "gauss")

	w.m.ResetSteps()
	v, err := w.m.CallExport(modOID, "gauss", []machine.Value{machine.Int(1000)})
	if err != nil || v != machine.Value(machine.Int(500500)) {
		t.Fatalf("gauss = %v, %v", v, err)
	}
	stepsBefore := w.m.Steps()

	if _, err := w.ro.OptimizeAndInstall(w.m, gaussOID); err != nil {
		t.Fatal(err)
	}
	// The same CallExport path now runs the optimized code.
	w.m.ResetSteps()
	v, err = w.m.CallExport(modOID, "gauss", []machine.Value{machine.Int(1000)})
	if err != nil || v != machine.Value(machine.Int(500500)) {
		t.Fatalf("optimized gauss = %v, %v", v, err)
	}
	stepsAfter := w.m.Steps()
	if stepsAfter*2 > stepsBefore {
		t.Errorf("dynamic optimization did not double speed: %d → %d steps", stepsBefore, stepsAfter)
	}
}

func TestRecursiveFunctionStaysCorrect(t *testing.T) {
	w := setup(t)
	modOID := w.install(t, `
module r export fact
let fact(n : Int) : Int = if n < 2 then 1 else n * fact(n - 1) end
end`)
	factOID := w.exportOID(t, modOID, "fact")
	res, err := w.ro.Optimize(factOID)
	if err != nil {
		t.Fatal(err)
	}
	v, err := w.m.Apply(res.Closure, []machine.Value{machine.Int(10)})
	if err != nil || v != machine.Value(machine.Int(3628800)) {
		t.Fatalf("optimized fact(10) = %v, %v", v, err)
	}
}

func TestStrippedClosureRejected(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	lk := linker.New(st, linker.Config{StripPTML: true})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := comp.Compile(`module s export f let f(n : Int) : Int = n + 1 end`)
	if err != nil {
		t.Fatal(err)
	}
	modOID, err := lk.InstallModule(unit)
	if err != nil {
		t.Fatal(err)
	}
	mod := st.MustGet(modOID).(*store.Module)
	ro := reflectopt.New(st, reflectopt.Options{})
	if _, err := ro.Optimize(mod.Exports[0].Val.Ref); !errors.Is(err, reflectopt.ErrNoPTML) {
		t.Errorf("err = %v, want ErrNoPTML", err)
	}
}

// TestIndexThroughAbstraction is the E7 scenario: a query whose predicate
// calls an encapsulated key accessor. Program inlining exposes the column
// equality, and the query optimizer substitutes the index scan — the
// Fig. 4 interaction.
func TestIndexThroughAbstraction(t *testing.T) {
	w := setup(t)
	relOID, err := w.mg.CreateRelation("emp", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "sal", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := w.mg.InsertRow(relOID, []store.Val{store.IntVal(i), store.IntVal(i * 7)}); err != nil {
			t.Fatal(err)
		}
	}
	w.install(t, `
module schema export keyOf
type Emp = Tuple id, sal : Int end
let keyOf(e : Emp) : Int = e.id
end`)
	qmod := w.install(t, `
module q export byKey
rel emp : Rel(id : Int, sal : Int)
type Emp = Tuple id, sal : Int end
let byKey(k : Int) : Int =
  count(select e from e in emp where schema.keyOf(e) = k end)
end`)

	// Unoptimized execution scans.
	v, err := w.m.CallExport(qmod, "byKey", []machine.Value{machine.Int(123)})
	if err != nil || v != machine.Value(machine.Int(1)) {
		t.Fatalf("byKey = %v, %v", v, err)
	}
	w.m.ResetSteps()
	if _, err := w.m.CallExport(qmod, "byKey", []machine.Value{machine.Int(123)}); err != nil {
		t.Fatal(err)
	}
	stepsScan := w.m.Steps()

	byKeyOID := w.exportOID(t, qmod, "byKey")
	res, err := w.ro.OptimizeAndInstall(w.m, byKeyOID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rules["index-scan"] == 0 {
		t.Fatalf("index-scan did not fire after inlining: %v\n%s",
			res.Stats.Rules, tml.Print(res.Abs))
	}
	// The access-path decision is surfaced in the result's plan, with the
	// equality estimate from live statistics (500 distinct keys → 1 row).
	planOK := false
	for _, n := range res.Plan {
		if n.Op == "indexscan" && n.Algo == "index" && n.Table == "emp" {
			planOK = true
			if n.EstRows != 1 {
				t.Errorf("indexscan est=%v, want 1 (unique key)", n.EstRows)
			}
		}
	}
	if !planOK {
		t.Errorf("no indexscan node in Result.Plan: %v", res.Plan)
	}
	w.m.ResetSteps()
	v, err = w.m.CallExport(qmod, "byKey", []machine.Value{machine.Int(123)})
	if err != nil || v != machine.Value(machine.Int(1)) {
		t.Fatalf("optimized byKey = %v, %v", v, err)
	}
	stepsIndex := w.m.Steps()
	// An index probe beats a 500-row scan by a wide margin.
	if stepsIndex*10 > stepsScan {
		t.Errorf("index scan not faster: scan %d steps, index %d steps", stepsScan, stepsIndex)
	}
}
