package reflectopt_test

import (
	"testing"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/reflectopt"
	"tycoon/internal/store"
	"tycoon/internal/tyclib"
)

// TestE8FromCodeReconstruction exercises the paper's §6 future work: a
// closure installed WITHOUT its PTML tree (StripPTML halves code size,
// E3) is reconstructed by decompiling its executable TAM code, and the
// reflective optimizer achieves the same cross-barrier speedup as with
// PTML — answering the paper's question "whether this has an impact on
// the possible optimizations" with: not on these programs.
func TestE8FromCodeReconstruction(t *testing.T) {
	build := func(strip bool) (*store.Store, *machine.Machine, store.OID) {
		st, err := store.Open("")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		lk := linker.New(st, linker.Config{StripPTML: strip})
		comp, err := tyclib.Install(st, lk)
		if err != nil {
			t.Fatal(err)
		}
		unit, err := comp.Compile(`
module g export gauss
let gauss(n : Int) : Int =
  begin var s := 0; for i = 1 upto n do s := s + i end; s end
end`)
		if err != nil {
			t.Fatal(err)
		}
		modOID, err := lk.InstallModule(unit)
		if err != nil {
			t.Fatal(err)
		}
		mod := st.MustGet(modOID).(*store.Module)
		v, _ := mod.Lookup("gauss")
		return st, machine.New(st), v.Ref
	}

	run := func(m *machine.Machine, fn machine.Value) int64 {
		m.ResetSteps()
		v, err := m.Apply(fn, []machine.Value{machine.Int(1000)})
		if err != nil {
			t.Fatal(err)
		}
		if v != machine.Value(machine.Int(500500)) {
			t.Fatalf("gauss = %s", v.Show())
		}
		return m.Steps()
	}

	// Reference: PTML-based reflective optimization.
	stP, mP, oidP := build(false)
	roP := reflectopt.New(stP, reflectopt.Options{CheckInvariants: true})
	resP, err := roP.Optimize(oidP)
	if err != nil {
		t.Fatal(err)
	}
	stepsPTML := run(mP, resP.Closure)

	// Experiment: code-based reconstruction on a stripped store.
	stC, mC, oidC := build(true)
	roC := reflectopt.New(stC, reflectopt.Options{FromCode: true, CheckInvariants: true})
	resC, err := roC.Optimize(oidC)
	if err != nil {
		t.Fatalf("FromCode optimization failed: %v", err)
	}
	stepsCode := run(mC, resC.Closure)

	// Baseline for both: the unoptimized closure.
	baseline := run(mC, machine.Ref{OID: oidC})

	t.Logf("E8 gauss(1000): baseline=%d ptml-optimized=%d code-optimized=%d",
		baseline, stepsPTML, stepsCode)
	if stepsCode*2 > baseline {
		t.Errorf("code-based reconstruction lost the optimization: %d vs baseline %d", stepsCode, baseline)
	}
	// The achievable optimization matches the PTML route within 10%.
	ratio := float64(stepsCode) / float64(stepsPTML)
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("code-based (%d steps) deviates from PTML-based (%d steps) by more than 10%%",
			stepsCode, stepsPTML)
	}
}

// TestFromCodeOnRecursiveFunction checks the Y reconstruction path
// end-to-end: cells become Y bindings again and inlining stays bounded.
func TestFromCodeOnRecursiveFunction(t *testing.T) {
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	lk := linker.New(st, linker.Config{StripPTML: true})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	unit, err := comp.Compile(`
module r export fact
let fact(n : Int) : Int = if n < 2 then 1 else n * fact(n - 1) end
end`)
	if err != nil {
		t.Fatal(err)
	}
	modOID, err := lk.InstallModule(unit)
	if err != nil {
		t.Fatal(err)
	}
	mod := st.MustGet(modOID).(*store.Module)
	v, _ := mod.Lookup("fact")

	ro := reflectopt.New(st, reflectopt.Options{FromCode: true, CheckInvariants: true})
	m := machine.New(st)
	res, err := ro.OptimizeAndInstall(m, v.Ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Apply(res.Closure, []machine.Value{machine.Int(10)})
	if err != nil || got != machine.Value(machine.Int(3628800)) {
		t.Fatalf("optimized fact(10) = %v, %v", got, err)
	}
}
