package reflectopt_test

import (
	"fmt"
	"sync"
	"testing"

	"tycoon/internal/machine"
	"tycoon/internal/store"
)

const complexSrc = `
module complex export T, new, x, y
type T = Tuple x, y : Real end
let new(x : Real, y : Real) : T = tuple x, y end
let x(c : T) : Real = c.x
let y(c : T) : Real = c.y
end`

const geomSrc = `
module geom export abs
let abs(c : complex.T) : Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end`

// installGeom installs the §4.1 example and returns the abs closure OID.
func installGeom(t *testing.T, w *world) store.OID {
	t.Helper()
	w.install(t, complexSrc)
	geomOID := w.install(t, geomSrc)
	return w.exportOID(t, geomOID, "abs")
}

// TestRepeatOptimizeCacheHit: re-optimizing an unchanged closure is a
// cache hit — no reduce/expand passes run, verified by the pass stats —
// and the derived results (Inlined, Stats) survive the hit.
func TestRepeatOptimizeCacheHit(t *testing.T) {
	w := setup(t)
	absOID := installGeom(t, w)

	r1, err := w.ro.Optimize(absOID)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit {
		t.Fatal("first optimization reported a cache hit")
	}
	if len(r1.Pipeline.Passes) == 0 {
		t.Fatal("first optimization recorded no passes")
	}

	r2, err := w.ro.Optimize(absOID)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.CacheHit {
		t.Fatal("repeat optimization of an unchanged closure missed the cache")
	}
	if len(r2.Pipeline.Passes) != 0 {
		t.Errorf("cache hit ran %d passes: %v", len(r2.Pipeline.Passes), r2.Pipeline.Passes)
	}
	if r2.Abs != r1.Abs || r2.Closure != r1.Closure {
		t.Error("cache hit did not share the computed artifacts")
	}
	if r2.Inlined != r1.Inlined || r2.Inlined == 0 {
		t.Errorf("Inlined not preserved across the hit: %d vs %d", r2.Inlined, r1.Inlined)
	}
	cs := w.ro.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss / 1 hit", cs)
	}
}

// TestConcurrentOptimizeSameClosure: N goroutines reflecting on the same
// closure do the optimization work exactly once (singleflight), and all
// receive working code.
func TestConcurrentOptimizeSameClosure(t *testing.T) {
	w := setup(t)
	absOID := installGeom(t, w)
	point := &machine.Vector{Elems: []machine.Value{machine.Real(3), machine.Real(4)}}

	const n = 16
	results := make([]*machine.TAMClosure, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := w.ro.Optimize(absOID)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Closure
		}(i)
	}
	close(start)
	wg.Wait()

	cs := w.ro.CacheStats()
	if cs.Misses != 1 {
		t.Errorf("misses = %d, want exactly one execution", cs.Misses)
	}
	if cs.Hits+cs.Shared != n-1 {
		t.Errorf("hits+shared = %d, want %d", cs.Hits+cs.Shared, n-1)
	}
	for i, clo := range results {
		if clo == nil {
			t.Fatalf("goroutine %d got no closure", i)
		}
		v, err := w.m.Apply(clo, []machine.Value{point})
		if err != nil {
			t.Fatalf("goroutine %d's code: %v", i, err)
		}
		if r, ok := v.(machine.Real); !ok || r != 5.0 {
			t.Fatalf("goroutine %d's code computes %s, want 5", i, v.Show())
		}
	}
}

// TestConcurrentOptimizeDifferentClosures: goroutines optimizing
// different closures proceed independently — one miss per distinct
// closure, and every result is that closure's own code.
func TestConcurrentOptimizeDifferentClosures(t *testing.T) {
	w := setup(t)
	const nf = 4
	src := "module many export f0, f1, f2, f3\n"
	for i := 0; i < nf; i++ {
		src += fmt.Sprintf("let f%d(n : Int) : Int = n + %d\n", i, i)
	}
	modOID := w.install(t, src+"end")
	oids := make([]store.OID, nf)
	for i := 0; i < nf; i++ {
		oids[i] = w.exportOID(t, modOID, fmt.Sprintf("f%d", i))
	}

	const perClosure = 4
	results := make([]*machine.TAMClosure, nf*perClosure)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < nf; i++ {
		for j := 0; j < perClosure; j++ {
			wg.Add(1)
			go func(i, slot int) {
				defer wg.Done()
				<-start
				res, err := w.ro.Optimize(oids[i])
				if err != nil {
					t.Error(err)
					return
				}
				results[slot] = res.Closure
			}(i, i*perClosure+j)
		}
	}
	close(start)
	wg.Wait()

	// The machine itself is single-threaded; verify the code serially.
	for slot, clo := range results {
		if clo == nil {
			t.Fatalf("slot %d got no closure", slot)
		}
		i := slot / perClosure
		v, err := w.m.Apply(clo, []machine.Value{machine.Int(10)})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := v.(machine.Int); !ok || int(got) != 10+i {
			t.Errorf("f%d(10) = %s, want %d", i, v.Show(), 10+i)
		}
	}

	cs := w.ro.CacheStats()
	if cs.Misses != nf {
		t.Errorf("misses = %d, want one per distinct closure (%d)", cs.Misses, nf)
	}
	if cs.Hits+cs.Shared != nf*(perClosure-1) {
		t.Errorf("hits+shared = %d, want %d", cs.Hits+cs.Shared, nf*(perClosure-1))
	}
}

// TestBindingChangeInvalidates: a binding change through the store —
// updating an object and republishing a module root, the mutations a
// module upgrade performs — advances the binding epoch and forces
// recomputation instead of serving stale folded code. A non-binding
// mutation (MarkDirty) leaves the cache intact.
func TestBindingChangeInvalidates(t *testing.T) {
	w := setup(t)
	absOID := installGeom(t, w)

	if _, err := w.ro.Optimize(absOID); err != nil {
		t.Fatal(err)
	}

	// MarkDirty is an in-place mutation of a non-binding object: the
	// entry stays valid.
	scratch := w.st.Alloc(&store.Array{Elems: []store.Val{store.IntVal(1)}})
	w.st.MarkDirty(scratch)
	res, err := w.ro.Optimize(absOID)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("MarkDirty invalidated the optimized-code cache")
	}

	// Update republishes an object — the mutation a module upgrade
	// performs on its closures. The epoch advances; the entry dies.
	if err := w.st.Update(scratch, &store.Array{}); err != nil {
		t.Fatal(err)
	}
	res, err = w.ro.Optimize(absOID)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("optimization after a binding change was served from the cache")
	}
	cs := w.ro.CacheStats()
	if cs.Misses != 2 {
		t.Errorf("misses = %d, want 2 (recomputed after invalidation)", cs.Misses)
	}
}

// TestConcurrentInstallAndOptimize: module installation and reflective
// optimization run safely in parallel (exercised under -race).
func TestConcurrentInstallAndOptimize(t *testing.T) {
	w := setup(t)
	absOID := installGeom(t, w)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			src := fmt.Sprintf("module extra%d export g\nlet g(n : Int) : Int = n * 2\nend", i)
			unit, err := w.comp.Compile(src)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := w.lk.InstallModule(unit); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			res, err := w.ro.Optimize(absOID)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Closure == nil {
				t.Error("optimization returned no closure")
				return
			}
		}
	}()
	wg.Wait()
}
