package reflectopt_test

import (
	"testing"

	"tycoon/internal/machine"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// TestViewExpansion exercises the paper's database reading of the
// expansion pass (§3: "this CPS transformation performs procedure
// inlining in terms of traditional compiler optimization or view
// expansion in database terminology"): a function returning a query
// result is a view; a query over the view is optimized by expanding the
// view definition and then merging the stacked selections into one scan.
func TestViewExpansion(t *testing.T) {
	w := setup(t)
	relOID, err := w.mg.CreateRelation("emp", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "sal", Type: store.ColInt},
		{Name: "dept", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		err := w.mg.InsertRow(relOID, []store.Val{
			store.IntVal(i), store.IntVal(i * 11 % 9000), store.IntVal(i % 5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// highPaid is a view: a stored query definition.
	w.install(t, `
module views export highPaid
rel emp : Rel(id : Int, sal : Int, dept : Int)
let highPaid() : Rel(id : Int, sal : Int, dept : Int) =
  select e from e in emp where e.sal > 4000 end
end`)
	// The consumer queries the view.
	qmod := w.install(t, `
module q export inDept
let inDept(d : Int) : Int =
  count(select e from e in views.highPaid() where e.dept = d end)
end`)

	baseline, err := w.m.CallExport(qmod, "inDept", []machine.Value{machine.Int(2)})
	if err != nil {
		t.Fatal(err)
	}

	oid := w.exportOID(t, qmod, "inDept")
	res, err := w.ro.OptimizeAndInstall(w.m, oid)
	if err != nil {
		t.Fatal(err)
	}
	// View expansion (link-inline of the view body) followed by
	// merge-select: a single scan remains.
	if res.Stats.Rules["link-inline"] == 0 {
		t.Errorf("view was not expanded: %v", res.Stats.Rules)
	}
	if res.Stats.Rules["merge-select"] == 0 {
		t.Errorf("stacked selections were not merged: %v\n%s",
			res.Stats.Rules, tml.Print(res.Abs))
	}
	optimized, err := w.m.CallExport(qmod, "inDept", []machine.Value{machine.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if !machine.Eq(baseline, optimized) {
		t.Errorf("view expansion changed the answer: %s vs %s", baseline.Show(), optimized.Show())
	}
}
