// Package reflectopt implements the paper's reflective dynamic optimizer
// (§4.1, Fig. 3): at link or run time, when all bindings between the
// contributing parts of a persistent application are established, it maps
// the PTML tree of a function back into TML, re-establishes the R-value
// bindings of its free variables from the closure record, collects —
// via transitive reachability through the store — the declarations that
// contribute to the term, and invokes the ordinary TML optimizer on the
// resulting single scope. The result is compiled by the regular back end
// and linked into the running program.
//
// Two runtime-binding rewrite rules drive the cross-barrier effect:
//
//	fold-field:  ([] <oid> k cont) on an immutable module or tuple
//	             object folds to the fetched value — the module member
//	             fetch disappears;
//	link-inline: a call whose function position is the OID of a closure
//	             carrying PTML is replaced by the (re-bound) body of that
//	             closure — procedure inlining across module barriers.
//
// Everything else — subst, fold, η, the query rules — is the shared
// optimizer of package opt (the paper: "the static and dynamic
// optimizers share the same code for TML analysis and rewriting").
package reflectopt

import (
	"errors"
	"fmt"

	"tycoon/internal/machine"
	"tycoon/internal/opt"
	"tycoon/internal/pipeline"
	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/qopt"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// ErrNoPTML reports a closure whose persistent TML tree was stripped.
var ErrNoPTML = errors.New("reflectopt: closure carries no PTML (installed with StripPTML)")

// Options tunes the dynamic optimizer.
type Options struct {
	// Reg is the primitive registry; nil means prim.Default.
	Reg *prim.Registry
	// InlinePerOID bounds how often one non-recursive persistent closure
	// is inlined into a single optimization; 0 means DefaultInlinePerOID.
	// Library wrappers are tiny and non-recursive, so this is generous.
	InlinePerOID int
	// InlineRecursive bounds inlining of self-recursive closures (their
	// bodies mention their own OID): each inline is one unrolling.
	// 0 means DefaultInlineRecursive.
	InlineRecursive int
	// MaxInlineSize stops cross-barrier inlining once the accumulated
	// size of inlined bodies exceeds this many TML nodes (mutual
	// recursion through the store would otherwise grow without bound).
	// 0 means DefaultMaxInlineSize.
	MaxInlineSize int
	// Opt are the base optimizer options (rounds, budgets).
	Opt opt.Options
	// NoQueryRules disables the §4.2 query rewrite rules (ablation).
	NoQueryRules bool
	// FromCode reconstructs TML by decompiling the executable TAM code
	// instead of decoding the stored PTML tree — the paper's §6 future
	// work ("inverting the target machine code generation process").
	// Closures installed with StripPTML become optimizable again, at the
	// cost of a non-isomorphic (occasionally duplicated) tree.
	FromCode bool
	// CheckInvariants verifies well-formedness after every optimizer
	// pass, reported against the pass that introduced the violation.
	CheckInvariants bool
	// CacheEntries bounds the pipeline's optimized-code cache; 0 means
	// pipeline.DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// Pipe, when non-nil, is the compilation pipeline to run jobs through
	// instead of a private one. tycd injects its server-wide pipeline here
	// so reflective optimizations and remote SUBMIT compilations share one
	// cache and one singleflight group across all sessions. The optionsFP
	// component of every key keeps distinct Options configurations from
	// colliding in the shared cache; Reg, CheckInvariants and CacheEntries
	// are ignored in favour of the shared pipeline's own configuration.
	Pipe *pipeline.Pipeline
}

// Default inlining bounds.
const (
	DefaultInlinePerOID    = 64
	DefaultInlineRecursive = 2
	DefaultMaxInlineSize   = 60_000
)

// Optimizer performs reflective optimization against one store. It is
// safe for concurrent use: runs of the same closure against the same
// bindings are deduplicated and cached by the underlying pipeline.
type Optimizer struct {
	st   *store.Store
	opts Options
	pipe *pipeline.Pipeline
	// optionsFP folds every Options field that changes the output into
	// the cache key, so two optimizers with different settings over the
	// same store never share entries.
	optionsFP uint64
}

// New returns a dynamic optimizer over st.
func New(st *store.Store, opts Options) *Optimizer {
	if opts.Reg == nil {
		opts.Reg = prim.Default
	}
	if opts.InlinePerOID == 0 {
		opts.InlinePerOID = DefaultInlinePerOID
	}
	if opts.InlineRecursive == 0 {
		opts.InlineRecursive = DefaultInlineRecursive
	}
	if opts.MaxInlineSize == 0 {
		opts.MaxInlineSize = DefaultMaxInlineSize
	}
	pipe := opts.Pipe
	if pipe == nil {
		pipe = pipeline.New(st, pipeline.Config{
			Reg:             opts.Reg,
			CheckWellformed: opts.CheckInvariants,
			CacheEntries:    opts.CacheEntries,
		})
	}
	fp := pipeline.FingerprintOptions(
		opts.InlinePerOID, opts.InlineRecursive, opts.MaxInlineSize,
		opts.NoQueryRules, opts.FromCode, opts.CheckInvariants,
		opts.Opt.MaxRounds, opts.Opt.InlineBudget, opts.Opt.PenaltyLimit,
		opts.Opt.NoExpansion, opts.Opt.NoFold, opts.Opt.SubstUnrestricted,
		len(opts.Opt.Extra))
	return &Optimizer{st: st, opts: opts, pipe: pipe, optionsFP: fp}
}

// Result is the outcome of one reflective optimization.
type Result struct {
	// Abs is the globally optimized TML procedure.
	Abs *tml.Abs
	// Closure is the recompiled executable value.
	Closure *machine.TAMClosure
	// Stats are the optimizer statistics.
	Stats *opt.Stats
	// Inlined counts persistent closures inlined across barriers.
	Inlined int
	// Pipeline is the per-pass instrumentation of this run; on a cache
	// hit it records zero passes.
	Pipeline *pipeline.Stats
	// CacheHit reports that the optimized code was served from the
	// pipeline cache without re-running the optimizer.
	CacheHit bool
	// Batchable marks the optimized procedure as a query predicate that
	// the relational substrate will run on its batched, compiled kernel
	// (qopt.Batchable: step-neutral proc(x ce cc)).
	Batchable bool
	// Plan is the optimize-time access-path plan: one node per relational
	// primitive in the optimized code whose relation operand is a
	// runtime-bound store relation — index probes with their equality
	// estimates from live column statistics, and the sequential scans the
	// cost gate kept. Join algorithms and actual cardinalities are
	// runtime decisions; those nodes come from relalg's EXPLAIN capture.
	Plan []*qopt.PlanNode
}

// CacheStats reports the underlying pipeline's cache counters.
func (o *Optimizer) CacheStats() pipeline.CacheStats {
	return o.pipe.CacheStats()
}

// cacheKey content-addresses one reflective optimization: the canonical
// α-invariant hash of the closure's source (PTML tree, or raw code blob
// when decompiling), the fingerprint of its R-value binding table, and
// the optimizer options. A zero key (closure without the needed blob)
// bypasses the cache; Optimize then reports the real error.
func (o *Optimizer) cacheKey(oid store.OID) pipeline.Key {
	obj, err := o.st.Get(oid)
	if err != nil {
		return pipeline.Key{}
	}
	clo, ok := obj.(*store.Closure)
	if !ok {
		return pipeline.Key{}
	}
	var src ptml.Hash
	if o.opts.FromCode {
		blob, ok := o.blob(clo.Code)
		if !ok {
			return pipeline.Key{}
		}
		src = ptml.HashRaw(blob)
	} else {
		if clo.PTML == store.Nil {
			return pipeline.Key{}
		}
		blob, ok := o.blob(clo.PTML)
		if !ok {
			return pipeline.Key{}
		}
		h, err := ptml.CanonicalHash(blob)
		if err != nil {
			return pipeline.Key{}
		}
		src = h
	}
	return pipeline.Key{
		Source:   src,
		Bindings: pipeline.BindingFingerprint(clo.Bindings),
		Options:  o.optionsFP,
	}
}

func (o *Optimizer) blob(oid store.OID) ([]byte, bool) {
	obj, err := o.st.Get(oid)
	if err != nil {
		return nil, false
	}
	b, ok := obj.(*store.Blob)
	if !ok {
		return nil, false
	}
	return b.Bytes, true
}

// Optimize reflectively optimizes the persistent closure denoted by oid
// and returns newly generated code. The persistent original is left
// untouched except for its cached derived attributes (cost, savings).
// Repeat optimization of an unchanged closure is a cache hit: no
// reduce/expand passes run, and concurrent calls on the same closure do
// the work exactly once.
func (o *Optimizer) Optimize(oid store.OID) (*Result, error) {
	state := &inlineState{counts: make(map[store.OID]int)}
	reflectPack := pipeline.RulePack{Name: "reflect", Rules: []opt.Rule{
		{Name: "fold-field", Apply: o.foldField},
		{Name: "link-inline", Apply: func(ctx *opt.Ctx, app *tml.App) (*tml.App, bool) {
			return o.linkInline(ctx, app, state)
		}},
	}}
	packs := []pipeline.RulePack{reflectPack}
	if !o.opts.NoQueryRules {
		packs = append(packs, qopt.RuntimePack(o.st))
	}

	optOpts := o.opts.Opt
	optOpts.CheckInvariants = o.opts.CheckInvariants

	job := pipeline.Job{
		Name: optName(o.st, oid),
		Source: func(gen *tml.VarGen) (*tml.Abs, error) {
			return o.reconstruct(oid, gen)
		},
		Opt:           optOpts,
		Packs:         packs,
		Codegen:       true,
		RequireClosed: true,
		Key:           o.cacheKey(oid),
	}
	res, err := o.pipe.Run(job)
	if err != nil {
		return nil, err
	}

	// Derive the cross-barrier inline count from the rule statistics so
	// it survives cache hits (state.total is only filled on execution).
	inlined := 0
	if res.Opt != nil {
		inlined = res.Opt.Rules["link-inline"]
	}

	if !res.CacheHit && res.Opt != nil {
		// Cache derived attributes in the persistent system state (paper
		// §4.1: "the optimizer attaches several derived attributes
		// (costs, savings, …) to the generated code"). Attrs are
		// metadata, not bindings: SetClosureAttrs does not advance the
		// binding epoch, so writing them never invalidates the entry
		// that produced them.
		_ = o.st.SetClosureAttrs(oid, int32(res.Opt.CostAfter),
			int32(res.Opt.CostBefore-res.Opt.CostAfter))
	}
	return &Result{
		Abs:       res.Abs,
		Closure:   res.Closure,
		Stats:     res.Opt,
		Inlined:   inlined,
		Pipeline:  res.Stats,
		CacheHit:  res.CacheHit,
		Batchable: qopt.Batchable(res.Abs),
		Plan:      accessPlan(o.st, res.Abs),
	}, nil
}

// accessPlan derives the access-path plan from the optimized code: the
// relational primitives that survived optimization, annotated with live
// statistics. Deriving it from the result (rather than recording inside
// the rules) keeps the plan available on pipeline cache hits, when no
// rule ever runs.
func accessPlan(st *store.Store, abs *tml.Abs) []*qopt.PlanNode {
	if abs == nil {
		return nil
	}
	var nodes []*qopt.PlanNode
	relFor := func(v tml.Value) (*store.Relation, int) {
		oidNode, ok := v.(*tml.Oid)
		if !ok {
			return nil, 0
		}
		obj, err := st.Get(store.OID(oidNode.Ref))
		if err != nil {
			return nil, 0
		}
		rel, ok := obj.(*store.Relation)
		if !ok {
			return nil, 0
		}
		return rel, rel.NumRows()
	}
	tml.Walk(abs, func(n tml.Node) bool {
		app, ok := n.(*tml.App)
		if !ok {
			return true
		}
		p, ok := app.Fn.(*tml.Prim)
		if !ok {
			return true
		}
		switch p.Name {
		case "indexscan":
			if len(app.Args) != 5 {
				return true
			}
			rel, nrows := relFor(app.Args[0])
			if rel == nil {
				return true
			}
			node := &qopt.PlanNode{
				Op: "indexscan", Algo: "index", Table: rel.Name,
				InRows: int64(nrows), EstRows: -1, ActRows: -1,
			}
			if colLit, ok := app.Args[1].(*tml.Lit); ok && colLit.Kind == tml.LitInt {
				node.Detail = fmt.Sprintf("col=%d", colLit.Int)
				if sts := rel.ColumnStats(nrows); int(colLit.Int) < len(sts) {
					node.EstRows = qopt.EstEqMatches(&sts[colLit.Int], nrows)
				}
			}
			nodes = append(nodes, node)
		case "select", "exists", "project", "join":
			relArg := 1
			if len(app.Args) != 4 && !(p.Name == "join" && len(app.Args) == 5) {
				return true
			}
			rel, nrows := relFor(app.Args[relArg])
			if rel == nil {
				return true
			}
			node := &qopt.PlanNode{
				Op: p.Name, Algo: "scan", Table: rel.Name,
				InRows: int64(nrows), EstRows: -1, ActRows: -1,
			}
			if p.Name == "join" {
				if rel2, n2 := relFor(app.Args[2]); rel2 != nil {
					node.Table += "," + rel2.Name
					node.InRows = int64(nrows) * int64(n2)
				}
			}
			nodes = append(nodes, node)
		}
		return true
	})
	return nodes
}

// OptimizeAndInstall optimizes and then overrides the machine's link
// cache so every subsequent application of the OID runs the new code.
func (o *Optimizer) OptimizeAndInstall(m *machine.Machine, oid store.OID) (*Result, error) {
	res, err := o.Optimize(oid)
	if err != nil {
		return nil, err
	}
	m.OverrideLink(oid, res.Closure)
	return res, nil
}

func optName(st *store.Store, oid store.OID) string {
	if obj, err := st.Get(oid); err == nil {
		if c, ok := obj.(*store.Closure); ok {
			return c.Name + "!opt"
		}
	}
	return "opt"
}

// reconstruct maps a closure's PTML back into TML and re-establishes the
// R-value bindings of its free variables, yielding the paper's §4.1
// wrapper shape: the original parameters around a λ binding the former
// globals to their runtime values.
func (o *Optimizer) reconstruct(oid store.OID, gen *tml.VarGen) (*tml.Abs, error) {
	obj, err := o.st.Get(oid)
	if err != nil {
		return nil, err
	}
	clo, ok := obj.(*store.Closure)
	if !ok {
		return nil, fmt.Errorf("reflectopt: oid 0x%x is a %s, not a closure", uint64(oid), obj.Kind())
	}
	var abs *tml.Abs
	var free []*tml.Var
	if o.opts.FromCode || clo.PTML == store.Nil {
		if !o.opts.FromCode && clo.PTML == store.Nil {
			return nil, fmt.Errorf("%w: %s", ErrNoPTML, clo.Name)
		}
		abs, free, err = o.decompile(clo, gen)
		if err != nil {
			return nil, err
		}
	} else {
		blobObj, err := o.st.Get(clo.PTML)
		if err != nil {
			return nil, err
		}
		blob, ok := blobObj.(*store.Blob)
		if !ok {
			return nil, fmt.Errorf("reflectopt: PTML of %s is a %s", clo.Name, blobObj.Kind())
		}
		node, decFree, err := ptml.Decode(blob.Bytes, gen)
		if err != nil {
			return nil, fmt.Errorf("reflectopt: %s: %w", clo.Name, err)
		}
		decAbs, ok := node.(*tml.Abs)
		if !ok {
			return nil, fmt.Errorf("reflectopt: PTML of %s decodes to %T, want abstraction", clo.Name, node)
		}
		abs, free = decAbs, decFree
	}
	if len(free) == 0 {
		return abs, nil
	}
	// Bind every free variable to its recorded runtime value.
	vals := make([]tml.Value, len(free))
	for i, v := range free {
		bv, ok := bindingByName(clo.Bindings, v.String())
		if !ok {
			return nil, fmt.Errorf("reflectopt: %s: no binding for %s", clo.Name, v)
		}
		vals[i] = storeValToTML(bv)
	}
	inner := &tml.Abs{Params: free, Body: abs.Body}
	wrapped := tml.NewApp(inner, vals...)
	return &tml.Abs{Params: abs.Params, Body: wrapped}, nil
}

// decompile reconstructs TML from the closure's executable code (paper
// §6 future work): the label tables recorded by the code generator make
// the inversion exact up to join-point duplication.
func (o *Optimizer) decompile(clo *store.Closure, gen *tml.VarGen) (*tml.Abs, []*tml.Var, error) {
	blobObj, err := o.st.Get(clo.Code)
	if err != nil {
		return nil, nil, err
	}
	blob, ok := blobObj.(*store.Blob)
	if !ok {
		return nil, nil, fmt.Errorf("reflectopt: code of %s is a %s", clo.Name, blobObj.Kind())
	}
	prog, err := machine.DecodeProgram(blob.Bytes)
	if err != nil {
		return nil, nil, err
	}
	abs, free, err := machine.Decompile(prog, gen)
	if err != nil {
		return nil, nil, fmt.Errorf("reflectopt: %s: %w", clo.Name, err)
	}
	return abs, free, nil
}

func bindingByName(bs []store.Binding, name string) (store.Val, bool) {
	for _, b := range bs {
		if b.Name == name {
			return b.Val, true
		}
	}
	return store.Val{}, false
}

// storeValToTML lifts a stored binding value into a TML value node:
// scalars become literals, references become OID nodes.
func storeValToTML(v store.Val) tml.Value {
	switch v.Kind {
	case store.ValInt:
		return tml.Int(v.Int)
	case store.ValReal:
		return tml.Real(v.Real)
	case store.ValBool:
		return tml.Bool(v.Bool)
	case store.ValChar:
		return tml.Char(v.Ch)
	case store.ValStr:
		return tml.Str(v.Str)
	case store.ValRef:
		return tml.NewOid(uint64(v.Ref))
	default:
		return tml.Unit()
	}
}

// foldField folds ([] <oid> K cont) on immutable store objects: module
// member fetches and tuple field accesses against runtime bindings.
// Mutable objects (arrays, relations) are never folded.
func (o *Optimizer) foldField(ctx *opt.Ctx, app *tml.App) (*tml.App, bool) {
	p, ok := app.Fn.(*tml.Prim)
	if !ok || p.Name != "[]" || len(app.Args) != 3 {
		return nil, false
	}
	oidNode, ok := app.Args[0].(*tml.Oid)
	if !ok {
		return nil, false
	}
	idxLit, ok := app.Args[1].(*tml.Lit)
	if !ok || idxLit.Kind != tml.LitInt {
		return nil, false
	}
	obj, err := o.st.Get(store.OID(oidNode.Ref))
	if err != nil {
		return nil, false
	}
	var val store.Val
	switch obj := obj.(type) {
	case *store.Module:
		if idxLit.Int < 0 || idxLit.Int >= int64(len(obj.Exports)) {
			return nil, false
		}
		val = obj.Exports[idxLit.Int].Val
	case *store.Tuple:
		if idxLit.Int < 0 || idxLit.Int >= int64(len(obj.Fields)) {
			return nil, false
		}
		val = obj.Fields[idxLit.Int]
	default:
		return nil, false
	}
	return tml.NewApp(app.Args[2], storeValToTML(val)), true
}

// inlineState tracks cross-barrier inlining budgets within one run.
type inlineState struct {
	counts map[store.OID]int
	size   int
	total  int
}

// linkInline replaces a call through a closure OID by the closure's
// re-bound body: procedure inlining across abstraction barriers. The
// inlined body's own free variables are bound the same way, so the
// optimizer effectively collects all contributing declarations through
// transitive reachability (paper §4.1). Self-recursive closures unroll
// at most InlineRecursive times; the accumulated size bound stops mutual
// recursion through the store.
func (o *Optimizer) linkInline(ctx *opt.Ctx, app *tml.App, state *inlineState) (*tml.App, bool) {
	oidNode, ok := app.Fn.(*tml.Oid)
	if !ok {
		return nil, false
	}
	oid := store.OID(oidNode.Ref)
	if state.size >= o.opts.MaxInlineSize {
		return nil, false
	}
	abs, err := o.reconstruct(oid, ctx.Gen)
	if err != nil {
		return nil, false // no PTML or not a closure: leave the call dynamic
	}
	if len(abs.Params) != len(app.Args) {
		return nil, false
	}
	limit := o.opts.InlinePerOID
	if selfRecursive(abs, oid) {
		limit = o.opts.InlineRecursive
	}
	if state.counts[oid] >= limit {
		return nil, false
	}
	state.counts[oid]++
	state.total++
	state.size += tml.Size(abs)
	return tml.NewApp(abs, app.Args...), true
}

// selfRecursive reports whether the reconstructed body calls back through
// its own OID.
func selfRecursive(abs *tml.Abs, oid store.OID) bool {
	found := false
	tml.Walk(abs, func(n tml.Node) bool {
		if o, ok := n.(*tml.Oid); ok && store.OID(o.Ref) == oid {
			found = true
		}
		return !found
	})
	return found
}
