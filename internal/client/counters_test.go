package client_test

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/netfault"
	"tycoon/internal/server"
	"tycoon/internal/ship"
)

// TestCountersTrackResilience pins the counter semantics end to end: a
// clean request is one attempt and nothing else; a severed connection
// costs a retry and a reconnect, both visible in Counters().
func TestCountersTrackResilience(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	p, err := netfault.NewProxy(addr, netfault.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := client.Dial(p.Addr(), client.Options{
		Timeout:   5 * time.Second,
		Retries:   8,
		RetryBase: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ct := c.Counters()
	if ct.Attempts != 1 || ct.Retries != 0 || ct.Reconnects != 0 {
		t.Errorf("clean ping counters = %+v, want exactly one attempt", ct)
	}

	p.DropAll()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after drop: %v", err)
	}
	ct = c.Counters()
	if ct.Reconnects < 1 {
		t.Errorf("no reconnect counted after a severed connection: %+v", ct)
	}
	if ct.Retries < 1 {
		t.Errorf("no retry counted after a severed connection: %+v", ct)
	}
	if ct.Attempts < 3 {
		t.Errorf("attempts = %d, want ≥3 (clean ping + failed try + retried try)", ct.Attempts)
	}
}

// TestRetryAfterHonoredCounter refuses one request with a typed
// overloaded error carrying a RetryAfterMs hint: the client's backoff
// must use the hint and say so in its counters.
func TestRetryAfterHonoredCounter(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fakeHandshake(conn)
		// First ping: refused with a backoff hint. Second: served.
		if v, _, err := ship.ReadFrame(conn, 0); err != nil || v != ship.VPing {
			return
		}
		ship.WriteFrame(conn, ship.VError,
			(&ship.WireError{Code: ship.CodeOverloaded, Msg: "busy", RetryAfterMs: 5}).Encode())
		if v, _, err := ship.ReadFrame(conn, 0); err != nil || v != ship.VPing {
			return
		}
		ship.WriteFrame(conn, ship.VPong, nil)
		io.Copy(io.Discard, conn)
	}()

	c, err := client.Dial(ln.Addr().String(), client.Options{
		Timeout:   5 * time.Second,
		Retries:   3,
		RetryBase: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping through the hinted refusal: %v", err)
	}
	ct := c.Counters()
	if ct.RetryAfterHonored != 1 {
		t.Errorf("RetryAfterHonored = %d, want 1", ct.RetryAfterHonored)
	}
	if ct.Retries != 1 || ct.Attempts != 2 {
		t.Errorf("counters = %+v, want one retry over two attempts", ct)
	}
}

// TestAbortInterruptsInflightRequest pins the cancellation contract
// hedged reads rely on: Abort fails a blocked request with ErrAborted
// now (not at its timeout), and the aborted client refuses further work.
func TestAbortInterruptsInflightRequest(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fakeHandshake(conn)
		ship.ReadFrame(conn, 0) // swallow the ping, answer nothing
		<-hold
	}()
	defer close(hold)

	c, err := client.Dial(ln.Addr().String(), client.Options{
		Timeout: time.Minute, // far beyond the test: only Abort can end the wait
		Retries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errc := make(chan error, 1)
	go func() { errc <- c.Ping() }()
	time.Sleep(50 * time.Millisecond) // let the ping block on the read
	start := time.Now()
	c.Abort()
	select {
	case err := <-errc:
		if !errors.Is(err, client.ErrAborted) {
			t.Fatalf("aborted request returned %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not interrupt the blocked request")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("abort took %v; it must not wait for the request timeout", waited)
	}

	// The client is poisoned: new requests fail fast without dialling.
	if err := c.Ping(); !errors.Is(err, client.ErrAborted) {
		t.Errorf("request after Abort returned %v, want ErrAborted", err)
	}
}
