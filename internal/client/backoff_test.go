package client

import (
	"math/rand"
	"testing"
	"time"
)

// backoffClient builds a client with just enough state to compute
// backoffs; no connection is involved.
func backoffClient(base, max time.Duration) *Client {
	return &Client{
		opts: Options{RetryBase: base, RetryMax: max, Retries: 8},
		rng:  rand.New(rand.NewSource(7)),
	}
}

// TestBackoffFirstRetryRespectsCap is the regression test for the
// jitter bound: with RetryBase above RetryMax, even attempt 0 must come
// out capped — the old additive jitter could overshoot the cap by 50%.
func TestBackoffFirstRetryRespectsCap(t *testing.T) {
	const max = 150 * time.Millisecond
	c := backoffClient(400*time.Millisecond, max)
	for i := 0; i < 200; i++ {
		d := c.backoffLocked(0, 0)
		if d > max {
			t.Fatalf("first retry delay %v exceeds cap %v", d, max)
		}
		if d < max/2 {
			t.Fatalf("first retry delay %v below jitter floor %v", d, max/2)
		}
	}
}

// TestBackoffNeverExceedsCap sweeps attempts deep enough to overflow
// the shift and hints far above the cap: every draw stays in (0, max].
func TestBackoffNeverExceedsCap(t *testing.T) {
	const max = 250 * time.Millisecond
	c := backoffClient(5*time.Millisecond, max)
	for attempt := 0; attempt < 80; attempt++ {
		for _, hint := range []time.Duration{0, 3 * time.Millisecond, 10 * time.Second} {
			d := c.backoffLocked(attempt, hint)
			if d <= 0 || d > max {
				t.Fatalf("attempt %d hint %v: delay %v out of (0, %v]", attempt, hint, d, max)
			}
		}
	}
}

// TestBackoffHonorsHint pins the RetryAfterMs path: a usable hint
// replaces the schedule (jittered downward only), an oversized hint is
// capped, and the honored counter ticks exactly when a hint was used.
func TestBackoffHonorsHint(t *testing.T) {
	c := backoffClient(100*time.Millisecond, time.Second)
	d := c.backoffLocked(0, 40*time.Millisecond)
	if d < 20*time.Millisecond || d > 40*time.Millisecond {
		t.Errorf("hinted delay %v outside [20ms, 40ms]", d)
	}
	if got := c.honored.Load(); got != 1 {
		t.Errorf("honored = %d after one hinted backoff, want 1", got)
	}
	if d := c.backoffLocked(0, 10*time.Second); d > time.Second {
		t.Errorf("oversized hint not capped: %v", d)
	}
	c.backoffLocked(0, 0)
	if got := c.honored.Load(); got != 2 {
		t.Errorf("honored = %d, want 2 (the un-hinted backoff must not count)", got)
	}
}
