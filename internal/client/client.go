// Package client implements the tycd wire client used by tycsh and the
// server tests: it dials a server, performs the hello/welcome
// handshake, and exposes one method per request verb. A client holds
// one session; requests are strictly one-at-a-time (the protocol has no
// request ids to match concurrent responses), enforced by a mutex so a
// client value may still be shared between goroutines.
//
// SubmitTML is the high-level entry: it parses the s-expression TML
// concrete syntax locally, encodes the tree as PTML and ships it — the
// client-side half of the paper's persistent intermediate code
// representation crossing an open-system boundary.
package client

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/ship"
	"tycoon/internal/tml"
)

// Client is one open session against a tycd server.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
	// Session is the server-assigned session id from the handshake.
	Session uint64
	// Server is the server identification from the handshake.
	Server string
}

// Options tunes Dial.
type Options struct {
	// Timeout bounds the dial and each request round trip; 0 disables.
	Timeout time.Duration
	// Client identifies this client in the server log.
	Client string
}

// Dial connects to a tycd server and performs the handshake.
func Dial(addr string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Client == "" {
		o.Client = "tycoon/internal/client"
	}
	d := net.Dialer{Timeout: o.Timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, timeout: o.Timeout}
	verb, body, err := c.roundTrip(ship.VHello, (&ship.Hello{
		Version: ship.ProtoVersion, Client: o.Client,
	}).Encode())
	if err != nil {
		conn.Close()
		return nil, err
	}
	if verb != ship.VWelcome {
		conn.Close()
		return nil, fmt.Errorf("client: expected welcome, got %s", verb)
	}
	w, err := ship.DecodeWelcome(body)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.Session = w.Session
	c.Server = w.Server
	return c, nil
}

// Close sends an orderly bye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	c.deadline()
	_ = ship.WriteFrame(c.conn, ship.VBye, nil)
	err := c.conn.Close()
	c.conn = nil
	return err
}

// deadline arms the connection deadline for one round trip; must be
// called with c.mu held.
func (c *Client) deadline() {
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
}

// roundTrip sends one request frame and reads its response frame,
// surfacing server-side WireErrors as Go errors.
func (c *Client) roundTrip(v ship.Verb, body []byte) (ship.Verb, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return 0, nil, fmt.Errorf("client: connection closed")
	}
	c.deadline()
	if err := ship.WriteFrame(c.conn, v, body); err != nil {
		return 0, nil, err
	}
	rv, rbody, err := ship.ReadFrame(c.conn, 0)
	if err != nil {
		return 0, nil, err
	}
	if rv == ship.VError {
		we, derr := ship.DecodeWireError(rbody)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, we
	}
	return rv, rbody, nil
}

// result decodes a VResult response.
func result(v ship.Verb, body []byte) (*ship.Result, error) {
	if v != ship.VResult {
		return nil, fmt.Errorf("client: expected result, got %s", v)
	}
	return ship.DecodeResult(body)
}

// Ping probes server liveness.
func (c *Client) Ping() error {
	v, _, err := c.roundTrip(ship.VPing, nil)
	if err != nil {
		return err
	}
	if v != ship.VPong {
		return fmt.Errorf("client: expected pong, got %s", v)
	}
	return nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*ship.ServerStats, error) {
	v, body, err := c.roundTrip(ship.VStats, nil)
	if err != nil {
		return nil, err
	}
	if v != ship.VStatsOK {
		return nil, fmt.Errorf("client: expected stats, got %s", v)
	}
	var st ship.ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Install compiles and installs a TL module server-side.
func (c *Client) Install(source string) (*ship.Result, error) {
	v, body, err := c.roundTrip(ship.VInstall, (&ship.Install{Source: source}).Encode())
	if err != nil {
		return nil, err
	}
	return result(v, body)
}

// Call applies an exported function of an installed module; an empty
// module name calls a closure previously saved by Submit.
func (c *Client) Call(module, fn string, args ...ship.WVal) (*ship.Result, error) {
	req := &ship.Call{Module: module, Fn: fn, Args: args}
	body, err := req.Encode()
	if err != nil {
		return nil, err
	}
	v, rbody, err := c.roundTrip(ship.VCall, body)
	if err != nil {
		return nil, err
	}
	return result(v, rbody)
}

// Optimize reflectively optimizes an installed function server-side.
func (c *Client) Optimize(module, fn string) (*ship.Result, error) {
	v, body, err := c.roundTrip(ship.VOptimize, (&ship.Optimize{Module: module, Fn: fn}).Encode())
	if err != nil {
		return nil, err
	}
	return result(v, body)
}

// Submit ships a pre-encoded PTML request.
func (c *Client) Submit(req *ship.Submit) (*ship.Result, error) {
	body, err := req.Encode()
	if err != nil {
		return nil, err
	}
	v, rbody, err := c.roundTrip(ship.VSubmit, body)
	if err != nil {
		return nil, err
	}
	return result(v, rbody)
}

// SubmitTML parses a TML application in concrete s-expression syntax,
// encodes it as PTML and submits it. Free variables named e and k
// become the server's exception and result continuations; every other
// free variable must appear in binds. Example:
//
//	res, err := c.SubmitTML("answer", "(+ 40 2 e cont(n) (k n))", nil, false, "")
func (c *Client) SubmitTML(name, src string, binds []ship.WBind, optimize bool, save string) (*ship.Result, error) {
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	data, err := ptml.EncodeApp(app)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return c.Submit(&ship.Submit{
		Name:     name,
		PTML:     data,
		Binds:    binds,
		Optimize: optimize,
		Save:     save,
	})
}
