// Package client implements the tycd wire client used by tycsh, the
// chaos harness and the server tests: it dials a server, performs the
// hello/welcome handshake, and exposes one method per request verb. A
// client holds one session; requests are strictly one-at-a-time (the
// protocol has no request ids to match concurrent responses), enforced
// by a mutex so a client value may still be shared between goroutines.
//
// The client is fault-tolerant when Options.Retries is set: a lost or
// corrupted connection is closed (never left half-read), re-dialled and
// re-handshaken, and the failed request retried with exponential
// backoff and jitter — but only when retrying is safe. The taxonomy:
//
//   - Refusals (CodeOverloaded, CodeShutdown) and protocol errors
//     (CodeProto — the request frame was corrupted in transit and never
//     decoded) mean the server did NOT execute the request; they are
//     retryable for every verb. An overloaded server's RetryAfterMs
//     hint overrides the backoff base.
//   - Dial and handshake failures mean the request was never sent, so
//     they too retry for every verb — the case that carries clients
//     across a server restart.
//   - Transport failures and corrupt response frames are ambiguous —
//     the request may or may not have executed — so they are retried
//     only for requests that are idempotent: reads (PING, STATS,
//     HEALTH), naturally idempotent verbs (OPTIMIZE), and SUBMIT /
//     INSTALL requests carrying an idempotency key, which the server
//     deduplicates so a retried save= install is applied exactly once.
//   - Every other structured error (compile, exec, budget, not-found,
//     degraded, …) is a definitive answer and is never retried.
//
// SubmitTML is the high-level entry: it parses the s-expression TML
// concrete syntax locally, encodes the tree as PTML and ships it — the
// client-side half of the paper's persistent intermediate code
// representation crossing an open-system boundary.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/ship"
	"tycoon/internal/tml"
)

// Defaults for Options zero values when Retries > 0.
const (
	DefaultRetryBase = 20 * time.Millisecond
	DefaultRetryMax  = time.Second
)

// Client is one session against a tycd server, transparently re-dialled
// after connection loss when retries are enabled.
type Client struct {
	mu      sync.Mutex
	addr    string
	opts    Options
	conn    net.Conn
	rng     *rand.Rand // jitter and idempotency-key prefix; guarded by mu
	keyBase string
	keySeq  uint64

	retries    atomic.Int64 // attempts beyond the first, across all requests
	attempts   atomic.Int64 // request attempts, including first tries
	reconnects atomic.Int64 // dials after the initial handshake succeeded
	honored    atomic.Int64 // backoffs that used a server RetryAfterMs hint
	dialed     atomic.Bool  // the initial handshake has succeeded once
	aborted    atomic.Bool  // Abort was called; no further attempts

	// abortMu guards liveConn, the connection pointer Abort closes. It
	// is a second, tiny lock so Abort never waits for the request mutex
	// an in-flight attempt is holding.
	abortMu  sync.Mutex
	liveConn net.Conn

	// Session is the server-assigned session id from the most recent
	// handshake; Server is the server identification.
	Session uint64
	Server  string
}

// Counters is the client-side resilience counter block: how hard this
// session had to work to look like a clean request stream. (Stats, by
// contrast, asks the server for ITS counters.)
type Counters struct {
	// Attempts counts request attempts including first tries; Retries
	// the attempts beyond the first (reconnects and request retries).
	Attempts int64
	Retries  int64
	// Reconnects counts re-dials after the session was once established
	// — each one is a connection the taxonomy declared dead.
	Reconnects int64
	// RetryAfterHonored counts backoffs that used a server-supplied
	// RetryAfterMs hint instead of the exponential schedule.
	RetryAfterHonored int64
}

// Counters snapshots the resilience counters.
func (c *Client) Counters() Counters {
	return Counters{
		Attempts:          c.attempts.Load(),
		Retries:           c.retries.Load(),
		Reconnects:        c.reconnects.Load(),
		RetryAfterHonored: c.honored.Load(),
	}
}

// ErrAborted is returned by requests interrupted by Abort.
var ErrAborted = errors.New("client: aborted")

// Abort poisons the client and forces any in-flight request to fail
// fast by closing the connection out from under it: the pending read
// returns a transport error, the retry loop sees the aborted flag and
// stops instead of re-dialling. Hedged reads use this for
// first-answer-wins cancellation — the losing attempt must release its
// server session now, not when its timeout expires. An aborted client
// is dead; Close it and dial a fresh one.
func (c *Client) Abort() {
	c.aborted.Store(true)
	// Closing a net.Conn is safe concurrently with a Read blocked on it.
	c.abortMu.Lock()
	if c.liveConn != nil {
		c.liveConn.Close()
	}
	c.abortMu.Unlock()
}

// setLiveConn publishes the connection Abort should close.
func (c *Client) setLiveConn(conn net.Conn) {
	c.abortMu.Lock()
	c.liveConn = conn
	c.abortMu.Unlock()
}

// Options tunes Dial.
type Options struct {
	// Timeout bounds the dial and each request attempt; 0 disables.
	Timeout time.Duration
	// Client identifies this client in the server log.
	Client string
	// Retries is the number of retry attempts after the first try; 0
	// disables retrying entirely (one shot, old behaviour).
	Retries int
	// RetryBase is the first backoff delay; doubled per attempt up to
	// RetryMax, jittered ±50%. Zeros mean the defaults above.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Seed drives jitter and idempotency-key generation; 0 seeds from
	// the clock (fine outside deterministic tests).
	Seed int64
}

// Dial connects to a tycd server and performs the handshake, retrying
// per Options.
func Dial(addr string, opts ...Options) (*Client, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Client == "" {
		o.Client = "tycoon/internal/client"
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{addr: addr, opts: o, rng: rand.New(rand.NewSource(seed))}
	c.keyBase = fmt.Sprintf("%s-%08x", o.Client, c.rng.Uint32())
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.connectLocked(); err == nil {
			return c, nil
		}
		if attempt >= c.opts.Retries {
			return nil, err
		}
		c.retries.Add(1)
		time.Sleep(c.backoffLocked(attempt, 0))
	}
}

// connectLocked dials and handshakes; c.mu must be held.
func (c *Client) connectLocked() error {
	d := net.Dialer{Timeout: c.opts.Timeout}
	conn, err := d.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	if c.opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := ship.WriteFrame(conn, ship.VHello, (&ship.Hello{
		Version: ship.ProtoVersion, Client: c.opts.Client,
	}).Encode()); err != nil {
		conn.Close()
		return err
	}
	verb, body, err := ship.ReadFrame(conn, 0)
	if err != nil {
		conn.Close()
		return err
	}
	if verb == ship.VError {
		conn.Close()
		we, derr := ship.DecodeWireError(body)
		if derr != nil {
			return derr
		}
		return we
	}
	if verb != ship.VWelcome {
		conn.Close()
		return fmt.Errorf("client: expected welcome, got %s", verb)
	}
	w, err := ship.DecodeWelcome(body)
	if err != nil {
		conn.Close()
		return err
	}
	c.conn = conn
	c.setLiveConn(conn)
	if !c.dialed.Swap(true) {
		// The first successful handshake is the baseline, not a reconnect.
	} else {
		c.reconnects.Add(1)
	}
	c.Session = w.Session
	c.Server = w.Server
	return nil
}

// Close sends an orderly bye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	c.deadlineLocked()
	_ = ship.WriteFrame(c.conn, ship.VBye, nil)
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Retries reports how many retry attempts this client has made across
// all requests (reconnects and request retries).
func (c *Client) Retries() int64 { return c.retries.Load() }

// deadlineLocked arms the connection deadline for one attempt.
func (c *Client) deadlineLocked() {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
}

// dropLocked closes and forgets the connection. Called on every
// transport or framing failure: once a response read has failed the
// stream position is unknown, so the connection must never be reused —
// the half-read-state fix.
func (c *Client) dropLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.setLiveConn(nil)
	}
}

// backoffLocked computes the jittered exponential delay for a retry.
// hint (from an overloaded server's RetryAfterMs) overrides the base.
// The returned delay never exceeds RetryMax: the jitter draws within
// [d/2, d] rather than adding on top of the capped value, so even the
// first retry respects the configured cap.
func (c *Client) backoffLocked(attempt int, hint time.Duration) time.Duration {
	d := c.opts.RetryBase << uint(attempt)
	if d <= 0 || d > c.opts.RetryMax {
		d = c.opts.RetryMax // includes shift overflow on deep retries
	}
	if hint > 0 {
		c.honored.Add(1)
		d = hint
		if d > c.opts.RetryMax {
			d = c.opts.RetryMax
		}
	}
	// Jitter to [d/2, d] so a fleet of retrying clients does not
	// stampede, without ever overshooting the cap.
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// NextIdemKey mints a fresh idempotency key: unique per client and
// request, stable across the retries of one request.
func (c *Client) NextIdemKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keySeq++
	return fmt.Sprintf("%s-%d", c.keyBase, c.keySeq)
}

// Retryable reports whether err may be retried for a request with the
// given idempotency. Refusals (overloaded, shutdown) and server-side
// protocol errors (the request frame arrived corrupt and was never
// decoded, let alone executed) always retry; ambiguous failures
// (transport errors, corrupt response frames) retry only when
// re-execution is safe.
func Retryable(err error, idempotent bool) bool {
	var ce *connectError
	if errors.As(err, &ce) {
		// The request was never sent: always safe to retry.
		return true
	}
	var we *ship.WireError
	if errors.As(err, &we) {
		// Conflict aborts applied nothing server-side: re-executing against
		// a fresh snapshot is safe regardless of idempotency. A replica-down
		// refusal likewise applied nothing anywhere — the coordinator
		// refused the write before touching any shard.
		return we.Code == ship.CodeOverloaded || we.Code == ship.CodeShutdown ||
			we.Code == ship.CodeProto || we.Code == ship.CodeConflict ||
			we.Code == ship.CodeReplicaDown
	}
	return idempotent
}

// Class partitions request errors for exit codes and logs.
type Class int

const (
	// ClassTransport is a connection-level failure: dial, reset,
	// timeout, connection loss mid-request.
	ClassTransport Class = iota
	// ClassProtocol is a framing failure: the byte stream did not parse
	// as the TYWR01 protocol in either direction.
	ClassProtocol
	// ClassServer is a structured WireError answered by the server.
	ClassServer
)

// String names a class.
func (cl Class) String() string {
	switch cl {
	case ClassTransport:
		return "transport"
	case ClassProtocol:
		return "protocol"
	case ClassServer:
		return "server"
	default:
		return fmt.Sprintf("class(%d)", int(cl))
	}
}

// Classify sorts a request error into the taxonomy.
func Classify(err error) Class {
	var we *ship.WireError
	if errors.As(err, &we) {
		return ClassServer
	}
	if errors.Is(err, ship.ErrFrame) {
		return ClassProtocol
	}
	return ClassTransport
}

// do performs one request with retries: send one frame, read one frame,
// reconnecting and retrying per the taxonomy. idempotent marks requests
// safe to re-execute (reads, keyed submits/installs).
func (c *Client) do(v ship.Verb, body []byte, idempotent bool) (ship.Verb, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.aborted.Load() {
			return 0, nil, ErrAborted
		}
		c.attempts.Add(1)
		rv, rbody, err := c.attemptLocked(v, body)
		if err == nil {
			return rv, rbody, nil
		}
		if c.aborted.Load() {
			return 0, nil, ErrAborted
		}
		if attempt >= c.opts.Retries || !Retryable(err, idempotent) {
			return 0, nil, err
		}
		var hint time.Duration
		var we *ship.WireError
		if errors.As(err, &we) {
			hint = time.Duration(we.RetryAfterMs) * time.Millisecond
			if we.Code == ship.CodeShutdown || we.Code == ship.CodeProto {
				// Shutdown: this session is done for; reconnect (the
				// listener may already be a fresh incarnation over the
				// same store). Proto: the server drops a session after
				// a corrupt frame, so this connection is dead too.
				c.dropLocked()
			}
		}
		c.retries.Add(1)
		delay := c.backoffLocked(attempt, hint)
		c.mu.Unlock()
		time.Sleep(delay)
		c.mu.Lock()
	}
}

// connectError marks a dial or handshake failure: the request was never
// sent, so retrying it is safe for every verb (the distinction that
// keeps non-idempotent CALLs retryable across a server restart, where
// reconnects fail until the new incarnation listens).
type connectError struct{ err error }

func (e *connectError) Error() string { return e.err.Error() }
func (e *connectError) Unwrap() error { return e.err }

// attemptLocked is one try: connect if needed, one frame out, one frame
// back. Any transport or framing failure poisons the connection.
func (c *Client) attemptLocked(v ship.Verb, body []byte) (ship.Verb, []byte, error) {
	if c.conn == nil {
		if err := c.connectLocked(); err != nil {
			return 0, nil, &connectError{err}
		}
	}
	c.deadlineLocked()
	if err := ship.WriteFrame(c.conn, v, body); err != nil {
		c.dropLocked()
		return 0, nil, err
	}
	rv, rbody, err := ship.ReadFrame(c.conn, 0)
	if err != nil {
		// Transport error or corrupt frame: the stream position is
		// unknown either way, so the connection is unusable.
		c.dropLocked()
		return 0, nil, err
	}
	if rv == ship.VError {
		we, derr := ship.DecodeWireError(rbody)
		if derr != nil {
			c.dropLocked()
			return 0, nil, derr
		}
		return 0, nil, we
	}
	return rv, rbody, nil
}

// result decodes a VResult response.
func result(v ship.Verb, body []byte) (*ship.Result, error) {
	if v != ship.VResult {
		return nil, fmt.Errorf("client: expected result, got %s", v)
	}
	return ship.DecodeResult(body)
}

// Ping probes server liveness.
func (c *Client) Ping() error {
	v, _, err := c.do(ship.VPing, nil, true)
	if err != nil {
		return err
	}
	if v != ship.VPong {
		return fmt.Errorf("client: expected pong, got %s", v)
	}
	return nil
}

// Stats fetches the server counters.
func (c *Client) Stats() (*ship.ServerStats, error) {
	v, body, err := c.do(ship.VStats, nil, true)
	if err != nil {
		return nil, err
	}
	if v != ship.VStatsOK {
		return nil, fmt.Errorf("client: expected stats, got %s", v)
	}
	var st ship.ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health probes the server's mode: ok, degraded or draining.
func (c *Client) Health() (*ship.Health, error) {
	v, body, err := c.do(ship.VHealth, nil, true)
	if err != nil {
		return nil, err
	}
	if v != ship.VHealthOK {
		return nil, fmt.Errorf("client: expected health, got %s", v)
	}
	var h ship.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Install compiles and installs a TL module server-side. With retries
// enabled the request carries an idempotency key, so a retried install
// is applied exactly once.
func (c *Client) Install(source string) (*ship.Result, error) {
	req := &ship.Install{Source: source}
	if c.opts.Retries > 0 {
		req.IdemKey = c.NextIdemKey()
	}
	return c.InstallReq(req)
}

// InstallReq ships a pre-built install request, honouring a
// caller-chosen idempotency key.
func (c *Client) InstallReq(req *ship.Install) (*ship.Result, error) {
	v, body, err := c.do(ship.VInstall, req.Encode(), req.IdemKey != "")
	if err != nil {
		return nil, err
	}
	return result(v, body)
}

// Call applies an exported function of an installed module; an empty
// module name calls a closure previously saved by Submit. A call may
// execute arbitrary side-effecting code and carries no idempotency key,
// so transport failures mid-call are NOT retried — only refusals are.
func (c *Client) Call(module, fn string, args ...ship.WVal) (*ship.Result, error) {
	req := &ship.Call{Module: module, Fn: fn, Args: args}
	body, err := req.Encode()
	if err != nil {
		return nil, err
	}
	v, rbody, err := c.do(ship.VCall, body, false)
	if err != nil {
		return nil, err
	}
	return result(v, rbody)
}

// Optimize reflectively optimizes an installed function server-side.
// Optimizing twice converges to the same code, so it retries freely.
func (c *Client) Optimize(module, fn string) (*ship.Result, error) {
	v, body, err := c.do(ship.VOptimize, (&ship.Optimize{Module: module, Fn: fn}).Encode(), true)
	if err != nil {
		return nil, err
	}
	return result(v, body)
}

// Sync replays a batch of deferred keyed writes to a replica (the
// repair loop's verb). Every item carries its original idempotency key,
// so the whole request is idempotent by construction: a retried batch
// re-applies nothing, the server's dedup table answers for the items it
// already executed.
func (c *Client) Sync(items []ship.ShipItem) (*ship.SyncOK, error) {
	v, body, err := c.do(ship.VSync, (&ship.Sync{Items: items}).Encode(), true)
	if err != nil {
		return nil, err
	}
	if v != ship.VSyncOK {
		return nil, fmt.Errorf("client: expected sync-ok, got %s", v)
	}
	return ship.DecodeSyncOK(body)
}

// Digest fetches the server's per-root anti-entropy digests, optionally
// restricted to roots with the given name prefix. A pure read: retries
// freely.
func (c *Client) Digest(prefix string) (*ship.DigestOK, error) {
	v, body, err := c.do(ship.VDigest, (&ship.Digest{Prefix: prefix}).Encode(), true)
	if err != nil {
		return nil, err
	}
	if v != ship.VDigestOK {
		return nil, fmt.Errorf("client: expected digest-ok, got %s", v)
	}
	return ship.DecodeDigestOK(body)
}

// Submit ships a pre-encoded PTML request. With retries enabled and no
// caller-chosen key, a fresh idempotency key is attached so the server
// deduplicates retried executions (and in particular applies a save=
// exactly once).
func (c *Client) Submit(req *ship.Submit) (*ship.Result, error) {
	r := *req
	if r.IdemKey == "" && c.opts.Retries > 0 {
		r.IdemKey = c.NextIdemKey()
	}
	body, err := r.Encode()
	if err != nil {
		return nil, err
	}
	v, rbody, err := c.do(ship.VSubmit, body, r.IdemKey != "")
	if err != nil {
		return nil, err
	}
	return result(v, rbody)
}

// SubmitTML parses a TML application in concrete s-expression syntax,
// encodes it as PTML and submits it. Free variables named e and k
// become the server's exception and result continuations; every other
// free variable must appear in binds. Example:
//
//	res, err := c.SubmitTML("answer", "(+ 40 2 e cont(n) (k n))", nil, false, "")
func (c *Client) SubmitTML(name, src string, binds []ship.WBind, optimize bool, save string) (*ship.Result, error) {
	return c.SubmitTMLMerge(name, src, binds, optimize, save, ship.MergeAuto)
}

// SubmitTMLMerge is SubmitTML with an explicit scatter merge policy for
// cluster coordinators (see ship.Merge). A plain tycd server never sees
// the field, so against one this is exactly SubmitTML.
func (c *Client) SubmitTMLMerge(name, src string, binds []ship.WBind, optimize bool, save string, merge ship.Merge) (*ship.Result, error) {
	return c.SubmitTMLPlan(name, src, binds, optimize, save, merge, false)
}

// SubmitTMLPlan is SubmitTMLMerge plus the EXPLAIN flag: when explain
// is set, the server records the physical plan the query executed —
// chosen algorithms, estimated vs. actual cardinalities — and attaches
// its rendering to Result.Explain.
func (c *Client) SubmitTMLPlan(name, src string, binds []ship.WBind, optimize bool, save string, merge ship.Merge, explain bool) (*ship.Result, error) {
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	data, err := ptml.EncodeApp(app)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return c.Submit(&ship.Submit{
		Name:     name,
		PTML:     data,
		Binds:    binds,
		Optimize: optimize,
		Save:     save,
		Merge:    merge,
		Explain:  explain,
	})
}
