package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tycoon/internal/ship"
)

// ErrWatcherClosed is returned by Next after Close.
var ErrWatcherClosed = errors.New("client: watcher closed")

// Watcher is one WATCH subscription: a dedicated connection (the
// protocol has no request ids, so a watching session cannot also issue
// requests) delivering committed root changes in CSN order.
//
// A Watcher is resilient the way Client is: when Options.Retries is
// set, a lost connection is re-dialled and the subscription resumed
// from the last fully delivered commit, so across any number of
// reconnects Next yields every matching committed change exactly once,
// in CSN order — and never a torn multi-root commit, because a batch
// is buffered internally until its final notification arrived and the
// resume point only advances past completed batches.
//
// A Watcher is not safe for concurrent use.
type Watcher struct {
	addr     string
	opts     Options
	patterns []string
	// connMu guards the conn pointer against Close racing the owner
	// goroutine's reconnects; the stream itself is read by one goroutine.
	connMu sync.Mutex
	conn   net.Conn
	rng    *rand.Rand
	// pos is the resume point: the CSN of the last fully delivered
	// commit (or the subscription start). pending holds the buffered
	// remainder of the batch Next is currently handing out.
	pos     uint64
	pending []ship.Notify
	started bool // first subscribe happened; later connects count as resumes
	closed  atomic.Bool

	resumes atomic.Int64 // successful re-subscriptions after connection loss
}

// NewWatcher subscribes to committed root changes matching patterns
// ('*' wildcards; see ship.MatchRoot). since resumes from a previous
// position (0 subscribes from now). Dial-time failures honour
// opts.Retries like Dial does.
func NewWatcher(addr string, patterns []string, since uint64, opts ...Options) (*Watcher, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Client == "" {
		o.Client = "tycoon/internal/client:watch"
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	seed := o.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	w := &Watcher{addr: addr, opts: o, patterns: patterns, pos: since, rng: rand.New(rand.NewSource(seed))}
	if err := w.reconnect(); err != nil {
		return nil, err
	}
	return w, nil
}

// Watch opens a Watcher against the client's server with the client's
// options, on its own connection (the client's session is unaffected).
func (c *Client) Watch(patterns []string, since uint64) (*Watcher, error) {
	c.mu.Lock()
	addr, opts := c.addr, c.opts
	c.mu.Unlock()
	return NewWatcher(addr, patterns, since, opts)
}

// Pos reports the resume point: the CSN up to which every matching
// commit has been fully delivered by Next.
func (w *Watcher) Pos() uint64 { return w.pos }

// Resumes reports how many times the watcher re-subscribed after
// losing its connection.
func (w *Watcher) Resumes() int64 { return w.resumes.Load() }

// connect dials, handshakes and subscribes once, resuming from w.pos.
func (w *Watcher) connect() error {
	d := net.Dialer{Timeout: w.opts.Timeout}
	conn, err := d.Dial("tcp", w.addr)
	if err != nil {
		return err
	}
	if w.opts.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(w.opts.Timeout))
	}
	fail := func(err error) error {
		conn.Close()
		return err
	}
	if err := ship.WriteFrame(conn, ship.VHello, (&ship.Hello{
		Version: ship.ProtoVersion, Client: w.opts.Client,
	}).Encode()); err != nil {
		return fail(err)
	}
	if verb, body, err := ship.ReadFrame(conn, 0); err != nil {
		return fail(err)
	} else if werr := asWireError(verb, body); werr != nil {
		return fail(werr)
	} else if verb != ship.VWelcome {
		return fail(fmt.Errorf("client: expected welcome, got %s", verb))
	}
	if err := ship.WriteFrame(conn, ship.VWatch, (&ship.Watch{
		Patterns: w.patterns, SinceCSN: w.pos,
	}).Encode()); err != nil {
		return fail(err)
	}
	verb, body, err := ship.ReadFrame(conn, 0)
	if err != nil {
		return fail(err)
	}
	if werr := asWireError(verb, body); werr != nil {
		return fail(werr)
	}
	if verb != ship.VWatchOK {
		return fail(fmt.Errorf("client: expected watch-ok, got %s", verb))
	}
	ok, err := ship.DecodeWatchOK(body)
	if err != nil {
		return fail(err)
	}
	if w.pos == 0 {
		w.pos = ok.CSN
	}
	// The stream blocks for as long as nothing changes: no read deadline.
	conn.SetDeadline(time.Time{})
	w.setConn(conn)
	if w.started {
		w.resumes.Add(1)
	}
	w.started = true
	return nil
}

// asWireError decodes a VError frame, or nil for any other verb.
func asWireError(verb ship.Verb, body []byte) error {
	if verb != ship.VError {
		return nil
	}
	we, derr := ship.DecodeWireError(body)
	if derr != nil {
		return derr
	}
	return we
}

// reconnect (re-)establishes the subscription with retries and backoff,
// the same schedule the request client uses. Refusals (overloaded,
// draining server, dial failures across a restart) retry; a definitive
// answer — bad patterns, a lost resume horizon — does not.
func (w *Watcher) reconnect() error {
	var err error
	for attempt := 0; ; attempt++ {
		if w.closed.Load() {
			return ErrWatcherClosed
		}
		if err = w.connect(); err == nil {
			if w.closed.Load() {
				// Close raced the dial: the fresh connection must not leak.
				w.Close()
				return ErrWatcherClosed
			}
			return nil
		}
		var we *ship.WireError
		definitive := errors.As(err, &we) &&
			we.Code != ship.CodeOverloaded && we.Code != ship.CodeShutdown && we.Code != ship.CodeProto
		if attempt >= w.opts.Retries || definitive {
			return err
		}
		var hint time.Duration
		if we != nil {
			hint = time.Duration(we.RetryAfterMs) * time.Millisecond
		}
		time.Sleep(w.backoff(attempt, hint))
	}
}

// backoff mirrors Client.backoffLocked: jittered exponential in
// [d/2, d], capped at RetryMax, with a server hint overriding the base.
func (w *Watcher) backoff(attempt int, hint time.Duration) time.Duration {
	d := w.opts.RetryBase << uint(attempt)
	if d <= 0 || d > w.opts.RetryMax {
		d = w.opts.RetryMax
	}
	if hint > 0 {
		d = hint
		if d > w.opts.RetryMax {
			d = w.opts.RetryMax
		}
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d/2)+1))
}

// Next blocks for the next committed root change. It buffers whole
// commits internally: the notifications of a multi-root commit are
// returned one by one (More marks all but the last), but the wire batch
// was complete before the first was released and the resume point moves
// only afterwards — so a connection lost mid-batch replays the batch on
// resume without Next ever delivering half of it, or any of it twice.
func (w *Watcher) Next() (ship.Notify, error) {
	for {
		if w.closed.Load() {
			return ship.Notify{}, ErrWatcherClosed
		}
		if len(w.pending) > 0 {
			n := w.pending[0]
			w.pending = w.pending[1:]
			if len(w.pending) == 0 {
				w.pos = n.CSN // batch fully delivered: commit the resume point
			}
			return n, nil
		}
		batch, err := w.readBatch()
		if err == nil {
			w.pending = batch
			continue
		}
		if w.closed.Load() {
			return ship.Notify{}, ErrWatcherClosed
		}
		if w.conn != nil {
			w.conn.Close()
			w.setConn(nil)
		}
		if w.opts.Retries <= 0 {
			return ship.Notify{}, err
		}
		var we *ship.WireError
		if errors.As(err, &we) && we.Code != ship.CodeOverloaded &&
			we.Code != ship.CodeShutdown && we.Code != ship.CodeProto {
			return ship.Notify{}, err // definitive server answer
		}
		if rerr := w.reconnect(); rerr != nil {
			return ship.Notify{}, rerr
		}
	}
}

// readBatch reads one commit's notifications: frames until More is
// false. A failure anywhere discards the partial batch — the resume
// point has not moved, so the reconnect replays it whole.
func (w *Watcher) readBatch() ([]ship.Notify, error) {
	if w.conn == nil {
		if err := w.reconnect(); err != nil {
			return nil, err
		}
	}
	var batch []ship.Notify
	for {
		verb, body, err := ship.ReadFrame(w.conn, 0)
		if err != nil {
			return nil, err
		}
		if werr := asWireError(verb, body); werr != nil {
			return nil, werr
		}
		if verb != ship.VNotify {
			return nil, fmt.Errorf("client: expected notify, got %s", verb)
		}
		n, err := ship.DecodeNotify(body)
		if err != nil {
			return nil, err
		}
		batch = append(batch, *n)
		if !n.More {
			return batch, nil
		}
	}
}

// setConn publishes the connection pointer Close closes.
func (w *Watcher) setConn(c net.Conn) {
	w.connMu.Lock()
	w.conn = c
	w.connMu.Unlock()
}

// Close ends the subscription. Safe to call concurrently with a
// blocked Next, which then returns ErrWatcherClosed.
func (w *Watcher) Close() error {
	w.closed.Store(true)
	w.connMu.Lock()
	c := w.conn
	w.connMu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
