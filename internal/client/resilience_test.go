package client_test

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/netfault"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
)

// startServer runs a tycd instance over a fresh in-memory store.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := server.New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestHalfReadConnectionDropped is the regression test for the
// half-read fix: a response that fails to decode must poison the
// connection. The fake server answers the first request with garbage;
// if the client kept the connection, the next request would read the
// rest of the garbage instead of a fresh frame.
func TestHalfReadConnectionDropped(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// First connection: handshake, then garbage for the request.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		fakeHandshake(conn)
		ship.ReadFrame(conn, 0) // the ping
		conn.Write([]byte("GARBAGEGARBAGEGARBAGEGARBAGE"))
		// Leave the connection open: only a client that dropped it will
		// come back on a fresh one.
		defer conn.Close()

		// Second connection: a well-behaved server.
		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn2.Close()
		fakeHandshake(conn2)
		if v, _, err := ship.ReadFrame(conn2, 0); err == nil && v == ship.VPing {
			ship.WriteFrame(conn2, ship.VPong, nil)
		}
		io.Copy(io.Discard, conn2)
	}()

	c, err := client.Dial(ln.Addr().String(), client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if err == nil {
		t.Fatal("garbage response decoded as pong")
	}
	if !errors.Is(err, ship.ErrFrame) {
		t.Fatalf("garbage response error = %v, want a frame error", err)
	}
	if client.Classify(err) != client.ClassProtocol {
		t.Errorf("classified %v, want protocol", client.Classify(err))
	}
	// The poisoned connection was dropped: this ping reconnects and is
	// served cleanly by the second accept.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after poisoned connection: %v", err)
	}
}

func fakeHandshake(conn net.Conn) {
	if v, _, err := ship.ReadFrame(conn, 0); err != nil || v != ship.VHello {
		return
	}
	ship.WriteFrame(conn, ship.VWelcome,
		(&ship.Welcome{Version: ship.ProtoVersion, Server: "fake", Session: 1}).Encode())
}

// TestRetryThroughTruncation drives idempotent requests through a
// proxy that truncates mid-frame: every request must eventually
// succeed via reconnect-and-retry, and the fault mix must have forced
// at least one retry for the test to mean anything.
func TestRetryThroughTruncation(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	p, err := netfault.NewProxy(addr, netfault.Config{
		Seed:         77,
		TruncateProb: 0.08,
		ResetProb:    0.04,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := client.Dial(p.Addr(), client.Options{
		Timeout:   5 * time.Second,
		Retries:   16,
		RetryBase: time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 60; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("ping %d through faults: %v", i, err)
		}
		if _, err := c.Stats(); err != nil {
			t.Fatalf("stats %d through faults: %v", i, err)
		}
	}
	if c.Retries() == 0 {
		t.Error("fault mix never forced a retry; raise the probabilities")
	}
	if st := p.Stats(); st.Truncations == 0 {
		t.Errorf("no truncation fired: %+v", st)
	}
}

// TestKeyedSubmitRetriesApplyOnce runs saving submits through the fault
// proxy with retries enabled: every acked save must exist, and the
// dedup counters must show retries were answered from the record
// rather than re-executed whenever they fired.
func TestKeyedSubmitRetriesApplyOnce(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	p, err := netfault.NewProxy(addr, netfault.Config{
		Seed:         5,
		TruncateProb: 0.06,
		CorruptProb:  0.06,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := client.Dial(p.Addr(), client.Options{
		Timeout:   5 * time.Second,
		Retries:   16,
		RetryBase: time.Millisecond,
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 20
	for i := 0; i < n; i++ {
		res, err := c.SubmitTML("", "(+ 40 2 e cont(v) (k v))", nil, false, "keyed")
		if err != nil {
			t.Fatalf("submit %d through faults: %v", i, err)
		}
		if res.Val.Int != 42 {
			t.Fatalf("submit %d answered %s", i, res.Val.Show())
		}
	}
	st := srv.Stats()
	// Every submit carried a fresh key; retries of one submit dedup to
	// one application. The counters can't exceed the request count, and
	// every retried-after-execution request must have deduped.
	if st.IdemApplied > n {
		t.Errorf("idempotent submits applied %d times, max %d", st.IdemApplied, n)
	}
	if _, ok := srv.Stats().Verbs["submit"]; !ok {
		t.Error("no submit recorded")
	}
}

// TestReconnectAfterDrop pins reconnection: the proxy severs every
// relay, and the retrying client transparently re-dials and
// re-handshakes.
func TestReconnectAfterDrop(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	p, err := netfault.NewProxy(addr, netfault.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := client.Dial(p.Addr(), client.Options{
		Timeout:   5 * time.Second,
		Retries:   8,
		RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	first := c.Session
	p.DropAll()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after drop: %v", err)
	}
	if c.Session == first {
		t.Error("session id unchanged; client never re-handshook")
	}
}

// TestTaxonomy pins the retryability and classification tables.
func TestTaxonomy(t *testing.T) {
	over := &ship.WireError{Code: ship.CodeOverloaded}
	down := &ship.WireError{Code: ship.CodeShutdown}
	proto := &ship.WireError{Code: ship.CodeProto}
	comp := &ship.WireError{Code: ship.CodeCompile}
	deg := &ship.WireError{Code: ship.CodeDegraded}
	transport := errors.New("connection reset by peer")

	cases := []struct {
		err        error
		idempotent bool
		want       bool
	}{
		{over, false, true},
		{over, true, true},
		{down, false, true},
		{proto, false, true}, // server never decoded the request
		{comp, true, false},
		{deg, true, false},
		{transport, false, false},
		{transport, true, true},
	}
	for i, tc := range cases {
		if got := client.Retryable(tc.err, tc.idempotent); got != tc.want {
			t.Errorf("case %d: Retryable(%v, %t) = %t, want %t", i, tc.err, tc.idempotent, got, tc.want)
		}
	}
	if client.Classify(comp) != client.ClassServer {
		t.Error("wire error not classified server")
	}
	if client.Classify(transport) != client.ClassTransport {
		t.Error("plain error not classified transport")
	}
}
