package ptml

import (
	"strings"
	"testing"
	"testing/quick"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

var popts = tml.ParseOpts{IsPrim: prim.IsPrim}

func roundTrip(t *testing.T, src string) (tml.Node, tml.Node, []*tml.Var) {
	t.Helper()
	n, err := tml.Parse(src, popts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	data, err := Encode(n)
	if err != nil {
		t.Fatalf("Encode(%q): %v", src, err)
	}
	back, free, err := Decode(data, nil)
	if err != nil {
		t.Fatalf("Decode(%q): %v", src, err)
	}
	return n, back, free
}

func TestRoundTripBasic(t *testing.T) {
	srcs := []string{
		"13",
		"'a'",
		"true",
		"ok",
		"2.5",
		`"hello"`,
		"<oid 0x005b4780>",
		"(+ 1 2 ce cc)",
		"(proc(x !ce !cc) (+ x 1 ce cc) 5 e k)",
		"(== x 1 2 cont()(k 1) cont()(k 2) cont()(k 0))",
		`(Y proc(!c0 !for !c)
		   (c cont() (for 1)
		      cont(i) (> i 10 cont()(k ok) cont()(for i))))`,
		// Sibling abstractions exercise the scoped binder indexing.
		"(f cont(a) (k a) cont(b) (k b) e k2)",
	}
	for _, src := range srcs {
		n, back, _ := roundTrip(t, src)
		if !tml.AlphaEqual(n, back) {
			t.Errorf("round trip mismatch for %q:\n%s\nvs\n%s", src, tml.Print(n), tml.Print(back))
		}
	}
}

func TestRoundTripPreservesContFlags(t *testing.T) {
	_, back, _ := roundTrip(t, "(proc(x !ce !cc) (cc x) 5 e k)")
	abs := back.(*tml.App).Fn.(*tml.Abs)
	if abs.Params[0].Cont || !abs.Params[1].Cont || !abs.Params[2].Cont {
		t.Errorf("cont flags lost: %v", abs.Params)
	}
}

func TestFreeVariablesDeclared(t *testing.T) {
	n, _, free := roundTrip(t, "(+ x y ce cc)")
	origFree := tml.FreeVars(n)
	if len(free) != len(origFree) {
		t.Fatalf("decoded %d free vars, want %d", len(free), len(origFree))
	}
	for i := range free {
		if free[i].Name != origFree[i].Name {
			t.Errorf("free var %d: %s vs %s", i, free[i], origFree[i])
		}
		if free[i].Cont != origFree[i].Cont {
			t.Errorf("free var %d cont flag mismatch", i)
		}
	}
}

func TestDecodedTreeIsWellFormed(t *testing.T) {
	src := `(Y proc(!c0 !loop !c)
	          (c cont() (loop 1 0)
	             cont(i acc)
	               (> i 3
	                  cont() (k acc)
	                  cont() (+ acc i e cont(a2)
	                           (+ i 1 e cont(i2) (loop i2 a2))))))`
	_, back, free := roundTrip(t, src)
	err := tml.Check(back, tml.CheckOpts{Signatures: prim.Signatures, AllowFree: free})
	if err != nil {
		t.Errorf("decoded tree ill-formed: %v", err)
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// The encoding should be substantially smaller than the printed form
	// (the paper stresses a *compact* persistent representation).
	src := `(Y proc(!c0 !loop !c)
	          (c cont() (loop 1 0)
	             cont(i acc)
	               (> i 3
	                  cont() (k acc)
	                  cont() (+ acc i e cont(a2)
	                           (+ i 1 e cont(i2) (loop i2 a2))))))`
	n := tml.MustParse(src, popts)
	data, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	printed := tml.Print(n)
	if len(data) >= len(printed) {
		t.Errorf("PTML %d bytes, printed form %d bytes; expected compaction", len(data), len(printed))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{'X'},
		{'P', 99},
		{'P', 1},                 // truncated tables
		{'P', 1, 0, 0, 42},       // bogus tag
		{'P', 1, 0, 1, 0, 1, 10}, // free var with bad string index; then truncated
	}
	for _, data := range cases {
		if _, _, err := Decode(data, nil); err == nil {
			t.Errorf("Decode(%v) succeeded", data)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data, _ := Encode(tml.Int(1))
	data = append(data, 0xFF)
	if _, _, err := Decode(data, nil); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestEncodeRejectsOutOfScopeVar(t *testing.T) {
	// A tree where a variable is used outside the subtree being encoded
	// is fine (it becomes free); but a variable used before its binder in
	// an ill-scoped hand-built tree must be caught. Build: (cont(x)(k x))
	// applied to x itself — x is used at a position where it is also
	// free, which FreeVars handles; the encoder must not panic.
	g := tml.NewVarGen()
	x := g.Fresh("x")
	k := g.FreshCont("k")
	abs := &tml.Abs{Params: []*tml.Var{x}, Body: tml.NewApp(k, x)}
	app := tml.NewApp(abs, x) // outer x use is out of scope
	if _, err := Encode(app); err == nil {
		t.Log("ill-scoped tree encoded; FreeVars treated outer x as bound")
	}
}

func TestVarNamesAcrossDecode(t *testing.T) {
	// Internal binders are α-converted afresh on decode (the same blob
	// may be inlined several times into one tree); only the base name is
	// kept. Free variables preserve their exact printed names because
	// they key the closure record's binding table.
	src := "(cont(x_7) (k_9 x_7) 1)"
	n, back, free := roundTrip(t, src)
	_ = n
	abs := back.(*tml.App).Fn.(*tml.Abs)
	if abs.Params[0].Name != "x" {
		t.Errorf("binder base name = %q, want x", abs.Params[0].Name)
	}
	if len(free) != 1 || free[0].String() != "k_9" {
		t.Errorf("free vars = %v, want [k_9]", free)
	}
	// Decoding the same blob twice never produces colliding binder names.
	data, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	gen := tml.NewVarGen()
	a1, _, err := Decode(data, gen)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Decode(data, gen)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range append(tml.Binders(a1), tml.Binders(a2)...) {
		if names[v.String()] {
			t.Errorf("binder name %s collides across decodes", v)
		}
		names[v.String()] = true
	}
}

func TestQuickRoundTrip(t *testing.T) {
	// Random arithmetic CPS chains round-trip α-equivalently.
	gen := func(seed int64, depth int) tml.Node {
		g := tml.NewVarGen()
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		var build func(d int, avail []*tml.Var) *tml.App
		rnd := seed
		next := func(n int64) int64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			r := rnd >> 33
			if r < 0 {
				r = -r
			}
			return r % n
		}
		build = func(d int, avail []*tml.Var) *tml.App {
			operand := func() tml.Value {
				if len(avail) > 0 && next(2) == 0 {
					return avail[next(int64(len(avail)))]
				}
				return tml.Int(next(1000))
			}
			if d == 0 {
				return tml.NewApp(cc, operand())
			}
			ops := []string{"+", "-", "*"}
			tv := g.Fresh("t")
			rest := build(d-1, append(avail, tv))
			return tml.NewApp(tml.NewPrim(ops[next(3)]), operand(), operand(), ce,
				&tml.Abs{Params: []*tml.Var{tv}, Body: rest})
		}
		return build(depth, nil)
	}
	f := func(seed int64, depthRaw uint8) bool {
		n := gen(seed, int(depthRaw%10))
		data, err := Encode(n)
		if err != nil {
			return false
		}
		back, _, err := Decode(data, nil)
		if err != nil {
			return false
		}
		return tml.AlphaEqual(n, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTripThroughPrint(t *testing.T) {
	// PTML decode → print → parse must agree with the original.
	src := "(proc(x !ce !cc) (+ x 1 ce cc) 5 e k)"
	n, back, _ := roundTrip(t, src)
	reparsed := tml.MustParse(tml.Print(back), popts)
	if !tml.AlphaEqual(n, reparsed) {
		t.Errorf("print/parse after decode diverges:\n%s", tml.Print(reparsed))
	}
	if !strings.Contains(tml.Print(back), "proc(") {
		t.Error("proc head lost")
	}
}
