package ptml

import (
	"testing"

	"tycoon/internal/tml"
)

// parse builds a term for hash tests; free variables stay free.
func parse(t *testing.T, src string) *tml.App {
	t.Helper()
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: func(name string) bool {
		switch name {
		case "+", "*", "[]", "if":
			return true
		}
		return false
	}})
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return app
}

func TestHashAlphaInvariance(t *testing.T) {
	app := parse(t, "(cont(x) (+ x 1 e k) 41)")
	// Freshening α-converts every bound variable to new IDs.
	gen := tml.NewVarGenAt(1000)
	renamed := tml.NewApp(tml.Freshen(app.Fn, gen), app.Args...)
	h1, h2 := HashNode(app), HashNode(renamed)
	if h1 != h2 {
		t.Errorf("α-converted tree hashes differ: %s vs %s", h1.Short(), h2.Short())
	}
}

func TestHashDistinguishesStructure(t *testing.T) {
	a := parse(t, "(cont(x) (+ x 1 e k) 41)")
	b := parse(t, "(cont(x) (+ x 2 e k) 41)")
	c := parse(t, "(cont(x) (* x 1 e k) 41)")
	ha, hb, hc := HashNode(a), HashNode(b), HashNode(c)
	if ha == hb {
		t.Error("literal change not reflected in hash")
	}
	if ha == hc {
		t.Error("primitive change not reflected in hash")
	}
}

func TestHashFreeVariableNamesSignificant(t *testing.T) {
	// Free variables key the closure record's binding table, so their
	// printed names must enter the hash.
	a := parse(t, "(k_1 x_2)")
	b := parse(t, "(k_1 y_3)")
	if HashNode(a) == HashNode(b) {
		t.Error("free-variable rename not reflected in hash")
	}
}

func TestCanonicalHashStableAcrossDecodes(t *testing.T) {
	app := parse(t, "(cont(x) (cont(y) (+ x y e k) 1) 41)")
	data, err := Encode(app)
	if err != nil {
		t.Fatal(err)
	}
	h0, err := CanonicalHash(data)
	if err != nil {
		t.Fatal(err)
	}
	// Decoding twice yields differently α-converted trees; the canonical
	// hash must agree, and must agree with the hash of the original.
	h1, err := CanonicalHash(data)
	if err != nil {
		t.Fatal(err)
	}
	if h0 != h1 {
		t.Errorf("two decodes hash differently: %s vs %s", h0.Short(), h1.Short())
	}
	if want := HashNode(app); h0 != want {
		t.Errorf("decoded hash %s != source hash %s", h0.Short(), want.Short())
	}
	// Re-encoding a decode must also be stable.
	n, _, err := Decode(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := CanonicalHash(data2)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h0 {
		t.Errorf("re-encoded blob hashes differently: %s vs %s", h2.Short(), h0.Short())
	}
}

func TestHashRawDomainSeparation(t *testing.T) {
	if HashRaw(nil) == (Hash{}) {
		t.Error("raw hash of empty input is zero")
	}
	app := parse(t, "(k_1 1)")
	data, err := Encode(app)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := CanonicalHash(data)
	if err != nil {
		t.Fatal(err)
	}
	if ch == HashRaw(data) {
		t.Error("tree and raw domains collide")
	}
}
