// Package ptml implements PTML, the compact persistent encoding of TML
// trees (paper §4.1, Fig. 3). The compiler back end attaches a PTML blob
// to every exported function; at runtime the blob is mapped back into TML,
// re-optimized against the R-value bindings found in the closure record,
// and compiled again.
//
// The encoding is a byte stream of varint-tagged nodes over a string
// table. Bound variables are referenced by a dense index assigned in
// binder pre-order; free variables are declared in a header, in
// first-occurrence order, so that the decoder returns them alongside the
// tree — they are exactly the identifiers the closure record's
// [identifier, OID] binding table resolves (paper §4.1).
package ptml

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tycoon/internal/tml"
)

// Format: magic byte 'P', version byte, then
//
//	stringTable: uvarint count, count × (uvarint len + bytes)
//	freeVars:    uvarint count, count × (uvarint nameIdx + u8 contFlag)
//	tree:        node
//
// node tags:
//
//	0 var use      uvarint index (free vars first, then binders in pre-order)
//	1 unit
//	2 int          varint
//	3 char         u8
//	4 bool         u8
//	5 real         u64 bits
//	6 string       uvarint stringIdx
//	7 oid          uvarint
//	8 prim         uvarint stringIdx
//	9 abs          uvarint nparams, nparams × (uvarint nameIdx + u8 cont), body app
//	10 app         uvarint nargs, fn node, nargs × arg node
const (
	tagVar byte = iota
	tagUnit
	tagInt
	tagChar
	tagBool
	tagReal
	tagStr
	tagOid
	tagPrim
	tagAbs
	tagApp
)

const (
	magicByte     = 'P'
	formatVersion = 1
)

// ErrCorrupt wraps all decoding failures.
var ErrCorrupt = errors.New("ptml: corrupt encoding")

// Encode serialises a TML term. Free variables of the term are recorded
// in the header; the decoder reproduces them so callers can re-establish
// their bindings.
func Encode(n tml.Node) ([]byte, error) {
	e := &encoder{
		strIdx: make(map[string]uint64),
		varIdx: make(map[*tml.Var]uint64),
	}
	free := tml.FreeVars(n)
	for _, v := range free {
		e.varIdx[v] = uint64(len(e.varIdx))
	}
	e.nfree = len(free)
	// Two-phase: first walk assigns string-table and binder indices and
	// serialises the tree into e.tree; then the header is emitted.
	for _, v := range free {
		e.internString(printedName(v))
	}
	if err := e.node(n); err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.WriteByte(magicByte)
	out.WriteByte(formatVersion)
	writeUvarint(&out, uint64(len(e.strs)))
	for _, s := range e.strs {
		writeUvarint(&out, uint64(len(s)))
		out.WriteString(s)
	}
	writeUvarint(&out, uint64(len(free)))
	for _, v := range free {
		writeUvarint(&out, e.strIdx[printedName(v)])
		if v.Cont {
			out.WriteByte(1)
		} else {
			out.WriteByte(0)
		}
	}
	out.Write(e.tree.Bytes())
	return out.Bytes(), nil
}

// EncodeApp is Encode restricted to applications, the shape of compiled
// procedure bodies.
func EncodeApp(app *tml.App) ([]byte, error) { return Encode(app) }

// printedName keeps distinct variables distinct across encode/decode: the
// unique α-conversion suffix becomes part of the persistent name, exactly
// like the paper's pretty-printed listings.
func printedName(v *tml.Var) string { return v.String() }

type encoder struct {
	strs   []string
	strIdx map[string]uint64
	varIdx map[*tml.Var]uint64
	nfree  int // free variables occupy indices [0, nfree)
	depth  int // binders currently in scope
	tree   bytes.Buffer
}

func (e *encoder) internString(s string) uint64 {
	if i, ok := e.strIdx[s]; ok {
		return i
	}
	i := uint64(len(e.strs))
	e.strs = append(e.strs, s)
	e.strIdx[s] = i
	return i
}

func (e *encoder) node(n tml.Node) error {
	switch n := n.(type) {
	case *tml.Lit:
		e.lit(n)
		return nil
	case *tml.Oid:
		e.tree.WriteByte(tagOid)
		writeUvarint(&e.tree, n.Ref)
		return nil
	case *tml.Var:
		idx, ok := e.varIdx[n]
		if !ok {
			return fmt.Errorf("ptml: variable %s used out of scope", n)
		}
		e.tree.WriteByte(tagVar)
		writeUvarint(&e.tree, idx)
		return nil
	case *tml.Prim:
		e.tree.WriteByte(tagPrim)
		writeUvarint(&e.tree, e.internString(n.Name))
		return nil
	case *tml.Abs:
		e.tree.WriteByte(tagAbs)
		writeUvarint(&e.tree, uint64(len(n.Params)))
		// Variable indices are scoped (the decoder pops binders when it
		// leaves an abstraction), so the index of a binder is its depth on
		// the current binder stack, after the free variables.
		for _, p := range n.Params {
			if _, dup := e.varIdx[p]; dup {
				return fmt.Errorf("ptml: variable %s bound twice (unique binding rule)", p)
			}
			e.varIdx[p] = uint64(e.nfree + e.depth)
			e.depth++
			writeUvarint(&e.tree, e.internString(printedName(p)))
			if p.Cont {
				e.tree.WriteByte(1)
			} else {
				e.tree.WriteByte(0)
			}
		}
		err := e.node(n.Body)
		for _, p := range n.Params {
			delete(e.varIdx, p)
			e.depth--
		}
		return err
	case *tml.App:
		e.tree.WriteByte(tagApp)
		writeUvarint(&e.tree, uint64(len(n.Args)))
		if err := e.node(n.Fn); err != nil {
			return err
		}
		for _, a := range n.Args {
			if err := e.node(a); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("ptml: cannot encode %T", n)
	}
}

func (e *encoder) lit(l *tml.Lit) {
	switch l.Kind {
	case tml.LitUnit:
		e.tree.WriteByte(tagUnit)
	case tml.LitInt:
		e.tree.WriteByte(tagInt)
		writeVarint(&e.tree, l.Int)
	case tml.LitChar:
		e.tree.WriteByte(tagChar)
		e.tree.WriteByte(l.Ch)
	case tml.LitBool:
		e.tree.WriteByte(tagBool)
		if l.Bool {
			e.tree.WriteByte(1)
		} else {
			e.tree.WriteByte(0)
		}
	case tml.LitReal:
		e.tree.WriteByte(tagReal)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(l.Real))
		e.tree.Write(b[:])
	case tml.LitStr:
		e.tree.WriteByte(tagStr)
		writeUvarint(&e.tree, e.internString(l.Str))
	}
}

// Decode reconstructs a TML term from its PTML encoding. It returns the
// tree together with the free variables declared in the header, in
// declaration order; gen supplies fresh IDs for the reconstructed binders
// (nil allocates a private generator).
func Decode(data []byte, gen *tml.VarGen) (tml.Node, []*tml.Var, error) {
	if gen == nil {
		gen = tml.NewVarGen()
	}
	if len(data) < 2 || data[0] != magicByte {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[1] != formatVersion {
		return nil, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, data[1], formatVersion)
	}
	d := &decoder{b: data, pos: 2, gen: gen}
	nstr := d.uvarint()
	// Every string-table entry takes at least its one-byte length, so a
	// declared count beyond the remaining input is certainly corrupt; the
	// cap keeps hostile headers from driving large allocations.
	if d.err == nil && nstr > uint64(len(d.b)-d.pos) {
		return nil, nil, fmt.Errorf("%w: absurd string count %d", ErrCorrupt, nstr)
	}
	for i := uint64(0); i < nstr && d.err == nil; i++ {
		n := d.uvarint()
		d.strs = append(d.strs, d.take(int(n)))
	}
	nfree := d.uvarint()
	// A free-variable entry is a string index plus a continuation flag:
	// at least two bytes.
	if d.err == nil && nfree > uint64(len(d.b)-d.pos)/2 {
		return nil, nil, fmt.Errorf("%w: absurd free-variable count %d", ErrCorrupt, nfree)
	}
	var free []*tml.Var
	for i := uint64(0); i < nfree && d.err == nil; i++ {
		name := d.string()
		cont := d.u8() != 0
		v := makeVar(name, cont, gen)
		free = append(free, v)
		d.vars = append(d.vars, v)
	}
	n := d.node()
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.pos != len(data) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-d.pos)
	}
	return n, free, nil
}

// DecodeApp is Decode restricted to applications.
func DecodeApp(data []byte, gen *tml.VarGen) (*tml.App, []*tml.Var, error) {
	n, free, err := Decode(data, gen)
	if err != nil {
		return nil, nil, err
	}
	app, ok := n.(*tml.App)
	if !ok {
		return nil, nil, fmt.Errorf("%w: root is %T, want application", ErrCorrupt, n)
	}
	return app, free, nil
}

// makeVar rebuilds a free variable from its persistent printed name,
// reusing the embedded α-conversion suffix as the variable ID when
// present — the printed name keys the closure record's binding table and
// must round-trip exactly.
func makeVar(printed string, cont bool, gen *tml.VarGen) *tml.Var {
	name, id := splitName(printed)
	if id == 0 {
		v := gen.Fresh(name)
		v.Cont = cont
		return v
	}
	gen.Skip(id)
	return &tml.Var{Name: name, ID: id, Cont: cont}
}

// splitName separates a printed name base_N into its base and ID.
func splitName(printed string) (string, int) {
	for i := len(printed) - 1; i > 0; i-- {
		if printed[i] == '_' {
			n := 0
			ok := i+1 < len(printed)
			for j := i + 1; j < len(printed); j++ {
				c := printed[j]
				if c < '0' || c > '9' {
					ok = false
					break
				}
				n = n*10 + int(c-'0')
			}
			if ok {
				return printed[:i], n
			}
			break
		}
	}
	return printed, 0
}

// baseName strips the α-conversion suffix.
func baseName(printed string) string {
	base, _ := splitName(printed)
	return base
}

type decoder struct {
	b     []byte
	pos   int
	err   error
	strs  []string
	vars  []*tml.Var
	gen   *tml.VarGen
	depth int
}

// maxDepth bounds the tree-recursion depth of the decoder: legitimate
// optimizer output nests a few hundred levels at most, while a crafted
// blob of nested applications could otherwise overflow the goroutine
// stack.
const maxDepth = 10000

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.pos)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.pos >= len(d.b) {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) take(n int) string {
	if d.err != nil || n < 0 || d.pos+n > len(d.b) {
		d.fail("truncated string")
		return ""
	}
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *decoder) string() string {
	i := d.uvarint()
	if d.err != nil {
		return ""
	}
	if i >= uint64(len(d.strs)) {
		d.fail("string index %d out of range", i)
		return ""
	}
	return d.strs[i]
}

func (d *decoder) node() tml.Node {
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxDepth {
		d.fail("tree deeper than %d", maxDepth)
		return nil
	}
	tag := d.u8()
	if d.err != nil {
		return nil
	}
	switch tag {
	case tagVar:
		i := d.uvarint()
		if d.err != nil {
			return nil
		}
		if i >= uint64(len(d.vars)) {
			d.fail("variable index %d out of range", i)
			return nil
		}
		return d.vars[i]
	case tagUnit:
		return tml.Unit()
	case tagInt:
		return tml.Int(d.varint())
	case tagChar:
		return tml.Char(d.u8())
	case tagBool:
		return tml.Bool(d.u8() != 0)
	case tagReal:
		if d.pos+8 > len(d.b) {
			d.fail("truncated real")
			return nil
		}
		bits := binary.LittleEndian.Uint64(d.b[d.pos:])
		d.pos += 8
		return tml.Real(math.Float64frombits(bits))
	case tagStr:
		return tml.Str(d.string())
	case tagOid:
		return tml.NewOid(d.uvarint())
	case tagPrim:
		return tml.NewPrim(d.string())
	case tagAbs:
		np := d.uvarint()
		if d.err != nil {
			return nil
		}
		// A parameter is a string index plus a continuation flag: at
		// least two bytes of remaining input each.
		if np > uint64(len(d.b)-d.pos)/2 {
			d.fail("absurd parameter count %d", np)
			return nil
		}
		params := make([]*tml.Var, 0, np)
		mark := len(d.vars)
		for i := uint64(0); i < np && d.err == nil; i++ {
			name := d.string()
			cont := d.u8() != 0
			// Internal binders are α-converted afresh: the same PTML blob
			// may be decoded several times into one tree (cross-barrier
			// inlining), and reused IDs would collide in printed output.
			// Free variables (below Decode) keep their persistent printed
			// names, which key the closure record's binding table.
			v := d.gen.Fresh(baseName(name))
			v.Cont = cont
			params = append(params, v)
			d.vars = append(d.vars, v)
		}
		bodyNode := d.node()
		// Binder indices are scoped: pop the params so sibling subtrees
		// cannot reference them (lexical scope ⇒ well-formedness).
		d.vars = d.vars[:mark]
		if d.err != nil {
			return nil
		}
		body, ok := bodyNode.(*tml.App)
		if !ok {
			d.fail("abstraction body is %T, want application", bodyNode)
			return nil
		}
		return &tml.Abs{Params: params, Body: body}
	case tagApp:
		na := d.uvarint()
		if d.err != nil {
			return nil
		}
		// Every argument takes at least its one-byte tag of remaining
		// input.
		if na > uint64(len(d.b)-d.pos) {
			d.fail("absurd argument count %d", na)
			return nil
		}
		fnNode := d.node()
		if d.err != nil {
			return nil
		}
		fn, ok := fnNode.(tml.Value)
		if !ok {
			d.fail("application head is %T, want value", fnNode)
			return nil
		}
		args := make([]tml.Value, 0, na)
		for i := uint64(0); i < na && d.err == nil; i++ {
			argNode := d.node()
			if d.err != nil {
				return nil
			}
			arg, ok := argNode.(tml.Value)
			if !ok {
				d.fail("argument is %T, want value", argNode)
				return nil
			}
			args = append(args, arg)
		}
		return &tml.App{Fn: fn, Args: args}
	default:
		d.fail("unknown node tag %d", tag)
		return nil
	}
}

func writeUvarint(w *bytes.Buffer, v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	w.Write(b[:n])
}

func writeVarint(w *bytes.Buffer, v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	w.Write(b[:n])
}
