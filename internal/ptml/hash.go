package ptml

// This file implements the canonical, α-invariant content hash of TML
// trees. The compilation pipeline's optimized-code cache is
// content-addressed by this hash (together with a binding and an options
// fingerprint), so that two closures whose persistent trees differ only
// in the IDs picked by α-conversion — for example the same PTML blob
// decoded twice, or the same source installed into two stores — share
// one cache entry. tycfsck prints the hash per closure so operators can
// compare persistent code across stores.
//
// Canonicalisation mirrors the PTML encoding itself: bound variables are
// identified by a dense index (free variables first, then binders in
// pre-order), so binder names and α-conversion suffixes never enter the
// hash. Free variables are identified by their full printed name — the
// name keys the closure record's R-value binding table and is therefore
// semantically significant.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"tycoon/internal/tml"
)

// Hash is a canonical content hash of a TML tree (or, via HashRaw, of an
// uninterpreted code blob).
type Hash [sha256.Size]byte

// String renders the hash in hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short renders the leading 12 hex digits, enough for human comparison.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

// IsZero reports whether the hash is unset.
func (h Hash) IsZero() bool { return h == Hash{} }

// Domain-separation tags: a tree hash can never collide with a raw-bytes
// hash of identical content.
const (
	domainTree byte = 'T'
	domainRaw  byte = 'R'
)

// HashNode computes the canonical α-invariant hash of a TML tree.
// α-equivalent trees (equal up to consistent renaming of bound
// variables) hash equal; trees differing in structure, literals, OIDs,
// primitives or free-variable names hash differently.
func HashNode(n tml.Node) Hash {
	hw := &hashWriter{h: sha256.New(), idx: make(map[*tml.Var]uint64)}
	hw.h.Write([]byte{domainTree})
	free := tml.FreeVars(n)
	hw.uvarint(uint64(len(free)))
	for _, v := range free {
		hw.idx[v] = uint64(len(hw.idx))
		hw.str(v.String())
		hw.bool(v.Cont)
	}
	hw.node(n)
	var out Hash
	hw.h.Sum(out[:0])
	return out
}

// CanonicalHash decodes a PTML blob and returns the canonical hash of
// its tree. Because decoding α-converts internal binders, the result is
// independent of the variable IDs the encoder happened to see.
func CanonicalHash(data []byte) (Hash, error) {
	n, _, err := Decode(data, nil)
	if err != nil {
		return Hash{}, err
	}
	return HashNode(n), nil
}

// HashRaw hashes uninterpreted bytes (for example a TAM code blob) in a
// domain separated from tree hashes; the pipeline cache keys closures
// optimized from decompiled code this way.
func HashRaw(data []byte) Hash {
	h := sha256.New()
	h.Write([]byte{domainRaw})
	h.Write(data)
	var out Hash
	h.Sum(out[:0])
	return out
}

type hashWriter struct {
	h   hash.Hash
	buf [binary.MaxVarintLen64]byte
	idx map[*tml.Var]uint64
	// depth counts binders in scope; a binder's index is nfree+depth at
	// the moment it is bound, exactly as in the PTML encoding.
	depth int
}

func (w *hashWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *hashWriter) varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.h.Write(w.buf[:n])
}

func (w *hashWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w *hashWriter) bool(b bool) {
	if b {
		w.h.Write([]byte{1})
	} else {
		w.h.Write([]byte{0})
	}
}

func (w *hashWriter) node(n tml.Node) {
	switch n := n.(type) {
	case *tml.Lit:
		w.lit(n)
	case *tml.Oid:
		w.h.Write([]byte{tagOid})
		w.uvarint(n.Ref)
	case *tml.Var:
		i, ok := w.idx[n]
		if !ok {
			// A variable outside every binder and absent from FreeVars
			// cannot occur in a tree FreeVars walked; defensively hash
			// its printed name.
			w.h.Write([]byte{tagVar})
			w.str(n.String())
			return
		}
		w.h.Write([]byte{tagVar})
		w.uvarint(i)
	case *tml.Prim:
		w.h.Write([]byte{tagPrim})
		w.str(n.Name)
	case *tml.Abs:
		w.h.Write([]byte{tagAbs})
		w.uvarint(uint64(len(n.Params)))
		for _, p := range n.Params {
			w.idx[p] = uint64(len(w.idx))
			w.depth++
			// Only the continuation flag of a binder is semantic; its
			// name and ID are α-convertible and excluded.
			w.bool(p.Cont)
		}
		w.node(n.Body)
		for _, p := range n.Params {
			delete(w.idx, p)
			w.depth--
		}
	case *tml.App:
		w.h.Write([]byte{tagApp})
		w.uvarint(uint64(len(n.Args)))
		w.node(n.Fn)
		for _, a := range n.Args {
			w.node(a)
		}
	}
}

func (w *hashWriter) lit(l *tml.Lit) {
	switch l.Kind {
	case tml.LitUnit:
		w.h.Write([]byte{tagUnit})
	case tml.LitInt:
		w.h.Write([]byte{tagInt})
		w.varint(l.Int)
	case tml.LitChar:
		w.h.Write([]byte{tagChar, l.Ch})
	case tml.LitBool:
		w.h.Write([]byte{tagBool})
		w.bool(l.Bool)
	case tml.LitReal:
		w.h.Write([]byte{tagReal})
		w.uvarint(math.Float64bits(l.Real))
	case tml.LitStr:
		w.h.Write([]byte{tagStr})
		w.str(l.Str)
	}
}
