package ptml

import (
	"testing"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// FuzzDecode drives the PTML decoder with arbitrary bytes: it must never
// panic, never allocate absurdly, and everything it accepts must be a
// well-formed TML term that round-trips through Encode.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings of representative terms so the fuzzer
	// starts from deep in the accepted language.
	seeds := []string{
		"(f x)",
		"proc(x !ce !cc) (+ x 1 ce cc)",
		"proc(x !ce !cc) (+ x y ce cont(t) (* t 2 ce cc))",
		"proc(n !ce !cc) (Y proc(!c0 !loop !c) (c cont() (loop 1 0) cont(i acc) (> i n cont() (cc acc) cont() (+ acc i ce cont(a2) (+ i 1 ce cont(i2) (loop i2 a2))))))",
		`(g "hello" 'c' 3.5 #t nil)`,
	}
	for _, src := range seeds {
		n, err := tml.Parse(src, tml.ParseOpts{IsPrim: prim.IsPrim})
		if err != nil {
			f.Fatalf("Parse(%q): %v", src, err)
		}
		data, err := Encode(n)
		if err != nil {
			f.Fatalf("Encode(%q): %v", src, err)
		}
		f.Add(data)
	}
	f.Add([]byte{magicByte, formatVersion})
	f.Add([]byte{magicByte, formatVersion, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		n, free, err := Decode(data, nil)
		if err != nil {
			return
		}
		// Accepted input must re-encode: the decoder reconstructs a real
		// term, not an inconsistent tree.
		if _, err := Encode(n); err != nil {
			t.Fatalf("decoded term does not re-encode: %v", err)
		}
		// The scoping rules the decoder enforces structurally must hold:
		// no variable outside the declared free list may occur free.
		for _, v := range tml.FreeVars(n) {
			found := false
			for _, fv := range free {
				if v == fv {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("decoded term has undeclared free variable %s", v)
			}
		}
	})
}
