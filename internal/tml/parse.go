package tml

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a parser for the s-expression concrete syntax used
// by the pretty printer, the tmlopt tool and the test suite.
//
// Grammar (paper Fig. 1, concretised):
//
//	app   := '(' value value* ')'
//	value := INT | REAL | CHAR | STRING | 'true' | 'false' | 'ok'
//	       | '<oid' HEX '>' | abs | NAME
//	abs   := ('proc' | 'cont' | 'lambda' | 'λ') '(' param* ')' app
//	param := '!'? NAME          -- '!' marks a continuation variable
//
// Comments run from ';' to end of line. A NAME of the form base_N adopts N
// as the variable ID, so pretty-printed trees parse back to α-equivalent
// trees. Names bound by an enclosing parameter list resolve lexically to
// the binder; unbound names resolve to primitives when opts.IsPrim accepts
// them and to free variables otherwise.

// ParseOpts configures Parse.
type ParseOpts struct {
	// IsPrim reports whether a name denotes a primitive procedure.
	// The primitive registry is deliberately outside the intermediate
	// language (paper §2.3), so the parser is parameterised by it.
	IsPrim func(string) bool
	// Gen supplies IDs for variables written without an explicit _N
	// suffix. If nil, a private generator is used.
	Gen *VarGen
}

// Parse parses a single TML term (a value or an application).
func Parse(src string, opts ParseOpts) (Node, error) {
	p := newParser(src, opts)
	n, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, p.errorf(tok, "trailing input %q", tok.text)
	}
	return n, nil
}

// ParseApp parses a term that must be an application.
func ParseApp(src string, opts ParseOpts) (*App, error) {
	n, err := Parse(src, opts)
	if err != nil {
		return nil, err
	}
	app, ok := n.(*App)
	if !ok {
		return nil, fmt.Errorf("tml: term is a %T, not an application", n)
	}
	return app, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(src string, opts ParseOpts) Node {
	n, err := Parse(src, opts)
	if err != nil {
		panic(err)
	}
	return n
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokCaret
	tokName
	tokInt
	tokReal
	tokChar
	tokStr
	tokOid
)

type token struct {
	kind tokKind
	text string
	pos  int
	ival int64
	rval float64
	uval uint64
}

type parser struct {
	src    string
	toks   []token
	cur    int
	opts   ParseOpts
	gen    *VarGen
	scopes []map[string]*Var
	free   map[string]*Var
}

func newParser(src string, opts ParseOpts) *parser {
	gen := opts.Gen
	if gen == nil {
		gen = NewVarGen()
	}
	return &parser{src: src, opts: opts, gen: gen}
}

func (p *parser) errorf(tok token, format string, args ...any) error {
	line := 1 + strings.Count(p.src[:tok.pos], "\n")
	return fmt.Errorf("tml: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() token {
	if p.toks == nil {
		if err := p.lex(); err != nil {
			// Lexing errors surface as a synthetic EOF; parseTerm
			// re-runs lex to report them.
			p.toks = []token{{kind: tokEOF, pos: len(p.src)}}
		}
	}
	return p.toks[p.cur]
}

func (p *parser) next() token {
	t := p.peek()
	if t.kind != tokEOF {
		p.cur++
	}
	return t
}

func (p *parser) lex() error {
	src := p.src
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '(':
			p.toks = append(p.toks, token{kind: tokLParen, pos: i, text: "("})
			i++
		case c == ')':
			p.toks = append(p.toks, token{kind: tokRParen, pos: i, text: ")"})
			i++
		case c == '!':
			p.toks = append(p.toks, token{kind: tokCaret, pos: i, text: "!"})
			i++
		case c == '\'':
			if i+2 < len(src) && src[i+2] == '\'' {
				p.toks = append(p.toks, token{kind: tokChar, pos: i, text: src[i : i+3], ival: int64(src[i+1])})
				i += 3
			} else {
				return fmt.Errorf("tml: offset %d: malformed character literal", i)
			}
		case c == '"':
			j := i + 1
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(src) {
				return fmt.Errorf("tml: offset %d: unterminated string", i)
			}
			s, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return fmt.Errorf("tml: offset %d: bad string: %v", i, err)
			}
			p.toks = append(p.toks, token{kind: tokStr, pos: i, text: s})
			i = j + 1
		case c == '<' && strings.HasPrefix(src[i:], "<oid"):
			// <oid 0xHEX>
			j := strings.IndexByte(src[i:], '>')
			if j < 0 {
				return fmt.Errorf("tml: offset %d: unterminated <oid …>", i)
			}
			inner := strings.TrimSpace(src[i+1 : i+j])
			fields := strings.Fields(inner)
			if len(fields) != 2 || fields[0] != "oid" {
				return fmt.Errorf("tml: offset %d: malformed OID literal %q", i, src[i:i+j+1])
			}
			u, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
			if err != nil {
				return fmt.Errorf("tml: offset %d: bad OID: %v", i, err)
			}
			p.toks = append(p.toks, token{kind: tokOid, pos: i, uval: u})
			i += j + 1
		case (c >= '0' && c <= '9') ||
			(c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i
			if c == '-' {
				j++
			}
			isReal := false
			for j < len(src) {
				d := src[j]
				if d >= '0' && d <= '9' {
					j++
				} else if d == '.' || d == 'e' || d == 'E' {
					isReal = true
					j++
					if j < len(src) && (src[j] == '+' || src[j] == '-') {
						j++
					}
				} else {
					break
				}
			}
			text := src[i:j]
			if text == "-" {
				return fmt.Errorf("tml: offset %d: lone '-'", i)
			}
			if isReal {
				r, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return fmt.Errorf("tml: offset %d: bad real %q: %v", i, text, err)
				}
				p.toks = append(p.toks, token{kind: tokReal, pos: i, text: text, rval: r})
			} else {
				v, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return fmt.Errorf("tml: offset %d: bad integer %q: %v", i, text, err)
				}
				p.toks = append(p.toks, token{kind: tokInt, pos: i, text: text, ival: v})
			}
			i = j
		default:
			j := i
			for j < len(src) && !isDelim(src[j]) {
				j++
			}
			if j == i {
				return fmt.Errorf("tml: offset %d: unexpected character %q", i, c)
			}
			p.toks = append(p.toks, token{kind: tokName, pos: i, text: src[i:j]})
			i = j
		}
	}
	p.toks = append(p.toks, token{kind: tokEOF, pos: len(src)})
	return nil
}

func isDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '(', ')', ';', '"', '\'', '!':
		return true
	}
	return false
}

func (p *parser) parseTerm() (Node, error) {
	// Surface lexer errors eagerly.
	if p.toks == nil {
		if err := p.lex(); err != nil {
			return nil, err
		}
	}
	tok := p.peek()
	if tok.kind == tokLParen {
		return p.parseApp()
	}
	return p.parseValue()
}

func (p *parser) parseApp() (*App, error) {
	tok := p.next()
	if tok.kind != tokLParen {
		return nil, p.errorf(tok, "expected '(', got %q", tok.text)
	}
	fn, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	var args []Value
	for {
		t := p.peek()
		if t.kind == tokRParen {
			p.next()
			return &App{Fn: fn, Args: args}, nil
		}
		if t.kind == tokEOF {
			return nil, p.errorf(t, "unexpected end of input in application")
		}
		a, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
}

func (p *parser) parseValue() (Value, error) {
	tok := p.next()
	switch tok.kind {
	case tokInt:
		return Int(tok.ival), nil
	case tokReal:
		return Real(tok.rval), nil
	case tokChar:
		return Char(byte(tok.ival)), nil
	case tokStr:
		return Str(tok.text), nil
	case tokOid:
		return NewOid(tok.uval), nil
	case tokName:
		switch tok.text {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		case "ok":
			return Unit(), nil
		case "proc", "cont", "lambda", "λ":
			return p.parseAbs(tok)
		}
		return p.resolve(tok.text), nil
	case tokCaret:
		name := p.next()
		if name.kind != tokName {
			return nil, p.errorf(name, "expected name after '!'")
		}
		v := p.resolve(name.text)
		if w, ok := v.(*Var); ok {
			w.Cont = true
		}
		return v, nil
	case tokLParen:
		return nil, p.errorf(tok, "applications may not be nested as values (paper Fig. 1)")
	default:
		return nil, p.errorf(tok, "unexpected token %q", tok.text)
	}
}

// parseAbs parses the parameter list and body of an abstraction. The
// keyword determines the default continuation flags: in a 'cont' head no
// parameter is a continuation; in a 'proc' head the trailing two
// parameters default to continuations (ce, cc; paper §2.2 rule 5) unless
// explicit '!' markers appear anywhere in the list, in which case the
// markers are authoritative.
func (p *parser) parseAbs(head token) (Value, error) {
	open := p.next()
	if open.kind != tokLParen {
		return nil, p.errorf(open, "expected '(' after %q", head.text)
	}
	type par struct {
		name   string
		marked bool
	}
	var pars []par
	anyMarked := false
	for {
		t := p.next()
		switch t.kind {
		case tokRParen:
			goto done
		case tokCaret:
			nm := p.next()
			if nm.kind != tokName {
				return nil, p.errorf(nm, "expected name after '!'")
			}
			pars = append(pars, par{name: nm.text, marked: true})
			anyMarked = true
		case tokName:
			pars = append(pars, par{name: t.text})
		case tokEOF:
			return nil, p.errorf(t, "unexpected end of input in parameter list")
		default:
			return nil, p.errorf(t, "unexpected token %q in parameter list", t.text)
		}
	}
done:
	params := make([]*Var, len(pars))
	scope := make(map[string]*Var, len(pars))
	for i, pr := range pars {
		v := p.makeVar(pr.name)
		cont := pr.marked
		if !anyMarked && head.text != "cont" && i >= len(pars)-2 {
			cont = true // proc(v₁…vₙ ce cc)
		}
		v.Cont = cont
		params[i] = v
		scope[pr.name] = v
	}
	p.scopes = append(p.scopes, scope)
	body, err := p.parseApp()
	p.scopes = p.scopes[:len(p.scopes)-1]
	if err != nil {
		return nil, err
	}
	return &Abs{Params: params, Body: body}, nil
}

// resolve maps a name to its lexical binder, a primitive, or a free
// variable (one *Var per distinct free name).
func (p *parser) resolve(name string) Value {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if v, ok := p.scopes[i][name]; ok {
			return v
		}
	}
	if p.opts.IsPrim != nil && p.opts.IsPrim(name) {
		return NewPrim(name)
	}
	if p.free == nil {
		p.free = make(map[string]*Var)
	}
	if v, ok := p.free[name]; ok {
		return v
	}
	v := p.makeVar(name)
	p.free[name] = v
	return v
}

// makeVar constructs a variable from a token, honouring an explicit _N
// suffix as the variable ID.
func (p *parser) makeVar(name string) *Var {
	if i := strings.LastIndexByte(name, '_'); i > 0 && i < len(name)-1 {
		if id, err := strconv.Atoi(name[i+1:]); err == nil && id >= 0 {
			p.gen.Skip(id)
			return &Var{Name: name[:i], ID: id}
		}
	}
	return p.gen.Fresh(name)
}
