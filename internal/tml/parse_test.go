package tml

import (
	"strings"
	"testing"
	"testing/quick"
)

// stdPrims is a minimal primitive predicate for parser tests (the real
// registry lives in package prim; tml must not depend on it).
func stdPrims(name string) bool {
	switch name {
	case "+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "Y",
		"array", "vector", "[]", "[:=]", "size", "if", "raise":
		return true
	}
	return false
}

var testOpts = ParseOpts{IsPrim: stdPrims}

func TestParseLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"13", "13"},
		{"-7", "-7"},
		{"'a'", "'a'"},
		{"true", "true"},
		{"false", "false"},
		{"ok", "ok"},
		{"2.5", "2.5"},
		{"1e3", "1000.0"},
		{`"hello"`, `"hello"`},
		{"<oid 0x005b4780>", "<oid 0x005b4780>"},
	}
	for _, tt := range tests {
		n, err := Parse(tt.src, testOpts)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.src, err)
			continue
		}
		if got := n.String(); got != tt.want {
			t.Errorf("Parse(%q) prints %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseApp(t *testing.T) {
	n, err := Parse("(+ 1 2 ce cc)", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	app, ok := n.(*App)
	if !ok {
		t.Fatalf("got %T, want *App", n)
	}
	if p, ok := app.Fn.(*Prim); !ok || p.Name != "+" {
		t.Errorf("Fn = %v, want prim +", app.Fn)
	}
	if len(app.Args) != 4 {
		t.Errorf("len(Args) = %d, want 4", len(app.Args))
	}
}

func TestParseAbsBindings(t *testing.T) {
	// The paper's first example: literals bound to variables.
	src := "(proc(i ch oid !ce !cc) (cc i) 13 'a' <oid 0x005b4780> ce0 cc0)"
	n, err := Parse(src, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	app := n.(*App)
	abs := app.Fn.(*Abs)
	if len(abs.Params) != 5 {
		t.Fatalf("params = %d, want 5", len(abs.Params))
	}
	if abs.Params[0].Cont || abs.Params[1].Cont || abs.Params[2].Cont {
		t.Error("value parameters marked as continuations")
	}
	if !abs.Params[3].Cont || !abs.Params[4].Cont {
		t.Error("!ce/!cc not marked as continuations")
	}
	// The use of cc in the body must be the same *Var as the binder.
	inner := abs.Body
	if inner.Fn != Value(abs.Params[4]) {
		t.Error("use of cc does not resolve to its binder")
	}
}

func TestParseProcDefaultConts(t *testing.T) {
	// Without explicit markers, the trailing two parameters of a proc
	// default to continuations (paper §2.2 rule 5).
	n := MustParse("(proc(x ce cc) (cc x) 1 e k)", testOpts)
	abs := n.(*App).Fn.(*Abs)
	if abs.Params[0].Cont {
		t.Error("x should not be a continuation")
	}
	if !abs.Params[1].Cont || !abs.Params[2].Cont {
		t.Error("trailing parameters of proc should default to continuations")
	}
	// cont(…) never marks parameters.
	n2 := MustParse("(cont(a b) (k a b) 1 2)", testOpts)
	abs2 := n2.(*App).Fn.(*Abs)
	for _, p := range abs2.Params {
		if p.Cont {
			t.Errorf("cont parameter %s marked as continuation", p)
		}
	}
}

func TestParseExplicitIDs(t *testing.T) {
	n := MustParse("(cont(x_7) (k_9 x_7) 1)", testOpts)
	abs := n.(*App).Fn.(*Abs)
	if abs.Params[0].ID != 7 || abs.Params[0].Name != "x" {
		t.Errorf("binder = %v, want x_7", abs.Params[0])
	}
}

func TestParseYLoop(t *testing.T) {
	// The loop example of paper §2.3 in concrete syntax.
	src := `
(Y proc(!c0 !for !c)
   (c cont() (for 1)
      cont(i)
        (> i 10
           cont() (cc ok)
           cont() (f i ce cont(t1)
                    (+ i 1 ce cont(t2) (for t2))))))`
	n, err := Parse(src, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	app := n.(*App)
	if p, ok := app.Fn.(*Prim); !ok || p.Name != "Y" {
		t.Fatalf("Fn = %v, want Y", app.Fn)
	}
	free := FreeVars(app)
	if len(free) != 3 { // f, ce, cc
		t.Errorf("free vars = %v, want f, ce, cc", free)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(",
		"()",
		"((+ 1 2) 3)", // nested application as value
		"(proc x (cc x))",
		"'ab'",
		`"unterminated`,
		"<oid zz>",
		"<oid 0x1",
		"(+ 1 2",
		"1 2", // trailing input
		"(! 1)",
	}
	for _, src := range bad {
		if _, err := Parse(src, testOpts); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	n := MustParse("(cc 1) ; the result\n", testOpts)
	if got := n.String(); got != "(cc_1 1)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"(+ 1 2 ce cc)",
		"(proc(x !ce !cc) (cc x) 5 e k)",
		"(== x 1 2 3 cont()(k 1) cont()(k 2) cont()(k 3) cont()(k 0))",
		`(Y proc(!c0 !for !c) (c cont() (for 1) cont(i) (for i)))`,
		"(select proc(x !ce !cc) (p x ce cc) <oid 0x00000001> e cont(r) (k r))",
	}
	for _, src := range srcs {
		n1, err := Parse(src, testOpts)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := Print(n1)
		n2, err := Parse(printed, testOpts)
		if err != nil {
			t.Errorf("reparse of %q failed: %v\nprinted:\n%s", src, err, printed)
			continue
		}
		if !AlphaEqual(n1, n2) {
			t.Errorf("round trip not α-equal for %q:\n%s\nvs\n%s", src, printed, Print(n2))
		}
	}
}

func TestPrintIndentsLargeTerms(t *testing.T) {
	g := NewVarGen()
	term := loopTerm(g)
	s := Print(term)
	if !strings.Contains(s, "\n") {
		t.Error("large term printed on one line")
	}
	if !strings.Contains(s, "proc(") || !strings.Contains(s, "cont(") {
		t.Errorf("printer should differentiate proc and cont:\n%s", s)
	}
	// Round trip through the parser.
	n2, err := Parse(s, testOpts)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s)
	}
	if !AlphaEqual(term, n2) {
		t.Error("printed loop term does not round-trip")
	}
}

// genTerm builds a random well-formed arithmetic TML term of the given
// depth: (op lit/var lit/var ce cont(t) …) chains ending in (cc t).
func genTerm(depth int, seed int64, g *VarGen, ce, cc *Var, avail []*Var) *App {
	pick := func(n int64) int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		r := seed >> 33
		if r < 0 {
			r = -r
		}
		return r % n
	}
	operand := func() Value {
		if len(avail) > 0 && pick(2) == 0 {
			return avail[pick(int64(len(avail)))]
		}
		return Int(pick(100))
	}
	if depth == 0 {
		return NewApp(cc, operand())
	}
	ops := []string{"+", "-", "*"}
	op := ops[pick(int64(len(ops)))]
	t1 := g.Fresh("t")
	rest := genTerm(depth-1, seed, g, ce, cc, append(avail, t1))
	return NewApp(NewPrim(op), operand(), operand(), ce, &Abs{Params: []*Var{t1}, Body: rest})
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw % 12)
		g := NewVarGen()
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		term := genTerm(depth, seed, g, ce, cc, nil)
		printed := Print(term)
		n2, err := Parse(printed, testOpts)
		if err != nil {
			t.Logf("parse error: %v\n%s", err, printed)
			return false
		}
		return AlphaEqual(term, n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFreshenPreservesAlpha(t *testing.T) {
	f := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw % 10)
		g := NewVarGen()
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		term := genTerm(depth, seed, g, ce, cc, nil)
		cp := CopyApp(term, g)
		if !AlphaEqual(term, cp) {
			return false
		}
		// All binders in the copy are fresh (disjoint from the original).
		orig := make(map[*Var]bool)
		for _, v := range Binders(term) {
			orig[v] = true
		}
		for _, v := range Binders(cp) {
			if orig[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCensusConsistent(t *testing.T) {
	f := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw % 10)
		g := NewVarGen()
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		term := genTerm(depth, seed, g, ce, cc, nil)
		census := NewCensus(term)
		for _, v := range Binders(term) {
			if census.Uses(v) != Count(term, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
