package tml

import (
	"errors"
	"fmt"
)

// This file implements the well-formedness checker for the constraints of
// paper §2.2. The compiler front end establishes these constraints and
// every rewrite rule preserves them (paper fn. 3); the checker is used in
// tests, after PTML decoding, and behind a debug flag in the optimizer.

// Signature describes the calling convention of a primitive: the number of
// value arguments and continuation arguments it expects. Variadic
// primitives (array, vector, ==, …) report NVals < 0; NConts < 0 marks a
// variable number of continuations (the == case primitive).
type Signature struct {
	NVals  int
	NConts int
}

// SignatureFunc resolves the calling convention of a primitive by name.
// It returns ok=false for unknown primitives.
type SignatureFunc func(name string) (Signature, bool)

// CheckOpts configures Check.
type CheckOpts struct {
	// Signatures resolves primitive calling conventions; required for
	// constraint 2 (primitive arity) and for deciding which argument
	// positions of a primitive application may legally receive
	// continuations (constraint 3).
	Signatures SignatureFunc
	// AllowFree lists variables that may occur free in the term (for
	// example, module globals awaiting linkage). Any other free variable
	// is reported as an error.
	AllowFree []*Var
}

// ErrIllFormed wraps every violation reported by Check.
var ErrIllFormed = errors.New("ill-formed TML")

// Check verifies the well-formedness constraints of paper §2.2:
//
//  1. (arity, where statically visible) a literal abstraction in functional
//     position is applied to exactly as many arguments as it has parameters;
//  2. a primitive application matches the primitive's signature;
//  3. continuations do not escape: a continuation variable or continuation
//     abstraction may appear only in functional position or in a
//     continuation argument position;
//  4. unique binding: every variable is bound by at most one parameter
//     list, and every use is in the scope of its binder (or explicitly
//     allowed free);
//  5. a proc abstraction takes exactly two trailing continuation
//     parameters, a cont abstraction takes none.
func Check(n Node, opts CheckOpts) error {
	c := &checker{
		opts:    opts,
		bound:   make(map[*Var]bool),
		inScope: make(map[*Var]bool),
	}
	for _, v := range opts.AllowFree {
		c.inScope[v] = true
	}
	if err := c.node(n); err != nil {
		return fmt.Errorf("%w: %v", ErrIllFormed, err)
	}
	return nil
}

type checker struct {
	opts    CheckOpts
	bound   map[*Var]bool // ever bound anywhere (unique-binding rule)
	inScope map[*Var]bool // currently in scope
}

func (c *checker) node(n Node) error {
	switch n := n.(type) {
	case *Lit, *Oid, *Prim:
		return nil
	case *Var:
		return c.use(n)
	case *Abs:
		return c.abs(n)
	case *App:
		return c.app(n)
	default:
		return fmt.Errorf("unknown node type %T", n)
	}
}

func (c *checker) use(v *Var) error {
	if !c.inScope[v] {
		return fmt.Errorf("variable %s used out of scope", v)
	}
	return nil
}

func (c *checker) abs(a *Abs) error { return c.absShape(a, false) }

// absShape checks an abstraction; relaxed skips the proc/cont parameter
// shape constraint, which only applies to abstractions used as values —
// an abstraction in functional position (a β-redex, e.g. the
// administrative bindings of join continuations or of a rebound exception
// continuation) may bind any mix of values and continuations.
func (c *checker) absShape(a *Abs, relaxed bool) error {
	// Constraint 5: parameter shape. A proc has exactly two trailing
	// continuation parameters (ce then cc); a cont has none. Abstractions
	// whose parameters are *all* continuations arise as arguments of the
	// Y primitive (paper §2.3) and are accepted as a third shape.
	nconts := 0
	for _, p := range a.Params {
		if p.Cont {
			nconts++
		}
	}
	n := len(a.Params)
	switch {
	case relaxed:
	case nconts == 0: // continuation abstraction
	case nconts == 2 && a.Params[n-1].Cont && a.Params[n-2].Cont:
		// proc(v₁ … vₙ ce cc)
	case n >= 2 && a.Params[0].Cont && a.Params[n-1].Cont:
		// Y-argument shape λ(c₀ v₁ … vₙ c): the recursive bindings v₁…vₙ
		// may be procedures and/or continuations (paper §2.3).
	default:
		return fmt.Errorf("abstraction %s has %d continuation parameters in a non-proc, non-cont shape", absHead(a), nconts)
	}
	for _, p := range a.Params {
		if c.bound[p] {
			return fmt.Errorf("variable %s bound more than once (unique binding rule)", p)
		}
		c.bound[p] = true
		c.inScope[p] = true
	}
	err := c.app(a.Body)
	for _, p := range a.Params {
		delete(c.inScope, p)
	}
	return err
}

func (c *checker) app(app *App) error {
	// Functional position: any value except a simple literal. An OID is
	// legal — it may denote a procedure in the persistent store, which
	// the machine links and applies (paper Fig. 3).
	switch fn := app.Fn.(type) {
	case *Lit:
		return fmt.Errorf("literal %s in functional position", fn)
	case *Var:
		if err := c.use(fn); err != nil {
			return err
		}
	case *Abs:
		// Constraint 1: β-redex arity.
		if len(fn.Params) != len(app.Args) {
			return fmt.Errorf("abstraction of %d parameters applied to %d arguments", len(fn.Params), len(app.Args))
		}
	case *Prim:
		if c.opts.Signatures != nil {
			sig, ok := c.opts.Signatures(fn.Name)
			if !ok {
				return fmt.Errorf("unknown primitive %q", fn.Name)
			}
			if err := checkPrimArity(fn.Name, sig, app.Args); err != nil {
				return err
			}
			return c.primArgs(fn.Name, sig, app.Args)
		}
	}

	// Non-primitive application: continuations may appear anywhere in the
	// argument list only if the callee is a known abstraction whose
	// corresponding parameter is a continuation; for unknown callees
	// (variables) the front end's type checker is responsible, and we
	// verify the weaker property that continuation values only flow into
	// trailing argument positions or Y-shaped calls.
	if abs, ok := app.Fn.(*Abs); ok {
		for i, arg := range app.Args {
			if err := c.argValue(arg, abs.Params[i].Cont); err != nil {
				return err
			}
		}
		// Functional position: the administrative β-redex may bind any
		// parameter mix (join continuations, rebound exception
		// continuations), so the proc/cont shape rule is relaxed.
		return c.absShape(abs, true)
	}
	// A call whose callee is a continuation variable may receive
	// continuations in any position: the knot-tying call of a Y body,
	// (c cont()app abs₁ … absₙ), hands the recursive abstractions to the
	// fixed point operator through such a call (paper §2.3).
	calleeIsCont := false
	if v, ok := app.Fn.(*Var); ok && v.Cont {
		calleeIsCont = true
	}
	for i, arg := range app.Args {
		isContPos := calleeIsCont || i >= len(app.Args)-2 // ce / cc positions of a proc call
		if err := c.argValue(arg, isContPos); err != nil {
			return err
		}
	}
	return nil
}

// primArgs checks the argument values of a primitive application. The
// trailing NConts positions (all trailing abstraction/continuation-variable
// positions when NConts < 0) are continuation positions.
func (c *checker) primArgs(name string, sig Signature, args []Value) error {
	nconts := sig.NConts
	if nconts < 0 {
		nconts = countTrailingConts(args)
	}
	split := len(args) - nconts
	for i, arg := range args {
		if err := c.argValue(arg, i >= split); err != nil {
			return fmt.Errorf("primitive %s argument %d: %w", name, i, err)
		}
	}
	return nil
}

func countTrailingConts(args []Value) int {
	n := 0
	for i := len(args) - 1; i >= 0; i-- {
		if IsContValue(args[i]) {
			n++
		} else {
			break
		}
	}
	return n
}

// IsContValue reports whether v is (syntactically) a continuation: a
// continuation variable or an abstraction without continuation parameters.
func IsContValue(v Value) bool {
	switch v := v.(type) {
	case *Var:
		return v.Cont
	case *Abs:
		return v.IsCont()
	}
	return false
}

// SplitArgs splits a primitive argument list into value arguments and the
// trailing continuation arguments. Primitives with variadic continuation
// lists (the == case primitive) use this to recover their shape.
func SplitArgs(args []Value) (vals, conts []Value) {
	n := countTrailingConts(args)
	return args[:len(args)-n], args[len(args)-n:]
}

// argValue checks a single argument value; contPos reports whether the
// position may legally receive a continuation (constraint 3: continuations
// must not escape into value positions).
func (c *checker) argValue(arg Value, contPos bool) error {
	switch arg := arg.(type) {
	case *Lit, *Oid, *Prim:
		return nil
	case *Var:
		if arg.Cont && !contPos {
			return fmt.Errorf("continuation variable %s escapes into a value position", arg)
		}
		return c.use(arg)
	case *Abs:
		if arg.IsCont() && !contPos {
			return fmt.Errorf("continuation abstraction %s escapes into a value position", absHead(arg))
		}
		return c.abs(arg)
	default:
		return fmt.Errorf("unexpected argument node %T", arg)
	}
}

func checkPrimArity(name string, sig Signature, args []Value) error {
	nconts := sig.NConts
	if nconts < 0 {
		nconts = countTrailingConts(args)
	}
	nvals := len(args) - nconts
	if sig.NVals >= 0 && nvals != sig.NVals {
		return fmt.Errorf("primitive %s called with %d value arguments, wants %d", name, nvals, sig.NVals)
	}
	if sig.NConts >= 0 && nconts != sig.NConts {
		return fmt.Errorf("primitive %s called with %d continuations, wants %d", name, nconts, sig.NConts)
	}
	return nil
}
