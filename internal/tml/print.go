package tml

import "strings"

// This file implements the TML pretty printer. Output follows the paper's
// listings: abstractions print as proc(…) or cont(…) depending on the
// purely syntactic continuation criterion of §2.2 rule 5, identifiers print
// with their unique α-conversion suffix, and OIDs print as <oid 0x…>.
// The output is accepted by Parse, so printing and parsing round-trip.

const printWidth = 72

// Print renders n as an indented s-expression.
func Print(n Node) string {
	var b strings.Builder
	printInto(&b, n, 0)
	return b.String()
}

func printNode(n Node) string { return Print(n) }

// printInto writes n at the given indentation column.
func printInto(b *strings.Builder, n Node, indent int) {
	flat := printFlat(n)
	if len(flat)+indent <= printWidth {
		b.WriteString(flat)
		return
	}
	switch n := n.(type) {
	case *Abs:
		b.WriteString(absHead(n))
		b.WriteString("\n")
		pad(b, indent+2)
		printInto(b, n.Body, indent+2)
	case *App:
		b.WriteString("(")
		printInto(b, n.Fn, indent+1)
		for _, a := range n.Args {
			b.WriteString("\n")
			pad(b, indent+2)
			printInto(b, a, indent+2)
		}
		b.WriteString(")")
	default:
		b.WriteString(flat)
	}
}

func pad(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
	}
}

// printFlat renders n on a single line.
func printFlat(n Node) string {
	switch n := n.(type) {
	case *Lit:
		return n.String()
	case *Oid:
		return n.String()
	case *Var:
		return n.String()
	case *Prim:
		return n.String()
	case *Abs:
		return absHead(n) + " " + printFlat(n.Body)
	case *App:
		var b strings.Builder
		b.WriteString("(")
		b.WriteString(printFlat(n.Fn))
		for _, a := range n.Args {
			b.WriteString(" ")
			b.WriteString(printFlat(a))
		}
		b.WriteString(")")
		return b.String()
	default:
		return "<nil>"
	}
}

// absHead renders the binder head of an abstraction, e.g. "proc(x_1 ce_2 cc_3)".
func absHead(a *Abs) string {
	var b strings.Builder
	if a.IsCont() {
		b.WriteString("cont(")
	} else {
		b.WriteString("proc(")
	}
	for i, p := range a.Params {
		if i > 0 {
			b.WriteString(" ")
		}
		if p.Cont {
			// Explicit continuation marker; makes the proc/cont parameter
			// flags round-trip through Parse (the paper's listings rely on
			// naming conventions instead).
			b.WriteString("!")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")")
	return b.String()
}
