// Package tml implements the Tycoon Machine Language (TML), the persistent
// continuation-passing-style (CPS) intermediate code representation described
// in Gawecki & Matthes, "Exploiting Persistent Intermediate Code
// Representations in Open Database Environments" (EDBT 1996).
//
// TML is a call-by-value λ-calculus with store semantics. Exactly six node
// types represent a TML tree (paper §2.1):
//
//	Lit   literal constants (integers, characters, booleans, reals, strings)
//	Oid   object identifiers denoting complex objects in the persistent store
//	Var   value and continuation variables
//	Prim  references to predefined primitive procedures
//	Abs   λ-abstractions (procs and continuations)
//	App   applications
//
// Well-formed TML trees obey the additional constraints of paper §2.2:
// the body of an abstraction is an application, the arguments of an
// application are values (never nested applications), identifiers are bound
// at most once (unique binding rule), and continuations never escape.
package tml

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Node is implemented by every TML tree node.
type Node interface {
	// String renders the node in the s-expression syntax accepted by Parse.
	String() string
	node()
}

// Value is implemented by the node types that may appear as arguments of an
// application or in its functional position: Lit, Oid, Var, Prim and Abs.
// Applications are deliberately excluded; the syntactic restriction that
// actual parameters are constants, variables or abstractions is what makes
// the TML rewrite rules sound in the presence of side effects (paper §2.1).
type Value interface {
	Node
	value()
}

// LitKind discriminates the simple literal constants of TML.
type LitKind uint8

// The literal kinds. Strings are a convenience extension: the Tycoon system
// represents strings as byte arrays in the store, and our front end lowers
// string literals to store objects, but tests and tools benefit from an
// inline form.
const (
	LitUnit LitKind = iota // the unit value, written ok
	LitInt                 // 64-bit signed integer
	LitChar                // a byte, written 'a'
	LitBool                // true or false
	LitReal                // 64-bit IEEE float
	LitStr                 // immutable string
)

// Lit is a literal constant.
type Lit struct {
	Kind LitKind
	Int  int64
	Ch   byte
	Bool bool
	Real float64
	Str  string
}

// Convenience constructors for literals.

// Int returns an integer literal.
func Int(v int64) *Lit { return &Lit{Kind: LitInt, Int: v} }

// Char returns a character literal.
func Char(c byte) *Lit { return &Lit{Kind: LitChar, Ch: c} }

// Bool returns a boolean literal.
func Bool(b bool) *Lit { return &Lit{Kind: LitBool, Bool: b} }

// Real returns a floating point literal.
func Real(r float64) *Lit { return &Lit{Kind: LitReal, Real: r} }

// Str returns a string literal.
func Str(s string) *Lit { return &Lit{Kind: LitStr, Str: s} }

// Unit is the unit literal ok.
func Unit() *Lit { return &Lit{Kind: LitUnit} }

func (l *Lit) node()  {}
func (l *Lit) value() {}

// String renders the literal in parseable syntax.
func (l *Lit) String() string {
	switch l.Kind {
	case LitUnit:
		return "ok"
	case LitInt:
		return strconv.FormatInt(l.Int, 10)
	case LitChar:
		return "'" + string(rune(l.Ch)) + "'"
	case LitBool:
		if l.Bool {
			return "true"
		}
		return "false"
	case LitReal:
		s := strconv.FormatFloat(l.Real, 'g', -1, 64)
		if !hasRealMark(s) {
			s += ".0"
		}
		return s
	case LitStr:
		return strconv.Quote(l.Str)
	default:
		return fmt.Sprintf("<bad lit kind %d>", l.Kind)
	}
}

func hasRealMark(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '.', 'e', 'E', 'n', 'i': // ".", exponent, NaN, Inf
			return true
		}
	}
	return false
}

// Eq reports whether two literals denote the same constant.
func (l *Lit) Eq(m *Lit) bool {
	if l.Kind != m.Kind {
		return false
	}
	switch l.Kind {
	case LitUnit:
		return true
	case LitInt:
		return l.Int == m.Int
	case LitChar:
		return l.Ch == m.Ch
	case LitBool:
		return l.Bool == m.Bool
	case LitReal:
		return l.Real == m.Real
	case LitStr:
		return l.Str == m.Str
	}
	return false
}

// Oid is a reference to a complex object (table, index, module, ADT value,
// closure, …) in the persistent object store. OIDs let TML terms carry
// runtime bindings to arbitrarily complex persistent values, which is the
// property the reflective optimizer of paper §4.1 exploits.
type Oid struct {
	Ref uint64
}

// NewOid returns an object identifier node.
func NewOid(ref uint64) *Oid { return &Oid{Ref: ref} }

func (o *Oid) node()  {}
func (o *Oid) value() {}

// String renders the OID in the paper's pretty-printer syntax.
func (o *Oid) String() string { return fmt.Sprintf("<oid 0x%08x>", o.Ref) }

// Var is a value or continuation variable. Variable identity is pointer
// identity: the binder occurrence in an Abs parameter list and every use
// occurrence share the same *Var. The unique binding rule of paper §2.2
// states that a *Var is bound by at most one parameter list.
type Var struct {
	// Name is the source-level identifier, kept for diagnostics and
	// pretty-printing. It carries no semantic weight.
	Name string
	// ID is a per-generator unique number appended to the printed name
	// (α-conversion makes every printed identifier unique, paper fn. 5).
	ID int
	// Cont marks continuation variables. Continuations are not first-class
	// in TML (paper §2.2 rule 3); the well-formedness checker uses this flag
	// to verify that continuation variables never escape.
	Cont bool
}

func (v *Var) node()  {}
func (v *Var) value() {}

// String renders the variable as name_ID, matching the paper's listings.
func (v *Var) String() string {
	if v.Name == "" {
		return "t_" + strconv.Itoa(v.ID)
	}
	return v.Name + "_" + strconv.Itoa(v.ID)
}

// Prim is a reference to a predefined primitive procedure (paper §2.3).
// The primitive's calling convention, cost estimate, optimizer attributes
// and fold function live in the primitive registry (package prim), keeping
// the intermediate language itself minimal and adaptable.
type Prim struct {
	Name string
}

// NewPrim returns a primitive reference node.
func NewPrim(name string) *Prim { return &Prim{Name: name} }

func (p *Prim) node()  {}
func (p *Prim) value() {}

// String renders the primitive name.
func (p *Prim) String() string { return p.Name }

// Abs is a λ-abstraction. The body must be an application (paper Fig. 1).
// Abstractions double as procs and continuations; the distinction is purely
// syntactic (paper §2.2 rule 5): a continuation takes no continuation
// parameters, a proc takes exactly two (the exception continuation ce
// followed by the normal continuation cc, in that order).
type Abs struct {
	Params []*Var
	Body   *App
}

// NewAbs returns an abstraction node.
func NewAbs(params []*Var, body *App) *Abs { return &Abs{Params: params, Body: body} }

func (a *Abs) node()  {}
func (a *Abs) value() {}

// IsCont reports whether the abstraction is (syntactically) a continuation,
// i.e. none of its parameters is a continuation variable.
func (a *Abs) IsCont() bool {
	for _, p := range a.Params {
		if p.Cont {
			return false
		}
	}
	return true
}

// String renders the abstraction using the proc/cont keywords of the
// paper's pretty printer.
func (a *Abs) String() string { return printNode(a) }

// App is an application (val₀ val₁ … valₙ). The functional position val₀
// must evaluate to an abstraction or primitive of matching arity; this is
// enforced by front ends and preserved by every rewrite rule.
type App struct {
	Fn   Value
	Args []Value
}

// NewApp returns an application node.
func NewApp(fn Value, args ...Value) *App { return &App{Fn: fn, Args: args} }

func (a *App) node() {}

// String renders the application in parseable s-expression syntax.
func (a *App) String() string { return printNode(a) }

// VarGen generates variables with unique IDs. A single generator is
// threaded through code generation and optimization of one program so that
// the unique binding rule can be re-established by α-conversion whenever an
// abstraction is copied. ID allocation is atomic, so one generator may be
// shared by concurrent compilations (the pipeline runs module installation
// and reflective optimization in parallel); the trees being rewritten are
// still owned by a single goroutine each.
type VarGen struct {
	next atomic.Int64
}

// NewVarGen returns a generator whose first variable has ID 1.
func NewVarGen() *VarGen { return NewVarGenAt(1) }

// NewVarGenAt returns a generator whose first variable has the given ID.
// It is used when resuming code generation for a term whose maximum
// variable ID is known (for example after decoding PTML).
func NewVarGenAt(next int) *VarGen {
	g := &VarGen{}
	g.next.Store(int64(next))
	return g
}

// id atomically claims the next fresh ID.
func (g *VarGen) id() int { return int(g.next.Add(1)) - 1 }

// Fresh returns a new value variable.
func (g *VarGen) Fresh(name string) *Var {
	return &Var{Name: name, ID: g.id()}
}

// FreshCont returns a new continuation variable.
func (g *VarGen) FreshCont(name string) *Var {
	return &Var{Name: name, ID: g.id(), Cont: true}
}

// Like returns a fresh variable with the same name and continuation flag as
// v; it is the α-conversion workhorse used when copying abstractions.
func (g *VarGen) Like(v *Var) *Var {
	return &Var{Name: v.Name, ID: g.id(), Cont: v.Cont}
}

// Next reports the ID the next fresh variable would receive.
func (g *VarGen) Next() int { return int(g.next.Load()) }

// Skip advances the generator past id, ensuring future variables do not
// collide with an existing tree that contains id.
func (g *VarGen) Skip(id int) {
	for {
		cur := g.next.Load()
		if int64(id) < cur {
			return
		}
		if g.next.CompareAndSwap(cur, int64(id)+1) {
			return
		}
	}
}
