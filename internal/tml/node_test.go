package tml

import (
	"strings"
	"testing"
)

func TestLitString(t *testing.T) {
	tests := []struct {
		lit  *Lit
		want string
	}{
		{Int(13), "13"},
		{Int(-5), "-5"},
		{Char('a'), "'a'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Real(2.5), "2.5"},
		{Real(3), "3.0"},
		{Str("hi"), `"hi"`},
		{Unit(), "ok"},
	}
	for _, tt := range tests {
		if got := tt.lit.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.lit, got, tt.want)
		}
	}
}

func TestLitEq(t *testing.T) {
	tests := []struct {
		a, b *Lit
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Bool(true), false},
		{Char('a'), Char('a'), true},
		{Char('a'), Char('b'), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Real(1.5), Real(1.5), true},
		{Real(1.5), Real(2.5), false},
		{Str("x"), Str("x"), true},
		{Str("x"), Str("y"), false},
		{Unit(), Unit(), true},
	}
	for _, tt := range tests {
		if got := tt.a.Eq(tt.b); got != tt.want {
			t.Errorf("Eq(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestOidString(t *testing.T) {
	o := NewOid(0x5b4780)
	if got, want := o.String(), "<oid 0x005b4780>"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestVarString(t *testing.T) {
	g := NewVarGen()
	v := g.Fresh("x")
	if got, want := v.String(), "x_1"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	anon := &Var{ID: 7}
	if got, want := anon.String(), "t_7"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestVarGen(t *testing.T) {
	g := NewVarGen()
	a := g.Fresh("a")
	b := g.FreshCont("cc")
	if a.ID == b.ID {
		t.Fatalf("Fresh IDs collide: %d", a.ID)
	}
	if !b.Cont {
		t.Error("FreshCont did not set Cont")
	}
	c := g.Like(b)
	if !c.Cont || c.Name != "cc" || c.ID == b.ID {
		t.Errorf("Like(%v) = %v", b, c)
	}
	g.Skip(100)
	if d := g.Fresh("d"); d.ID != 101 {
		t.Errorf("after Skip(100), Fresh ID = %d, want 101", d.ID)
	}
	g2 := NewVarGenAt(50)
	if e := g2.Fresh("e"); e.ID != 50 {
		t.Errorf("NewVarGenAt(50) first ID = %d, want 50", e.ID)
	}
}

func TestAbsIsCont(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	cc := g.FreshCont("cc")
	ce := g.FreshCont("ce")
	body := NewApp(cc, x)
	if !(&Abs{Params: []*Var{x}, Body: body}).IsCont() {
		t.Error("abstraction without continuation params should be a cont")
	}
	if (&Abs{Params: []*Var{x, ce, cc}, Body: body}).IsCont() {
		t.Error("abstraction with continuation params should be a proc")
	}
}

// loopTerm builds the paper's §2.3 example: for i = 1 upto 10 do f(i) end,
// expressed through the Y primitive.
func loopTerm(g *VarGen) *App {
	c0 := g.FreshCont("c0")
	forv := g.FreshCont("for")
	c := g.FreshCont("c")
	i := g.Fresh("i")
	t1 := g.Fresh("t1")
	t2 := g.Fresh("t2")
	f := g.Fresh("f")
	ce := g.FreshCont("ce")
	cc := g.FreshCont("cc")
	_ = f

	// loop body: (f i ce cont(t1) (+ i 1 ce cont(t2) (for t2)))
	recur := NewApp(forv, t2)
	incr := NewApp(NewPrim("+"), i, Int(1), ce, &Abs{Params: []*Var{t2}, Body: recur})
	callF := NewApp(f, i, ce, &Abs{Params: []*Var{t1}, Body: incr})
	exit := NewApp(cc, Unit())
	head := NewApp(NewPrim(">"), i, Int(10), &Abs{Params: nil, Body: exit}, &Abs{Params: nil, Body: callF})
	loopHead := &Abs{Params: []*Var{i}, Body: head}
	entry := &Abs{Params: nil, Body: NewApp(forv, Int(1))}
	knot := NewApp(c, entry, loopHead)
	yArg := &Abs{Params: []*Var{c0, forv, c}, Body: knot}
	return NewApp(NewPrim("Y"), yArg)
}

func TestCount(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	y := g.Fresh("y")
	cc := g.FreshCont("cc")
	// (λ(x)(+ x x ce cc) y): x occurs twice in the body, y once in args.
	body := NewApp(NewPrim("+"), x, x, cc, cc)
	app := NewApp(&Abs{Params: []*Var{x}, Body: body}, y)
	if got := Count(app, x); got != 2 {
		t.Errorf("Count(x) = %d, want 2", got)
	}
	if got := Count(app, y); got != 1 {
		t.Errorf("Count(y) = %d, want 1", got)
	}
	if got := Count(app, cc); got != 2 {
		t.Errorf("Count(cc) = %d, want 2", got)
	}
	if got := Count(Int(3), x); got != 0 {
		t.Errorf("Count in literal = %d, want 0", got)
	}
}

func TestCensusMatchesCount(t *testing.T) {
	g := NewVarGen()
	term := loopTerm(g)
	census := NewCensus(term)
	for _, v := range Binders(term) {
		if census.Uses(v) != Count(term, v) {
			t.Errorf("census disagrees with Count for %s: %d vs %d",
				v, census.Uses(v), Count(term, v))
		}
	}
}

func TestCensusRetractRecord(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	cc := g.FreshCont("cc")
	app := NewApp(cc, x, x)
	c := NewCensus(app)
	if c.Uses(x) != 2 {
		t.Fatalf("Uses(x) = %d, want 2", c.Uses(x))
	}
	c.Retract(x)
	if c.Uses(x) != 1 {
		t.Errorf("after Retract, Uses(x) = %d, want 1", c.Uses(x))
	}
	c.Record(app)
	if c.Uses(x) != 3 {
		t.Errorf("after Record, Uses(x) = %d, want 3", c.Uses(x))
	}
}

func TestFreeVars(t *testing.T) {
	g := NewVarGen()
	term := loopTerm(g)
	free := FreeVars(term)
	names := make(map[string]bool)
	for _, v := range free {
		names[v.Name] = true
	}
	// f, ce and cc are free in the loop example; i, t1, t2, c0, for, c are bound.
	for _, want := range []string{"f", "ce", "cc"} {
		if !names[want] {
			t.Errorf("FreeVars missing %q (got %v)", want, free)
		}
	}
	if len(free) != 3 {
		t.Errorf("FreeVars = %v, want exactly f, ce, cc", free)
	}
}

func TestSizeAndMaxVarID(t *testing.T) {
	g := NewVarGen()
	term := loopTerm(g)
	if got := Size(term); got <= 10 {
		t.Errorf("Size = %d, suspiciously small", got)
	}
	if got := MaxVarID(term); got != 9 {
		t.Errorf("MaxVarID = %d, want 9", got)
	}
}

func TestSubstBasic(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	cc := g.FreshCont("cc")
	app := NewApp(NewPrim("+"), x, x, cc, cc)
	out := SubstApp(app, x, Int(7))
	want := "(+ 7 7"
	if !strings.HasPrefix(out.String(), want) {
		t.Errorf("Subst result %s, want prefix %s", out, want)
	}
	// The original tree is unchanged.
	if Count(app, x) != 2 {
		t.Error("Subst mutated its input")
	}
}

func TestSubstSharing(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	y := g.Fresh("y")
	cc := g.FreshCont("cc")
	inner := &Abs{Params: nil, Body: NewApp(cc, y)}
	app := NewApp(cc, x, inner)
	out := SubstApp(app, x, Int(1))
	if out.Args[1] != Value(inner) {
		t.Error("unchanged subtree was not shared")
	}
	if out == app {
		t.Error("changed tree returned the original node")
	}
	// Substituting a variable that does not occur returns the original.
	z := g.Fresh("z")
	if SubstApp(app, z, Int(2)) != app {
		t.Error("no-op substitution did not return the original node")
	}
}

func TestSubstMany(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	y := g.Fresh("y")
	cc := g.FreshCont("cc")
	app := NewApp(NewPrim("+"), x, y, cc, cc)
	out := SubstMany(app, map[*Var]Value{x: Int(1), y: Int(2)}).(*App)
	if got := out.String(); !strings.HasPrefix(got, "(+ 1 2") {
		t.Errorf("SubstMany = %s", got)
	}
	if SubstMany(app, nil) != Node(app) {
		t.Error("empty SubstMany should return the input")
	}
}

func TestFreshenUniqueBinders(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	cc := g.FreshCont("cc")
	abs := &Abs{Params: []*Var{x}, Body: NewApp(cc, x)}
	cp := FreshenAbs(abs, g)
	if cp.Params[0] == x {
		t.Error("Freshen did not rename the binder")
	}
	if cp.Params[0].Name != "x" || !strings.HasPrefix(cp.Params[0].String(), "x_") {
		t.Errorf("fresh binder %s should keep its name", cp.Params[0])
	}
	if cp.Body.Args[0] != Value(cp.Params[0]) {
		t.Error("use occurrence not renamed consistently")
	}
	if cp.Body.Fn != Value(cc) {
		t.Error("free variable cc should stay shared")
	}
	// Freshening the loop term keeps α-equivalence.
	term := loopTerm(g)
	cp2 := CopyApp(term, g)
	if !AlphaEqual(term, cp2) {
		t.Error("freshened copy is not α-equivalent to the original")
	}
}

func TestAlphaEqual(t *testing.T) {
	g := NewVarGen()
	mk := func() *Abs {
		x := g.Fresh("x")
		cc := g.FreshCont("k")
		return &Abs{Params: []*Var{x}, Body: NewApp(cc, x)}
	}
	a, b := mk(), mk()
	// A free variable differs between a and b (each mk creates its own k),
	// but they print the same; AlphaEqual compares free vars by name.
	if AlphaEqual(a, b) {
		t.Log("free continuation variables differ by printed name; expected unequal")
	}
	// Same free var, different bound names: equal.
	cc := g.FreshCont("cc")
	x := g.Fresh("x")
	y := g.Fresh("y")
	a2 := &Abs{Params: []*Var{x}, Body: NewApp(cc, x)}
	b2 := &Abs{Params: []*Var{y}, Body: NewApp(cc, y)}
	if !AlphaEqual(a2, b2) {
		t.Error("α-equivalent abstractions reported unequal")
	}
	// Different structure: unequal.
	c2 := &Abs{Params: []*Var{g.Fresh("z")}, Body: NewApp(cc, Int(1))}
	if AlphaEqual(a2, c2) {
		t.Error("structurally different abstractions reported equal")
	}
	// Cont flag mismatch: unequal.
	d1 := &Abs{Params: []*Var{g.FreshCont("p")}, Body: NewApp(cc)}
	d2 := &Abs{Params: []*Var{g.Fresh("p")}, Body: NewApp(cc)}
	if AlphaEqual(d1, d2) {
		t.Error("continuation flag mismatch reported equal")
	}
	if !AlphaEqual(Int(3), Int(3)) || AlphaEqual(Int(3), Int(4)) {
		t.Error("literal comparison broken")
	}
	if !AlphaEqual(NewOid(9), NewOid(9)) || AlphaEqual(NewOid(9), NewOid(8)) {
		t.Error("OID comparison broken")
	}
	if !AlphaEqual(NewPrim("+"), NewPrim("+")) || AlphaEqual(NewPrim("+"), NewPrim("-")) {
		t.Error("prim comparison broken")
	}
}

func TestWalkPruning(t *testing.T) {
	g := NewVarGen()
	term := loopTerm(g)
	full := 0
	Walk(term, func(Node) bool { full++; return true })
	pruned := 0
	Walk(term, func(n Node) bool {
		pruned++
		_, isAbs := n.(*Abs)
		return !isAbs
	})
	if pruned >= full {
		t.Errorf("pruned walk visited %d nodes, full walk %d", pruned, full)
	}
}
