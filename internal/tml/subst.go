package tml

// This file implements variable substitution E[val/v] and α-conversion
// (freshening), following the inductive definition of paper §3.
//
// Substitution never captures: the unique binding rule guarantees that no
// binder in E can shadow v, so a plain structural replacement is sound.
// When the substituted value is an abstraction, its binders occur
// temporarily at two places in the tree; callers (the subst rewrite rule)
// immediately remove the original occurrence, restoring unique binding
// (paper §3).

// Subst returns n with every use occurrence of v replaced by val,
// implementing E[val/v]. Unchanged subtrees are shared between input and
// output; nodes on the path to a replacement are rebuilt, so the input
// tree is never mutated.
func Subst(n Node, v *Var, val Value) Node {
	switch n := n.(type) {
	case *Var:
		if n == v {
			return val
		}
		return n
	case *Lit, *Oid, *Prim:
		return n
	case *Abs:
		body := Subst(n.Body, v, val).(*App)
		if body == n.Body {
			return n
		}
		return &Abs{Params: n.Params, Body: body}
	case *App:
		return SubstApp(n, v, val)
	default:
		return n
	}
}

// SubstApp is Subst specialised to application nodes; it preserves the
// static *App type required for abstraction bodies.
func SubstApp(app *App, v *Var, val Value) *App {
	fn := Subst(app.Fn, v, val).(Value)
	var args []Value // copy-on-write: allocated on first changed argument
	for i, a := range app.Args {
		b := Subst(a, v, val).(Value)
		if b != a && args == nil {
			args = append([]Value(nil), app.Args...)
		}
		if args != nil {
			args[i] = b
		}
	}
	if fn == app.Fn && args == nil {
		return app
	}
	if args == nil {
		args = app.Args
	}
	return &App{Fn: fn, Args: args}
}

// SubstVal is Subst specialised to value nodes.
func SubstVal(value Value, v *Var, val Value) Value {
	return Subst(value, v, val).(Value)
}

// SubstMany applies a parallel substitution: every use of a key variable is
// replaced by its mapped value in a single traversal. Parallel (rather than
// sequential) substitution is what the case-subst rule and the reflective
// optimizer's binding re-establishment require.
func SubstMany(n Node, m map[*Var]Value) Node {
	if len(m) == 0 {
		return n
	}
	switch n := n.(type) {
	case *Var:
		if val, ok := m[n]; ok {
			return val
		}
		return n
	case *Lit, *Oid, *Prim:
		return n
	case *Abs:
		body := SubstMany(n.Body, m).(*App)
		if body == n.Body {
			return n
		}
		return &Abs{Params: n.Params, Body: body}
	case *App:
		fn := SubstMany(n.Fn, m).(Value)
		var args []Value
		for i, a := range n.Args {
			b := SubstMany(a, m).(Value)
			if b != a && args == nil {
				args = append([]Value(nil), n.Args...)
			}
			if args != nil {
				args[i] = b
			}
		}
		if fn == n.Fn && args == nil {
			return n
		}
		if args == nil {
			args = n.Args
		}
		return &App{Fn: fn, Args: args}
	default:
		return n
	}
}

// Freshen returns a deep copy of val in which every binder introduced
// inside val is replaced by a fresh variable from g (α-conversion).
// References to variables bound outside val are shared with the original.
// Freshen is the prerequisite for the expansion pass: inlining an
// abstraction at several call sites would otherwise violate the unique
// binding rule.
func Freshen(val Value, g *VarGen) Value {
	return freshenVal(val, g, make(map[*Var]*Var))
}

// FreshenAbs is Freshen specialised to abstractions.
func FreshenAbs(a *Abs, g *VarGen) *Abs {
	return freshenVal(a, g, make(map[*Var]*Var)).(*Abs)
}

func freshenVal(v Value, g *VarGen, ren map[*Var]*Var) Value {
	switch v := v.(type) {
	case *Var:
		if w, ok := ren[v]; ok {
			return w
		}
		return v
	case *Lit, *Oid, *Prim:
		return v
	case *Abs:
		params := make([]*Var, len(v.Params))
		for i, p := range v.Params {
			q := g.Like(p)
			ren[p] = q
			params[i] = q
		}
		return &Abs{Params: params, Body: freshenApp(v.Body, g, ren)}
	default:
		return v
	}
}

func freshenApp(app *App, g *VarGen, ren map[*Var]*Var) *App {
	fn := freshenVal(app.Fn, g, ren)
	args := make([]Value, len(app.Args))
	for i, a := range app.Args {
		args[i] = freshenVal(a, g, ren)
	}
	return &App{Fn: fn, Args: args}
}

// CopyApp returns a deep copy of app with all internal binders freshened.
func CopyApp(app *App, g *VarGen) *App {
	return freshenApp(app, g, make(map[*Var]*Var))
}
