package tml

// This file implements the occurrence-counting machinery of paper §3.
// Control and data dependencies are captured uniformly by bound variables;
// |E|_v — the number of occurrences of v in E — is the sole precondition
// ingredient of the subst, remove, η-reduce, Y-remove and Y-reduce rules.

// Count returns |n|_v, the number of use occurrences of the variable v in
// the node n, following the inductive definition of paper §3. Binder
// occurrences in parameter lists are not counted.
func Count(n Node, v *Var) int {
	switch n := n.(type) {
	case *Var:
		if n == v {
			return 1
		}
		return 0
	case *Lit, *Oid, *Prim:
		return 0
	case *Abs:
		return Count(n.Body, v)
	case *App:
		c := Count(n.Fn, v)
		for _, a := range n.Args {
			c += Count(a, v)
		}
		return c
	default:
		return 0
	}
}

// Census is a use-count table for every variable occurring in a tree.
// The optimizer computes one census per reduction sweep instead of
// re-walking the tree for each |E|_v precondition.
type Census map[*Var]int

// NewCensus counts the use occurrences of every variable in n.
func NewCensus(n Node) Census {
	c := make(Census)
	c.add(n, 1)
	return c
}

func (c Census) add(n Node, delta int) {
	switch n := n.(type) {
	case *Var:
		c[n] += delta
	case *Lit, *Oid, *Prim:
	case *Abs:
		c.add(n.Body, delta)
	case *App:
		c.add(n.Fn, delta)
		for _, a := range n.Args {
			c.add(a, delta)
		}
	}
}

// Uses returns the recorded use count of v.
func (c Census) Uses(v *Var) int { return c[v] }

// Retract subtracts the occurrences contributed by n (used when a subtree
// is deleted by a rewrite rule).
func (c Census) Retract(n Node) { c.add(n, -1) }

// Record adds the occurrences contributed by n (used when a subtree is
// duplicated or introduced by a rewrite rule).
func (c Census) Record(n Node) { c.add(n, 1) }

// FreeVars returns the variables that occur free in n, i.e. used but not
// bound by any parameter list within n. Iteration order is deterministic
// (first-occurrence order) so that binding tables and printed diagnostics
// are stable.
func FreeVars(n Node) []*Var {
	bound := make(map[*Var]bool)
	seen := make(map[*Var]bool)
	var free []*Var
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case *Var:
			if !bound[n] && !seen[n] {
				seen[n] = true
				free = append(free, n)
			}
		case *Lit, *Oid, *Prim:
		case *Abs:
			for _, p := range n.Params {
				bound[p] = true
			}
			walk(n.Body)
		case *App:
			walk(n.Fn)
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(n)
	// A binder may appear after a use in traversal order only if the tree
	// violates lexical scoping; filter conservatively so FreeVars is exact
	// for well-formed trees and still terminates for malformed ones.
	out := free[:0]
	for _, v := range free {
		if !bound[v] {
			out = append(out, v)
		}
	}
	return out
}

// Binders returns every variable bound by a parameter list within n, in
// traversal order.
func Binders(n Node) []*Var {
	var out []*Var
	Walk(n, func(m Node) bool {
		if a, ok := m.(*Abs); ok {
			out = append(out, a.Params...)
		}
		return true
	})
	return out
}

// Walk traverses n in depth-first pre-order, calling f for every node.
// If f returns false the children of the node are not visited.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *Abs:
		Walk(n.Body, f)
	case *App:
		Walk(n.Fn, f)
		for _, a := range n.Args {
			Walk(a, f)
		}
	}
}

// Size returns the number of nodes in n. The reduction rules of paper §3
// each strictly decrease Size, which is the termination argument for the
// reduction pass.
func Size(n Node) int {
	size := 0
	Walk(n, func(Node) bool { size++; return true })
	return size
}

// MaxVarID returns the largest variable ID occurring in n (as binder or
// use), or 0 if n contains no variables. It seeds VarGen when a tree is
// reconstructed from persistent storage.
func MaxVarID(n Node) int {
	max := 0
	Walk(n, func(m Node) bool {
		switch m := m.(type) {
		case *Var:
			if m.ID > max {
				max = m.ID
			}
		case *Abs:
			for _, p := range m.Params {
				if p.ID > max {
					max = p.ID
				}
			}
		}
		return true
	})
	return max
}
