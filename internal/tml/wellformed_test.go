package tml

import (
	"errors"
	"testing"
)

// testSigs resolves signatures for the primitives used in checker tests.
func testSigs(name string) (Signature, bool) {
	switch name {
	case "+", "-", "*", "/", "%":
		return Signature{NVals: 2, NConts: 2}, true
	case "<", ">", "<=", ">=":
		return Signature{NVals: 2, NConts: 2}, true
	case "[]":
		return Signature{NVals: 2, NConts: 1}, true
	case "==":
		return Signature{NVals: -1, NConts: -1}, true
	case "Y":
		return Signature{NVals: 1, NConts: 0}, true
	case "array":
		return Signature{NVals: -1, NConts: 1}, true
	}
	return Signature{}, false
}

func checkSrc(t *testing.T, src string) error {
	t.Helper()
	n, err := Parse(src, testOpts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return Check(n, CheckOpts{Signatures: testSigs, AllowFree: FreeVars(n)})
}

func TestCheckAcceptsWellFormed(t *testing.T) {
	good := []string{
		"(+ 1 2 ce cc)",
		"(proc(x ce cc) (+ x 1 ce cc) 5 e k)",
		"(cont(t) (k t) 3)",
		"(== x 1 2 cont()(k 1) cont()(k 2) cont()(k 0))",
		"([] a 3 cont(t) (k t))",
		`(Y proc(!c0 !for !c)
		   (c cont() (for 1)
		      cont(i) (> i 10 cont()(k ok) cont()(for i))))`,
	}
	for _, src := range good {
		if err := checkSrc(t, src); err != nil {
			t.Errorf("Check(%q) = %v, want nil", src, err)
		}
	}
}

func TestCheckRejectsIllFormed(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"literal in functional position", "(3 x)"},
		{"beta arity mismatch", "(cont(a b) (k a b) 1)"},
		{"prim value arity", "(+ 1 ce cc)"},
		{"prim cont arity", "([] a 1 cont(t)(k t) cont(u)(k u))"},
	}
	for _, tt := range bad {
		if err := checkSrc(t, tt.src); err == nil {
			t.Errorf("%s: Check(%q) = nil, want error", tt.name, tt.src)
		} else if !errors.Is(err, ErrIllFormed) {
			t.Errorf("%s: error %v does not wrap ErrIllFormed", tt.name, err)
		}
	}
}

func TestCheckUnknownPrimitive(t *testing.T) {
	g := NewVarGen()
	cc := g.FreshCont("cc")
	app := NewApp(NewPrim("frobnicate"), Int(1), cc)
	err := Check(app, CheckOpts{Signatures: testSigs, AllowFree: []*Var{cc}})
	if err == nil {
		t.Error("unknown primitive accepted")
	}
}

func TestCheckUniqueBinding(t *testing.T) {
	// Build a tree where the same *Var is bound twice — impossible to
	// parse, so construct it directly (the paper's forbidden example
	// λ(x)(λ(x)app val)).
	g := NewVarGen()
	x := g.Fresh("x")
	k := g.FreshCont("k")
	inner := &Abs{Params: []*Var{x}, Body: NewApp(k, x)}
	outer := &Abs{Params: []*Var{x}, Body: NewApp(inner, Int(1))}
	err := Check(outer, CheckOpts{Signatures: testSigs, AllowFree: []*Var{k}})
	if err == nil {
		t.Fatal("double binding not rejected")
	}
}

func TestCheckContEscape(t *testing.T) {
	// A continuation variable passed in a value position of a primitive.
	g := NewVarGen()
	k := g.FreshCont("k")
	ce := g.FreshCont("ce")
	cc := g.FreshCont("cc")
	app := NewApp(NewPrim("+"), k, Int(1), ce, cc)
	err := Check(app, CheckOpts{Signatures: testSigs, AllowFree: []*Var{k, ce, cc}})
	if err == nil {
		t.Fatal("escaping continuation not rejected")
	}
}

func TestCheckFreeVariable(t *testing.T) {
	g := NewVarGen()
	x := g.Fresh("x")
	cc := g.FreshCont("cc")
	app := NewApp(cc, x)
	if err := Check(app, CheckOpts{Signatures: testSigs}); err == nil {
		t.Error("unlisted free variable accepted")
	}
	if err := Check(app, CheckOpts{Signatures: testSigs, AllowFree: []*Var{x, cc}}); err != nil {
		t.Errorf("allowed free variable rejected: %v", err)
	}
}

func TestCheckProcShape(t *testing.T) {
	// An abstraction with one continuation parameter in the middle is
	// neither proc, cont nor Y-shaped.
	g := NewVarGen()
	a := g.Fresh("a")
	k := g.FreshCont("k")
	b := g.Fresh("b")
	bad := &Abs{Params: []*Var{a, k, b}, Body: NewApp(k, a, b)}
	if err := Check(bad, CheckOpts{Signatures: testSigs}); err == nil {
		t.Error("malformed parameter shape accepted")
	}
}

func TestSplitArgs(t *testing.T) {
	g := NewVarGen()
	k1 := g.FreshCont("k1")
	k2 := g.FreshCont("k2")
	x := g.Fresh("x")
	vals, conts := SplitArgs([]Value{x, Int(1), Int(2), k1, k2})
	if len(vals) != 3 || len(conts) != 2 {
		t.Errorf("SplitArgs = %d vals, %d conts; want 3, 2", len(vals), len(conts))
	}
	vals, conts = SplitArgs([]Value{x})
	if len(vals) != 1 || len(conts) != 0 {
		t.Errorf("SplitArgs(no conts) = %d, %d", len(vals), len(conts))
	}
}
