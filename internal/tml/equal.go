package tml

// AlphaEqual reports whether two TML terms are equal up to consistent
// renaming of bound variables (α-equivalence). Free variables must be
// identical pointers, or have equal names when both occur free.
func AlphaEqual(a, b Node) bool {
	return alphaEq(a, b, make(map[*Var]*Var), make(map[*Var]*Var))
}

func alphaEq(a, b Node, l2r, r2l map[*Var]*Var) bool {
	switch a := a.(type) {
	case *Lit:
		bb, ok := b.(*Lit)
		return ok && a.Eq(bb)
	case *Oid:
		bb, ok := b.(*Oid)
		return ok && a.Ref == bb.Ref
	case *Prim:
		bb, ok := b.(*Prim)
		return ok && a.Name == bb.Name
	case *Var:
		bb, ok := b.(*Var)
		if !ok {
			return false
		}
		if w, bound := l2r[a]; bound {
			return w == bb
		}
		if _, bound := r2l[bb]; bound {
			return false
		}
		// Both free: compare identity first, then printed name so that
		// independently parsed terms with identical free names compare
		// equal.
		return a == bb || a.String() == bb.String()
	case *Abs:
		bb, ok := b.(*Abs)
		if !ok || len(a.Params) != len(bb.Params) {
			return false
		}
		for i := range a.Params {
			if a.Params[i].Cont != bb.Params[i].Cont {
				return false
			}
			l2r[a.Params[i]] = bb.Params[i]
			r2l[bb.Params[i]] = a.Params[i]
		}
		eq := alphaEq(a.Body, bb.Body, l2r, r2l)
		for i := range a.Params {
			delete(l2r, a.Params[i])
			delete(r2l, bb.Params[i])
		}
		return eq
	case *App:
		bb, ok := b.(*App)
		if !ok || len(a.Args) != len(bb.Args) {
			return false
		}
		if !alphaEq(a.Fn, bb.Fn, l2r, r2l) {
			return false
		}
		for i := range a.Args {
			if !alphaEq(a.Args[i], bb.Args[i], l2r, r2l) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
