package machine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"tycoon/internal/store"
)

// This file implements the persistent encoding of TAM programs. Compiled
// code lives in the store next to the PTML tree of the same function
// (paper Fig. 3); the ratio between the two encodings is the code-size
// experiment E3.

// ErrBadCode wraps TAM decoding failures.
var ErrBadCode = errors.New("machine: corrupt TAM code")

const tamMagic = 'T'
const tamVersion = 1

// EncodeProgram serialises a compiled program.
func EncodeProgram(p *Program) ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte(tamMagic)
	b.WriteByte(tamVersion)
	putUv(&b, uint64(p.Entry))
	putUv(&b, uint64(len(p.Blocks)))
	for _, blk := range p.Blocks {
		putStr(&b, blk.Name)
		putUv(&b, uint64(blk.NParams))
		putUv(&b, uint64(blk.NSlots))
		putUv(&b, uint64(len(blk.FreeNames)))
		for _, n := range blk.FreeNames {
			putStr(&b, n)
		}
		putUv(&b, uint64(len(blk.Labels)))
		for _, l := range blk.Labels {
			putUv(&b, uint64(l.PC))
			putSlots(&b, l.ParamSlots)
		}
		putUv(&b, uint64(len(blk.Lits)))
		for _, v := range blk.Lits {
			if err := putLit(&b, v); err != nil {
				return nil, err
			}
		}
		putUv(&b, uint64(len(blk.Instrs)))
		for i := range blk.Instrs {
			putInstr(&b, &blk.Instrs[i])
		}
	}
	return b.Bytes(), nil
}

// DecodeProgram deserialises a compiled program.
func DecodeProgram(data []byte) (*Program, error) {
	if len(data) < 2 || data[0] != tamMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCode)
	}
	if data[1] != tamVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCode, data[1])
	}
	r := &tamReader{b: data, pos: 2}
	p := &Program{Entry: int(r.uv())}
	nblocks := int(r.uv())
	for i := 0; i < nblocks && r.err == nil; i++ {
		blk := &CodeBlock{
			Name:    r.str(),
			NParams: int(r.uv()),
			NSlots:  int(r.uv()),
		}
		nfree := int(r.uv())
		for j := 0; j < nfree && r.err == nil; j++ {
			blk.FreeNames = append(blk.FreeNames, r.str())
		}
		nlabels := int(r.uv())
		for j := 0; j < nlabels && r.err == nil; j++ {
			blk.Labels = append(blk.Labels, LabelInfo{PC: int(r.uv()), ParamSlots: r.slots()})
		}
		nlits := int(r.uv())
		for j := 0; j < nlits && r.err == nil; j++ {
			blk.Lits = append(blk.Lits, r.lit())
		}
		ninstrs := int(r.uv())
		for j := 0; j < ninstrs && r.err == nil; j++ {
			blk.Instrs = append(blk.Instrs, r.instr())
		}
		p.Blocks = append(p.Blocks, blk)
	}
	if r.err != nil {
		return nil, r.err
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return nil, fmt.Errorf("%w: entry %d of %d blocks", ErrBadCode, p.Entry, len(p.Blocks))
	}
	prepareProgram(p, nil)
	return p, nil
}

func putUv(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func putIv(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	b.Write(buf[:n])
}

func putStr(b *bytes.Buffer, s string) {
	putUv(b, uint64(len(s)))
	b.WriteString(s)
}

func putLit(b *bytes.Buffer, v Value) error {
	switch v := v.(type) {
	case Int:
		b.WriteByte('i')
		putIv(b, int64(v))
	case Real:
		b.WriteByte('r')
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(v)))
		b.Write(buf[:])
	case Bool:
		b.WriteByte('b')
		if v {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case Char:
		b.WriteByte('c')
		b.WriteByte(byte(v))
	case Str:
		b.WriteByte('s')
		putStr(b, string(v))
	case Unit:
		b.WriteByte('u')
	case Ref:
		b.WriteByte('o')
		putUv(b, uint64(v.OID))
	default:
		return fmt.Errorf("machine: literal pool cannot hold %T", v)
	}
	return nil
}

func putSrc(b *bytes.Buffer, s Src) {
	b.WriteByte(byte(s.Kind))
	putUv(b, uint64(s.Idx))
}

func putSlots(b *bytes.Buffer, slots []int) {
	putUv(b, uint64(len(slots)))
	for _, s := range slots {
		putUv(b, uint64(s))
	}
}

func putInstr(b *bytes.Buffer, in *Instr) {
	b.WriteByte(byte(in.Op))
	switch in.Op {
	case OpMove, OpSetCell:
		putUv(b, uint64(in.Dst))
		putSrc(b, in.Srcs[0])
	case OpClos:
		putUv(b, uint64(in.Dst))
		putUv(b, uint64(in.Block))
		putUv(b, uint64(len(in.Srcs)))
		for _, s := range in.Srcs {
			putSrc(b, s)
		}
	case OpCont:
		putUv(b, uint64(in.Dst))
		putUv(b, uint64(in.Target))
		putSlots(b, in.ParamSlots)
	case OpCell:
		putUv(b, uint64(in.Dst))
	case OpJump:
		putUv(b, uint64(in.Target))
	case OpPrim:
		putStr(b, in.Prim)
		putUv(b, uint64(len(in.Srcs)))
		for _, s := range in.Srcs {
			putSrc(b, s)
		}
		putUv(b, uint64(len(in.Conts)))
		for _, c := range in.Conts {
			if c.IsLabel {
				b.WriteByte(1)
				putUv(b, uint64(c.PC))
				putSlots(b, c.ParamSlots)
			} else {
				b.WriteByte(0)
				putSrc(b, c.Src)
			}
		}
	case OpCall:
		putSrc(b, in.Fn)
		putUv(b, uint64(len(in.Srcs)))
		for _, s := range in.Srcs {
			putSrc(b, s)
		}
	}
}

type tamReader struct {
	b   []byte
	pos int
	err error
}

func (r *tamReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at %d", ErrBadCode, what, r.pos)
	}
}

func (r *tamReader) u8() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail("byte")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *tamReader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.pos += n
	return v
}

func (r *tamReader) iv() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *tamReader) str() string {
	n := int(r.uv())
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail("string")
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *tamReader) lit() Value {
	switch r.u8() {
	case 'i':
		return Int(r.iv())
	case 'r':
		if r.pos+8 > len(r.b) {
			r.fail("real")
			return Unit{}
		}
		bits := binary.LittleEndian.Uint64(r.b[r.pos:])
		r.pos += 8
		return Real(math.Float64frombits(bits))
	case 'b':
		return Bool(r.u8() != 0)
	case 'c':
		return Char(r.u8())
	case 's':
		return Str(r.str())
	case 'u':
		return Unit{}
	case 'o':
		return Ref{OID: store.OID(r.uv())}
	default:
		r.fail("literal tag")
		return Unit{}
	}
}

func (r *tamReader) src() Src {
	return Src{Kind: SrcKind(r.u8()), Idx: int(r.uv())}
}

func (r *tamReader) slots() []int {
	n := int(r.uv())
	if r.err != nil || n < 0 || n > len(r.b) {
		r.fail("slot list")
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.uv())
	}
	return out
}

func (r *tamReader) instr() Instr {
	in := Instr{Op: Op(r.u8())}
	switch in.Op {
	case OpMove, OpSetCell:
		in.Dst = int(r.uv())
		in.Srcs = []Src{r.src()}
	case OpClos:
		in.Dst = int(r.uv())
		in.Block = int(r.uv())
		n := int(r.uv())
		for i := 0; i < n && r.err == nil; i++ {
			in.Srcs = append(in.Srcs, r.src())
		}
	case OpCont:
		in.Dst = int(r.uv())
		in.Target = int(r.uv())
		in.ParamSlots = r.slots()
	case OpCell:
		in.Dst = int(r.uv())
	case OpJump:
		in.Target = int(r.uv())
	case OpPrim:
		in.Prim = r.str()
		n := int(r.uv())
		for i := 0; i < n && r.err == nil; i++ {
			in.Srcs = append(in.Srcs, r.src())
		}
		nc := int(r.uv())
		for i := 0; i < nc && r.err == nil; i++ {
			if r.u8() == 1 {
				in.Conts = append(in.Conts, ContRef{IsLabel: true, PC: int(r.uv()), ParamSlots: r.slots()})
			} else {
				in.Conts = append(in.Conts, ContRef{Src: r.src()})
			}
		}
	case OpCall:
		in.Fn = r.src()
		n := int(r.uv())
		for i := 0; i < n && r.err == nil; i++ {
			in.Srcs = append(in.Srcs, r.src())
		}
	default:
		r.fail("opcode")
	}
	return in
}
