package machine

import (
	"fmt"

	"tycoon/internal/store"
)

// This file implements lazy linking: applying an OID reference to a
// persistent closure record swizzles it into an executable TAM closure,
// resolving the R-value bindings of its free variables from the closure
// record (paper §4.1, Fig. 3). Linking is cached per machine; decoded
// code blobs are additionally shared across closures.

// linkClosure resolves a persistent closure record into a runtime value.
func (m *Machine) linkClosure(oid store.OID) (Value, error) {
	m.linkMu.Lock()
	v, ok := m.linked[oid]
	m.linkMu.Unlock()
	if ok {
		return v, nil
	}
	if m.Store == nil {
		return nil, rtErr("link", "no store attached")
	}
	obj, err := m.Store.Get(oid)
	if err != nil {
		return nil, rtErr("link", "%v", err)
	}
	clo, ok := obj.(*store.Closure)
	if !ok {
		return nil, rtErr("link", "oid 0x%x is a %s, not a closure", uint64(oid), obj.Kind())
	}
	prog, err := m.program(clo.Code)
	if err != nil {
		return nil, fmt.Errorf("linking %s: %w", clo.Name, err)
	}
	entry := prog.EntryBlock()
	free := make([]Value, len(entry.FreeNames))
	for i, name := range entry.FreeNames {
		val, ok := bindingByName(clo.Bindings, name)
		if !ok {
			return nil, rtErr("link", "%s: no binding for free variable %s", clo.Name, name)
		}
		free[i] = FromStoreVal(val)
	}
	built := Value(&TAMClosure{Prog: prog, Blk: prog.Entry, Free: free, Name: clo.Name})
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	// A concurrent linker (or OverrideLink from the reflective optimizer)
	// may have installed a value meanwhile; first writer wins so an
	// installed override is never clobbered by a stale lazy link.
	if v, ok := m.linked[oid]; ok {
		return v, nil
	}
	if m.linked == nil {
		m.linked = make(map[store.OID]Value)
	}
	m.linked[oid] = built
	return built, nil
}

func bindingByName(bs []store.Binding, name string) (store.Val, bool) {
	for _, b := range bs {
		if b.Name == name {
			return b.Val, true
		}
	}
	return store.Val{}, false
}

// program decodes (with caching) a TAM code blob.
func (m *Machine) program(oid store.OID) (*Program, error) {
	m.linkMu.Lock()
	p, ok := m.programs[oid]
	m.linkMu.Unlock()
	if ok {
		return p, nil
	}
	obj, err := m.Store.Get(oid)
	if err != nil {
		return nil, err
	}
	blob, ok := obj.(*store.Blob)
	if !ok {
		return nil, rtErr("link", "code oid 0x%x is a %s, not a blob", uint64(oid), obj.Kind())
	}
	decoded, err := DecodeProgram(blob.Bytes)
	if err != nil {
		return nil, err
	}
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	if p, ok := m.programs[oid]; ok {
		return p, nil
	}
	if m.programs == nil {
		m.programs = make(map[store.OID]*Program)
	}
	m.programs[oid] = decoded
	return decoded, nil
}

// Relink invalidates the link caches for one OID (after the reflective
// optimizer replaced its code) or for everything when oid is Nil.
func (m *Machine) Relink(oid store.OID) {
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	if oid == store.Nil {
		m.linked = nil
		m.programs = nil
		return
	}
	delete(m.linked, oid)
}

// OverrideLink binds an OID to a specific runtime value, overriding lazy
// linking; the reflective optimizer uses this to install dynamically
// optimized code without touching the persistent original.
func (m *Machine) OverrideLink(oid store.OID, v Value) {
	m.linkMu.Lock()
	defer m.linkMu.Unlock()
	if m.linked == nil {
		m.linked = make(map[store.OID]Value)
	}
	m.linked[oid] = v
}

// CallExport looks up an exported member of a stored module and applies
// it — the host-side entry point examples and benchmarks use.
func (m *Machine) CallExport(moduleOID store.OID, member string, args []Value) (Value, error) {
	obj, err := m.Store.Get(moduleOID)
	if err != nil {
		return nil, err
	}
	mod, ok := obj.(*store.Module)
	if !ok {
		return nil, rtErr("call", "oid 0x%x is a %s, not a module", uint64(moduleOID), obj.Kind())
	}
	val, ok := mod.Lookup(member)
	if !ok {
		return nil, rtErr("call", "module %s exports no %s", mod.Name, member)
	}
	return m.Apply(FromStoreVal(val), args)
}
