package machine

import (
	"fmt"

	"tycoon/internal/store"
)

// This file implements lazy linking: applying an OID reference to a
// persistent closure record swizzles it into an executable TAM closure,
// resolving the R-value bindings of its free variables from the closure
// record (paper §4.1, Fig. 3). Linking is cached per machine; decoded
// code blobs are additionally shared across closures.

// linkClosure resolves a persistent closure record into a runtime value.
func (m *Machine) linkClosure(oid store.OID) (Value, error) {
	if v, ok := m.linked[oid]; ok {
		return v, nil
	}
	if m.Store == nil {
		return nil, rtErr("link", "no store attached")
	}
	obj, err := m.Store.Get(oid)
	if err != nil {
		return nil, rtErr("link", "%v", err)
	}
	clo, ok := obj.(*store.Closure)
	if !ok {
		return nil, rtErr("link", "oid 0x%x is a %s, not a closure", uint64(oid), obj.Kind())
	}
	prog, err := m.program(clo.Code)
	if err != nil {
		return nil, fmt.Errorf("linking %s: %w", clo.Name, err)
	}
	entry := prog.EntryBlock()
	free := make([]Value, len(entry.FreeNames))
	for i, name := range entry.FreeNames {
		val, ok := bindingByName(clo.Bindings, name)
		if !ok {
			return nil, rtErr("link", "%s: no binding for free variable %s", clo.Name, name)
		}
		free[i] = FromStoreVal(val)
	}
	v := &TAMClosure{Prog: prog, Blk: prog.Entry, Free: free, Name: clo.Name}
	if m.linked == nil {
		m.linked = make(map[store.OID]Value)
	}
	m.linked[oid] = v
	return v, nil
}

func bindingByName(bs []store.Binding, name string) (store.Val, bool) {
	for _, b := range bs {
		if b.Name == name {
			return b.Val, true
		}
	}
	return store.Val{}, false
}

// program decodes (with caching) a TAM code blob.
func (m *Machine) program(oid store.OID) (*Program, error) {
	if p, ok := m.programs[oid]; ok {
		return p, nil
	}
	obj, err := m.Store.Get(oid)
	if err != nil {
		return nil, err
	}
	blob, ok := obj.(*store.Blob)
	if !ok {
		return nil, rtErr("link", "code oid 0x%x is a %s, not a blob", uint64(oid), obj.Kind())
	}
	p, err := DecodeProgram(blob.Bytes)
	if err != nil {
		return nil, err
	}
	if m.programs == nil {
		m.programs = make(map[store.OID]*Program)
	}
	m.programs[oid] = p
	return p, nil
}

// Relink invalidates the link caches for one OID (after the reflective
// optimizer replaced its code) or for everything when oid is Nil.
func (m *Machine) Relink(oid store.OID) {
	if oid == store.Nil {
		m.linked = nil
		m.programs = nil
		return
	}
	delete(m.linked, oid)
}

// OverrideLink binds an OID to a specific runtime value, overriding lazy
// linking; the reflective optimizer uses this to install dynamically
// optimized code without touching the persistent original.
func (m *Machine) OverrideLink(oid store.OID, v Value) {
	if m.linked == nil {
		m.linked = make(map[store.OID]Value)
	}
	m.linked[oid] = v
}

// CallExport looks up an exported member of a stored module and applies
// it — the host-side entry point examples and benchmarks use.
func (m *Machine) CallExport(moduleOID store.OID, member string, args []Value) (Value, error) {
	obj, err := m.Store.Get(moduleOID)
	if err != nil {
		return nil, err
	}
	mod, ok := obj.(*store.Module)
	if !ok {
		return nil, rtErr("call", "oid 0x%x is a %s, not a module", uint64(moduleOID), obj.Kind())
	}
	val, ok := mod.Lookup(member)
	if !ok {
		return nil, rtErr("call", "module %s exports no %s", mod.Name, member)
	}
	return m.Apply(FromStoreVal(val), args)
}
