package machine

import (
	"fmt"
	"math"

	"tycoon/internal/prim"
	"tycoon/internal/store"
)

// This file implements the runtime executors for the standard primitive
// set of paper Fig. 2. Each executor is the runtime counterpart of the
// descriptor registered in package prim; by definition every primitive
// calls exactly one of its continuation arguments tail-recursively
// (paper §2.3), which the Outcome value expresses.

// stdExecs maps primitive names to executors. The table is populated at
// init and never mutated afterwards, so concurrent machines may share it.
var stdExecs = map[string]ExecFunc{}

// throw transfers control to the topmost dynamic exception handler; with
// an empty handler stack the program aborts.
func (m *Machine) throw(op string, v Value) (Outcome, error) {
	if h, ok := m.PopHandler(); ok {
		return Outcome{Tail: &TailCall{Fn: h, Args: []Value{v}}}, nil
	}
	return Outcome{}, &Exception{Value: v}
}

func wantInt(op string, v Value) (int64, error) {
	i, ok := v.(Int)
	if !ok {
		return 0, rtErr(op, "expected integer, got %s", v.Show())
	}
	return int64(i), nil
}

func wantReal(op string, v Value) (float64, error) {
	r, ok := v.(Real)
	if !ok {
		return 0, rtErr(op, "expected real, got %s", v.Show())
	}
	return float64(r), nil
}

func wantBool(op string, v Value) (bool, error) {
	b, ok := v.(Bool)
	if !ok {
		return false, rtErr(op, "expected boolean, got %s", v.Show())
	}
	return bool(b), nil
}

func wantStr(op string, v Value) (string, error) {
	s, ok := v.(Str)
	if !ok {
		return "", rtErr(op, "expected string, got %s", v.Show())
	}
	return string(s), nil
}

// cc returns the standard success outcome: invoke continuation branch with
// results.
func cc(branch int, results ...Value) Outcome {
	return Outcome{Branch: branch, Results: results}
}

func init() {
	registerIntExecs()
	registerBitExecs()
	registerConvExecs()
	registerArrayExecs()
	registerCaseExecs()
	registerControlExecs()
	registerRealExecs()
	registerBoolExecs()
	registerStringExecs()
	registerIOExecs()
}

func registerIntExecs() {
	// (p a b ce cc): conts[0] is the exception continuation, conts[1] the
	// normal continuation.
	type intOp struct {
		name string
		eval func(a, b int64) (int64, bool)
	}
	ops := []intOp{
		{"+", func(a, b int64) (int64, bool) { return a + b, !prim.AddOverflows(a, b) }},
		{"-", func(a, b int64) (int64, bool) { return a - b, !prim.SubOverflows(a, b) }},
		{"*", func(a, b int64) (int64, bool) { return a * b, !prim.MulOverflows(a, b) }},
		{"/", func(a, b int64) (int64, bool) {
			if b == 0 || (a == math.MinInt64 && b == -1) {
				return 0, false
			}
			return a / b, true
		}},
		{"%", func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
	}
	for _, op := range ops {
		op := op
		stdExecs[op.name] = func(m *Machine, vals, conts []Value) (Outcome, error) {
			a, err := wantInt(op.name, vals[0])
			if err != nil {
				return Outcome{}, err
			}
			b, err := wantInt(op.name, vals[1])
			if err != nil {
				return Outcome{}, err
			}
			r, ok := op.eval(a, b)
			if !ok {
				return cc(0, Str(fmt.Sprintf("%s: arithmetic fault on %d, %d", op.name, a, b))), nil
			}
			return cc(1, IntValue(r)), nil
		}
	}
	stdExecs["neg"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantInt("neg", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		if a == math.MinInt64 {
			return cc(0, Str("neg: overflow")), nil
		}
		return cc(1, IntValue(-a)), nil
	}

	cmps := map[string]func(a, b int64) bool{
		"<":  func(a, b int64) bool { return a < b },
		">":  func(a, b int64) bool { return a > b },
		"<=": func(a, b int64) bool { return a <= b },
		">=": func(a, b int64) bool { return a >= b },
	}
	for name, eval := range cmps {
		name, eval := name, eval
		stdExecs[name] = func(m *Machine, vals, conts []Value) (Outcome, error) {
			a, err := wantInt(name, vals[0])
			if err != nil {
				return Outcome{}, err
			}
			b, err := wantInt(name, vals[1])
			if err != nil {
				return Outcome{}, err
			}
			if eval(a, b) {
				return cc(0), nil
			}
			return cc(1), nil
		}
	}
}

func registerBitExecs() {
	ops := map[string]func(a, b int64) int64{
		"<<": func(a, b int64) int64 { return a << uint64(b&63) },
		">>": func(a, b int64) int64 { return a >> uint64(b&63) },
		"&":  func(a, b int64) int64 { return a & b },
		"|":  func(a, b int64) int64 { return a | b },
		"^":  func(a, b int64) int64 { return a ^ b },
	}
	for name, eval := range ops {
		name, eval := name, eval
		stdExecs[name] = func(m *Machine, vals, conts []Value) (Outcome, error) {
			a, err := wantInt(name, vals[0])
			if err != nil {
				return Outcome{}, err
			}
			b, err := wantInt(name, vals[1])
			if err != nil {
				return Outcome{}, err
			}
			return cc(0, IntValue(eval(a, b))), nil
		}
	}
}

func registerConvExecs() {
	stdExecs["char2int"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		c, ok := vals[0].(Char)
		if !ok {
			return Outcome{}, rtErr("char2int", "expected char, got %s", vals[0].Show())
		}
		return cc(0, IntValue(int64(c))), nil
	}
	stdExecs["int2char"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		i, err := wantInt("int2char", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, CharValue(byte(i))), nil
	}
	stdExecs["int2real"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		i, err := wantInt("int2real", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, Real(float64(i))), nil
	}
	stdExecs["real2int"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		r, err := wantReal("real2int", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		if math.IsNaN(r) || r > math.MaxInt64 || r < math.MinInt64 {
			return cc(0, Str("real2int: out of range")), nil
		}
		return cc(1, IntValue(int64(r))), nil
	}
}

func registerArrayExecs() {
	stdExecs["array"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		return cc(0, &Array{Elems: append([]Value(nil), vals...)}), nil
	}
	stdExecs["vector"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		return cc(0, &Vector{Elems: append([]Value(nil), vals...)}), nil
	}
	// (anew n init c): object array of n slots, all init. Negative sizes
	// clamp to zero so that allocation can never fail, which keeps the
	// optimizer's dead-call elimination of pure allocations sound.
	stdExecs["anew"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		n, err := wantInt("anew", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		if n < 0 {
			n = 0
		}
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = vals[1]
		}
		return cc(0, &Array{Elems: elems}), nil
	}
	// (new n b c): byte array of n bytes initialized with b.
	stdExecs["new"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		n, err := wantInt("new", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantInt("new", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		if n < 0 {
			n = 0
		}
		bytes := make([]byte, n)
		for i := range bytes {
			bytes[i] = byte(b)
		}
		return cc(0, &Bytes{B: bytes}), nil
	}
	stdExecs["[]"] = execIndexLoad
	stdExecs["[:=]"] = execIndexStore
	stdExecs["b[]"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		i, err := wantInt("b[]", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		switch a := vals[0].(type) {
		case *Bytes:
			if i < 0 || i >= int64(len(a.B)) {
				return m.throw("b[]", Str(fmt.Sprintf("index %d out of range [0,%d)", i, len(a.B))))
			}
			return cc(0, CharValue(a.B[i])), nil
		case Ref:
			obj, err := m.fetch("b[]", a)
			if err != nil {
				return Outcome{}, err
			}
			ba, ok := obj.(*store.ByteArray)
			if !ok {
				return Outcome{}, rtErr("b[]", "object is %s, want bytearray", obj.Kind())
			}
			if i < 0 || i >= int64(len(ba.Bytes)) {
				return m.throw("b[]", Str("index out of range"))
			}
			return cc(0, CharValue(ba.Bytes[i])), nil
		default:
			return Outcome{}, rtErr("b[]", "expected byte array, got %s", vals[0].Show())
		}
	}
	stdExecs["b[:=]"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		i, err := wantInt("b[:=]", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		ch, ok := vals[2].(Char)
		if !ok {
			return Outcome{}, rtErr("b[:=]", "expected char, got %s", vals[2].Show())
		}
		switch a := vals[0].(type) {
		case *Bytes:
			if i < 0 || i >= int64(len(a.B)) {
				return m.throw("b[:=]", Str("index out of range"))
			}
			a.B[i] = byte(ch)
			return cc(0, unitVal), nil
		case Ref:
			obj, err := m.fetch("b[:=]", a)
			if err != nil {
				return Outcome{}, err
			}
			ba, ok := obj.(*store.ByteArray)
			if !ok {
				return Outcome{}, rtErr("b[:=]", "object is %s, want bytearray", obj.Kind())
			}
			if i < 0 || i >= int64(len(ba.Bytes)) {
				return m.throw("b[:=]", Str("index out of range"))
			}
			ba.Bytes[i] = byte(ch)
			m.Store.MarkDirty(a.OID)
			return cc(0, unitVal), nil
		default:
			return Outcome{}, rtErr("b[:=]", "expected byte array, got %s", vals[0].Show())
		}
	}
	stdExecs["size"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		switch a := vals[0].(type) {
		case *Array:
			return cc(0, IntValue(int64(len(a.Elems)))), nil
		case *Vector:
			return cc(0, IntValue(int64(len(a.Elems)))), nil
		case *Bytes:
			return cc(0, IntValue(int64(len(a.B)))), nil
		case Str:
			return cc(0, IntValue(int64(len(a)))), nil
		case Ref:
			obj, err := m.fetch("size", a)
			if err != nil {
				return Outcome{}, err
			}
			switch o := obj.(type) {
			case *store.Array:
				return cc(0, IntValue(int64(len(o.Elems)))), nil
			case *store.Tuple:
				return cc(0, IntValue(int64(len(o.Fields)))), nil
			case *store.ByteArray:
				return cc(0, IntValue(int64(len(o.Bytes)))), nil
			case *store.Relation:
				return cc(0, IntValue(int64(o.NumRows()))), nil
			default:
				return Outcome{}, rtErr("size", "object is %s", obj.Kind())
			}
		default:
			return Outcome{}, rtErr("size", "expected aggregate, got %s", vals[0].Show())
		}
	}
	stdExecs["move"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		src, ok := vals[0].(*Array)
		if !ok {
			return Outcome{}, rtErr("move", "source is %s", vals[0].Show())
		}
		dst, ok := vals[2].(*Array)
		if !ok {
			return Outcome{}, rtErr("move", "destination is %s", vals[2].Show())
		}
		soff, err := wantInt("move", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		doff, err := wantInt("move", vals[3])
		if err != nil {
			return Outcome{}, err
		}
		n, err := wantInt("move", vals[4])
		if err != nil {
			return Outcome{}, err
		}
		if soff < 0 || doff < 0 || n < 0 ||
			soff+n > int64(len(src.Elems)) || doff+n > int64(len(dst.Elems)) {
			return m.throw("move", Str("range out of bounds"))
		}
		copy(dst.Elems[doff:doff+n], src.Elems[soff:soff+n])
		return cc(0, unitVal), nil
	}
	stdExecs["bmove"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		src, ok := vals[0].(*Bytes)
		if !ok {
			return Outcome{}, rtErr("bmove", "source is %s", vals[0].Show())
		}
		dst, ok := vals[2].(*Bytes)
		if !ok {
			return Outcome{}, rtErr("bmove", "destination is %s", vals[2].Show())
		}
		soff, err := wantInt("bmove", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		doff, err := wantInt("bmove", vals[3])
		if err != nil {
			return Outcome{}, err
		}
		n, err := wantInt("bmove", vals[4])
		if err != nil {
			return Outcome{}, err
		}
		if soff < 0 || doff < 0 || n < 0 ||
			soff+n > int64(len(src.B)) || doff+n > int64(len(dst.B)) {
			return m.throw("bmove", Str("range out of bounds"))
		}
		copy(dst.B[doff:doff+n], src.B[soff:soff+n])
		return cc(0, unitVal), nil
	}
}

func execIndexLoad(m *Machine, vals, conts []Value) (Outcome, error) {
	i, err := wantInt("[]", vals[1])
	if err != nil {
		return Outcome{}, err
	}
	switch a := vals[0].(type) {
	case *Array:
		if i < 0 || i >= int64(len(a.Elems)) {
			return m.throw("[]", Str(fmt.Sprintf("index %d out of range [0,%d)", i, len(a.Elems))))
		}
		return cc(0, a.Elems[i]), nil
	case *Vector:
		if i < 0 || i >= int64(len(a.Elems)) {
			return m.throw("[]", Str(fmt.Sprintf("index %d out of range [0,%d)", i, len(a.Elems))))
		}
		return cc(0, a.Elems[i]), nil
	case Ref:
		obj, err := m.fetch("[]", a)
		if err != nil {
			return Outcome{}, err
		}
		switch o := obj.(type) {
		case *store.Array:
			if i < 0 || i >= int64(len(o.Elems)) {
				return m.throw("[]", Str("index out of range"))
			}
			return cc(0, FromStoreVal(o.Elems[i])), nil
		case *store.Tuple:
			if i < 0 || i >= int64(len(o.Fields)) {
				return m.throw("[]", Str("index out of range"))
			}
			return cc(0, FromStoreVal(o.Fields[i])), nil
		case *store.Module:
			// Module member fetch by export index: the abstraction-barrier
			// access the reflective optimizer folds away (paper §4.1).
			if i < 0 || i >= int64(len(o.Exports)) {
				return m.throw("[]", Str("module export index out of range"))
			}
			return cc(0, FromStoreVal(o.Exports[i].Val)), nil
		default:
			return Outcome{}, rtErr("[]", "object is %s, want array, tuple or module", obj.Kind())
		}
	default:
		return Outcome{}, rtErr("[]", "expected array, got %s", vals[0].Show())
	}
}

func execIndexStore(m *Machine, vals, conts []Value) (Outcome, error) {
	i, err := wantInt("[:=]", vals[1])
	if err != nil {
		return Outcome{}, err
	}
	switch a := vals[0].(type) {
	case *Array:
		if i < 0 || i >= int64(len(a.Elems)) {
			return m.throw("[:=]", Str(fmt.Sprintf("index %d out of range [0,%d)", i, len(a.Elems))))
		}
		a.Elems[i] = vals[2]
		return cc(0, unitVal), nil
	case Ref:
		obj, err := m.fetch("[:=]", a)
		if err != nil {
			return Outcome{}, err
		}
		arr, ok := obj.(*store.Array)
		if !ok {
			return Outcome{}, rtErr("[:=]", "object is %s, want array", obj.Kind())
		}
		if i < 0 || i >= int64(len(arr.Elems)) {
			return m.throw("[:=]", Str("index out of range"))
		}
		sv, err := ToStoreVal(vals[2])
		if err != nil {
			return Outcome{}, err
		}
		arr.Elems[i] = sv
		m.Store.MarkDirty(a.OID)
		return cc(0, unitVal), nil
	default:
		return Outcome{}, rtErr("[:=]", "expected mutable array, got %s", vals[0].Show())
	}
}

func registerCaseExecs() {
	// (== v t₁…tₙ c₁…cₙ [cElse]): case analysis based on object identity.
	stdExecs["=="] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		if len(vals) == 0 {
			return Outcome{}, rtErr("==", "missing scrutinee")
		}
		v := vals[0]
		tags := vals[1:]
		hasElse := len(conts) == len(tags)+1
		if !hasElse && len(conts) != len(tags) {
			return Outcome{}, rtErr("==", "%d tags with %d branches", len(tags), len(conts))
		}
		for i, tag := range tags {
			if Eq(v, tag) {
				return cc(i), nil
			}
		}
		if hasElse {
			return cc(len(conts) - 1), nil
		}
		return m.throw("==", Str("case fell through without else branch"))
	}
}

func registerControlExecs() {
	stdExecs["pushHandler"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		if len(conts) != 2 {
			return Outcome{}, rtErr("pushHandler", "expected handler and continuation")
		}
		m.PushHandler(conts[0])
		return cc(1), nil
	}
	stdExecs["popHandler"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		if _, ok := m.PopHandler(); !ok {
			return Outcome{}, rtErr("popHandler", "handler stack is empty")
		}
		return cc(0), nil
	}
	stdExecs["raise"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		return m.throw("raise", vals[0])
	}
	stdExecs["ccall"] = execCCall
}

// hostCalls simulates the paper's C language function call primitive with
// a table of host functions (the mathematical routines the Tycoon runtime
// links against).
var hostCalls = map[string]func(args []float64) (float64, bool){
	"sqrt":  func(a []float64) (float64, bool) { return math.Sqrt(a[0]), len(a) == 1 && a[0] >= 0 },
	"sin":   func(a []float64) (float64, bool) { return math.Sin(a[0]), len(a) == 1 },
	"cos":   func(a []float64) (float64, bool) { return math.Cos(a[0]), len(a) == 1 },
	"atan":  func(a []float64) (float64, bool) { return math.Atan(a[0]), len(a) == 1 },
	"exp":   func(a []float64) (float64, bool) { return math.Exp(a[0]), len(a) == 1 },
	"log":   func(a []float64) (float64, bool) { return math.Log(a[0]), len(a) == 1 && a[0] > 0 },
	"floor": func(a []float64) (float64, bool) { return math.Floor(a[0]), len(a) == 1 },
	"pow":   func(a []float64) (float64, bool) { return math.Pow(a[0], a[1]), len(a) == 2 },
}

func execCCall(m *Machine, vals, conts []Value) (Outcome, error) {
	if len(vals) == 0 {
		return Outcome{}, rtErr("ccall", "missing function name")
	}
	name, err := wantStr("ccall", vals[0])
	if err != nil {
		return Outcome{}, err
	}
	fn, ok := hostCalls[name]
	if !ok {
		return Outcome{}, rtErr("ccall", "unknown host function %q", name)
	}
	args := make([]float64, len(vals)-1)
	for i, v := range vals[1:] {
		r, err := wantReal("ccall "+name, v)
		if err != nil {
			return Outcome{}, err
		}
		args[i] = r
	}
	r, ok := fn(args)
	if !ok {
		return cc(0, Str(fmt.Sprintf("ccall %s: domain fault", name))), nil
	}
	return cc(1, Real(r)), nil
}

func registerRealExecs() {
	type realOp struct {
		name string
		eval func(a, b float64) float64
	}
	ops := []realOp{
		{"r+", func(a, b float64) float64 { return a + b }},
		{"r-", func(a, b float64) float64 { return a - b }},
		{"r*", func(a, b float64) float64 { return a * b }},
		{"r/", func(a, b float64) float64 { return a / b }},
	}
	for _, op := range ops {
		op := op
		stdExecs[op.name] = func(m *Machine, vals, conts []Value) (Outcome, error) {
			a, err := wantReal(op.name, vals[0])
			if err != nil {
				return Outcome{}, err
			}
			b, err := wantReal(op.name, vals[1])
			if err != nil {
				return Outcome{}, err
			}
			r := op.eval(a, b)
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return cc(0, Str(op.name+": arithmetic fault")), nil
			}
			return cc(1, Real(r)), nil
		}
	}
	cmps := map[string]func(a, b float64) bool{
		"r<":  func(a, b float64) bool { return a < b },
		"r>":  func(a, b float64) bool { return a > b },
		"r<=": func(a, b float64) bool { return a <= b },
		"r>=": func(a, b float64) bool { return a >= b },
	}
	for name, eval := range cmps {
		name, eval := name, eval
		stdExecs[name] = func(m *Machine, vals, conts []Value) (Outcome, error) {
			a, err := wantReal(name, vals[0])
			if err != nil {
				return Outcome{}, err
			}
			b, err := wantReal(name, vals[1])
			if err != nil {
				return Outcome{}, err
			}
			if eval(a, b) {
				return cc(0), nil
			}
			return cc(1), nil
		}
	}
	stdExecs["rneg"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantReal("rneg", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, Real(-a)), nil
	}
}

func registerBoolExecs() {
	stdExecs["and"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantBool("and", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantBool("and", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, BoolValue(a && b)), nil
	}
	stdExecs["or"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantBool("or", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantBool("or", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, BoolValue(a || b)), nil
	}
	stdExecs["not"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantBool("not", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, BoolValue(!a)), nil
	}
	stdExecs["if"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantBool("if", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		if a {
			return cc(0), nil
		}
		return cc(1), nil
	}
}

func registerStringExecs() {
	stdExecs["s+"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantStr("s+", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantStr("s+", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, Str(a+b)), nil
	}
	stdExecs["s="] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantStr("s=", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantStr("s=", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		if a == b {
			return cc(0), nil
		}
		return cc(1), nil
	}
	stdExecs["s<"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantStr("s<", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		b, err := wantStr("s<", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		if a < b {
			return cc(0), nil
		}
		return cc(1), nil
	}
	stdExecs["slen"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantStr("slen", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, IntValue(int64(len(a)))), nil
	}
	stdExecs["s[]"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		a, err := wantStr("s[]", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		i, err := wantInt("s[]", vals[1])
		if err != nil {
			return Outcome{}, err
		}
		if i < 0 || i >= int64(len(a)) {
			return cc(0, Str("s[]: index out of range")), nil
		}
		return cc(1, CharValue(a[i])), nil
	}
	stdExecs["int2str"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		i, err := wantInt("int2str", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, Str(fmt.Sprintf("%d", i))), nil
	}
	stdExecs["real2str"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		r, err := wantReal("real2str", vals[0])
		if err != nil {
			return Outcome{}, err
		}
		return cc(0, Str(Real(r).Show())), nil
	}
}

func registerIOExecs() {
	stdExecs["print"] = func(m *Machine, vals, conts []Value) (Outcome, error) {
		if m.Out != nil {
			fmt.Fprintln(m.Out, vals[0].Show())
		}
		return cc(0, unitVal), nil
	}
}
