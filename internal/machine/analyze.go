package machine

import "tycoon/internal/prim"

// prepareProgram computes the derived execution metadata of a compiled
// program: per-instruction fast executors and inert-continuation marks,
// and per-block frame and row escape analyses. It runs once, when a
// program is produced by the code generator or decoded from the store;
// programs are immutable afterwards, so the metadata may be read without
// synchronisation.
func prepareProgram(p *Program, reg *prim.Registry) {
	if p == nil || p.prepared {
		return
	}
	p.prepared = true
	if reg == nil {
		reg = prim.Default
	}
	for _, blk := range p.Blocks {
		analyzeBlock(blk, reg)
	}
}

// analyzeBlock decides, per instruction, whether the fused fast path and
// the shared inert continuation placeholders apply, and, per block,
// whether frames and row tuples can be reused across activations.
func analyzeBlock(blk *CodeBlock, reg *prim.Registry) {
	frameSafe := true
	for i := range blk.Instrs {
		in := &blk.Instrs[i]
		switch in.Op {
		case OpCont:
			// Reifying a join point hands out a reference to the frame.
			frameSafe = false
		case OpPrim:
			d, ok := reg.Lookup(in.Prim)
			capturing := !ok || d.CapturesConts
			if capturing {
				// The executor may retain a continuation reified over this
				// frame (or is unknown and must be assumed to).
				frameSafe = false
				continue
			}
			if len(in.Conts) <= maxInertConts {
				in.contsInert = true
			}
			if f, fok := fastExecs[in.Prim]; fok && allLabels(in.Conts) && len(in.Conts) <= maxInertConts {
				in.fast = f
			}
		}
	}
	blk.frameSafe = frameSafe
	blk.rowSafe = frameSafe && rowSafe(blk, reg)
}

func allLabels(conts []ContRef) bool {
	for _, c := range conts {
		if !c.IsLabel {
			return false
		}
	}
	return true
}

// rowSafe runs a taint analysis on slot 0 — the row tuple in the batched
// query calling convention — and reports that no alias of it can survive
// the activation. Taint is monotone (a slot once tainted stays tainted;
// kills are ignored), so a fixpoint over the flat instruction list covers
// every path through the block's join points.
func rowSafe(blk *CodeBlock, reg *prim.Registry) bool {
	if blk.NParams == 0 {
		return false
	}
	tainted := make([]bool, blk.NSlots)
	tainted[0] = true
	src := func(s Src) bool { return s.Kind == SrcSlot && tainted[s.Idx] }
	for changed := true; changed; {
		changed = false
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			switch in.Op {
			case OpMove:
				if src(in.Srcs[0]) && !tainted[in.Dst] {
					tainted[in.Dst] = true
					changed = true
				}
			case OpClos:
				// Captured into a closure that outlives the activation.
				for _, s := range in.Srcs {
					if src(s) {
						return false
					}
				}
			case OpSetCell:
				for _, s := range in.Srcs {
					if src(s) {
						return false
					}
				}
			case OpCall:
				// Passed to an unknown procedure or continuation.
				if src(in.Fn) {
					return false
				}
				for _, s := range in.Srcs {
					if src(s) {
						return false
					}
				}
			case OpPrim:
				anyTainted := false
				for _, s := range in.Srcs {
					if src(s) {
						anyTainted = true
						break
					}
				}
				if !anyTainted {
					continue
				}
				d, ok := reg.Lookup(in.Prim)
				if !ok || d.RetainsVals {
					return false
				}
				// A non-retaining primitive may still return (part of) the
				// row: taint its results. Results flowing to a non-label
				// continuation leave the block with them.
				for _, c := range in.Conts {
					if !c.IsLabel {
						return false
					}
					for _, ps := range c.ParamSlots {
						if !tainted[ps] {
							tainted[ps] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return true
}
