package machine

import (
	"fmt"

	"tycoon/internal/tml"
)

// This file implements the direct TML interpreter: one step of the
// unified driver executes one application. CPS has no implicit returns —
// every transfer of control is an application, a generalized goto with
// parameter passing — so execution is a flat loop and never grows the Go
// stack, no matter how deep the source recursion.

// Halt is the sentinel continuation value terminating execution: the
// top-level normal continuation (Err=false) yields the program result, the
// top-level exception continuation (Err=true) reports an unhandled
// exception.
type Halt struct{ Err bool }

func (*Halt) value() {}

// Show renders the halt continuation.
func (h *Halt) Show() string {
	if h.Err {
		return "<halt-error>"
	}
	return "<halt>"
}

// Exception reports a TML exception that reached the top-level exception
// continuation.
type Exception struct {
	Value Value
}

// Error formats the exception.
func (e *Exception) Error() string {
	return fmt.Sprintf("%v: %s", ErrUnhandled, e.Value.Show())
}

// Unwrap lets errors.Is match ErrUnhandled.
func (e *Exception) Unwrap() error { return ErrUnhandled }

// Apply invokes a procedure value (interpreted or compiled) with the
// given value arguments, supplying fresh top-level exception and normal
// continuations, and runs it to completion.
func (m *Machine) Apply(fn Value, args []Value) (Value, error) {
	all := make([]Value, 0, len(args)+2)
	all = append(all, args...)
	all = append(all, &Halt{Err: true}, &Halt{Err: false})
	st, done, result, err := m.transfer(fn, all)
	if err != nil || done {
		return result, err
	}
	return m.drive(st)
}

// RunApp evaluates an application whose free variables are bound by env.
// The continuation variables among the free variables should be bound to
// Halt values (or closures) by the caller.
func (m *Machine) RunApp(app *tml.App, env *Env) (Value, error) {
	return m.drive(execState{app: app, env: env})
}

// stepInterp executes one interpreted application. Steps are charged for
// primitive executions (here) and procedure entries (in transfer), never
// for administrative β-redexes or continuation invocations — the same
// cost model compiled code exhibits, where join points are plain jumps.
func (m *Machine) stepInterp(app *tml.App, env *Env) (execState, bool, Value, error) {
	// Primitive application: execute and continue with the selected
	// continuation.
	if p, ok := app.Fn.(*tml.Prim); ok {
		if err := m.tick(); err != nil {
			return execState{}, true, nil, err
		}
		if p.Name == "Y" {
			next, nextEnv, err := m.tieKnot(app, env)
			if err != nil {
				return execState{}, true, nil, err
			}
			return execState{app: next, env: nextEnv}, false, nil, nil
		}
		nodeVals, nodeConts := m.splitPrimArgs(p.Name, app.Args)
		vals, err := m.evalValues(nodeVals, env)
		if err != nil {
			return execState{}, true, nil, err
		}
		conts, err := m.evalValues(nodeConts, env)
		if err != nil {
			return execState{}, true, nil, err
		}
		exec, ok := m.exec(p.Name)
		if !ok {
			return execState{}, true, nil, rtErr(p.Name, "no executor registered")
		}
		out, err := exec(m, vals, conts)
		if err != nil {
			return execState{}, true, nil, err
		}
		fn, args, err := m.resolveOutcome(p.Name, out, conts)
		if err != nil {
			return execState{}, true, nil, err
		}
		return m.transfer(fn, args)
	}

	// Ordinary application.
	fnVal, err := m.evalValue(app.Fn, env)
	if err != nil {
		return execState{}, true, nil, err
	}
	args, err := m.evalValues(app.Args, env)
	if err != nil {
		return execState{}, true, nil, err
	}
	return m.transfer(fnVal, args)
}

// splitPrimArgs divides the syntactic argument list of a primitive
// application into value and continuation positions, using the registered
// signature (variadic primitives fall back to the syntactic trailing-cont
// criterion).
func (m *Machine) splitPrimArgs(name string, args []tml.Value) (vals, conts []tml.Value) {
	if d, ok := m.reg().Lookup(name); ok && d.NConts >= 0 {
		split := len(args) - d.NConts
		if split < 0 {
			split = 0
		}
		return args[:split], args[split:]
	}
	return tml.SplitArgs(args)
}

// resolveOutcome maps a primitive outcome to the continuation (or direct
// tail target) to invoke.
func (m *Machine) resolveOutcome(name string, out Outcome, conts []Value) (Value, []Value, error) {
	if out.Tail != nil {
		return out.Tail.Fn, out.Tail.Args, nil
	}
	if out.Branch < 0 || out.Branch >= len(conts) {
		return nil, nil, rtErr(name, "selected continuation %d of %d", out.Branch, len(conts))
	}
	return conts[out.Branch], out.Results, nil
}

// evalValue evaluates a TML value node.
func (m *Machine) evalValue(v tml.Value, env *Env) (Value, error) {
	switch v := v.(type) {
	case *tml.Lit, *tml.Oid:
		val, _ := LitValue(v)
		return val, nil
	case *tml.Var:
		val, ok := env.Lookup(v)
		if !ok {
			return nil, rtErr("eval", "unbound variable %s", v)
		}
		return val, nil
	case *tml.Abs:
		return &Closure{Abs: v, Env: env}, nil
	case *tml.Prim:
		return nil, rtErr("eval", "primitive %s is not a first-class value", v.Name)
	default:
		return nil, rtErr("eval", "unexpected node %T", v)
	}
}

func (m *Machine) evalValues(vs []tml.Value, env *Env) ([]Value, error) {
	out := make([]Value, len(vs))
	for i, v := range vs {
		val, err := m.evalValue(v, env)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

// tieKnot implements the Y primitive (paper §2.3): the abstraction
// argument λ(c₀ v₁…vₙ c) has a knot-tying body (c cont₀ abs₁…absₙ); Y
// binds the n+1 abstractions to c₀, v₁…vₙ — visible within themselves,
// establishing the mutually recursive fixed point — and then invokes the
// entry continuation bound to c₀ tail-recursively.
func (m *Machine) tieKnot(app *tml.App, env *Env) (*tml.App, *Env, error) {
	if len(app.Args) != 1 {
		return nil, nil, rtErr("Y", "expects one abstraction argument")
	}
	yAbs, ok := app.Args[0].(*tml.Abs)
	if !ok {
		return nil, nil, rtErr("Y", "argument must be a literal abstraction")
	}
	if len(yAbs.Params) < 2 {
		return nil, nil, rtErr("Y", "abstraction must take at least c₀ and c")
	}
	knot := yAbs.Body
	cVar, ok := knot.Fn.(*tml.Var)
	if !ok || cVar != yAbs.Params[len(yAbs.Params)-1] {
		return nil, nil, rtErr("Y", "body must invoke the final continuation parameter")
	}
	if len(knot.Args) != len(yAbs.Params)-1 {
		return nil, nil, rtErr("Y", "knot passes %d abstractions for %d bindings",
			len(knot.Args), len(yAbs.Params)-1)
	}
	frameVals := make([]Value, len(yAbs.Params))
	frame := env.Extend(yAbs.Params, frameVals)
	// First pass: abstractions become closures over the knot frame.
	// A knot argument may also be a *variable* referencing one of the
	// other recursive bindings — η-reduction contracts cont()(loop) to
	// loop — which the second pass aliases.
	type aliasRef struct{ from, to int }
	var aliases []aliasRef
	paramIdx := make(map[*tml.Var]int, len(yAbs.Params))
	for i, p := range yAbs.Params {
		paramIdx[p] = i
	}
	for i, arg := range knot.Args {
		switch arg := arg.(type) {
		case *tml.Abs:
			frameVals[i] = &Closure{Abs: arg, Env: frame}
		case *tml.Var:
			j, ok := paramIdx[arg]
			if !ok || j >= len(knot.Args) {
				return nil, nil, rtErr("Y", "knot argument %d references %s outside the knot", i, arg)
			}
			aliases = append(aliases, aliasRef{from: i, to: j})
		default:
			return nil, nil, rtErr("Y", "knot argument %d is %T, want abstraction", i, arg)
		}
	}
	// Second pass: resolve aliases (chains terminate at an abstraction).
	for range aliases {
		for _, a := range aliases {
			if frameVals[a.from] == nil && frameVals[a.to] != nil {
				frameVals[a.from] = frameVals[a.to]
			}
		}
	}
	for i, v := range frameVals[:len(knot.Args)] {
		if v == nil {
			return nil, nil, rtErr("Y", "knot binding %d is part of an alias cycle", i)
		}
	}
	entry, ok := frameVals[0].(*Closure)
	if !ok {
		return nil, nil, rtErr("Y", "entry binding is not a continuation")
	}
	if len(entry.Abs.Params) != 0 {
		return nil, nil, rtErr("Y", "entry continuation must take no parameters")
	}
	return entry.Abs.Body, frame, nil
}
