// Package machine implements the Tycoon execution substrate: runtime
// values, a trampolined interpreter that executes TML trees directly, the
// primitive execution table shared by interpreter and compiled code, and
// the TAM (Tycoon Abstract Machine) compiler and virtual machine that
// plays the rôle of the paper's target code generator (Fig. 3).
package machine

import (
	"fmt"
	"strings"

	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// Value is a runtime value.
type Value interface {
	// Show renders the value for diagnostics and the print primitive.
	Show() string
	value()
}

// ExtValue is embedded by other packages (for example the relational
// substrate's relation values) to define additional runtime value kinds;
// it satisfies the unexported marker method of Value.
type ExtValue struct{}

func (ExtValue) value() {}

// Int is a 64-bit integer value.
type Int int64

// Real is a 64-bit floating point value.
type Real float64

// Bool is a boolean value.
type Bool bool

// Char is a byte value.
type Char byte

// Str is an immutable string value.
type Str string

// Unit is the unit value ok.
type Unit struct{}

// Array is a transient mutable array of object references.
type Array struct{ Elems []Value }

// Vector is a transient immutable array; tuples of the source language
// lower to vectors.
type Vector struct{ Elems []Value }

// Bytes is a transient mutable byte array.
type Bytes struct{ B []byte }

// Ref is a reference to a persistent object in the store.
type Ref struct{ OID store.OID }

// Closure is an interpreted procedure or continuation: a TML abstraction
// together with its defining environment.
type Closure struct {
	Abs *tml.Abs
	Env *Env
	// Name is the source-level name, if known (diagnostics only).
	Name string
}

func (Int) value()      {}
func (Real) value()     {}
func (Bool) value()     {}
func (Char) value()     {}
func (Str) value()      {}
func (Unit) value()     {}
func (*Array) value()   {}
func (*Vector) value()  {}
func (*Bytes) value()   {}
func (Ref) value()      {}
func (*Closure) value() {}

// Show implementations.

// Show renders the integer.
func (v Int) Show() string { return fmt.Sprintf("%d", int64(v)) }

// Show renders the real.
func (v Real) Show() string {
	s := fmt.Sprintf("%g", float64(v))
	if !strings.ContainsAny(s, ".eEnNiI") {
		s += ".0"
	}
	return s
}

// Show renders the boolean.
func (v Bool) Show() string {
	if v {
		return "true"
	}
	return "false"
}

// Show renders the character.
func (v Char) Show() string { return string(rune(v)) }

// Show renders the string.
func (v Str) Show() string { return string(v) }

// Show renders the unit value.
func (Unit) Show() string { return "ok" }

// Show renders the array.
func (v *Array) Show() string { return showSeq("array", v.Elems) }

// Show renders the vector.
func (v *Vector) Show() string { return showSeq("vector", v.Elems) }

// Show renders the byte array.
func (v *Bytes) Show() string { return fmt.Sprintf("bytes(%d)", len(v.B)) }

// Show renders the reference.
func (v Ref) Show() string { return fmt.Sprintf("<oid 0x%08x>", uint64(v.OID)) }

// Show renders the closure.
func (v *Closure) Show() string {
	if v.Name != "" {
		return "proc " + v.Name
	}
	return "proc"
}

func showSeq(kind string, elems []Value) string {
	var b strings.Builder
	b.WriteString(kind)
	b.WriteString("(")
	for i, e := range elems {
		if i > 0 {
			b.WriteString(" ")
		}
		if i > 8 {
			b.WriteString("…")
			break
		}
		b.WriteString(e.Show())
	}
	b.WriteString(")")
	return b.String()
}

// Value interning. Boxing a scalar into the Value interface allocates;
// on the query hot path every row conversion and every primitive result
// would pay that cost. The tables below prebox the values that dominate
// those paths — small integers (row keys, loop counters), booleans
// (predicate results), characters and unit — so FromStoreVal and the
// executors can return shared boxes. Interning is sound because scalars
// are immutable and compare by value, never by identity.
var (
	smallInts [512]Value // -256 … 255
	charVals  [256]Value
	trueVal   Value = Bool(true)
	falseVal  Value = Bool(false)
	unitVal   Value = Unit{}
)

func init() {
	for i := range smallInts {
		smallInts[i] = Int(i - 256)
	}
	for i := range charVals {
		charVals[i] = Char(i)
	}
}

// IntValue boxes an integer, sharing the box for small values.
func IntValue(i int64) Value {
	if i >= -256 && i < 256 {
		return smallInts[i+256]
	}
	return Int(i)
}

// BoolValue boxes a boolean without allocating.
func BoolValue(b bool) Value {
	if b {
		return trueVal
	}
	return falseVal
}

// CharValue boxes a character without allocating.
func CharValue(c byte) Value { return charVals[c] }

// UnitValue returns the shared unit box.
func UnitValue() Value { return unitVal }

// Env is a chain of binding frames. Frames are small (procedure parameter
// lists), so lookup is a linear scan by binder pointer.
type Env struct {
	prev *Env
	vars []*tml.Var
	vals []Value
}

// Extend pushes a frame binding vars to vals.
func (e *Env) Extend(vars []*tml.Var, vals []Value) *Env {
	return &Env{prev: e, vars: vars, vals: vals}
}

// Lookup resolves a variable to its value.
func (e *Env) Lookup(v *tml.Var) (Value, bool) {
	for f := e; f != nil; f = f.prev {
		for i, w := range f.vars {
			if w == v {
				return f.vals[i], true
			}
		}
	}
	return nil, false
}

// set assigns a bound variable in place; used by the Y knot-tying.
func (e *Env) set(v *tml.Var, val Value) bool {
	for f := e; f != nil; f = f.prev {
		for i, w := range f.vars {
			if w == v {
				f.vals[i] = val
				return true
			}
		}
	}
	return false
}

// Eq reports shallow value equality in the sense of the == primitive:
// object identity for heap objects, value identity for scalars.
func Eq(a, b Value) bool {
	switch x := a.(type) {
	case Int:
		y, ok := b.(Int)
		return ok && x == y
	case Real:
		y, ok := b.(Real)
		return ok && x == y
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Char:
		y, ok := b.(Char)
		return ok && x == y
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case Unit:
		_, ok := b.(Unit)
		return ok
	case Ref:
		y, ok := b.(Ref)
		return ok && x.OID == y.OID
	default:
		// Heap objects compare by identity.
		return a == b
	}
}
