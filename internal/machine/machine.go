package machine

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"tycoon/internal/prim"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// Machine is the execution context shared by the TML interpreter and the
// TAM virtual machine: the persistent store, the output stream of the
// print primitive, the dynamic exception-handler stack (pushHandler /
// popHandler / raise) and a step budget that bounds runaway programs.
type Machine struct {
	// Store resolves OID references; nil machines can still run programs
	// that never touch persistent objects.
	Store store.View
	// Out receives the output of the print primitive; nil discards it.
	Out io.Writer
	// MaxSteps bounds the number of applications executed; 0 means
	// DefaultMaxSteps. Exceeding the budget aborts with ErrStepBudget.
	MaxSteps int64
	// Reg resolves primitive descriptors; nil means prim.Default.
	Reg *prim.Registry

	handlers []Value // dynamic exception handler stack
	steps    int64
	execs    map[string]ExecFunc
	// budgetHook, when set, is polled roughly every budgetPollSteps
	// abstract steps (and once per bulk TickN). A non-nil error aborts
	// execution with that error — the server uses it to enforce
	// per-session wall-clock budgets without touching the hot path when
	// no hook is installed.
	budgetHook func() error
	// noFast disables the fused primitive fast path: set when a
	// machine-local executor shadows a primitive the code generator fused,
	// so the override is always honoured.
	noFast bool
	// Execution profile counters (single-goroutine, like steps).
	transfers   int64
	framesAlloc int64
	framesReuse int64
	vecRows     int64
	// freeFrames is the TAM frame free-list: a block whose frame provably
	// does not escape (CodeBlock.frameSafe) returns it here when control
	// leaves the block, and transfer reuses it for the next activation —
	// self-recursive tail calls and batched predicate evaluation run
	// without frame allocation.
	freeFrames [][]Value
	// valArena is a stack-disciplined scratch buffer for the value
	// arguments of primitive executions. Executors must not retain the
	// vals slice beyond the call (elements may be retained freely); all
	// executors in this repository obey that contract.
	valArena []Value
	// linkMu guards linked and programs: the reflective optimizer may
	// install new code (OverrideLink) from another goroutine while the
	// machine is lazily linking, and concurrent optimizations may race
	// on the shared caches. Execution state (handlers, steps) remains
	// single-goroutine per machine.
	linkMu sync.Mutex
	// linked caches swizzled closures per OID; programs caches decoded
	// TAM code blobs (see link.go).
	linked   map[store.OID]Value
	programs map[store.OID]*Program
}

// DefaultMaxSteps bounds execution (applications performed) when
// Machine.MaxSteps is zero.
const DefaultMaxSteps = 2_000_000_000

// budgetPollMask spaces out budget-hook polls: the hook runs when
// steps&budgetPollMask == 0, i.e. every 16384 abstract steps. Coarse
// enough to stay off the interpreter hot path, fine enough that a
// wall-clock budget fires within microseconds of expiring.
const budgetPollMask = 1<<14 - 1

// Errors reported by execution.
var (
	// ErrStepBudget aborts programs that exceed MaxSteps.
	ErrStepBudget = errors.New("machine: step budget exceeded")
	// ErrWallBudget aborts programs whose budget hook reports an
	// exhausted wall-clock allowance (tycd's per-session budgets).
	ErrWallBudget = errors.New("machine: wall-clock budget exceeded")
	// ErrUnhandled reports an exception that reached the top of the
	// handler stack.
	ErrUnhandled = errors.New("machine: unhandled exception")
)

// RuntimeError carries a TML-level runtime failure (type confusion,
// index out of range, arity mismatch) with context.
type RuntimeError struct {
	Op  string
	Msg string
}

// Error formats the runtime error.
func (e *RuntimeError) Error() string { return fmt.Sprintf("machine: %s: %s", e.Op, e.Msg) }

func rtErr(op, format string, args ...any) error {
	return &RuntimeError{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// New returns a machine executing against the given store (which may be
// nil for pure computations).
func New(st store.View) *Machine {
	// A nil *store.Store must behave like no store at all, not a non-nil
	// interface with a nil receiver inside.
	if s, ok := st.(*store.Store); ok && s == nil {
		st = nil
	}
	m := &Machine{Store: st}
	return m
}

// reg returns the effective primitive registry.
func (m *Machine) reg() *prim.Registry {
	if m.Reg != nil {
		return m.Reg
	}
	return prim.Default
}

// Steps reports the number of applications executed so far; benchmarks
// use it as a machine-independent work measure.
func (m *Machine) Steps() int64 { return m.steps }

// ResetSteps clears the step counter (between benchmark iterations).
func (m *Machine) ResetSteps() { m.steps = 0 }

// Tick charges one abstract machine step; substrate packages (the
// relational operators) call it per row processed so that bulk data
// traversal and materialisation show up in the work measure.
func (m *Machine) Tick() error { return m.tick() }

// TickN charges n abstract machine steps at once: the bulk operators
// charge one fixed-size batch of rows up front, which moves the budget
// check out of the row loop without changing the total work measure.
func (m *Machine) TickN(n int) error {
	m.steps += int64(n)
	max := m.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if m.steps > max {
		return ErrStepBudget
	}
	if m.budgetHook != nil {
		// Bulk charges represent whole row batches; poll once per batch
		// rather than waiting for the mask to line up.
		if err := m.budgetHook(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) tick() error {
	m.steps++
	max := m.MaxSteps
	if max == 0 {
		max = DefaultMaxSteps
	}
	if m.steps > max {
		return ErrStepBudget
	}
	if m.budgetHook != nil && m.steps&budgetPollMask == 0 {
		if err := m.budgetHook(); err != nil {
			return err
		}
	}
	return nil
}

// SetBudgetHook installs (or, with nil, removes) a callback polled
// periodically during execution; a non-nil return aborts the running
// program with that error. tycd uses it to enforce per-session
// wall-clock budgets and to cancel work during server drain. The hook
// runs on the machine's execution goroutine but may read state written
// by other goroutines (deadlines, shutdown flags) if that state is
// accessed atomically.
func (m *Machine) SetBudgetHook(f func() error) { m.budgetHook = f }

// Profile is a snapshot of the machine's execution counters: abstract
// steps, engine transfers (control transfers dispatched between closure
// activations), and TAM frame allocation/reuse. tmlrun -profile prints
// it; the allocation-budget tests assert on it.
type Profile struct {
	Steps       int64
	Transfers   int64
	FramesAlloc int64
	FramesReuse int64
	// VecRows counts rows processed by vectorized query kernels instead
	// of per-row machine re-entry (the exec lane's data-path telemetry).
	VecRows int64
}

// Profile reports the machine's execution counters.
func (m *Machine) Profile() Profile {
	return Profile{Steps: m.steps, Transfers: m.transfers,
		FramesAlloc: m.framesAlloc, FramesReuse: m.framesReuse,
		VecRows: m.vecRows}
}

// AddVecRows records rows served by a vectorized kernel.
func (m *Machine) AddVecRows(n int) { m.vecRows += int64(n) }

// ResetProfile clears all execution counters, including steps.
func (m *Machine) ResetProfile() {
	m.steps, m.transfers, m.framesAlloc, m.framesReuse, m.vecRows = 0, 0, 0, 0, 0
}

// maxPooledFrames bounds the frame free-list; beyond it dead frames are
// left to the garbage collector.
const maxPooledFrames = 64

// getFrame returns a zeroed frame of n slots, preferring the free-list.
func (m *Machine) getFrame(n int) []Value {
	for i := len(m.freeFrames) - 1; i >= 0; i-- {
		f := m.freeFrames[i]
		if cap(f) >= n {
			last := len(m.freeFrames) - 1
			m.freeFrames[i] = m.freeFrames[last]
			m.freeFrames[last] = nil
			m.freeFrames = m.freeFrames[:last]
			f = f[:n]
			clear(f)
			m.framesReuse++
			return f
		}
	}
	m.framesAlloc++
	return make([]Value, n)
}

// putFrame recycles a frame whose block has exited and whose escape
// analysis (CodeBlock.frameSafe) proved no reference to it survives.
func (m *Machine) putFrame(f []Value) {
	if cap(f) == 0 || len(m.freeFrames) >= maxPooledFrames {
		return
	}
	m.freeFrames = append(m.freeFrames, f)
}

// arenaPush reserves n scratch slots for primitive value arguments.
// Discipline is strictly stack-like: a primitive that re-enters the
// machine (the query executors evaluating predicates) pushes above the
// caller's reservation and pops back to it before returning.
func (m *Machine) arenaPush(n int) (int, []Value) {
	base := len(m.valArena)
	if cap(m.valArena) < base+n {
		grown := make([]Value, base, 2*(base+n)+8)
		copy(grown, m.valArena)
		m.valArena = grown
	}
	m.valArena = m.valArena[:base+n]
	return base, m.valArena[base : base+n]
}

// arenaPop releases a reservation, clearing it so values are not retained.
func (m *Machine) arenaPop(base int) {
	clear(m.valArena[base:])
	m.valArena = m.valArena[:base]
}

// PushHandler installs a new exception handler continuation.
func (m *Machine) PushHandler(h Value) { m.handlers = append(m.handlers, h) }

// PopHandler removes the topmost exception handler.
func (m *Machine) PopHandler() (Value, bool) {
	if len(m.handlers) == 0 {
		return nil, false
	}
	h := m.handlers[len(m.handlers)-1]
	m.handlers = m.handlers[:len(m.handlers)-1]
	return h, true
}

// Outcome is what a primitive execution requests next: invoke the
// Branch-th continuation argument with Results, or perform a direct tail
// call (raise transferring to a handler).
type Outcome struct {
	Branch  int
	Results []Value
	// Tail, when non-nil, overrides Branch: control transfers to Fn.
	Tail *TailCall
}

// TailCall is a direct transfer of control to a continuation or procedure
// value.
type TailCall struct {
	Fn   Value
	Args []Value
}

// ExecFunc executes one primitive call: vals are the value arguments and
// conts the continuation arguments (as runtime values). Most primitives
// only return a Branch index into conts; the handler primitives inspect
// conts directly (pushHandler installs conts[0]) and raise returns a Tail
// transfer.
type ExecFunc func(m *Machine, vals, conts []Value) (Outcome, error)

// RegisterExec adds a primitive executor; the relational substrate
// registers the query primitives this way, mirroring how new primitives
// extend the compile-time registry (paper §2.3). Executors must follow
// the descriptor flags of their primitive: retaining a continuation
// argument requires CapturesConts, retaining a value argument requires
// RetainsVals — the TAM's frame reuse and inert-continuation passing
// rely on them.
func (m *Machine) RegisterExec(name string, f ExecFunc) {
	if m.execs == nil {
		m.execs = make(map[string]ExecFunc)
	}
	if _, fused := fastExecs[name]; fused {
		m.noFast = true
	}
	m.execs[name] = f
}

// exec resolves the executor for a primitive name: machine-local
// registrations first, then the standard table.
func (m *Machine) exec(name string) (ExecFunc, bool) {
	if f, ok := m.execs[name]; ok {
		return f, true
	}
	f, ok := stdExecs[name]
	return f, ok
}

// fetch resolves a store reference to its object.
func (m *Machine) fetch(op string, r Ref) (store.Object, error) {
	if m.Store == nil {
		return nil, rtErr(op, "no store attached for %s", r.Show())
	}
	obj, err := m.Store.Get(r.OID)
	if err != nil {
		return nil, rtErr(op, "%v", err)
	}
	return obj, nil
}

// FromStoreVal converts a store slot value to a runtime value. Scalars
// come from the interning tables, so converting a row of small integers
// and booleans allocates nothing.
func FromStoreVal(v store.Val) Value {
	switch v.Kind {
	case store.ValInt:
		return IntValue(v.Int)
	case store.ValReal:
		return Real(v.Real)
	case store.ValBool:
		return BoolValue(v.Bool)
	case store.ValChar:
		return CharValue(v.Ch)
	case store.ValStr:
		return Str(v.Str)
	case store.ValRef:
		return Ref{OID: v.Ref}
	default:
		return unitVal
	}
}

// ToStoreVal converts a runtime value to a store slot value; heap values
// (arrays, closures) must be persisted explicitly and reported as refs by
// the caller.
func ToStoreVal(v Value) (store.Val, error) {
	switch v := v.(type) {
	case Int:
		return store.IntVal(int64(v)), nil
	case Real:
		return store.RealVal(float64(v)), nil
	case Bool:
		return store.BoolVal(bool(v)), nil
	case Char:
		return store.CharVal(byte(v)), nil
	case Str:
		return store.StrVal(string(v)), nil
	case Ref:
		return store.RefVal(v.OID), nil
	case Unit:
		return store.NilVal(), nil
	default:
		return store.Val{}, rtErr("store", "cannot persist transient %T", v)
	}
}

// LitValue converts a TML literal or OID node to a runtime value.
func LitValue(v tml.Value) (Value, bool) {
	switch v := v.(type) {
	case *tml.Lit:
		switch v.Kind {
		case tml.LitUnit:
			return Unit{}, true
		case tml.LitInt:
			return Int(v.Int), true
		case tml.LitChar:
			return Char(v.Ch), true
		case tml.LitBool:
			return Bool(v.Bool), true
		case tml.LitReal:
			return Real(v.Real), true
		case tml.LitStr:
			return Str(v.Str), true
		}
	case *tml.Oid:
		return Ref{OID: store.OID(v.Ref)}, true
	}
	return nil, false
}

// ValueToTML converts a runtime value back to a TML value node; heap
// values become OIDs only if they already live in the store, otherwise
// ok=false. The reflective optimizer uses this to re-establish R-value
// bindings (paper §4.1).
func ValueToTML(v Value) (tml.Value, bool) {
	switch v := v.(type) {
	case Int:
		return tml.Int(int64(v)), true
	case Real:
		return tml.Real(float64(v)), true
	case Bool:
		return tml.Bool(bool(v)), true
	case Char:
		return tml.Char(byte(v)), true
	case Str:
		return tml.Str(string(v)), true
	case Unit:
		return tml.Unit(), true
	case Ref:
		return tml.NewOid(uint64(v.OID)), true
	default:
		return nil, false
	}
}
