package machine

import (
	"testing"
	"testing/quick"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// recompile round-trips an abstraction through compiled code and back.
func recompile(t *testing.T, src string) (*tml.Abs, *tml.Abs) {
	t.Helper()
	abs := compileAbsSrc(t, src)
	prog, err := CompileProc(abs, "f", nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Round-trip the code through its persistent encoding too.
	data, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	rec, free, err := Decompile(back, nil)
	if err != nil {
		t.Fatalf("decompile: %v\n%s", err, Disasm(prog))
	}
	// The reconstruction must be well-formed TML.
	if err := tml.Check(rec, tml.CheckOpts{Signatures: prim.Signatures, AllowFree: free}); err != nil {
		t.Fatalf("reconstructed tree ill-formed: %v\n%s", err, tml.Print(rec))
	}
	return abs, rec
}

// agree checks that original and reconstruction compute the same results.
func agree(t *testing.T, orig, rec *tml.Abs, argSets ...[]Value) {
	t.Helper()
	m := New(nil)
	for _, args := range argSets {
		v1, err1 := m.Apply(&Closure{Abs: orig}, args)
		v2, err2 := m.Apply(&Closure{Abs: rec}, args)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch on %v: %v vs %v", args, err1, err2)
		}
		if err1 == nil && !Eq(v1, v2) {
			t.Errorf("args %v: original %s, reconstruction %s", args, v1.Show(), v2.Show())
		}
	}
}

func ints(vs ...int64) []Value {
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = Int(v)
	}
	return out
}

func TestDecompileStraightLine(t *testing.T) {
	orig, rec := recompile(t, "proc(x !ce !cc) (+ x 1 ce cont(t) (* t 2 ce cc))")
	agree(t, orig, rec, ints(5), ints(-3), ints(0))
}

func TestDecompileConditional(t *testing.T) {
	orig, rec := recompile(t, `proc(x !ce !cc)
	  (< x 10 cont() (cc 1) cont() (cc 0))`)
	agree(t, orig, rec, ints(5), ints(15))
}

func TestDecompileCase(t *testing.T) {
	orig, rec := recompile(t, `proc(x !ce !cc)
	  (== x 1 2 3 cont()(cc 10) cont()(cc 20) cont()(cc 30) cont()(cc 0))`)
	agree(t, orig, rec, ints(1), ints(2), ints(3), ints(9))
}

func TestDecompileLoop(t *testing.T) {
	orig, rec := recompile(t, `proc(n !ce !cc)
	  (Y proc(!c0 !loop !c)
	     (c cont() (loop 1 0)
	        cont(i acc)
	          (> i n
	             cont() (cc acc)
	             cont() (+ acc i ce cont(a2)
	                      (+ i 1 ce cont(i2) (loop i2 a2))))))`)
	agree(t, orig, rec, ints(10), ints(0), ints(100))
}

func TestDecompileWhileShapedLoop(t *testing.T) {
	// Parameterless loop head with mutable cell, the while-loop shape.
	orig, rec := recompile(t, `proc(n !ce !cc)
	  (array 0 cont(cell)
	    (Y proc(!c0 !loop !c)
	       (c cont() (loop)
	          cont()
	            ([] cell 0 cont(s)
	              (>= s n
	                 cont() (cc s)
	                 cont() (+ s 3 ce cont(s2)
	                          ([:=] cell 0 s2 cont(u) (loop))))))))`)
	agree(t, orig, rec, ints(10), ints(0))
}

func TestDecompileRecursion(t *testing.T) {
	orig, rec := recompile(t, `proc(n !ce !cc)
	  (Y proc(!c0 fact !c)
	     (c cont() (fact n ce cc)
	        proc(k !ce2 !cc2)
	          (< k 2
	             cont() (cc2 1)
	             cont() (- k 1 ce2 cont(k1)
	                      (fact k1 ce2 cont(r) (* k r ce2 cc2))))))`)
	agree(t, orig, rec, ints(0), ints(5), ints(10))
}

func TestDecompileMutualRecursion(t *testing.T) {
	orig, rec := recompile(t, `proc(n !ce !cc)
	  (Y proc(!c0 even odd !c)
	     (c cont() (even n ce cc)
	        proc(a !e1 !k1)
	          (== a 0 cont() (k1 1)
	                  cont() (- a 1 e1 cont(p) (odd p e1 k1)))
	        proc(b !e2 !k2)
	          (== b 0 cont() (k2 0)
	                  cont() (- b 1 e2 cont(q) (even q e2 k2)))))`)
	agree(t, orig, rec, ints(10), ints(7), ints(0))
}

func TestDecompileHigherOrder(t *testing.T) {
	orig, rec := recompile(t, `proc(x !ce !cc)
	  (cc proc(b !e2 !k2) (+ x b e2 k2))`)
	m := New(nil)
	adder1, err := m.Apply(&Closure{Abs: orig}, ints(100))
	if err != nil {
		t.Fatal(err)
	}
	adder2, err := m.Apply(&Closure{Abs: rec}, ints(100))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := m.Apply(adder1, ints(11))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Apply(adder2, ints(11))
	if err != nil {
		t.Fatal(err)
	}
	if !Eq(v1, v2) || v1 != Value(Int(111)) {
		t.Errorf("adders disagree: %s vs %s", v1.Show(), v2.Show())
	}
}

func TestDecompileEscapingContinuation(t *testing.T) {
	orig, rec := recompile(t, `proc(f x !ce !cc)
	  (f x ce cont(y) (f y ce cc))`)
	inc := compileAbsSrc(t, "proc(a !e !k) (+ a 1 e k)")
	m := New(nil)
	v1, err := m.Apply(&Closure{Abs: orig}, []Value{&Closure{Abs: inc}, Int(40)})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.Apply(&Closure{Abs: rec}, []Value{&Closure{Abs: inc}, Int(40)})
	if err != nil {
		t.Fatal(err)
	}
	if !Eq(v1, v2) || v1 != Value(Int(42)) {
		t.Errorf("%s vs %s", v1.Show(), v2.Show())
	}
}

func TestDecompileFreeVariableNames(t *testing.T) {
	abs := compileAbsSrc(t, "proc(x !ce !cc) (+ x delta ce cc)")
	prog, err := CompileProc(abs, "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, free, err := Decompile(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(free) != 1 {
		t.Fatalf("free = %v", free)
	}
	// The reconstructed free variable prints exactly like the capture
	// name, so closure-record bindings resolve against it.
	if free[0].String() != prog.EntryBlock().FreeNames[0] {
		t.Errorf("free name %s vs capture %s", free[0], prog.EntryBlock().FreeNames[0])
	}
	// Behaviour with the free variable bound.
	m := New(nil)
	clo := &Closure{Abs: rec, Env: (*Env)(nil).Extend(free, []Value{Int(7)})}
	v, err := m.Apply(clo, ints(1))
	if err != nil || v != Value(Int(8)) {
		t.Errorf("f(1) with delta=7 = %v, %v", v, err)
	}
}

// TestDecompileAgreesOnRandomPrograms is the decompiler's central
// property: reconstruction preserves behaviour on random programs.
func TestDecompileAgreesOnRandomPrograms(t *testing.T) {
	gen := func(seed int64, depth int) *tml.Abs {
		g := tml.NewVarGen()
		x := g.Fresh("x")
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		rnd := seed
		next := func(n int64) int64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			r := rnd >> 33
			if r < 0 {
				r = -r
			}
			return r % n
		}
		var build func(d int, avail []*tml.Var) *tml.App
		build = func(d int, avail []*tml.Var) *tml.App {
			operand := func() tml.Value {
				if next(2) == 0 {
					return avail[next(int64(len(avail)))]
				}
				return tml.Int(next(100) - 50)
			}
			if d == 0 {
				return tml.NewApp(cc, operand())
			}
			switch next(4) {
			case 0:
				left := build(d-1, avail)
				right := build(d-1, avail)
				return tml.NewApp(tml.NewPrim("<"), operand(), operand(),
					&tml.Abs{Body: left}, &tml.Abs{Body: right})
			default:
				ops := []string{"+", "-", "*"}
				tv := g.Fresh("t")
				rest := build(d-1, append(avail, tv))
				return tml.NewApp(tml.NewPrim(ops[next(3)]), operand(), operand(), ce,
					&tml.Abs{Params: []*tml.Var{tv}, Body: rest})
			}
		}
		return &tml.Abs{Params: []*tml.Var{x, ce, cc}, Body: build(depth, []*tml.Var{x})}
	}
	f := func(seed int64, depthRaw uint8, arg int16) bool {
		abs := gen(seed, int(depthRaw%6))
		prog, err := CompileProc(abs, "p", nil)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		rec, _, err := Decompile(prog, nil)
		if err != nil {
			t.Logf("decompile: %v", err)
			return false
		}
		m := New(nil)
		v1, err1 := m.Apply(&Closure{Abs: abs}, ints(int64(arg)))
		v2, err2 := m.Apply(&Closure{Abs: rec}, ints(int64(arg)))
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || Eq(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDecompileIsReoptimizable answers the paper's §6 question: the
// reconstructed tree supports the same optimizations — it is, in
// particular, valid input for PTML encoding and further rewriting.
func TestDecompileIsReoptimizable(t *testing.T) {
	_, rec := recompile(t, `proc(x !ce !cc)
	  (+ 1 2 ce cont(a) (+ a x ce cc))`)
	// The constant subexpression folds in the reconstruction just as in
	// the original.
	m := New(nil)
	v, err := m.Apply(&Closure{Abs: rec}, ints(10))
	if err != nil || v != Value(Int(13)) {
		t.Fatalf("rec(10) = %v, %v", v, err)
	}
}
