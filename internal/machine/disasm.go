package machine

import (
	"fmt"
	"strings"
)

// Disasm renders a compiled program in a readable assembly-like listing
// for the tmldump tool and for debugging code generation.
func Disasm(p *Program) string {
	var b strings.Builder
	for i, blk := range p.Blocks {
		marker := ""
		if i == p.Entry {
			marker = " (entry)"
		}
		fmt.Fprintf(&b, "block %d %q%s: params=%d slots=%d\n", i, blk.Name, marker, blk.NParams, blk.NSlots)
		if len(blk.FreeNames) > 0 {
			fmt.Fprintf(&b, "  free: %s\n", strings.Join(blk.FreeNames, " "))
		}
		for j, lit := range blk.Lits {
			fmt.Fprintf(&b, "  lit %d: %s\n", j, lit.Show())
		}
		for pc := range blk.Instrs {
			fmt.Fprintf(&b, "  %4d: %s\n", pc, disasmInstr(&blk.Instrs[pc]))
		}
	}
	return b.String()
}

func disasmInstr(in *Instr) string {
	switch in.Op {
	case OpMove:
		return fmt.Sprintf("move  s%d ← %s", in.Dst, srcStr(in.Srcs[0]))
	case OpClos:
		return fmt.Sprintf("clos  s%d ← block %d %s", in.Dst, in.Block, srcsStr(in.Srcs))
	case OpCont:
		return fmt.Sprintf("cont  s%d ← pc %d params %v", in.Dst, in.Target, in.ParamSlots)
	case OpCell:
		return fmt.Sprintf("cell  s%d", in.Dst)
	case OpSetCell:
		return fmt.Sprintf("setc  s%d ← %s", in.Dst, srcStr(in.Srcs[0]))
	case OpJump:
		return fmt.Sprintf("jump  pc %d", in.Target)
	case OpPrim:
		var conts []string
		for _, c := range in.Conts {
			if c.IsLabel {
				conts = append(conts, fmt.Sprintf("→pc %d %v", c.PC, c.ParamSlots))
			} else {
				conts = append(conts, srcStr(c.Src))
			}
		}
		return fmt.Sprintf("prim  %s %s ⇒ [%s]", in.Prim, srcsStr(in.Srcs), strings.Join(conts, ", "))
	case OpCall:
		return fmt.Sprintf("call  %s %s", srcStr(in.Fn), srcsStr(in.Srcs))
	default:
		return fmt.Sprintf("op(%d)", in.Op)
	}
}

func srcStr(s Src) string {
	switch s.Kind {
	case SrcSlot:
		return fmt.Sprintf("s%d", s.Idx)
	case SrcLit:
		return fmt.Sprintf("l%d", s.Idx)
	case SrcFree:
		return fmt.Sprintf("f%d", s.Idx)
	}
	return "?"
}

func srcsStr(srcs []Src) string {
	parts := make([]string, len(srcs))
	for i, s := range srcs {
		parts[i] = srcStr(s)
	}
	return "(" + strings.Join(parts, " ") + ")"
}
