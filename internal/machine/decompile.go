package machine

import (
	"fmt"

	"tycoon/internal/tml"
)

// This file implements the inverse of the TAM code generator: paper §6
// closes with "we are currently investigating techniques to reconstruct a
// TML representation by examining the persistent executable code
// representation of a procedure, effectively inverting the target machine
// code generation process", noting that the reconstructed tree "will not
// be isomorphic to the original" and asking "whether this has an impact
// on the possible optimizations".
//
// Decompile answers that question for this system: it symbolically
// executes a code block, turning
//
//   - join-point labels back into continuation abstractions (shared
//     labels are duplicated — the non-isomorphism the paper predicts),
//   - back-edges back into Y loops,
//   - cell-tied recursive closures back into Y procedure bindings,
//   - captures back into free variables named after the binding table.
//
// The result is well-formed TML that optimizes like the PTML original;
// reflectopt.Options.FromCode uses it in place of the stored PTML tree,
// eliminating the ×2 code-size cost of E3 (see EXPERIMENTS.md, E8).

// Decompile reconstructs a TML procedure from compiled code. The
// returned abstraction's free variables carry the names of the entry
// block's capture list, so closure-record bindings resolve against it
// exactly as against a decoded PTML tree. gen supplies fresh variables
// (nil allocates a private generator).
func Decompile(p *Program, gen *tml.VarGen) (*tml.Abs, []*tml.Var, error) {
	if gen == nil {
		gen = tml.NewVarGen()
	}
	d := &decompiler{prog: p, gen: gen}
	abs, free, err := d.block(p.Entry)
	if err != nil {
		return nil, nil, err
	}
	return abs, free, nil
}

type decompiler struct {
	prog *Program
	gen  *tml.VarGen
}

// dstate is the symbolic frame of one block during reconstruction.
type dstate struct {
	blk    *CodeBlock
	slots  []tml.Value
	free   []*tml.Var
	labels map[int][]int // pc → param slots
	// active maps loop-head pcs to their reconstructed loop variables.
	active map[int]*tml.Var
	// recursive cell bindings collected in the current linear segment.
	cells []recCell
}

type recCell struct {
	v   *tml.Var
	abs *tml.Abs
}

// block reconstructs one code block as a proc abstraction.
func (d *decompiler) block(idx int) (*tml.Abs, []*tml.Var, error) {
	blk := d.prog.Blocks[idx]
	st := &dstate{
		blk:    blk,
		slots:  make([]tml.Value, blk.NSlots),
		labels: make(map[int][]int, len(blk.Labels)),
		active: make(map[int]*tml.Var),
	}
	for _, l := range blk.Labels {
		st.labels[l.PC] = l.ParamSlots
	}
	params := make([]*tml.Var, blk.NParams)
	for i := range params {
		v := d.gen.Fresh(fmt.Sprintf("p%d", i))
		// Blocks are compiled from proc abstractions: the trailing two
		// parameters are the exception and normal continuations.
		if i >= blk.NParams-2 {
			v.Cont = true
		}
		params[i] = v
		st.slots[i] = v
	}
	for _, name := range blk.FreeNames {
		fv := d.gen.Fresh(name)
		// Re-attach the persistent printed name exactly: the binding
		// table is keyed by it.
		fv.Name, fv.ID = splitPrinted(name)
		st.free = append(st.free, fv)
	}
	body, err := d.segment(st, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("machine: decompiling block %q: %w", blk.Name, err)
	}
	return &tml.Abs{Params: params, Body: body}, st.free, nil
}

// splitPrinted recovers (name, id) from a printed variable name base_N so
// the reconstructed free variable prints identically.
func splitPrinted(printed string) (string, int) {
	for i := len(printed) - 1; i > 0; i-- {
		if printed[i] == '_' {
			n := 0
			ok := i+1 < len(printed)
			for j := i + 1; j < len(printed); j++ {
				c := printed[j]
				if c < '0' || c > '9' {
					ok = false
					break
				}
				n = n*10 + int(c-'0')
			}
			if ok {
				return printed[:i], n
			}
			break
		}
	}
	return printed, 0
}

// read fetches an operand as a TML value; abstractions are α-converted on
// every read so one symbolic value can appear at several use sites
// without violating the unique binding rule.
func (d *decompiler) read(st *dstate, s Src) (tml.Value, error) {
	var v tml.Value
	switch s.Kind {
	case SrcSlot:
		v = st.slots[s.Idx]
	case SrcLit:
		lv, ok := litToTML(st.blk.Lits[s.Idx])
		if !ok {
			return nil, fmt.Errorf("literal %d not representable", s.Idx)
		}
		return lv, nil
	case SrcFree:
		if s.Idx >= len(st.free) {
			return nil, fmt.Errorf("free index %d out of range", s.Idx)
		}
		return st.free[s.Idx], nil
	}
	if v == nil {
		return nil, fmt.Errorf("read of undefined slot %d", s.Idx)
	}
	if abs, ok := v.(*tml.Abs); ok {
		return tml.FreshenAbs(abs, d.gen), nil
	}
	return v, nil
}

func litToTML(v Value) (tml.Value, bool) {
	switch v := v.(type) {
	case Int:
		return tml.Int(int64(v)), true
	case Real:
		return tml.Real(float64(v)), true
	case Bool:
		return tml.Bool(bool(v)), true
	case Char:
		return tml.Char(byte(v)), true
	case Str:
		return tml.Str(string(v)), true
	case Unit:
		return tml.Unit(), true
	case Ref:
		return tml.NewOid(uint64(v.OID)), true
	}
	return nil, false
}

// segment reconstructs the instruction sequence starting at pc up to its
// control transfer.
func (d *decompiler) segment(st *dstate, pc int) (*tml.App, error) {
	for {
		if pc < 0 || pc >= len(st.blk.Instrs) {
			return nil, fmt.Errorf("pc %d out of range", pc)
		}
		in := &st.blk.Instrs[pc]
		switch in.Op {
		case OpMove:
			v, err := d.read(st, in.Srcs[0])
			if err != nil {
				return nil, err
			}
			st.slots[in.Dst] = v
			pc++
		case OpClos:
			abs, err := d.closure(st, in)
			if err != nil {
				return nil, err
			}
			st.slots[in.Dst] = abs
			pc++
		case OpCell:
			// A recursive binding cell: stands for the (not yet known)
			// recursive procedure; OpSetCell supplies it.
			st.slots[in.Dst] = d.gen.Fresh("rec")
			pc++
		case OpSetCell:
			cellVar, ok := st.slots[in.Dst].(*tml.Var)
			if !ok {
				return nil, fmt.Errorf("OpSetCell on non-cell slot %d", in.Dst)
			}
			v, err := d.read(st, in.Srcs[0])
			if err != nil {
				return nil, err
			}
			abs, ok := v.(*tml.Abs)
			if !ok {
				return nil, fmt.Errorf("recursive binding is %T", v)
			}
			st.cells = append(st.cells, recCell{v: cellVar, abs: abs})
			pc++
		case OpCont:
			abs, err := d.label(st, in.Target, in.ParamSlots)
			if err != nil {
				return nil, err
			}
			st.slots[in.Dst] = abs
			pc++
		case OpJump:
			return d.jump(st, in.Target)
		case OpPrim:
			return d.prim(st, in)
		case OpCall:
			fn, err := d.read(st, in.Fn)
			if err != nil {
				return nil, err
			}
			args, err := d.reads(st, in.Srcs)
			if err != nil {
				return nil, err
			}
			return d.wrapCells(st, tml.NewApp(fn, args...)), nil
		default:
			return nil, fmt.Errorf("unknown opcode %d", in.Op)
		}
	}
}

func (d *decompiler) reads(st *dstate, srcs []Src) ([]tml.Value, error) {
	out := make([]tml.Value, len(srcs))
	for i, s := range srcs {
		v, err := d.read(st, s)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// wrapCells re-ties recursive procedure bindings collected in this
// segment through the Y combinator.
func (d *decompiler) wrapCells(st *dstate, app *tml.App) *tml.App {
	if len(st.cells) == 0 {
		return app
	}
	cells := st.cells
	st.cells = nil
	c0 := d.gen.FreshCont("c0")
	c := d.gen.FreshCont("c")
	params := []*tml.Var{c0}
	knotArgs := []tml.Value{tml.Value(&tml.Abs{Body: app})}
	for _, rc := range cells {
		params = append(params, rc.v)
		knotArgs = append(knotArgs, rc.abs)
	}
	params = append(params, c)
	knot := tml.NewApp(c, knotArgs...)
	return tml.NewApp(tml.NewPrim("Y"), &tml.Abs{Params: params, Body: knot})
}

// closure reconstructs an OpClos: the callee block becomes an abstraction
// whose free variables are substituted by the capture values.
func (d *decompiler) closure(st *dstate, in *Instr) (*tml.Abs, error) {
	inner, innerFree, err := d.block(in.Block)
	if err != nil {
		return nil, err
	}
	if len(innerFree) != len(in.Srcs) {
		return nil, fmt.Errorf("block %d captures %d, instruction provides %d",
			in.Block, len(innerFree), len(in.Srcs))
	}
	if len(innerFree) == 0 {
		return inner, nil
	}
	subst := make(map[*tml.Var]tml.Value, len(innerFree))
	for i, fv := range innerFree {
		v, err := d.read(st, in.Srcs[i])
		if err != nil {
			return nil, err
		}
		subst[fv] = v
	}
	body := tml.SubstMany(inner.Body, subst).(*tml.App)
	return &tml.Abs{Params: inner.Params, Body: body}, nil
}

// label reconstructs a join point as a continuation abstraction. Shared
// labels are reconstructed once per reference — the duplication the
// paper predicts for non-isomorphic reconstruction.
func (d *decompiler) label(st *dstate, pc int, paramSlots []int) (*tml.Abs, error) {
	// Snapshot the whole symbolic frame: temporaries the label body
	// defines are label-local and must not leak into the continuation of
	// the outer segment.
	saved := append([]tml.Value(nil), st.slots...)
	params := make([]*tml.Var, len(paramSlots))
	for i, slot := range paramSlots {
		v := d.gen.Fresh("t")
		params[i] = v
		st.slots[slot] = v
	}
	body, err := d.segment(st, pc)
	copy(st.slots, saved)
	if err != nil {
		return nil, err
	}
	return &tml.Abs{Params: params, Body: body}, nil
}

// jump reconstructs a transfer to a label: a recursive invocation when
// the label is an active loop head, a fresh Y loop when the label has
// parameters (a potential back-edge target), and plain inlining
// otherwise.
func (d *decompiler) jump(st *dstate, target int) (*tml.App, error) {
	paramSlots, isLabel := st.labels[target]
	if lv, ok := st.active[target]; ok {
		args := make([]tml.Value, len(paramSlots))
		for i, slot := range paramSlots {
			v := st.slots[slot]
			if v == nil {
				return nil, fmt.Errorf("loop argument slot %d undefined", slot)
			}
			if abs, isAbs := v.(*tml.Abs); isAbs {
				v = tml.FreshenAbs(abs, d.gen)
			}
			args[i] = v
		}
		return d.wrapCells(st, tml.NewApp(lv, args...)), nil
	}
	if !isLabel || len(paramSlots) == 0 {
		// Entry jumps and parameterless labels inline; guard against
		// self-loops by registering a loop variable anyway.
		lv := d.gen.FreshCont("loop")
		st.active[target] = lv
		body, err := d.segment(st, target)
		delete(st.active, target)
		if err != nil {
			return nil, err
		}
		if tml.Count(body, lv) == 0 {
			return d.wrapCells(st, body), nil
		}
		// The parameterless label loops back to itself: tie it with Y.
		c0 := d.gen.FreshCont("c0")
		c := d.gen.FreshCont("c")
		knot := tml.NewApp(c, tml.Value(&tml.Abs{Body: tml.NewApp(lv)}), tml.Value(&tml.Abs{Body: body}))
		yArg := &tml.Abs{Params: []*tml.Var{c0, lv, c}, Body: knot}
		return d.wrapCells(st, tml.NewApp(tml.NewPrim("Y"), yArg)), nil
	}

	// A label with parameters reached by jump: reconstruct as a Y loop.
	lv := d.gen.FreshCont("loop")
	st.active[target] = lv
	initArgs := make([]tml.Value, len(paramSlots))
	saved := make([]tml.Value, len(paramSlots))
	params := make([]*tml.Var, len(paramSlots))
	for i, slot := range paramSlots {
		initArgs[i] = st.slots[slot]
		if initArgs[i] == nil {
			return nil, fmt.Errorf("loop entry slot %d undefined", slot)
		}
		if abs, isAbs := initArgs[i].(*tml.Abs); isAbs {
			initArgs[i] = tml.FreshenAbs(abs, d.gen)
		}
		saved[i] = st.slots[slot]
		p := d.gen.Fresh("t")
		params[i] = p
		st.slots[slot] = p
	}
	body, err := d.segment(st, target)
	for i, slot := range paramSlots {
		st.slots[slot] = saved[i]
	}
	delete(st.active, target)
	if err != nil {
		return nil, err
	}
	c0 := d.gen.FreshCont("c0")
	c := d.gen.FreshCont("c")
	entry := &tml.Abs{Body: tml.NewApp(lv, initArgs...)}
	head := &tml.Abs{Params: params, Body: body}
	knot := tml.NewApp(c, tml.Value(entry), tml.Value(head))
	yArg := &tml.Abs{Params: []*tml.Var{c0, lv, c}, Body: knot}
	return d.wrapCells(st, tml.NewApp(tml.NewPrim("Y"), yArg)), nil
}

// prim reconstructs a primitive application; label continuations become
// continuation abstractions.
func (d *decompiler) prim(st *dstate, in *Instr) (*tml.App, error) {
	args, err := d.reads(st, in.Srcs)
	if err != nil {
		return nil, err
	}
	for _, ref := range in.Conts {
		if ref.IsLabel {
			if lv, ok := st.active[ref.PC]; ok {
				// A primitive branch looping straight back to an active
				// head (no argument moves): η-style reference.
				if len(ref.ParamSlots) == 0 {
					args = append(args, lv)
					continue
				}
				return nil, fmt.Errorf("primitive %s branches into active loop with parameters", in.Prim)
			}
			abs, err := d.label(st, ref.PC, ref.ParamSlots)
			if err != nil {
				return nil, err
			}
			args = append(args, abs)
		} else {
			v, err := d.read(st, ref.Src)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
	}
	return d.wrapCells(st, tml.NewApp(tml.NewPrim(in.Prim), args...)), nil
}
