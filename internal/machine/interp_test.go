package machine

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"tycoon/internal/opt"
	"tycoon/internal/prim"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

var popts = tml.ParseOpts{IsPrim: prim.IsPrim}

// runSrc parses src (an application), binds its free variables: any free
// variable named "halt"/"fail" becomes the top-level ok/error continuation
// and extra names are taken from binds; then runs it.
func runSrc(t *testing.T, m *Machine, src string, binds map[string]Value) (Value, error) {
	t.Helper()
	app, err := tml.ParseApp(src, popts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return runApp(m, app, binds)
}

func runApp(m *Machine, app *tml.App, binds map[string]Value) (Value, error) {
	free := tml.FreeVars(app)
	vals := make([]Value, len(free))
	for i, v := range free {
		switch {
		case v.Name == "halt":
			vals[i] = &Halt{}
		case v.Name == "fail":
			vals[i] = &Halt{Err: true}
		case binds[v.Name] != nil:
			vals[i] = binds[v.Name]
		default:
			vals[i] = Unit{}
		}
	}
	env := (*Env)(nil).Extend(free, vals)
	return m.RunApp(app, env)
}

func wantIntResult(t *testing.T, v Value, err error, want int64) {
	t.Helper()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	i, ok := v.(Int)
	if !ok || int64(i) != want {
		t.Fatalf("result = %v, want %d", v.Show(), want)
	}
}

func TestArithmetic(t *testing.T) {
	m := New(nil)
	v, err := runSrc(t, m, "(+ 1 2 fail halt)", nil)
	wantIntResult(t, v, err, 3)

	v, err = runSrc(t, m, "(* 6 7 fail cont(x) (- x 2 fail halt))", nil)
	wantIntResult(t, v, err, 40)
}

func TestDivisionByZeroRaises(t *testing.T) {
	m := New(nil)
	_, err := runSrc(t, m, "(/ 1 0 fail halt)", nil)
	if !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
}

func TestComparisonBranches(t *testing.T) {
	m := New(nil)
	v, err := runSrc(t, m, "(< 1 2 cont()(halt 1) cont()(halt 0))", nil)
	wantIntResult(t, v, err, 1)
	v, err = runSrc(t, m, "(>= 1 2 cont()(halt 1) cont()(halt 0))", nil)
	wantIntResult(t, v, err, 0)
}

func TestPaperLoopExample(t *testing.T) {
	// The §2.3 loop: for i = 1 upto 10 do f(i) end, with f accumulating
	// into an array cell so the side effect is observable.
	src := `
(array 0 cont(acc)
  (Y proc(!c0 !for !c)
     (c cont() (for 1)
        cont(i)
          (> i 10
             cont() ([] acc 0 cont(r) (halt r))
             cont() ([] acc 0 cont(a)
                      (+ a i fail cont(b)
                        ([:=] acc 0 b cont(u)
                          (+ i 1 fail cont(j) (for j)))))))))`
	m := New(nil)
	v, err := runSrc(t, m, src, nil)
	wantIntResult(t, v, err, 55)
}

func TestDeepLoopDoesNotOverflowStack(t *testing.T) {
	// One million iterations through the trampoline.
	src := `
(Y proc(!c0 !loop !c)
   (c cont() (loop 0)
      cont(i)
        (>= i 1000000
           cont() (halt i)
           cont() (+ i 1 fail cont(j) (loop j)))))`
	m := New(nil)
	v, err := runSrc(t, m, src, nil)
	wantIntResult(t, v, err, 1000000)
}

func TestMutualRecursionViaY(t *testing.T) {
	// even/odd mutual recursion: even(10) = true → 1.
	src := `
(Y proc(!c0 even odd !c)
   (c cont() (even 10 cont(r) (if r cont()(halt 1) cont()(halt 0)))
      cont(n k1)
        (== n 0 cont() (k1 true)
                cont() (- n 1 fail cont(p) (odd p k1)))
      cont(n2 k2)
        (== n2 0 cont() (k2 false)
                 cont() (- n2 1 fail cont(p2) (even p2 k2)))))`
	m := New(nil)
	v, err := runSrc(t, m, src, nil)
	wantIntResult(t, v, err, 1)
}

func TestArraysAndCase(t *testing.T) {
	m := New(nil)
	src := `
(array 10 20 30 cont(a)
  ([:=] a 1 99 cont(u)
    ([] a 1 cont(x)
      (== x 99 cont() (halt 1) cont() (halt 0)))))`
	v, err := runSrc(t, m, src, nil)
	wantIntResult(t, v, err, 1)
}

func TestIndexOutOfRangeIsCatchable(t *testing.T) {
	m := New(nil)
	// Without a handler, the program dies.
	_, err := runSrc(t, m, "(array 1 cont(a) ([] a 5 cont(x) (halt x)))", nil)
	if !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v, want unhandled exception", err)
	}
	// With pushHandler, the handler receives the exception value.
	src := `
(pushHandler cont(ex) (halt 42)
             cont() (array 1 cont(a) ([] a 5 cont(x) (halt x))))`
	v, err := runSrc(t, m, src, nil)
	wantIntResult(t, v, err, 42)
}

func TestRaiseAndPopHandler(t *testing.T) {
	m := New(nil)
	// raise transfers to the installed handler.
	v, err := runSrc(t, m, `(pushHandler cont(ex) (halt ex) cont() (raise 7))`, nil)
	wantIntResult(t, v, err, 7)
	// popHandler removes it again: raise then reaches the top level.
	_, err = runSrc(t, m, `
(pushHandler cont(ex) (halt 1)
             cont() (popHandler cont() (raise 9)))`, nil)
	if !errors.Is(err, ErrUnhandled) {
		t.Fatalf("err = %v, want unhandled", err)
	}
}

func TestExceptionValueCarried(t *testing.T) {
	m := New(nil)
	_, err := runSrc(t, m, `(raise "boom")`, nil)
	var ex *Exception
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want *Exception", err)
	}
	if ex.Value.Show() != "boom" {
		t.Errorf("exception value = %s", ex.Value.Show())
	}
}

func TestCCall(t *testing.T) {
	m := New(nil)
	v, err := runSrc(t, m, `(ccall "sqrt" 25.0 fail halt)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := v.(Real); !ok || r != 5.0 {
		t.Errorf("sqrt = %v", v.Show())
	}
	// Domain fault goes to ce.
	_, err = runSrc(t, m, `(ccall "sqrt" -1.0 fail halt)`, nil)
	if !errors.Is(err, ErrUnhandled) {
		t.Errorf("err = %v", err)
	}
	// Unknown host function is a machine error, not an exception.
	_, err = runSrc(t, m, `(ccall "fork" fail halt)`, nil)
	var rte *RuntimeError
	if !errors.As(err, &rte) {
		t.Errorf("err = %v, want RuntimeError", err)
	}
}

func TestPrint(t *testing.T) {
	var buf bytes.Buffer
	m := New(nil)
	m.Out = &buf
	_, err := runSrc(t, m, `(print "hello" cont(u) (print 42 cont(v) (halt ok)))`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "hello\n42\n" {
		t.Errorf("output = %q", got)
	}
}

func TestStoreAccess(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	oid := st.Alloc(&store.Array{Elems: []store.Val{store.IntVal(5), store.IntVal(6)}})
	m := New(st)
	binds := map[string]Value{"arr": Ref{OID: oid}}
	v, err := runSrc(t, m, "([] arr 1 cont(x) (halt x))", binds)
	wantIntResult(t, v, err, 6)
	// Store update through [:=].
	_, err = runSrc(t, m, "([:=] arr 0 77 cont(u) (halt ok))", binds)
	if err != nil {
		t.Fatal(err)
	}
	got := st.MustGet(oid).(*store.Array).Elems[0].Int
	if got != 77 {
		t.Errorf("store array not updated: %d", got)
	}
}

func TestOidLiteralResolves(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	oid := st.Alloc(&store.Tuple{Fields: []store.Val{store.RealVal(3.5)}})
	m := New(st)
	src := "([] <oid 0x" + refHex(uint64(oid)) + "> 0 cont(x) (halt x))"
	v, err := runSrc(t, m, src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := v.(Real); !ok || r != 3.5 {
		t.Errorf("tuple field = %v", v.Show())
	}
}

func refHex(u uint64) string {
	const digits = "0123456789abcdef"
	if u == 0 {
		return "0"
	}
	var b []byte
	for u > 0 {
		b = append([]byte{digits[u&15]}, b...)
		u >>= 4
	}
	return string(b)
}

func TestStepBudget(t *testing.T) {
	m := New(nil)
	m.MaxSteps = 100
	src := `
(Y proc(!c0 !loop !c)
   (c cont() (loop 0)
      cont(i) (+ i 1 fail cont(j) (loop j))))`
	_, err := runSrc(t, m, src, nil)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want step budget", err)
	}
}

func TestApplyClosure(t *testing.T) {
	m := New(nil)
	app, err := tml.ParseApp("(halt cont(x !ce !cc) (+ x 1 ce cc))", popts)
	if err != nil {
		t.Fatal(err)
	}
	// Extract the abstraction and apply it directly.
	abs := app.Args[0].(*tml.Abs)
	clo := &Closure{Abs: abs, Env: nil, Name: "inc"}
	v, err := m.Apply(clo, []Value{Int(41)})
	wantIntResult(t, v, err, 42)
	// Arity mismatch.
	if _, err := m.Apply(clo, []Value{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Applying a non-closure.
	if _, err := m.Apply(Int(3), nil); err == nil {
		t.Error("applied an integer")
	}
}

func TestUnboundVariable(t *testing.T) {
	g := tml.NewVarGen()
	x := g.Fresh("x")
	k := g.FreshCont("k")
	app := tml.NewApp(k, x)
	m := New(nil)
	env := (*Env)(nil).Extend([]*tml.Var{k}, []Value{&Halt{}})
	if _, err := m.RunApp(app, env); err == nil {
		t.Error("unbound variable tolerated")
	}
}

func TestStringsAndConversions(t *testing.T) {
	m := New(nil)
	v, err := runSrc(t, m, `(s+ "ab" "cd" cont(s) (slen s cont(n) (halt n)))`, nil)
	wantIntResult(t, v, err, 4)
	v, err = runSrc(t, m, "(char2int 'a' cont(i) (halt i))", nil)
	wantIntResult(t, v, err, 97)
	v, err = runSrc(t, m, "(int2real 3 cont(r) (r* r 2.0 fail cont(x) (real2int x fail halt)))", nil)
	wantIntResult(t, v, err, 6)
}

func TestValueShow(t *testing.T) {
	cases := map[string]Value{
		"7":      Int(7),
		"2.5":    Real(2.5),
		"3.0":    Real(3),
		"true":   Bool(true),
		"a":      Char('a'),
		"s":      Str("s"),
		"ok":     Unit{},
		"<halt>": &Halt{},
		"proc f": &Closure{Name: "f"},
	}
	for want, v := range cases {
		if got := v.Show(); got != want {
			t.Errorf("Show = %q, want %q", got, want)
		}
	}
	arr := &Array{Elems: []Value{Int(1), Int(2)}}
	if got := arr.Show(); got != "array(1 2)" {
		t.Errorf("array Show = %q", got)
	}
}

func TestEq(t *testing.T) {
	a1 := &Array{}
	a2 := &Array{}
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Real(1), false},
		{Str("x"), Str("x"), true},
		{Unit{}, Unit{}, true},
		{Ref{OID: 3}, Ref{OID: 3}, true},
		{Ref{OID: 3}, Ref{OID: 4}, false},
		{a1, a1, true},
		{a1, a2, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a.Show(), c.b.Show(), got, c.want)
		}
	}
}

// TestOptimizePreservesSemantics is the central cross-package property:
// for random arithmetic TML programs, the optimizer must not change the
// observable result.
func TestOptimizePreservesSemantics(t *testing.T) {
	gen := func(seed int64, depth int) *tml.App {
		g := tml.NewVarGen()
		ce := g.FreshCont("fail")
		cc := g.FreshCont("halt")
		rnd := seed
		next := func(n int64) int64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			r := rnd >> 33
			if r < 0 {
				r = -r
			}
			return r % n
		}
		var build func(d int, avail []*tml.Var) *tml.App
		build = func(d int, avail []*tml.Var) *tml.App {
			operand := func() tml.Value {
				if len(avail) > 0 && next(2) == 0 {
					return avail[next(int64(len(avail)))]
				}
				return tml.Int(next(100) - 50)
			}
			if d == 0 {
				return tml.NewApp(cc, operand())
			}
			switch next(4) {
			case 0: // comparison branch
				tv := g.Fresh("t")
				left := build(d-1, avail)
				right := build(d-1, avail)
				_ = tv
				return tml.NewApp(tml.NewPrim("<"), operand(), operand(),
					&tml.Abs{Body: left}, &tml.Abs{Body: right})
			default:
				ops := []string{"+", "-", "*"}
				tv := g.Fresh("t")
				rest := build(d-1, append(avail, tv))
				return tml.NewApp(tml.NewPrim(ops[next(3)]), operand(), operand(), ce,
					&tml.Abs{Params: []*tml.Var{tv}, Body: rest})
			}
		}
		return build(depth, nil)
	}

	runBoth := func(seed int64, depthRaw uint8) bool {
		depth := int(depthRaw % 7)
		app := gen(seed, depth)
		m := New(nil)
		v1, err1 := runApp(m, app, nil)
		optApp, _, err := opt.Optimize(app, opt.Options{CheckInvariants: true})
		if err != nil {
			t.Logf("optimize error: %v", err)
			return false
		}
		// The optimizer renames nothing at top level, but free variables
		// are shared pointers, so rebinding works identically.
		v2, err2 := runApp(m, optApp, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("error mismatch: %v vs %v", err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		return Eq(v1, v2)
	}
	if err := quick.Check(runBoth, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnvLookupShadowing(t *testing.T) {
	g := tml.NewVarGen()
	x := g.Fresh("x")
	y := g.Fresh("y")
	env := (*Env)(nil).Extend([]*tml.Var{x}, []Value{Int(1)})
	env2 := env.Extend([]*tml.Var{y}, []Value{Int(2)})
	if v, ok := env2.Lookup(x); !ok || v.(Int) != 1 {
		t.Error("outer binding lost")
	}
	if v, ok := env2.Lookup(y); !ok || v.(Int) != 2 {
		t.Error("inner binding lost")
	}
	if _, ok := env2.Lookup(g.Fresh("z")); ok {
		t.Error("unbound variable resolved")
	}
}

func TestShowTruncatesLongArrays(t *testing.T) {
	elems := make([]Value, 20)
	for i := range elems {
		elems[i] = Int(int64(i))
	}
	s := (&Array{Elems: elems}).Show()
	if !strings.Contains(s, "…") {
		t.Errorf("long array not truncated: %s", s)
	}
}
