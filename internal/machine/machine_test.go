package machine

import (
	"strings"
	"testing"

	"tycoon/internal/store"
	"tycoon/internal/tml"
)

func TestValueStoreConversions(t *testing.T) {
	cases := []Value{Int(3), Real(2.5), Bool(true), Char('x'), Str("s"), Ref{OID: 9}, Unit{}}
	for _, v := range cases {
		sv, err := ToStoreVal(v)
		if err != nil {
			t.Errorf("ToStoreVal(%s): %v", v.Show(), err)
			continue
		}
		back := FromStoreVal(sv)
		if !Eq(v, back) {
			t.Errorf("round trip %s → %s", v.Show(), back.Show())
		}
	}
	// Transient heap values cannot be persisted implicitly.
	if _, err := ToStoreVal(&Array{}); err == nil {
		t.Error("ToStoreVal(array) succeeded")
	}
	if _, err := ToStoreVal(&Closure{}); err == nil {
		t.Error("ToStoreVal(closure) succeeded")
	}
}

func TestValueToTMLRoundTrip(t *testing.T) {
	cases := []Value{Int(3), Real(2.5), Bool(false), Char('x'), Str("s"), Ref{OID: 7}, Unit{}}
	for _, v := range cases {
		node, ok := ValueToTML(v)
		if !ok {
			t.Errorf("ValueToTML(%s) failed", v.Show())
			continue
		}
		back, ok := LitValue(node)
		if !ok || !Eq(v, back) {
			t.Errorf("round trip %s → %v", v.Show(), back)
		}
	}
	if _, ok := ValueToTML(&Vector{}); ok {
		t.Error("transient vector lifted to TML")
	}
}

func TestOverrideLinkAndRelink(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	m := New(st)
	// A fake OID overridden with a real closure value runs that closure.
	abs := compileAbsSrc(t, "proc(a !e !k) (+ a 1 e k)")
	clo := &Closure{Abs: abs}
	m.OverrideLink(42, clo)
	v, err := m.Apply(Ref{OID: 42}, []Value{Int(1)})
	if err != nil || v != Value(Int(2)) {
		t.Fatalf("override apply = %v, %v", v, err)
	}
	// Relink(42) drops the override; the OID now fails (nothing stored).
	m.Relink(42)
	if _, err := m.Apply(Ref{OID: 42}, []Value{Int(1)}); err == nil {
		t.Error("apply after Relink succeeded")
	}
	// Relink(Nil) clears everything without panicking.
	m.OverrideLink(43, clo)
	m.Relink(store.Nil)
	if _, err := m.Apply(Ref{OID: 43}, []Value{Int(1)}); err == nil {
		t.Error("apply after global Relink succeeded")
	}
}

func TestLinkErrors(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	m := New(st)
	// Applying an OID of a non-closure object.
	blob := st.Alloc(&store.Blob{Bytes: []byte("x")})
	if _, err := m.Apply(Ref{OID: blob}, nil); err == nil {
		t.Error("applied a blob")
	}
	// A closure whose code blob is missing.
	clo := st.Alloc(&store.Closure{Name: "broken", Code: 999})
	if _, err := m.Apply(Ref{OID: clo}, nil); err == nil {
		t.Error("applied closure with dangling code")
	}
	// A closure with an unbound free variable.
	abs := compileAbsSrc(t, "proc(a !e !k) (+ a delta e k)")
	prog, err := CompileProc(abs, "f", nil)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := EncodeProgram(prog)
	codeOID := st.Alloc(&store.Blob{Bytes: code})
	clo2 := st.Alloc(&store.Closure{Name: "f", Code: codeOID})
	if _, err := m.Apply(Ref{OID: clo2}, []Value{Int(1)}); err == nil {
		t.Error("applied closure with missing binding")
	}
	// No store at all.
	m2 := New(nil)
	if _, err := m2.Apply(Ref{OID: 1}, nil); err == nil {
		t.Error("linked without a store")
	}
}

func TestCallExportErrors(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	m := New(st)
	blob := st.Alloc(&store.Blob{})
	if _, err := m.CallExport(blob, "f", nil); err == nil {
		t.Error("CallExport on non-module succeeded")
	}
	mod := st.Alloc(&store.Module{Name: "m"})
	if _, err := m.CallExport(mod, "missing", nil); err == nil {
		t.Error("CallExport on missing member succeeded")
	}
	if _, err := m.CallExport(12345, "f", nil); err == nil {
		t.Error("CallExport on dangling OID succeeded")
	}
}

func TestDisasmCoversAllOpcodes(t *testing.T) {
	src := `proc(n !ce !cc)
	  (Y proc(!c0 fact !c)
	     (c cont() (fact n ce cc)
	        proc(k !ce2 !cc2)
	          (< k 2
	             cont() (cc2 1)
	             cont() (- k 1 ce2 cont(k1)
	                      (fact k1 ce2 cont(r) (* k r ce2 cc2))))))`
	abs := compileAbsSrc(t, src)
	prog, err := CompileProc(abs, "fact", nil)
	if err != nil {
		t.Fatal(err)
	}
	listing := Disasm(prog)
	for _, want := range []string{"block 0", "(entry)", "prim", "call", "cell", "setc", "jump", "clos"} {
		if !strings.Contains(listing, want) {
			t.Errorf("Disasm missing %q:\n%s", want, listing)
		}
	}
}

func TestHandlerStack(t *testing.T) {
	m := New(nil)
	h1 := &Halt{}
	h2 := &Halt{Err: true}
	m.PushHandler(h1)
	m.PushHandler(h2)
	if h, ok := m.PopHandler(); !ok || h != Value(h2) {
		t.Error("LIFO order violated")
	}
	if h, ok := m.PopHandler(); !ok || h != Value(h1) {
		t.Error("second pop wrong")
	}
	if _, ok := m.PopHandler(); ok {
		t.Error("pop from empty stack succeeded")
	}
}

func TestProgramCacheSharedAcrossClosures(t *testing.T) {
	st, _ := store.Open("")
	defer st.Close()
	abs := compileAbsSrc(t, "proc(a !e !k) (+ a 1 e k)")
	prog, err := CompileProc(abs, "inc", nil)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := EncodeProgram(prog)
	codeOID := st.Alloc(&store.Blob{Bytes: code})
	c1 := st.Alloc(&store.Closure{Name: "a", Code: codeOID})
	c2 := st.Alloc(&store.Closure{Name: "b", Code: codeOID})
	m := New(st)
	if _, err := m.Apply(Ref{OID: c1}, []Value{Int(1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(Ref{OID: c2}, []Value{Int(2)}); err != nil {
		t.Fatal(err)
	}
	v1, _ := m.linked[c1].(*TAMClosure)
	v2, _ := m.linked[c2].(*TAMClosure)
	if v1 == nil || v2 == nil || v1.Prog != v2.Prog {
		t.Error("decoded program not shared between closures")
	}
}

func TestEnvSet(t *testing.T) {
	g := tml.NewVarGen()
	x := g.Fresh("x")
	env := (*Env)(nil).Extend([]*tml.Var{x}, []Value{Int(1)})
	if !env.set(x, Int(2)) {
		t.Fatal("set failed")
	}
	if v, _ := env.Lookup(x); v != Value(Int(2)) {
		t.Error("set did not take effect")
	}
	if env.set(g.Fresh("y"), Int(3)) {
		t.Error("set of unbound variable succeeded")
	}
}
