package machine

import "tycoon/internal/tml"

// This file implements the TAM virtual machine and the unified driver
// that lets compiled and interpreted code call each other freely: the
// query primitives, for example, invoke predicate closures that may be
// either TML closures (interpreted) or TAM closures (compiled), and the
// reflective optimizer swaps one for the other at runtime (paper §4.1).

// tamState is the register state of compiled execution.
type tamState struct {
	prog  *Program
	blk   int
	pc    int
	frame []Value
	free  []Value
}

// execState is either an interpreted state (app != nil) or a compiled
// state (tam.prog != nil).
type execState struct {
	app *tml.App
	env *Env
	tam tamState
}

// drive runs states to completion, switching engines at call boundaries.
func (m *Machine) drive(st execState) (Value, error) {
	for {
		var done bool
		var result Value
		var err error
		if st.app != nil {
			st, done, result, err = m.stepInterp(st.app, st.env)
		} else {
			st, done, result, err = m.runTAM(st.tam)
		}
		if err != nil || done {
			return result, err
		}
	}
}

// transfer dispatches an application of fn to args, yielding the next
// execution state (or completion via a Halt continuation).
func (m *Machine) transfer(fn Value, args []Value) (execState, bool, Value, error) {
	switch f := fn.(type) {
	case *Closure:
		if len(f.Abs.Params) != len(args) {
			return execState{}, true, nil, rtErr("apply", "%s expects %d arguments, got %d",
				f.Show(), len(f.Abs.Params), len(args))
		}
		// Procedure entry costs a step; continuation invocation is a jump
		// (compiled code runs join points without any transfer at all).
		if !f.Abs.IsCont() {
			if err := m.tick(); err != nil {
				return execState{}, true, nil, err
			}
		}
		m.transfers++
		// The environment frame retains the argument slice, but callers
		// (the TAM call instruction, the batched kernels) pass reused
		// scratch buffers — bind a private copy.
		bound := make([]Value, len(args))
		copy(bound, args)
		return execState{app: f.Abs.Body, env: f.Env.Extend(f.Abs.Params, bound)}, false, nil, nil
	case *TAMClosure:
		if err := m.tick(); err != nil {
			return execState{}, true, nil, err
		}
		blk := f.Prog.Blocks[f.Blk]
		if blk.NParams != len(args) {
			return execState{}, true, nil, rtErr("apply", "%s expects %d arguments, got %d",
				f.Show(), blk.NParams, len(args))
		}
		m.transfers++
		frame := m.getFrame(blk.NSlots)
		copy(frame, args)
		return execState{tam: tamState{prog: f.Prog, blk: f.Blk, frame: frame, free: f.Free}}, false, nil, nil
	case *TAMCont:
		if len(f.ParamSlots) != len(args) {
			return execState{}, true, nil, rtErr("apply", "continuation expects %d results, got %d",
				len(f.ParamSlots), len(args))
		}
		m.transfers++
		for i, s := range f.ParamSlots {
			f.Frame[s] = args[i]
		}
		return execState{tam: tamState{prog: f.Prog, blk: f.Blk, pc: f.PC, frame: f.Frame, free: f.Free}}, false, nil, nil
	case *Cell:
		if f.V == nil {
			return execState{}, true, nil, rtErr("apply", "unset recursive binding")
		}
		return m.transfer(f.V, args)
	case Ref:
		// Applying an object identifier links the persistent closure it
		// denotes (paper Fig. 3) and applies the result.
		linked, err := m.linkClosure(f.OID)
		if err != nil {
			return execState{}, true, nil, err
		}
		return m.transfer(linked, args)
	case *Halt:
		var v Value = Unit{}
		if len(args) > 0 {
			v = args[0]
		}
		if f.Err {
			return execState{}, true, nil, &Exception{Value: v}
		}
		return execState{}, true, v, nil
	default:
		return execState{}, true, nil, rtErr("apply", "cannot apply %T", fn)
	}
}

// load resolves an operand. Cells are dereferenced except when capturing
// (OpClos), which copies the cell itself so recursive bindings resolve to
// their final value.
func (ts *tamState) load(s Src, deref bool) Value {
	var v Value
	switch s.Kind {
	case SrcSlot:
		v = ts.frame[s.Idx]
	case SrcLit:
		v = ts.prog.Blocks[ts.blk].Lits[s.Idx]
	case SrcFree:
		v = ts.free[s.Idx]
	}
	if deref {
		if c, ok := v.(*Cell); ok {
			return c.V
		}
	}
	return v
}

// runTAM executes compiled code until control leaves the engine: a call
// or continuation invocation that is not a local join point, or program
// completion through a Halt value.
func (m *Machine) runTAM(ts tamState) (execState, bool, Value, error) {
	for {
		blk := ts.prog.Blocks[ts.blk]
		if ts.pc < 0 || ts.pc >= len(blk.Instrs) {
			return execState{}, true, nil, rtErr("tam", "pc %d out of range in %s", ts.pc, blk.Name)
		}
		in := &blk.Instrs[ts.pc]
		switch in.Op {
		case OpMove:
			ts.frame[in.Dst] = ts.load(in.Srcs[0], true)
			ts.pc++
		case OpClos:
			free := make([]Value, len(in.Srcs))
			for i, s := range in.Srcs {
				free[i] = ts.load(s, false)
			}
			ts.frame[in.Dst] = &TAMClosure{
				Prog: ts.prog, Blk: in.Block, Free: free,
				Name: ts.prog.Blocks[in.Block].Name,
			}
			ts.pc++
		case OpCont:
			ts.frame[in.Dst] = &TAMCont{
				Prog: ts.prog, Blk: ts.blk, PC: in.Target,
				Frame: ts.frame, Free: ts.free, ParamSlots: in.ParamSlots,
			}
			ts.pc++
		case OpCell:
			ts.frame[in.Dst] = &Cell{}
			ts.pc++
		case OpSetCell:
			cell, ok := ts.frame[in.Dst].(*Cell)
			if !ok {
				return execState{}, true, nil, rtErr("tam", "OpSetCell on non-cell")
			}
			cell.V = ts.load(in.Srcs[0], true)
			ts.pc++
		case OpJump:
			ts.pc = in.Target
		case OpPrim:
			if err := m.tick(); err != nil {
				return execState{}, true, nil, err
			}
			base, vals := m.arenaPush(len(in.Srcs))
			for i, s := range in.Srcs {
				vals[i] = ts.load(s, true)
			}
			if f := in.fast; f != nil && !m.noFast {
				// Fused load-slot/apply-primitive/jump superinstruction:
				// every continuation is a local join point, so a branch is
				// a frame write and a jump. The fast executor declines
				// (branch < 0) on anything but the common case, and the
				// generic executor below re-executes the call — sound
				// because fast executors are pure and the step was charged
				// once, above.
				branch, result, nres := f(m, vals, len(in.Conts))
				if branch >= 0 {
					ref := &in.Conts[branch]
					if nres == len(ref.ParamSlots) {
						m.arenaPop(base)
						if nres == 1 {
							ts.frame[ref.ParamSlots[0]] = result
						}
						ts.pc = ref.PC
						continue
					}
				}
			}
			var conts []Value
			if in.contsInert {
				// The executor never retains or inspects a continuation
				// argument (beyond its count): pass shared placeholders
				// instead of reifying the join points over this frame.
				conts = inertConts[len(in.Conts)]
			} else {
				conts = make([]Value, len(in.Conts))
				for i, ref := range in.Conts {
					if ref.IsLabel {
						conts[i] = &TAMCont{Prog: ts.prog, Blk: ts.blk, PC: ref.PC,
							Frame: ts.frame, Free: ts.free, ParamSlots: ref.ParamSlots}
					} else {
						conts[i] = ts.load(ref.Src, true)
					}
				}
			}
			exec, ok := m.exec(in.Prim)
			if !ok {
				m.arenaPop(base)
				return execState{}, true, nil, rtErr(in.Prim, "no executor registered")
			}
			out, err := exec(m, vals, conts)
			m.arenaPop(base)
			if err != nil {
				return execState{}, true, nil, err
			}
			if out.Tail != nil {
				if blk.frameSafe {
					m.putFrame(ts.frame)
					ts.frame = nil
				}
				return m.transfer(out.Tail.Fn, out.Tail.Args)
			}
			if out.Branch < 0 || out.Branch >= len(in.Conts) {
				return execState{}, true, nil, rtErr(in.Prim, "selected continuation %d of %d", out.Branch, len(in.Conts))
			}
			ref := &in.Conts[out.Branch]
			if ref.IsLabel {
				if len(ref.ParamSlots) != len(out.Results) {
					return execState{}, true, nil, rtErr(in.Prim, "label expects %d results, got %d",
						len(ref.ParamSlots), len(out.Results))
				}
				for i, s := range ref.ParamSlots {
					ts.frame[s] = out.Results[i]
				}
				ts.pc = ref.PC
				continue
			}
			k := ts.load(ref.Src, true)
			if blk.frameSafe {
				m.putFrame(ts.frame)
				ts.frame = nil
			}
			return m.transfer(k, out.Results)
		case OpCall:
			fn := ts.load(in.Fn, true)
			base, args := m.arenaPush(len(in.Srcs))
			for i, s := range in.Srcs {
				args[i] = ts.load(s, true)
			}
			// The arguments are loaded out of the frame, so a frame-safe
			// block's frame can be recycled before the transfer — a
			// self-recursive tail call reuses the very frame it leaves.
			if blk.frameSafe {
				m.putFrame(ts.frame)
				ts.frame = nil
			}
			next, done, result, err := m.transfer(fn, args)
			m.arenaPop(base)
			if err != nil || done {
				return execState{}, done, result, err
			}
			if next.app == nil && next.tam.prog != nil {
				// Stay inside the engine for TAM-to-TAM calls.
				ts = next.tam
				continue
			}
			return next, false, nil, nil
		default:
			return execState{}, true, nil, rtErr("tam", "unknown opcode %d", in.Op)
		}
	}
}
