package machine

import (
	"testing"
	"testing/quick"

	"tycoon/internal/tml"
)

// compileAndRun compiles a proc abstraction (given as the sole argument
// of a (halt proc…) wrapper or parsed directly) and applies it.
func compileAbsSrc(t *testing.T, src string) *tml.Abs {
	t.Helper()
	n, err := tml.Parse(src, popts)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	abs, ok := n.(*tml.Abs)
	if !ok {
		t.Fatalf("source is %T, want abstraction", n)
	}
	return abs
}

func compileClosure(t *testing.T, src, name string, free []Value) *TAMClosure {
	t.Helper()
	abs := compileAbsSrc(t, src)
	prog, err := CompileProc(abs, name, nil)
	if err != nil {
		t.Fatalf("CompileProc: %v", err)
	}
	if want := len(prog.EntryBlock().FreeNames); want != len(free) {
		t.Fatalf("entry captures %v, got %d values", prog.EntryBlock().FreeNames, len(free))
	}
	return &TAMClosure{Prog: prog, Blk: prog.Entry, Free: free, Name: name}
}

func TestTAMSimpleArith(t *testing.T) {
	clo := compileClosure(t, "proc(x !ce !cc) (+ x 1 ce cont(t) (* t 2 ce cc))", "f", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(20)})
	wantIntResult(t, v, err, 42)
}

func TestTAMConditional(t *testing.T) {
	clo := compileClosure(t, "proc(x !ce !cc) (< x 10 cont() (cc 1) cont() (cc 0))", "f", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(5)})
	wantIntResult(t, v, err, 1)
	v, err = m.Apply(clo, []Value{Int(15)})
	wantIntResult(t, v, err, 0)
}

func TestTAMLoop(t *testing.T) {
	// Sum 1..n with a Y loop: continuation bindings become join points,
	// the recursive jump is a frame-local OpJump.
	src := `proc(n !ce !cc)
	  (Y proc(!c0 !loop !c)
	     (c cont() (loop 1 0)
	        cont(i acc)
	          (> i n
	             cont() (cc acc)
	             cont() (+ acc i ce cont(a2)
	                      (+ i 1 ce cont(i2) (loop i2 a2))))))`
	clo := compileClosure(t, src, "sum", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(10)})
	wantIntResult(t, v, err, 55)
	v, err = m.Apply(clo, []Value{Int(1000)})
	wantIntResult(t, v, err, 500500)
}

func TestTAMDeepLoopConstantSpace(t *testing.T) {
	src := `proc(n !ce !cc)
	  (Y proc(!c0 !loop !c)
	     (c cont() (loop 0)
	        cont(i)
	          (>= i n
	             cont() (cc i)
	             cont() (+ i 1 ce cont(j) (loop j)))))`
	clo := compileClosure(t, src, "count", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(2_000_000)})
	wantIntResult(t, v, err, 2_000_000)
}

func TestTAMRecursiveProc(t *testing.T) {
	// Recursive factorial through a Y procedure binding (cell-tied).
	src := `proc(n !ce !cc)
	  (Y proc(!c0 fact !c)
	     (c cont() (fact n ce cc)
	        proc(k !ce2 !cc2)
	          (< k 2
	             cont() (cc2 1)
	             cont() (- k 1 ce2 cont(k1)
	                      (fact k1 ce2 cont(r)
	                        (* k r ce2 cc2))))))`
	clo := compileClosure(t, src, "fact", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(10)})
	wantIntResult(t, v, err, 3628800)
}

func TestTAMMutualRecursion(t *testing.T) {
	src := `proc(n !ce !cc)
	  (Y proc(!c0 even odd !c)
	     (c cont() (even n ce cc)
	        proc(a !e1 !k1)
	          (== a 0 cont() (k1 1)
	                  cont() (- a 1 e1 cont(p) (odd p e1 k1)))
	        proc(b !e2 !k2)
	          (== b 0 cont() (k2 0)
	                  cont() (- b 1 e2 cont(q) (even q e2 k2)))))`
	clo := compileClosure(t, src, "even", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(10)})
	wantIntResult(t, v, err, 1)
	v, err = m.Apply(clo, []Value{Int(7)})
	wantIntResult(t, v, err, 0)
}

func TestTAMHigherOrder(t *testing.T) {
	// apply-twice: the continuation of the outer call escapes into the
	// unknown callee and must be reified.
	src := `proc(f x !ce !cc)
	  (f x ce cont(y) (f y ce cc))`
	twice := compileClosure(t, src, "twice", nil)
	inc := compileClosure(t, "proc(a !e !k) (+ a 1 e k)", "inc", nil)
	m := New(nil)
	v, err := m.Apply(twice, []Value{inc, Int(40)})
	wantIntResult(t, v, err, 42)
}

func TestTAMCallsInterpretedClosure(t *testing.T) {
	// A compiled procedure calling an interpreted closure and vice versa.
	twice := compileClosure(t, "proc(f x !ce !cc) (f x ce cont(y) (f y ce cc))", "twice", nil)
	incAbs := compileAbsSrc(t, "proc(a !e !k) (+ a 1 e k)")
	interpInc := &Closure{Abs: incAbs, Name: "inc"}
	m := New(nil)
	v, err := m.Apply(twice, []Value{interpInc, Int(1)})
	wantIntResult(t, v, err, 3)

	// Interpreted caller, compiled callee.
	twiceAbs := compileAbsSrc(t, "proc(f x !ce !cc) (f x ce cont(y) (f y ce cc))")
	interpTwice := &Closure{Abs: twiceAbs, Name: "twice"}
	compiledInc := compileClosure(t, "proc(a !e !k) (+ a 1 e k)", "inc", nil)
	v, err = m.Apply(interpTwice, []Value{compiledInc, Int(5)})
	wantIntResult(t, v, err, 7)
}

func TestTAMFreeVariables(t *testing.T) {
	// The abstraction captures free variables bound at closure creation.
	abs := compileAbsSrc(t, "proc(x !ce !cc) (+ x delta ce cc)")
	prog, err := CompileProc(abs, "addDelta", nil)
	if err != nil {
		t.Fatal(err)
	}
	names := prog.EntryBlock().FreeNames
	if len(names) != 1 {
		t.Fatalf("FreeNames = %v, want [delta_…]", names)
	}
	clo := &TAMClosure{Prog: prog, Blk: prog.Entry, Free: []Value{Int(100)}}
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(1)})
	wantIntResult(t, v, err, 101)
}

func TestTAMNestedClosureCapture(t *testing.T) {
	// An inner proc captures both its enclosing parameter and a global:
	// transitive capture through two block levels.
	src := `proc(a !ce !cc)
	  (cc proc(b !e2 !k2) (+ a b e2 cont(t) (+ t g e2 k2)))`
	abs := compileAbsSrc(t, src)
	prog, err := CompileProc(abs, "makeAdder", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.EntryBlock().FreeNames) != 1 {
		t.Fatalf("entry FreeNames = %v", prog.EntryBlock().FreeNames)
	}
	mk := &TAMClosure{Prog: prog, Blk: prog.Entry, Free: []Value{Int(1000)}}
	m := New(nil)
	adder, err := m.Apply(mk, []Value{Int(30)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Apply(adder, []Value{Int(12)})
	wantIntResult(t, v, err, 1042)
}

func TestTAMCaseAnalysis(t *testing.T) {
	src := `proc(x !ce !cc)
	  (== x 1 2 3
	      cont() (cc 10)
	      cont() (cc 20)
	      cont() (cc 30)
	      cont() (cc 0))`
	clo := compileClosure(t, src, "sel", nil)
	m := New(nil)
	for _, tt := range []struct{ in, want int64 }{{1, 10}, {2, 20}, {3, 30}, {9, 0}} {
		v, err := m.Apply(clo, []Value{Int(tt.in)})
		wantIntResult(t, v, err, tt.want)
	}
}

func TestTAMExceptions(t *testing.T) {
	src := `proc(x !ce !cc)
	  (pushHandler cont(ex) (cc 99)
	               cont() (/ 10 x ce cont(q) (popHandler cont() (cc q))))`
	clo := compileClosure(t, src, "safe", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(2)})
	wantIntResult(t, v, err, 5)
	// Division by zero raises through ce… which here is the top-level
	// handler; instead make the TML raise explicitly.
	src2 := `proc(x !ce !cc)
	  (pushHandler cont(ex) (cc 99)
	               cont() (== x 0 cont() (raise "zero") cont() (cc x)))`
	clo2 := compileClosure(t, src2, "guard", nil)
	v, err = m.Apply(clo2, []Value{Int(0)})
	wantIntResult(t, v, err, 99)
	v, err = m.Apply(clo2, []Value{Int(5)})
	wantIntResult(t, v, err, 5)
}

func TestTAMParallelMovesOnBackEdge(t *testing.T) {
	// Swap-style loop: (loop b a) from parameters (a b) requires staging
	// through a temporary or the values alias.
	src := `proc(n !ce !cc)
	  (Y proc(!c0 !loop !c)
	     (c cont() (loop 0 1 n)
	        cont(a b i)
	          (== i 0
	             cont() (cc a)
	             cont() (+ a b ce cont(s)
	                      (- i 1 ce cont(j) (loop b s j))))))`
	clo := compileClosure(t, src, "fib", nil)
	m := New(nil)
	v, err := m.Apply(clo, []Value{Int(10)})
	wantIntResult(t, v, err, 55) // fib(10)
}

func TestTAMCodecRoundTrip(t *testing.T) {
	src := `proc(n !ce !cc)
	  (Y proc(!c0 fact !c)
	     (c cont() (fact n ce cc)
	        proc(k !ce2 !cc2)
	          (< k 2
	             cont() (cc2 1)
	             cont() (- k 1 ce2 cont(k1)
	                      (fact k1 ce2 cont(r)
	                        (* k r ce2 cc2))))))`
	abs := compileAbsSrc(t, src)
	prog, err := CompileProc(abs, "fact", nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeProgram(data)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded program must run identically.
	m := New(nil)
	clo := &TAMClosure{Prog: back, Blk: back.Entry}
	v, err := m.Apply(clo, []Value{Int(6)})
	wantIntResult(t, v, err, 720)
	// Re-encoding is deterministic.
	data2, err := EncodeProgram(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("encoding not deterministic")
	}
}

func TestTAMCodecRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {'X'}, {'T', 9}, {'T', 1, 5}} {
		if _, err := DecodeProgram(data); err == nil {
			t.Errorf("DecodeProgram(%v) succeeded", data)
		}
	}
}

// TestTAMAgreesWithInterpreter is the cross-engine property: compiled and
// interpreted execution of random programs must agree.
func TestTAMAgreesWithInterpreter(t *testing.T) {
	gen := func(seed int64, depth int) *tml.Abs {
		g := tml.NewVarGen()
		x := g.Fresh("x")
		ce := g.FreshCont("ce")
		cc := g.FreshCont("cc")
		rnd := seed
		next := func(n int64) int64 {
			rnd = rnd*6364136223846793005 + 1442695040888963407
			r := rnd >> 33
			if r < 0 {
				r = -r
			}
			return r % n
		}
		var build func(d int, avail []*tml.Var) *tml.App
		build = func(d int, avail []*tml.Var) *tml.App {
			operand := func() tml.Value {
				if next(2) == 0 {
					return avail[next(int64(len(avail)))]
				}
				return tml.Int(next(100) - 50)
			}
			if d == 0 {
				return tml.NewApp(cc, operand())
			}
			switch next(4) {
			case 0:
				left := build(d-1, avail)
				right := build(d-1, avail)
				return tml.NewApp(tml.NewPrim("<"), operand(), operand(),
					&tml.Abs{Body: left}, &tml.Abs{Body: right})
			default:
				ops := []string{"+", "-", "*"}
				tv := g.Fresh("t")
				rest := build(d-1, append(avail, tv))
				return tml.NewApp(tml.NewPrim(ops[next(3)]), operand(), operand(), ce,
					&tml.Abs{Params: []*tml.Var{tv}, Body: rest})
			}
		}
		return &tml.Abs{Params: []*tml.Var{x, ce, cc}, Body: build(depth, []*tml.Var{x})}
	}
	f := func(seed int64, depthRaw uint8, arg int16) bool {
		abs := gen(seed, int(depthRaw%7))
		m := New(nil)
		interp := &Closure{Abs: abs}
		v1, err1 := m.Apply(interp, []Value{Int(int64(arg))})
		prog, err := CompileProc(abs, "p", nil)
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		compiled := &TAMClosure{Prog: prog, Blk: prog.Entry}
		v2, err2 := m.Apply(compiled, []Value{Int(int64(arg))})
		if (err1 == nil) != (err2 == nil) {
			t.Logf("error mismatch: %v vs %v", err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		return Eq(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestTAMStepBudget(t *testing.T) {
	src := `proc(n !ce !cc)
	  (Y proc(!c0 !loop !c)
	     (c cont() (loop 0)
	        cont(i) (+ i 1 ce cont(j) (loop j))))`
	clo := compileClosure(t, src, "spin", nil)
	m := New(nil)
	m.MaxSteps = 1000
	if _, err := m.Apply(clo, []Value{Int(0)}); err == nil {
		t.Error("runaway compiled loop not stopped")
	}
}
