package machine

import (
	"fmt"

	"tycoon/internal/prim"
	"tycoon/internal/tml"
)

// This file implements the TAM (Tycoon Abstract Machine) code generator:
// the target of the paper's back end (Fig. 3). TML compiles to flat
// instruction blocks:
//
//   - every proc abstraction becomes a CodeBlock with a slot frame;
//   - continuation abstractions that stay within their proc compile to
//     join points — labels in the same block sharing the frame — so the
//     common case (straight-line CPS chains, conditionals, Y loops) runs
//     without closure allocation;
//   - continuations that escape (passed to an unknown procedure) are
//     reified as lightweight continuation closures capturing the frame;
//   - the Y primitive disappears at compile time: continuation bindings
//     become labels (loops become jumps), procedure bindings become
//     closures tied through mutable cells.
//
// During compilation every jump target holds a label ID; resolveLabels
// rewrites them to instruction addresses once all join points are placed.
//
// The TAM plays the rôle of executable native code in the paper's
// experiments: its serialised size is the "code size" of E3 and its
// execution speed the baseline of E1/E2.

// SrcKind discriminates instruction operands.
type SrcKind uint8

// Operand kinds.
const (
	SrcSlot SrcKind = iota // frame slot
	SrcLit                 // literal pool entry
	SrcFree                // captured free variable
)

// Src is an instruction operand.
type Src struct {
	Kind SrcKind
	Idx  int
}

// Op is a TAM opcode.
type Op uint8

// The TAM instruction set.
const (
	OpMove    Op = iota // frame[Dst] = load(Srcs[0])
	OpClos              // frame[Dst] = closure(Block, captures Srcs)
	OpCont              // frame[Dst] = continuation(Target, ParamSlots, current frame)
	OpCell              // frame[Dst] = fresh cell
	OpSetCell           // cell(frame[Dst]).V = load(Srcs[0])
	OpJump              // pc = Target
	OpPrim              // execute Prim on loads(Srcs); continue per Conts
	OpCall              // tail-call load(Fn) with loads(Srcs)
)

// ContRef is how a primitive instruction refers to one of its
// continuation arguments: either a join-point label in the same block
// (results written to ParamSlots, jump to PC — no allocation) or a value
// operand holding a continuation closure.
type ContRef struct {
	IsLabel    bool
	PC         int   // label target (IsLabel; label ID before resolution)
	ParamSlots []int // where the label's parameters live (IsLabel)
	Src        Src   // continuation value (!IsLabel)
}

// Instr is one TAM instruction.
type Instr struct {
	Op     Op
	Dst    int
	Block  int // OpClos: callee block index
	Target int // OpJump, OpCont (label ID before resolution)
	Prim   string
	Fn     Src
	Srcs   []Src
	Conts  []ContRef
	// ParamSlots, for OpCont, are the parameter slots of the reified
	// label (results are written there when the continuation is invoked).
	ParamSlots []int

	// Execution metadata computed by prepareProgram (derived, never
	// serialised; the zero values select the safe generic path).
	//
	// fast, when non-nil, is the fused load-slot/apply-primitive/jump
	// executor for this OpPrim: the superinstruction the codegen emits
	// for the predicate-body shapes the optimizer produces.
	fast fastFn
	// contsInert marks an OpPrim whose continuation arguments are all
	// local join points and whose executor never retains a continuation:
	// the executor receives a shared placeholder slice instead of freshly
	// reified TAMConts.
	contsInert bool
}

// CodeBlock is the compiled form of one proc abstraction plus all the
// join points flattened into it.
type CodeBlock struct {
	Name    string
	NParams int
	NSlots  int
	Lits    []Value // scalar and Ref literals only
	Instrs  []Instr
	// FreeNames documents the captured variables (diagnostics, linker,
	// and the reflective optimizer's binding table alignment).
	FreeNames []string
	// Labels records every join point (pc and parameter slots). The
	// decompiler (see decompile.go) uses it to invert code generation —
	// the paper's §6 "reconstruct a TML representation by examining the
	// persistent executable code representation".
	Labels []LabelInfo

	// Escape analysis computed by prepareProgram (derived, never
	// serialised; the zero values are the conservative answers).
	//
	// frameSafe reports that no reference to an activation's frame can
	// survive the activation: the block reifies no continuation (OpCont)
	// and calls no continuation-capturing primitive. The VM recycles
	// frames of frameSafe blocks on its free-list when control leaves.
	frameSafe bool
	// rowSafe reports that the first parameter — the row tuple in the
	// batched query calling convention — is never retained beyond the
	// activation (not captured, not stored by a retaining primitive, not
	// passed to an unknown procedure or continuation), so the caller may
	// reuse one tuple buffer across calls. It applies to flat tuples of
	// scalars, which is what the relational substrate passes.
	rowSafe bool
}

// LabelInfo describes one join point of a block.
type LabelInfo struct {
	PC         int
	ParamSlots []int
}

// Program is a set of blocks with a designated entry block.
type Program struct {
	Blocks []*CodeBlock
	Entry  int

	// prepared records that prepareProgram has run; programs are
	// immutable (and shared across goroutines) once published.
	prepared bool
}

// EntryBlock returns the entry code block.
func (p *Program) EntryBlock() *CodeBlock { return p.Blocks[p.Entry] }

// TAMClosure is a compiled procedure value.
type TAMClosure struct {
	Prog *Program
	Blk  int
	Free []Value
	Name string
}

func (*TAMClosure) value() {}

// Show renders the compiled closure.
func (c *TAMClosure) Show() string {
	if c.Name != "" {
		return "tamproc " + c.Name
	}
	return "tamproc"
}

// TAMCont is a reified continuation: a code label plus the frame (and
// captured free variables) it continues in.
type TAMCont struct {
	Prog       *Program
	Blk        int
	PC         int
	Frame      []Value
	Free       []Value
	ParamSlots []int
}

func (*TAMCont) value() {}

// Show renders the continuation.
func (c *TAMCont) Show() string { return "tamcont" }

// Cell is the mutable binding cell tying recursive closures created for
// Y procedure bindings. Operand loads dereference cells transparently.
type Cell struct{ V Value }

func (*Cell) value() {}

// Show renders the cell.
func (c *Cell) Show() string {
	if c.V == nil {
		return "cell(unset)"
	}
	return "cell(…)"
}

// CompileProc compiles a proc abstraction to a TAM program whose entry
// block expects the abstraction's parameters plus its two continuations.
// Free variables of the abstraction become the entry closure's captures,
// in the order reported by the entry block's FreeNames.
func CompileProc(abs *tml.Abs, name string, reg *prim.Registry) (*Program, error) {
	prog, _, err := compileProcFree(abs, name, reg)
	return prog, err
}

// compileProcFree is CompileProc keeping the captured free variables of
// the entry block (in capture order, aligned with FreeNames).
func compileProcFree(abs *tml.Abs, name string, reg *prim.Registry) (*Program, []*tml.Var, error) {
	if reg == nil {
		reg = prim.Default
	}
	c := &compiler{prog: &Program{}, reg: reg}
	entry, free, err := c.compileAbs(abs, name, nil)
	if err != nil {
		return nil, nil, err
	}
	c.prog.Entry = entry
	prepareProgram(c.prog, reg)
	return c.prog, free, nil
}

// CompileClosure compiles an interpreted closure into an equivalent TAM
// closure, resolving its captured free variables from the closure's
// environment. The batched query kernels use it to compile predicate
// closures on the fly once a scan is large enough to amortise the
// compilation; the caller is responsible for checking that compilation
// preserves the abstract step count (see StepNeutral in batch.go).
func CompileClosure(clo *Closure, reg *prim.Registry) (*TAMClosure, error) {
	prog, freeVars, err := compileProcFree(clo.Abs, clo.Name, reg)
	if err != nil {
		return nil, err
	}
	entry := prog.EntryBlock()
	free := make([]Value, len(freeVars))
	for i, v := range freeVars {
		val, ok := clo.Env.Lookup(v)
		if !ok {
			return nil, rtErr("compile", "%s: unbound free variable %s", entry.Name, v)
		}
		free[i] = val
	}
	return &TAMClosure{Prog: prog, Blk: prog.Entry, Free: free, Name: clo.Name}, nil
}

type compiler struct {
	prog *Program
	reg  *prim.Registry
}

type bindKind uint8

const (
	bindSlot bindKind = iota
	bindFree
	bindLabel
)

// binding records how a variable is addressed inside a block.
type binding struct {
	kind  bindKind
	slot  int    // bindSlot
	free  int    // bindFree
	label *label // bindLabel
}

// label is a join point: a continuation abstraction flattened into the
// current block.
type label struct {
	id         int
	abs        *tml.Abs
	paramSlots []int
}

// blockCtx carries the state of one block's compilation.
type blockCtx struct {
	c      *compiler
	parent *blockCtx
	block  *CodeBlock
	vars   map[*tml.Var]*binding
	// freeVars lists captured variables in capture order; OpClos loads
	// them in the same order.
	freeVars []*tml.Var
	litIdx   map[litKey]int
	labels   []*label
	pending  []*label
	labelPCs []int
}

type litKey struct {
	kind byte
	i    int64
	s    string
}

// compileAbs compiles a proc abstraction into a new block, returning the
// block index and the captured free variables (to be resolved in parent).
func (c *compiler) compileAbs(abs *tml.Abs, name string, parent *blockCtx) (int, []*tml.Var, error) {
	blk := &CodeBlock{Name: name, NParams: len(abs.Params)}
	idx := len(c.prog.Blocks)
	c.prog.Blocks = append(c.prog.Blocks, blk)
	ctx := &blockCtx{
		c:      c,
		parent: parent,
		block:  blk,
		vars:   make(map[*tml.Var]*binding),
		litIdx: make(map[litKey]int),
	}
	for i, p := range abs.Params {
		ctx.vars[p] = &binding{kind: bindSlot, slot: i}
	}
	blk.NSlots = len(abs.Params)
	if err := ctx.emitApp(abs.Body); err != nil {
		return 0, nil, err
	}
	if err := ctx.flushPending(); err != nil {
		return 0, nil, err
	}
	ctx.resolveLabels()
	for _, lbl := range ctx.labels {
		if lbl.id < len(ctx.labelPCs) && ctx.labelPCs[lbl.id] >= 0 {
			blk.Labels = append(blk.Labels, LabelInfo{PC: ctx.labelPCs[lbl.id], ParamSlots: lbl.paramSlots})
		}
	}
	for _, v := range ctx.freeVars {
		blk.FreeNames = append(blk.FreeNames, v.String())
	}
	return idx, ctx.freeVars, nil
}

// newSlot allocates a frame slot.
func (ctx *blockCtx) newSlot() int {
	s := ctx.block.NSlots
	ctx.block.NSlots++
	return s
}

// emit appends an instruction and returns its pc.
func (ctx *blockCtx) emit(in Instr) int {
	ctx.block.Instrs = append(ctx.block.Instrs, in)
	return len(ctx.block.Instrs) - 1
}

// lit interns a literal value in the block pool.
func (ctx *blockCtx) lit(v Value) Src {
	key := litKeyOf(v)
	if i, ok := ctx.litIdx[key]; ok {
		return Src{Kind: SrcLit, Idx: i}
	}
	i := len(ctx.block.Lits)
	ctx.block.Lits = append(ctx.block.Lits, v)
	ctx.litIdx[key] = i
	return Src{Kind: SrcLit, Idx: i}
}

func litKeyOf(v Value) litKey {
	switch v := v.(type) {
	case Int:
		return litKey{kind: 'i', i: int64(v)}
	case Real:
		return litKey{kind: 'r', s: v.Show()}
	case Bool:
		if v {
			return litKey{kind: 'b', i: 1}
		}
		return litKey{kind: 'b', i: 0}
	case Char:
		return litKey{kind: 'c', i: int64(v)}
	case Str:
		return litKey{kind: 's', s: string(v)}
	case Unit:
		return litKey{kind: 'u'}
	case Ref:
		return litKey{kind: 'o', i: int64(v.OID)}
	default:
		return litKey{kind: '?', s: fmt.Sprintf("%p", v)}
	}
}

// newLabel registers a continuation abstraction as a join point of the
// current block: parameters get frame slots, the body is scheduled for
// emission, and the returned label's ID stands in for the target pc until
// resolveLabels runs.
func (ctx *blockCtx) newLabel(abs *tml.Abs) *label {
	slots := make([]int, len(abs.Params))
	for i, p := range abs.Params {
		s := ctx.newSlot()
		slots[i] = s
		ctx.vars[p] = &binding{kind: bindSlot, slot: s}
	}
	lbl := &label{id: len(ctx.labels), abs: abs, paramSlots: slots}
	ctx.labels = append(ctx.labels, lbl)
	ctx.pending = append(ctx.pending, lbl)
	return lbl
}

// flushPending emits the bodies of all scheduled join points (which may
// schedule further ones).
func (ctx *blockCtx) flushPending() error {
	ctx.labelPCs = make([]int, 0, len(ctx.labels))
	emitted := make(map[int]bool)
	for len(ctx.pending) > 0 {
		lbl := ctx.pending[0]
		ctx.pending = ctx.pending[1:]
		if emitted[lbl.id] {
			continue
		}
		emitted[lbl.id] = true
		for len(ctx.labelPCs) <= lbl.id {
			ctx.labelPCs = append(ctx.labelPCs, -1)
		}
		ctx.labelPCs[lbl.id] = len(ctx.block.Instrs)
		if err := ctx.emitApp(lbl.abs.Body); err != nil {
			return err
		}
	}
	return nil
}

// resolveLabels rewrites label IDs into instruction addresses.
func (ctx *blockCtx) resolveLabels() {
	pc := func(id int) int {
		if id < 0 || id >= len(ctx.labelPCs) || ctx.labelPCs[id] < 0 {
			panic(fmt.Sprintf("tam: unresolved label %d in block %s", id, ctx.block.Name))
		}
		return ctx.labelPCs[id]
	}
	for i := range ctx.block.Instrs {
		in := &ctx.block.Instrs[i]
		switch in.Op {
		case OpJump, OpCont:
			in.Target = pc(in.Target)
		case OpPrim:
			for j := range in.Conts {
				if in.Conts[j].IsLabel {
					in.Conts[j].PC = pc(in.Conts[j].PC)
				}
			}
		}
	}
}

// lookup resolves a variable: locally, or by capturing it from the parent
// chain as a free variable.
func (ctx *blockCtx) lookup(v *tml.Var) (*binding, error) {
	if b, ok := ctx.vars[v]; ok {
		return b, nil
	}
	// Not local: capture as a free variable. In nested blocks the parent
	// must be able to address it (transitively capturing it itself); in
	// the entry block the variable is free in the whole procedure and its
	// value arrives through the closure's capture list, aligned with the
	// R-value binding table of the closure record (paper §4.1).
	if ctx.parent != nil {
		if _, err := ctx.parent.lookup(v); err != nil {
			return nil, err
		}
	}
	idx := len(ctx.freeVars)
	ctx.freeVars = append(ctx.freeVars, v)
	b := &binding{kind: bindFree, free: idx}
	ctx.vars[v] = b
	return b, nil
}

// valueSrc compiles a TML value into an operand, emitting closure or
// continuation construction as needed.
func (ctx *blockCtx) valueSrc(v tml.Value) (Src, error) {
	switch v := v.(type) {
	case *tml.Lit, *tml.Oid:
		val, _ := LitValue(v)
		return ctx.lit(val), nil
	case *tml.Var:
		b, err := ctx.lookup(v)
		if err != nil {
			return Src{}, err
		}
		switch b.kind {
		case bindSlot:
			return Src{Kind: SrcSlot, Idx: b.slot}, nil
		case bindFree:
			return Src{Kind: SrcFree, Idx: b.free}, nil
		case bindLabel:
			// A label used as a value escapes: reify it.
			return ctx.reifyLabel(b.label), nil
		}
		return Src{}, fmt.Errorf("tam: unhandled binding kind %d", b.kind)
	case *tml.Abs:
		if v.IsCont() {
			return ctx.reifyLabel(ctx.newLabel(v)), nil
		}
		return ctx.closureSrc(v, "")
	case *tml.Prim:
		return Src{}, fmt.Errorf("tam: primitive %s is not a first-class value", v.Name)
	default:
		return Src{}, fmt.Errorf("tam: unexpected value %T", v)
	}
}

// reifyLabel materialises a join point as a continuation value capturing
// the current frame.
func (ctx *blockCtx) reifyLabel(lbl *label) Src {
	dst := ctx.newSlot()
	ctx.emit(Instr{Op: OpCont, Dst: dst, Target: lbl.id, ParamSlots: lbl.paramSlots})
	return Src{Kind: SrcSlot, Idx: dst}
}

// closureSrc emits OpClos for a proc abstraction.
func (ctx *blockCtx) closureSrc(abs *tml.Abs, name string) (Src, error) {
	blkIdx, freeVars, err := ctx.c.compileAbs(abs, name, ctx)
	if err != nil {
		return Src{}, err
	}
	caps := make([]Src, len(freeVars))
	for i, fv := range freeVars {
		src, err := ctx.valueSrc(fv)
		if err != nil {
			return Src{}, err
		}
		caps[i] = src
	}
	dst := ctx.newSlot()
	ctx.emit(Instr{Op: OpClos, Dst: dst, Block: blkIdx, Srcs: caps})
	return Src{Kind: SrcSlot, Idx: dst}, nil
}

// contRef compiles a continuation argument of a primitive.
func (ctx *blockCtx) contRef(v tml.Value) (ContRef, error) {
	switch v := v.(type) {
	case *tml.Abs:
		lbl := ctx.newLabel(v)
		return ContRef{IsLabel: true, PC: lbl.id, ParamSlots: lbl.paramSlots}, nil
	case *tml.Var:
		b, err := ctx.lookup(v)
		if err != nil {
			return ContRef{}, err
		}
		if b.kind == bindLabel {
			return ContRef{IsLabel: true, PC: b.label.id, ParamSlots: b.label.paramSlots}, nil
		}
		src, err := ctx.valueSrc(v)
		if err != nil {
			return ContRef{}, err
		}
		return ContRef{Src: src}, nil
	default:
		return ContRef{}, fmt.Errorf("tam: continuation argument is %T", v)
	}
}

// emitApp compiles one application; since TML is CPS, every application
// ends the current straight-line sequence with a transfer of control.
func (ctx *blockCtx) emitApp(app *tml.App) error {
	switch fn := app.Fn.(type) {
	case *tml.Prim:
		if fn.Name == "Y" {
			return ctx.emitY(app)
		}
		return ctx.emitPrim(fn.Name, app.Args)
	case *tml.Var:
		b, err := ctx.lookup(fn)
		if err != nil {
			return err
		}
		if b.kind == bindLabel {
			// Direct jump to a join point: move arguments into the
			// label's parameter slots.
			if len(app.Args) != len(b.label.paramSlots) {
				return fmt.Errorf("tam: label %s arity mismatch", fn)
			}
			if err := ctx.emitParallelMoves(app.Args, b.label.paramSlots); err != nil {
				return err
			}
			ctx.emit(Instr{Op: OpJump, Target: b.label.id})
			return nil
		}
		return ctx.emitCall(app.Fn, app.Args)
	case *tml.Oid:
		// Calling through an object identifier: the VM links the
		// persistent closure on first application.
		return ctx.emitCall(app.Fn, app.Args)
	case *tml.Abs:
		// β-redex: bind arguments to fresh slots and continue inline.
		if len(fn.Params) != len(app.Args) {
			return fmt.Errorf("tam: β-redex arity mismatch")
		}
		for i, p := range fn.Params {
			src, err := ctx.valueSrc(app.Args[i])
			if err != nil {
				return err
			}
			dst := ctx.newSlot()
			ctx.emit(Instr{Op: OpMove, Dst: dst, Srcs: []Src{src}})
			ctx.vars[p] = &binding{kind: bindSlot, slot: dst}
		}
		return ctx.emitApp(fn.Body)
	default:
		return fmt.Errorf("tam: cannot apply %T", app.Fn)
	}
}

// emitParallelMoves writes argument values into target slots, using
// temporaries when a target slot is also a source (loop back-edges).
func (ctx *blockCtx) emitParallelMoves(args []tml.Value, dsts []int) error {
	srcs := make([]Src, len(args))
	for i, a := range args {
		src, err := ctx.valueSrc(a)
		if err != nil {
			return err
		}
		srcs[i] = src
	}
	// Break read-after-write hazards: if any later source reads a slot an
	// earlier move overwrites, stage through temporaries. Staging every
	// conflicting move is simple and the frames are registers, not memory.
	targets := make(map[int]bool, len(dsts))
	for _, d := range dsts {
		targets[d] = true
	}
	for i, src := range srcs {
		if src.Kind == SrcSlot && targets[src.Idx] && src.Idx != dsts[i] {
			tmp := ctx.newSlot()
			ctx.emit(Instr{Op: OpMove, Dst: tmp, Srcs: []Src{src}})
			srcs[i] = Src{Kind: SrcSlot, Idx: tmp}
		}
	}
	for i, src := range srcs {
		if src.Kind == SrcSlot && src.Idx == dsts[i] {
			continue
		}
		ctx.emit(Instr{Op: OpMove, Dst: dsts[i], Srcs: []Src{src}})
	}
	return nil
}

// emitPrim compiles a primitive application.
func (ctx *blockCtx) emitPrim(name string, args []tml.Value) error {
	var nodeVals, nodeConts []tml.Value
	if d, ok := ctx.c.reg.Lookup(name); ok && d.NConts >= 0 {
		split := len(args) - d.NConts
		if split < 0 {
			return fmt.Errorf("tam: primitive %s with too few arguments", name)
		}
		nodeVals, nodeConts = args[:split], args[split:]
	} else {
		nodeVals, nodeConts = tml.SplitArgs(args)
	}
	srcs := make([]Src, len(nodeVals))
	for i, a := range nodeVals {
		src, err := ctx.valueSrc(a)
		if err != nil {
			return err
		}
		srcs[i] = src
	}
	conts := make([]ContRef, len(nodeConts))
	for i, a := range nodeConts {
		ref, err := ctx.contRef(a)
		if err != nil {
			return err
		}
		conts[i] = ref
	}
	ctx.emit(Instr{Op: OpPrim, Prim: name, Srcs: srcs, Conts: conts})
	return nil
}

// emitCall compiles a call of an unknown procedure: every argument —
// including continuations — is passed as a value.
func (ctx *blockCtx) emitCall(fn tml.Value, args []tml.Value) error {
	fnSrc, err := ctx.valueSrc(fn)
	if err != nil {
		return err
	}
	srcs := make([]Src, len(args))
	for i, a := range args {
		src, err := ctx.valueSrc(a)
		if err != nil {
			return err
		}
		srcs[i] = src
	}
	ctx.emit(Instr{Op: OpCall, Fn: fnSrc, Srcs: srcs})
	return nil
}

// emitY compiles (Y λ(c₀ v₁…vₙ c)(c cont₀ abs₁…absₙ)): continuation
// bindings become join points (loops become jumps), procedure bindings
// become closures tied through cells, and control falls through to the
// entry continuation cont₀.
func (ctx *blockCtx) emitY(app *tml.App) error {
	if len(app.Args) != 1 {
		return fmt.Errorf("tam: Y expects one abstraction")
	}
	yAbs, ok := app.Args[0].(*tml.Abs)
	if !ok || len(yAbs.Params) < 2 {
		return fmt.Errorf("tam: malformed Y abstraction")
	}
	knot := yAbs.Body
	cVar, ok := knot.Fn.(*tml.Var)
	if !ok || cVar != yAbs.Params[len(yAbs.Params)-1] {
		return fmt.Errorf("tam: Y body must invoke its final continuation")
	}
	if len(knot.Args) != len(yAbs.Params)-1 {
		return fmt.Errorf("tam: Y knot arity mismatch")
	}
	binders := yAbs.Params[:len(yAbs.Params)-1] // c₀ v₁…vₙ
	type recProc struct {
		v    *tml.Var
		abs  *tml.Abs
		cell int
	}
	var procs []recProc
	// First pass: declare all bindings so that bodies can reference each
	// other (mutual recursion). A knot argument that is a *variable*
	// (η-reduction contracts cont()(loop) to loop) aliases another knot
	// binding and is resolved after the declarations exist.
	type aliasRef struct{ v, target *tml.Var }
	var aliases []aliasRef
	for i, arg := range knot.Args {
		v := binders[i]
		switch arg := arg.(type) {
		case *tml.Abs:
			if arg.IsCont() {
				lbl := ctx.newLabel(arg)
				ctx.vars[v] = &binding{kind: bindLabel, label: lbl}
			} else {
				cell := ctx.newSlot()
				ctx.emit(Instr{Op: OpCell, Dst: cell})
				ctx.vars[v] = &binding{kind: bindSlot, slot: cell}
				procs = append(procs, recProc{v: v, abs: arg, cell: cell})
			}
		case *tml.Var:
			aliases = append(aliases, aliasRef{v: v, target: arg})
		default:
			return fmt.Errorf("tam: Y knot argument %d is %T", i, arg)
		}
	}
	for range aliases {
		for _, a := range aliases {
			if ctx.vars[a.v] == nil {
				if b := ctx.vars[a.target]; b != nil {
					ctx.vars[a.v] = b
				}
			}
		}
	}
	for _, a := range aliases {
		if ctx.vars[a.v] == nil {
			return fmt.Errorf("tam: Y knot alias %s unresolved", a.v)
		}
	}
	// Second pass: build the recursive closures and tie the cells.
	for _, rp := range procs {
		src, err := ctx.closureSrc(rp.abs, rp.v.Name)
		if err != nil {
			return err
		}
		ctx.emit(Instr{Op: OpSetCell, Dst: rp.cell, Srcs: []Src{src}})
	}
	// Entry: c₀ is always a continuation label; jump to it.
	entryBinding := ctx.vars[binders[0]]
	if entryBinding.kind != bindLabel {
		return fmt.Errorf("tam: Y entry binding must be a continuation")
	}
	if len(entryBinding.label.paramSlots) != 0 {
		return fmt.Errorf("tam: Y entry continuation must take no parameters")
	}
	ctx.emit(Instr{Op: OpJump, Target: entryBinding.label.id})
	return nil
}
