package machine

import (
	"math"

	"tycoon/internal/prim"
)

// This file implements the fused "load-slot / apply-primitive / jump"
// fast path of the TAM: for the primitive shapes the optimizer emits in
// predicate bodies (indexing, comparisons, arithmetic, boolean
// connectives, case analysis), the dispatch through Outcome — with its
// per-call Results slice and reified continuations — collapses into a
// direct function returning a branch index and at most one interned
// result. prepareProgram attaches a fast executor to an OpPrim only
// when every continuation argument is a local join point, so taking a
// branch is a frame-local jump and the whole primitive executes without
// allocating.
//
// A fast executor returns branch < 0 to decline — wrong dynamic types,
// faults, store access — and the VM falls back to the generic executor,
// which produces the canonical outcome (including throws). Fast
// executors are pure reads of their arguments, so re-execution is safe.

// fastFn is a fused primitive executor: branch selects the continuation
// (branch < 0 declines), nres is 0 or 1 results.
type fastFn func(m *Machine, vals []Value, nconts int) (branch int, result Value, nres int)

var fastExecs = map[string]fastFn{}

// maxInertConts bounds the shared placeholder continuation slices.
const maxInertConts = 16

// inertConts[n] is a shared slice of n placeholder continuations, passed
// to executors that never inspect their continuation arguments beyond
// len(conts) (contsInert instructions). The placeholders are inert
// sentinels: transferring control to one is a bug and fails loudly in
// transfer's default case.
var inertConts [maxInertConts + 1][]Value

// labelCont is the inert placeholder standing in for a join-point
// continuation that is never reified.
type labelCont struct{}

func (labelCont) value() {}

// Show renders the placeholder.
func (labelCont) Show() string { return "<join point>" }

func init() {
	for n := range inertConts {
		s := make([]Value, n)
		for i := range s {
			s[i] = labelCont{}
		}
		inertConts[n] = s
	}
	registerFastExecs()
}

func fastIntOp(eval func(a, b int64) (int64, bool)) fastFn {
	return func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		a, ok := vals[0].(Int)
		if !ok {
			return -1, nil, 0
		}
		b, ok := vals[1].(Int)
		if !ok {
			return -1, nil, 0
		}
		r, ok := eval(int64(a), int64(b))
		if !ok {
			return -1, nil, 0 // fault: generic path throws or branches
		}
		return 1, IntValue(r), 1
	}
}

func fastIntCmp(eval func(a, b int64) bool) fastFn {
	return func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		a, ok := vals[0].(Int)
		if !ok {
			return -1, nil, 0
		}
		b, ok := vals[1].(Int)
		if !ok {
			return -1, nil, 0
		}
		if eval(int64(a), int64(b)) {
			return 0, nil, 0
		}
		return 1, nil, 0
	}
}

func registerFastExecs() {
	fastExecs["+"] = fastIntOp(func(a, b int64) (int64, bool) { return a + b, !prim.AddOverflows(a, b) })
	fastExecs["-"] = fastIntOp(func(a, b int64) (int64, bool) { return a - b, !prim.SubOverflows(a, b) })
	fastExecs["*"] = fastIntOp(func(a, b int64) (int64, bool) { return a * b, !prim.MulOverflows(a, b) })
	fastExecs["/"] = fastIntOp(func(a, b int64) (int64, bool) {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return 0, false
		}
		return a / b, true
	})
	fastExecs["%"] = fastIntOp(func(a, b int64) (int64, bool) {
		if b == 0 {
			return 0, false
		}
		return a % b, true
	})
	fastExecs["neg"] = func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		a, ok := vals[0].(Int)
		if !ok || int64(a) == math.MinInt64 {
			return -1, nil, 0
		}
		return 1, IntValue(-int64(a)), 1
	}
	fastExecs["<"] = fastIntCmp(func(a, b int64) bool { return a < b })
	fastExecs[">"] = fastIntCmp(func(a, b int64) bool { return a > b })
	fastExecs["<="] = fastIntCmp(func(a, b int64) bool { return a <= b })
	fastExecs[">="] = fastIntCmp(func(a, b int64) bool { return a >= b })

	// ([] a i c): transient aggregate indexing; store references decline
	// to the generic executor, out-of-range declines so the generic path
	// raises the proper exception.
	fastExecs["[]"] = func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		i, ok := vals[1].(Int)
		if !ok {
			return -1, nil, 0
		}
		var elems []Value
		switch a := vals[0].(type) {
		case *Vector:
			elems = a.Elems
		case *Array:
			elems = a.Elems
		default:
			return -1, nil, 0
		}
		if i < 0 || int64(i) >= int64(len(elems)) {
			return -1, nil, 0
		}
		return 0, elems[i], 1
	}

	// (== v t₁…tₙ c₁…cₙ [cElse]): identity case analysis; a fall-through
	// without else declines so the generic path throws.
	fastExecs["=="] = func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		if len(vals) == 0 {
			return -1, nil, 0
		}
		v := vals[0]
		tags := vals[1:]
		hasElse := nconts == len(tags)+1
		if !hasElse && nconts != len(tags) {
			return -1, nil, 0
		}
		for i, tag := range tags {
			if Eq(v, tag) {
				return i, nil, 0
			}
		}
		if hasElse {
			return nconts - 1, nil, 0
		}
		return -1, nil, 0
	}

	fastExecs["if"] = func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		b, ok := vals[0].(Bool)
		if !ok {
			return -1, nil, 0
		}
		if b {
			return 0, nil, 0
		}
		return 1, nil, 0
	}
	fastExecs["not"] = func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		b, ok := vals[0].(Bool)
		if !ok {
			return -1, nil, 0
		}
		return 0, BoolValue(!bool(b)), 1
	}
	fastExecs["and"] = fastBoolOp(func(a, b bool) bool { return a && b })
	fastExecs["or"] = fastBoolOp(func(a, b bool) bool { return a || b })
}

func fastBoolOp(eval func(a, b bool) bool) fastFn {
	return func(m *Machine, vals []Value, nconts int) (int, Value, int) {
		a, ok := vals[0].(Bool)
		if !ok {
			return -1, nil, 0
		}
		b, ok := vals[1].(Bool)
		if !ok {
			return -1, nil, 0
		}
		return 0, BoolValue(eval(bool(a), bool(b))), 1
	}
}
