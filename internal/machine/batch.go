package machine

import "tycoon/internal/tml"

// This file implements the batched calling convention of the query
// kernels (DESIGN.md §9): a Batch prepares one procedure value for
// repeated application — one argument buffer, one pair of top-level
// continuations, and (when provably step-neutral) a one-time compilation
// of the procedure to TAM code — so that applying a predicate to the
// next row costs a frame reuse and a transfer instead of the slice and
// continuation allocations Apply performs per call.

// Batch applies one procedure value to many argument tuples.
type Batch struct {
	m       *Machine
	fn      Value
	target  Value
	nargs   int
	args    []Value
	rowSafe bool
}

// NewBatch prepares fn for repeated application with nargs value
// arguments per call (the trailing exception and normal continuations
// are supplied by the batch). When compile is true, fn is an interpreted
// closure, and compiling it provably preserves the abstract step count
// (StepNeutral), the closure is compiled to TAM code once, so every call
// runs on the frame free-list without re-entering the tree interpreter.
// Compilation failures are not errors — the batch falls back to the
// interpreted closure.
func (m *Machine) NewBatch(fn Value, nargs int, compile bool) *Batch {
	b := &Batch{m: m, fn: fn, target: fn, nargs: nargs}
	b.args = make([]Value, nargs+2)
	b.args[nargs] = &Halt{Err: true}
	b.args[nargs+1] = &Halt{Err: false}
	if clo, ok := fn.(*Closure); ok && compile &&
		len(clo.Abs.Params) == nargs+2 && StepNeutral(clo.Abs) {
		if tc, err := CompileClosure(clo, m.reg()); err == nil {
			b.target = tc
		}
	}
	if tc, ok := b.target.(*TAMClosure); ok {
		b.rowSafe = tc.Prog.Blocks[tc.Blk].rowSafe
	}
	return b
}

// Compiled reports whether the batch runs compiled TAM code.
func (b *Batch) Compiled() bool {
	_, ok := b.target.(*TAMClosure)
	return ok
}

// RowSafe reports that the first argument of a call — the row tuple in
// the query calling convention — provably does not survive the call, so
// the caller may reuse one tuple buffer across the whole batch.
func (b *Batch) RowSafe() bool { return b.rowSafe }

// Call applies the batch procedure to args (len(args) must be the batch
// arity) and runs it to completion. The args slice is not retained.
func (b *Batch) Call(args []Value) (Value, error) {
	copy(b.args[:b.nargs], args)
	st, done, result, err := b.m.transfer(b.target, b.args)
	if err != nil || done {
		return result, err
	}
	return b.m.drive(st)
}

// StepNeutral reports that compiling abs to TAM code preserves the
// abstract step count. The interpreter charges a step for every
// primitive execution and every procedure entry; it also charges for Y
// applications and for entering a non-continuation abstraction in
// function position (a β-redex), both of which the code generator
// compiles away (Y into labels and cells, β-redexes into moves). A
// procedure is step-neutral exactly when neither shape occurs anywhere
// in its body — the normal form the optimizer's expansion produces for
// predicate bodies.
func StepNeutral(abs *tml.Abs) bool { return stepNeutralApp(abs.Body) }

func stepNeutralApp(app *tml.App) bool {
	switch fn := app.Fn.(type) {
	case *tml.Prim:
		if fn.Name == "Y" {
			return false
		}
	case *tml.Abs:
		if !fn.IsCont() {
			return false
		}
	}
	if !stepNeutralVal(app.Fn) {
		return false
	}
	for _, a := range app.Args {
		if !stepNeutralVal(a) {
			return false
		}
	}
	return true
}

func stepNeutralVal(v tml.Value) bool {
	if abs, ok := v.(*tml.Abs); ok {
		return stepNeutralApp(abs.Body)
	}
	return true
}
