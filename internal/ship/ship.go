// Package ship implements code shipping between Tycoon stores — the
// application domain paper §6 names for uniform persistent code
// representations ("like code shipping in distributed systems [Mathiske
// et al. 1995]").
//
// Export walks the transitive reachability graph of a persistent closure
// — its TAM code, its PTML tree, its R-value bindings, the modules and
// closures those reference — and serialises a self-contained bundle.
// Import replays the bundle into another store, remapping every OID
// (including the OIDs embedded in PTML and TAM literal pools).
//
// Two kinds of objects cross the wire by *name* rather than by value:
//
//   - relations: code ships, bulk data stays; an imported binding to
//     relation R resolves against the target store's "rel:R" root;
//   - modules: the shipped code binds to the target's installed module of
//     the same name — shipping an application neither re-ships the stdlib
//     nor overrides the target's libraries. Modules the target lacks make
//     Import fail with ErrUnresolved (install them first).
package ship

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"tycoon/internal/machine"
	"tycoon/internal/ptml"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// ErrBadBundle wraps structural bundle decoding failures (bad magic,
// malformed entries).
var ErrBadBundle = errors.New("ship: corrupt bundle")

// ErrCorruptBundle is the sentinel wrapped by CorruptBundleError: the
// bundle was damaged in transit (truncation, bit flips) and its v2
// integrity envelope caught it.
var ErrCorruptBundle = errors.New("ship: bundle damaged in transit")

// ErrUnresolved reports a by-name dependency missing in the target store.
var ErrUnresolved = errors.New("ship: unresolved dependency")

// CorruptBundleError reports damage detected by the v2 bundle envelope.
type CorruptBundleError struct {
	Reason string
}

func (e *CorruptBundleError) Error() string { return "ship: corrupt bundle: " + e.Reason }

// Unwrap makes errors.Is(err, ErrCorruptBundle) hold.
func (e *CorruptBundleError) Unwrap() error { return ErrCorruptBundle }

const (
	// bundleMagic tags the current bundle format: the magic, a u32 body
	// length, the body, and a CRC32C (Castagnoli) of the body. Bundles
	// cross machine boundaries, so unlike the store log they get no second
	// chance at detecting rot — Import verifies before touching the store.
	bundleMagic = "TYSHIP02"
	// bundleMagicV1 tags the legacy unchecksummed format, still imported.
	bundleMagicV1 = "TYSHIP01"

	entryObject   = byte(1) // shipped by value
	entryRelation = byte(2) // resolved by name in the target
	entryModule   = byte(3) // resolved by name in the target
)

var bundleCRC = crc32.MakeTable(crc32.Castagnoli)

// Export serialises the transitive code closure of root.
func Export(st *store.Store, root store.OID) ([]byte, error) {
	e := &exporter{st: st, index: make(map[store.OID]int)}
	if err := e.visit(root); err != nil {
		return nil, err
	}
	var body bytes.Buffer
	putU32(&body, uint32(len(e.entries)))
	for _, ent := range e.entries {
		body.WriteByte(ent.kind)
		if ent.kind == entryRelation || ent.kind == entryModule {
			putStr(&body, ent.relName)
			continue
		}
		body.WriteByte(byte(ent.obj.Kind()))
		payload := encodeShipped(ent.obj, e.index)
		putU32(&body, uint32(len(payload)))
		body.Write(payload)
	}
	// The root is always entry 0 (visit order). Wrap the body in the v2
	// integrity envelope: length up front, checksum at the end.
	var out bytes.Buffer
	out.WriteString(bundleMagic)
	putU32(&out, uint32(body.Len()))
	out.Write(body.Bytes())
	putU32(&out, crc32.Checksum(body.Bytes(), bundleCRC))
	return out.Bytes(), nil
}

// bundleBody validates a bundle's envelope and returns its entry stream.
// V2 bundles are length- and checksum-verified; v1 bundles pass through
// unchecked (they carry no integrity data).
func bundleBody(bundle []byte) ([]byte, error) {
	mlen := len(bundleMagic)
	if len(bundle) < mlen {
		return nil, fmt.Errorf("%w: bad magic", ErrBadBundle)
	}
	switch string(bundle[:mlen]) {
	case bundleMagicV1:
		return bundle[mlen:], nil
	case bundleMagic:
		if len(bundle) < mlen+4+4 {
			return nil, &CorruptBundleError{Reason: "truncated envelope"}
		}
		n := int(binary.LittleEndian.Uint32(bundle[mlen:]))
		if len(bundle) != mlen+4+n+4 {
			return nil, &CorruptBundleError{
				Reason: fmt.Sprintf("envelope frames %d body bytes, bundle has %d", n, len(bundle)-mlen-8),
			}
		}
		buf := bundle[mlen+4 : mlen+4+n]
		want := binary.LittleEndian.Uint32(bundle[mlen+4+n:])
		if got := crc32.Checksum(buf, bundleCRC); got != want {
			return nil, &CorruptBundleError{
				Reason: fmt.Sprintf("checksum mismatch (computed %08x, recorded %08x)", got, want),
			}
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrBadBundle)
	}
}

type entry struct {
	kind    byte
	obj     store.Object
	relName string
}

type exporter struct {
	st      *store.Store
	index   map[store.OID]int
	entries []entry
}

// visit records oid (and everything reachable from it) in the bundle.
func (e *exporter) visit(oid store.OID) error {
	if oid == store.Nil {
		return nil
	}
	if _, done := e.index[oid]; done {
		return nil
	}
	obj, err := e.st.Get(oid)
	if err != nil {
		return fmt.Errorf("ship: %w", err)
	}
	// Reserve the slot before recursing (cycles: mutually recursive
	// closures reference each other through bindings).
	idx := len(e.entries)
	e.index[oid] = idx
	switch o := obj.(type) {
	case *store.Relation:
		e.entries = append(e.entries, entry{kind: entryRelation, relName: o.Name})
		return nil
	case *store.Module:
		e.entries = append(e.entries, entry{kind: entryModule, relName: o.Name})
		return nil
	}
	e.entries = append(e.entries, entry{kind: entryObject, obj: obj})

	for _, ref := range refsOf(obj) {
		if err := e.visit(ref); err != nil {
			return err
		}
	}
	return nil
}

// refsOf enumerates the outgoing OID references of an object, including
// the OIDs embedded in PTML and TAM blobs (none are produced by the
// regular compilation pipeline, but reflectively generated code may
// carry them).
func refsOf(obj store.Object) []store.OID {
	var refs []store.OID
	val := func(v store.Val) {
		if v.Kind == store.ValRef && v.Ref != store.Nil {
			refs = append(refs, v.Ref)
		}
	}
	switch o := obj.(type) {
	case *store.Closure:
		refs = append(refs, o.Code)
		if o.PTML != store.Nil {
			refs = append(refs, o.PTML)
		}
		for _, b := range o.Bindings {
			val(b.Val)
		}
	case *store.Module:
		for _, ex := range o.Exports {
			val(ex.Val)
		}
	case *store.Tuple:
		for _, f := range o.Fields {
			val(f)
		}
	case *store.Array:
		for _, f := range o.Elems {
			val(f)
		}
	}
	return refs
}

// Import replays a bundle into st and returns the new OID of the
// bundle's root object.
func Import(st *store.Store, bundle []byte) (store.OID, error) {
	body, err := bundleBody(bundle)
	if err != nil {
		return store.Nil, err
	}
	r := &reader{b: body}
	n := int(r.u32())
	// Every entry takes at least two bytes; a larger declared count is
	// corrupt and must not drive a huge allocation (v1 bundles have no
	// checksum to catch this earlier).
	if r.err == nil && (n < 0 || n > len(body)) {
		return store.Nil, fmt.Errorf("%w: absurd entry count %d", ErrBadBundle, n)
	}
	type pending struct {
		kind    store.Kind
		payload []byte
	}
	entries := make([]pending, 0, n)
	oids := make([]store.OID, n)

	// Pass 1: allocate OIDs (placeholders for objects, resolved roots
	// for by-name relations) so cyclic references can be rewritten.
	for i := 0; i < n && r.err == nil; i++ {
		switch r.u8() {
		case entryRelation:
			name := r.str()
			oid, ok := st.Root("rel:" + name)
			if !ok {
				return store.Nil, fmt.Errorf("%w: relation %q not present in target store", ErrUnresolved, name)
			}
			oids[i] = oid
			entries = append(entries, pending{})
		case entryModule:
			name := r.str()
			oid, ok := st.Root("module:" + name)
			if !ok {
				return store.Nil, fmt.Errorf("%w: module %q not installed in target store", ErrUnresolved, name)
			}
			oids[i] = oid
			entries = append(entries, pending{})
		case entryObject:
			kind := store.Kind(r.u8())
			payload := r.bytes()
			oids[i] = st.Alloc(&store.Blob{}) // placeholder
			entries = append(entries, pending{kind: kind, payload: payload})
		default:
			return store.Nil, fmt.Errorf("%w: unknown entry", ErrBadBundle)
		}
	}
	if r.err != nil {
		return store.Nil, r.err
	}

	// Pass 2: decode payloads, remap refs, update placeholders.
	for i, ent := range entries {
		if ent.payload == nil {
			continue // by-name entry
		}
		obj, err := decodeShipped(ent.kind, ent.payload, oids)
		if err != nil {
			return store.Nil, err
		}
		if err := st.Update(oids[i], obj); err != nil {
			return store.Nil, err
		}
	}
	if n == 0 {
		return store.Nil, fmt.Errorf("%w: empty bundle", ErrBadBundle)
	}
	return oids[0], nil
}

// ExportFunction is a convenience: resolve module.function in src and
// export its closure.
func ExportFunction(st *store.Store, module, fn string) ([]byte, error) {
	modOID, ok := st.Root("module:" + module)
	if !ok {
		return nil, fmt.Errorf("ship: module %s not found", module)
	}
	obj, err := st.Get(modOID)
	if err != nil {
		return nil, err
	}
	mod, ok := obj.(*store.Module)
	if !ok {
		return nil, fmt.Errorf("ship: %s is not a module", module)
	}
	v, ok := mod.Lookup(fn)
	if !ok || v.Kind != store.ValRef {
		return nil, fmt.Errorf("ship: %s.%s is not an exported function", module, fn)
	}
	return Export(st, v.Ref)
}

// --- shipped-object codec -------------------------------------------------
//
// Payloads reuse the store's own object encoding, but with every OID
// replaced by its bundle index before encoding and mapped to the new OID
// after decoding. PTML and TAM blobs are additionally deep-rewritten.

func encodeShipped(obj store.Object, index map[store.OID]int) []byte {
	remapped := remapObject(obj, func(oid store.OID) store.OID {
		if oid == store.Nil {
			return store.Nil
		}
		idx, ok := index[oid]
		if !ok {
			// Unreachable by construction; keep Nil to fail loudly on use.
			return store.Nil
		}
		return store.OID(idx + 1) // index+1 so Nil stays distinguishable
	})
	return store.EncodePayload(remapped)
}

func decodeShipped(kind store.Kind, payload []byte, oids []store.OID) (store.Object, error) {
	obj, err := store.DecodePayload(kind, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBundle, err)
	}
	var mapErr error
	out := remapObject(obj, func(ref store.OID) store.OID {
		if ref == store.Nil {
			return store.Nil
		}
		idx := int(ref) - 1
		if idx < 0 || idx >= len(oids) {
			mapErr = fmt.Errorf("%w: reference %d out of range", ErrBadBundle, idx)
			return store.Nil
		}
		return oids[idx]
	})
	if mapErr != nil {
		return nil, mapErr
	}
	return out, nil
}

// remapObject deep-copies obj with every OID reference rewritten by f,
// including OIDs inside PTML and TAM code blobs.
func remapObject(obj store.Object, f func(store.OID) store.OID) store.Object {
	val := func(v store.Val) store.Val {
		if v.Kind == store.ValRef {
			v.Ref = f(v.Ref)
		}
		return v
	}
	switch o := obj.(type) {
	case *store.Closure:
		c := &store.Closure{
			Name: o.Name, Code: f(o.Code), Cost: o.Cost, Savings: o.Savings,
		}
		if o.PTML != store.Nil {
			c.PTML = f(o.PTML)
		}
		for _, b := range o.Bindings {
			c.Bindings = append(c.Bindings, store.Binding{Name: b.Name, Val: val(b.Val)})
		}
		return c
	case *store.Module:
		m := &store.Module{Name: o.Name}
		for _, ex := range o.Exports {
			m.Exports = append(m.Exports, store.Export{Name: ex.Name, Val: val(ex.Val)})
		}
		return m
	case *store.Tuple:
		t := &store.Tuple{Fields: make([]store.Val, len(o.Fields))}
		for i, fv := range o.Fields {
			t.Fields[i] = val(fv)
		}
		return t
	case *store.Array:
		a := &store.Array{Elems: make([]store.Val, len(o.Elems))}
		for i, fv := range o.Elems {
			a.Elems[i] = val(fv)
		}
		return a
	case *store.Blob:
		return &store.Blob{Bytes: remapBlob(o.Bytes, f)}
	default:
		return obj
	}
}

// remapBlob rewrites OIDs inside PTML and TAM encodings; unrecognised
// blobs pass through unchanged.
func remapBlob(data []byte, f func(store.OID) store.OID) []byte {
	if prog, err := machine.DecodeProgram(data); err == nil {
		changed := false
		for _, blk := range prog.Blocks {
			for i, lit := range blk.Lits {
				if ref, ok := lit.(machine.Ref); ok {
					blk.Lits[i] = machine.Ref{OID: f(ref.OID)}
					changed = true
				}
			}
		}
		if changed {
			if out, err := machine.EncodeProgram(prog); err == nil {
				return out
			}
		}
		return data
	}
	if node, _, err := ptml.Decode(data, nil); err == nil {
		changed := false
		tml.Walk(node, func(n tml.Node) bool {
			if o, ok := n.(*tml.Oid); ok && o.Ref != 0 {
				o.Ref = uint64(f(store.OID(o.Ref)))
				changed = true
			}
			return true
		})
		if changed {
			if out, err := ptml.Encode(node); err == nil {
				return out
			}
		}
		return data
	}
	return data
}

// --- little helpers --------------------------------------------------------

func putU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func putStr(b *bytes.Buffer, s string) {
	putU32(b, uint32(len(s)))
	b.WriteString(s)
}

type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at %d", ErrBadBundle, r.pos)
	}
}

func (r *reader) u8() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}
