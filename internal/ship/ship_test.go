package ship_test

import (
	"errors"
	"testing"

	"tycoon/internal/linker"
	"tycoon/internal/machine"
	"tycoon/internal/reflectopt"
	"tycoon/internal/relalg"
	"tycoon/internal/ship"
	"tycoon/internal/store"
	"tycoon/internal/tl"
	"tycoon/internal/tyclib"
)

// node is one "machine" in the shipping scenario: its own store, machine
// and compiler.
type node struct {
	st   *store.Store
	m    *machine.Machine
	mg   *relalg.Manager
	comp *tl.Compiler
	lk   *linker.Linker
}

func newNode(t *testing.T) *node {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	lk := linker.New(st, linker.Config{})
	comp, err := tyclib.Install(st, lk)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(st)
	mg := relalg.NewManager(st)
	mg.Register(m)
	return &node{st: st, m: m, mg: mg, comp: comp, lk: lk}
}

func (n *node) install(t *testing.T, src string) {
	t.Helper()
	unit, err := n.comp.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.lk.InstallModule(unit); err != nil {
		t.Fatal(err)
	}
}

func TestShipSimpleFunction(t *testing.T) {
	src := newNode(t)
	src.install(t, `
module app export triple
let triple(n : Int) : Int = n * 3
end`)
	bundle, err := ship.ExportFunction(src.st, "app", "triple")
	if err != nil {
		t.Fatal(err)
	}

	dst := newNode(t)
	oid, err := ship.Import(dst.st, bundle)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dst.m.Apply(machine.Ref{OID: oid}, []machine.Value{machine.Int(14)})
	if err != nil || v != machine.Value(machine.Int(42)) {
		t.Fatalf("shipped triple(14) = %v, %v", v, err)
	}
}

func TestShipBindsTargetLibrary(t *testing.T) {
	src := newNode(t)
	src.install(t, `
module app export sq
let sq(n : Int) : Int = n * n
end`)
	bundle, err := ship.ExportFunction(src.st, "app", "sq")
	if err != nil {
		t.Fatal(err)
	}
	before := src.st.Len()
	_ = before

	dst := newNode(t)
	dstObjects := dst.st.Len()
	oid, err := ship.Import(dst.st, bundle)
	if err != nil {
		t.Fatal(err)
	}
	// The int module must NOT have been duplicated: only the closure and
	// its two blobs (code + PTML) arrive.
	if grown := dst.st.Len() - dstObjects; grown > 4 {
		t.Errorf("import added %d objects; the stdlib was re-shipped", grown)
	}
	v, err := dst.m.Apply(machine.Ref{OID: oid}, []machine.Value{machine.Int(9)})
	if err != nil || v != machine.Value(machine.Int(81)) {
		t.Fatalf("shipped sq(9) = %v, %v", v, err)
	}
}

func TestShipRecursiveAndSiblings(t *testing.T) {
	src := newNode(t)
	src.install(t, `
module app export f
let helper(a : Int) : Int = a + 100
let f(n : Int) : Int = if n < 1 then 0 else helper(n) + f(n - 1) end
end`)
	bundle, err := ship.ExportFunction(src.st, "app", "f")
	if err != nil {
		t.Fatal(err)
	}
	dst := newNode(t)
	oid, err := ship.Import(dst.st, bundle)
	if err != nil {
		t.Fatal(err)
	}
	// f(3) = (101+102+103) = 306 + f(0)=0
	v, err := dst.m.Apply(machine.Ref{OID: oid}, []machine.Value{machine.Int(3)})
	if err != nil || v != machine.Value(machine.Int(306)) {
		t.Fatalf("shipped f(3) = %v, %v", v, err)
	}
}

func TestShipCodeDataStays(t *testing.T) {
	// The query function ships; it binds to the TARGET's relation of the
	// same name, which holds different data — "code shipping", not data
	// shipping.
	src := newNode(t)
	relSrc, err := src.mg.CreateRelation("emp", []store.Column{{Name: "id", Type: store.ColInt}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := src.mg.InsertRow(relSrc, []store.Val{store.IntVal(i)}); err != nil {
			t.Fatal(err)
		}
	}
	src.install(t, `
module q export n
rel emp : Rel(id : Int)
let n() : Int = count(emp)
end`)
	v, err := src.m.CallExport(mustRoot(t, src.st, "module:q"), "n", nil)
	if err != nil || v != machine.Value(machine.Int(3)) {
		t.Fatalf("source n() = %v, %v", v, err)
	}

	bundle, err := ship.ExportFunction(src.st, "q", "n")
	if err != nil {
		t.Fatal(err)
	}

	// Target with a DIFFERENT emp relation (7 rows).
	dst := newNode(t)
	relDst, err := dst.mg.CreateRelation("emp", []store.Column{{Name: "id", Type: store.ColInt}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 7; i++ {
		if err := dst.mg.InsertRow(relDst, []store.Val{store.IntVal(i)}); err != nil {
			t.Fatal(err)
		}
	}
	oid, err := ship.Import(dst.st, bundle)
	if err != nil {
		t.Fatal(err)
	}
	v, err = dst.m.Apply(machine.Ref{OID: oid}, nil)
	if err != nil || v != machine.Value(machine.Int(7)) {
		t.Fatalf("shipped n() against target data = %v, %v", v, err)
	}

	// Without the relation in the target, import fails cleanly.
	empty := newNode(t)
	if _, err := ship.Import(empty.st, bundle); !errors.Is(err, ship.ErrUnresolved) {
		t.Errorf("import without relation: %v, want ErrUnresolved", err)
	}
}

func TestShippedCodeIsStillOptimizable(t *testing.T) {
	// PTML travels with the code: the TARGET node can reflectively
	// optimize the imported function against ITS bindings.
	src := newNode(t)
	src.install(t, `
module app export gauss
let gauss(n : Int) : Int =
  begin var s := 0; for i = 1 upto n do s := s + i end; s end
end`)
	bundle, err := ship.ExportFunction(src.st, "app", "gauss")
	if err != nil {
		t.Fatal(err)
	}
	dst := newNode(t)
	oid, err := ship.Import(dst.st, bundle)
	if err != nil {
		t.Fatal(err)
	}
	ro := reflectopt.New(dst.st, reflectopt.Options{CheckInvariants: true})
	res, err := ro.OptimizeAndInstall(dst.m, oid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inlined == 0 {
		t.Error("imported code could not be optimized across barriers")
	}
	v, err := dst.m.Apply(machine.Ref{OID: oid}, []machine.Value{machine.Int(100)})
	if err != nil || v != machine.Value(machine.Int(5050)) {
		t.Fatalf("optimized shipped gauss = %v, %v", v, err)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := newNode(t)
	for _, data := range [][]byte{nil, []byte("XX"), []byte("TYSHIP01")} {
		if _, err := ship.Import(dst.st, data); err == nil {
			t.Errorf("Import(%q) succeeded", data)
		}
	}
}

// exportTriple builds a source node and exports app.triple for the
// corruption tests.
func exportTriple(t *testing.T) []byte {
	t.Helper()
	src := newNode(t)
	src.install(t, `
module app export triple
let triple(n : Int) : Int = n * 3
end`)
	bundle, err := ship.ExportFunction(src.st, "app", "triple")
	if err != nil {
		t.Fatal(err)
	}
	return bundle
}

func TestImportDetectsTruncation(t *testing.T) {
	bundle := exportTriple(t)
	dst := newNode(t)
	for cut := 0; cut < len(bundle); cut++ {
		_, err := ship.Import(dst.st, bundle[:cut])
		if err == nil {
			t.Fatalf("bundle truncated to %d/%d bytes imported", cut, len(bundle))
		}
		// Once the magic is intact, the v2 envelope attributes the
		// failure to transit damage, typed for the caller.
		if cut >= 8 && !errors.Is(err, ship.ErrCorruptBundle) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorruptBundle", cut, err)
		}
	}
}

func TestImportDetectsBitFlip(t *testing.T) {
	bundle := exportTriple(t)
	dst := newNode(t)
	for off := 0; off < len(bundle); off++ {
		mut := append([]byte(nil), bundle...)
		mut[off] ^= 0x20
		_, err := ship.Import(dst.st, mut)
		if err == nil {
			t.Fatalf("bundle with bit flipped at offset %d imported", off)
		}
		if off >= 8 && !errors.Is(err, ship.ErrCorruptBundle) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrCorruptBundle", off, err)
		}
		var ce *ship.CorruptBundleError
		if off >= 8 && !errors.As(err, &ce) {
			t.Fatalf("bit flip at offset %d: err is not a *CorruptBundleError: %v", off, err)
		}
	}
}

func TestImportLegacyV1Bundle(t *testing.T) {
	// A v1 bundle is the v2 body without the integrity envelope; the
	// importer must still accept it (stores in the field hold v1 exports).
	bundle := exportTriple(t)
	legacy := append([]byte("TYSHIP01"), bundle[12:len(bundle)-4]...)
	dst := newNode(t)
	oid, err := ship.Import(dst.st, legacy)
	if err != nil {
		t.Fatal(err)
	}
	v, err := dst.m.Apply(machine.Ref{OID: oid}, []machine.Value{machine.Int(14)})
	if err != nil || v != machine.Value(machine.Int(42)) {
		t.Fatalf("legacy bundle triple(14) = %v, %v", v, err)
	}
}

func mustRoot(t *testing.T, st *store.Store, name string) store.OID {
	t.Helper()
	oid, ok := st.Root(name)
	if !ok {
		t.Fatalf("root %s missing", name)
	}
	return oid
}
