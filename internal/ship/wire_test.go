package ship

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// frame writes one frame and returns its raw bytes.
func frame(t *testing.T, v Verb, body []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, v, body); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)}
	for _, body := range bodies {
		raw := frame(t, VSubmit, body)
		v, got, err := ReadFrame(bytes.NewReader(raw), 0)
		if err != nil {
			t.Fatalf("ReadFrame(%d-byte body): %v", len(body), err)
		}
		if v != VSubmit {
			t.Errorf("verb = %s, want %s", v, VSubmit)
		}
		if !bytes.Equal(got, body) {
			t.Errorf("body mismatch: got %d bytes, want %d", len(got), len(body))
		}
	}
}

// TestFrameCleanEOF: a closed connection before any frame byte is a
// clean io.EOF, not a protocol error — the session layer depends on
// this to distinguish orderly close from corruption.
func TestFrameCleanEOF(t *testing.T) {
	_, _, err := ReadFrame(bytes.NewReader(nil), 0)
	if err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestFrameTruncated: a frame cut off mid-way is a transport error
// (unexpected EOF), not ErrFrame — the peer died, the bytes we did see
// were fine.
func TestFrameTruncated(t *testing.T) {
	raw := frame(t, VPing, []byte("hello"))
	for _, n := range []int{1, len(frameMagic), len(frameMagic) + 3, len(raw) - 1} {
		_, _, err := ReadFrame(bytes.NewReader(raw[:n]), 0)
		if err == nil {
			t.Fatalf("truncated at %d: no error", n)
		}
		if errors.Is(err, ErrFrame) {
			t.Errorf("truncated at %d: classified as ErrFrame (%v), want transport error", n, err)
		}
	}
}

func TestFrameBadMagic(t *testing.T) {
	raw := frame(t, VPing, nil)
	raw[0] ^= 0xff
	_, _, err := ReadFrame(bytes.NewReader(raw), 0)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("bad magic: err = %v, want ErrFrame", err)
	}
}

func TestFrameBadCRC(t *testing.T) {
	raw := frame(t, VSubmit, []byte("payload"))
	raw[len(raw)-5] ^= 0x01 // flip one body bit; CRC no longer matches
	_, _, err := ReadFrame(bytes.NewReader(raw), 0)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("corrupt body: err = %v, want ErrFrame", err)
	}
}

// TestFrameOversized: a length field beyond the cap is rejected before
// any allocation — a hostile 4 GiB length must not OOM the server.
func TestFrameOversized(t *testing.T) {
	raw := frame(t, VSubmit, bytes.Repeat([]byte{1}, 64))
	// Rewrite the length field to a huge value.
	off := len(frameMagic) + 1
	raw[off] = 0xff
	raw[off+1] = 0xff
	raw[off+2] = 0xff
	raw[off+3] = 0x7f
	_, _, err := ReadFrame(bytes.NewReader(raw), 32)
	if !errors.Is(err, ErrFrame) {
		t.Fatalf("oversized length: err = %v, want ErrFrame", err)
	}
}

func TestFrameTrailingGarbageInBody(t *testing.T) {
	body := (&Hello{Version: 1, Client: "c"}).Encode()
	body = append(body, 0xde, 0xad)
	if _, err := DecodeHello(body); !errors.Is(err, ErrFrame) {
		t.Fatalf("trailing bytes: err = %v, want ErrFrame", err)
	}
}

func wvalSamples() []WVal {
	return []WVal{
		{Kind: WNil},
		{Kind: WInt, Int: -42},
		{Kind: WReal, Real: math.Pi},
		{Kind: WBool, Bool: true},
		{Kind: WChar, Ch: 'q'},
		{Kind: WStr, Str: "héllo\x00world"},
		{Kind: WRef, Ref: 0xdeadbeef},
		{Kind: WRoot, Str: "rel:t"},
	}
}

func TestWValRoundTrip(t *testing.T) {
	for _, v := range wvalSamples() {
		req := &Call{Module: "m", Fn: "f", Args: []WVal{v}}
		body, err := req.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", v.Show(), err)
		}
		got, err := DecodeCall(body)
		if err != nil {
			t.Fatalf("%s: decode: %v", v.Show(), err)
		}
		if !reflect.DeepEqual(got.Args[0], v) {
			t.Errorf("round trip changed %+v to %+v", v, got.Args[0])
		}
	}
}

func TestWTableRoundTrip(t *testing.T) {
	res := &Result{
		Val: WVal{Kind: WRel, Rel: &WTable{
			Cols: []string{"id", "val"},
			Rows: [][]WVal{
				{{Kind: WInt, Int: 1}, {Kind: WStr, Str: "a"}},
				{{Kind: WInt, Int: 2}, {Kind: WStr, Str: "b"}},
			},
		}},
		Info: ExecInfo{Steps: 7, Micros: 9, CacheHit: true, Rewrites: 3},
	}
	body, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(body)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("round trip changed %+v to %+v", res, got)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := &Hello{Version: ProtoVersion, Client: "tycsh"}
	if got, err := DecodeHello(hello.Encode()); err != nil || !reflect.DeepEqual(got, hello) {
		t.Errorf("hello: %+v, %v", got, err)
	}
	welcome := &Welcome{Version: ProtoVersion, Server: "tycd", Session: 17}
	if got, err := DecodeWelcome(welcome.Encode()); err != nil || !reflect.DeepEqual(got, welcome) {
		t.Errorf("welcome: %+v, %v", got, err)
	}
	install := &Install{Source: "module m\nend"}
	if got, err := DecodeInstall(install.Encode()); err != nil || !reflect.DeepEqual(got, install) {
		t.Errorf("install: %+v, %v", got, err)
	}
	opt := &Optimize{Module: "m", Fn: "f"}
	if got, err := DecodeOptimize(opt.Encode()); err != nil || !reflect.DeepEqual(got, opt) {
		t.Errorf("optimize: %+v, %v", got, err)
	}
	sub := &Submit{
		Name:     "q1",
		PTML:     []byte{0x01, 0x02, 0x03},
		Binds:    []WBind{{Name: "x", Val: WVal{Kind: WInt, Int: 5}}},
		Optimize: true,
		Save:     "saved",
	}
	body, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(body); err != nil || !reflect.DeepEqual(got, sub) {
		t.Errorf("submit: %+v, %v", got, err)
	}
	we := &WireError{Code: CodeBudget, Msg: "out of steps"}
	got, err := DecodeWireError(we.Encode())
	if err != nil || !reflect.DeepEqual(got, we) {
		t.Errorf("wire error: %+v, %v", got, err)
	}
	if got.Error() == "" || got.Code.String() != "budget" {
		t.Errorf("error rendering: %q code %q", got.Error(), got.Code.String())
	}
}

// TestDecodeFuzzedGarbage: arbitrary bytes must decode to an error, not
// a panic — the bodies arrive checksummed but a buggy or malicious peer
// can still send a well-framed nonsense body.
func TestDecodeFuzzedGarbage(t *testing.T) {
	bodies := [][]byte{
		nil,
		{0xff},
		bytes.Repeat([]byte{0xff}, 64),
		{0, 0, 0, 0},
		// A Call body claiming 2^32-1 args: the bounds-checked count must
		// reject it instead of allocating.
		append([]byte{1, 'm', 0, 0, 0, 1, 'f'}, 0xff, 0xff, 0xff, 0xff),
	}
	for i, b := range bodies {
		if _, err := DecodeCall(b); err == nil {
			t.Errorf("garbage body %d decoded without error", i)
		}
		if _, err := DecodeSubmit(b); err == nil {
			t.Errorf("garbage submit body %d decoded without error", i)
		}
		if _, err := DecodeResult(b); err == nil {
			t.Errorf("garbage result body %d decoded without error", i)
		}
	}
}

// TestOptionalTrailingFields pins the compatibility contract of the
// fields added for the fault-tolerance layer: bodies written without
// them (old encoders) still decode, bodies written with them round-trip.
func TestOptionalTrailingFields(t *testing.T) {
	// Submit with an idempotency key round-trips.
	sub := &Submit{
		Name:    "q1",
		PTML:    []byte{0x01, 0x02},
		Save:    "s",
		IdemKey: "c1-000000000007",
	}
	body, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(body); err != nil || !reflect.DeepEqual(got, sub) {
		t.Errorf("keyed submit: %+v, %v", got, err)
	}
	// Without a key the field is absent from the wire entirely, which is
	// exactly the old encoding.
	sub.IdemKey = ""
	short, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(short) >= len(body) {
		t.Errorf("keyless submit is not shorter: %d vs %d bytes", len(short), len(body))
	}
	if got, err := DecodeSubmit(short); err != nil || got.IdemKey != "" {
		t.Errorf("old-encoding submit: key %q, err %v", got.IdemKey, err)
	}

	// Install: same shape.
	inst := &Install{Source: "module m end", IdemKey: "c1-000000000008"}
	if got, err := DecodeInstall(inst.Encode()); err != nil || !reflect.DeepEqual(got, inst) {
		t.Errorf("keyed install: %+v, %v", got, err)
	}
	inst.IdemKey = ""
	if got, err := DecodeInstall(inst.Encode()); err != nil || got.IdemKey != "" {
		t.Errorf("old-encoding install: %+v, %v", got, err)
	}

	// WireError: the retry-after hint is omitted when zero and
	// round-trips when set.
	we := &WireError{Code: CodeOverloaded, Msg: "full", RetryAfterMs: 250}
	if got, err := DecodeWireError(we.Encode()); err != nil || !reflect.DeepEqual(got, we) {
		t.Errorf("overloaded error: %+v, %v", got, err)
	}
	plain := &WireError{Code: CodeExec, Msg: "boom"}
	if got, err := DecodeWireError(plain.Encode()); err != nil || got.RetryAfterMs != 0 {
		t.Errorf("plain error: %+v, %v", got, err)
	}
	if CodeOverloaded.String() != "overloaded" || CodeDegraded.String() != "degraded" {
		t.Errorf("code names: %s %s", CodeOverloaded, CodeDegraded)
	}
	if VHealth.String() != "health" || VHealthOK.String() != "health-ok" {
		t.Errorf("verb names: %s %s", VHealth, VHealthOK)
	}
}

// TestClusterTrailingFields pins the wire extensions the cluster layer
// added: the Submit merge policy and the Result partial marker. Both
// are optional trailing fields — absent from the bytes when unset, so
// pre-cluster peers interoperate unchanged.
func TestClusterTrailingFields(t *testing.T) {
	// Merge rides behind the idempotency key and round-trips.
	sub := &Submit{Name: "q", PTML: []byte{0x01}, IdemKey: "c1-1", Merge: MergeSum}
	body, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(body); err != nil || !reflect.DeepEqual(got, sub) {
		t.Errorf("merge submit: %+v, %v", got, err)
	}
	// MergeAuto is the zero policy and costs no bytes.
	sub.Merge = MergeAuto
	short, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(short) >= len(body) {
		t.Errorf("auto-merge submit is not shorter: %d vs %d bytes", len(short), len(body))
	}
	if got, err := DecodeSubmit(short); err != nil || got.Merge != MergeAuto {
		t.Errorf("old-encoding submit: merge %v, err %v", got.Merge, err)
	}
	// A merge policy without a key still round-trips (an empty key is
	// written as its carrier).
	keyless := &Submit{PTML: []byte{0x01}, Merge: MergeAll}
	kb, err := keyless.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(kb); err != nil || got.IdemKey != "" || got.Merge != MergeAll {
		t.Errorf("keyless merge submit: %+v, %v", got, err)
	}

	// A partial Result names its missing ranges and round-trips.
	res := &Result{
		Val:     WVal{Kind: WInt, Int: 7},
		Info:    ExecInfo{Steps: 3, CacheHit: true},
		Partial: true,
		Missing: []string{"shard1:[0x5555555555555556,0xaaaaaaaaaaaaaaac)"},
	}
	rb, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeResult(rb); err != nil || !reflect.DeepEqual(got, res) {
		t.Errorf("partial result: %+v, %v", got, err)
	}
	// A full answer emits no trailing bytes — the pre-cluster encoding.
	res.Partial, res.Missing = false, nil
	fb, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) >= len(rb) {
		t.Errorf("full result is not shorter: %d vs %d bytes", len(fb), len(rb))
	}
	if got, err := DecodeResult(fb); err != nil || got.Partial || got.Missing != nil {
		t.Errorf("old-encoding result: %+v, %v", got, err)
	}

	// The policy name table is total in both directions.
	for _, m := range []Merge{MergeAuto, MergeSum, MergeAny, MergeAll} {
		back, err := ParseMerge(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMerge(%s) = %v, %v", m, back, err)
		}
	}
	if _, err := ParseMerge("median"); err == nil {
		t.Error("unknown merge policy parsed")
	}
	if m, err := ParseMerge(""); err != nil || m != MergeAuto {
		t.Errorf("empty merge policy: %v, %v", m, err)
	}

	// ClusterStats surfaces through the ServerStats JSON only when set,
	// so single-node stats output is unchanged.
	withCluster, err := json.Marshal(&ServerStats{Cluster: &ClusterStats{Shards: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(withCluster), `"cluster"`) || !strings.Contains(string(withCluster), `"shards":3`) {
		t.Errorf("cluster block missing from stats JSON: %s", withCluster)
	}
	plainStats, err := json.Marshal(&ServerStats{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plainStats), `"cluster"`) {
		t.Errorf("empty cluster block leaked into stats JSON: %s", plainStats)
	}
}

// TestExplainTrailingFields pins the wire compatibility of the EXPLAIN
// extension: the Submit flag rides behind merge, the Result plan rides
// behind the partial block, and both cost no bytes when unused.
func TestExplainTrailingFields(t *testing.T) {
	sub := &Submit{Name: "q", PTML: []byte{0x01}, Explain: true}
	body, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(body); err != nil || !reflect.DeepEqual(got, sub) {
		t.Errorf("explain submit: %+v, %v", got, err)
	}
	// The flag composes with the earlier trailing fields.
	sub.IdemKey, sub.Merge = "c1-9", MergeSum
	kb, err := sub.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeSubmit(kb); err != nil || !reflect.DeepEqual(got, sub) {
		t.Errorf("keyed explain submit: %+v, %v", got, err)
	}
	// Unset, the encoding is byte-identical to the pre-explain one.
	plain := &Submit{Name: "q", PTML: []byte{0x01}}
	pb, err := plain.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(pb) >= len(body) {
		t.Errorf("plain submit is not shorter: %d vs %d bytes", len(pb), len(body))
	}
	if got, err := DecodeSubmit(pb); err != nil || got.Explain {
		t.Errorf("old-encoding submit: %+v, %v", got, err)
	}

	// A Result with a plan but no partial marker round-trips…
	res := &Result{
		Val:     WVal{Kind: WInt, Int: 3},
		Explain: "select algo=vector-fused table=t in=100 est=33 act=30",
	}
	rb, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeResult(rb); err != nil || !reflect.DeepEqual(got, res) {
		t.Errorf("explain result: %+v, %v", got, err)
	}
	// …as does a partial one carrying both extensions.
	res.Partial, res.Missing = true, []string{"shard1:[0,8)"}
	prb, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := DecodeResult(prb); err != nil || !reflect.DeepEqual(got, res) {
		t.Errorf("partial explain result: %+v, %v", got, err)
	}
	// A plain result emits no trailing bytes at all.
	bare := &Result{Val: WVal{Kind: WInt, Int: 3}}
	bb, err := bare.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(bb) >= len(rb) {
		t.Errorf("bare result is not shorter: %d vs %d bytes", len(bb), len(rb))
	}
	if got, err := DecodeResult(bb); err != nil || got.Explain != "" || got.Partial {
		t.Errorf("old-encoding result: %+v, %v", got, err)
	}
}
