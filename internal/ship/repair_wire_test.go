package ship

import (
	"reflect"
	"testing"
)

// TestRepairMessageRoundTrips covers the replica-repair verbs' bodies:
// SYNC batches of keyed writes and the anti-entropy digest exchange.
func TestRepairMessageRoundTrips(t *testing.T) {
	subBody, err := (&Submit{Name: "w1", PTML: []byte{1, 2, 3}, IdemKey: "k-1"}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	sync := &Sync{Items: []ShipItem{
		{Verb: VSubmit, Body: subBody},
		{Verb: VInstall, Body: (&Install{Source: "module m end", IdemKey: "k-2"}).Encode()},
	}}
	got, err := DecodeSync(sync.Encode())
	if err != nil || !reflect.DeepEqual(got, sync) {
		t.Errorf("sync: %+v, %v", got, err)
	}
	// The shipped bodies decode back to the original requests, original
	// idempotency keys included — that is the exactly-once contract.
	item, err := DecodeSubmit(got.Items[0].Body)
	if err != nil || item.IdemKey != "k-1" {
		t.Errorf("shipped submit: %+v, %v", item, err)
	}

	sok := &SyncOK{Applied: 2}
	if got, err := DecodeSyncOK(sok.Encode()); err != nil || !reflect.DeepEqual(got, sok) {
		t.Errorf("sync-ok: %+v, %v", got, err)
	}

	for _, dig := range []*Digest{{}, {Prefix: "srv:"}} {
		if got, err := DecodeDigest(dig.Encode()); err != nil || !reflect.DeepEqual(got, dig) {
			t.Errorf("digest: %+v, %v", got, err)
		}
	}

	dok := &DigestOK{
		CSN:   42,
		Epoch: 7,
		Roots: []RootDigest{
			{Name: "rows", Digest: "00ff00ff"},
			{Name: "srv:q", Digest: "deadbeef"},
		},
	}
	if got, err := DecodeDigestOK(dok.Encode()); err != nil || !reflect.DeepEqual(got, dok) {
		t.Errorf("digest-ok: %+v, %v", got, err)
	}
	empty := &DigestOK{CSN: 1, Epoch: 1}
	if got, err := DecodeDigestOK(empty.Encode()); err != nil || !reflect.DeepEqual(got, empty) {
		t.Errorf("empty digest-ok: %+v, %v", got, err)
	}
}

func TestRepairVerbsAndCodes(t *testing.T) {
	for verb, want := range map[Verb]string{
		VSync: "sync", VSyncOK: "sync-ok", VDigest: "digest", VDigestOK: "digest-ok",
	} {
		if verb.String() != want {
			t.Errorf("verb %d renders %q, want %q", verb, verb.String(), want)
		}
	}
	if CodeReplicaDown.String() != "replica-down" {
		t.Errorf("CodeReplicaDown renders %q", CodeReplicaDown.String())
	}
	// The replica-down refusal carries its back-off hint through the
	// existing optional-trailing-field slot.
	we := &WireError{Code: CodeReplicaDown, Msg: "shard 0 replica :9001 down", RetryAfterMs: 250}
	got, err := DecodeWireError(we.Encode())
	if err != nil || !reflect.DeepEqual(got, we) {
		t.Errorf("replica-down error: %+v, %v", got, err)
	}
}

// TestRepairDecodeGarbage: the new decoders must reject arbitrary bytes
// with an error, never a panic or a huge allocation.
func TestRepairDecodeGarbage(t *testing.T) {
	bodies := [][]byte{
		{0xff},
		{0xff, 0xff, 0xff, 0xff}, // absurd item count
		{2, 0, 0, 0, 9, 0xff, 0xff, 0xff, 0x7f},
	}
	for i, b := range bodies {
		if _, err := DecodeSync(b); err == nil {
			t.Errorf("garbage sync body %d decoded without error", i)
		}
		if _, err := DecodeDigestOK(b); err == nil {
			t.Errorf("garbage digest-ok body %d decoded without error", i)
		}
	}
	if _, err := DecodeSyncOK([]byte{1}); err == nil {
		t.Error("truncated sync-ok decoded without error")
	}
}
