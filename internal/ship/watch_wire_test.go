package ship

import (
	"bytes"
	"reflect"
	"testing"
)

// TestWatchRoundTrip pins the WATCH message codecs: encode → decode is
// the identity for representative messages of all three verbs.
func TestWatchRoundTrip(t *testing.T) {
	watches := []*Watch{
		{Patterns: []string{"*"}},
		{Patterns: []string{"srv:*", "module:demo"}, SinceCSN: 981},
	}
	for _, m := range watches {
		got, err := DecodeWatch(m.Encode())
		if err != nil {
			t.Fatalf("watch %v: %v", m.Patterns, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("watch round-trip: got %+v, want %+v", got, m)
		}
	}

	ok := &WatchOK{CSN: 1 << 40}
	gotOK, err := DecodeWatchOK(ok.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *gotOK != *ok {
		t.Fatalf("watch-ok round-trip: got %+v, want %+v", gotOK, ok)
	}

	notifies := []*Notify{
		{Root: "srv:ans", OID: 0x1234, CSN: 77},
		{Root: "pair:0:a", OID: 9, CSN: 78, More: true},
	}
	for _, m := range notifies {
		got, err := DecodeNotify(m.Encode())
		if err != nil {
			t.Fatalf("notify %q: %v", m.Root, err)
		}
		if *got != *m {
			t.Fatalf("notify round-trip: got %+v, want %+v", got, m)
		}
	}
}

// TestWatchTrailingFields pins the optional-trailing-field compat
// discipline for the new messages, the same contract the Merge/Partial
// tests pin for Submit and Result: frames WITHOUT the new fields — what
// an older peer sends — decode to the zero defaults, and encoders omit
// the fields when they hold those defaults.
func TestWatchTrailingFields(t *testing.T) {
	// A Watch without SinceCSN must not spend bytes on it...
	short := (&Watch{Patterns: []string{"a"}}).Encode()
	long := (&Watch{Patterns: []string{"a"}, SinceCSN: 5}).Encode()
	if len(short) >= len(long) {
		t.Fatalf("zero SinceCSN not omitted: %d vs %d bytes", len(short), len(long))
	}
	// ...and an old-style frame (patterns only) must decode with zero.
	var b bytes.Buffer
	putU32(&b, 1)
	putStr(&b, "srv:*")
	m, err := DecodeWatch(b.Bytes())
	if err != nil {
		t.Fatalf("old watch frame: %v", err)
	}
	if m.SinceCSN != 0 || len(m.Patterns) != 1 || m.Patterns[0] != "srv:*" {
		t.Fatalf("old watch frame decoded as %+v", m)
	}

	// A Notify without More likewise: omitted when false, and an
	// old-style frame (root, oid, csn only) decodes as a single-change
	// commit — exactly what a server predating batches sends.
	nShort := (&Notify{Root: "r", OID: 1, CSN: 2}).Encode()
	nLong := (&Notify{Root: "r", OID: 1, CSN: 2, More: true}).Encode()
	if len(nShort) >= len(nLong) {
		t.Fatalf("false More not omitted: %d vs %d bytes", len(nShort), len(nLong))
	}
	var nb bytes.Buffer
	putStr(&nb, "srv:x")
	putU64(&nb, 7)
	putU64(&nb, 8)
	n, err := DecodeNotify(nb.Bytes())
	if err != nil {
		t.Fatalf("old notify frame: %v", err)
	}
	if n.More || n.Root != "srv:x" || n.OID != 7 || n.CSN != 8 {
		t.Fatalf("old notify frame decoded as %+v", n)
	}
}

// TestWatchVerbNames pins the verb bytes and names: the wire values are
// protocol constants, not implementation details.
func TestWatchVerbNames(t *testing.T) {
	cases := []struct {
		v    Verb
		b    byte
		name string
	}{
		{VWatch, 16, "watch"},
		{VWatchOK, 17, "watch-ok"},
		{VNotify, 18, "notify"},
	}
	for _, c := range cases {
		if byte(c.v) != c.b {
			t.Fatalf("%s = %d, want %d", c.name, byte(c.v), c.b)
		}
		if c.v.String() != c.name {
			t.Fatalf("verb %d named %q, want %q", c.b, c.v.String(), c.name)
		}
	}
}

// TestWatchDecodeRejectsGarbage: truncated or trailing-garbage bodies
// fail with FrameErrors, never panic or silently succeed.
func TestWatchDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeWatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated watch decoded")
	}
	if _, err := DecodeNotify([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Fatal("absurd notify decoded")
	}
	good := (&Notify{Root: "r", OID: 1, CSN: 2, More: true}).Encode()
	if _, err := DecodeNotify(append(good, 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestMatchRoot pins the pattern language: '*' spans any run, all else
// is literal.
func TestMatchRoot(t *testing.T) {
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"*", "anything:at:all", true},
		{"*", "", true},
		{"srv:*", "srv:ans", true},
		{"srv:*", "srv:", true},
		{"srv:*", "module:demo", false},
		{"srv:a*b", "srv:ab", true},
		{"srv:a*b", "srv:axxxb", true},
		{"srv:a*b", "srv:axxx", false},
		{"*:demo", "module:demo", true},
		{"a*c*e", "abcde", true},
		{"a*c*e", "abde", false},
		{"exact", "exact", true},
		{"exact", "exact!", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := MatchRoot(c.pat, c.name); got != c.want {
			t.Fatalf("MatchRoot(%q, %q) = %t, want %t", c.pat, c.name, got, c.want)
		}
	}
}
