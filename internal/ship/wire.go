// Wire protocol of the tycd database server: length-prefixed,
// CRC-guarded frames carrying PTML trees, binding tables and result
// values between a remote client and a multi-session server. The frame
// envelope follows the TYSHIP02 bundle discipline (magic, u32 body
// length, CRC32C trailer): the network gives the payload no second
// chance at detecting rot, so every frame is verified before a single
// body byte is interpreted.
//
// A request is one frame; its response is one frame. The interesting
// verb is Submit: the client sends a PTML-encoded application together
// with a table of R-value bindings for its free variables, and the
// server re-establishes the bindings, compiles the closed term through
// its shared pipeline (one optimized-code cache across all sessions)
// and runs it — the paper's persistent intermediate representation
// travelling over the wire instead of through the store.
package ship

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"tycoon/internal/pipeline"
	"tycoon/internal/relalg"
	"tycoon/internal/store"
)

// SavedRoot prefixes the store root names under which tycd persists
// closures saved by SUBMIT requests (save=<name> ⇒ root "srv:<name>").
// tycfsck knows the prefix: a srv: root bound to anything without
// re-optimizable code is flagged as corruption.
const SavedRoot = "srv:"

// frameMagic tags a wire frame: the magic, a verb byte, a u32 body
// length, the body, and a CRC32C (Castagnoli) of verb+body.
const frameMagic = "TYWR01"

// MaxFrameBody is the default bound on a frame body; ReadFrame rejects
// larger declared lengths before allocating, so a corrupt or hostile
// length field can never drive a huge allocation.
const MaxFrameBody = 16 << 20

// ErrFrame is the sentinel wrapped by FrameError: the byte stream does
// not parse as a well-formed frame (bad magic, bad checksum, absurd
// length). Transport failures (timeouts, truncation by a dying peer)
// are reported as the underlying I/O errors, not as FrameErrors.
var ErrFrame = errors.New("ship: corrupt wire frame")

// FrameError reports a malformed frame.
type FrameError struct {
	Reason string
}

func (e *FrameError) Error() string { return "ship: bad frame: " + e.Reason }

// Unwrap makes errors.Is(err, ErrFrame) hold.
func (e *FrameError) Unwrap() error { return ErrFrame }

// Verb identifies the kind of message a frame carries.
type Verb byte

// The wire verbs. Requests flow client→server, responses server→client.
const (
	VHello    Verb = 1  // request: open a session
	VWelcome  Verb = 2  // response: session accepted
	VPing     Verb = 3  // request: liveness probe
	VPong     Verb = 4  // response to VPing
	VStats    Verb = 5  // request: server counters
	VStatsOK  Verb = 6  // response: ServerStats as JSON
	VInstall  Verb = 7  // request: compile and install a TL module
	VCall     Verb = 8  // request: call an exported or saved function
	VSubmit   Verb = 9  // request: compile and run a PTML term
	VOptimize Verb = 10 // request: reflectively optimize a function
	VResult   Verb = 11 // response: a value plus execution stats
	VError    Verb = 12 // response: structured failure
	VBye      Verb = 13 // request: orderly session close
	VHealth   Verb = 14 // request: liveness + mode probe
	VHealthOK Verb = 15 // response: Health as JSON
	VWatch    Verb = 16 // request: subscribe to committed root changes
	VWatchOK  Verb = 17 // response: subscription accepted; stream follows
	VNotify   Verb = 18 // server push: one committed root change
	VSync     Verb = 19 // request: replay a batch of keyed writes (replica repair)
	VSyncOK   Verb = 20 // response: batch applied
	VDigest   Verb = 21 // request: per-root anti-entropy digests
	VDigestOK Verb = 22 // response: Digests as a binary body
)

// String names a verb for logs and errors.
func (v Verb) String() string {
	switch v {
	case VHello:
		return "hello"
	case VWelcome:
		return "welcome"
	case VPing:
		return "ping"
	case VPong:
		return "pong"
	case VStats:
		return "stats"
	case VStatsOK:
		return "stats-ok"
	case VInstall:
		return "install"
	case VCall:
		return "call"
	case VSubmit:
		return "submit"
	case VOptimize:
		return "optimize"
	case VResult:
		return "result"
	case VError:
		return "error"
	case VBye:
		return "bye"
	case VHealth:
		return "health"
	case VHealthOK:
		return "health-ok"
	case VWatch:
		return "watch"
	case VWatchOK:
		return "watch-ok"
	case VNotify:
		return "notify"
	case VSync:
		return "sync"
	case VSyncOK:
		return "sync-ok"
	case VDigest:
		return "digest"
	case VDigestOK:
		return "digest-ok"
	default:
		return fmt.Sprintf("verb(%d)", byte(v))
	}
}

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// WriteFrame writes one frame: magic, verb, length, body, CRC32C of
// verb+body.
func WriteFrame(w io.Writer, v Verb, body []byte) error {
	var out bytes.Buffer
	out.Grow(len(frameMagic) + 1 + 4 + len(body) + 4)
	out.WriteString(frameMagic)
	out.WriteByte(byte(v))
	putU32(&out, uint32(len(body)))
	out.Write(body)
	crc := crc32.Update(0, frameCRC, []byte{byte(v)})
	crc = crc32.Update(crc, frameCRC, body)
	putU32(&out, crc)
	_, err := w.Write(out.Bytes())
	return err
}

// ReadFrame reads one frame, verifying the envelope before returning
// the body. maxBody bounds the declared body length (0 means
// MaxFrameBody). A clean connection close before the first byte returns
// io.EOF; any other short read returns the transport error; a byte
// stream that is present but malformed returns a FrameError.
func ReadFrame(r io.Reader, maxBody int) (Verb, []byte, error) {
	if maxBody <= 0 {
		maxBody = MaxFrameBody
	}
	var hdr [len(frameMagic) + 1 + 4]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF: peer closed between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return 0, nil, err
	}
	if string(hdr[:len(frameMagic)]) != frameMagic {
		return 0, nil, &FrameError{Reason: "bad magic"}
	}
	v := Verb(hdr[len(frameMagic)])
	n := binary.LittleEndian.Uint32(hdr[len(frameMagic)+1:])
	if int64(n) > int64(maxBody) {
		return 0, nil, &FrameError{Reason: fmt.Sprintf("frame body of %d bytes exceeds limit %d", n, maxBody)}
	}
	buf := make([]byte, int(n)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	body := buf[:n]
	want := binary.LittleEndian.Uint32(buf[n:])
	crc := crc32.Update(0, frameCRC, []byte{byte(v)})
	crc = crc32.Update(crc, frameCRC, body)
	if crc != want {
		return 0, nil, &FrameError{
			Reason: fmt.Sprintf("checksum mismatch (computed %08x, recorded %08x)", crc, want),
		}
	}
	return v, body, nil
}

// --- wire values -----------------------------------------------------------

// WKind tags a wire value.
type WKind byte

// The wire value kinds. Scalars travel by value; persistent objects by
// OID (meaningful only within one server's store); named roots by name
// (resolved server-side, the by-name discipline of bundle shipping);
// transient relations as materialised tables.
const (
	WNil  WKind = 0
	WInt  WKind = 1
	WReal WKind = 2
	WBool WKind = 3
	WChar WKind = 4
	WStr  WKind = 5
	WRef  WKind = 6
	WRoot WKind = 7
	WRel  WKind = 8
)

// WVal is one value crossing the wire.
type WVal struct {
	Kind WKind
	Int  int64
	Real float64
	Bool bool
	Ch   byte
	Str  string // WStr payload; WRoot root name
	Ref  uint64 // WRef OID
	Rel  *WTable
}

// WTable is a materialised relation result: column names and rows of
// scalar values (nested tables do not ship).
type WTable struct {
	Cols []string
	Rows [][]WVal
}

// Show renders a wire value for the client REPL.
func (v WVal) Show() string {
	switch v.Kind {
	case WNil:
		return "()"
	case WInt:
		return fmt.Sprintf("%d", v.Int)
	case WReal:
		return fmt.Sprintf("%g", v.Real)
	case WBool:
		return fmt.Sprintf("%t", v.Bool)
	case WChar:
		return fmt.Sprintf("'%c'", v.Ch)
	case WStr:
		return fmt.Sprintf("%q", v.Str)
	case WRef:
		return fmt.Sprintf("<0x%x>", v.Ref)
	case WRoot:
		return "@" + v.Str
	case WRel:
		if v.Rel == nil {
			return "rel(nil)"
		}
		return fmt.Sprintf("rel(%d rows)", len(v.Rel.Rows))
	default:
		return fmt.Sprintf("wval(%d)", byte(v.Kind))
	}
}

func putWVal(b *bytes.Buffer, v WVal) error {
	b.WriteByte(byte(v.Kind))
	switch v.Kind {
	case WNil:
	case WInt:
		putU64(b, uint64(v.Int))
	case WReal:
		putU64(b, math.Float64bits(v.Real))
	case WBool:
		if v.Bool {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case WChar:
		b.WriteByte(v.Ch)
	case WStr, WRoot:
		putStr(b, v.Str)
	case WRef:
		putU64(b, v.Ref)
	case WRel:
		if v.Rel == nil {
			return fmt.Errorf("ship: wire relation without table")
		}
		putU32(b, uint32(len(v.Rel.Cols)))
		for _, c := range v.Rel.Cols {
			putStr(b, c)
		}
		putU32(b, uint32(len(v.Rel.Rows)))
		for _, row := range v.Rel.Rows {
			putU32(b, uint32(len(row)))
			for _, f := range row {
				if f.Kind == WRel {
					return fmt.Errorf("ship: nested relation in wire row")
				}
				if err := putWVal(b, f); err != nil {
					return err
				}
			}
		}
	default:
		return fmt.Errorf("ship: cannot encode wire value kind %d", v.Kind)
	}
	return nil
}

func (r *wreader) wval() WVal {
	k := WKind(r.u8())
	v := WVal{Kind: k}
	switch k {
	case WNil:
	case WInt:
		v.Int = int64(r.u64())
	case WReal:
		v.Real = math.Float64frombits(r.u64())
	case WBool:
		v.Bool = r.u8() != 0
	case WChar:
		v.Ch = r.u8()
	case WStr, WRoot:
		v.Str = r.str()
	case WRef:
		v.Ref = r.u64()
	case WRel:
		t := &WTable{}
		nc := r.count(1)
		for i := 0; i < nc && r.err == nil; i++ {
			t.Cols = append(t.Cols, r.str())
		}
		nr := r.count(1)
		for i := 0; i < nr && r.err == nil; i++ {
			nf := r.count(1)
			row := make([]WVal, 0, nf)
			for j := 0; j < nf && r.err == nil; j++ {
				row = append(row, r.wval())
			}
			t.Rows = append(t.Rows, row)
		}
		v.Rel = t
	default:
		r.failf("unknown wire value kind %d", k)
	}
	return v
}

// WBind is one R-value binding of a submitted term's free variable.
type WBind struct {
	Name string
	Val  WVal
}

// --- messages --------------------------------------------------------------

// ProtoVersion is the protocol revision spoken by this build; Hello and
// Welcome exchange it, and the server refuses clients from the future.
const ProtoVersion = 1

// Hello opens a session.
type Hello struct {
	Version uint32
	Client  string // free-form client identification for the server log
}

// Encode serialises the message body.
func (m *Hello) Encode() []byte {
	var b bytes.Buffer
	putU32(&b, m.Version)
	putStr(&b, m.Client)
	return b.Bytes()
}

// DecodeHello deserialises a Hello body.
func DecodeHello(body []byte) (*Hello, error) {
	r := &wreader{b: body}
	m := &Hello{Version: r.u32(), Client: r.str()}
	return m, r.done()
}

// Welcome accepts a session.
type Welcome struct {
	Version uint32
	Server  string
	Session uint64 // server-assigned session id
}

// Encode serialises the message body.
func (m *Welcome) Encode() []byte {
	var b bytes.Buffer
	putU32(&b, m.Version)
	putStr(&b, m.Server)
	putU64(&b, m.Session)
	return b.Bytes()
}

// DecodeWelcome deserialises a Welcome body.
func DecodeWelcome(body []byte) (*Welcome, error) {
	r := &wreader{b: body}
	m := &Welcome{Version: r.u32(), Server: r.str(), Session: r.u64()}
	return m, r.done()
}

// Install compiles and installs a TL module from source text.
type Install struct {
	Source string
	// IdemKey, when non-empty, is a client-chosen idempotency key: the
	// server records the response under key × source hash and answers a
	// retried install from the record instead of installing twice.
	// Optional trailing field — omitted when empty for compatibility.
	IdemKey string
}

// Encode serialises the message body.
func (m *Install) Encode() []byte {
	var b bytes.Buffer
	putStr(&b, m.Source)
	if m.IdemKey != "" {
		putStr(&b, m.IdemKey)
	}
	return b.Bytes()
}

// DecodeInstall deserialises an Install body.
func DecodeInstall(body []byte) (*Install, error) {
	r := &wreader{b: body}
	m := &Install{Source: r.str()}
	if r.rem() > 0 {
		m.IdemKey = r.str()
	}
	return m, r.done()
}

// Call applies an exported function of an installed module — or, with
// an empty Module, a closure previously saved under SavedRoot+Fn.
type Call struct {
	Module string
	Fn     string
	Args   []WVal
}

// Encode serialises the message body.
func (m *Call) Encode() ([]byte, error) {
	var b bytes.Buffer
	putStr(&b, m.Module)
	putStr(&b, m.Fn)
	putU32(&b, uint32(len(m.Args)))
	for _, a := range m.Args {
		if err := putWVal(&b, a); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// DecodeCall deserialises a Call body.
func DecodeCall(body []byte) (*Call, error) {
	r := &wreader{b: body}
	m := &Call{Module: r.str(), Fn: r.str()}
	n := r.count(1) // smallest value (WNil) is one kind byte
	for i := 0; i < n && r.err == nil; i++ {
		m.Args = append(m.Args, r.wval())
	}
	return m, r.done()
}

// Merge selects how a cluster coordinator combines the per-shard
// answers of a scattered submit. The field is interpreted (and then
// stripped) by the coordinator; a plain tycd server never sees it, so
// adding policies costs nothing on the shard side.
type Merge byte

// The merge policies. Relation results always concatenate regardless of
// policy; the policy governs scalar answers from partitioned shards.
const (
	// MergeAuto concatenates relation results and requires scalar
	// answers to agree across shards (the right default for pure terms
	// evaluated everywhere, e.g. a shipped constant expression).
	MergeAuto Merge = 0
	// MergeSum adds integer/real answers (count over a partitioned
	// relation).
	MergeSum Merge = 1
	// MergeAny ORs boolean answers (exists over a partitioned relation).
	MergeAny Merge = 2
	// MergeAll ANDs boolean answers (a predicate that must hold on every
	// partition).
	MergeAll Merge = 3
)

// String names a merge policy.
func (m Merge) String() string {
	switch m {
	case MergeAuto:
		return "auto"
	case MergeSum:
		return "sum"
	case MergeAny:
		return "any"
	case MergeAll:
		return "all"
	default:
		return fmt.Sprintf("merge(%d)", byte(m))
	}
}

// ParseMerge resolves a policy name from the command line.
func ParseMerge(s string) (Merge, error) {
	switch s {
	case "", "auto":
		return MergeAuto, nil
	case "sum":
		return MergeSum, nil
	case "any":
		return MergeAny, nil
	case "all":
		return MergeAll, nil
	default:
		return 0, fmt.Errorf("ship: unknown merge policy %q", s)
	}
}

// Submit ships a PTML-encoded application for compilation and
// execution. Binds re-establish the R-value bindings of the term's free
// variables (paper §4.1, across the wire instead of across module
// barriers); the free continuation variables e and k are bound by the
// server to its own exception and result continuations. Optimize runs
// the full reduce/expand rounds plus the query rule packs before
// codegen; Save persists the compiled closure under SavedRoot+Save for
// later Call requests (and tycfsck scrutiny).
type Submit struct {
	Name     string // label for errors and stats
	PTML     []byte // ptml.EncodeApp of the term
	Binds    []WBind
	Optimize bool
	Save     string
	// IdemKey, when non-empty, is a client-chosen idempotency key: the
	// server records the response under key × α-hash and answers a
	// retried submit from the record, so a retried save= is applied
	// exactly once. Optional trailing field — omitted when empty for
	// compatibility.
	IdemKey string
	// Merge is the coordinator's scatter merge policy (see Merge).
	// Optional trailing field — omitted when MergeAuto.
	Merge Merge
	// Explain asks the server to attach the executed physical plan —
	// chosen algorithms with estimated vs. actual cardinalities — to the
	// Result. Optional trailing field — omitted when false.
	Explain bool
}

// Encode serialises the message body.
func (m *Submit) Encode() ([]byte, error) {
	var b bytes.Buffer
	putStr(&b, m.Name)
	putU32(&b, uint32(len(m.PTML)))
	b.Write(m.PTML)
	putU32(&b, uint32(len(m.Binds)))
	for _, bd := range m.Binds {
		putStr(&b, bd.Name)
		if err := putWVal(&b, bd.Val); err != nil {
			return nil, err
		}
	}
	if m.Optimize {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
	putStr(&b, m.Save)
	// Trailing optionals: an earlier field must be written whenever a
	// later one is, so old frames stay decodable and new fields are only
	// paid for when used.
	if m.IdemKey != "" || m.Merge != MergeAuto || m.Explain {
		putStr(&b, m.IdemKey)
	}
	if m.Merge != MergeAuto || m.Explain {
		b.WriteByte(byte(m.Merge))
	}
	if m.Explain {
		b.WriteByte(1)
	}
	return b.Bytes(), nil
}

// DecodeSubmit deserialises a Submit body.
func DecodeSubmit(body []byte) (*Submit, error) {
	r := &wreader{b: body}
	m := &Submit{Name: r.str(), PTML: r.bytesField()}
	n := r.count(5) // smallest bind: empty name (4-byte length) + kind byte
	for i := 0; i < n && r.err == nil; i++ {
		m.Binds = append(m.Binds, WBind{Name: r.str(), Val: r.wval()})
	}
	m.Optimize = r.u8() != 0
	m.Save = r.str()
	if r.rem() > 0 {
		m.IdemKey = r.str()
	}
	if r.rem() > 0 {
		m.Merge = Merge(r.u8())
	}
	if r.rem() > 0 {
		m.Explain = r.u8() != 0
	}
	return m, r.done()
}

// Optimize reflectively optimizes an exported function server-side and
// installs the new code for the whole server (paper §4.1: the result
// lands in the shared link cache, so every session benefits).
type Optimize struct {
	Module string
	Fn     string
}

// Encode serialises the message body.
func (m *Optimize) Encode() []byte {
	var b bytes.Buffer
	putStr(&b, m.Module)
	putStr(&b, m.Fn)
	return b.Bytes()
}

// DecodeOptimize deserialises an Optimize body.
func DecodeOptimize(body []byte) (*Optimize, error) {
	r := &wreader{b: body}
	m := &Optimize{Module: r.str(), Fn: r.str()}
	return m, r.done()
}

// Watch subscribes the session to committed root changes. After the
// server answers VWatchOK the connection becomes a dedicated push
// stream: the protocol has no request ids, so a watching session issues
// no further requests and the server sends VNotify frames until either
// side closes. Patterns are root names with '*' wildcards ("srv:*"
// matches every saved closure); a change is delivered once if any
// pattern matches.
type Watch struct {
	Patterns []string
	// SinceCSN resumes a subscription: the server replays the committed
	// changes with CSN strictly greater than it before going live, so a
	// client reconnecting after connection loss misses nothing. Zero asks
	// for changes from now on. Optional trailing field — omitted when
	// zero for compatibility.
	SinceCSN uint64
}

// Encode serialises the message body.
func (m *Watch) Encode() []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(m.Patterns)))
	for _, p := range m.Patterns {
		putStr(&b, p)
	}
	if m.SinceCSN != 0 {
		putU64(&b, m.SinceCSN)
	}
	return b.Bytes()
}

// DecodeWatch deserialises a Watch body.
func DecodeWatch(body []byte) (*Watch, error) {
	r := &wreader{b: body}
	m := &Watch{}
	n := r.count(4) // smallest pattern: a 4-byte length prefix
	for i := 0; i < n && r.err == nil; i++ {
		m.Patterns = append(m.Patterns, r.str())
	}
	if r.rem() > 0 {
		m.SinceCSN = r.u64()
	}
	return m, r.done()
}

// WatchOK accepts a subscription. CSN is the stream position: every
// subsequent VNotify carries a CSN strictly greater than it (for a
// fresh subscription the store's current CSN; for a resume, the
// client's SinceCSN).
type WatchOK struct {
	CSN uint64
}

// Encode serialises the message body.
func (m *WatchOK) Encode() []byte {
	var b bytes.Buffer
	putU64(&b, m.CSN)
	return b.Bytes()
}

// DecodeWatchOK deserialises a WatchOK body.
func DecodeWatchOK(body []byte) (*WatchOK, error) {
	r := &wreader{b: body}
	m := &WatchOK{CSN: r.u64()}
	return m, r.done()
}

// Notify is one committed root change pushed to a WATCH subscriber:
// the root name, the OID it now binds, and the commit's CSN.
// Notifications arrive in nondecreasing CSN order; the changes of one
// multi-root commit share a CSN and arrive contiguously.
type Notify struct {
	Root string
	OID  uint64
	CSN  uint64
	// More marks that further notifications of the SAME commit follow,
	// so a subscriber can apply a whole commit atomically (the last
	// change of a batch has More false). Optional trailing field —
	// omitted when false, so frames from servers predating it decode as
	// single-change commits, which is what those servers send.
	More bool
}

// Encode serialises the message body.
func (m *Notify) Encode() []byte {
	var b bytes.Buffer
	putStr(&b, m.Root)
	putU64(&b, m.OID)
	putU64(&b, m.CSN)
	if m.More {
		b.WriteByte(1)
	}
	return b.Bytes()
}

// DecodeNotify deserialises a Notify body.
func DecodeNotify(body []byte) (*Notify, error) {
	r := &wreader{b: body}
	m := &Notify{Root: r.str(), OID: r.u64(), CSN: r.u64()}
	if r.rem() > 0 {
		m.More = r.u8() != 0
	}
	return m, r.done()
}

// MatchRoot reports whether a root name matches a watch pattern: '*'
// matches any run of characters (including none), every other byte
// matches itself. The classic greedy single-star backtracking match —
// patterns are operator-written, never hostile.
func MatchRoot(pattern, name string) bool {
	px, nx := 0, 0
	star, starN := -1, 0
	for nx < len(name) {
		switch {
		case px < len(pattern) && pattern[px] == '*':
			star, starN = px, nx
			px++
		case px < len(pattern) && pattern[px] == name[nx]:
			px++
			nx++
		case star >= 0:
			starN++
			px, nx = star+1, starN
		default:
			return false
		}
	}
	for px < len(pattern) && pattern[px] == '*' {
		px++
	}
	return px == len(pattern)
}

// ShipItem is one deferred write inside a Sync batch: the original verb
// (VSubmit or VInstall) and the original encoded request body, idempotency
// key and all. Re-encoding nothing is the point — the replica replays the
// byte-identical request the live replicas executed, so the server-side
// dedup key (idempotency key × content hash) matches across the handoff.
type ShipItem struct {
	Verb Verb
	Body []byte
}

// Sync replays a batch of keyed writes to a replica that missed them
// (replica repair). Items apply strictly in order; the first failing item
// aborts the batch and the response reports how many applied, so the
// shipper can retry from the failure without losing order. Replayed items
// that the replica already executed are absorbed by its dedup table —
// order plus original idempotency keys is what makes the whole protocol
// exactly-once without a cursor handshake.
type Sync struct {
	Items []ShipItem
}

// Encode serialises the message body.
func (m *Sync) Encode() []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(m.Items)))
	for _, it := range m.Items {
		b.WriteByte(byte(it.Verb))
		putU32(&b, uint32(len(it.Body)))
		b.Write(it.Body)
	}
	return b.Bytes()
}

// DecodeSync deserialises a Sync body.
func DecodeSync(body []byte) (*Sync, error) {
	r := &wreader{b: body}
	m := &Sync{}
	n := r.count(5) // smallest item: verb byte + 4-byte body length
	for i := 0; i < n && r.err == nil; i++ {
		m.Items = append(m.Items, ShipItem{Verb: Verb(r.u8()), Body: r.bytesField()})
	}
	return m, r.done()
}

// SyncOK confirms a Sync batch: every item applied (or deduped).
type SyncOK struct {
	Applied uint32 // items processed, always len(Items) on success
}

// Encode serialises the message body.
func (m *SyncOK) Encode() []byte {
	var b bytes.Buffer
	putU32(&b, m.Applied)
	return b.Bytes()
}

// DecodeSyncOK deserialises a SyncOK body.
func DecodeSyncOK(body []byte) (*SyncOK, error) {
	r := &wreader{b: body}
	m := &SyncOK{Applied: r.u32()}
	return m, r.done()
}

// Digest asks a server for its per-root anti-entropy digests. Prefix
// restricts the answer to roots with that name prefix ("" means all); the
// repair loop asks for everything, tests for narrower slices.
type Digest struct {
	Prefix string
}

// Encode serialises the message body.
func (m *Digest) Encode() []byte {
	var b bytes.Buffer
	putStr(&b, m.Prefix)
	return b.Bytes()
}

// DecodeDigest deserialises a Digest body.
func DecodeDigest(body []byte) (*Digest, error) {
	r := &wreader{b: body}
	m := &Digest{Prefix: r.str()}
	return m, r.done()
}

// RootDigest is one root's structural digest: a hex hash of the object
// graph reachable from the root, computed OID-independently so two
// replicas that applied the same writes in different allocation orders
// still agree (see server.RootDigest for what the hash covers).
type RootDigest struct {
	Name   string
	Digest string
}

// DigestOK answers a Digest request. CSN and Epoch are the answering
// store's commit sequence number and binding epoch — observability
// context for logs and fsck, NOT part of the comparison: both are local
// counters that legitimately differ between replicas with identical
// contents (a replayed batch commits in fewer groups, reflective
// reoptimization bumps epochs on one replica only). Agreement means the
// per-root digest maps are equal.
type DigestOK struct {
	CSN   uint64
	Epoch uint64
	Roots []RootDigest
}

// Encode serialises the message body.
func (m *DigestOK) Encode() []byte {
	var b bytes.Buffer
	putU64(&b, m.CSN)
	putU64(&b, m.Epoch)
	putU32(&b, uint32(len(m.Roots)))
	for _, rd := range m.Roots {
		putStr(&b, rd.Name)
		putStr(&b, rd.Digest)
	}
	return b.Bytes()
}

// DecodeDigestOK deserialises a DigestOK body.
func DecodeDigestOK(body []byte) (*DigestOK, error) {
	r := &wreader{b: body}
	m := &DigestOK{CSN: r.u64(), Epoch: r.u64()}
	n := r.count(8) // smallest root digest: two 4-byte length prefixes
	for i := 0; i < n && r.err == nil; i++ {
		m.Roots = append(m.Roots, RootDigest{Name: r.str(), Digest: r.str()})
	}
	return m, r.done()
}

// ExecInfo is the per-request execution record attached to a Result.
type ExecInfo struct {
	Steps    int64 // abstract machine steps charged to the request
	Micros   int64 // server-side wall time in microseconds
	CacheHit bool  // compilation served from the shared pipeline cache
	Shared   bool  // compilation deduplicated against a concurrent run
	Rewrites int64 // optimizer rule applications (fresh compilations)
	Inlined  int64 // closures inlined across barriers (optimize verb)
}

// Result carries a successful response value.
type Result struct {
	Val  WVal
	Info ExecInfo
	// Partial marks a degraded cluster answer: one or more shards were
	// unreachable, the value covers only the reachable ones, and Missing
	// names the hash ranges whose rows are absent ("shardN:[lo,hi)").
	// The pair travels as an optional trailing extension — a plain tycd
	// answer never carries it, and old frames decode without it.
	Partial bool
	Missing []string
	// Explain is the rendered physical plan when the request asked for
	// one (Submit.Explain): one operator per line, chosen algorithm with
	// estimated vs. actual cardinalities. Optional trailing extension
	// behind the partial block — omitted when empty.
	Explain string
}

// Encode serialises the message body.
func (m *Result) Encode() ([]byte, error) {
	var b bytes.Buffer
	if err := putWVal(&b, m.Val); err != nil {
		return nil, err
	}
	putU64(&b, uint64(m.Info.Steps))
	putU64(&b, uint64(m.Info.Micros))
	flags := byte(0)
	if m.Info.CacheHit {
		flags |= 1
	}
	if m.Info.Shared {
		flags |= 2
	}
	b.WriteByte(flags)
	putU64(&b, uint64(m.Info.Rewrites))
	putU64(&b, uint64(m.Info.Inlined))
	if m.Partial || m.Explain != "" {
		// The partial block is the carrier for everything behind it: an
		// earlier trailing field must be written whenever a later one is.
		if m.Partial {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
		putU32(&b, uint32(len(m.Missing)))
		for _, rng := range m.Missing {
			putStr(&b, rng)
		}
	}
	if m.Explain != "" {
		putStr(&b, m.Explain)
	}
	return b.Bytes(), nil
}

// DecodeResult deserialises a Result body.
func DecodeResult(body []byte) (*Result, error) {
	r := &wreader{b: body}
	m := &Result{Val: r.wval()}
	m.Info.Steps = int64(r.u64())
	m.Info.Micros = int64(r.u64())
	flags := r.u8()
	m.Info.CacheHit = flags&1 != 0
	m.Info.Shared = flags&2 != 0
	m.Info.Rewrites = int64(r.u64())
	m.Info.Inlined = int64(r.u64())
	if r.rem() > 0 {
		m.Partial = r.u8() != 0
		n := r.count(4) // smallest missing range: a 4-byte length prefix
		for i := 0; i < n && r.err == nil; i++ {
			m.Missing = append(m.Missing, r.str())
		}
	}
	if r.rem() > 0 {
		m.Explain = r.str()
	}
	return m, r.done()
}

// ErrCode classifies a WireError.
type ErrCode byte

// The wire error codes.
const (
	CodeProto      ErrCode = 1 // malformed frame or message body
	CodeBadRequest ErrCode = 2 // well-formed but unacceptable request
	CodeNotFound   ErrCode = 3 // unknown module, function or saved name
	CodeCompile    ErrCode = 4 // compilation or optimization failed
	CodeExec       ErrCode = 5 // runtime failure (including TML exceptions)
	CodeBudget     ErrCode = 6 // step or wall-clock budget exceeded
	CodeShutdown   ErrCode = 7 // server is draining; no new work
	CodeInternal   ErrCode = 8 // server-side invariant violation
	// CodeOverloaded refuses a request the server has no capacity for
	// right now; the request was NOT executed, so a retry after the
	// RetryAfterMs hint is always safe.
	CodeOverloaded ErrCode = 9
	// CodeDegraded refuses a write while the server is in degraded
	// read-only mode (store commits are failing); reads keep working.
	CodeDegraded ErrCode = 10
	// CodeConflict aborts a request whose transaction lost a
	// first-committer-wins race: another session committed a conflicting
	// write first. Nothing was applied, so a retry — which re-executes
	// against a fresh snapshot — is always safe.
	CodeConflict ErrCode = 11
	// CodeReplicaDown refuses a write-all application because a replica
	// of the owning shard is down and the coordinator has no handoff log
	// to defer the write into (-handoff-dir unset). Nothing was applied
	// anywhere, so a retry after the RetryAfterMs hint is always safe —
	// and tells clients to back off for the repair instead of hammering.
	CodeReplicaDown ErrCode = 12
)

// String names an error code.
func (c ErrCode) String() string {
	switch c {
	case CodeProto:
		return "proto"
	case CodeBadRequest:
		return "bad-request"
	case CodeNotFound:
		return "not-found"
	case CodeCompile:
		return "compile"
	case CodeExec:
		return "exec"
	case CodeBudget:
		return "budget"
	case CodeShutdown:
		return "shutdown"
	case CodeInternal:
		return "internal"
	case CodeOverloaded:
		return "overloaded"
	case CodeDegraded:
		return "degraded"
	case CodeConflict:
		return "conflict"
	case CodeReplicaDown:
		return "replica-down"
	default:
		return fmt.Sprintf("code(%d)", byte(c))
	}
}

// WireError is a structured server-side failure; it implements error so
// clients surface it directly.
type WireError struct {
	Code ErrCode
	Msg  string
	// RetryAfterMs, when nonzero, hints how long a client should back
	// off before retrying (set with CodeOverloaded). It travels as an
	// optional trailing field: encoders omit it when zero, so frames
	// without the hint decode under both old and new readers.
	RetryAfterMs uint32
}

func (e *WireError) Error() string { return fmt.Sprintf("tycd: %s: %s", e.Code, e.Msg) }

// Encode serialises the message body.
func (e *WireError) Encode() []byte {
	var b bytes.Buffer
	b.WriteByte(byte(e.Code))
	putStr(&b, e.Msg)
	if e.RetryAfterMs != 0 {
		putU32(&b, e.RetryAfterMs)
	}
	return b.Bytes()
}

// DecodeWireError deserialises a WireError body.
func DecodeWireError(body []byte) (*WireError, error) {
	r := &wreader{b: body}
	e := &WireError{Code: ErrCode(r.u8()), Msg: r.str()}
	if r.rem() > 0 {
		e.RetryAfterMs = r.u32()
	}
	return e, r.done()
}

// --- server statistics -----------------------------------------------------

// VerbStat is one verb's latency counter.
type VerbStat struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	Micros int64 `json:"micros"` // cumulative server-side wall time
}

// ServerStats is the STATS response payload. It travels as JSON inside
// the binary frame: the counters are for operators and tests, not for
// the execution hot path, so a self-describing encoding beats another
// hand-rolled codec.
type ServerStats struct {
	// Sessions is the number of currently open sessions; TotalSessions
	// counts sessions ever accepted.
	Sessions      int    `json:"sessions"`
	TotalSessions uint64 `json:"total_sessions"`
	// Draining reports that the server has begun a graceful shutdown.
	Draining bool `json:"draining,omitempty"`
	// Pipeline is the shared compilation pipeline's cache counters —
	// across all sessions, which is what makes Shared meaningful.
	Pipeline pipeline.CacheStats `json:"pipeline"`
	// Indexes is the shared relational index cache's counters.
	Indexes relalg.IndexStats `json:"indexes"`
	// Degraded reports the read-only mode entered when store commits
	// start failing; DegradedReason carries the commit error.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Inflight is the number of requests executing right now; Shed
	// counts requests refused with CodeOverloaded.
	Inflight int   `json:"inflight,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	// IdemApplied counts keyed requests executed and recorded;
	// IdemDeduped counts retries answered from the record instead of
	// being executed a second time.
	IdemApplied int64 `json:"idem_applied,omitempty"`
	IdemDeduped int64 `json:"idem_deduped,omitempty"`
	// Verbs are the per-verb latency counters, keyed by Verb.String().
	Verbs map[string]VerbStat `json:"verbs,omitempty"`
	// Store carries the MVCC store's counters: open snapshots,
	// transaction commits/aborts/conflicts and group-commit batching.
	Store *store.TxStats `json:"store,omitempty"`
	// Watch carries the WATCH hub's counters; absent until the first
	// subscription or committed root change.
	Watch *WatchStats `json:"watch,omitempty"`
	// Cluster carries the coordinator counters when the answering
	// process is a tycc coordinator rather than a plain tycd shard. JSON
	// keeps the extension free: old clients simply ignore the field.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// WatchStats is the WATCH hub's counter block inside ServerStats.
type WatchStats struct {
	// Subscribers is the number of live subscriptions; TotalWatches
	// counts subscriptions ever accepted, Resumed the ones that carried
	// a SinceCSN.
	Subscribers  int   `json:"subscribers"`
	TotalWatches int64 `json:"total_watches,omitempty"`
	Resumed      int64 `json:"resumed,omitempty"`
	// Events counts committed root changes observed by the hub;
	// Delivered the notifications enqueued to subscribers (one event
	// fans out once per matching subscriber).
	Events    int64 `json:"events,omitempty"`
	Delivered int64 `json:"delivered,omitempty"`
	// Dropped counts subscriptions terminated because the subscriber
	// fell too far behind (it resumes by CSN); LostHorizon counts
	// resume attempts refused because the backlog no longer reached
	// back to the requested CSN.
	Dropped     int64 `json:"dropped,omitempty"`
	LostHorizon int64 `json:"lost_horizon,omitempty"`
	// Backlog is the number of events currently retained for resume.
	Backlog int `json:"backlog,omitempty"`
}

// ReplicaStat is one shard replica's health as the coordinator sees it.
type ReplicaStat struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Down  bool   `json:"down,omitempty"`
	// Fails counts request failures charged to this replica; Idle is the
	// size of the coordinator's pooled-session stack for it.
	Fails int64 `json:"fails,omitempty"`
	Idle  int   `json:"idle,omitempty"`
	// State is the repair state machine's view: "live" (serving reads),
	// "lagging" (missed writes sit in its handoff log; excluded from
	// reads) or "repairing" (the repair loop is draining to it).
	State string `json:"state,omitempty"`
	// Backlog is the handoff log depth: deferred writes not yet confirmed
	// by this replica.
	Backlog int `json:"backlog,omitempty"`
	// LastRepairCSN is the replica's store CSN observed when its last
	// repair completed (digests agreed); zero if never repaired.
	LastRepairCSN uint64 `json:"last_repair_csn,omitempty"`
}

// ClusterStats is the coordinator's counter block inside ServerStats.
type ClusterStats struct {
	Shards int `json:"shards"`
	// Scatter counts fan-out reads, Routed single-shard requests
	// (saving submits, calls, per-shard writes).
	Scatter int64 `json:"scatter"`
	Routed  int64 `json:"routed"`
	// Failovers counts reads answered by a non-first replica after the
	// preferred one failed; Hedges counts hedge requests launched
	// against a straggling shard, HedgeWins how many beat the primary.
	Failovers int64 `json:"failovers,omitempty"`
	Hedges    int64 `json:"hedges,omitempty"`
	HedgeWins int64 `json:"hedge_wins,omitempty"`
	// Partials counts degraded scatter answers that named missing
	// ranges instead of failing.
	Partials int64 `json:"partials,omitempty"`
	// Shed counts requests refused by the coordinator's own inflight
	// gate (composing with each shard's gate underneath).
	Shed int64 `json:"shed,omitempty"`
	// HandoffWrites counts writes accepted while a replica was down and
	// deferred into its handoff log; RepairShipped counts deferred writes
	// later replayed to a revived replica; Repairs counts repairs that
	// completed with agreeing digests; RepairMismatch counts anti-entropy
	// passes that found diverging digests after a full drain (the replica
	// stays out of the read list — fails loud in tycfsck -cluster).
	HandoffWrites  int64         `json:"handoff_writes,omitempty"`
	RepairShipped  int64         `json:"repair_shipped,omitempty"`
	Repairs        int64         `json:"repairs,omitempty"`
	RepairMismatch int64         `json:"repair_mismatch,omitempty"`
	Replicas       []ReplicaStat `json:"replicas,omitempty"`
}

// / Health is the HEALTH response payload (JSON, like ServerStats): a
// cheap probe a load balancer or retrying client can poll without
// touching the execution path.
type Health struct {
	// Status summarises the mode: "ok", "degraded" or "draining".
	Status string `json:"status"`
	// Draining reports a graceful shutdown in progress.
	Draining bool `json:"draining,omitempty"`
	// Degraded reports read-only mode; Reason carries the commit error
	// that triggered it.
	Degraded bool   `json:"degraded,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Sessions and Inflight size the current load.
	Sessions int `json:"sessions"`
	Inflight int `json:"inflight"`
}

// --- little wire helpers ---------------------------------------------------

func putU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

// wreader decodes message bodies with latched errors, like the bundle
// reader, but classifies failures as FrameErrors: a body that fails to
// parse after the envelope checksum verified is a protocol bug, not
// transit damage.
type wreader struct {
	b   []byte
	pos int
	err error
}

func (r *wreader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = &FrameError{Reason: fmt.Sprintf(format, args...) + fmt.Sprintf(" at offset %d", r.pos)}
	}
}

func (r *wreader) done() error {
	if r.err == nil && r.pos != len(r.b) {
		r.failf("%d trailing bytes", len(r.b)-r.pos)
	}
	return r.err
}

// rem reports how many undecoded bytes remain; optional trailing fields
// are decoded only when present.
func (r *wreader) rem() int {
	if r.err != nil {
		return 0
	}
	return len(r.b) - r.pos
}

func (r *wreader) u8() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.failf("truncated u8")
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *wreader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.b) {
		r.failf("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *wreader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.b) {
		r.failf("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *wreader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.failf("truncated string")
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *wreader) bytesField() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.pos+n > len(r.b) {
		r.failf("truncated bytes")
		return nil
	}
	out := append([]byte(nil), r.b[r.pos:r.pos+n]...)
	r.pos += n
	return out
}

// count reads an element count and bounds it against the remaining
// input (each element takes at least minSize bytes), so a corrupt count
// can never drive a huge allocation.
func (r *wreader) count(minSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*minSize > len(r.b)-r.pos {
		r.failf("absurd element count %d", n)
		return 0
	}
	return n
}
