// Package cluster shards the tycd store across N server processes and
// plans distributed queries over them: a coordinator holds the shard
// metadata (who owns which hash range, which replicas serve it), pushes
// compiled predicate closures — already content-addressed per α-hash by
// the pipeline and idempotent per their client keys — to the shard
// owning the rows, and merges the partial results. The paper's thesis
// is that PTML plus binding tables make compiled code mobile across an
// open environment; this package is the node→node half of that claim:
// the same PTML frame a client ships to one server is re-shipped,
// unchanged, to the shard that holds the data.
//
// The robustness layer is the headline. Every cross-shard hop rides the
// retrying client of package client (idempotency keys propagate
// end-to-end, so a coordinator retry never double-applies at a shard);
// reads fail over between replicas and hedge against stragglers with
// first-answer-wins cancellation; and when a shard is truly down, a
// scatter read degrades to a typed partial result that names the
// missing hash ranges instead of failing the whole query.
package cluster

import (
	"fmt"
	"hash/fnv"
)

// Range is one shard's slice of the 64-bit hash ring: the half-open
// interval [Lo, Hi), except the last shard whose Hi wraps to 0 and
// means "to the top of the ring".
type Range struct {
	Lo, Hi uint64
}

// Contains reports whether a hashed key falls in the range.
func (r Range) Contains(h uint64) bool {
	if r.Hi == 0 {
		return h >= r.Lo
	}
	return h >= r.Lo && h < r.Hi
}

// String renders the range the way partial results name it.
func (r Range) String() string {
	return fmt.Sprintf("[0x%016x,0x%016x)", r.Lo, r.Hi)
}

// Shard is one shard's metadata: the replicas that serve its range, in
// preference order (the first live one takes reads; writes go to all).
type Shard struct {
	Replicas []string // addresses
}

// Topology is the static placement map: N shards splitting the hash
// ring into equal ranges, in index order.
type Topology struct {
	Shards []Shard
}

// N is the shard count.
func (t Topology) N() int { return len(t.Shards) }

// KeyHash places a routing key on the ring: FNV-1a, then a 64-bit
// avalanche finalizer. The finalizer matters — placement slices the
// ring by the HIGH bits, and raw FNV-1a barely diffuses short keys into
// them (three shards over "row:N" keys left one shard empty). The same
// function runs everywhere so placement is stable across processes and
// restarts.
func KeyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RangeOf is shard i's slice of the ring.
func (t Topology) RangeOf(i int) Range {
	if t.N() == 1 {
		return Range{} // [0, wrap): the whole ring
	}
	width := (^uint64(0))/uint64(t.N()) + 1
	r := Range{Lo: uint64(i) * width}
	if i < t.N()-1 {
		r.Hi = uint64(i+1) * width
	}
	return r
}

// ShardFor routes a key to the shard owning its hash.
func (t Topology) ShardFor(key string) int {
	if t.N() == 1 {
		return 0
	}
	h := KeyHash(key)
	width := (^uint64(0))/uint64(t.N()) + 1
	i := int(h / width)
	if i >= t.N() {
		i = t.N() - 1
	}
	return i
}

// MissingName renders one shard's absence for Result.Missing.
func (t Topology) MissingName(i int) string {
	return fmt.Sprintf("shard%d:%s", i, t.RangeOf(i))
}

// ParseMissing recovers the shard index from a Result.Missing entry.
func ParseMissing(s string) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(s, "shard%d:", &i); err != nil {
		return 0, false
	}
	return i, true
}

// Validate rejects an unusable topology.
func (t Topology) Validate() error {
	if t.N() == 0 {
		return fmt.Errorf("cluster: topology has no shards")
	}
	for i, s := range t.Shards {
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		for _, addr := range s.Replicas {
			if addr == "" {
				return fmt.Errorf("cluster: shard %d has an empty replica address", i)
			}
		}
	}
	return nil
}
