package cluster

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/handoff"
	"tycoon/internal/iofault"
	"tycoon/internal/ship"
)

// Defaults for Config zero values.
const (
	DefaultTimeout        = 30 * time.Second
	DefaultRetries        = 3
	DefaultRetryBase      = 5 * time.Millisecond
	DefaultRetryMax       = 250 * time.Millisecond
	DefaultMaxInflight    = 128
	DefaultRetryAfter     = 50 * time.Millisecond
	DefaultPoolSize       = 4
	DefaultProbeInterval  = 250 * time.Millisecond
	DefaultRepairInterval = 250 * time.Millisecond
)

// Config tunes a Coordinator.
type Config struct {
	// Topology is the shard placement map; required.
	Topology Topology
	// Timeout bounds each shard request attempt; Retries, RetryBase and
	// RetryMax configure the per-shard retrying clients (see package
	// client). Zeros mean the defaults above.
	Timeout   time.Duration
	Retries   int
	RetryBase time.Duration
	RetryMax  time.Duration
	// HedgeAfter launches a hedge request against another replica (or a
	// second session to the same one) when a shard read has not answered
	// after this long; first answer wins and the loser is aborted. 0
	// disables hedging.
	HedgeAfter time.Duration
	// AllowPartial lets a scatter read degrade to a partial result that
	// names the unreachable shards' hash ranges instead of failing.
	AllowPartial bool
	// MaxInflight bounds requests executing through the coordinator at
	// once; excess work is refused with CodeOverloaded and a RetryAfter
	// hint, composing with each shard's own inflight gate underneath. 0
	// means DefaultMaxInflight; negative disables the gate.
	MaxInflight int
	// RetryAfter is the hint attached to coordinator refusals.
	RetryAfter time.Duration
	// PoolSize bounds the idle-session pool kept per replica.
	PoolSize int
	// ProbeInterval paces the health probes that revive replicas marked
	// down by request failures. 0 means the default; negative disables
	// probing (tests drive MarkAllUp by hand).
	ProbeInterval time.Duration
	// HandoffDir enables replica repair: when a write-all application
	// finds a replica unreachable, the write is accepted anyway and
	// appended to a per-replica write-ahead handoff log under this
	// directory; a background loop later replays the log to the revived
	// replica in original order under the original idempotency keys and
	// re-admits it to reads only after an anti-entropy digest exchange.
	// Empty disables handoff: a down replica then fails the write with a
	// distinct replica-down refusal instead (fail closed, but say why).
	HandoffDir string
	// RepairInterval paces the background repair loop draining handoff
	// logs to revived replicas. 0 means the default; negative disables
	// the loop (tests drive RepairNow by hand).
	RepairInterval time.Duration
	// Seed makes client jitter and minted idempotency keys
	// deterministic; 0 seeds from the clock.
	Seed int64
	// Out receives the coordinator log; nil discards it.
	Out io.Writer
}

// Replica repair states. The down latch tracks connectivity (probe
// flips it back); state tracks whether the replica's store is known to
// hold every acked write. They move independently: a revived replica is
// up but still lagging until the repair loop drains its handoff log and
// the digest audit passes.
const (
	repLive      int32 = iota // holds every acked write; serves reads
	repLagging                // has a handoff backlog; held out of reads
	repRepairing              // repair loop is draining it right now
)

var repStateNames = [...]string{"live", "lagging", "repairing"}

// replica is one shard replica as the coordinator tracks it: a pool of
// idle sessions, a health latch flipped by request failures and probe
// successes, and — when handoff is enabled — the repair state machine
// around its write-ahead handoff log.
type replica struct {
	shard int
	addr  string

	mu   sync.Mutex
	idle []*client.Client

	down  atomic.Bool
	fails atomic.Int64

	// state is the repair latch (repLive/repLagging/repRepairing). lagMu
	// serialises lag transitions against handoff appends: the repair
	// loop's final lagging→live flip happens under lagMu only when the
	// log is empty, and writers append only after re-checking the state
	// under lagMu, so a write can never slip into a log nobody drains.
	state atomic.Int32
	lagMu sync.Mutex
	ho    *handoff.Log

	// mismatched latches a failed anti-entropy audit: the replica
	// diverged in a way replay cannot explain and stays out of reads
	// until an operator intervenes (MarkAllUp clears the latch).
	mismatched    atomic.Bool
	lastRepairCSN atomic.Uint64

	// appends counts handoff appends ever made for this replica; the
	// audit uses it to tell in-flight lag (a peer applied a write whose
	// handoff record is still landing) from genuine divergence.
	// auditStrikes counts consecutive quiescent digest disagreements;
	// only a second strike latches mismatched.
	appends      atomic.Int64
	auditStrikes atomic.Int32
}

// shard is one shard's replicas plus its ring slice.
type shard struct {
	index    int
	rng      Range
	replicas []*replica
}

// Coordinator plans distributed requests over the topology.
type Coordinator struct {
	cfg    Config
	shards []*shard

	inflight chan struct{}

	keyMu   sync.Mutex
	rng     *rand.Rand
	keyBase string
	keySeq  uint64

	scatter   atomic.Int64
	routed    atomic.Int64
	failovers atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	partials  atomic.Int64
	shed      atomic.Int64

	handoffWrites  atomic.Int64
	repairShipped  atomic.Int64
	repairs        atomic.Int64
	repairMismatch atomic.Int64

	stopProbe  chan struct{}
	probeWG    sync.WaitGroup
	stopRepair chan struct{}
	repairWG   sync.WaitGroup
	repairMu   sync.Mutex // serialises repair passes (loop, tests, drain)
	closed     atomic.Bool
}

// New builds a coordinator over the topology and starts its health
// probe loop.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Retries == 0 {
		cfg.Retries = DefaultRetries
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.RepairInterval == 0 {
		cfg.RepairInterval = DefaultRepairInterval
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	co := &Coordinator{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		stopProbe:  make(chan struct{}),
		stopRepair: make(chan struct{}),
	}
	co.keyBase = fmt.Sprintf("tycc-%08x", co.rng.Uint32())
	for i := range cfg.Topology.Shards {
		s := &shard{index: i, rng: cfg.Topology.RangeOf(i)}
		co.shards = append(co.shards, s)
		for j, addr := range cfg.Topology.Shards[i].Replicas {
			rep := &replica{shard: i, addr: addr}
			if cfg.HandoffDir != "" {
				path := filepath.Join(cfg.HandoffDir, fmt.Sprintf("shard%d-r%d.hlog", i, j))
				ho, err := handoff.Open(iofault.OS(), path)
				if err != nil {
					co.closeHandoff()
					return nil, fmt.Errorf("open handoff log %s: %w", path, err)
				}
				rep.ho = ho
				if n := ho.Len(); n > 0 {
					// The last run acked writes this replica never saw;
					// it must not serve reads until they are replayed.
					rep.state.Store(repLagging)
					co.logf("shard %d replica %s boots lagging: %d deferred writes in %s", i, addr, n, path)
				}
			}
			s.replicas = append(s.replicas, rep)
		}
	}
	if cfg.MaxInflight > 0 {
		co.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	if cfg.ProbeInterval > 0 {
		co.probeWG.Add(1)
		go co.probeLoop()
	}
	if cfg.HandoffDir != "" && cfg.RepairInterval > 0 {
		co.repairWG.Add(1)
		go co.repairLoop()
	}
	return co, nil
}

// closeHandoff closes every handoff log opened so far (New error path
// and Close).
func (co *Coordinator) closeHandoff() {
	for _, s := range co.shards {
		for _, rep := range s.replicas {
			if rep.ho != nil {
				rep.ho.Close()
			}
		}
	}
}

// Close stops the probe and repair loops, closes every pooled session
// and closes the handoff logs. Undrained handoff records stay on disk;
// the next coordinator boot reopens them and resumes repair.
func (co *Coordinator) Close() {
	if co.closed.Swap(true) {
		return
	}
	close(co.stopProbe)
	close(co.stopRepair)
	co.probeWG.Wait()
	co.repairWG.Wait()
	for _, s := range co.shards {
		for _, rep := range s.replicas {
			rep.mu.Lock()
			for _, c := range rep.idle {
				c.Close()
			}
			rep.idle = nil
			rep.mu.Unlock()
		}
	}
	co.repairMu.Lock() // no repair pass mid-flight while logs close
	co.closeHandoff()
	co.repairMu.Unlock()
}

// Topology exposes the placement map.
func (co *Coordinator) Topology() Topology { return co.cfg.Topology }

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Out != nil {
		fmt.Fprintf(co.cfg.Out, "tycc: "+format+"\n", args...)
	}
}

// nextKey mints an idempotency key for a logical write the end client
// did not key itself: the key is chosen once per logical request, so
// replica fan-out and coordinator retries all dedup to one application.
func (co *Coordinator) nextKey() string {
	co.keyMu.Lock()
	defer co.keyMu.Unlock()
	co.keySeq++
	return fmt.Sprintf("%s-%d", co.keyBase, co.keySeq)
}

func (co *Coordinator) clientSeed() int64 {
	co.keyMu.Lock()
	defer co.keyMu.Unlock()
	return co.rng.Int63() + 1
}

// Acquire claims a coordinator execution slot, refusing with a typed
// overload error when the gate is full. The refusal happens before any
// shard is contacted, so it is safely retryable for every verb.
func (co *Coordinator) Acquire() (release func(), werr *ship.WireError) {
	if co.inflight == nil {
		return func() {}, nil
	}
	select {
	case co.inflight <- struct{}{}:
		return func() { <-co.inflight }, nil
	default:
		co.shed.Add(1)
		return nil, &ship.WireError{
			Code:         ship.CodeOverloaded,
			Msg:          "coordinator at inflight capacity, retry later",
			RetryAfterMs: uint32(co.cfg.RetryAfter / time.Millisecond),
		}
	}
}

// InflightCount reports how many requests hold a coordinator slot.
func (co *Coordinator) InflightCount() int {
	if co.inflight == nil {
		return 0
	}
	return len(co.inflight)
}

// --- replica sessions -------------------------------------------------------

// get pops an idle session or dials a fresh one.
func (rep *replica) get(co *Coordinator) (*client.Client, error) {
	rep.mu.Lock()
	if n := len(rep.idle); n > 0 {
		c := rep.idle[n-1]
		rep.idle = rep.idle[:n-1]
		rep.mu.Unlock()
		return c, nil
	}
	rep.mu.Unlock()
	c, err := client.Dial(rep.addr, client.Options{
		Timeout:   co.cfg.Timeout,
		Client:    fmt.Sprintf("tycc→shard%d", rep.shard),
		Retries:   co.cfg.Retries,
		RetryBase: co.cfg.RetryBase,
		RetryMax:  co.cfg.RetryMax,
		Seed:      co.clientSeed(),
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// put returns a session to the pool, or closes it when the pool is full.
func (rep *replica) put(co *Coordinator, c *client.Client) {
	rep.mu.Lock()
	if len(rep.idle) < co.cfg.PoolSize && !co.closed.Load() {
		rep.idle = append(rep.idle, c)
		rep.mu.Unlock()
		return
	}
	rep.mu.Unlock()
	c.Close()
}

// dropIdle empties the pool (the sessions' connections are presumed
// dead after the replica failed).
func (rep *replica) dropIdle() {
	rep.mu.Lock()
	idle := rep.idle
	rep.idle = nil
	rep.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

func (co *Coordinator) markDown(rep *replica, err error) {
	rep.fails.Add(1)
	if !rep.down.Swap(true) {
		co.logf("shard %d replica %s marked down: %v", rep.shard, rep.addr, err)
	}
	rep.dropIdle()
}

func (co *Coordinator) markUp(rep *replica) {
	if rep.down.Swap(false) {
		co.logf("shard %d replica %s back up", rep.shard, rep.addr)
	}
}

// probeLoop revives down replicas: a cheap HEALTH probe on a fresh
// connection flips the latch back once the replica answers again.
func (co *Coordinator) probeLoop() {
	defer co.probeWG.Done()
	t := time.NewTicker(co.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stopProbe:
			return
		case <-t.C:
		}
		for _, s := range co.shards {
			for _, rep := range s.replicas {
				if !rep.down.Load() {
					continue
				}
				c, err := client.Dial(rep.addr, client.Options{
					Timeout: co.cfg.Timeout,
					Client:  "tycc-probe",
					Seed:    co.clientSeed(),
				})
				if err != nil {
					continue
				}
				if _, err := c.Health(); err == nil {
					co.markUp(rep)
				}
				c.Close()
			}
		}
	}
}

// liveFirst orders a shard's replicas for reads: up ones first, each
// group in index order, so reads prefer healthy replicas but still walk
// the whole list when every latch is down (the latch may be stale).
// Replicas that are lagging or under repair are excluded outright — a
// replica with a handoff backlog is missing acked writes, and a stale
// read from it would be a wrong answer, which is strictly worse than a
// degraded (partial or refused) one.
func (s *shard) liveFirst() []*replica {
	out := make([]*replica, 0, len(s.replicas))
	for _, rep := range s.replicas {
		if rep.state.Load() == repLive && !rep.down.Load() {
			out = append(out, rep)
		}
	}
	for _, rep := range s.replicas {
		if rep.state.Load() == repLive && rep.down.Load() {
			out = append(out, rep)
		}
	}
	return out
}

// --- error taxonomy ---------------------------------------------------------

// definitive reports whether a shard error is a real answer (exec
// failure, compile failure, not-found, degraded, budget, conflict …)
// rather than an availability problem. Definitive answers propagate to
// the client; availability problems drive failover, partial
// degradation, or a retryable refusal. A transaction conflict is
// deliberately definitive: the shard is healthy and its replicas hold
// the same objects, so failing over would lose, not win, the race —
// the client retries the whole request and re-executes against a
// fresh snapshot.
func definitive(err error) bool {
	var we *ship.WireError
	if !errors.As(err, &we) {
		return false // transport, dial, framing: availability
	}
	switch we.Code {
	case ship.CodeOverloaded, ship.CodeShutdown, ship.CodeProto:
		return false
	default:
		return true
	}
}

// errAllLagging marks a shard whose every replica is held out of reads
// by the repair state machine.
var errAllLagging = errors.New("every replica is lagging behind the handoff log")

// unavailable wraps the last availability error of a shard into the
// retryable refusal the coordinator answers with: the request was not
// (observably) executed, so the client may retry it for every verb.
func (co *Coordinator) unavailable(shardIdx int, err error) *ship.WireError {
	return &ship.WireError{
		Code:         ship.CodeOverloaded,
		Msg:          fmt.Sprintf("shard %d unavailable: %v", shardIdx, err),
		RetryAfterMs: uint32(co.cfg.RetryAfter / time.Millisecond),
	}
}

// replicaDown is the write-side refusal when handoff is not configured:
// the write-all invariant cannot be met with a replica unreachable, and
// unlike the generic overload refusal this one names the condition so
// clients and operators can tell "retry in a moment" from "a replica is
// down and writes will keep failing until it returns or handoff is
// enabled". Nothing was observably executed, so it is retryable.
func (co *Coordinator) replicaDown(shardIdx int, rep *replica, err error) *ship.WireError {
	cause := "unreachable"
	if err != nil {
		cause = err.Error()
	}
	return &ship.WireError{
		Code: ship.CodeReplicaDown,
		Msg: fmt.Sprintf("shard %d replica %s down and no handoff log configured (-handoff-dir): %s",
			shardIdx, rep.addr, cause),
		RetryAfterMs: uint32(co.cfg.RetryAfter / time.Millisecond),
	}
}

// --- reads: failover + hedging ----------------------------------------------

// raceAttempt is one in-flight read attempt in a shard race.
type raceAttempt struct {
	mu        sync.Mutex
	c         *client.Client
	cancelled bool
	hedge     bool
	rep       *replica
}

type raceOutcome struct {
	att  *raceAttempt
	res  *ship.Result
	err  error
	conn *client.Client
}

// readShard performs one read against a shard: the preferred replica
// first, failover to the next on availability errors, and — when
// HedgeAfter is set — a hedge attempt racing the straggler, first
// answer wins, loser aborted so its server session frees now.
func (co *Coordinator) readShard(s *shard, op func(*client.Client) (*ship.Result, error)) (*ship.Result, error) {
	order := s.liveFirst()
	if len(order) == 0 {
		// Every replica is lagging or under repair: serving the read
		// would risk a wrong (stale) answer, so degrade instead.
		return nil, co.unavailable(s.index, errAllLagging)
	}
	// One attempt per replica, plus one extra hedge slot for the
	// single-replica case (a second session to the same replica re-rolls
	// connection-level misfortune).
	maxAttempts := len(order) + 1
	outcomes := make(chan raceOutcome, maxAttempts)
	var atts []*raceAttempt

	launch := func(rep *replica, hedge bool) {
		att := &raceAttempt{hedge: hedge, rep: rep}
		atts = append(atts, att)
		go func() {
			c, err := rep.get(co)
			if err != nil {
				outcomes <- raceOutcome{att: att, err: err}
				return
			}
			att.mu.Lock()
			if att.cancelled {
				att.mu.Unlock()
				c.Close()
				outcomes <- raceOutcome{att: att, err: client.ErrAborted}
				return
			}
			att.c = c
			att.mu.Unlock()
			res, err := op(c)
			outcomes <- raceOutcome{att: att, res: res, err: err, conn: c}
		}()
	}

	cancelOthers := func(winner *raceAttempt) {
		for _, att := range atts {
			if att == winner {
				continue
			}
			att.mu.Lock()
			att.cancelled = true
			if att.c != nil {
				att.c.Abort()
			}
			att.mu.Unlock()
		}
	}

	next := 0
	launch(order[next], false)
	next++
	launched, pending := 1, 1

	var hedgeTimer <-chan time.Time
	if co.cfg.HedgeAfter > 0 {
		hedgeTimer = time.After(co.cfg.HedgeAfter)
	}

	// drain disposes of straggler outcomes after the race is decided:
	// aborted sessions are closed, intact ones pooled.
	drain := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				o := <-outcomes
				if o.conn == nil {
					continue
				}
				if o.err != nil {
					o.conn.Close()
				} else {
					o.att.rep.put(co, o.conn)
				}
			}
		}()
	}

	var firstErr error
	for {
		select {
		case o := <-outcomes:
			pending--
			if o.err == nil {
				co.markUp(o.att.rep)
				cancelOthers(o.att)
				o.att.rep.put(co, o.conn)
				if o.att.hedge {
					co.hedgeWins.Add(1)
				}
				if o.att.hedge || next > 1 && o.att.rep != order[0] {
					// Count a read served by other than the preferred
					// replica's primary attempt as a failover win.
					if !o.att.hedge {
						co.failovers.Add(1)
					}
				}
				drain(pending)
				return o.res, nil
			}
			if o.conn != nil {
				o.conn.Close()
			}
			if o.att.cancelled {
				// A loser we aborted; not evidence about the replica.
				if pending == 0 {
					if firstErr == nil {
						firstErr = o.err
					}
					return nil, firstErr
				}
				continue
			}
			if definitive(o.err) {
				// The shard answered; that IS the result of the read.
				cancelOthers(o.att)
				drain(pending)
				return nil, o.err
			}
			co.markDown(o.att.rep, o.err)
			if firstErr == nil {
				firstErr = o.err
			}
			if next < len(order) {
				co.failovers.Add(1)
				launch(order[next], false)
				next++
				launched++
				pending++
			} else if pending == 0 {
				return nil, firstErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if launched >= maxAttempts {
				continue
			}
			rep := order[0]
			if next < len(order) {
				rep = order[next]
				next++
			}
			co.hedges.Add(1)
			launch(rep, true)
			launched++
			pending++
		}
	}
}

// --- writes: all replicas, one idempotency key ------------------------------

// shardWrite is one keyed write as writeShard fans it out: the live op
// for reachable replicas, plus the original verb, idempotency key and
// encoded body that a handoff record preserves for later replay.
type shardWrite struct {
	verb ship.Verb
	key  string
	body []byte
	op   func(*client.Client) (*ship.Result, error)
}

// writeShard applies a keyed write to every replica of a shard in
// order; all must ack for the write to be acked (write-all), reads may
// then be served by any replica (read-any). The shared idempotency key
// makes the fan-out and any coordinator or client retry converge to
// exactly one application per replica store.
//
// With handoff enabled, a replica that is down does not fail the write:
// its ack is replaced by a durable append to the replica's write-ahead
// handoff log, and the replica is latched lagging (out of reads) until
// the repair loop replays the log and the digest audit passes. The
// appends happen only after at least one replica actually executed the
// write — an entirely unreachable shard still refuses (retryable), so a
// never-acked write can never reappear out of a handoff log.
func (co *Coordinator) writeShard(s *shard, wr *shardWrite) (*ship.Result, error) {
	var first *ship.Result
	var deferred []*replica
	for _, rep := range s.replicas {
		if rep.state.Load() != repLive {
			// Already lagging: order the write behind its backlog.
			deferred = append(deferred, rep)
			continue
		}
		c, err := rep.get(co)
		if err == nil {
			var res *ship.Result
			res, err = wr.op(c)
			if err == nil {
				co.markUp(rep)
				rep.put(co, c)
				if first == nil {
					first = res
				}
				continue
			}
			c.Close()
			if definitive(err) {
				return nil, err
			}
		}
		co.markDown(rep, err)
		if rep.ho == nil {
			return nil, co.replicaDown(s.index, rep, err)
		}
		rep.lagMu.Lock()
		rep.state.CompareAndSwap(repLive, repLagging)
		rep.lagMu.Unlock()
		co.logf("shard %d replica %s lagging, deferring writes to handoff: %v", s.index, rep.addr, err)
		deferred = append(deferred, rep)
	}
	if first == nil {
		if len(deferred) == 0 {
			// A shard with zero replicas cannot validate; unreachable.
			return nil, co.unavailable(s.index, errors.New("no replicas"))
		}
		// No replica executed the write, so there is no result to ack
		// and nothing may be handed off (an unacked write must not
		// replay later). Refuse retryably instead.
		return nil, co.replicaDown(s.index, deferred[0], nil)
	}
	for _, rep := range deferred {
		if werr := co.deferWrite(s, rep, wr); werr != nil {
			return nil, werr
		}
	}
	return first, nil
}

// deferWrite durably appends one write to a lagging replica's handoff
// log, standing in for that replica's ack. The append happens under
// lagMu after re-checking the state: the repair loop flips lagging→live
// under the same lock only when the log is empty, so either our record
// lands while the latch holds (a repair pass will drain it) or the
// replica went live and we apply the write directly.
func (co *Coordinator) deferWrite(s *shard, rep *replica, wr *shardWrite) *ship.WireError {
	for {
		rep.lagMu.Lock()
		if rep.state.Load() != repLive {
			_, err := rep.ho.Append(byte(wr.verb), wr.key, wr.body)
			if err == nil {
				rep.appends.Add(1)
			}
			rep.lagMu.Unlock()
			if err != nil {
				// The handoff log itself failed (disk): the replica's
				// ack cannot be stood in for, fail the write closed.
				co.logf("shard %d replica %s handoff append failed: %v", s.index, rep.addr, err)
				return co.unavailable(s.index, err)
			}
			co.handoffWrites.Add(1)
			return nil
		}
		rep.lagMu.Unlock()
		// Repair finished while this write was in flight; the replica is
		// live again, so give it the write directly like any other.
		c, err := rep.get(co)
		if err == nil {
			_, err = wr.op(c)
			if err == nil {
				co.markUp(rep)
				rep.put(co, c)
				return nil
			}
			c.Close()
			var we *ship.WireError
			if definitive(err) && errors.As(err, &we) {
				return we
			}
		}
		co.markDown(rep, err)
		rep.lagMu.Lock()
		rep.state.CompareAndSwap(repLive, repLagging)
		rep.lagMu.Unlock()
	}
}

// --- the distributed verbs --------------------------------------------------

// Submit routes a submit: a saving submit is a keyed write applied to
// every replica of the shard owning the save name; everything else is a
// scatter read fanned to all shards and merged under the request's
// merge policy.
func (co *Coordinator) Submit(req *ship.Submit) (*ship.Result, error) {
	if req.Save != "" {
		co.routed.Add(1)
		fwd := *req
		fwd.Merge = ship.MergeAuto
		if fwd.IdemKey == "" {
			// Key the logical write once here, so the replica fan-out
			// and every retry layer dedups to one application.
			fwd.IdemKey = co.nextKey()
		}
		s := co.shards[co.cfg.Topology.ShardFor(req.Save)]
		body, err := fwd.Encode()
		if err != nil {
			return nil, &ship.WireError{Code: ship.CodeBadRequest, Msg: err.Error()}
		}
		return co.writeShard(s, &shardWrite{
			verb: ship.VSubmit,
			key:  fwd.IdemKey,
			body: body,
			op: func(c *client.Client) (*ship.Result, error) {
				return c.Submit(&fwd)
			},
		})
	}
	co.scatter.Add(1)
	fwd := *req
	fwd.Merge = ship.MergeAuto
	return co.scatterSubmit(&fwd, req.Merge)
}

// scatterSubmit fans one submit to every shard in parallel and merges.
func (co *Coordinator) scatterSubmit(fwd *ship.Submit, policy ship.Merge) (*ship.Result, error) {
	n := len(co.shards)
	results := make([]*ship.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, s := range co.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			results[i], errs[i] = co.readShard(s, func(c *client.Client) (*ship.Result, error) {
				return c.Submit(fwd)
			})
		}(i, s)
	}
	wg.Wait()

	var missing []int
	var lastErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if definitive(err) {
			// One shard's real answer (an exec error, a compile error)
			// is the query's answer, exactly as on a single node.
			return nil, err
		}
		missing = append(missing, i)
		lastErr = err
	}
	if len(missing) == n {
		return nil, co.unavailable(missing[0], lastErr)
	}
	if len(missing) > 0 && !co.cfg.AllowPartial {
		return nil, co.unavailable(missing[0], lastErr)
	}
	merged, err := mergeResults(policy, results)
	if err != nil {
		return nil, err
	}
	// An explain answer concatenates the per-shard plans, labelled: the
	// cluster's "plan" is what each shard actually executed.
	var plans []string
	for i, r := range results {
		if r != nil && r.Explain != "" {
			plans = append(plans, fmt.Sprintf("shard%d:\n%s", i, r.Explain))
		}
	}
	if len(plans) > 0 {
		merged.Explain = strings.Join(plans, "\n")
	}
	if len(missing) > 0 {
		co.partials.Add(1)
		merged.Partial = true
		for _, i := range missing {
			merged.Missing = append(merged.Missing, co.cfg.Topology.MissingName(i))
		}
	}
	return merged, nil
}

// Call routes a call to the shard owning the target name (read-any
// with failover): saved closures live on the shard their save was
// routed to; module functions are installed everywhere, so hashing the
// qualified name spreads the load while keeping routing deterministic.
func (co *Coordinator) Call(module, fn string, args []ship.WVal) (*ship.Result, error) {
	co.routed.Add(1)
	key := fn
	if module != "" {
		key = module + "." + fn
	}
	s := co.shards[co.cfg.Topology.ShardFor(key)]
	return co.readShard(s, func(c *client.Client) (*ship.Result, error) {
		return c.Call(module, fn, args...)
	})
}

// Install fans a module install to every replica of every shard — a
// distributed query's predicate may run anywhere, so the module must
// exist everywhere. One idempotency key covers the whole fan-out.
func (co *Coordinator) Install(req *ship.Install) (*ship.Result, error) {
	co.routed.Add(1)
	fwd := *req
	if fwd.IdemKey == "" {
		fwd.IdemKey = co.nextKey()
	}
	body := fwd.Encode()
	var first *ship.Result
	for _, s := range co.shards {
		res, err := co.writeShard(s, &shardWrite{
			verb: ship.VInstall,
			key:  fwd.IdemKey,
			body: body,
			op: func(c *client.Client) (*ship.Result, error) {
				return c.InstallReq(&fwd)
			},
		})
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = res
		}
	}
	return first, nil
}

// Optimize fans a reflective optimization to every shard (first
// replica each): optimizing converges, so partial application is
// harmless and a retry finishes the job.
func (co *Coordinator) Optimize(module, fn string) (*ship.Result, error) {
	co.routed.Add(1)
	var first *ship.Result
	for _, s := range co.shards {
		res, err := co.readShard(s, func(c *client.Client) (*ship.Result, error) {
			return c.Optimize(module, fn)
		})
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = res
		}
	}
	return first, nil
}

// Ping probes one live replica per shard.
func (co *Coordinator) Ping() error {
	for _, s := range co.shards {
		_, err := co.readShard(s, func(c *client.Client) (*ship.Result, error) {
			return nil, c.Ping()
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Health aggregates cluster health: ok when every shard has a live
// replica, degraded when some shard is entirely down (scatter reads
// would go partial), and the shard servers' own degraded latches
// propagate too.
func (co *Coordinator) Health() ship.Health {
	h := ship.Health{Status: "ok"}
	for _, s := range co.shards {
		allDown := true
		for _, rep := range s.replicas {
			// A lagging replica serves no reads, so it does not keep a
			// shard out of the degraded state.
			if rep.state.Load() == repLive && !rep.down.Load() {
				allDown = false
			}
		}
		if allDown {
			h.Degraded = true
			h.Reason = fmt.Sprintf("shard %d has no live replica", s.index)
			h.Status = "degraded"
		}
	}
	h.Inflight = co.InflightCount()
	return h
}

// Stats snapshots the coordinator counters.
func (co *Coordinator) Stats() *ship.ClusterStats {
	st := &ship.ClusterStats{
		Shards:         len(co.shards),
		Scatter:        co.scatter.Load(),
		Routed:         co.routed.Load(),
		Failovers:      co.failovers.Load(),
		Hedges:         co.hedges.Load(),
		HedgeWins:      co.hedgeWins.Load(),
		Partials:       co.partials.Load(),
		Shed:           co.shed.Load(),
		HandoffWrites:  co.handoffWrites.Load(),
		RepairShipped:  co.repairShipped.Load(),
		Repairs:        co.repairs.Load(),
		RepairMismatch: co.repairMismatch.Load(),
	}
	for _, s := range co.shards {
		for _, rep := range s.replicas {
			rep.mu.Lock()
			idle := len(rep.idle)
			rep.mu.Unlock()
			backlog := 0
			if rep.ho != nil {
				backlog = rep.ho.Len()
			}
			st.Replicas = append(st.Replicas, ship.ReplicaStat{
				Shard:         s.index,
				Addr:          rep.addr,
				Down:          rep.down.Load(),
				Fails:         rep.fails.Load(),
				Idle:          idle,
				State:         repStateNames[rep.state.Load()],
				Backlog:       backlog,
				LastRepairCSN: rep.lastRepairCSN.Load(),
			})
		}
	}
	return st
}

// --- merging ----------------------------------------------------------------

// mergeResults combines per-shard answers: relation results concatenate
// in shard order (deterministic output), scalars combine under the
// policy. Entries may be nil (missing shards); at least one must be
// present.
func mergeResults(policy ship.Merge, results []*ship.Result) (*ship.Result, error) {
	present := make([]*ship.Result, 0, len(results))
	for _, r := range results {
		if r != nil {
			present = append(present, r)
		}
	}
	if len(present) == 0 {
		return nil, &ship.WireError{Code: ship.CodeInternal, Msg: "merge of zero shard results"}
	}
	out := &ship.Result{}
	for _, r := range present {
		out.Info.Steps += r.Info.Steps
		out.Info.Rewrites += r.Info.Rewrites
		out.Info.Inlined += r.Info.Inlined
		if r.Info.Micros > out.Info.Micros {
			out.Info.Micros = r.Info.Micros // shards ran in parallel
		}
		if r.Info.Shared {
			out.Info.Shared = true
		}
	}
	// The cache-hit flag is the conjunction: "this distributed query hit
	// the compiled-code cache" means every shard reused its compilation.
	out.Info.CacheHit = true
	for _, r := range present {
		if !r.Info.CacheHit {
			out.Info.CacheHit = false
		}
	}

	if present[0].Val.Kind == ship.WRel {
		t := &ship.WTable{}
		for _, r := range present {
			if r.Val.Kind != ship.WRel || r.Val.Rel == nil {
				return nil, &ship.WireError{Code: ship.CodeInternal,
					Msg: "shards disagree on result shape (relation vs scalar)"}
			}
			if len(t.Cols) == 0 {
				t.Cols = r.Val.Rel.Cols
			}
			t.Rows = append(t.Rows, r.Val.Rel.Rows...)
		}
		out.Val = ship.WVal{Kind: ship.WRel, Rel: t}
		return out, nil
	}

	v, err := mergeScalars(policy, present)
	if err != nil {
		return nil, err
	}
	out.Val = v
	return out, nil
}

func mergeScalars(policy ship.Merge, present []*ship.Result) (ship.WVal, error) {
	internal := func(format string, args ...any) (ship.WVal, error) {
		return ship.WVal{}, &ship.WireError{Code: ship.CodeInternal, Msg: fmt.Sprintf(format, args...)}
	}
	first := present[0].Val
	switch policy {
	case ship.MergeAuto:
		for _, r := range present[1:] {
			if !scalarEqual(first, r.Val) {
				return internal("shards disagree on a scalar answer (%s vs %s); "+
					"use merge=sum/any/all for partitioned aggregates", first.Show(), r.Val.Show())
			}
		}
		return first, nil
	case ship.MergeSum:
		switch first.Kind {
		case ship.WInt:
			var sum int64
			for _, r := range present {
				if r.Val.Kind != ship.WInt {
					return internal("merge=sum over non-integer answer %s", r.Val.Show())
				}
				sum += r.Val.Int
			}
			return ship.WVal{Kind: ship.WInt, Int: sum}, nil
		case ship.WReal:
			var sum float64
			for _, r := range present {
				if r.Val.Kind != ship.WReal {
					return internal("merge=sum over non-real answer %s", r.Val.Show())
				}
				sum += r.Val.Real
			}
			return ship.WVal{Kind: ship.WReal, Real: sum}, nil
		default:
			return internal("merge=sum over %s", first.Show())
		}
	case ship.MergeAny, ship.MergeAll:
		acc := policy == ship.MergeAll
		for _, r := range present {
			if r.Val.Kind != ship.WBool {
				return internal("merge=%s over non-boolean answer %s", policy, r.Val.Show())
			}
			if policy == ship.MergeAny {
				acc = acc || r.Val.Bool
			} else {
				acc = acc && r.Val.Bool
			}
		}
		return ship.WVal{Kind: ship.WBool, Bool: acc}, nil
	default:
		return internal("unknown merge policy %d", byte(policy))
	}
}

// scalarEqual compares wire scalars for the agreement check.
func scalarEqual(a, b ship.WVal) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case ship.WNil:
		return true
	case ship.WInt:
		return a.Int == b.Int
	case ship.WReal:
		return a.Real == b.Real
	case ship.WBool:
		return a.Bool == b.Bool
	case ship.WChar:
		return a.Ch == b.Ch
	case ship.WStr, ship.WRoot:
		return a.Str == b.Str
	case ship.WRef:
		return a.Ref == b.Ref
	default:
		return false
	}
}

// MarkAllUp resets every replica's health latch (tests and operators).
// It also clears the anti-entropy mismatch latch — the operator's "I
// fixed it, audit again" lever — but never the lagging state itself:
// only a drained handoff log and a passing digest audit restore a
// replica to reads.
func (co *Coordinator) MarkAllUp() {
	for _, s := range co.shards {
		for _, rep := range s.replicas {
			co.markUp(rep)
			rep.mismatched.Store(false)
			rep.auditStrikes.Store(0)
		}
	}
}
