package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/cluster"
	"tycoon/internal/prim"
	"tycoon/internal/ptml"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// mustPTML parses concrete TML and encodes it, exactly as the client's
// SubmitTML does before shipping.
func mustPTML(t *testing.T, src string) []byte {
	t.Helper()
	app, err := tml.ParseApp(src, tml.ParseOpts{IsPrim: prim.IsPrim})
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	data, err := ptml.EncodeApp(app)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// selectSrc is the Stanford-benchmark selection shape: rows of t whose
// second column is < 50. Over rows (id, id%97), id in [0,1000), that is
// 530 rows on a single node — the oracle for every distributed variant.
const selectSrc = `(select proc(x !ce !cc)
  ([] x 1 cont(a) (< a 50 cont() (cc true) cont() (cc false)))
  r e k)`

const oracleRows = 530

func relBind() []ship.WBind {
	return []ship.WBind{{Name: "r", Val: ship.WVal{Kind: ship.WRoot, Str: "rel:t"}}}
}

func selectSubmit(t *testing.T) *ship.Submit {
	return &ship.Submit{Name: "sel", PTML: mustPTML(t, selectSrc), Binds: relBind(), Optimize: true}
}

// replicaProc is one in-process tycd shard replica.
type replicaProc struct {
	srv   *server.Server
	st    *store.Store
	dedup *server.Dedup
	ln    net.Listener
	addr  string
}

func (r *replicaProc) kill(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown replica: %v", err)
	}
}

// revive boots a fresh server over the replica's surviving store and
// idempotency table, listening on the same address, the way a restarted
// tycd rejoins the cluster.
func (r *replicaProc) revive(t *testing.T) {
	t.Helper()
	srv, err := server.New(r.st, server.Config{RetryAfter: 2 * time.Millisecond, Dedup: r.dedup})
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	for attempt := 0; ; attempt++ {
		ln, err = net.Listen("tcp", r.addr)
		if err == nil {
			break
		}
		if attempt >= 50 {
			t.Fatalf("relisten %s: %v", r.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	go srv.Serve(ln)
	r.srv, r.ln = srv, ln
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
}

// startReplica boots a tycd over a fresh in-memory store loaded with
// relation t(id, val), val = id%97, for the given ids.
func startReplica(t *testing.T, ids []int) *replicaProc {
	t.Helper()
	st, err := store.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	dedup := server.NewDedup(0)
	srv, err := server.New(st, server.Config{RetryAfter: 2 * time.Millisecond, Dedup: dedup})
	if err != nil {
		t.Fatal(err)
	}
	mg := srv.Manager()
	oid, err := mg.CreateRelation("t", []store.Column{
		{Name: "id", Type: store.ColInt},
		{Name: "val", Type: store.ColInt},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := mg.InsertRow(oid, []store.Val{store.IntVal(int64(id)), store.IntVal(int64(id % 97))}); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	rp := &replicaProc{srv: srv, st: st, dedup: dedup, ln: ln, addr: ln.Addr().String()}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		rp.srv.Shutdown(ctx)
	})
	return rp
}

// partitionIDs splits ids [0,1000) over the shards the way an operator
// loading a sharded cluster would: by the topology's own placement of
// the row key, so the test can predict exactly which rows vanish with a
// shard.
func partitionIDs(topo cluster.Topology) [][]int {
	parts := make([][]int, topo.N())
	for id := 0; id < 1000; id++ {
		s := topo.ShardFor(fmt.Sprintf("row:%d", id))
		parts[s] = append(parts[s], id)
	}
	return parts
}

func expectSelected(ids []int) int {
	n := 0
	for _, id := range ids {
		if id%97 < 50 {
			n++
		}
	}
	return n
}

// testCluster is a booted shard fleet plus its coordinator.
type testCluster struct {
	co       *cluster.Coordinator
	topo     cluster.Topology
	replicas [][]*replicaProc // [shard][replica]
	parts    [][]int
}

// bootCluster starts nShards×nReplicas tycd processes loaded with the
// partitioned benchmark relation and a coordinator over them. mod may
// adjust the coordinator config before it starts.
func bootCluster(t *testing.T, nShards, nReplicas int, mod func(*cluster.Config)) *testCluster {
	t.Helper()
	topo := cluster.Topology{Shards: make([]cluster.Shard, nShards)}
	parts := partitionIDs(topo)
	tc := &testCluster{topo: topo, parts: parts}
	tc.replicas = make([][]*replicaProc, nShards)
	for s := 0; s < nShards; s++ {
		for r := 0; r < nReplicas; r++ {
			rp := startReplica(t, parts[s])
			tc.replicas[s] = append(tc.replicas[s], rp)
			topo.Shards[s].Replicas = append(topo.Shards[s].Replicas, rp.addr)
		}
	}
	cfg := cluster.Config{
		Topology:      topo,
		Timeout:       30 * time.Second,
		Retries:       2,
		RetryBase:     time.Millisecond,
		RetryMax:      10 * time.Millisecond,
		RetryAfter:    2 * time.Millisecond,
		ProbeInterval: -1, // tests control health by hand
		Seed:          1,
	}
	if mod != nil {
		mod(&cfg)
	}
	co, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(co.Close)
	tc.co = co
	tc.topo = topo
	return tc
}

// rowIDs extracts the sorted id column of a relation result.
func rowIDs(t *testing.T, res *ship.Result) []int64 {
	t.Helper()
	if res.Val.Kind != ship.WRel || res.Val.Rel == nil {
		t.Fatalf("result is %s, want a relation", res.Val.Show())
	}
	ids := make([]int64, 0, len(res.Val.Rel.Rows))
	for _, row := range res.Val.Rel.Rows {
		ids = append(ids, row[0].Int)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func wantCode(t *testing.T, err error, code ship.ErrCode) *ship.WireError {
	t.Helper()
	var we *ship.WireError
	if !errors.As(err, &we) {
		t.Fatalf("got %v, want a wire error with code %s", err, code)
	}
	if we.Code != code {
		t.Fatalf("got code %s (%v), want %s", we.Code, we, code)
	}
	return we
}

// --- placement --------------------------------------------------------------

func TestTopologyPlacement(t *testing.T) {
	if err := (cluster.Topology{}).Validate(); err == nil {
		t.Fatal("empty topology validated")
	}
	if err := (cluster.Topology{Shards: []cluster.Shard{{}}}).Validate(); err == nil {
		t.Fatal("shard without replicas validated")
	}
	for _, n := range []int{1, 2, 3, 8, 13} {
		topo := cluster.Topology{Shards: make([]cluster.Shard, n)}
		for i := range topo.Shards {
			topo.Shards[i].Replicas = []string{"x"}
		}
		// Ranges tile the ring: contiguous, starting at 0, last wraps.
		var prev cluster.Range
		for i := 0; i < n; i++ {
			r := topo.RangeOf(i)
			if i == 0 && r.Lo != 0 {
				t.Fatalf("n=%d: first range starts at %#x", n, r.Lo)
			}
			if i > 0 && r.Lo != prev.Hi {
				t.Fatalf("n=%d: gap between shard %d and %d", n, i-1, i)
			}
			if i == n-1 && r.Hi != 0 {
				t.Fatalf("n=%d: last range does not wrap: %v", n, r)
			}
			prev = r
		}
		// ShardFor agrees with range membership and is deterministic.
		for k := 0; k < 200; k++ {
			key := fmt.Sprintf("key-%d", k)
			s := topo.ShardFor(key)
			if s != topo.ShardFor(key) {
				t.Fatalf("placement of %q not deterministic", key)
			}
			if !topo.RangeOf(s).Contains(cluster.KeyHash(key)) {
				t.Fatalf("n=%d: %q routed to shard %d but hash outside its range", n, key, s)
			}
		}
		// Missing-range names parse back to the shard index.
		for i := 0; i < n; i++ {
			got, ok := cluster.ParseMissing(topo.MissingName(i))
			if !ok || got != i {
				t.Fatalf("MissingName(%d) = %q does not parse back", i, topo.MissingName(i))
			}
		}
	}
	// 3 shards must each own some of the 1000 row keys (sanity that the
	// partition tests exercise every shard).
	topo := cluster.Topology{Shards: []cluster.Shard{
		{Replicas: []string{"a"}}, {Replicas: []string{"b"}}, {Replicas: []string{"c"}},
	}}
	for s, part := range partitionIDs(topo) {
		if len(part) == 0 {
			t.Fatalf("shard %d owns no rows", s)
		}
	}
}

// --- scatter reads vs the single-node oracle --------------------------------

func TestScatterMatchesSingleNodeOracle(t *testing.T) {
	tc := bootCluster(t, 3, 1, nil)

	// The oracle: the same relation, unsharded, on one tycd.
	oracle := startReplica(t, allIDs())
	oc, err := client.Dial(oracle.addr, client.Options{Timeout: 30 * time.Second, Client: "oracle"})
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	oracleRes, err := oc.Submit(selectSubmit(t))
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := rowIDs(t, oracleRes)
	if len(wantIDs) != oracleRows {
		t.Fatalf("oracle selected %d rows, want %d", len(wantIDs), oracleRows)
	}

	res, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("healthy cluster answered partial (missing %v)", res.Missing)
	}
	gotIDs := rowIDs(t, res)
	if len(gotIDs) != len(wantIDs) {
		t.Fatalf("distributed select returned %d rows, oracle %d", len(gotIDs), len(wantIDs))
	}
	for i := range wantIDs {
		if gotIDs[i] != wantIDs[i] {
			t.Fatalf("row id sets diverge at %d: got %d want %d", i, gotIDs[i], wantIDs[i])
		}
	}

	// Compiled at most once per shard: the submission crossed the
	// coordinator once, and each shard's pipeline saw exactly one miss.
	for s, reps := range tc.replicas {
		p := reps[0].srv.Stats().Pipeline
		if p.Misses != 1 {
			t.Fatalf("shard %d compiled %d times, want 1", s, p.Misses)
		}
	}
	// Resubmitting is an α-hash cache hit on every shard, and the merged
	// result says so (CacheHit is the conjunction).
	res2, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Info.CacheHit {
		t.Fatal("resubmitted distributed query was not a cache hit on every shard")
	}
	for s, reps := range tc.replicas {
		p := reps[0].srv.Stats().Pipeline
		if p.Misses != 1 {
			t.Fatalf("shard %d recompiled on resubmit (%d misses)", s, p.Misses)
		}
		if p.Hits < 1 {
			t.Fatalf("shard %d pipeline reports no hit on resubmit", s)
		}
	}
}

func allIDs() []int {
	ids := make([]int, 1000)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// --- merge policies ---------------------------------------------------------

func TestMergePolicies(t *testing.T) {
	tc := bootCluster(t, 3, 1, nil)

	// merge=sum: a partitioned count sums across shards to the full
	// relation's cardinality.
	countReq := &ship.Submit{Name: "cnt", PTML: mustPTML(t, "(count r e k)"), Binds: relBind(), Merge: ship.MergeSum}
	res, err := tc.co.Submit(countReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Kind != ship.WInt || res.Val.Int != 1000 {
		t.Fatalf("merged count = %s, want 1000", res.Val.Show())
	}

	// merge=auto on the same partitioned count must refuse: the shards
	// genuinely disagree and silently picking one would be a wrong answer.
	countReq.Merge = ship.MergeAuto
	if _, err := tc.co.Submit(countReq); err == nil {
		t.Fatal("merge=auto over a partitioned count did not error")
	} else {
		wantCode(t, err, ship.CodeInternal)
	}

	// merge=any: row id 5 exists on exactly one shard, so the per-shard
	// answers are mixed and any() must see through to true.
	existsSrc := `(exists proc(x !ce !cc)
  ([] x 0 cont(a) (== a 5 cont() (cc true) cont() (cc false)))
  r e k)`
	existsReq := &ship.Submit{Name: "ex5", PTML: mustPTML(t, existsSrc), Binds: relBind(), Merge: ship.MergeAny}
	res, err = tc.co.Submit(existsReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Kind != ship.WBool || !res.Val.Bool {
		t.Fatalf("merge=any exists(id=5) = %s, want true", res.Val.Show())
	}
	// merge=all over the same: false (two shards lack the row).
	existsReq.Merge = ship.MergeAll
	existsReq.Name = "ex5all"
	res, err = tc.co.Submit(existsReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Kind != ship.WBool || res.Val.Bool {
		t.Fatalf("merge=all exists(id=5) = %s, want false", res.Val.Show())
	}

	// merge=auto where the shards do agree: a pure computation.
	pure := &ship.Submit{Name: "pure", PTML: mustPTML(t, "(+ 40 2 e cont(n) (k n))")}
	res, err = tc.co.Submit(pure)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Int != 42 {
		t.Fatalf("pure scatter = %s, want 42", res.Val.Show())
	}
}

// --- routed writes and calls ------------------------------------------------

func TestRoutedSaveAndCall(t *testing.T) {
	tc := bootCluster(t, 3, 1, nil)
	owner := tc.topo.ShardFor("ans")

	req := &ship.Submit{
		Name:    "mk",
		PTML:    mustPTML(t, "(+ 40 2 e cont(n) (k n))"),
		Save:    "ans",
		IdemKey: "test-save-1",
	}
	res, err := tc.co.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Int != 42 {
		t.Fatalf("saving submit answered %s, want 42", res.Val.Show())
	}

	// The closure landed on the owning shard's store and nowhere else.
	for s, reps := range tc.replicas {
		_, ok := reps[0].st.Root(ship.SavedRoot + "ans")
		if want := s == owner; ok != want {
			t.Fatalf("shard %d has srv:ans = %v, want %v (owner %d)", s, ok, want, owner)
		}
	}

	// Calling it routes to the same shard.
	cres, err := tc.co.Call("", "ans", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Val.Int != 42 {
		t.Fatalf("call @ans = %s, want 42", cres.Val.Show())
	}

	// A retry of the same logical write (same key, same PTML) dedups at
	// the shard: applied once, deduped once.
	if _, err := tc.co.Submit(req); err != nil {
		t.Fatal(err)
	}
	st := tc.replicas[owner][0].srv.Stats()
	if st.IdemApplied != 1 || st.IdemDeduped != 1 {
		t.Fatalf("owner shard applied=%d deduped=%d, want 1/1", st.IdemApplied, st.IdemDeduped)
	}

	// An unkeyed saving submit gets a coordinator-minted key, so even
	// without client retries the write is replay-safe.
	unkeyed := &ship.Submit{Name: "mk2", PTML: mustPTML(t, "(+ 1 2 e cont(n) (k n))"), Save: "ans2"}
	if _, err := tc.co.Submit(unkeyed); err != nil {
		t.Fatal(err)
	}
	owner2 := tc.topo.ShardFor("ans2")
	st2 := tc.replicas[owner2][0].srv.Stats()
	if st2.IdemApplied == 0 {
		t.Fatal("coordinator did not key the unkeyed saving submit")
	}

	// Calling a name nobody saved is a definitive not-found, passed
	// through from the owning shard.
	_, err = tc.co.Call("", "no-such-name", nil)
	wantCode(t, err, ship.CodeNotFound)
}

// --- failover ----------------------------------------------------------------

func TestFailoverToStandby(t *testing.T) {
	tc := bootCluster(t, 1, 2, nil)

	// Healthy: answer matches the oracle.
	res, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Val.Rel.Rows); got != oracleRows {
		t.Fatalf("select returned %d rows, want %d", got, oracleRows)
	}

	// Kill the primary. The read fails over to the standby and still
	// returns the full, correct answer — not partial, not an error.
	tc.replicas[0][0].kill(t)
	res, err = tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatalf("read after primary death: %v", err)
	}
	if res.Partial {
		t.Fatalf("failover read degraded to partial (missing %v) with a live standby", res.Missing)
	}
	if got := len(res.Val.Rel.Rows); got != oracleRows {
		t.Fatalf("failover select returned %d rows, want %d", got, oracleRows)
	}
	st := tc.co.Stats()
	if st.Failovers == 0 {
		t.Fatal("coordinator reports no failover")
	}
	down := 0
	for _, r := range st.Replicas {
		if r.Down {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("%d replicas marked down, want 1", down)
	}
	if h := tc.co.Health(); h.Degraded {
		t.Fatalf("health degraded with a live standby: %+v", h)
	}

	// Subsequent reads go straight to the standby: failover count stays
	// put (the down-mark steers the preference order).
	before := st.Failovers
	if _, err := tc.co.Submit(selectSubmit(t)); err != nil {
		t.Fatal(err)
	}
	if after := tc.co.Stats().Failovers; after != before {
		t.Fatalf("steady-state read after failover still failed over (%d → %d)", before, after)
	}
}

// --- partial results ---------------------------------------------------------

func TestPartialResultNamesMissingRanges(t *testing.T) {
	tc := bootCluster(t, 3, 1, func(c *cluster.Config) { c.AllowPartial = true })

	deadShard := 1
	tc.replicas[deadShard][0].kill(t)

	res, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatalf("partial-allowed read failed outright: %v", err)
	}
	if !res.Partial {
		t.Fatal("result not marked partial with a dead shard")
	}
	if len(res.Missing) != 1 {
		t.Fatalf("missing = %v, want exactly one range", res.Missing)
	}
	if want := tc.topo.MissingName(deadShard); res.Missing[0] != want {
		t.Fatalf("missing = %q, want %q", res.Missing[0], want)
	}
	if idx, ok := cluster.ParseMissing(res.Missing[0]); !ok || idx != deadShard {
		t.Fatalf("missing range %q does not parse back to shard %d", res.Missing[0], deadShard)
	}
	// The degraded answer is exactly the reachable shards' contribution:
	// the oracle minus the dead shard's partition — never a wrong row,
	// never a silently complete-looking answer.
	want := oracleRows - expectSelected(tc.parts[deadShard])
	if got := len(res.Val.Rel.Rows); got != want {
		t.Fatalf("partial select returned %d rows, want %d (oracle %d minus shard %d's %d)",
			got, want, oracleRows, deadShard, expectSelected(tc.parts[deadShard]))
	}
	if tc.co.Stats().Partials == 0 {
		t.Fatal("partials counter did not move")
	}
	if h := tc.co.Health(); !h.Degraded {
		t.Fatal("health not degraded with a whole shard down")
	}

	// A write routed to the dead shard is refused retryably — the
	// request was not applied, so the client may safely retry it until
	// the shard returns. With no handoff log configured the refusal
	// names the real condition (replica-down) instead of the generic
	// overload code, so operators can tell the failure modes apart.
	name := saveNameOwnedBy(tc.topo, deadShard)
	_, err = tc.co.Submit(&ship.Submit{
		Name: "w", PTML: mustPTML(t, "(+ 1 1 e cont(n) (k n))"), Save: name,
	})
	we := wantCode(t, err, ship.CodeReplicaDown)
	if we.RetryAfterMs == 0 {
		t.Fatal("shard-down write refusal carries no retry-after hint")
	}
}

func TestPartialForbiddenFailsClosed(t *testing.T) {
	tc := bootCluster(t, 3, 1, nil) // AllowPartial=false
	tc.replicas[2][0].kill(t)
	_, err := tc.co.Submit(selectSubmit(t))
	if err == nil {
		t.Fatal("scatter over a dead shard succeeded with partials forbidden")
	}
	we := wantCode(t, err, ship.CodeOverloaded)
	if we.RetryAfterMs == 0 {
		t.Fatal("refusal carries no retry-after hint")
	}
}

// saveNameOwnedBy finds a save name the topology routes to shard s.
func saveNameOwnedBy(topo cluster.Topology, s int) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("probe-%d", i)
		if topo.ShardFor(name) == s {
			return name
		}
	}
}

// --- hedged reads -----------------------------------------------------------

// blackhole accepts connections and reads forever without answering —
// the canonical straggler.
func blackhole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { close(done); ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestHedgedReadBeatsStraggler(t *testing.T) {
	// Shard 0's preferred replica is a blackhole; the standby is real.
	// Without hedging the read would burn the whole client timeout; with
	// it, the hedge fires after HedgeAfter and wins.
	real := startReplica(t, allIDs())
	hole := blackhole(t)
	topo := cluster.Topology{Shards: []cluster.Shard{{Replicas: []string{hole, real.addr}}}}
	co, err := cluster.New(cluster.Config{
		Topology:      topo,
		Timeout:       2 * time.Second,
		Retries:       0,
		HedgeAfter:    25 * time.Millisecond,
		ProbeInterval: -1,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()

	start := time.Now()
	res, err := co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatalf("hedged read failed: %v", err)
	}
	if got := len(res.Val.Rel.Rows); got != oracleRows {
		t.Fatalf("hedged select returned %d rows, want %d", got, oracleRows)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("hedged read took %v — the hedge did not cut the straggler short", elapsed)
	}
	st := co.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
}

// --- backpressure -----------------------------------------------------------

func TestCoordinatorBackpressure(t *testing.T) {
	tc := bootCluster(t, 1, 1, func(c *cluster.Config) { c.MaxInflight = 1 })

	release, werr := tc.co.Acquire()
	if werr != nil {
		t.Fatalf("first acquire refused: %v", werr)
	}
	_, werr = tc.co.Acquire()
	if werr == nil {
		t.Fatal("second acquire passed a full gate")
	}
	if werr.Code != ship.CodeOverloaded {
		t.Fatalf("refusal code %s, want %s", werr.Code, ship.CodeOverloaded)
	}
	if werr.RetryAfterMs == 0 {
		t.Fatal("refusal carries no retry-after hint")
	}
	release()
	release2, werr := tc.co.Acquire()
	if werr != nil {
		t.Fatalf("acquire after release refused: %v", werr)
	}
	release2()
	if tc.co.Stats().Shed == 0 {
		t.Fatal("shed counter did not move")
	}
}

// --- the wire front end ------------------------------------------------------

func TestCoordinatorWireFrontEnd(t *testing.T) {
	tc := bootCluster(t, 3, 1, nil)
	fe := cluster.NewServer(tc.co, cluster.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})

	c, err := client.Dial(ln.Addr().String(), client.Options{
		Timeout: 30 * time.Second, Client: "fe-test", Retries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// Install fans out: the module must exist on every shard afterwards.
	modSrc := "module clm export inc let inc(a : Int) : Int = a + 1 end"
	if _, err := c.Install(modSrc); err != nil {
		t.Fatal(err)
	}
	for s, reps := range tc.replicas {
		sc, err := client.Dial(reps[0].addr, client.Options{Timeout: 30 * time.Second, Client: "shard-check"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sc.Call("clm", "inc", ship.WVal{Kind: ship.WInt, Int: int64(s)})
		sc.Close()
		if err != nil {
			t.Fatalf("module clm not callable on shard %d: %v", s, err)
		}
		if res.Val.Int != int64(s)+1 {
			t.Fatalf("shard %d: inc(%d) = %s", s, s, res.Val.Show())
		}
	}

	// Module call through the coordinator (routed).
	res, err := c.Call("clm", "inc", ship.WVal{Kind: ship.WInt, Int: 41})
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Int != 42 {
		t.Fatalf("routed call = %s, want 42", res.Val.Show())
	}

	// Scatter select over the wire matches the oracle.
	res, err = c.SubmitTML("sel", selectSrc, relBind(), true, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Val.Rel.Rows); got != oracleRows {
		t.Fatalf("wire scatter select returned %d rows, want %d", got, oracleRows)
	}

	// Save and call back through the wire (the client keys the submit
	// itself since retries are on; exactly-once end-to-end).
	res, err = c.SubmitTML("", "(+ 40 2 e cont(n) (k n))", nil, false, "wired")
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Int != 42 {
		t.Fatalf("saving submit = %s", res.Val.Show())
	}
	res, err = c.Call("", "wired")
	if err != nil {
		t.Fatal(err)
	}
	if res.Val.Int != 42 {
		t.Fatalf("call @wired = %s", res.Val.Show())
	}

	// Stats carry the cluster block.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cluster == nil {
		t.Fatal("coordinator stats carry no cluster block")
	}
	if stats.Cluster.Shards != 3 {
		t.Fatalf("cluster stats report %d shards, want 3", stats.Cluster.Shards)
	}
	if stats.Cluster.Scatter == 0 || stats.Cluster.Routed == 0 {
		t.Fatalf("cluster counters flat: %+v", stats.Cluster)
	}
	if len(stats.Cluster.Replicas) != 3 {
		t.Fatalf("cluster stats report %d replicas, want 3", len(stats.Cluster.Replicas))
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthy cluster reports %q", h.Status)
	}
}

// TestFrontEndRejectsWatch: the coordinator front end does not speak
// WATCH (push streaming is a single-store feature for now). A verb it
// does not know — which is exactly what a newer client sends an older
// server — must be refused with a definitive protocol error, not hang
// or kill the listener.
func TestFrontEndRejectsWatch(t *testing.T) {
	tc := bootCluster(t, 1, 1, nil)
	fe := cluster.NewServer(tc.co, cluster.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		fe.Shutdown(ctx)
	})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := ship.WriteFrame(conn, ship.VHello, (&ship.Hello{Version: ship.ProtoVersion, Client: "new-client"}).Encode()); err != nil {
		t.Fatal(err)
	}
	if verb, _, err := ship.ReadFrame(conn, 0); err != nil || verb != ship.VWelcome {
		t.Fatalf("handshake: verb %s, err %v", verb, err)
	}
	if err := ship.WriteFrame(conn, ship.VWatch, (&ship.Watch{Patterns: []string{"*"}}).Encode()); err != nil {
		t.Fatal(err)
	}
	verb, body, err := ship.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if verb != ship.VError {
		t.Fatalf("old server answered watch with %s, want error", verb)
	}
	we, err := ship.DecodeWireError(body)
	if err != nil {
		t.Fatal(err)
	}
	if we.Code != ship.CodeProto {
		t.Fatalf("refused with %s, want proto", we.Code)
	}

	// The refusal is per-request: the same session still works.
	if err := ship.WriteFrame(conn, ship.VPing, nil); err != nil {
		t.Fatal(err)
	}
	if verb, _, err := ship.ReadFrame(conn, 0); err != nil || verb != ship.VPong {
		t.Fatalf("after refusal: verb %s, err %v", verb, err)
	}
}

// --- replica repair: handoff, catch-up, anti-entropy -------------------------

// bootRepairCluster is bootCluster with handoff enabled and both the
// probe and repair loops under test control.
func bootRepairCluster(t *testing.T, nShards, nReplicas int) (*testCluster, cluster.Config) {
	t.Helper()
	var cfg cluster.Config
	tc := bootCluster(t, nShards, nReplicas, func(c *cluster.Config) {
		c.HandoffDir = t.TempDir()
		c.RepairInterval = -1 // tests call RepairNow by hand
		c.AllowPartial = true
		cfg = *c
	})
	return tc, cfg
}

// replicaStat digs one replica's stat row out of a cluster snapshot.
func replicaStat(t *testing.T, st *ship.ClusterStats, addr string) ship.ReplicaStat {
	t.Helper()
	for _, r := range st.Replicas {
		if r.Addr == addr {
			return r
		}
	}
	t.Fatalf("no stat row for replica %s in %+v", addr, st.Replicas)
	return ship.ReplicaStat{}
}

// saveSubmit builds a saving submit owned by the given shard whose
// evaluated value is i+1 (the name search never changes the value).
func saveSubmit(t *testing.T, topo cluster.Topology, shard, i int) *ship.Submit {
	t.Helper()
	var name string
	for j := i; ; j += 1000 {
		name = fmt.Sprintf("save-%d", j)
		if topo.ShardFor(name) == shard {
			break
		}
	}
	return &ship.Submit{
		Name: "w", PTML: mustPTML(t, fmt.Sprintf("(+ %d 1 e cont(n) (k n))", i)), Save: name,
	}
}

// TestHandoffRepairRoundTrip is the tentpole path end to end: a write
// finding a replica down is acked anyway and parked in the handoff log,
// the replica revives, repair replays the backlog in order under the
// original keys, the digest audit passes, and the replica returns to
// reads holding every acked write.
func TestHandoffRepairRoundTrip(t *testing.T) {
	tc, _ := bootRepairCluster(t, 2, 2)
	target := tc.replicas[1][1]
	target.kill(t)

	// Writes routed to the wounded shard must still succeed.
	var saved []string
	for i := 0; i < 5; i++ {
		req := saveSubmit(t, tc.topo, 1, i)
		if _, err := tc.co.Submit(req); err != nil {
			t.Fatalf("write %d with one replica down: %v", i, err)
		}
		saved = append(saved, req.Save)
	}

	st := tc.co.Stats()
	if st.HandoffWrites != 5 {
		t.Fatalf("HandoffWrites = %d, want 5", st.HandoffWrites)
	}
	rs := replicaStat(t, st, target.addr)
	if rs.State != "lagging" || rs.Backlog != 5 {
		t.Fatalf("wounded replica state=%s backlog=%d, want lagging/5", rs.State, rs.Backlog)
	}

	// Reads keep flowing (served by the healthy replica) and stay right.
	res, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatalf("select during lag: %v", err)
	}
	if res.Partial || len(res.Val.Rel.Rows) != oracleRows {
		t.Fatalf("select during lag: partial=%v rows=%d, want full %d", res.Partial, len(res.Val.Rel.Rows), oracleRows)
	}

	// Repair must wait for connectivity: a pass now is a no-op.
	tc.co.RepairNow()
	if rs := replicaStat(t, tc.co.Stats(), target.addr); rs.State != "lagging" {
		t.Fatalf("repair ran against a dead replica: state=%s", rs.State)
	}

	target.revive(t)
	tc.co.MarkAllUp()
	tc.co.RepairNow()

	st = tc.co.Stats()
	rs = replicaStat(t, st, target.addr)
	if rs.State != "live" || rs.Backlog != 0 {
		t.Fatalf("after repair: state=%s backlog=%d, want live/0", rs.State, rs.Backlog)
	}
	if st.RepairShipped != 5 || st.Repairs != 1 || st.RepairMismatch != 0 {
		t.Fatalf("repair counters shipped=%d repairs=%d mismatch=%d, want 5/1/0",
			st.RepairShipped, st.Repairs, st.RepairMismatch)
	}
	if rs.LastRepairCSN == 0 {
		t.Fatal("repair did not record the replica's CSN")
	}

	// The real proof: every write acked during the outage is callable
	// directly on the revived replica, not just through the coordinator.
	c, err := client.Dial(target.addr, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i, name := range saved {
		res, err := c.Call("", name)
		if err != nil {
			t.Fatalf("replayed save %s not callable on revived replica: %v", name, err)
		}
		if want := int64(i + 1); res.Val.Int != want {
			t.Fatalf("replayed save %s = %d, want %d", name, res.Val.Int, want)
		}
	}
}

// TestScatterSumDuringLag: a merge=sum scatter started while a replica
// is lagging must keep satisfying the never-wrong-answers oracle — the
// healthy replica serves its shard in full, and the lagging replica is
// never consulted even though its process answers probes.
func TestScatterSumDuringLag(t *testing.T) {
	tc, _ := bootRepairCluster(t, 2, 2)
	target := tc.replicas[0][1]
	target.kill(t)

	// Latch the replica lagging with a real deferred write.
	if _, err := tc.co.Submit(saveSubmit(t, tc.topo, 0, 0)); err != nil {
		t.Fatalf("write with one replica down: %v", err)
	}
	// Revive it immediately: the process is back and would answer reads
	// with stale rows if the read path trusted the health latch alone.
	target.revive(t)
	tc.co.MarkAllUp()

	countReq := &ship.Submit{Name: "cnt", PTML: mustPTML(t, "(count r e k)"), Binds: relBind(), Merge: ship.MergeSum}
	res, err := tc.co.Submit(countReq)
	if err != nil {
		t.Fatalf("sum scatter during lag: %v", err)
	}
	if res.Partial || res.Val.Int != 1000 {
		t.Fatalf("sum scatter during lag: partial=%v sum=%d, want full 1000", res.Partial, res.Val.Int)
	}

	// With the whole shard wounded (second replica down too) the scatter
	// degrades to a partial naming exactly that shard's ranges — still
	// never a wrong number served as a complete one.
	tc.replicas[0][0].kill(t)
	pres, err := tc.co.Submit(selectSubmit(t))
	if err != nil {
		t.Fatalf("partial scatter: %v", err)
	}
	if !pres.Partial || len(pres.Missing) != 1 || pres.Missing[0] != tc.topo.MissingName(0) {
		t.Fatalf("scatter over wounded shard: partial=%v missing=%v, want shard 0's range", pres.Partial, pres.Missing)
	}

	// After repair the sum is whole again.
	tc.replicas[0][0].revive(t)
	tc.co.MarkAllUp()
	tc.co.RepairNow()
	if rs := replicaStat(t, tc.co.Stats(), target.addr); rs.State != "live" {
		t.Fatalf("replica not repaired: %+v", rs)
	}
	res, err = tc.co.Submit(countReq)
	if err != nil || res.Val.Int != 1000 {
		t.Fatalf("sum after repair = %v, %v, want 1000", res.Val.Int, err)
	}
}

// TestRepairMismatchFailsLoud: a replica that diverged in a way replay
// cannot explain (an extra row smuggled into its store) drains its
// backlog but fails the anti-entropy audit: it stays out of reads, the
// mismatch counter trips and stays tripped, and only the operator lever
// re-arms the audit.
func TestRepairMismatchFailsLoud(t *testing.T) {
	tc, _ := bootRepairCluster(t, 1, 2)
	target := tc.replicas[0][1]
	target.kill(t)
	if _, err := tc.co.Submit(saveSubmit(t, tc.topo, 0, 0)); err != nil {
		t.Fatalf("write with one replica down: %v", err)
	}
	target.revive(t)

	// Diverge the revived replica's store behind the cluster's back.
	oid, ok := target.st.Root("rel:t")
	if !ok {
		t.Fatal("revived replica lost rel:t")
	}
	if err := target.srv.Manager().InsertRow(oid, []store.Val{store.IntVal(9999), store.IntVal(1)}); err != nil {
		t.Fatal(err)
	}

	// A quiescent digest disagreement must repeat on a second consecutive
	// pass before it latches: one pass is a strike, not a verdict.
	tc.co.MarkAllUp()
	tc.co.RepairNow()
	if st := tc.co.Stats(); st.RepairMismatch != 0 {
		t.Fatalf("mismatch latched on the first strike: %d", st.RepairMismatch)
	}
	tc.co.RepairNow()
	st := tc.co.Stats()
	rs := replicaStat(t, st, target.addr)
	if rs.State != "lagging" {
		t.Fatalf("diverged replica state=%s, want lagging (out of reads)", rs.State)
	}
	if st.RepairMismatch != 1 || st.Repairs != 0 {
		t.Fatalf("mismatch=%d repairs=%d, want 1/0", st.RepairMismatch, st.Repairs)
	}
	if rs.Backlog != 0 {
		t.Fatalf("backlog=%d, want 0 (drain succeeded, audit failed)", rs.Backlog)
	}

	// The mismatch is latched: another pass does not thrash the audit.
	tc.co.RepairNow()
	if st := tc.co.Stats(); st.RepairMismatch != 1 {
		t.Fatalf("mismatch counter moved on a latched replica: %d", st.RepairMismatch)
	}

	// Reads never touch the diverged replica: the count stays right even
	// though its store holds a 1001st row.
	countReq := &ship.Submit{Name: "cnt", PTML: mustPTML(t, "(count r e k)"), Binds: relBind(), Merge: ship.MergeSum}
	res, err := tc.co.Submit(countReq)
	if err != nil || res.Val.Int != 1000 {
		t.Fatalf("count with diverged replica latched = %v, %v, want 1000", res.Val.Int, err)
	}

	// MarkAllUp is the operator's re-audit lever: it clears the latch and
	// the strike count, so latching again takes two fresh passes.
	tc.co.MarkAllUp()
	tc.co.RepairNow()
	tc.co.RepairNow()
	if st := tc.co.Stats(); st.RepairMismatch != 2 {
		t.Fatalf("re-armed audit did not run: mismatch=%d, want 2", st.RepairMismatch)
	}
}

// TestHandoffSurvivesCoordinatorRestart: the handoff log is write-ahead
// state, not session state — a new coordinator over the same directory
// boots the replica lagging and finishes the repair the old one never
// got to.
func TestHandoffSurvivesCoordinatorRestart(t *testing.T) {
	tc, cfg := bootRepairCluster(t, 1, 2)
	target := tc.replicas[0][1]
	target.kill(t)
	req := saveSubmit(t, tc.topo, 0, 7)
	if _, err := tc.co.Submit(req); err != nil {
		t.Fatalf("write with one replica down: %v", err)
	}
	tc.co.Close()

	co2, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	rs := replicaStat(t, co2.Stats(), target.addr)
	if rs.State != "lagging" || rs.Backlog != 1 {
		t.Fatalf("rebooted coordinator: state=%s backlog=%d, want lagging/1", rs.State, rs.Backlog)
	}

	target.revive(t)
	co2.MarkAllUp()
	co2.RepairNow()
	if rs := replicaStat(t, co2.Stats(), target.addr); rs.State != "live" || rs.Backlog != 0 {
		t.Fatalf("after rebooted repair: state=%s backlog=%d, want live/0", rs.State, rs.Backlog)
	}
	c, err := client.Dial(target.addr, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if res, err := c.Call("", req.Save); err != nil || res.Val.Int != 8 {
		t.Fatalf("save replayed by rebooted coordinator: %v, %v", res, err)
	}
}
