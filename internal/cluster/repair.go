// Replica repair: the background loop that drains write-ahead handoff
// logs to revived replicas and audits the result before letting them
// serve reads again.
//
// A lagging replica's log holds every write the coordinator acked while
// the replica was unreachable, in original order under the original
// idempotency keys. Repair replays it through the SYNC verb, which the
// server routes through the same dedup table as the original writes —
// so a drain interrupted by a crash or a second failure simply re-ships
// from the start and the already-applied prefix deduplicates to
// nothing: replay is idempotent end to end and needs no cursor.
//
// Draining alone does not prove the replica converged. After the log
// empties, repair fetches per-root digests (DIGEST verb) from the
// repaired replica and from a live peer and compares them; only
// agreement restores the replica to the read preference list. A
// mismatch means the replica diverged in a way replay cannot explain —
// the replica is latched out of reads, the RepairMismatch counter
// trips, and tycfsck -cluster reports it loudly.
package cluster

import (
	"time"

	"tycoon/internal/ship"
)

// repairBatch bounds the records shipped per SYNC frame: small enough
// to keep frames modest, large enough to amortise the round trip.
const repairBatch = 64

// repairLoop paces background repair passes.
func (co *Coordinator) repairLoop() {
	defer co.repairWG.Done()
	t := time.NewTicker(co.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-co.stopRepair:
			return
		case <-t.C:
		}
		co.RepairNow()
	}
}

// RepairNow runs one repair pass over every lagging replica whose
// connectivity is back (the probe loop clears the down latch; repair
// clears the lag). Safe to call concurrently with the background loop —
// passes are serialised. Tests with RepairInterval < 0 drive repair
// entirely through this; tycc's drain path calls it for a best-effort
// final catch-up before shutdown.
func (co *Coordinator) RepairNow() {
	co.repairMu.Lock()
	defer co.repairMu.Unlock()
	for _, s := range co.shards {
		for _, rep := range s.replicas {
			if rep.ho == nil || rep.state.Load() == repLive {
				continue
			}
			if rep.down.Load() {
				continue // wait for the probe to see it answering again
			}
			if rep.mismatched.Load() {
				continue // audit refused it; MarkAllUp re-arms the attempt
			}
			co.repairReplica(s, rep)
		}
	}
}

// repairReplica drives one lagging replica toward live: drain, audit,
// and — only with the log still empty under the lag lock — restore. A
// writer racing the final check keeps the log non-empty and the latch
// lagging; the next pass picks the remainder up.
func (co *Coordinator) repairReplica(s *shard, rep *replica) {
	if !rep.state.CompareAndSwap(repLagging, repRepairing) {
		return
	}
	if !co.drainReplica(s, rep) || !co.auditReplica(s, rep) {
		rep.state.Store(repLagging)
		return
	}
	rep.lagMu.Lock()
	if rep.ho.Len() == 0 {
		rep.state.Store(repLive)
		co.repairs.Add(1)
		co.logf("shard %d replica %s repaired: backlog drained, digests agree, back in reads", s.index, rep.addr)
	} else {
		// New writes landed between the audit and now; not converged yet.
		rep.state.Store(repLagging)
	}
	rep.lagMu.Unlock()
}

// drainReplica ships the handoff backlog to the replica in order,
// trimming the log only after each batch is acked. True means the log
// was empty when we last looked.
func (co *Coordinator) drainReplica(s *shard, rep *replica) bool {
	for {
		recs := rep.ho.Peek(repairBatch)
		if len(recs) == 0 {
			return true
		}
		items := make([]ship.ShipItem, len(recs))
		for i, r := range recs {
			items[i] = ship.ShipItem{Verb: ship.Verb(r.Verb), Body: r.Body}
		}
		c, err := rep.get(co)
		if err != nil {
			co.markDown(rep, err)
			return false
		}
		sok, err := c.Sync(items)
		if err != nil {
			c.Close()
			if definitive(err) {
				// The replica refused an acked write: replay cannot
				// converge this store. Latch it out of reads and say so.
				co.repairMismatch.Add(1)
				rep.mismatched.Store(true)
				co.logf("shard %d replica %s refused handoff replay: %v — held out of reads, run tycfsck -cluster",
					s.index, rep.addr, err)
				return false
			}
			co.markDown(rep, err)
			return false
		}
		rep.put(co, c)
		if int(sok.Applied) != len(recs) {
			// The server applied a prefix without erroring; treat like an
			// availability blip and re-ship (dedup absorbs the overlap).
			co.logf("shard %d replica %s short sync: %d of %d", s.index, rep.addr, sok.Applied, len(recs))
			return false
		}
		if err := rep.ho.TruncatePrefix(len(recs)); err != nil {
			co.logf("shard %d replica %s handoff trim failed: %v", s.index, rep.addr, err)
			return false
		}
		co.repairShipped.Add(int64(len(recs)))
	}
}

// auditReplica is the anti-entropy gate: fetch the repaired replica's
// per-root digests, record its CSN, and compare against the first live
// peer of the shard. No live peer means no evidence either way — the
// audit passes vacuously rather than keeping the whole shard dark.
//
// A disagreement is only divergence if the replica was actually caught
// up when the digests were taken. A write racing the audit applies on
// the live peer first and lands in the handoff log moments later, so
// the peer's digest can legitimately run ahead. The audit therefore
// holds down: a diff observed while the log is non-empty or any append
// landed mid-audit is lag (retry, strikes reset), and a quiescent diff
// must repeat on a second consecutive pass before mismatched latches.
func (co *Coordinator) auditReplica(s *shard, rep *replica) bool {
	appendsBefore := rep.appends.Load()
	mine, err := co.replicaDigest(rep)
	if err != nil {
		co.markDown(rep, err)
		return false
	}
	rep.lastRepairCSN.Store(mine.CSN)
	var peer *replica
	for _, p := range s.replicas {
		if p != rep && p.state.Load() == repLive && !p.down.Load() {
			peer = p
			break
		}
	}
	if peer == nil {
		rep.auditStrikes.Store(0)
		return true
	}
	theirs, err := co.replicaDigest(peer)
	if err != nil {
		co.markDown(peer, err)
		return false
	}
	if diff := digestDiff(mine, theirs); diff != "" {
		rep.lagMu.Lock()
		quiescent := rep.ho.Len() == 0 && rep.appends.Load() == appendsBefore
		rep.lagMu.Unlock()
		if !quiescent {
			// The peer is ahead by writes still landing in the handoff
			// log; the next pass drains them and compares again.
			rep.auditStrikes.Store(0)
			return false
		}
		if rep.auditStrikes.Add(1) < 2 {
			co.logf("shard %d replica %s digest disagreement vs %s (%s); re-auditing before declaring divergence",
				s.index, rep.addr, peer.addr, diff)
			return false
		}
		co.repairMismatch.Add(1)
		rep.mismatched.Store(true)
		co.logf("shard %d replica %s digest mismatch vs %s after repair (%s) — held out of reads, run tycfsck -cluster",
			s.index, rep.addr, peer.addr, diff)
		return false
	}
	rep.auditStrikes.Store(0)
	return true
}

// replicaDigest fetches one replica's full digest map.
func (co *Coordinator) replicaDigest(rep *replica) (*ship.DigestOK, error) {
	c, err := rep.get(co)
	if err != nil {
		return nil, err
	}
	d, err := c.Digest("")
	if err != nil {
		c.Close()
		return nil, err
	}
	rep.put(co, c)
	return d, nil
}

// digestDiff compares two digest maps root by root and names the first
// disagreement ("" means they agree). CSN and binding epoch are local
// counters and deliberately not compared — only content counts.
func digestDiff(a, b *ship.DigestOK) string {
	am := make(map[string]string, len(a.Roots))
	for _, r := range a.Roots {
		am[r.Name] = r.Digest
	}
	bm := make(map[string]string, len(b.Roots))
	for _, r := range b.Roots {
		bm[r.Name] = r.Digest
	}
	for name, d := range am {
		pd, ok := bm[name]
		if !ok {
			return "root " + name + " missing on peer"
		}
		if pd != d {
			return "root " + name + " differs"
		}
	}
	for name := range bm {
		if _, ok := am[name]; !ok {
			return "root " + name + " missing on repaired replica"
		}
	}
	return ""
}
