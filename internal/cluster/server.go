package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"tycoon/internal/ship"
)

// ServerConfig tunes the coordinator's wire front end.
type ServerConfig struct {
	// MaxSessions bounds concurrently open sessions; 0 means 256.
	MaxSessions int
	// MaxFrame bounds request frame bodies; 0 means ship.MaxFrameBody.
	MaxFrame int
	// IdleTimeout closes sessions that send no request for this long; 0
	// disables the idle check.
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write; 0 disables it.
	WriteTimeout time.Duration
	// Out receives the log; nil discards it.
	Out io.Writer
}

// Server fronts a Coordinator with the same TYWR01 protocol tycd
// speaks: tycsh and package client drive a cluster exactly as they
// drive one shard, and the coordinator re-ships each PTML frame to the
// shards that own the data.
type Server struct {
	co  *Coordinator
	cfg ServerConfig

	mu       sync.Mutex
	sessions map[*csession]struct{}
	verbs    map[string]*ship.VerbStat
	nextSess uint64
	total    uint64
	draining bool
	ln       net.Listener

	wg sync.WaitGroup
}

// NewServer wraps a coordinator in a wire front end.
func NewServer(co *Coordinator, cfg ServerConfig) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 256
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = ship.MaxFrameBody
	}
	return &Server{
		co:       co,
		cfg:      cfg,
		sessions: make(map[*csession]struct{}),
		verbs:    make(map[string]*ship.VerbStat),
	}
}

// Coordinator exposes the wrapped planner.
func (s *Server) Coordinator() *Coordinator { return s.co }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Out != nil {
		fmt.Fprintf(s.cfg.Out, "tycc: "+format+"\n", args...)
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) record(v ship.Verb, start time.Time, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.verbs[v.String()]
	if !ok {
		st = &ship.VerbStat{}
		s.verbs[v.String()] = st
	}
	st.Count++
	if failed {
		st.Errors++
	}
	st.Micros += time.Since(start).Microseconds()
}

// Stats snapshots the front end plus the coordinator's cluster block.
func (s *Server) Stats() ship.ServerStats {
	s.mu.Lock()
	verbs := make(map[string]ship.VerbStat, len(s.verbs))
	for k, v := range s.verbs {
		verbs[k] = *v
	}
	out := ship.ServerStats{
		Sessions:      len(s.sessions),
		TotalSessions: s.total,
		Draining:      s.draining,
		Verbs:         verbs,
	}
	s.mu.Unlock()
	out.Inflight = s.co.InflightCount()
	out.Cluster = s.co.Stats()
	out.Shed = out.Cluster.Shed
	return out
}

// Health reports the aggregate cluster health.
func (s *Server) Health() ship.Health {
	h := s.co.Health()
	s.mu.Lock()
	h.Draining = s.draining
	h.Sessions = len(s.sessions)
	s.mu.Unlock()
	if h.Draining {
		h.Status = "draining"
	}
	return h
}

// ListenAndServe binds addr and serves until Shutdown, reporting the
// listener through ready (if non-nil) once the port is bound.
func (s *Server) ListenAndServe(addr string, ready chan<- net.Listener) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if ready != nil {
			close(ready)
		}
		return err
	}
	if ready != nil {
		ready <- ln
	}
	return s.Serve(ln)
}

// Serve accepts sessions on ln until the listener closes (Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("tycc: server is shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		switch {
		case s.draining:
			s.mu.Unlock()
			s.refuse(conn, ship.CodeShutdown, "coordinator is draining")
			continue
		case len(s.sessions) >= s.cfg.MaxSessions:
			s.mu.Unlock()
			s.refuse(conn, ship.CodeBadRequest,
				fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
			continue
		}
		s.nextSess++
		sess := &csession{srv: s, conn: conn, id: s.nextSess}
		s.sessions[sess] = struct{}{}
		s.total++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sess.run()
			s.mu.Lock()
			delete(s.sessions, sess)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) refuse(conn net.Conn, code ship.ErrCode, msg string) {
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = ship.WriteFrame(conn, ship.VError, (&ship.WireError{Code: code, Msg: msg}).Encode())
	conn.Close()
}

// Shutdown drains the front end (mirroring tycd's: wake blocked
// readers, finish in-flight requests, force-close on ctx expiry) and
// closes the coordinator's shard sessions.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	for sess := range s.sessions {
		sess.nudge()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		drainErr = ctx.Err()
	}
	if s.co.cfg.HandoffDir != "" {
		// Best-effort final catch-up now that no new writes can land:
		// ship what the reachable lagging replicas will take; whatever
		// remains stays durable in the logs and the next boot resumes it.
		s.co.RepairNow()
	}
	s.co.Close()
	return drainErr
}

// csession is one client connection to the coordinator.
type csession struct {
	srv  *Server
	conn net.Conn
	id   uint64
}

func (c *csession) nudge() { c.conn.SetReadDeadline(time.Now()) }

func (c *csession) run() {
	defer c.conn.Close()
	if !c.handshake() {
		return
	}
	for {
		if idle := c.srv.cfg.IdleTimeout; idle > 0 && !c.srv.isDraining() {
			c.conn.SetReadDeadline(time.Now().Add(idle))
		}
		verb, body, err := ship.ReadFrame(c.conn, c.srv.cfg.MaxFrame)
		if err != nil {
			c.readFailed(err)
			return
		}
		if verb == ship.VBye {
			return
		}
		if !c.dispatch(verb, body) {
			return
		}
	}
}

func (c *csession) handshake() bool {
	if t := c.srv.cfg.IdleTimeout; t > 0 {
		c.conn.SetReadDeadline(time.Now().Add(t))
	}
	verb, body, err := ship.ReadFrame(c.conn, c.srv.cfg.MaxFrame)
	if err != nil {
		c.readFailed(err)
		return false
	}
	if verb != ship.VHello {
		c.sendErr(&ship.WireError{Code: ship.CodeProto, Msg: "expected hello, got " + verb.String()})
		return false
	}
	hello, err := ship.DecodeHello(body)
	if err != nil {
		c.sendErr(wireErr(ship.CodeProto, err))
		return false
	}
	if hello.Version > ship.ProtoVersion {
		c.sendErr(&ship.WireError{Code: ship.CodeBadRequest,
			Msg: fmt.Sprintf("client speaks protocol %d, server %d", hello.Version, ship.ProtoVersion)})
		return false
	}
	c.srv.logf("session %d: hello from %q (%s)", c.id, hello.Client, c.conn.RemoteAddr())
	return c.send(ship.VWelcome, (&ship.Welcome{
		Version: ship.ProtoVersion, Server: "tycc", Session: c.id,
	}).Encode())
}

func (c *csession) readFailed(err error) {
	switch {
	case errors.Is(err, io.EOF):
	case errors.Is(err, ship.ErrFrame):
		c.srv.logf("session %d: protocol error: %v", c.id, err)
		c.sendErr(wireErr(ship.CodeProto, err))
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if c.srv.isDraining() {
				c.sendErr(&ship.WireError{Code: ship.CodeShutdown, Msg: "coordinator is draining"})
			} else {
				c.sendErr(&ship.WireError{Code: ship.CodeShutdown, Msg: "idle timeout"})
			}
			return
		}
		c.srv.logf("session %d: read failed: %v", c.id, err)
	}
}

// dispatch handles one request frame; false closes the session.
func (c *csession) dispatch(verb ship.Verb, body []byte) (keep bool) {
	start := time.Now()
	failed := false
	defer func() { c.srv.record(verb, start, failed) }()
	defer func() {
		if r := recover(); r != nil {
			failed = true
			keep = false
			c.srv.logf("session %d: panic in %s: %v\n%s", c.id, verb, r, debug.Stack())
			c.sendErr(&ship.WireError{Code: ship.CodeInternal, Msg: fmt.Sprintf("panic: %v", r)})
		}
	}()

	var res *ship.Result
	var err error
	switch verb {
	case ship.VPing:
		return c.send(ship.VPong, nil)
	case ship.VStats:
		data, jerr := json.Marshal(c.srv.Stats())
		if jerr != nil {
			failed = true
			return c.sendErr(wireErr(ship.CodeInternal, jerr))
		}
		return c.send(ship.VStatsOK, data)
	case ship.VHealth:
		data, jerr := json.Marshal(c.srv.Health())
		if jerr != nil {
			failed = true
			return c.sendErr(wireErr(ship.CodeInternal, jerr))
		}
		return c.send(ship.VHealthOK, data)
	case ship.VInstall, ship.VCall, ship.VSubmit, ship.VOptimize:
		if c.srv.isDraining() {
			failed = true
			return c.sendErr(&ship.WireError{Code: ship.CodeShutdown, Msg: "coordinator is draining"})
		}
		release, ov := c.srv.co.Acquire()
		if ov != nil {
			failed = true
			return c.sendErr(ov)
		}
		func() {
			defer release()
			switch verb {
			case ship.VInstall:
				res, err = c.handleInstall(body)
			case ship.VCall:
				res, err = c.handleCall(body)
			case ship.VSubmit:
				res, err = c.handleSubmit(body)
			case ship.VOptimize:
				res, err = c.handleOptimize(body)
			}
		}()
	default:
		err = &ship.WireError{Code: ship.CodeProto, Msg: "unexpected verb " + verb.String()}
	}
	if err != nil {
		failed = true
		return c.sendErr(wireErr(ship.CodeInternal, err))
	}
	res.Info.Micros = time.Since(start).Microseconds()
	return c.sendResult(res)
}

func (c *csession) handleInstall(body []byte) (*ship.Result, error) {
	req, err := ship.DecodeInstall(body)
	if err != nil {
		return nil, wireErr(ship.CodeProto, err)
	}
	return c.srv.co.Install(req)
}

func (c *csession) handleCall(body []byte) (*ship.Result, error) {
	req, err := ship.DecodeCall(body)
	if err != nil {
		return nil, wireErr(ship.CodeProto, err)
	}
	return c.srv.co.Call(req.Module, req.Fn, req.Args)
}

func (c *csession) handleSubmit(body []byte) (*ship.Result, error) {
	req, err := ship.DecodeSubmit(body)
	if err != nil {
		return nil, wireErr(ship.CodeProto, err)
	}
	return c.srv.co.Submit(req)
}

func (c *csession) handleOptimize(body []byte) (*ship.Result, error) {
	req, err := ship.DecodeOptimize(body)
	if err != nil {
		return nil, wireErr(ship.CodeProto, err)
	}
	return c.srv.co.Optimize(req.Module, req.Fn)
}

func (c *csession) send(v ship.Verb, body []byte) bool {
	if t := c.srv.cfg.WriteTimeout; t > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(t))
	}
	if err := ship.WriteFrame(c.conn, v, body); err != nil {
		c.srv.logf("session %d: write failed: %v", c.id, err)
		return false
	}
	return true
}

func (c *csession) sendErr(e *ship.WireError) bool {
	return c.send(ship.VError, e.Encode())
}

func (c *csession) sendResult(r *ship.Result) bool {
	body, err := r.Encode()
	if err != nil {
		return c.sendErr(wireErr(ship.CodeInternal, err))
	}
	return c.send(ship.VResult, body)
}

// wireErr maps a handler error onto the wire, preserving a typed
// *ship.WireError — a shard's own error code (not-found, exec, budget,
// overloaded …) passes through the coordinator unchanged.
func wireErr(code ship.ErrCode, err error) *ship.WireError {
	var we *ship.WireError
	if errors.As(err, &we) {
		return we
	}
	return &ship.WireError{Code: code, Msg: err.Error()}
}
