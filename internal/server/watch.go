package server

import (
	"fmt"
	"sync"
	"time"

	"tycoon/internal/ship"
	"tycoon/internal/store"
)

// Defaults for the watch hub's Config zero values.
const (
	// DefaultWatchBacklog bounds the events retained for resume-from-CSN:
	// a reconnecting subscriber whose SinceCSN still falls inside the
	// backlog replays the gap; older positions are refused (the client
	// must start a fresh subscription).
	DefaultWatchBacklog = 4096
	// DefaultWatchQueue bounds one subscriber's undelivered events. A
	// subscriber that falls further behind is dropped with an overloaded
	// error — it resumes by CSN — rather than letting one slow consumer
	// hold event memory for everyone.
	DefaultWatchQueue = 1024
)

// hub fans committed root changes out to WATCH subscribers. It is fed
// by the store's root hook — called under the store lock, strictly in
// CSN order, one call per commit — and therefore does nothing but
// append under its own lock: no I/O, no store calls, no blocking sends.
// Session goroutines drain their subscriber queues and do the actual
// frame writes.
type hub struct {
	mu   sync.Mutex
	subs map[*subscriber]struct{}
	// backlog is the resume window: recent events in CSN order. floor is
	// the completeness horizon — every event with CSN > floor is present,
	// so a resume from SinceCSN >= floor is gapless and anything older is
	// refused.
	backlog  []ship.Notify
	floor    uint64
	cap      int
	queueCap int
	draining bool
	// Counters (see ship.WatchStats).
	total, resumed, events, delivered, dropped, lostHorizon int64
}

// subscriber is one WATCH session's delivery state. queue and dead are
// guarded by the hub lock; wake (capacity 1) nudges the session
// goroutine, which drains via take.
type subscriber struct {
	patterns []string
	queue    []ship.Notify
	wake     chan struct{}
	dead     bool
	reason   *ship.WireError
}

func newHub(backlogCap, queueCap int, startCSN uint64) *hub {
	if backlogCap <= 0 {
		backlogCap = DefaultWatchBacklog
	}
	if queueCap <= 0 {
		queueCap = DefaultWatchQueue
	}
	return &hub{
		subs:     make(map[*subscriber]struct{}),
		cap:      backlogCap,
		queueCap: queueCap,
		// Nothing before the hub existed is resumable: the backlog starts
		// empty, complete from the store's CSN at server start.
		floor: startCSN,
	}
}

// publish is the store's root hook: one committed publication event,
// all its root changes, at one CSN. Runs under the store lock — append
// only, never block.
func (h *hub) publish(csn uint64, changes []store.RootChange) {
	h.mu.Lock()
	defer h.mu.Unlock()
	notifs := make([]ship.Notify, len(changes))
	for i, ch := range changes {
		notifs[i] = ship.Notify{Root: ch.Root, OID: uint64(ch.OID), CSN: csn, More: i+1 < len(changes)}
	}
	h.events += int64(len(notifs))
	h.backlog = append(h.backlog, notifs...)
	// Evict whole commits only, so the resume window never splits a
	// batch: everything sharing the CSN of the evicted head goes too.
	for len(h.backlog) > h.cap {
		evict := h.backlog[0].CSN
		n := 0
		for n < len(h.backlog) && h.backlog[n].CSN == evict {
			n++
		}
		h.backlog = h.backlog[n:]
		h.floor = evict
	}
	for sub := range h.subs {
		if sub.dead {
			continue
		}
		matched := false
		for i := range notifs {
			if matchAny(sub.patterns, notifs[i].Root) {
				sub.queue = append(sub.queue, notifs[i])
				h.delivered++
				matched = true
			}
		}
		if !matched {
			continue
		}
		// A multi-root commit delivers only its matching subset; patch the
		// batch flag so the subscriber's last change of this commit closes
		// the batch.
		sub.queue[len(sub.queue)-1].More = false
		if len(sub.queue) > h.queueCap {
			sub.dead = true
			sub.reason = &ship.WireError{
				Code: ship.CodeOverloaded,
				Msg:  fmt.Sprintf("watch subscriber fell %d events behind; resume from last CSN", len(sub.queue)),
			}
			sub.queue = nil
			h.dropped++
		}
		select {
		case sub.wake <- struct{}{}:
		default:
		}
	}
}

// matchAny reports whether any pattern matches the root name.
func matchAny(patterns []string, root string) bool {
	for _, p := range patterns {
		if ship.MatchRoot(p, root) {
			return true
		}
	}
	return false
}

// subscribe registers a subscription. since resumes from a previous
// position: matching backlog events with CSN > since are replayed into
// the queue before the subscriber goes live, atomically with
// registration, so the gap between the old connection and this one is
// covered without duplication. now is the store's current CSN, used as
// the position of a fresh subscription.
func (h *hub) subscribe(patterns []string, since, now uint64) (*subscriber, uint64, *ship.WireError) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.draining {
		return nil, 0, &ship.WireError{Code: ship.CodeShutdown, Msg: "server is draining"}
	}
	pos := now
	sub := &subscriber{patterns: patterns, wake: make(chan struct{}, 1)}
	if since != 0 {
		if since < h.floor {
			h.lostHorizon++
			return nil, 0, &ship.WireError{
				Code: ship.CodeBadRequest,
				Msg:  fmt.Sprintf("resume horizon lost: CSN %d is below the retained backlog (floor %d); subscribe fresh", since, h.floor),
			}
		}
		pos = since
		h.resumed++
	}
	// Replay the backlog above the position — for a resume that is the
	// reconnect gap; for a fresh subscription it covers the window between
	// the caller reading the store CSN and this registration, so the
	// handoff from replay to live delivery is gapless either way.
	for i := range h.backlog {
		if h.backlog[i].CSN > pos && matchAny(patterns, h.backlog[i].Root) {
			sub.queue = append(sub.queue, h.backlog[i])
			h.delivered++
		}
	}
	if n := len(sub.queue); n > 0 {
		// Pattern filtering can cut a commit's batch mid-way; recompute the
		// batch flags from CSN adjacency (each commit has a unique CSN).
		for i := range sub.queue {
			sub.queue[i].More = i+1 < n && sub.queue[i+1].CSN == sub.queue[i].CSN
		}
		sub.wake <- struct{}{}
	}
	h.subs[sub] = struct{}{}
	h.total++
	return sub, pos, nil
}

// take drains a subscriber's pending events. dead reports a terminated
// subscription; after delivering the returned events the session sends
// reason and closes.
func (h *hub) take(sub *subscriber) (events []ship.Notify, dead bool, reason *ship.WireError) {
	h.mu.Lock()
	defer h.mu.Unlock()
	events = sub.queue
	sub.queue = nil
	return events, sub.dead, sub.reason
}

// remove unregisters a subscriber (idempotent).
func (h *hub) remove(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, sub)
}

// drain terminates every subscription with a shutdown error and
// refuses new ones. Watch sessions wake, flush what is queued, send the
// error and close — the push-stream analogue of nudging a reader.
func (h *hub) drain() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.draining = true
	for sub := range h.subs {
		if !sub.dead {
			sub.dead = true
			sub.reason = &ship.WireError{Code: ship.CodeShutdown, Msg: "server is draining"}
		}
		select {
		case sub.wake <- struct{}{}:
		default:
		}
	}
}

// handleWatch serves one WATCH subscription: validate, register,
// answer watch-ok, then stream notifications until the peer goes away,
// the subscriber is dropped (overflow), or the server drains. The
// session ends when this returns.
func (s *session) handleWatch(body []byte) {
	start := time.Now()
	req, err := ship.DecodeWatch(body)
	if err != nil {
		s.srv.record(ship.VWatch, start, true)
		s.sendErr(errWire(ship.CodeProto, err))
		return
	}
	if len(req.Patterns) == 0 {
		s.srv.record(ship.VWatch, start, true)
		s.sendErr(&ship.WireError{Code: ship.CodeBadRequest, Msg: "watch without patterns (use \"*\" for everything)"})
		return
	}
	for _, p := range req.Patterns {
		if p == "" {
			s.srv.record(ship.VWatch, start, true)
			s.sendErr(&ship.WireError{Code: ship.CodeBadRequest, Msg: "empty watch pattern"})
			return
		}
	}
	// The store CSN is read before subscribing (lock order: the hub lock
	// nests inside the store lock via the root hook, so the hub must
	// never call the store); the subscribe replay covers the gap.
	now := s.srv.st.CSN()
	sub, pos, werr := s.srv.watch.subscribe(req.Patterns, req.SinceCSN, now)
	if werr != nil {
		s.srv.record(ship.VWatch, start, true)
		s.sendErr(werr)
		return
	}
	defer s.srv.watch.remove(sub)
	s.srv.record(ship.VWatch, start, false)
	if !s.send(ship.VWatchOK, (&ship.WatchOK{CSN: pos}).Encode()) {
		return
	}
	s.srv.logf("session %d: watching %v from CSN %d", s.id, req.Patterns, pos)

	// A watching session sends nothing; its reads only detect the peer
	// closing (or a drain nudge firing the read deadline). Park a reader
	// so the stream loop notices either promptly.
	s.conn.SetReadDeadline(time.Time{})
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		for {
			if _, _, err := ship.ReadFrame(s.conn, s.srv.cfg.MaxFrame); err != nil {
				return // EOF, close, or the drain nudge
			}
			// Any frame from a watching peer is a protocol violation; VBye
			// in particular means it is leaving. Either way the watch ends.
			return
		}
	}()

	flush := func() (stop bool) {
		events, dead, reason := s.srv.watch.take(sub)
		for i := range events {
			if !s.send(ship.VNotify, events[i].Encode()) {
				return true
			}
		}
		if dead {
			if reason != nil {
				s.sendErr(reason)
			}
			return true
		}
		return false
	}
	for {
		select {
		case <-sub.wake:
			if flush() {
				return
			}
		case <-gone:
			// The peer closed — or the drain nudge fired the parked read.
			// A final flush tells a drained subscriber why the stream ends
			// (the hub was marked draining before sessions were nudged).
			flush()
			return
		}
	}
}

// stats snapshots the hub counters; nil when the hub was never used so
// the JSON block stays absent on servers that never saw a WATCH.
func (h *hub) stats() *ship.WatchStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 && h.events == 0 {
		return nil
	}
	return &ship.WatchStats{
		Subscribers:  len(h.subs),
		TotalWatches: h.total,
		Resumed:      h.resumed,
		Events:       h.events,
		Delivered:    h.delivered,
		Dropped:      h.dropped,
		LostHorizon:  h.lostHorizon,
		Backlog:      len(h.backlog),
	}
}
