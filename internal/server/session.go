package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sort"
	"time"

	"tycoon/internal/machine"
	"tycoon/internal/pipeline"
	"tycoon/internal/ptml"
	"tycoon/internal/qopt"
	"tycoon/internal/relalg"
	"tycoon/internal/ship"
	"tycoon/internal/store"
	"tycoon/internal/tml"
)

// session is one client connection: its own execution machine (so
// handler state, step counters and frame pools never cross sessions)
// over the server's shared store, index cache and pipeline.
type session struct {
	srv  *Server
	conn net.Conn
	id   uint64
	m    *machine.Machine

	// deadline is the wall-clock budget of the request currently
	// executing; the machine's budget hook polls it. Written and read on
	// the session goroutine only.
	deadline time.Time
}

func newSession(s *Server, conn net.Conn, id uint64) *session {
	m := machine.New(s.st)
	m.MaxSteps = s.cfg.StepBudget
	s.mg.Register(m)
	sess := &session{srv: s, conn: conn, id: id, m: m}
	m.SetBudgetHook(func() error {
		if !sess.deadline.IsZero() && time.Now().After(sess.deadline) {
			return machine.ErrWallBudget
		}
		return nil
	})
	return sess
}

// nudge wakes a session blocked reading between requests so drain can
// proceed; an in-flight handler is unaffected (its response write uses
// the write deadline) and notices the drain on its next read.
func (s *session) nudge() { s.conn.SetReadDeadline(time.Now()) }

// run drives the session: handshake, then one request frame → one
// response frame until the peer says bye, the connection drops, the
// idle timer fires, or the server drains.
func (s *session) run() {
	defer s.conn.Close()
	if !s.handshake() {
		return
	}
	for {
		if idle := s.srv.cfg.IdleTimeout; idle > 0 && !s.srv.isDraining() {
			s.conn.SetReadDeadline(time.Now().Add(idle))
		}
		verb, body, err := ship.ReadFrame(s.conn, s.srv.cfg.MaxFrame)
		if err != nil {
			s.readFailed(err)
			return
		}
		if verb == ship.VBye {
			return
		}
		if verb == ship.VWatch {
			// WATCH consumes the session: the protocol has no request ids,
			// so after watch-ok the connection is a dedicated push stream.
			s.handleWatch(body)
			return
		}
		if !s.dispatch(verb, body) {
			return
		}
	}
}

// handshake expects the hello frame and answers welcome.
func (s *session) handshake() bool {
	if t := s.srv.cfg.IdleTimeout; t > 0 {
		s.conn.SetReadDeadline(time.Now().Add(t))
	}
	verb, body, err := ship.ReadFrame(s.conn, s.srv.cfg.MaxFrame)
	if err != nil {
		s.readFailed(err)
		return false
	}
	if verb != ship.VHello {
		s.sendErr(&ship.WireError{Code: ship.CodeProto, Msg: "expected hello, got " + verb.String()})
		return false
	}
	hello, err := ship.DecodeHello(body)
	if err != nil {
		s.sendErr(errWire(ship.CodeProto, err))
		return false
	}
	if hello.Version > ship.ProtoVersion {
		s.sendErr(&ship.WireError{Code: ship.CodeBadRequest,
			Msg: fmt.Sprintf("client speaks protocol %d, server %d", hello.Version, ship.ProtoVersion)})
		return false
	}
	s.srv.logf("session %d: hello from %q (%s)", s.id, hello.Client, s.conn.RemoteAddr())
	return s.send(ship.VWelcome, (&ship.Welcome{
		Version: ship.ProtoVersion, Server: "tycd", Session: s.id,
	}).Encode())
}

// readFailed classifies a frame read error: clean close and transport
// failures just end the session; malformed frames and drain/idle
// wake-ups are answered with one typed error frame first.
func (s *session) readFailed(err error) {
	switch {
	case errors.Is(err, io.EOF):
	case errors.Is(err, ship.ErrFrame):
		s.srv.logf("session %d: protocol error: %v", s.id, err)
		s.sendErr(errWire(ship.CodeProto, err))
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if s.srv.isDraining() {
				s.sendErr(&ship.WireError{Code: ship.CodeShutdown, Msg: "server is draining"})
			} else {
				s.sendErr(&ship.WireError{Code: ship.CodeShutdown, Msg: "idle timeout"})
			}
			return
		}
		s.srv.logf("session %d: read failed: %v", s.id, err)
	}
}

// dispatch handles one request frame; false closes the session.
func (s *session) dispatch(verb ship.Verb, body []byte) (keep bool) {
	start := time.Now()
	failed := false
	defer func() { s.srv.record(verb, start, failed) }()
	defer func() {
		// A handler panic is a server bug, not a session outcome: report
		// it as an internal error and drop the session, never the server.
		if r := recover(); r != nil {
			failed = true
			keep = false
			s.srv.logf("session %d: panic in %s: %v\n%s", s.id, verb, r, debug.Stack())
			s.sendErr(&ship.WireError{Code: ship.CodeInternal, Msg: fmt.Sprintf("panic: %v", r)})
		}
	}()

	var res *ship.Result
	var werr *ship.WireError
	switch verb {
	case ship.VPing:
		return s.send(ship.VPong, nil)
	case ship.VStats:
		data, err := json.Marshal(s.srv.Stats())
		if err != nil {
			failed = true
			return s.sendErr(errWire(ship.CodeInternal, err))
		}
		return s.send(ship.VStatsOK, data)
	case ship.VHealth:
		data, err := json.Marshal(s.srv.Health())
		if err != nil {
			failed = true
			return s.sendErr(errWire(ship.CodeInternal, err))
		}
		return s.send(ship.VHealthOK, data)
	case ship.VDigest:
		// The anti-entropy probe stays outside the overload gate, like
		// STATS: the repair loop must be able to compare digests against a
		// busy shard without queueing behind the work it is repairing.
		req, err := ship.DecodeDigest(body)
		if err != nil {
			failed = true
			return s.sendErr(errWire(ship.CodeProto, err))
		}
		return s.send(ship.VDigestOK, s.srv.Digests(req.Prefix).Encode())
	case ship.VSync:
		// Replica repair: replay a batch of keyed writes. Each item runs
		// through the normal handler — and therefore through the dedup
		// table, which is what absorbs re-shipped prefixes.
		release, ov := s.srv.acquire(verb)
		if ov != nil {
			failed = true
			return s.sendErr(ov)
		}
		var sok *ship.SyncOK
		func() {
			defer release()
			sok, werr = s.handleSync(body)
		}()
		if werr != nil {
			failed = true
			return s.sendErr(werr)
		}
		return s.send(ship.VSyncOK, sok.Encode())
	case ship.VInstall, ship.VCall, ship.VSubmit, ship.VOptimize:
		// Work verbs pass the overload gate; cheap probes (PING, STATS,
		// HEALTH) never do, so a saturated server stays observable.
		release, ov := s.srv.acquire(verb)
		if ov != nil {
			failed = true
			return s.sendErr(ov)
		}
		func() {
			defer release()
			switch verb {
			case ship.VInstall:
				res, werr = s.handleInstall(body)
			case ship.VCall:
				res, werr = s.handleCall(body)
			case ship.VSubmit:
				res, werr = s.handleSubmit(body)
			case ship.VOptimize:
				res, werr = s.handleOptimize(body)
			}
		}()
	default:
		werr = &ship.WireError{Code: ship.CodeProto, Msg: "unexpected verb " + verb.String()}
	}
	if werr != nil {
		failed = true
		return s.sendErr(werr)
	}
	res.Info.Micros = time.Since(start).Microseconds()
	return s.sendResult(res)
}

// begin arms the per-request budgets; end disarms them.
func (s *session) begin() {
	s.m.ResetSteps()
	if w := s.srv.cfg.WallBudget; w > 0 {
		s.deadline = time.Now().Add(w)
	}
}

func (s *session) end() { s.deadline = time.Time{} }

// handleInstall compiles and installs a TL module. A keyed request runs
// through the idempotency table: a client retrying a lost response gets
// the recorded result instead of reinstalling.
func (s *session) handleInstall(body []byte) (*ship.Result, *ship.WireError) {
	req, err := ship.DecodeInstall(body)
	if err != nil {
		return nil, errWire(ship.CodeProto, err)
	}
	install := func() (*ship.Result, *ship.WireError, bool) {
		s.srv.installMu.Lock()
		defer s.srv.installMu.Unlock()
		unit, err := s.srv.comp.Compile(req.Source)
		if err != nil {
			return nil, errWire(ship.CodeCompile, err), false
		}
		oid, err := s.srv.lk.InstallModule(unit)
		if err != nil {
			return nil, errWire(ship.CodeCompile, err), false
		}
		s.srv.mu.Lock()
		s.srv.modules[unit.Name] = oid
		s.srv.mu.Unlock()
		if err := s.srv.st.Commit(); err != nil {
			s.srv.noteCommit(err)
			return nil, &ship.WireError{Code: ship.CodeDegraded, Msg: "install not durable: " + err.Error()}, false
		}
		s.srv.noteCommit(nil)
		s.srv.logf("session %d: installed module %s", s.id, unit.Name)
		// An install is always a durable write: record it.
		return &ship.Result{Val: ship.WVal{Kind: ship.WStr, Str: unit.Name}}, nil, true
	}
	if req.IdemKey == "" {
		res, werr, _ := install()
		return res, werr
	}
	// The record key pairs the client's key with the content hash, so a
	// key reused for different source is a distinct request, never a
	// false dedup hit.
	return s.srv.dedup.Do(req.IdemKey+"\x1f"+ptml.HashRaw([]byte(req.Source)).String(), install)
}

// handleCall applies an exported function — or, with an empty module, a
// closure previously saved by submit.
func (s *session) handleCall(body []byte) (*ship.Result, *ship.WireError) {
	req, err := ship.DecodeCall(body)
	if err != nil {
		return nil, errWire(ship.CodeProto, err)
	}
	args := make([]machine.Value, len(req.Args))
	for i, a := range req.Args {
		v, err := s.wireToMachine(a)
		if err != nil {
			return nil, errWire(ship.CodeBadRequest, err)
		}
		args[i] = v
	}
	s.begin()
	defer s.end()
	// The call executes against its own transaction: reads come from a
	// snapshot pinned at begin, writes stay private until the commit below.
	txn := s.openTxn()
	defer s.closeTxn(txn)
	var v machine.Value
	if req.Module != "" {
		modOID, ok := s.srv.module(req.Module)
		if !ok {
			return nil, &ship.WireError{Code: ship.CodeNotFound, Msg: "module " + req.Module + " not installed"}
		}
		v, err = s.m.CallExport(modOID, req.Fn, args)
	} else {
		oid, ok := txn.Root(ship.SavedRoot + req.Fn)
		if !ok {
			return nil, &ship.WireError{Code: ship.CodeNotFound, Msg: "no saved closure " + req.Fn}
		}
		v, err = s.m.Apply(machine.Ref{OID: oid}, args)
	}
	if err != nil {
		return nil, execErr(err)
	}
	if werr := s.commitTxn(txn, "call"); werr != nil {
		return nil, werr
	}
	return &ship.Result{Val: s.machineToWire(v), Info: ship.ExecInfo{Steps: s.m.Steps()}}, nil
}

// openTxn begins a store transaction and points the session's machine at
// it, so every primitive the request executes reads the transaction's
// snapshot and writes its private buffer.
func (s *session) openTxn() *store.Txn {
	txn := s.srv.st.Begin()
	s.m.Store = txn
	return txn
}

// closeTxn restores the machine's store view and rolls the transaction
// back if it is still open (commitTxn finished it on the success path;
// Abort is then a no-op).
func (s *session) closeTxn(txn *store.Txn) {
	s.m.Store = s.srv.st
	txn.Abort()
}

// commitTxn commits the request's transaction and maps the outcome onto
// the wire: a first-committer-wins abort becomes the retryable
// CodeConflict (nothing was applied; the client re-executes against a
// fresh snapshot), an I/O failure becomes CodeDegraded and latches the
// advisory degraded flag, and a successful durable commit clears it.
func (s *session) commitTxn(txn *store.Txn, what string) *ship.WireError {
	mutated := txn.Mutated()
	err := txn.Commit()
	switch {
	case err == nil:
		if mutated {
			s.srv.noteCommit(nil)
		}
		return nil
	case errors.Is(err, store.ErrConflict):
		return &ship.WireError{Code: ship.CodeConflict, Msg: what + " aborted: " + err.Error()}
	default:
		s.srv.noteCommit(err)
		return &ship.WireError{Code: ship.CodeDegraded, Msg: what + " not durable: " + err.Error()}
	}
}

// handleSync replays a batch of deferred keyed writes (replica repair).
// Items apply strictly in the coordinator's original order through the
// ordinary INSTALL/SUBMIT handlers — which is what routes each item
// through the idempotency table under its original key, making a
// re-shipped prefix (crash mid-drain, coordinator retry) a no-op. The
// first failing item aborts the batch so order is never violated; the
// coordinator retries the whole batch and the already-applied prefix
// dedups away.
func (s *session) handleSync(body []byte) (*ship.SyncOK, *ship.WireError) {
	req, err := ship.DecodeSync(body)
	if err != nil {
		return nil, errWire(ship.CodeProto, err)
	}
	for i, it := range req.Items {
		var werr *ship.WireError
		switch it.Verb {
		case ship.VSubmit:
			_, werr = s.handleSubmit(it.Body)
		case ship.VInstall:
			_, werr = s.handleInstall(it.Body)
		default:
			werr = &ship.WireError{Code: ship.CodeBadRequest,
				Msg: "sync item verb " + it.Verb.String() + " is not a replayable write"}
		}
		if werr != nil {
			werr.Msg = fmt.Sprintf("sync item %d of %d: %s", i+1, len(req.Items), werr.Msg)
			return nil, werr
		}
	}
	return &ship.SyncOK{Applied: uint32(len(req.Items))}, nil
}

// handleSubmit is the headline verb: decode the shipped PTML
// application, re-establish the R-value bindings of its free variables
// (paper §4.1's rebinding, across the wire), close it over the server's
// exception and result continuations, compile it through the shared
// pipeline — content-addressed by the α-invariant tree hash, the
// binding fingerprint and the option set, so every session submitting
// the same query compiles it once — and run it.
func (s *session) handleSubmit(body []byte) (*ship.Result, *ship.WireError) {
	req, err := ship.DecodeSubmit(body)
	if err != nil {
		return nil, errWire(ship.CodeProto, err)
	}
	srcHash, err := ptml.CanonicalHash(req.PTML)
	if err != nil {
		return nil, errWire(ship.CodeBadRequest, fmt.Errorf("undecodable PTML: %w", err))
	}
	if req.IdemKey == "" {
		res, werr, _ := s.runSubmit(req, srcHash)
		return res, werr
	}
	// Keyed: exactly-once through the idempotency table. The key pairs
	// the client's request key with the α-invariant tree hash, so the
	// same key on different PTML is a distinct request, and a retried
	// save= install applies once even if the first response was lost.
	// Only executions with durable effects — a save, or a term that
	// mutated the store through a writer primitive — are recorded; a
	// keyed read leaves no record, so a retry re-executes it instead of
	// the table pinning its (possibly large) result relation in memory.
	return s.srv.dedup.Do(req.IdemKey+"\x1f"+srcHash.String(), func() (*ship.Result, *ship.WireError, bool) {
		return s.runSubmit(req, srcHash)
	})
}

// runSubmit is handleSubmit's execution core, shared by the keyed and
// keyless paths. The third result reports whether the request had
// durable effects (a save, or a term that wrote through a writer
// primitive) — the signal the idempotency table records on.
func (s *session) runSubmit(req *ship.Submit, srcHash ptml.Hash) (*ship.Result, *ship.WireError, bool) {
	// Resolve the binding table to store values up front: they feed both
	// the cache key fingerprint and the substitution.
	binds := make(map[string]store.Val, len(req.Binds))
	fpBinds := make([]store.Binding, 0, len(req.Binds))
	for _, b := range req.Binds {
		sv, err := s.wireToStoreVal(b.Val)
		if err != nil {
			return nil, errWire(ship.CodeBadRequest, fmt.Errorf("binding %s: %w", b.Name, err)), false
		}
		if _, dup := binds[b.Name]; dup {
			return nil, &ship.WireError{Code: ship.CodeBadRequest, Msg: "duplicate binding " + b.Name}, false
		}
		binds[b.Name] = sv
		fpBinds = append(fpBinds, store.Binding{Name: b.Name, Val: sv})
	}
	// Fingerprint in name order so the key is independent of the order
	// the client listed the bindings in.
	sort.Slice(fpBinds, func(i, j int) bool { return fpBinds[i].Name < fpBinds[j].Name })

	name := req.Name
	if name == "" {
		name = "submit:" + srcHash.Short()
	}
	var packs []pipeline.RulePack
	if req.Optimize {
		packs = append(packs, qopt.RuntimePack(s.srv.st))
	}
	job := pipeline.Job{
		Name: name,
		Source: func(gen *tml.VarGen) (*tml.Abs, error) {
			return s.rebind(req.PTML, binds, gen)
		},
		Packs:         packs,
		SkipOptimize:  !req.Optimize,
		Codegen:       true,
		RequireClosed: true,
		EncodeTAM:     true,
		EncodePTML:    true,
		Key: pipeline.Key{
			Source:   srcHash,
			Bindings: pipeline.BindingFingerprint(fpBinds),
			Options:  pipeline.FingerprintOptions("tycd-submit", req.Optimize),
		},
	}
	res, err := s.srv.pipe.Run(job)
	if err != nil {
		return nil, errWire(ship.CodeCompile, err), false
	}

	// The transaction opens after the pipeline ran: compiled code objects
	// are published to the raw store (shared by every session through the
	// cache), while the execution below reads the transaction's snapshot
	// and buffers its writes until the commit.
	s.begin()
	txn := s.openTxn()
	defer s.closeTxn(txn)
	if req.Explain {
		s.srv.mg.CaptureExplain(s.m)
	}
	v, err := s.m.Apply(res.Closure, nil)
	s.end()
	var explain string
	if req.Explain {
		// Collect even on failure so the capture sink never leaks.
		explain = qopt.RenderPlan(s.srv.mg.TakeExplain(s.m))
	}
	if err != nil {
		return nil, execErr(err), false
	}

	if req.Save != "" {
		if werr := s.save(txn, req.Save, name, res); werr != nil {
			return nil, werr, false
		}
	}
	wrote := req.Save != "" || txn.Mutated()
	if werr := s.commitTxn(txn, "submit"); werr != nil {
		return nil, werr, false
	}
	info := ship.ExecInfo{
		Steps:    s.m.Steps(),
		CacheHit: res.CacheHit,
		Rewrites: int64(res.Stats.Rewrites()),
	}
	return &ship.Result{Val: s.machineToWire(v), Info: info, Explain: explain}, nil, wrote
}

// save stages a submitted term's compiled closure — TAM code and the
// re-optimizable PTML tree, no bindings (rebinding closed the term) —
// under the srv: root namespace tycfsck audits. The writes ride the
// request's transaction; durability (and any conflict with a concurrent
// save under the same name) is decided by its commit.
func (s *session) save(st store.View, saveAs, name string, res *pipeline.Result) *ship.WireError {
	if len(res.Code) == 0 || len(res.PTML) == 0 {
		return &ship.WireError{Code: ship.CodeInternal, Msg: "compiled submit carries no encodings to save"}
	}
	codeOID := st.Alloc(&store.Blob{Bytes: res.Code})
	ptmlOID := st.Alloc(&store.Blob{Bytes: res.PTML})
	cloOID := st.Alloc(&store.Closure{Name: name, Code: codeOID, PTML: ptmlOID})
	// SetRoot advances the store's binding epoch at commit, which
	// conservatively invalidates the pipeline cache — saving is a binding
	// change, the same rule every other root update follows.
	st.SetRoot(ship.SavedRoot+saveAs, cloOID)
	s.srv.logf("session %d: saved %s as %s%s", s.id, name, ship.SavedRoot, saveAs)
	return nil
}

// rebind decodes the submitted application and closes it: free value
// variables are substituted with their bound R-values, and the free
// continuation variables e (exception) and k (result) become the
// parameters of the wrapping procedure, which Apply binds to the
// top-level halt continuations.
func (s *session) rebind(data []byte, binds map[string]store.Val, gen *tml.VarGen) (*tml.Abs, error) {
	app, free, err := ptml.DecodeApp(data, gen)
	if err != nil {
		return nil, err
	}
	var eVar, kVar *tml.Var
	subst := make(map[*tml.Var]tml.Value)
	for _, v := range free {
		switch v.Name {
		case "e":
			if eVar != nil {
				return nil, fmt.Errorf("submit: two free variables named e")
			}
			eVar = v
			continue
		case "k":
			if kVar != nil {
				return nil, fmt.Errorf("submit: two free variables named k")
			}
			kVar = v
			continue
		}
		if v.Cont {
			return nil, fmt.Errorf("submit: free continuation %s (only e and k may be free)", v)
		}
		sv, ok := binds[v.Name]
		if !ok {
			sv, ok = binds[v.String()]
		}
		if !ok {
			return nil, fmt.Errorf("submit: no binding for free variable %s", v.Name)
		}
		subst[v] = storeValToTML(sv)
	}
	if len(subst) > 0 {
		app = tml.SubstMany(app, subst).(*tml.App)
	}
	if eVar == nil {
		eVar = gen.FreshCont("e")
	} else {
		eVar.Cont = true
	}
	if kVar == nil {
		kVar = gen.FreshCont("k")
	} else {
		kVar.Cont = true
	}
	return &tml.Abs{Params: []*tml.Var{eVar, kVar}, Body: app}, nil
}

// handleOptimize reflectively optimizes an installed function and
// installs the code in this session's machine; the compilation itself
// lands in the shared pipeline cache, so every other session's optimize
// of the same function is a hit.
func (s *session) handleOptimize(body []byte) (*ship.Result, *ship.WireError) {
	req, err := ship.DecodeOptimize(body)
	if err != nil {
		return nil, errWire(ship.CodeProto, err)
	}
	modOID, ok := s.srv.module(req.Module)
	if !ok {
		return nil, &ship.WireError{Code: ship.CodeNotFound, Msg: "module " + req.Module + " not installed"}
	}
	obj, err := s.srv.st.Get(modOID)
	if err != nil {
		return nil, errWire(ship.CodeInternal, err)
	}
	mod, ok := obj.(*store.Module)
	if !ok {
		return nil, &ship.WireError{Code: ship.CodeInternal, Msg: req.Module + " is not a module"}
	}
	v, ok := mod.Lookup(req.Fn)
	if !ok || v.Kind != store.ValRef {
		return nil, &ship.WireError{Code: ship.CodeNotFound,
			Msg: req.Module + "." + req.Fn + " is not an exported function"}
	}
	s.begin()
	defer s.end()
	res, err := s.srv.ropt.OptimizeAndInstall(s.m, v.Ref)
	if err != nil {
		return nil, errWire(ship.CodeCompile, err)
	}
	info := ship.ExecInfo{
		CacheHit: res.CacheHit,
		Inlined:  int64(res.Inlined),
		Rewrites: int64(res.Pipeline.Rewrites()),
	}
	return &ship.Result{
		Val:  ship.WVal{Kind: ship.WStr, Str: req.Module + "." + req.Fn},
		Info: info,
	}, nil
}

// --- transport helpers -----------------------------------------------------

func (s *session) send(v ship.Verb, body []byte) bool {
	if t := s.srv.cfg.WriteTimeout; t > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(t))
	}
	if err := ship.WriteFrame(s.conn, v, body); err != nil {
		s.srv.logf("session %d: write failed: %v", s.id, err)
		return false
	}
	return true
}

func (s *session) sendErr(e *ship.WireError) bool { return s.send(ship.VError, e.Encode()) }

func (s *session) sendResult(r *ship.Result) bool {
	body, err := r.Encode()
	if err != nil {
		return s.sendErr(errWire(ship.CodeInternal, err))
	}
	return s.send(ship.VResult, body)
}

// execErr classifies an execution failure for the wire.
func execErr(err error) *ship.WireError {
	switch {
	case errors.Is(err, machine.ErrStepBudget), errors.Is(err, machine.ErrWallBudget):
		return errWire(ship.CodeBudget, err)
	default:
		return errWire(ship.CodeExec, err)
	}
}

// --- value conversions -----------------------------------------------------

// wireToMachine lifts a wire argument into a runtime value.
func (s *session) wireToMachine(v ship.WVal) (machine.Value, error) {
	switch v.Kind {
	case ship.WNil:
		return machine.Unit{}, nil
	case ship.WInt:
		return machine.IntValue(v.Int), nil
	case ship.WReal:
		return machine.Real(v.Real), nil
	case ship.WBool:
		return machine.BoolValue(v.Bool), nil
	case ship.WChar:
		return machine.CharValue(v.Ch), nil
	case ship.WStr:
		return machine.Str(v.Str), nil
	case ship.WRef:
		return machine.Ref{OID: store.OID(v.Ref)}, nil
	case ship.WRoot:
		oid, ok := s.srv.st.Root(v.Str)
		if !ok {
			return nil, fmt.Errorf("no root named %q", v.Str)
		}
		return machine.Ref{OID: oid}, nil
	case ship.WRel:
		rel, err := s.wireToRel(v.Rel)
		if err != nil {
			return nil, err
		}
		return rel, nil
	default:
		return nil, fmt.Errorf("unsupported wire value kind %d", v.Kind)
	}
}

// wireToStoreVal lowers a wire binding into a store slot value (the
// form R-value rebinding and key fingerprinting work on).
func (s *session) wireToStoreVal(v ship.WVal) (store.Val, error) {
	switch v.Kind {
	case ship.WNil:
		return store.NilVal(), nil
	case ship.WInt:
		return store.IntVal(v.Int), nil
	case ship.WReal:
		return store.RealVal(v.Real), nil
	case ship.WBool:
		return store.BoolVal(v.Bool), nil
	case ship.WChar:
		return store.CharVal(v.Ch), nil
	case ship.WStr:
		return store.StrVal(v.Str), nil
	case ship.WRef:
		return store.RefVal(store.OID(v.Ref)), nil
	case ship.WRoot:
		oid, ok := s.srv.st.Root(v.Str)
		if !ok {
			return store.Val{}, fmt.Errorf("no root named %q", v.Str)
		}
		return store.RefVal(oid), nil
	default:
		return store.Val{}, fmt.Errorf("wire value %s cannot be a binding", v.Show())
	}
}

// wireToRel materialises a shipped table as a transient relation.
func (s *session) wireToRel(t *ship.WTable) (*relalg.Rel, error) {
	if t == nil {
		return nil, fmt.Errorf("relation value without table")
	}
	rel := &relalg.Rel{}
	for _, c := range t.Cols {
		rel.Schema = append(rel.Schema, store.Column{Name: c, Type: store.ColStr})
	}
	for _, row := range t.Rows {
		out := make([]store.Val, len(row))
		for i, f := range row {
			sv, err := s.wireToStoreVal(f)
			if err != nil {
				return nil, err
			}
			out[i] = sv
		}
		rel.Rows = append(rel.Rows, out)
	}
	if len(rel.Schema) == 0 && len(rel.Rows) > 0 {
		for i, f := range rel.Rows[0] {
			rel.Schema = append(rel.Schema, store.Column{Name: fmt.Sprintf("c%d", i), Type: colTypeOf(f)})
		}
	}
	return rel, nil
}

func colTypeOf(v store.Val) store.ColType {
	switch v.Kind {
	case store.ValInt:
		return store.ColInt
	case store.ValReal:
		return store.ColReal
	case store.ValBool:
		return store.ColBool
	default:
		return store.ColStr
	}
}

// machineToWire lowers a result value for the wire: scalars by value,
// references by OID, relations as materialised tables. Transient values
// with no wire form (closures, continuations) degrade to their printed
// representation — a REPL answer, not round-trippable data.
func (s *session) machineToWire(v machine.Value) ship.WVal {
	switch v := v.(type) {
	case machine.Unit:
		return ship.WVal{Kind: ship.WNil}
	case machine.Int:
		return ship.WVal{Kind: ship.WInt, Int: int64(v)}
	case machine.Real:
		return ship.WVal{Kind: ship.WReal, Real: float64(v)}
	case machine.Bool:
		return ship.WVal{Kind: ship.WBool, Bool: bool(v)}
	case machine.Char:
		return ship.WVal{Kind: ship.WChar, Ch: byte(v)}
	case machine.Str:
		return ship.WVal{Kind: ship.WStr, Str: string(v)}
	case machine.Ref:
		return ship.WVal{Kind: ship.WRef, Ref: uint64(v.OID)}
	case *relalg.Rel:
		t := &ship.WTable{}
		for _, c := range v.Schema {
			t.Cols = append(t.Cols, c.Name)
		}
		for _, row := range v.Rows {
			out := make([]ship.WVal, len(row))
			for i, f := range row {
				out[i] = storeValToWire(f)
			}
			t.Rows = append(t.Rows, out)
		}
		return ship.WVal{Kind: ship.WRel, Rel: t}
	case *machine.Vector:
		row := make([]ship.WVal, len(v.Elems))
		for i, el := range v.Elems {
			row[i] = s.machineToWire(el)
		}
		return ship.WVal{Kind: ship.WRel, Rel: &ship.WTable{Rows: [][]ship.WVal{row}}}
	default:
		return ship.WVal{Kind: ship.WStr, Str: v.Show()}
	}
}

func storeValToWire(v store.Val) ship.WVal {
	switch v.Kind {
	case store.ValInt:
		return ship.WVal{Kind: ship.WInt, Int: v.Int}
	case store.ValReal:
		return ship.WVal{Kind: ship.WReal, Real: v.Real}
	case store.ValBool:
		return ship.WVal{Kind: ship.WBool, Bool: v.Bool}
	case store.ValChar:
		return ship.WVal{Kind: ship.WChar, Ch: v.Ch}
	case store.ValStr:
		return ship.WVal{Kind: ship.WStr, Str: v.Str}
	case store.ValRef:
		return ship.WVal{Kind: ship.WRef, Ref: uint64(v.Ref)}
	default:
		return ship.WVal{Kind: ship.WNil}
	}
}

// storeValToTML lifts a binding value into a TML value node for
// substitution: scalars become literals, references become OID nodes.
func storeValToTML(v store.Val) tml.Value {
	switch v.Kind {
	case store.ValInt:
		return tml.Int(v.Int)
	case store.ValReal:
		return tml.Real(v.Real)
	case store.ValBool:
		return tml.Bool(v.Bool)
	case store.ValChar:
		return tml.Char(v.Ch)
	case store.ValStr:
		return tml.Str(v.Str)
	case store.ValRef:
		return tml.NewOid(uint64(v.Ref))
	default:
		return tml.Unit()
	}
}
