package server_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"tycoon/internal/client"
	"tycoon/internal/netfault"
	"tycoon/internal/server"
	"tycoon/internal/ship"
	"tycoon/internal/store"
)

// saveN commits one root srv:<name> through a saving submit.
func saveN(t *testing.T, c *client.Client, name string, v int64) {
	t.Helper()
	src := fmt.Sprintf("(+ %d 2 e cont(n) (k n))", v)
	if _, err := c.SubmitTML(name, src, nil, false, name); err != nil {
		t.Fatalf("save %s: %v", name, err)
	}
}

// TestWatchDelivery: a subscriber sees every committed matching root
// change exactly once, in CSN order, with the OID the root now binds —
// and nothing for non-matching roots.
func TestWatchDelivery(t *testing.T) {
	_, addr, st := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{})
	c := dial(t, addr)

	w, err := client.NewWatcher(addr, []string{"srv:del-*"}, 0, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer w.Close()

	// A non-matching commit (module install rebinds module:*) must not
	// arrive; matching saves must, in commit order.
	if _, err := c.Install("module delm export id let id(a : Int) : Int = a end"); err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		saveN(t, c, fmt.Sprintf("del-%d", i), int64(i))
	}

	var last uint64
	for i := 0; i < n; i++ {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		want := fmt.Sprintf("srv:del-%d", i)
		if ev.Root != want {
			t.Fatalf("event %d: root %q, want %q", i, ev.Root, want)
		}
		if ev.CSN <= last {
			t.Fatalf("event %d: CSN %d not after %d", i, ev.CSN, last)
		}
		if ev.More {
			t.Fatalf("event %d: single-root commit flagged More", i)
		}
		if oid, ok := st.Root(ev.Root); !ok || uint64(oid) != ev.OID {
			t.Fatalf("event %d: OID 0x%x, store has 0x%x (ok=%t)", i, ev.OID, uint64(oid), ok)
		}
		last = ev.CSN
	}
	if got := w.Pos(); got != last {
		t.Fatalf("Pos() = %d after full delivery, want %d", got, last)
	}
}

// TestWatchResumeAcrossReconnect forces a mid-stream disconnect with a
// fault proxy and checks the exactly-once contract: every committed
// matching change is observed once, in CSN order, across the resume.
func TestWatchResumeAcrossReconnect(t *testing.T) {
	_, addr, _ := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{})
	c := dial(t, addr)

	px, err := netfault.NewProxy(addr, netfault.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	w, err := client.NewWatcher(px.Addr(), []string{"srv:rec-*"}, 0, client.Options{
		Timeout: 30 * time.Second, Retries: 10, Seed: 11,
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer w.Close()

	const n = 30
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			src := fmt.Sprintf("(+ %d 2 e cont(n) (k n))", i)
			name := fmt.Sprintf("rec-%03d", i)
			if _, err := c.SubmitTML(name, src, nil, false, name); err != nil {
				t.Errorf("save %s: %v", name, err)
				return
			}
		}
	}()

	var last uint64
	for i := 0; i < n; i++ {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		want := fmt.Sprintf("srv:rec-%03d", i)
		if ev.Root != want {
			t.Fatalf("event %d: root %q, want %q (duplicate or gap)", i, ev.Root, want)
		}
		if ev.CSN <= last {
			t.Fatalf("event %d: CSN %d not after %d", i, ev.CSN, last)
		}
		last = ev.CSN
		if i == n/3 {
			px.DropAll() // sever the stream mid-flight; the watcher resumes
		}
	}
	<-done
	if w.Resumes() == 0 {
		t.Fatal("stream was never severed: the reconnect path went untested")
	}
}

// TestWatchUntornGroupCommit: a transaction rebinding several roots is
// delivered as one contiguous batch at one CSN — More chains all but
// the last change — even with many committers racing.
func TestWatchUntornGroupCommit(t *testing.T) {
	srv, addr, st := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{})
	_ = srv

	w, err := client.NewWatcher(addr, []string{"pair:*"}, 0, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer w.Close()

	const workers, commits = 4, 8
	for g := 0; g < workers; g++ {
		go func(g int) {
			for i := 0; i < commits; i++ {
				txn := st.Begin()
				a := txn.Alloc(&store.Blob{Bytes: []byte{byte(g), byte(i), 'a'}})
				b := txn.Alloc(&store.Blob{Bytes: []byte{byte(g), byte(i), 'b'}})
				txn.SetRoot(fmt.Sprintf("pair:%d:%d:a", g, i), a)
				txn.SetRoot(fmt.Sprintf("pair:%d:%d:b", g, i), b)
				// Unique roots over fresh allocations are conflict-free.
				if err := txn.Commit(); err != nil {
					t.Errorf("pair commit %d/%d: %v", g, i, err)
					return
				}
			}
		}(g)
	}

	var lastCSN uint64
	for i := 0; i < workers*commits; i++ {
		first, err := w.Next()
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if !first.More {
			t.Fatalf("batch %d: first change %q does not chain its pair", i, first.Root)
		}
		second, err := w.Next()
		if err != nil {
			t.Fatalf("batch %d second: %v", i, err)
		}
		if second.More {
			t.Fatalf("batch %d: trailing change %q claims more follow", i, second.Root)
		}
		if first.CSN != second.CSN {
			t.Fatalf("batch %d torn across CSNs %d and %d", i, first.CSN, second.CSN)
		}
		if first.CSN <= lastCSN {
			t.Fatalf("batch %d: CSN %d not after %d", i, first.CSN, lastCSN)
		}
		lastCSN = first.CSN
		// The two roots of one commit share the "pair:g:i:" prefix.
		if first.Root[:len(first.Root)-1] != second.Root[:len(second.Root)-1] {
			t.Fatalf("batch %d interleaved: %q then %q", i, first.Root, second.Root)
		}
	}
}

// TestWatchSlowSubscriberDropped: a subscriber that cannot keep up is
// terminated with a retryable overloaded error instead of holding event
// memory for everyone.
func TestWatchSlowSubscriberDropped(t *testing.T) {
	_, addr, st := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{WatchQueue: 1})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(30 * time.Second))
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ship.WriteFrame(conn, ship.VHello, (&ship.Hello{Version: ship.ProtoVersion, Client: "slow"}).Encode()))
	verb, _, err := ship.ReadFrame(conn, 0)
	must(err)
	if verb != ship.VWelcome {
		t.Fatalf("got %s, want welcome", verb)
	}
	must(ship.WriteFrame(conn, ship.VWatch, (&ship.Watch{Patterns: []string{"slow:*"}}).Encode()))
	verb, _, err = ship.ReadFrame(conn, 0)
	must(err)
	if verb != ship.VWatchOK {
		t.Fatalf("got %s, want watch-ok", verb)
	}

	// One commit rebinding three roots overflows the 1-slot queue
	// atomically under the hub lock: deterministic drop.
	txn := st.Begin()
	for i := 0; i < 3; i++ {
		oid := txn.Alloc(&store.Blob{Bytes: []byte{byte(i)}})
		txn.SetRoot(fmt.Sprintf("slow:%d", i), oid)
	}
	must(txn.Commit())

	for {
		verb, body, err := ship.ReadFrame(conn, 0)
		must(err)
		if verb == ship.VNotify {
			continue // anything flushed before the drop
		}
		if verb != ship.VError {
			t.Fatalf("got %s, want error", verb)
		}
		we, err := ship.DecodeWireError(body)
		must(err)
		if we.Code != ship.CodeOverloaded {
			t.Fatalf("dropped with %s, want overloaded", we.Code)
		}
		break
	}
}

// TestWatchResumeHorizonLost: a resume below the retained backlog is
// refused with a definitive bad-request, so the client knows to start
// fresh instead of assuming a gapless stream.
func TestWatchResumeHorizonLost(t *testing.T) {
	_, addr, st := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{WatchBacklog: 4})
	for i := 0; i < 12; i++ {
		oid := st.Alloc(&store.Blob{Bytes: []byte{byte(i)}})
		st.SetRoot(fmt.Sprintf("old:%d", i), oid)
	}
	_, err := client.NewWatcher(addr, []string{"*"}, 1, client.Options{Timeout: 30 * time.Second})
	if err == nil {
		t.Fatal("resume from CSN 1 accepted despite evicted backlog")
	}
	var we *ship.WireError
	if !errors.As(err, &we) || we.Code != ship.CodeBadRequest {
		t.Fatalf("got %v, want bad-request", err)
	}
}

// TestWatchDrain: Shutdown terminates a connected subscriber with a
// shutdown error and completes without waiting on it.
func TestWatchDrain(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "w.tyst"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv, err := server.New(st, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	w, err := client.NewWatcher(ln.Addr().String(), []string{"*"}, 0, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer w.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := w.Next()
		errc <- err
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain the watch session: %v", err)
	}
	select {
	case err := <-errc:
		var we *ship.WireError
		if !errors.As(err, &we) || we.Code != ship.CodeShutdown {
			t.Fatalf("watcher ended with %v, want shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watcher still blocked after drain")
	}
}

// TestWatchBadPatterns: a subscription without patterns (or with an
// empty one) is a definitive bad-request.
func TestWatchBadPatterns(t *testing.T) {
	_, addr, _ := world(t, filepath.Join(t.TempDir(), "w.tyst"), server.Config{})
	for _, pats := range [][]string{nil, {""}} {
		_, err := client.NewWatcher(addr, pats, 0, client.Options{Timeout: 30 * time.Second})
		var we *ship.WireError
		if !errors.As(err, &we) || we.Code != ship.CodeBadRequest {
			t.Fatalf("patterns %q: got %v, want bad-request", pats, err)
		}
	}
}
